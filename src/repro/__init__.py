"""repro — fragment-based MBE3/RI-MP2 ab initio molecular dynamics.

A full-stack reproduction of "Breaking the Million-Electron and
1 EFLOP/s Barriers: Biomolecular-Scale Ab Initio Molecular Dynamics
Using MP2 Potentials" (SC 2024): a from-scratch Gaussian-integral and
RI-HF/RI-MP2 engine with analytic gradients, MBE3 molecular
fragmentation with hydrogen caps, synchronous and asynchronous AIMD
scheduling, GEMM auto-tuning with runtime FLOP accounting, and
discrete-event models of the Frontier and Perlmutter machines for the
paper's scaling and peak-performance experiments.

Quick start::

    from repro import Molecule, rhf, mp2, rimp2_gradient
    mol = Molecule.from_angstrom(["O", "H", "H"], [...])
    scf = rhf(mol, "repro-dz", ri=True)
    corr = mp2(scf)
    grad = rimp2_gradient(scf)

See README.md and the examples/ directory.
"""

from .calculators import (
    ConventionalHFCalculator,
    PairwisePotentialCalculator,
    RIHFCalculator,
    RIMP2Calculator,
)
from .chem import Molecule
from .frag import FragmentedSystem, build_plan, mbe_energy_gradient
from .md import AsyncCoordinator, run_aimd, run_serial
from .mp2 import mp2, rimp2_gradient
from .opt import OptimizationResult, optimize
from .properties import mp2_dipole, scf_dipole
from .vibrations import harmonic_analysis, zero_point_energy
from .scf import rhf, rhf_gradient

__version__ = "1.0.0"

__all__ = [
    "AsyncCoordinator",
    "ConventionalHFCalculator",
    "FragmentedSystem",
    "Molecule",
    "PairwisePotentialCalculator",
    "RIHFCalculator",
    "RIMP2Calculator",
    "build_plan",
    "mbe_energy_gradient",
    "OptimizationResult",
    "harmonic_analysis",
    "mp2",
    "mp2_dipole",
    "optimize",
    "scf_dipole",
    "zero_point_energy",
    "rhf",
    "rhf_gradient",
    "rimp2_gradient",
    "run_aimd",
    "run_serial",
]
