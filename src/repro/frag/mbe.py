"""Many-body expansion: polymer enumeration, coefficients, assembly.

The truncated MBE3 energy (paper Eq. 2)

    E = sum_I E_I + sum_{I<J in D} dE_IJ + sum_{I<J<K in T} dE_IJK

is rewritten as a single linear combination over unique fragment
calculations with integer coefficients obtained by inclusion-exclusion.
This "coefficient map" form is what the coordinator actually evaluates:
it makes the bookkeeping exact for any cutoff choice, and it exposes the
property the asynchronous scheme exploits — every *trimer* enters with
coefficient +1, so trimer gradients can be accumulated directly into the
system gradient (paper Sec. V-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from .monomer import FragmentedSystem

FragKey = tuple[int, ...]


def _centroid_pairs(cents: np.ndarray, r_cut: float) -> list[tuple[int, int]]:
    """All index pairs with centroid distance <= r_cut (KD-tree based, so
    large systems — tens of thousands of monomers — stay tractable)."""
    from scipy.spatial import cKDTree

    tree = cKDTree(cents)
    return sorted(tuple(sorted(p)) for p in tree.query_pairs(r_cut))


def enumerate_dimers(
    system: FragmentedSystem,
    r_cut_bohr: float,
    coords: np.ndarray | None = None,
) -> list[FragKey]:
    """Dimers whose monomer centroids lie within ``r_cut_bohr``."""
    if r_cut_bohr <= 0:
        return []
    cents = system.centroids(coords)
    return _centroid_pairs(cents, r_cut_bohr)


def enumerate_trimers(
    system: FragmentedSystem,
    r_cut_bohr: float,
    coords: np.ndarray | None = None,
) -> list[FragKey]:
    """Trimers with *all* pairwise centroid distances within the cutoff."""
    if r_cut_bohr <= 0:
        return []
    cents = system.centroids(coords)
    pairs = _centroid_pairs(cents, r_cut_bohr)
    n = system.nmonomers
    neigh: list[list[int]] = [[] for _ in range(n)]
    for i, j in pairs:
        neigh[i].append(j)  # j > i by construction
    out = []
    r2 = r_cut_bohr * r_cut_bohr
    for i in range(n):
        cand = neigh[i]
        for ji, j in enumerate(cand):
            cj = cents[j]
            for k in cand[ji + 1 :]:
                dv = cj - cents[k]
                if float(dv @ dv) <= r2:
                    out.append((i, j, k))
    return out


@dataclass
class MBEPlan:
    """The set of fragment calculations and their MBE coefficients."""

    #: coefficient of every unique fragment calculation
    coefficients: dict[FragKey, float] = field(default_factory=dict)
    dimers: list[FragKey] = field(default_factory=list)
    trimers: list[FragKey] = field(default_factory=list)

    @property
    def fragments(self) -> list[FragKey]:
        """Unique fragments with nonzero coefficient, monomers first."""
        return sorted(
            (k for k, c in self.coefficients.items() if abs(c) > 1e-12),
            key=lambda k: (len(k), k),
        )

    @property
    def npolymers(self) -> int:
        """Number of fragment calculations with nonzero coefficient."""
        return len(self.fragments)


def build_plan(
    system: FragmentedSystem,
    r_dimer_bohr: float,
    r_trimer_bohr: float | None = None,
    order: int = 3,
    coords: np.ndarray | None = None,
) -> MBEPlan:
    """Enumerate polymers and compute inclusion-exclusion coefficients.

    Args:
        system: fragmented system.
        r_dimer_bohr: dimer centroid-distance cutoff.
        r_trimer_bohr: trimer cutoff (required for ``order >= 3``).
        order: 1 (monomers), 2 (MBE2) or 3 (MBE3).
        coords: coordinate override for dynamics.
    """
    if order not in (1, 2, 3):
        raise ValueError("MBE order must be 1, 2 or 3")
    plan = MBEPlan()
    coef = plan.coefficients

    def add(key: FragKey, c: float) -> None:
        coef[key] = coef.get(key, 0.0) + c

    for m in range(system.nmonomers):
        add((m,), 1.0)
    if order >= 2:
        plan.dimers = enumerate_dimers(system, r_dimer_bohr, coords)
        for i, j in plan.dimers:
            add((i, j), 1.0)
            add((i,), -1.0)
            add((j,), -1.0)
    if order >= 3:
        if r_trimer_bohr is None:
            raise ValueError("MBE3 requires a trimer cutoff")
        plan.trimers = enumerate_trimers(system, r_trimer_bohr, coords)
        for i, j, k in plan.trimers:
            add((i, j, k), 1.0)
            for pair in combinations((i, j, k), 2):
                add(pair, -1.0)
            for mono in (i, j, k):
                add((mono,), 1.0)
    return plan


def mbe_energy_gradient(
    system: FragmentedSystem,
    plan: MBEPlan,
    calculator,
    coords: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Evaluate the MBE energy and gradient synchronously.

    Runs every fragment through ``calculator.energy_gradient`` and
    assembles with the plan coefficients; gradients are chained back to
    parent atoms through the H-cap rule.
    """
    energy = 0.0
    grad = np.zeros((system.parent.natoms, 3))
    for key in plan.fragments:
        c = plan.coefficients[key]
        mol, atoms, caps = system.fragment_molecule(key, coords)
        e_f, g_f = calculator.energy_gradient(mol)
        energy += c * e_f
        system.map_gradient(g_f, atoms, caps, grad, scale=c)
    return energy, grad


def mbe_energy(
    system: FragmentedSystem,
    plan: MBEPlan,
    calculator,
    coords: np.ndarray | None = None,
) -> float:
    """Energy-only MBE assembly (uses ``calculator.energy`` if present)."""
    energy = 0.0
    for key in plan.fragments:
        c = plan.coefficients[key]
        mol, _, _ = system.fragment_molecule(key, coords)
        if hasattr(calculator, "energy"):
            e_f = calculator.energy(mol)
        else:
            e_f, _ = calculator.energy_gradient(mol)
        energy += c * e_f
    return energy
