"""Many-body expansion: polymer enumeration, coefficients, assembly.

The truncated MBE3 energy (paper Eq. 2)

    E = sum_I E_I + sum_{I<J in D} dE_IJ + sum_{I<J<K in T} dE_IJK

is rewritten as a single linear combination over unique fragment
calculations with integer coefficients obtained by inclusion-exclusion.
This "coefficient map" form is what the coordinator actually evaluates:
it makes the bookkeeping exact for any cutoff choice, and it exposes the
property the asynchronous scheme exploits — every *trimer* enters with
coefficient +1, so trimer gradients can be accumulated directly into the
system gradient (paper Sec. V-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from .monomer import FragmentedSystem

FragKey = tuple[int, ...]


def _centroid_pairs(cents: np.ndarray, r_cut: float) -> list[tuple[int, int]]:
    """All index pairs with centroid distance <= r_cut (KD-tree based, so
    large systems — tens of thousands of monomers — stay tractable)."""
    from scipy.spatial import cKDTree

    tree = cKDTree(cents)
    return sorted(tuple(sorted(p)) for p in tree.query_pairs(r_cut))


def enumerate_dimers(
    system: FragmentedSystem,
    r_cut_bohr: float,
    coords: np.ndarray | None = None,
) -> list[FragKey]:
    """Dimers whose monomer centroids lie within ``r_cut_bohr``."""
    if r_cut_bohr <= 0:
        return []
    cents = system.centroids(coords)
    return _centroid_pairs(cents, r_cut_bohr)


def _trimers_from_pairs(
    cents: np.ndarray, pairs: list[tuple[int, int]], r_cut: float
) -> list[FragKey]:
    """Trimers whose three edges are all within ``r_cut``, given the
    pair list already restricted to that cutoff."""
    n = cents.shape[0]
    neigh: list[list[int]] = [[] for _ in range(n)]
    for i, j in pairs:
        neigh[i].append(j)  # j > i by construction
    out = []
    r2 = r_cut * r_cut
    for i in range(n):
        cand = neigh[i]
        for ji, j in enumerate(cand):
            cj = cents[j]
            for k in cand[ji + 1 :]:
                dv = cj - cents[k]
                if float(dv @ dv) <= r2:
                    out.append((i, j, k))
    return out


def enumerate_trimers(
    system: FragmentedSystem,
    r_cut_bohr: float,
    coords: np.ndarray | None = None,
) -> list[FragKey]:
    """Trimers with *all* pairwise centroid distances within the cutoff."""
    if r_cut_bohr <= 0:
        return []
    cents = system.centroids(coords)
    pairs = _centroid_pairs(cents, r_cut_bohr)
    return _trimers_from_pairs(cents, pairs, r_cut_bohr)


def _polymer_lists(
    system: FragmentedSystem,
    r_dimer_bohr: float,
    r_trimer_bohr: float | None,
    order: int,
    coords: np.ndarray | None,
) -> tuple[list[FragKey], list[FragKey]]:
    """Dimer and trimer key lists from a *single* KD-tree pass.

    One tree query at the larger cutoff serves both enumerations: the
    dimer list is the pairs within ``r_dimer_bohr`` and the trimer
    neighbor graph is the pairs within ``r_trimer_bohr`` — instead of
    building (and querying) two KD-trees per replan.
    """
    r_d = r_dimer_bohr if order >= 2 else 0.0
    r_t = (r_trimer_bohr or 0.0) if order >= 3 else 0.0
    r_max = max(r_d, r_t)
    if r_max <= 0:
        return [], []
    cents = system.centroids(coords)
    pairs = _centroid_pairs(cents, r_max)
    if r_d == r_max:
        dimers = pairs
    else:
        d2 = r_d * r_d
        dimers = [
            (i, j) for i, j in pairs
            if float((cents[i] - cents[j]) @ (cents[i] - cents[j])) <= d2
        ] if r_d > 0 else []
    trimers: list[FragKey] = []
    if r_t > 0:
        if r_t == r_max:
            t_pairs = pairs
        else:
            t2 = r_t * r_t
            t_pairs = [
                (i, j) for i, j in pairs
                if float((cents[i] - cents[j]) @ (cents[i] - cents[j])) <= t2
            ]
        trimers = _trimers_from_pairs(cents, t_pairs, r_t)
    return dimers, trimers


@dataclass
class MBEPlan:
    """The set of fragment calculations and their MBE coefficients."""

    #: coefficient of every unique fragment calculation
    coefficients: dict[FragKey, float] = field(default_factory=dict)
    dimers: list[FragKey] = field(default_factory=list)
    trimers: list[FragKey] = field(default_factory=list)

    @property
    def fragments(self) -> list[FragKey]:
        """Unique fragments with nonzero coefficient, monomers first."""
        return sorted(
            (k for k, c in self.coefficients.items() if abs(c) > 1e-12),
            key=lambda k: (len(k), k),
        )

    @property
    def npolymers(self) -> int:
        """Number of fragment calculations with nonzero coefficient."""
        return len(self.fragments)


def build_plan(
    system: FragmentedSystem,
    r_dimer_bohr: float,
    r_trimer_bohr: float | None = None,
    order: int = 3,
    coords: np.ndarray | None = None,
) -> MBEPlan:
    """Enumerate polymers and compute inclusion-exclusion coefficients.

    Args:
        system: fragmented system.
        r_dimer_bohr: dimer centroid-distance cutoff.
        r_trimer_bohr: trimer cutoff (required for ``order >= 3``).
        order: 1 (monomers), 2 (MBE2) or 3 (MBE3).
        coords: coordinate override for dynamics.
    """
    if order not in (1, 2, 3):
        raise ValueError("MBE order must be 1, 2 or 3")
    if order >= 3 and r_trimer_bohr is None:
        raise ValueError("MBE3 requires a trimer cutoff")
    plan = MBEPlan()
    coef = plan.coefficients

    def add(key: FragKey, c: float) -> None:
        coef[key] = coef.get(key, 0.0) + c

    for m in range(system.nmonomers):
        add((m,), 1.0)
    plan.dimers, plan.trimers = _polymer_lists(
        system, r_dimer_bohr, r_trimer_bohr, order, coords
    )
    for i, j in plan.dimers:
        add((i, j), 1.0)
        add((i,), -1.0)
        add((j,), -1.0)
    for i, j, k in plan.trimers:
        add((i, j, k), 1.0)
        for pair in combinations((i, j, k), 2):
            add(pair, -1.0)
        for mono in (i, j, k):
            add((mono,), 1.0)
    return plan


@dataclass
class ReplanDiff:
    """What changed between two consecutive plans of the same system."""

    #: fragment calculations present in the new plan but not the old
    added: list[FragKey] = field(default_factory=list)
    #: fragment calculations dropped from the plan (their cached state —
    #: e.g. warm-start densities — should be invalidated)
    removed: list[FragKey] = field(default_factory=list)
    #: fragment calculations common to both plans
    reused: int = 0

    @property
    def nchanged(self) -> int:
        """Total number of added plus removed fragment calculations."""
        return len(self.added) + len(self.removed)


def update_plan(
    system: FragmentedSystem,
    prev: MBEPlan,
    r_dimer_bohr: float,
    r_trimer_bohr: float | None = None,
    order: int = 3,
    coords: np.ndarray | None = None,
) -> tuple[MBEPlan, ReplanDiff]:
    """Incrementally re-plan for new coordinates, diffing against ``prev``.

    Between consecutive replan windows of an MD run the monomers move by
    fractions of a bohr, so almost every polymer survives the cutoff
    test. This routine enumerates the new dimer/trimer lists in a single
    KD-tree pass and then *edits* the previous coefficient map — undoing
    the inclusion-exclusion contributions of removed polymers and adding
    those of new ones — instead of rebuilding it from zero. The result
    is exactly equal to ``build_plan`` at the same coordinates (the
    coefficients are integer-valued, so the edits are exact), while the
    returned `ReplanDiff` tells callers which fragment calculations
    appeared or vanished (e.g. for warm-start cache invalidation).

    ``prev`` must come from the same system, order, and cutoffs;
    otherwise the edited coefficients will not match a fresh build.
    """
    if order not in (1, 2, 3):
        raise ValueError("MBE order must be 1, 2 or 3")
    if order >= 3 and r_trimer_bohr is None:
        raise ValueError("MBE3 requires a trimer cutoff")
    dimers, trimers = _polymer_lists(
        system, r_dimer_bohr, r_trimer_bohr, order, coords
    )
    plan = MBEPlan(
        coefficients=dict(prev.coefficients), dimers=dimers, trimers=trimers
    )
    coef = plan.coefficients

    def add(key: FragKey, c: float) -> None:
        coef[key] = coef.get(key, 0.0) + c

    old_fragments = set(prev.fragments)
    old_dimers = set(prev.dimers)
    new_dimers = set(dimers)
    for i, j in prev.dimers:
        if (i, j) not in new_dimers:
            add((i, j), -1.0)
            add((i,), 1.0)
            add((j,), 1.0)
    for i, j in dimers:
        if (i, j) not in old_dimers:
            add((i, j), 1.0)
            add((i,), -1.0)
            add((j,), -1.0)
    old_trimers = set(prev.trimers)
    new_trimers = set(trimers)
    for tri in prev.trimers:
        if tri not in new_trimers:
            add(tri, -1.0)
            for pair in combinations(tri, 2):
                add(pair, 1.0)
            for mono in tri:
                add((mono,), -1.0)
    for tri in trimers:
        if tri not in old_trimers:
            add(tri, 1.0)
            for pair in combinations(tri, 2):
                add(pair, -1.0)
            for mono in tri:
                add((mono,), 1.0)
    # prune keys whose coefficient cancelled exactly (monomers stay:
    # build_plan always seeds them, even at coefficient zero)
    for key in [k for k, c in coef.items() if len(k) > 1 and c == 0.0]:
        del coef[key]

    new_fragments = set(plan.fragments)
    diff = ReplanDiff(
        added=sorted(new_fragments - old_fragments, key=lambda k: (len(k), k)),
        removed=sorted(
            old_fragments - new_fragments, key=lambda k: (len(k), k)
        ),
        reused=len(old_fragments & new_fragments),
    )
    return plan, diff


def mbe_energy_gradient(
    system: FragmentedSystem,
    plan: MBEPlan,
    calculator,
    coords: np.ndarray | None = None,
    surrogate=None,
) -> tuple[float, np.ndarray]:
    """Evaluate the MBE energy and gradient synchronously.

    Runs every fragment through ``calculator.energy_gradient`` and
    assembles with the plan coefficients; gradients are chained back to
    parent atoms through the H-cap rule.

    When a ``repro.surrogate.SurrogateManager`` is supplied, polymer
    (dimer/trimer) contributions are served from the committee surrogate
    whenever its disagreement gate admits them; otherwise the full solve
    runs and its result is fed back as a training pair.  Monomers always
    solve in full.
    """
    energy = 0.0
    grad = np.zeros((system.parent.natoms, 3))
    for key in plan.fragments:
        c = plan.coefficients[key]
        mol, atoms, caps = system.fragment_molecule(key, coords)
        if surrogate is not None and len(key) > 1:
            served = surrogate.predict(key, mol, coefficient=c)
            if served is not None:
                e_f, g_f = served[0], served[1]
                energy += c * e_f
                system.map_gradient(g_f, atoms, caps, grad, scale=c)
                continue
        e_f, g_f = calculator.energy_gradient(mol)
        if surrogate is not None and len(key) > 1:
            surrogate.observe(key, mol, e_f, g_f)
        energy += c * e_f
        system.map_gradient(g_f, atoms, caps, grad, scale=c)
    return energy, grad


def mbe_energy(
    system: FragmentedSystem,
    plan: MBEPlan,
    calculator,
    coords: np.ndarray | None = None,
) -> float:
    """Energy-only MBE assembly (uses ``calculator.energy`` if present)."""
    energy = 0.0
    for key in plan.fragments:
        c = plan.coefficients[key]
        mol, _, _ = system.fragment_molecule(key, coords)
        if hasattr(calculator, "energy"):
            e_f = calculator.energy(mol)
        else:
            e_f, _ = calculator.energy_gradient(mol)
        energy += c * e_f
    return energy
