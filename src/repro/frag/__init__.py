"""Molecular fragmentation and the many-body expansion (MBE2/MBE3)."""

from .cutoffs import (
    ContributionCurve,
    determine_cutoffs,
    dimer_contributions,
    trimer_contributions,
)
from .mbe import (
    MBEPlan,
    build_plan,
    enumerate_dimers,
    enumerate_trimers,
    mbe_energy,
    mbe_energy_gradient,
)
from .monomer import CapBond, FragmentedSystem, Monomer
from .switching import mbe_energy_gradient_switched, smoothstep

__all__ = [
    "CapBond",
    "ContributionCurve",
    "FragmentedSystem",
    "MBEPlan",
    "Monomer",
    "build_plan",
    "determine_cutoffs",
    "dimer_contributions",
    "enumerate_dimers",
    "enumerate_trimers",
    "mbe_energy",
    "mbe_energy_gradient",
    "mbe_energy_gradient_switched",
    "smoothstep",
    "trimer_contributions",
]
