"""Monomers, hydrogen caps, and the fragmented-system container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chem.bonds import bond_graph, connected_components
from ..chem.elements import covalent_radius
from ..chem.molecule import Molecule


@dataclass(frozen=True)
class CapBond:
    """A covalent bond broken by fragmentation, capped with hydrogen.

    The cap hydrogen sits on the inner->outer bond vector at a fixed
    fraction ``ratio`` of the bond length (paper Sec. V-B). Fixing the
    ratio (rather than the absolute X-H distance) makes the cap position
    a linear function of the two real atoms, so fragment gradients chain
    back exactly:

        dE/dr_inner += (1 - ratio) dE/dr_cap
        dE/dr_outer += ratio dE/dr_cap
    """

    inner: int  # parent atom index inside the fragment
    outer: int  # parent atom index the bond reaches (outside)
    ratio: float


@dataclass(frozen=True)
class Monomer:
    """A fragment unit: a set of parent-atom indices plus cap bonds."""

    index: int
    atoms: tuple[int, ...]
    caps: tuple[CapBond, ...] = ()
    charge: int = 0


def _cap_ratio(parent: Molecule, inner: int, outer: int) -> float:
    """Standard-length X-H cap as a fraction of the X-Y bond."""
    r_x = covalent_radius(parent.symbols[inner])
    r_y = covalent_radius(parent.symbols[outer])
    r_h = covalent_radius("H")
    return (r_x + r_h) / (r_x + r_y)


class FragmentedSystem:
    """A molecule split into monomers, with H-cap bookkeeping.

    The container is geometry-agnostic: all atom references are indices
    into ``parent``; pass updated coordinates to the ``*_molecule``
    builders during dynamics via `with_coords`.
    """

    def __init__(self, parent: Molecule, monomers: list[Monomer]) -> None:
        self.parent = parent
        self.monomers = monomers
        owner = {}
        for m in monomers:
            for a in m.atoms:
                if a in owner:
                    raise ValueError(f"atom {a} assigned to two monomers")
                owner[a] = m.index
        if len(owner) != parent.natoms:
            missing = set(range(parent.natoms)) - set(owner)
            raise ValueError(f"atoms not assigned to any monomer: {sorted(missing)}")
        self.atom_owner = owner

    # --- constructors -------------------------------------------------------
    @classmethod
    def by_components(
        cls, parent: Molecule, group_size: int = 1, bond_scale: float = 1.2
    ) -> "FragmentedSystem":
        """One monomer per covalently connected component (or per group of
        ``group_size`` components, as in the paper's 4-urea monomers).

        Components are grouped in spatial order (sorted by centroid along
        the first principal direction) so grouped monomers are compact.
        """
        comps = connected_components(parent, scale=bond_scale)
        if group_size > 1:
            cents = np.array([parent.coords[c].mean(axis=0) for c in comps])
            order = np.lexsort((cents[:, 2], cents[:, 1], cents[:, 0]))
            comps = [comps[i] for i in order]
            comps = [
                sorted(sum(comps[i : i + group_size], []))
                for i in range(0, len(comps), group_size)
            ]
        monomers = [
            Monomer(index=i, atoms=tuple(atoms)) for i, atoms in enumerate(comps)
        ]
        return cls(parent, monomers)

    @classmethod
    def by_blocks(
        cls, parent: Molecule, natoms_per_block: int, group_size: int = 1
    ) -> "FragmentedSystem":
        """Monomers from contiguous equal-size atom blocks.

        For lattice-builder outputs (every molecule occupies a contiguous
        index range) this skips the O(natoms^2) bond detection that
        `by_components` needs, which matters for 10^5-atom clusters.
        Blocks are grouped spatially as in `by_components`.
        """
        if parent.natoms % natoms_per_block != 0:
            raise ValueError(
                f"{parent.natoms} atoms not divisible by block size "
                f"{natoms_per_block}"
            )
        nblocks = parent.natoms // natoms_per_block
        comps = [
            list(range(b * natoms_per_block, (b + 1) * natoms_per_block))
            for b in range(nblocks)
        ]
        if group_size > 1:
            cents = np.array([parent.coords[c].mean(axis=0) for c in comps])
            order = np.lexsort((cents[:, 2], cents[:, 1], cents[:, 0]))
            comps = [comps[i] for i in order]
            comps = [
                sorted(sum(comps[i : i + group_size], []))
                for i in range(0, len(comps), group_size)
            ]
        monomers = [
            Monomer(index=i, atoms=tuple(atoms)) for i, atoms in enumerate(comps)
        ]
        return cls(parent, monomers)

    @classmethod
    def by_atom_lists(
        cls,
        parent: Molecule,
        atom_lists: list[list[int]],
        bond_scale: float = 1.2,
        charges: list[int] | None = None,
    ) -> "FragmentedSystem":
        """Monomers from explicit atom-index lists; broken covalent bonds
        are detected from the bond graph and capped with hydrogens."""
        g = bond_graph(parent, scale=bond_scale)
        owner: dict[int, int] = {}
        for i, atoms in enumerate(atom_lists):
            for a in atoms:
                owner[a] = i
        monomers = []
        for i, atoms in enumerate(atom_lists):
            caps = []
            for a in atoms:
                for nb in g.neighbors(a):
                    if owner.get(nb) != i:
                        caps.append(CapBond(a, nb, _cap_ratio(parent, a, nb)))
            monomers.append(
                Monomer(
                    index=i,
                    atoms=tuple(sorted(atoms)),
                    caps=tuple(caps),
                    charge=0 if charges is None else charges[i],
                )
            )
        return cls(parent, monomers)

    # --- geometry ------------------------------------------------------------
    @property
    def nmonomers(self) -> int:
        """Number of monomer fragments."""
        return len(self.monomers)

    def centroids(self, coords: np.ndarray | None = None) -> np.ndarray:
        """Monomer centroids, shape ``(nmonomers, 3)`` (Bohr)."""
        c = self.parent.coords if coords is None else coords
        return np.array([c[list(m.atoms)].mean(axis=0) for m in self.monomers])

    # --- fragment molecule construction --------------------------------------
    def fragment_molecule(
        self, monomer_ids: tuple[int, ...], coords: np.ndarray | None = None
    ) -> tuple[Molecule, list[int], list[CapBond]]:
        """Build the (capped) molecule for a polymer.

        Args:
            monomer_ids: constituent monomer indices.
            coords: override parent coordinates (Bohr) for dynamics.

        Returns:
            ``(molecule, real_atom_parents, active_caps)`` where
            ``real_atom_parents[k]`` is the parent index of fragment atom
            k (real atoms first, then one entry per cap is *not*
            included — caps are appended after the real atoms in the
            same order as ``active_caps``).
        """
        c = self.parent.coords if coords is None else coords
        atom_set: set[int] = set()
        charge = 0
        caps: list[CapBond] = []
        for mid in monomer_ids:
            m = self.monomers[mid]
            atom_set.update(m.atoms)
            charge += m.charge
        for mid in monomer_ids:
            for cap in self.monomers[mid].caps:
                if cap.outer not in atom_set:
                    caps.append(cap)
        atoms = sorted(atom_set)
        symbols = [self.parent.symbols[a] for a in atoms]
        coords_frag = [c[a] for a in atoms]
        for cap in caps:
            symbols.append("H")
            pos = c[cap.inner] + cap.ratio * (c[cap.outer] - c[cap.inner])
            coords_frag.append(pos)
        mol = Molecule(symbols, np.array(coords_frag), charge=charge)
        # tag the fragment identity so calculators can key per-fragment
        # caches (SCF warm starts) off the molecule alone
        mol.frag_key = tuple(monomer_ids)
        return mol, atoms, caps

    def map_gradient(
        self,
        grad_frag: np.ndarray,
        atoms: list[int],
        caps: list[CapBond],
        out: np.ndarray,
        scale: float = 1.0,
    ) -> None:
        """Chain a fragment gradient back onto parent atoms (in place).

        Cap-hydrogen gradients are distributed onto the two real atoms
        defining the broken bond via the fixed-ratio chain rule.
        """
        nreal = len(atoms)
        for k, a in enumerate(atoms):
            out[a] += scale * grad_frag[k]
        for k, cap in enumerate(caps):
            gc = grad_frag[nreal + k]
            out[cap.inner] += scale * (1.0 - cap.ratio) * gc
            out[cap.outer] += scale * cap.ratio * gc
