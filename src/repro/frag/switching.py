"""Smooth polymer-cutoff switching (the paper's stated future work).

Hard distance cutoffs make polymer corrections drop in and out as
centroid distances fluctuate during dynamics, producing the small
total-energy jumps visible in the paper's Fig. 6 ("It is planned to
incorporate a smooth transition for these polymer cutoffs ... in future
work"). This module implements that transition:

    E = sum_I E_I + sum_{IJ} s(r_IJ) dE_IJ
      + sum_{IJK} s(r_IJ) s(r_IK) s(r_JK) dE_IJK

with a C2 quintic smoothstep ``s`` falling from 1 at ``r_on`` to 0 at
``r_cut``. The gradient picks up the geometric derivative of the
switches, which multiplies only the (small) *corrections* — so forces
stay continuous and NVE fluctuations from cutoff crossings vanish (see
``benchmarks/bench_smooth_cutoff.py``).
"""

from __future__ import annotations

import numpy as np

from .mbe import enumerate_dimers, enumerate_trimers
from .monomer import FragmentedSystem


def smoothstep(r: float, r_on: float, r_cut: float) -> tuple[float, float]:
    """Quintic switch ``s(r)`` and its derivative ``ds/dr``.

    ``s = 1`` for ``r <= r_on``, ``0`` for ``r >= r_cut``, and a C2
    polynomial in between.
    """
    if r <= r_on:
        return 1.0, 0.0
    if r >= r_cut:
        return 0.0, 0.0
    x = (r - r_on) / (r_cut - r_on)
    s = 1.0 - x**3 * (10.0 - 15.0 * x + 6.0 * x * x)
    ds = -(30.0 * x**2 - 60.0 * x**3 + 30.0 * x**4) / (r_cut - r_on)
    return s, ds


def mbe_energy_gradient_switched(
    system: FragmentedSystem,
    calculator,
    r_on_dimer: float,
    r_cut_dimer: float,
    r_on_trimer: float | None = None,
    r_cut_trimer: float | None = None,
    order: int = 3,
    coords: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """MBE energy/gradient with smoothly switched polymer corrections.

    All distances in Bohr; polymers are enumerated out to the ``r_cut``
    radii and their corrections scaled by the switch values. The
    gradient includes both the switched fragment-gradient combination
    and the switch-derivative terms (correction energies times
    ``grad s``), so it is the exact gradient of the switched energy.
    """
    if order not in (2, 3):
        raise ValueError("switched MBE supports orders 2 and 3")
    c = system.parent.coords if coords is None else coords
    natoms = system.parent.natoms
    cents = system.centroids(c)
    mono_atoms = [list(m.atoms) for m in system.monomers]

    cache: dict[tuple[int, ...], tuple[float, np.ndarray]] = {}

    def frag(key: tuple[int, ...]) -> tuple[float, np.ndarray]:
        if key not in cache:
            mol, atoms, caps = system.fragment_molecule(key, c)
            e, gf = calculator.energy_gradient(mol)
            g = np.zeros((natoms, 3))
            system.map_gradient(gf, atoms, caps, g)
            cache[key] = (e, g)
        return cache[key]

    def pair_switch(i: int, j: int, r_on: float, r_cut: float):
        rvec = cents[i] - cents[j]
        r = float(np.linalg.norm(rvec))
        s, ds = smoothstep(r, r_on, r_cut)
        return s, ds, rvec / max(r, 1e-300)

    def add_switch_gradient(g_out, i, j, factor, ds, unit):
        """Accumulate factor * ds * d r_ij / dR (centroid chain rule)."""
        gi = factor * ds * unit
        g_out[mono_atoms[i]] += gi / len(mono_atoms[i])
        g_out[mono_atoms[j]] -= gi / len(mono_atoms[j])

    energy = 0.0
    grad = np.zeros((natoms, 3))
    for m in range(system.nmonomers):
        e, g = frag((m,))
        energy += e
        grad += g

    dimers = enumerate_dimers(system, r_cut_dimer, c)
    dimer_s = {}
    for i, j in dimers:
        s, ds, unit = pair_switch(i, j, r_on_dimer, r_cut_dimer)
        dimer_s[(i, j)] = s
        if s == 0.0 and ds == 0.0:
            continue
        e_ij, g_ij = frag((i, j))
        e_i, g_i = frag((i,))
        e_j, g_j = frag((j,))
        de = e_ij - e_i - e_j
        energy += s * de
        grad += s * (g_ij - g_i - g_j)
        if ds != 0.0:
            add_switch_gradient(grad, i, j, de, ds, unit)

    if order >= 3:
        if r_cut_trimer is None:
            raise ValueError("order 3 requires trimer switch radii")
        if r_on_trimer is None:
            r_on_trimer = 0.8 * r_cut_trimer
        trimers = enumerate_trimers(system, r_cut_trimer, c)
        for i, j, k in trimers:
            sw = {}
            for a, b in ((i, j), (i, k), (j, k)):
                sw[(a, b)] = pair_switch(a, b, r_on_trimer, r_cut_trimer)
            s3 = sw[(i, j)][0] * sw[(i, k)][0] * sw[(j, k)][0]
            any_ds = any(v[1] != 0.0 for v in sw.values())
            if s3 == 0.0 and not any_ds:
                continue
            e_ijk, g_ijk = frag((i, j, k))
            de3 = e_ijk
            g3 = g_ijk.copy()
            for pair in ((i, j), (i, k), (j, k)):
                e_p, g_p = frag(pair)
                de3 -= e_p
                g3 -= g_p
            for mono in (i, j, k):
                e_m, g_m = frag((mono,))
                de3 += e_m
                g3 += g_m
            energy += s3 * de3
            grad += s3 * g3
            # product-rule switch derivatives
            for (a, b), (s_ab, ds_ab, unit_ab) in sw.items():
                if ds_ab == 0.0:
                    continue
                others = 1.0
                for key2, val in sw.items():
                    if key2 != (a, b):
                        others *= val[0]
                add_switch_gradient(grad, a, b, de3 * others, ds_ab, unit_ab)
    return energy, grad
