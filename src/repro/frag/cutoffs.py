"""Distance-cutoff determination from per-polymer energy contributions.

Reproduces the paper's Fig. 5 methodology: evaluate the MBE correction
|dE| of every dimer/trimer involving a reference monomer as a function
of centroid separation, and choose the cutoff where contributions drop
below 0.1 kJ/mol for good.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import BOHR_PER_ANGSTROM, KJMOL_PER_HARTREE, POLYMER_SCREEN_KJMOL
from ..chem.geometry import pairwise_distances
from .monomer import FragmentedSystem


@dataclass
class ContributionCurve:
    """Per-polymer |dE| versus centroid distance (one point per polymer)."""

    distances_angstrom: np.ndarray
    abs_contributions_kjmol: np.ndarray
    kind: str  # "dimer" | "trimer"

    def cutoff(self, threshold_kjmol: float = POLYMER_SCREEN_KJMOL) -> float:
        """Smallest distance (Angstrom) beyond which every contribution is
        below the threshold. Returns 0 if all are below threshold."""
        mask = self.abs_contributions_kjmol >= threshold_kjmol
        if not mask.any():
            return 0.0
        return float(self.distances_angstrom[mask].max())


def _energy(calculator, mol) -> float:
    if hasattr(calculator, "energy"):
        return calculator.energy(mol)
    return calculator.energy_gradient(mol)[0]


def dimer_contributions(
    system: FragmentedSystem,
    calculator,
    reference: int | None = None,
    r_max_angstrom: float = 1.0e9,
) -> ContributionCurve:
    """|dE_IJ| for all dimers involving the reference monomer.

    ``reference=None`` scans every pair (small systems only).
    """
    cents = system.centroids()
    d = pairwise_distances(cents)
    n = system.nmonomers
    e_mono: dict[int, float] = {}

    def mono_energy(i: int) -> float:
        if i not in e_mono:
            mol, _, _ = system.fragment_molecule((i,))
            e_mono[i] = _energy(calculator, mol)
        return e_mono[i]

    pairs = []
    r_max = r_max_angstrom * BOHR_PER_ANGSTROM
    for i in range(n):
        for j in range(i + 1, n):
            if reference is not None and reference not in (i, j):
                continue
            if d[i, j] <= r_max:
                pairs.append((i, j))
    dist = []
    contrib = []
    for i, j in pairs:
        mol, _, _ = system.fragment_molecule((i, j))
        de = _energy(calculator, mol) - mono_energy(i) - mono_energy(j)
        dist.append(d[i, j] / BOHR_PER_ANGSTROM)
        contrib.append(abs(de) * KJMOL_PER_HARTREE)
    return ContributionCurve(np.array(dist), np.array(contrib), "dimer")


def trimer_contributions(
    system: FragmentedSystem,
    calculator,
    reference: int | None = None,
    r_max_angstrom: float = 12.0,
) -> ContributionCurve:
    """|dE_IJK| for trimers involving the reference monomer, with all
    pairwise centroid distances within ``r_max_angstrom``."""
    cents = system.centroids()
    d = pairwise_distances(cents)
    n = system.nmonomers
    r_max = r_max_angstrom * BOHR_PER_ANGSTROM
    cache: dict[tuple[int, ...], float] = {}

    def frag_energy(key: tuple[int, ...]) -> float:
        if key not in cache:
            mol, _, _ = system.fragment_molecule(key)
            cache[key] = _energy(calculator, mol)
        return cache[key]

    dist = []
    contrib = []
    for i in range(n):
        for j in range(i + 1, n):
            if d[i, j] > r_max:
                continue
            for k in range(j + 1, n):
                if reference is not None and reference not in (i, j, k):
                    continue
                if d[i, k] > r_max or d[j, k] > r_max:
                    continue
                de = (
                    frag_energy((i, j, k))
                    - frag_energy((i, j))
                    - frag_energy((i, k))
                    - frag_energy((j, k))
                    + frag_energy((i,))
                    + frag_energy((j,))
                    + frag_energy((k,))
                )
                dmax = max(d[i, j], d[i, k], d[j, k]) / BOHR_PER_ANGSTROM
                dist.append(dmax)
                contrib.append(abs(de) * KJMOL_PER_HARTREE)
    return ContributionCurve(np.array(dist), np.array(contrib), "trimer")


def determine_cutoffs(
    system: FragmentedSystem,
    calculator,
    reference: int | None = None,
    threshold_kjmol: float = POLYMER_SCREEN_KJMOL,
    trimer_scan_angstrom: float = 12.0,
) -> tuple[float, float, ContributionCurve, ContributionCurve]:
    """Full Fig. 5 workflow: scan contributions, pick both cutoffs.

    Returns ``(r_dimer_A, r_trimer_A, dimer_curve, trimer_curve)``.
    """
    dc = dimer_contributions(system, calculator, reference=reference)
    tc = trimer_contributions(
        system, calculator, reference=reference, r_max_angstrom=trimer_scan_angstrom
    )
    return dc.cutoff(threshold_kjmol), tc.cutoff(threshold_kjmol), dc, tc
