"""Numerical-divergence sentinels shared across the SCF, calculator, and
MD layers.

At the paper's scale a trajectory is only as trustworthy as its weakest
fragment solve: a NaN that leaks out of one polymer gradient silently
corrupts every atom it touches once the MBE accumulation runs.  The
resilience design therefore makes divergence *typed*: any layer that
detects a non-finite energy, Fock matrix, density, or force raises
`NumericalDivergenceError`, which the fault-tolerant drivers treat
exactly like a worker exception — retried, then quarantined or fatal per
`FailurePolicy` — instead of letting garbage reach the integrator.
"""

from __future__ import annotations

import numpy as np


class NumericalDivergenceError(RuntimeError):
    """A computed quantity contains NaN/Inf (diverged numerics).

    Raised by the SCF loop, the calculators, and the MD force path when
    a sentinel check fails.  Distinct from `SCFConvergenceError` (which
    means "ran out of iterations"): divergence means the numbers
    themselves are garbage and no downstream consumer may use them.
    """


def ensure_finite(context: str, **quantities) -> None:
    """Raise `NumericalDivergenceError` if any named quantity is non-finite.

    Args:
        context: human-readable origin ("SCF iteration 12", "aimd forces")
            included in the error message.
        **quantities: name -> scalar or array.  ``None`` values are
            skipped so optional gradients can be passed unconditionally.
    """
    for name, value in quantities.items():
        if value is None:
            continue
        arr = np.asarray(value)
        finite = np.isfinite(arr)
        if not finite.all():
            nbad = int(arr.size - np.count_nonzero(finite))
            raise NumericalDivergenceError(
                f"{context}: non-finite {name} "
                f"({nbad}/{arr.size} entries NaN/Inf)"
            )
