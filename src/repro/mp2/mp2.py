"""MP2 correlation energies: conventional and RI variants.

Closed-shell restricted formulas; no frozen core (matching the paper,
Sec. V-A). The RI path consumes the fitted B tensor retained by the SCF
result so the three-center integrals are computed exactly once per
fragment (paper contribution ii).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gemm import gemm
from ..scf.rhf import SCFResult


@dataclass
class MP2Result:
    """MP2 correlation energy and reusable MO-basis intermediates."""

    e_corr: float
    e_scf: float
    #: MO-basis fitted tensor B_ia^P, shape (nocc, nvirt, naux); None for
    #: the conventional path.
    B_ia: np.ndarray | None = None
    #: amplitudes t_ij^ab = (ia|jb)/Delta, shape (o, o, v, v)
    t2: np.ndarray | None = None

    @property
    def e_total(self) -> float:
        """SCF + correlation energy."""
        return self.e_scf + self.e_corr


def _denominators(eps: np.ndarray, nocc: int) -> np.ndarray:
    """Delta[i,j,a,b] = eps_i + eps_j - eps_a - eps_b."""
    eo = eps[:nocc]
    ev = eps[nocc:]
    return (
        eo[:, None, None, None]
        + eo[None, :, None, None]
        - ev[None, None, :, None]
        - ev[None, None, None, :]
    )


def mp2_conventional(res: SCFResult) -> MP2Result:
    """MP2 energy from explicitly transformed four-center ERIs."""
    if res.eri is None:
        raise ValueError("conventional MP2 requires the 4-center ERI tensor")
    Co, Cv = res.C_occ, res.C_virt
    # (ia|jb): quarter transformations, O(N^5)
    tmp = np.einsum("mnls,mi->inls", res.eri, Co, optimize=True)
    tmp = np.einsum("inls,na->ials", tmp, Cv, optimize=True)
    tmp = np.einsum("ials,lj->iajs", tmp, Co, optimize=True)
    ovov = np.einsum("iajs,sb->iajb", tmp, Cv, optimize=True)
    delta = _denominators(res.eps, res.nocc)
    iajb = ovov.transpose(0, 2, 1, 3)  # (i,j,a,b)
    t2 = iajb / delta
    e_corr = float(np.einsum("ijab,ijab->", t2, 2.0 * iajb) -
                   np.einsum("ijab,ijba->", t2, iajb))
    return MP2Result(e_corr=e_corr, e_scf=res.energy, t2=t2)


def mo_b_tensor(res: SCFResult) -> np.ndarray:
    """Occupied-virtual block of the fitted tensor: B_ia^P (o, v, naux)."""
    if res.B is None:
        raise ValueError("SCF result carries no RI tensors")
    n, _, naux = res.B.shape
    Co, Cv = res.C_occ, res.C_virt
    o, v = Co.shape[1], Cv.shape[1]
    # half transform: (i nu | P)
    half = gemm(Co.T, res.B.reshape(n, n * naux)).reshape(o, n, naux)
    half = np.ascontiguousarray(half.transpose(0, 2, 1)).reshape(o * naux, n)
    full = gemm(half, Cv).reshape(o, naux, v).transpose(0, 2, 1)
    return np.ascontiguousarray(full)


def scs_theta(t2: np.ndarray, c_os: float, c_ss: float) -> np.ndarray:
    """Spin-component-scaled contraction amplitudes.

    ``theta = (c_os + c_ss) t - c_ss t(ab-swap)``; the plain MP2 case is
    ``c_os = c_ss = 1`` (giving the familiar ``2t - t_swap``). SCS-MP2
    (Grimme) uses ``c_os = 6/5, c_ss = 1/3`` — the 'scaled MP2' the
    paper's lattice-energy predictions rely on (Sec. VI-B).
    """
    return (c_os + c_ss) * t2 - c_ss * t2.transpose(0, 1, 3, 2)


#: Grimme's SCS-MP2 coefficients
SCS_OS = 1.2
SCS_SS = 1.0 / 3.0


def mp2_ri(res: SCFResult, c_os: float = 1.0, c_ss: float = 1.0) -> MP2Result:
    """RI-MP2 energy: (ia|jb)_RI = sum_P B_ia^P B_jb^P (paper Eq. 9).

    ``c_os`` / ``c_ss`` optionally spin-component-scale the correlation
    energy (SCS-MP2 with the `SCS_OS`/`SCS_SS` constants).
    """
    B_ia = mo_b_tensor(res)
    o, v, naux = B_ia.shape
    Bf = B_ia.reshape(o * v, naux)
    iajb = gemm(Bf, Bf.T).reshape(o, v, o, v).transpose(0, 2, 1, 3)
    delta = _denominators(res.eps, res.nocc)
    t2 = iajb / delta
    theta = scs_theta(t2, c_os, c_ss)
    e_corr = float(np.einsum("ijab,ijab->", theta, iajb))
    return MP2Result(e_corr=e_corr, e_scf=res.energy, B_ia=B_ia, t2=t2)


def mp2(res: SCFResult) -> MP2Result:
    """Dispatch on how the SCF was solved."""
    if res.method == "ri-rhf":
        return mp2_ri(res)
    return mp2_conventional(res)


def pair_energies(
    res: SCFResult, c_os: float = 1.0, c_ss: float = 1.0
) -> np.ndarray:
    """Per-occupied-pair correlation energies ``e_ij`` (symmetric, o x o).

    ``sum_ij e_ij`` equals the (SCS-)MP2 correlation energy; the matrix
    localizes correlation between orbital pairs, the quantity local-MP2
    methods truncate (paper Sec. IV discussion of reduced-scaling MP2).
    """
    B_ia = mo_b_tensor(res)
    o, v, naux = B_ia.shape
    Bf = B_ia.reshape(o * v, naux)
    iajb = gemm(Bf, Bf.T).reshape(o, v, o, v).transpose(0, 2, 1, 3)
    delta = _denominators(res.eps, res.nocc)
    t2 = iajb / delta
    theta = scs_theta(t2, c_os, c_ss)
    return np.einsum("ijab,ijab->ij", theta, iajb, optimize=True)
