"""Analytic RI-HF + RI-MP2 nuclear gradient (paper Sec. V-E and Appendix).

Implements the synergistic formulation in which *no* four-center
integrals or derivatives appear: the full gradient is

    E^xi = sum_{mn P} Z_{mn}^P (mn|P)^xi  +  sum_{PQ} zeta_PQ (P|Q)^xi
         + sum_{mn} Pc_{mn} h^xi_{mn}     +  sum_{mn} Ws_{mn} S^xi_{mn}
         + E_nuc^xi

where the coefficient tensors are computed *first* and the integral
derivatives are contracted on the fly (never stored), exactly as the
paper organizes the computation.

Derivation notes (closed-shell, canonical real orbitals; the factor
conventions here are validated against finite differences in the test
suite):

* amplitudes ``t_ijab = (ia|jb)/Delta``, ``theta = 2t - t(ab-swap)``;
  ``E2 = sum theta (ia|jb)``.
* denominator response gives the unrelaxed densities (occupation-1)
  ``P_ij = -sum_kab theta_ikab t_jkab``,
  ``P_ab = +sum_ijc theta_ijac t_ijbc``.
* orbital rotations U produce the Lagrangian
  ``Theta_ai = 4 I1_ai - 4 I2_ia + 2 A[P0]_ai`` with
  ``I1_pi = sum_jab theta_ijab (pa|jb)``,
  ``I2_pa = sum_ijb theta_ijab (ip|jb)``,
  solved by the Z-vector equation ``A z = Theta``.
* the total Fock-response coefficient is
  ``Pc = 2 P0 (oo, vv)  (+)  -z/2 (ov, vo)``; it contracts both the
  core-Hamiltonian derivative and the *separable* two-electron
  coefficients (Pc x D^HF patterns).
* all overlap-derivative terms are collected in the MO matrix ``SW``
  (built below) and contracted as ``sum SW_pq S^xi_pq``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gemm import gemm
from ..integrals import (
    contract_eri2c_deriv,
    contract_eri3c_deriv,
    contract_hcore_deriv,
    contract_overlap_deriv,
)
from ..scf.grad import ri_twoelectron_coefficients
from ..scf.rhf import SCFResult
from .mp2 import _denominators
from .zvector import solve_zvector


@dataclass
class MP2GradientResult:
    """Gradient plus the relaxed-density intermediates (for testing)."""

    gradient: np.ndarray  # (natoms, 3), Hartree/Bohr
    e_corr: float
    Pc_mo: np.ndarray  # Fock-response coefficient matrix (MO)
    z: np.ndarray  # Z-vector (nvirt, nocc)
    P0_oo: np.ndarray
    P0_vv: np.ndarray


def full_mo_b(res: SCFResult) -> np.ndarray:
    """Fitted tensor in the full MO basis: Bmo[p, q, P]."""
    n, _, naux = res.B.shape
    C = res.C
    nmo = C.shape[1]
    half = gemm(C.T, res.B.reshape(n, n * naux)).reshape(nmo, n, naux)
    half = np.ascontiguousarray(half.transpose(0, 2, 1)).reshape(nmo * naux, n)
    full = gemm(half, C).reshape(nmo, naux, nmo).transpose(0, 2, 1)
    return np.ascontiguousarray(full)


def a_sym_contract(X: np.ndarray, Bmo: np.ndarray) -> np.ndarray:
    """``R_pq = sum_rs [4(pq|rs) - (pr|qs) - (ps|qr)] X_rs`` (X symmetric).

    For symmetric X the two exchange terms are equal, so
    ``R = 4 J[X] - 2 K[X]`` with RI-factorized J and K.
    """
    w = np.einsum("rsP,rs->P", Bmo, X, optimize=True)
    R = 4.0 * np.einsum("pqP,P->pq", Bmo, w, optimize=True)
    BX = np.einsum("prP,rs->psP", Bmo, X, optimize=True)
    R -= 2.0 * np.einsum("psP,qsP->pq", BX, Bmo, optimize=True)
    return R


@dataclass
class CorrectionCoefficients:
    """MP2-correction derivative coefficients (HF reference excluded)."""

    Pc_ao: np.ndarray
    SW_ao: np.ndarray
    Z3c: np.ndarray
    zeta: np.ndarray
    e_corr: float
    Pc_mo: np.ndarray
    z: np.ndarray
    P0_oo: np.ndarray
    P0_vv: np.ndarray


def mp2_correction_coefficients(
    res: SCFResult, c_os: float = 1.0, c_ss: float = 1.0
) -> CorrectionCoefficients:
    """All MP2-gradient coefficient tensors for an SCF reference that
    carries RI tensors (the HF part of the gradient is *not* included).

    ``c_os``/``c_ss`` spin-component-scale the correlation treatment
    (SCS-MP2). The entire Lagrangian machinery flows through ``theta``,
    so scaling it is the complete change: E2, densities, Z-vector and
    all derivative coefficients become those of the scaled functional."""
    if res.B is None:
        raise ValueError("RI-MP2 gradient requires RI tensors on the SCF result")
    mol, basis, aux = res.mol, res.basis, res.aux
    nocc = res.nocc
    C, eps = res.C, res.eps
    nmo = C.shape[1]
    nvirt = nmo - nocc
    naux = res.B.shape[2]
    Jih = res.Jih

    # ---- amplitudes -------------------------------------------------------
    Bmo = full_mo_b(res)
    Bia = np.ascontiguousarray(Bmo[:nocc, nocc:, :])  # (o, v, P)
    iajb = gemm(
        Bia.reshape(nocc * nvirt, naux), Bia.reshape(nocc * nvirt, naux).T
    ).reshape(nocc, nvirt, nocc, nvirt)
    ovov = iajb.transpose(0, 2, 1, 3)  # (i, j, a, b)
    delta = _denominators(eps, nocc)
    t2 = ovov / delta
    theta = (c_os + c_ss) * t2 - c_ss * t2.transpose(0, 1, 3, 2)
    e_corr = float(np.sum(theta * ovov))

    # ---- unrelaxed densities (occupation-1) ------------------------------
    P0_oo = -np.einsum("ikab,jkab->ij", theta, t2, optimize=True)
    P0_vv = np.einsum("ijac,ijbc->ab", theta, t2, optimize=True)

    # ---- 3-index two-particle density (Gamma-hat, B level) ---------------
    # Gh[i, a, P] = sum_jb theta_ijab B_jb^P
    Gh = np.einsum(
        "ijab,jbP->iaP", theta, Bia, optimize=True
    )

    # ---- Lagrangian intermediates -----------------------------------------
    # I1[p, i] = sum_aP Bmo[p, a, P] Gh[i, a, P]
    I1 = np.einsum("paP,iaP->pi", Bmo[:, nocc:, :], Gh, optimize=True)
    # I2[p, a] = sum_iP Bmo[i, p, P] Gh[i, a, P]
    I2 = np.einsum("ipP,iaP->pa", Bmo[:nocc, :, :], Gh, optimize=True)

    P0_full = np.zeros((nmo, nmo))
    P0_full[:nocc, :nocc] = P0_oo
    P0_full[nocc:, nocc:] = P0_vv
    AP0 = a_sym_contract(P0_full, Bmo)

    theta_ai = (
        4.0 * I1[nocc:, :]
        - 4.0 * I2[:nocc, :].T
        + 2.0 * AP0[nocc:, :nocc]
    )

    # ---- Z-vector ----------------------------------------------------------
    z = solve_zvector(theta_ai, Bmo, eps, nocc)

    # ---- Fock-response coefficient matrix Pc ------------------------------
    Pc = np.zeros((nmo, nmo))
    Pc[:nocc, :nocc] = 2.0 * P0_oo
    Pc[nocc:, nocc:] = 2.0 * P0_vv
    Pc[nocc:, :nocc] = -0.5 * z
    Pc[:nocc, nocc:] = -0.5 * z.T
    Pc_ao = gemm(gemm(C, Pc), C.T)

    # ---- overlap-derivative coefficient matrix SW -------------------------
    Xz = np.zeros((nmo, nmo))
    Xz[nocc:, :nocc] = 0.5 * z
    Xz[:nocc, nocc:] = 0.5 * z.T
    Az = a_sym_contract(Xz, Bmo)

    eo = eps[:nocc]
    ev = eps[nocc:]
    SW = np.zeros((nmo, nmo))
    SW[:nocc, :nocc] = (
        -(eo[:, None] + eo[None, :]) * P0_oo
        - AP0[:nocc, :nocc]
        - 2.0 * I1[:nocc, :]
        + 0.5 * Az[:nocc, :nocc]
    )
    SW[nocc:, nocc:] = (
        -(ev[:, None] + ev[None, :]) * P0_vv - 2.0 * I2[nocc:, :]
    )
    SW[:nocc, nocc:] = -4.0 * I2[:nocc, :]
    SW[nocc:, :nocc] = z * eo[None, :]
    SW_ao = gemm(gemm(C, SW), C.T)

    # ---- non-separable two-electron coefficients --------------------------
    # G (J^{-1} level) and g for the metric-derivative term.
    G = gemm(Gh.reshape(nocc * nvirt, naux), Jih).reshape(nocc, nvirt, naux)
    g_ia = gemm(Bia.reshape(nocc * nvirt, naux), Jih).reshape(nocc, nvirt, naux)
    Co, Cv = res.C_occ, res.C_virt
    Z3c_ns = 4.0 * np.einsum("mi,na,iaP->mnP", Co, Cv, G, optimize=True)
    zeta_ns = -2.0 * np.einsum("iaR,iaS->RS", g_ia, G, optimize=True)

    # ---- separable two-electron coefficients (Pc x D^HF) ------------------
    n = basis.nbf
    D2 = res.D  # occupation-2 SCF density
    B_ao = res.B
    y_ao = gemm(B_ao.reshape(n * n, naux), Jih).reshape(n, n, naux)
    cD = np.einsum("mnP,mn->P", y_ao, D2, optimize=True)
    cP = np.einsum("mnP,mn->P", y_ao, Pc_ao, optimize=True)
    Z3c_sep = (
        Pc_ao[:, :, None] * cD[None, None, :]
        + D2[:, :, None] * cP[None, None, :]
        - np.einsum("ml,lsP,ns->mnP", Pc_ao, y_ao, D2, optimize=True)
    )
    zeta_sep = -np.outer(cP, cD) + 0.5 * np.einsum(
        "mnR,ml,ns,lsS->RS", y_ao, Pc_ao, D2, y_ao, optimize=True
    )

    return CorrectionCoefficients(
        Pc_ao=Pc_ao,
        SW_ao=SW_ao,
        Z3c=Z3c_ns + Z3c_sep,
        zeta=zeta_ns + zeta_sep,
        e_corr=e_corr,
        Pc_mo=Pc,
        z=z,
        P0_oo=P0_oo,
        P0_vv=P0_vv,
    )


def rimp2_gradient(res: SCFResult, return_intermediates: bool = False,
                   c_os: float = 1.0, c_ss: float = 1.0,
                   int_screen: float = 0.0, workspace=None):
    """Analytic gradient of the RI-HF + RI-MP2 total energy.

    The paper's synergistic formulation: HF and MP2 coefficient tensors
    share the same four integral-derivative classes, so a single
    contraction pass (h^xi, S^xi, (mn|P)^xi, (P|Q)^xi) covers the whole
    gradient and *no* four-center derivative ever appears.

    Args:
        res: converged RI-HF result (``rhf(..., ri=True)``).
        return_intermediates: return `MP2GradientResult` instead of the
            bare array.
        int_screen: Schwarz screening threshold for the three-center
            derivative contraction (0 disables).
        workspace: optional `repro.integrals.IntegralWorkspace` serving
            cached pair tables and bound tables.

    Returns:
        ``(natoms, 3)`` gradient in Hartree/Bohr (or the result object).
    """
    if res.method != "ri-rhf":
        raise ValueError("RI-MP2 gradient requires an RI SCF reference")
    cc = mp2_correction_coefficients(res, c_os=c_os, c_ss=c_ss)
    mol, basis, aux = res.mol, res.basis, res.aux
    natoms = mol.natoms
    Z3c_hf, zeta_hf = ri_twoelectron_coefficients(res)
    eps_o = res.eps[: res.nocc]
    W_hf = 2.0 * gemm(res.C_occ * eps_o[None, :], res.C_occ.T)
    grad = mol.nuclear_repulsion_gradient()
    grad += contract_hcore_deriv(basis, mol, res.D + cc.Pc_ao, workspace)
    grad += contract_eri3c_deriv(
        basis, aux, Z3c_hf + cc.Z3c, natoms,
        screen=int_screen, workspace=workspace,
    )
    grad += contract_eri2c_deriv(aux, zeta_hf + cc.zeta, natoms, workspace)
    grad += contract_overlap_deriv(basis, cc.SW_ao - W_hf, workspace)
    if return_intermediates:
        return MP2GradientResult(
            gradient=grad, e_corr=cc.e_corr, Pc_mo=cc.Pc_mo, z=cc.z,
            P0_oo=cc.P0_oo, P0_vv=cc.P0_vv,
        )
    return grad


def rimp2_gradient_conventional_hf(
    res: SCFResult, aux=None, return_e_corr: bool = False
):
    """Gradient of conventional-HF + RI-MP2 — the baseline RI-HF replaces.

    This is the "without RI-HF" curve of the paper's Fig. 3: the HF
    component uses explicit four-center integrals and their derivatives
    (`contract_eri4c_deriv_hf`), while the MP2 correction is RI-based.
    The cost difference against `rimp2_gradient` quantifies what
    eliminating four-center integral derivatives buys for small
    fragments.

    Note: the orbital-response (CPHF) and separable coefficients are
    evaluated at the RI level against the exact-HF reference — the
    standard RI-CPHF approximation — so the gradient is exact only to
    the RI fitting accuracy (~1e-5 Ha/Bohr with the auto-generated
    auxiliary bases).
    """
    from ..integrals import contract_eri4c_deriv_hf
    from ..scf.rhf import build_ri_tensors

    if res.method != "rhf":
        raise ValueError("expected a conventional (ri=False) SCF reference")
    mol, basis = res.mol, res.basis
    natoms = mol.natoms
    if res.B is None:
        if aux is None:
            raise ValueError("pass an auxiliary BasisSet for the MP2 part")
        res.aux = aux
        res.B, res.J2c, res.Jih = build_ri_tensors(basis, aux)
    cc = mp2_correction_coefficients(res)
    eps_o = res.eps[: res.nocc]
    W_hf = 2.0 * gemm(res.C_occ * eps_o[None, :], res.C_occ.T)
    grad = mol.nuclear_repulsion_gradient()
    grad += contract_hcore_deriv(basis, mol, res.D + cc.Pc_ao)
    # HF two-electron part: four-center derivatives (the bottleneck)
    grad += contract_eri4c_deriv_hf(basis, res.D, natoms)
    # MP2 correction: RI three-/two-center derivative contractions
    grad += contract_eri3c_deriv(basis, res.aux, cc.Z3c, natoms)
    grad += contract_eri2c_deriv(res.aux, cc.zeta, natoms)
    grad += contract_overlap_deriv(basis, cc.SW_ao - W_hf)
    if return_e_corr:
        return grad, cc.e_corr
    return grad

