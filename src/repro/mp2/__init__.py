"""MP2 correlation energies and the analytic RI-MP2 gradient."""

from .mp2 import MP2Result, mo_b_tensor, mp2, mp2_conventional, mp2_ri, pair_energies, scs_theta
from .rimp2_grad import (
    CorrectionCoefficients,
    MP2GradientResult,
    full_mo_b,
    mp2_correction_coefficients,
    rimp2_gradient,
    rimp2_gradient_conventional_hf,
)
from .zvector import apply_orbital_hessian, solve_zvector

__all__ = [
    "CorrectionCoefficients",
    "MP2GradientResult",
    "MP2Result",
    "apply_orbital_hessian",
    "full_mo_b",
    "mo_b_tensor",
    "mp2",
    "mp2_conventional",
    "mp2_ri",
    "pair_energies",
    "scs_theta",
    "mp2_correction_coefficients",
    "rimp2_gradient",
    "rimp2_gradient_conventional_hf",
    "solve_zvector",
]
