"""Z-vector (coupled-perturbed HF) solver for the MP2 relaxed density.

Solves, for the occupied-virtual multiplier ``z``,

    (eps_a - eps_i) z_ai + sum_bj A_ai,bj z_bj = Theta_ai

with the closed-shell orbital Hessian

    A_ai,bj = 4 (ai|bj) - (ab|ij) - (aj|ib).

All two-electron integrals enter through the fitted MO tensor
``Bmo[p,q,P]``, so the operator application is a short GEMM sequence —
the same structure the paper relies on. A dense solve is used for small
``ov`` dimensions and a matrix-free conjugate-gradient (on the
symmetric positive-definite operator) otherwise.
"""

from __future__ import annotations

import numpy as np

from ..gemm import gemm


def apply_orbital_hessian(
    z: np.ndarray, Bmo: np.ndarray, eps: np.ndarray, nocc: int
) -> np.ndarray:
    """``(A z)_ai`` including the diagonal ``(eps_a - eps_i)`` term.

    Args:
        z: (nvirt, nocc) trial vector.
        Bmo: (nmo, nmo, naux) fitted MO integrals.
        eps: orbital energies.
        nocc: number of occupied orbitals.
    """
    nmo = Bmo.shape[0]
    eo = eps[:nocc]
    ev = eps[nocc:]
    Bai = Bmo[nocc:, :nocc, :]  # (v, o, P)
    Bab = Bmo[nocc:, nocc:, :]  # (v, v, P)
    Bij = Bmo[:nocc, :nocc, :]  # (o, o, P)
    out = (ev[:, None] - eo[None, :]) * z
    # Coulomb-like: 4 sum_P B_ai^P (sum_bj B_bj^P z_bj)
    w = np.einsum("bjP,bj->P", Bai, z, optimize=True)
    out += 4.0 * np.einsum("aiP,P->ai", Bai, w, optimize=True)
    # Exchange 1: -(ab|ij) z_bj
    out -= np.einsum("abP,ijP,bj->ai", Bab, Bij, z, optimize=True)
    # Exchange 2: -(aj|ib) z_bj
    Bia = Bmo[:nocc, nocc:, :]
    out -= np.einsum("ajP,ibP,bj->ai", Bai, Bia, z, optimize=True)
    return out


def solve_zvector(
    theta: np.ndarray,
    Bmo: np.ndarray,
    eps: np.ndarray,
    nocc: int,
    tol: float = 1.0e-11,
    max_cycles: int = 200,
    dense_cutoff: int = 4000,
) -> np.ndarray:
    """Solve ``A z = Theta`` for the Z-vector.

    Uses a dense factorization when ``nvirt * nocc <= dense_cutoff``;
    otherwise preconditioned conjugate gradients with the orbital-energy
    diagonal as preconditioner.
    """
    nmo = Bmo.shape[0]
    nvirt = nmo - nocc
    ov = nvirt * nocc
    if ov <= dense_cutoff:
        eo = eps[:nocc]
        ev = eps[nocc:]
        Bai = Bmo[nocc:, :nocc, :]
        Bab = Bmo[nocc:, nocc:, :]
        Bij = Bmo[:nocc, :nocc, :]
        Bia = np.ascontiguousarray(Bai.transpose(1, 0, 2))
        A = 4.0 * np.einsum("aiP,bjP->aibj", Bai, Bai, optimize=True)
        A -= np.einsum("abP,ijP->aibj", Bab, Bij, optimize=True)
        A -= np.einsum("ajP,ibP->aibj", Bai, Bia, optimize=True)
        A = A.reshape(ov, ov)
        A[np.diag_indices(ov)] += (ev[:, None] - eo[None, :]).ravel()
        return np.linalg.solve(A, theta.ravel()).reshape(nvirt, nocc)

    # Preconditioned CG (A is SPD for a stable SCF reference).
    eo = eps[:nocc]
    ev = eps[nocc:]
    diag = ev[:, None] - eo[None, :]
    z = theta / diag
    r = theta - apply_orbital_hessian(z, Bmo, eps, nocc)
    p = r / diag
    rs = float(np.sum(r * (r / diag)))
    for _ in range(max_cycles):
        Ap = apply_orbital_hessian(p, Bmo, eps, nocc)
        alpha = rs / float(np.sum(p * Ap))
        z += alpha * p
        r -= alpha * Ap
        if float(np.max(np.abs(r))) < tol:
            break
        rs_new = float(np.sum(r * (r / diag)))
        p = r / diag + (rs_new / rs) * p
        rs = rs_new
    else:
        raise RuntimeError("Z-vector CG did not converge")
    return z
