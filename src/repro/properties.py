"""Molecular properties from SCF and MP2 relaxed densities.

The MP2 dipole is evaluated with the *relaxed* one-particle density
(unrelaxed blocks + Z-vector orbital response) — the same density that
enters the analytic gradient, so property tests independently validate
the response machinery: ``dE/d(field) = -dipole`` must hold by the
Hellmann-Feynman theorem for the relaxed density.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gemm import gemm
from .integrals.moments import dipole_integrals, nuclear_dipole
from .mp2.rimp2_grad import mp2_correction_coefficients
from .scf.rhf import SCFResult

DEBYE_PER_AU = 2.541746473


@dataclass
class DipoleResult:
    """Dipole moment in atomic units (e * Bohr)."""

    dipole_au: np.ndarray  # (3,)
    nuclear: np.ndarray
    electronic: np.ndarray

    @property
    def magnitude_au(self) -> float:
        """Dipole magnitude in atomic units."""
        return float(np.linalg.norm(self.dipole_au))

    @property
    def magnitude_debye(self) -> float:
        """Dipole magnitude in Debye."""
        return self.magnitude_au * DEBYE_PER_AU


def scf_dipole(res: SCFResult, origin: np.ndarray | None = None) -> DipoleResult:
    """Hartree-Fock dipole moment from the SCF density."""
    M = dipole_integrals(res.basis, origin=origin)
    nuc = nuclear_dipole(res.mol, origin=origin)
    elec = -np.einsum("xmn,mn->x", M, res.D)
    return DipoleResult(dipole_au=nuc + elec, nuclear=nuc, electronic=elec)


def mp2_dipole(
    res: SCFResult,
    origin: np.ndarray | None = None,
    c_os: float = 1.0,
    c_ss: float = 1.0,
) -> DipoleResult:
    """MP2 dipole from the relaxed density (SCF + MP2 response).

    Requires an RI SCF reference (the correction coefficients reuse the
    gradient machinery).
    """
    M = dipole_integrals(res.basis, origin=origin)
    nuc = nuclear_dipole(res.mol, origin=origin)
    cc = mp2_correction_coefficients(res, c_os=c_os, c_ss=c_ss)
    D_total = res.D + cc.Pc_ao
    elec = -np.einsum("xmn,mn->x", M, D_total)
    return DipoleResult(dipole_au=nuc + elec, nuclear=nuc, electronic=elec)
