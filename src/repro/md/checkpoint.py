"""Crash-safe checkpoint/resume for AIMD trajectories.

A multi-hour trajectory over thousands of fragment solves must survive a
mid-run kill (node loss, scheduler preemption, OOM) without losing the
whole run.  This module provides the persistence layer:

* **Versioned** — every file carries a magic string and a format
  version; readers reject files they do not understand instead of
  mis-parsing them.
* **Checksummed** — a SHA-256 digest over every payload array is stored
  in the file and re-verified on load, so torn or bit-rotted files fail
  loudly as `CheckpointError`, never as silently-wrong dynamics.
* **Atomically written** — the payload is serialized in memory, written
  to a temporary file in the target directory, fsynced, and
  ``os.replace``d over the destination.  A kill at any instant leaves
  either the previous checkpoint or the new one, never a torn file.
* **Rotated with last-good fallback** — with ``keep > 1``,
  `write_checkpoint` shifts prior checkpoints to ``path.1``,
  ``path.2``, ... before writing the new primary, and
  `read_checkpoint_with_fallback` walks that chain newest-first when
  the primary fails validation (emitting a ``ckpt.fallback`` tracer
  instant), so even a checkpoint corrupted *after* its atomic write —
  bit rot, a torn copy through a non-atomic transport — costs one
  checkpoint interval of progress, not the run.

A `Checkpoint` carries everything needed for *exact* continuation:
coordinates, velocities, and time at a consistent integer step, the
per-step energy history up to that step (and, for the synchronous
driver, full frame history), thermostat state including its RNG stream,
the fault-tolerance `DriverReport` counters accumulated so far, and —
for multiple-time-step runs — the r-RESPA slow-tier state (held slow
forces and extrapolation history; see `repro.md.mts`), which cannot be
recomputed from the resumed coordinates alone.
With the coordinator's deterministic-reduction mode the resumed
trajectory is bitwise identical to an uninterrupted one.

The SCF warm-start `GuessCache` (`repro.calculators`) is deliberately
**not** part of a checkpoint: cached densities are pure accelerators, so
a resumed run restarts from cold guesses and only pays extra SCF
iterations. This is also what keeps ``--deterministic`` resumes bitwise
exact — deterministic mode disables warm starts entirely (a warm-started
density differs from a cold-started one at the convergence threshold,
and a resume necessarily loses the cache), so an uninterrupted and a
resumed deterministic run perform identical arithmetic.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: file-format identity: readers refuse anything else
CHECKPOINT_MAGIC = "repro-aimd-checkpoint"
#: version 2 added the optional multiple-time-step (r-RESPA) block:
#: an ``mts`` metadata dict plus held slow-tier force arrays. Version 3
#: added two more optional blocks: the per-tier MTS ladder's second
#: (trimer) slow tier, and the online-surrogate training state (a
#: ``surrogate`` metadata dict plus per-class training-window arrays).
#: Version-1/2 files remain readable (the blocks are simply absent), and
#: runs that use none of the optional features still write files whose
#: layout matches the version-1 original except for the version number.
CHECKPOINT_VERSION = 3
CHECKPOINT_READABLE_VERSIONS = (1, 2, 3)


class CheckpointError(RuntimeError):
    """A checkpoint file is corrupt, incompatible, or mismatched.

    Raised on bad magic/version, checksum failure, missing payload
    arrays, malformed containers, and molecule mismatch on resume.
    """


@dataclass
class Checkpoint:
    """One consistent snapshot of a running AIMD trajectory."""

    #: integer time step the snapshot is taken at (between steps)
    step: int
    time_fs: float
    coords: np.ndarray
    velocities: np.ndarray
    #: identity of the system, validated on resume
    symbols: tuple[str, ...]
    charge: int = 0
    #: per-step energy history for steps <= ``step``
    times_fs: np.ndarray = field(default_factory=lambda: np.zeros(0))
    potential: np.ndarray = field(default_factory=lambda: np.zeros(0))
    kinetic: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: full frame history (synchronous driver only; empty otherwise)
    frame_coords: np.ndarray | None = None
    frame_velocities: np.ndarray | None = None
    #: opaque thermostat state (incl. RNG stream), JSON-serializable
    thermostat: dict | None = None
    #: fault-tolerance counters accumulated before the snapshot
    driver: dict | None = None
    #: scheduler reference monomer (preserved so a resumed async run
    #: replays the same task priority order)
    reference: int | None = None
    #: multiple-time-step (r-RESPA) integrator state: the
    #: `repro.md.mts.SlowTierState` metadata (k, extrapolate, boundary
    #: steps, slow energies) — ``None`` for single-timescale runs
    mts: dict | None = None
    #: held slow-tier forces at the current / previous outer boundary
    #: (the extrapolation history); cannot be recomputed on resume
    mts_slow_forces: np.ndarray | None = None
    mts_slow_forces_prev: np.ndarray | None = None
    #: per-tier ladder: the trimer tier's held forces when the run
    #: integrates dimers and trimers on separate timescales (the dimer
    #: tier reuses the ``mts_slow_*`` slots above)
    mts_slow3_forces: np.ndarray | None = None
    mts_slow3_forces_prev: np.ndarray | None = None
    #: online-surrogate state: `repro.surrogate.SurrogateManager`
    #: metadata (config, counters, class directory) plus the per-class
    #: training windows in ``surrogate_arrays`` — ``None`` when the run
    #: carries no surrogate
    surrogate: dict | None = None
    surrogate_arrays: dict | None = None
    #: current forces at ``step`` (synchronous single-timescale driver
    #: with a surrogate only): the resumed run must NOT re-evaluate the
    #: initial forces, because that evaluation would mutate the
    #: surrogate's training windows and serve streaks a second time and
    #: break bitwise continuation — so the forces travel with the state
    forces: np.ndarray | None = None
    version: int = CHECKPOINT_VERSION


# --------------------------------------------------------------------------
# atomic write
# --------------------------------------------------------------------------

def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + os.replace).

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename — atomic on POSIX.  The
    directory entry is fsynced afterwards so the rename itself survives
    a power loss.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        dirfd = os.open(path.parent if str(path.parent) else ".", os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)
    except OSError:
        # platform without directory fsync; the file itself is durable
        pass


def atomic_savez(path: str | Path, **arrays) -> None:
    """``np.savez`` through `atomic_write_bytes` (exact path, no torn file)."""
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    atomic_write_bytes(path, buf.getvalue())


# --------------------------------------------------------------------------
# serialization
# --------------------------------------------------------------------------

def _payload_checksum(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over every payload array in canonical (sorted-name) order."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def rotation_path(path: str | Path, index: int) -> Path:
    """The ``index``-th rotated copy of ``path`` (index 0 is ``path``)."""
    path = Path(path)
    return path if index == 0 else path.with_name(f"{path.name}.{index}")


def _rotate_checkpoints(path: Path, keep: int) -> None:
    """Shift ``path`` -> ``path.1`` -> ... keeping ``keep`` copies total.

    Each shift is a same-directory ``os.replace`` (atomic).  Between the
    final shift and the new primary's write the primary name is briefly
    absent; `read_checkpoint_with_fallback` covers that window by
    falling back to ``path.1``.
    """
    if keep <= 1 or not path.exists():
        return
    for i in range(keep - 2, 0, -1):
        src = rotation_path(path, i)
        if src.exists():
            os.replace(src, rotation_path(path, i + 1))
    os.replace(path, rotation_path(path, 1))


def write_checkpoint(path: str | Path, ckpt: Checkpoint, tracer=None,
                     keep: int = 1, fault_plan=None) -> None:
    """Serialize and atomically write a checkpoint.

    With ``keep > 1``, previously-written checkpoints are rotated to
    ``path.1`` ... ``path.{keep-1}`` first, so the last ``keep``
    snapshots survive on disk for `read_checkpoint_with_fallback`.

    ``fault_plan`` (a `repro.faults.FaultPlan`) is the checkpoint-site
    chaos hook: after the write, the plan is consulted for a scheduled
    ``ckpt_torn``/``ckpt_bitflip`` fault at this step, and the freshly
    written primary is damaged accordingly (rotations are never
    touched — they model corruption of the *latest* file, which is
    exactly what the fallback chain exists for).  Emits ``fault.inject``
    when it fires.

    Emits a ``checkpoint.write`` tracer instant when a tracer is given.
    """
    meta = {
        "magic": CHECKPOINT_MAGIC,
        "version": int(ckpt.version),
        "step": int(ckpt.step),
        "time_fs": float(ckpt.time_fs),
        "symbols": list(ckpt.symbols),
        "charge": int(ckpt.charge),
        "thermostat": ckpt.thermostat,
        "driver": ckpt.driver,
        "reference": ckpt.reference,
    }
    if ckpt.mts is not None:
        # only MTS runs carry the key, so plain checkpoints stay
        # byte-identical to the version-1 layout
        meta["mts"] = ckpt.mts
    if ckpt.surrogate is not None:
        # likewise only surrogate runs carry the v3 surrogate block
        meta["surrogate"] = ckpt.surrogate
    arrays: dict[str, np.ndarray] = {
        "coords": np.asarray(ckpt.coords, dtype=float),
        "velocities": np.asarray(ckpt.velocities, dtype=float),
        "times_fs": np.asarray(ckpt.times_fs, dtype=float),
        "potential": np.asarray(ckpt.potential, dtype=float),
        "kinetic": np.asarray(ckpt.kinetic, dtype=float),
        "meta": np.array(json.dumps(meta)),
    }
    if ckpt.mts_slow_forces is not None:
        arrays["mts_slow_forces"] = np.asarray(
            ckpt.mts_slow_forces, dtype=float
        )
    if ckpt.mts_slow_forces_prev is not None:
        arrays["mts_slow_forces_prev"] = np.asarray(
            ckpt.mts_slow_forces_prev, dtype=float
        )
    if ckpt.mts_slow3_forces is not None:
        arrays["mts_slow3_forces"] = np.asarray(
            ckpt.mts_slow3_forces, dtype=float
        )
    if ckpt.mts_slow3_forces_prev is not None:
        arrays["mts_slow3_forces_prev"] = np.asarray(
            ckpt.mts_slow3_forces_prev, dtype=float
        )
    if ckpt.forces is not None:
        arrays["forces"] = np.asarray(ckpt.forces, dtype=float)
    if ckpt.surrogate_arrays:
        for name, value in ckpt.surrogate_arrays.items():
            if not name.startswith("surrogate_"):
                raise ValueError(
                    f"surrogate payload array {name!r} must use the "
                    "'surrogate_' namespace"
                )
            arrays[name] = np.asarray(value, dtype=float)
    natoms = arrays["coords"].shape[0]
    if ckpt.frame_coords is not None and len(ckpt.frame_coords):
        arrays["frame_coords"] = np.asarray(
            ckpt.frame_coords, dtype=float
        ).reshape(-1, natoms, 3)
        arrays["frame_velocities"] = np.asarray(
            ckpt.frame_velocities, dtype=float
        ).reshape(-1, natoms, 3)
    arrays["checksum"] = np.array(_payload_checksum(arrays))
    path = Path(path)
    _rotate_checkpoints(path, keep)
    atomic_savez(path, **arrays)
    if tracer:
        tracer.instant(
            "checkpoint.write", cat="checkpoint",
            step=int(ckpt.step), path=str(path), keep=int(keep),
        )
    if fault_plan is not None:
        spec = fault_plan.decide("checkpoint", step=int(ckpt.step))
        if spec is not None:
            from ..faults.inject import corrupt_checkpoint

            detail = corrupt_checkpoint(
                path, spec.kind,
                seed=fault_plan.derive_seed(f"ckpt:{int(ckpt.step)}"),
            )
            if tracer:
                tracer.instant(
                    "fault.inject", cat="fault", site="checkpoint",
                    step=int(ckpt.step), **detail,
                )


def read_checkpoint(path: str | Path, mol=None) -> Checkpoint:
    """Load and validate a checkpoint.

    Args:
        path: file written by `write_checkpoint`.
        mol: optional `Molecule`; when given, the checkpoint's system
            identity (symbols, charge, atom count) must match.

    Raises:
        CheckpointError: on any corruption, version, or identity
            mismatch — the caller never sees a half-trusted state.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            payload = {name: data[name] for name in data.files}
    except Exception as err:
        raise CheckpointError(
            f"unreadable checkpoint {path}: {err!r}"
        ) from err

    stored_sum = payload.pop("checksum", None)
    if stored_sum is None:
        raise CheckpointError(f"checkpoint {path} carries no checksum")
    actual = _payload_checksum(payload)
    if str(stored_sum) != actual:
        raise CheckpointError(
            f"checkpoint {path} failed checksum verification "
            f"(stored {str(stored_sum)[:12]}..., computed {actual[:12]}...)"
        )

    try:
        meta = json.loads(str(payload["meta"]))
    except (KeyError, json.JSONDecodeError) as err:
        raise CheckpointError(
            f"checkpoint {path} has a malformed metadata block"
        ) from err
    if meta.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError(
            f"{path} is not a repro AIMD checkpoint "
            f"(magic={meta.get('magic')!r})"
        )
    version = meta.get("version")
    if version not in CHECKPOINT_READABLE_VERSIONS:
        raise CheckpointError(
            f"checkpoint {path} has format version {version}; "
            f"this build reads versions {CHECKPOINT_READABLE_VERSIONS}"
        )
    required = ("coords", "velocities", "times_fs", "potential", "kinetic")
    missing = [k for k in required if k not in payload]
    if missing:
        raise CheckpointError(
            f"checkpoint {path} is missing arrays: {missing}"
        )
    coords = payload["coords"]
    velocities = payload["velocities"]
    if coords.shape != velocities.shape or coords.ndim != 2 \
            or coords.shape[1] != 3:
        raise CheckpointError(
            f"checkpoint {path} has inconsistent state shapes "
            f"coords{coords.shape} velocities{velocities.shape}"
        )
    symbols = tuple(meta.get("symbols", ()))
    if len(symbols) != coords.shape[0]:
        raise CheckpointError(
            f"checkpoint {path}: {len(symbols)} symbols for "
            f"{coords.shape[0]} coordinate rows"
        )
    if mol is not None:
        if tuple(mol.symbols) != symbols or int(mol.charge) != int(
            meta.get("charge", 0)
        ):
            raise CheckpointError(
                f"checkpoint {path} was written for "
                f"{''.join(symbols)} (charge {meta.get('charge', 0)}), "
                f"not {''.join(mol.symbols)} (charge {mol.charge}) — "
                "refusing to resume a different system"
            )
    return Checkpoint(
        step=int(meta["step"]),
        time_fs=float(meta["time_fs"]),
        coords=coords,
        velocities=velocities,
        symbols=symbols,
        charge=int(meta.get("charge", 0)),
        times_fs=payload["times_fs"],
        potential=payload["potential"],
        kinetic=payload["kinetic"],
        frame_coords=payload.get("frame_coords"),
        frame_velocities=payload.get("frame_velocities"),
        thermostat=meta.get("thermostat"),
        driver=meta.get("driver"),
        reference=meta.get("reference"),
        mts=meta.get("mts"),
        mts_slow_forces=payload.get("mts_slow_forces"),
        mts_slow_forces_prev=payload.get("mts_slow_forces_prev"),
        mts_slow3_forces=payload.get("mts_slow3_forces"),
        mts_slow3_forces_prev=payload.get("mts_slow3_forces_prev"),
        surrogate=meta.get("surrogate"),
        forces=payload.get("forces"),
        surrogate_arrays={
            name: array
            for name, array in payload.items()
            if name.startswith("surrogate_")
        } or None,
        version=int(version),
    )


def read_checkpoint_with_fallback(
    path: str | Path, mol=None, tracer=None,
) -> tuple[Checkpoint, Path]:
    """Load the newest valid checkpoint in ``path``'s rotation chain.

    Tries ``path`` first, then ``path.1``, ``path.2``, ... (the copies
    `write_checkpoint` rotates with ``keep > 1``), newest first.  The
    first copy that passes full validation wins; if that is not the
    primary, a ``ckpt.fallback`` tracer instant records which copy was
    used and why each newer one was rejected.  A missing primary is
    treated like a corrupt one — it falls back too, which also covers
    the instant between rotation and the new primary's atomic write.

    Returns:
        ``(checkpoint, used_path)``.

    Raises:
        CheckpointError: when no copy in the chain validates; the
            message enumerates every candidate and its failure.
    """
    primary = Path(path)
    candidates = [primary]
    i = 1
    while rotation_path(primary, i).exists():
        candidates.append(rotation_path(primary, i))
        i += 1
    failures: list[tuple[Path, str]] = []
    for cand in candidates:
        try:
            ckpt = read_checkpoint(cand, mol=mol)
        except CheckpointError as err:
            failures.append((cand, str(err)))
            continue
        if failures and tracer:
            tracer.instant(
                "ckpt.fallback", cat="checkpoint", step=int(ckpt.step),
                path=str(cand),
                rejected=[str(p) for p, _ in failures],
                reasons=[msg for _, msg in failures],
            )
        return ckpt, cand
    detail = "; ".join(f"{p}: {msg}" for p, msg in failures)
    raise CheckpointError(
        f"no valid checkpoint in rotation chain of {primary} "
        f"({len(failures)} candidate(s) rejected): {detail}"
    )
