"""Thermostats for NVT sampling (beyond the paper's NVE runs).

The paper runs microcanonical dynamics; production studies of the
applications it motivates (polymorph stability, fibril assembly) need
canonical sampling, so the library ships two standard thermostats:

* `BerendsenThermostat` — weak-coupling velocity rescaling. Simple and
  robust; does not sample the exact canonical ensemble.
* `LangevinThermostat` — stochastic friction + noise applied as an
  Ornstein-Uhlenbeck velocity update between Verlet steps (the "O" part
  of BAOAB splitting); samples the canonical ensemble for small dt.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import KB_HARTREE_PER_K
from .integrators import instantaneous_temperature


@dataclass
class BerendsenThermostat:
    """Weak-coupling rescaling toward a target temperature."""

    temperature_k: float
    tau_fs: float = 50.0

    def apply(self, velocities: np.ndarray, masses_au: np.ndarray, dt_fs: float) -> np.ndarray:
        """Rescale velocities toward the target temperature."""
        t_now = instantaneous_temperature(masses_au, velocities)
        if t_now <= 0:
            return velocities
        lam2 = 1.0 + (dt_fs / self.tau_fs) * (self.temperature_k / t_now - 1.0)
        return velocities * np.sqrt(max(lam2, 0.0))

    def state_dict(self) -> dict:
        """Checkpointable state (stateless: parameters only)."""
        return {"kind": "berendsen"}

    def load_state_dict(self, state: dict) -> None:
        """Restore from `state_dict` output (no mutable state to restore)."""


@dataclass
class LangevinThermostat:
    """Ornstein-Uhlenbeck velocity update (friction + matched noise)."""

    temperature_k: float
    friction_per_fs: float = 0.01
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def apply(self, velocities: np.ndarray, masses_au: np.ndarray, dt_fs: float) -> np.ndarray:
        """One OU step: exponential friction plus matched thermal noise."""
        c1 = np.exp(-self.friction_per_fs * dt_fs)
        sigma = np.sqrt(
            (1.0 - c1 * c1) * KB_HARTREE_PER_K * self.temperature_k / masses_au
        )
        noise = self._rng.standard_normal(velocities.shape) * sigma[:, None]
        return c1 * velocities + noise

    def state_dict(self) -> dict:
        """Checkpointable state: the RNG stream position.

        The bit-generator state is a JSON-serializable dict of Python
        ints, so a resumed run draws exactly the noise sequence the
        uninterrupted run would have drawn.
        """
        return {"kind": "langevin", "rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore the RNG stream recorded by `state_dict`."""
        self._rng.bit_generator.state = state["rng"]
