"""Thermostats for NVT sampling (beyond the paper's NVE runs).

The paper runs microcanonical dynamics; production studies of the
applications it motivates (polymorph stability, fibril assembly) need
canonical sampling, so the library ships two standard thermostats:

* `BerendsenThermostat` — weak-coupling velocity rescaling. Simple and
  robust; does not sample the exact canonical ensemble.
* `LangevinThermostat` — stochastic friction + noise applied as an
  Ornstein-Uhlenbeck velocity update between Verlet steps (the "O" part
  of BAOAB splitting); samples the canonical ensemble for small dt.

Both thermostats accept an ``ndof`` override; the default (``None``)
counts ``3N - 3`` degrees of freedom, matching the center-of-mass-free
velocity fields produced by `maxwell_boltzmann_velocities`.  The old
``3N`` divisor under-reported the temperature, so both thermostats
silently targeted a temperature *above* the one requested (by
``3N/(3N-3)``, 50% hot for a 3-atom fragment).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import KB_HARTREE_PER_K
from .integrators import instantaneous_temperature


@dataclass
class BerendsenThermostat:
    """Weak-coupling rescaling toward a target temperature.

    The squared scale factor ``lam2 = 1 + (dt/tau)(T0/T - 1)`` turns
    negative when ``dt/tau > 1`` and the system is far hotter than the
    target — the naive ``sqrt(max(lam2, 0))`` then *zeroes* the
    velocities, silently freezing the dynamics.  The effective coupling
    ratio is therefore clamped smoothly to ``min(dt/tau, 1)``: at the
    clamp the update degrades continuously into an exact rescale to the
    target temperature (``lam2 = T0/T``, the dt/tau → 1 limit of the
    weak-coupling form), which is the strongest physically meaningful
    action the thermostat can take in one step.  When the clamp engages
    a ``thermostat.clamp`` tracer instant is emitted (when a tracer is
    attached), so pathological dt/tau ratios are visible instead of
    silently corrupting the run.
    """

    temperature_k: float
    tau_fs: float = 50.0
    #: kinetic degrees of freedom (None -> 3N-3, center-of-mass free)
    ndof: int | None = None
    #: optional `repro.trace.Tracer` for clamp diagnostics
    tracer: object | None = field(default=None, repr=False, compare=False)

    def apply(self, velocities: np.ndarray, masses_au: np.ndarray, dt_fs: float) -> np.ndarray:
        """Rescale velocities toward the target temperature."""
        t_now = instantaneous_temperature(masses_au, velocities, ndof=self.ndof)
        if t_now <= 0:
            return velocities
        ratio = dt_fs / self.tau_fs
        if ratio > 1.0:
            # smooth floor: cap the coupling at the exact-rescale limit
            # instead of letting lam2 go <= 0 and zeroing the velocities
            if self.tracer is not None:
                self.tracer.instant(
                    "thermostat.clamp", cat="md",
                    dt_over_tau=float(ratio), t_now_k=float(t_now),
                    target_k=float(self.temperature_k),
                )
            ratio = 1.0
        lam2 = 1.0 + ratio * (self.temperature_k / t_now - 1.0)
        return velocities * np.sqrt(lam2)

    def state_dict(self) -> dict:
        """Checkpointable state (stateless: parameters only)."""
        return {"kind": "berendsen"}

    def load_state_dict(self, state: dict) -> None:
        """Restore from `state_dict` output (no mutable state to restore)."""


@dataclass
class LangevinThermostat:
    """Ornstein-Uhlenbeck velocity update (friction + matched noise).

    The noise kicks every Cartesian component independently, so a plain
    OU update slowly pumps momentum into the center of mass — the
    velocity field drifts out of the center-of-mass-free ensemble that
    the ``3N - 3`` temperature accounting (and the initial conditions)
    assume.  With ``remove_com_drift=True`` the center-of-mass momentum
    the noise injected is projected back out after every update, so the
    thermostat thermalizes exactly the ``3N - 3`` internal degrees of
    freedom at the target temperature.
    """

    temperature_k: float
    friction_per_fs: float = 0.01
    seed: int = 0
    #: kinetic degrees of freedom (None -> 3N-3); used by diagnostics
    #: and kept alongside `remove_com_drift` so temperature accounting
    #: and dynamics agree about which ensemble is being sampled
    ndof: int | None = None
    #: project the center-of-mass momentum out of the noise each step
    remove_com_drift: bool = False
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def apply(self, velocities: np.ndarray, masses_au: np.ndarray, dt_fs: float) -> np.ndarray:
        """One OU step: exponential friction plus matched thermal noise."""
        c1 = np.exp(-self.friction_per_fs * dt_fs)
        sigma = np.sqrt(
            (1.0 - c1 * c1) * KB_HARTREE_PER_K * self.temperature_k / masses_au
        )
        noise = self._rng.standard_normal(velocities.shape) * sigma[:, None]
        v = c1 * velocities + noise
        if self.remove_com_drift and masses_au.shape[0] > 1:
            p = (v * masses_au[:, None]).sum(axis=0)
            v = v - p[None, :] / masses_au.sum()
        return v

    def temperature(self, velocities: np.ndarray, masses_au: np.ndarray) -> float:
        """Instantaneous temperature under this thermostat's DOF count."""
        return instantaneous_temperature(masses_au, velocities, ndof=self.ndof)

    def state_dict(self) -> dict:
        """Checkpointable state: the RNG stream position.

        The bit-generator state is a JSON-serializable dict of Python
        ints, so a resumed run draws exactly the noise sequence the
        uninterrupted run would have drawn.
        """
        return {"kind": "langevin", "rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore the RNG stream recorded by `state_dict`."""
        self._rng.bit_generator.state = state["rng"]


@dataclass
class LocalLangevinThermostat:
    """Per-monomer Langevin (OU) update with derived noise streams.

    `LangevinThermostat` draws from one sequential RNG stream, which
    ties the noise to the *order* monomers integrate in — unusable
    inside the asynchronous coordinator, where completion order depends
    on worker races. This variant derives an independent stream per
    ``(step, monomer)`` from `numpy.random.SeedSequence`, so the noise a
    monomer receives at a step is a pure function of ``(seed, step,
    monomer)``:

    * order-independent — any completion order yields the same
      trajectory;
    * stateless — nothing to checkpoint; a resumed run regenerates
      exactly the noise the uninterrupted run drew (bitwise, so it
      composes with ``--deterministic``);
    * local — each monomer thermalizes its own atoms, matching the
      coordinator's per-monomer integration (no global barrier needed).

    Center-of-mass drift is not projected out (that would be a global
    operation); over long runs the total momentum performs a bounded
    random walk, as for any local Langevin scheme.
    """

    temperature_k: float
    friction_per_fs: float = 0.01
    seed: int = 0
    #: kinetic degrees of freedom (None -> 3N-3); diagnostics only
    ndof: int | None = None

    def apply_rows(self, velocities: np.ndarray, masses_au: np.ndarray,
                   dt_fs: float, step: int, monomer: int) -> np.ndarray:
        """OU update of one monomer's velocity rows at one step."""
        rng = np.random.default_rng(
            np.random.SeedSequence([int(self.seed), int(step), int(monomer)])
        )
        c1 = np.exp(-self.friction_per_fs * dt_fs)
        sigma = np.sqrt(
            (1.0 - c1 * c1) * KB_HARTREE_PER_K * self.temperature_k / masses_au
        )
        noise = rng.standard_normal(velocities.shape) * sigma[:, None]
        return c1 * velocities + noise

    def temperature(self, velocities: np.ndarray, masses_au: np.ndarray) -> float:
        """Instantaneous temperature under this thermostat's DOF count."""
        return instantaneous_temperature(masses_au, velocities, ndof=self.ndof)

    def state_dict(self) -> dict:
        """Checkpointable state (stateless: streams derive from the seed)."""
        return {"kind": "local-langevin"}

    def load_state_dict(self, state: dict) -> None:
        """Restore from `state_dict` output (no mutable state to restore)."""
