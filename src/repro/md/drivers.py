"""Execution drivers for the asynchronous coordinator.

`run_parallel` plays the role of the worker groups in the paper's
multi-layer scheme (Fig. 2): a pool of processes pulls polymers from the
coordinator's priority queue and streams results back; the coordinator
(this process) is the super-coordinator.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from .scheduler import AsyncCoordinator


def _evaluate(calculator, molecule):
    return calculator.energy_gradient(molecule)


def run_parallel(
    coordinator: AsyncCoordinator,
    calculator,
    nworkers: int = 4,
) -> None:
    """Drive a coordinator to completion with a process pool.

    Tasks are dispatched eagerly up to ``nworkers`` in flight; each
    completion may unlock new polymers (possibly of the next time step),
    which are picked up immediately — the asynchronous overlap the paper
    exploits.
    """
    ctx = mp.get_context("fork")
    with ProcessPoolExecutor(max_workers=nworkers, mp_context=ctx) as pool:
        futures = {}
        while not coordinator.done():
            while len(futures) < nworkers:
                task = coordinator.next_task()
                if task is None:
                    break
                futures[pool.submit(_evaluate, calculator, task.molecule)] = task
            if not futures:
                if not coordinator.done():
                    raise RuntimeError("scheduler deadlock: no tasks, none in flight")
                break
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for fut in done:
                task = futures.pop(fut)
                e, g = fut.result()
                coordinator.complete(task, e, g)
