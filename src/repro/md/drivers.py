"""Fault-tolerant execution drivers for the asynchronous coordinator.

`run_parallel` plays the role of the worker groups in the paper's
multi-layer scheme (Fig. 2): a pool of processes pulls polymers from the
coordinator's priority queue and streams results back; the coordinator
(this process) is the super-coordinator.

At the paper's scale (3.75 million polymer calculations per replan
window on 75,264 GCDs) individual worker failures are a statistical
certainty, not an exception: a production driver must survive them
without corrupting the trajectory. This driver therefore:

* catches per-task worker exceptions and retries each failed polymer up
  to ``FailurePolicy.max_retries`` times with exponential backoff;
* detects dead worker processes (``BrokenProcessPool`` — segfault,
  OOM-kill, ``os._exit``) and rebuilds the pool, resubmitting every
  in-flight task;
* detects hung workers via ``FailurePolicy.task_timeout_s``: a task that
  exceeds its deadline has its pool torn down (a running future cannot
  be preempted), surviving tasks resubmitted, and the expired task sent
  through the retry path;
* optionally **quarantines** poison fragments whose retry budget is
  exhausted instead of aborting: the task is completed with a zero
  contribution and recorded — with its MBE coefficient — in the
  `DriverReport`, so the energy deficit is reported rather than
  silently dropped;
* keeps the coordinator's ``in_flight`` accounting exact through every
  failure path: a retried task stays logically in flight (``complete``
  is called exactly once per issued task, on success or quarantine).

`FaultInjectingCalculator` provides deterministic failures for testing:
its decision is a pure function of ``(molecule, attempt)``, so it
behaves identically regardless of which worker process runs it or in
what order.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import ClassVar

from ..numerics import ensure_finite
from ..scf.rhf import SCFConvergenceError
from .scheduler import AsyncCoordinator


class TransientWorkerError(RuntimeError):
    """Raised by `FaultInjectingCalculator` to model a recoverable fault."""


class WorkerFailure(RuntimeError):
    """A polymer task exhausted its retry budget (and quarantine is off)."""


@dataclass
class FailurePolicy:
    """How `run_parallel` responds to worker failures."""

    #: additional attempts after the first failure of a task
    max_retries: int = 2
    #: delay before the first retry of a task (seconds)
    backoff_s: float = 0.0
    #: multiplier applied to the delay for each further retry
    backoff_factor: float = 2.0
    #: per-task wall-clock deadline; None disables hang detection
    task_timeout_s: float | None = None
    #: exhausted tasks: True -> quarantine and keep going, False -> raise
    quarantine: bool = False
    #: jitter fraction: each delay is stretched by U[0, jitter] of itself
    #: (decorrelates retry storms). Drawn from the *seeded* per-run RNG
    #: `run_parallel` owns, so chaos runs replay their exact schedule.
    backoff_jitter: float = 0.0

    def backoff(self, attempt: int, rng=None) -> float:
        """Delay before dispatching ``attempt`` (attempt 1 = first retry).

        ``rng`` (a `random.Random`) supplies the jitter draw; without
        one — or with ``backoff_jitter=0`` — the schedule is the bare
        exponential.
        """
        delay = self.backoff_s * self.backoff_factor ** max(attempt - 1, 0)
        if rng is not None and self.backoff_jitter > 0.0:
            delay *= 1.0 + self.backoff_jitter * rng.random()
        return delay


@dataclass
class QuarantinedTask:
    """A poison fragment removed from the run, with its energy weight."""

    key: tuple[int, ...]
    step: int
    coefficient: float
    attempts: int
    error: str


@dataclass
class DriverReport:
    """Outcome accounting for one `run_parallel` invocation."""

    tasks_completed: int = 0
    retries: int = 0
    pool_restarts: int = 0
    timeouts: int = 0
    quarantined: list[QuarantinedTask] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True if every polymer contributed (no quarantined energy)."""
        return not self.quarantined


@dataclass
class FaultInjectingCalculator:
    """Deterministic failure injection around any calculator.

    A fragment *matches* when its atom count is in ``fail_natoms``
    (``None`` matches every fragment). Matching fragments fail while
    ``attempt < fail_attempts`` — so with ``fail_attempts=2`` a task
    fails twice and succeeds on its third dispatch — in one of five
    modes: ``raise`` (a `TransientWorkerError`), ``hang`` (sleep for
    ``hang_s``, exercising timeout detection), ``exit`` (kill the
    worker process, exercising pool rebuild), ``scf_fail`` (an
    `SCFConvergenceError`, modelling a fragment whose recovery cascade
    is exhausted), or ``nan_forces`` (a finite energy with an all-NaN
    gradient, exercising the worker-side divergence sentinel). Because
    the decision depends only on the molecule and the attempt number
    the driver passes in, runs are reproducible across process pools.
    """

    inner: object
    fail_attempts: int = 1
    fail_natoms: int | tuple[int, ...] | None = None
    mode: str = "raise"
    hang_s: float = 3600.0

    #: tells the drivers to pass the attempt number through
    accepts_attempt: ClassVar[bool] = True

    def __post_init__(self):
        if isinstance(self.fail_natoms, int):
            self.fail_natoms = (self.fail_natoms,)

    def _matches(self, mol) -> bool:
        return self.fail_natoms is None or mol.natoms in self.fail_natoms

    def energy_gradient(self, mol, attempt: int = 0):
        """Inner energy/gradient, or an injected fault for this attempt."""
        if self._matches(mol) and attempt < self.fail_attempts:
            if self.mode == "hang":
                time.sleep(self.hang_s)
            elif self.mode == "exit":
                os._exit(13)
            elif self.mode == "scf_fail":
                raise SCFConvergenceError(
                    f"injected SCF non-convergence: attempt {attempt} on "
                    f"{mol.natoms}-atom fragment"
                )
            elif self.mode == "nan_forces":
                import numpy as np

                e, g = self.inner.energy_gradient(mol)
                return e, np.full_like(np.asarray(g, dtype=float), np.nan)
            raise TransientWorkerError(
                f"injected fault: attempt {attempt} on "
                f"{mol.natoms}-atom fragment"
            )
        return self.inner.energy_gradient(mol)


#: Worker-process-local warm-start cache. Calculators arrive freshly
#: unpickled with every task, so per-fragment densities must live in the
#: worker's module state to survive from one task to the next. Each
#: worker process keeps its own cache; a rebuilt pool simply starts cold
#: and repopulates — losing iterations, never correctness.
_WORKER_GUESS_CACHE = None

#: Paths whose GEMM winner tables this worker has already merged into
#: its process-global tuner (so the file is read once per worker, not
#: once per task).
_WORKER_GEMM_LOADED: set[str] = set()


def _evaluate(calculator, molecule, attempt: int, warm_start: bool = False,
              gemm_cache: str | None = None, step: int = 0):
    """Worker-side entry point; forwards attempt/step if supported.

    ``accepts_attempt`` calculators receive the retry attempt number;
    ``accepts_step`` calculators (the fault-plan wrapper) additionally
    receive the MD step, so scheduled faults can target "fragment K at
    step S" regardless of which worker draws the task.

    With ``warm_start``, the process-local `GuessCache` is attached to
    the (worker's copy of the) calculator before evaluation, so
    resubmissions, retries, and pool rebuilds repopulate the cache
    rather than crash or leak state across tasks.

    The integral workspace needs no explicit attachment here: QM
    calculators with ``workspace=None`` resolve to the worker's
    process-global `IntegralWorkspace` singleton, which — exactly like
    the guess cache — lives in worker module state, survives from task
    to task, and simply starts cold after a pool rebuild.

    ``gemm_cache`` (a path to a `GemmAutoTuner.save` table) is merged
    into the worker's process-global tuner once per worker, so freshly
    forked/spawned workers skip the GEMM trial phase for every shape a
    previous run already tuned.

    Results pass a NaN/Inf sentinel before leaving the worker: silent
    divergence becomes a typed `NumericalDivergenceError` that travels
    back through the future and is retried/quarantined like any other
    worker failure.
    """
    global _WORKER_GUESS_CACHE
    if warm_start and getattr(calculator, "guess_cache", "no") is None:
        if _WORKER_GUESS_CACHE is None:
            from ..calculators import GuessCache

            _WORKER_GUESS_CACHE = GuessCache()
        calculator.guess_cache = _WORKER_GUESS_CACHE
    if gemm_cache and gemm_cache not in _WORKER_GEMM_LOADED:
        _WORKER_GEMM_LOADED.add(gemm_cache)
        if os.path.exists(gemm_cache):
            from ..gemm.autotune import GLOBAL_TUNER

            try:
                GLOBAL_TUNER.load(gemm_cache)
            except ValueError:
                pass  # a corrupt table costs re-tuning, never the run
    kwargs = {}
    if getattr(calculator, "accepts_attempt", False):
        kwargs["attempt"] = attempt
    if getattr(calculator, "accepts_step", False):
        kwargs["step"] = step
    e, g = calculator.energy_gradient(molecule, **kwargs)
    ensure_finite(
        f"worker result for {getattr(molecule, 'natoms', '?')}-atom "
        f"fragment (attempt {attempt})",
        energy=e, gradient=g,
    )
    return e, g


@dataclass
class _Flight:
    """Book-keeping for one dispatched task."""

    task: object
    attempt: int
    dispatched_mono: float
    deadline_mono: float | None
    trace_start: float | None


def run_parallel(
    coordinator: AsyncCoordinator,
    calculator,
    nworkers: int = 4,
    policy: FailurePolicy | None = None,
    tracer=None,
    mp_start: str = "fork",
    report: DriverReport | None = None,
    gemm_cache: str | None = None,
    seed: int | None = None,
) -> DriverReport:
    """Drive a coordinator to completion with a fault-tolerant pool.

    Tasks are dispatched eagerly up to ``nworkers`` in flight; each
    completion may unlock new polymers (possibly of the next time step),
    which are picked up immediately — the asynchronous overlap the paper
    exploits. Worker exceptions, dead workers, and hangs are handled per
    ``policy``; the returned `DriverReport` records what happened.

    Pass ``report`` to continue accumulating counters across a
    checkpoint/resume boundary; the report is also attached to the
    coordinator (``coordinator.driver_report``) so periodic checkpoints
    record the fault-handling history alongside the dynamics.

    ``gemm_cache`` names a GEMM winner table (see
    `repro.gemm.autotune.GemmAutoTuner.save`) preloaded once into each
    worker process's tuner, so rebuilt pools and fresh runs skip the
    per-shape trial phase.

    ``seed`` pins the per-run RNG behind ``policy.backoff_jitter``:
    with a seed, the retry-delay schedule — and hence the
    `DriverReport` counters of a chaos run — is exactly reproducible.
    Typically derived from the fault plan
    (``plan.derive_seed("retry-jitter")``) or the CLI ``--seed``.
    """
    import random

    policy = policy or FailurePolicy()
    jitter_rng = random.Random(seed)
    if tracer is None:
        tracer = coordinator.tracer
    report = report if report is not None else DriverReport()
    coordinator.driver_report = report
    ctx = mp.get_context(mp_start)
    pool = ProcessPoolExecutor(max_workers=nworkers, mp_context=ctx)
    flights: dict = {}
    #: failed tasks awaiting their backoff: (ready_mono, task, attempt)
    retry_queue: list[tuple[float, object, int]] = []

    def kill_pool() -> None:
        """Tear the pool down without waiting on stuck workers."""
        nonlocal pool
        pool.shutdown(wait=False, cancel_futures=True)
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                if proc.is_alive():
                    proc.terminate()
            except Exception:
                pass
        for proc in list(procs.values()):
            try:
                proc.join(timeout=1.0)
            except Exception:
                pass

    def restart_pool() -> None:
        nonlocal pool
        report.pool_restarts += 1
        if tracer:
            tracer.instant("pool.restart", cat="driver")
        kill_pool()
        pool = ProcessPoolExecutor(max_workers=nworkers, mp_context=ctx)

    warm_start = getattr(coordinator, "guess_cache", None) is not None

    def submit(task, attempt: int) -> None:
        now = time.monotonic()
        try:
            fut = pool.submit(
                _evaluate, calculator, task.molecule, attempt, warm_start,
                gemm_cache, task.step,
            )
        except (BrokenProcessPool, RuntimeError):
            # the pool died between completions; rebuild and resubmit
            restart_pool()
            fut = pool.submit(
                _evaluate, calculator, task.molecule, attempt, warm_start,
                gemm_cache, task.step,
            )
        deadline = (
            now + policy.task_timeout_s if policy.task_timeout_s else None
        )
        flights[fut] = _Flight(
            task, attempt, now, deadline,
            tracer.clock() if tracer else None,
        )
        if tracer:
            tracer.instant(
                "task.dispatch", cat="driver", step=task.step,
                key=str(task.key), attempt=attempt,
            )

    def fail(flight: _Flight, err: BaseException) -> None:
        """Route one failed attempt: retry, quarantine, or abort."""
        task = flight.task
        attempt = flight.attempt + 1
        if attempt <= policy.max_retries:
            report.retries += 1
            if tracer:
                tracer.instant(
                    "task.retry", cat="driver", step=task.step,
                    key=str(task.key), attempt=attempt, error=repr(err),
                )
            ready = time.monotonic() + policy.backoff(attempt, jitter_rng)
            retry_queue.append((ready, task, attempt))
        elif policy.quarantine:
            report.quarantined.append(
                QuarantinedTask(
                    key=task.key, step=task.step,
                    coefficient=task.coefficient,
                    attempts=attempt, error=repr(err),
                )
            )
            if tracer:
                tracer.instant(
                    "task.quarantine", cat="driver", step=task.step,
                    key=str(task.key), error=repr(err),
                )
            # zero contribution, but accounted for: the report carries
            # the fragment's MBE coefficient so the caller knows exactly
            # which energies are tainted
            coordinator.complete(task, 0.0, None)
        else:
            raise WorkerFailure(
                f"polymer {task.key} (step {task.step}) failed "
                f"{attempt} attempt(s): {err!r}; "
                + coordinator.diagnostics()
            ) from err

    try:
        while not coordinator.done():
            now = time.monotonic()
            # re-dispatch failed tasks whose backoff has elapsed
            if retry_queue:
                due = [r for r in retry_queue if r[0] <= now]
                if due:
                    retry_queue[:] = [r for r in retry_queue if r[0] > now]
                    for _, task, attempt in due:
                        submit(task, attempt)
            # fill free workers from the scheduler queue
            while len(flights) < nworkers:
                task = coordinator.next_task()
                if task is None:
                    break
                submit(task, 0)
            if not flights:
                if retry_queue:
                    # nothing running; sleep until the earliest retry is due
                    pause = min(r[0] for r in retry_queue) - time.monotonic()
                    if pause > 0:
                        time.sleep(pause)
                    continue
                raise RuntimeError(
                    "scheduler deadlock: no tasks, none in flight; "
                    + coordinator.diagnostics()
                )
            timeout = None
            if policy.task_timeout_s:
                nearest = min(
                    f.deadline_mono for f in flights.values()
                    if f.deadline_mono is not None
                )
                timeout = max(nearest - time.monotonic(), 0.0)
            done, _ = wait(flights, timeout=timeout,
                           return_when=FIRST_COMPLETED)
            if not done:
                # deadline pass: hung workers cannot be preempted, so tear
                # the pool down, resubmit the survivors, retry the expired
                now = time.monotonic()
                expired = [
                    f for f, fl in flights.items()
                    if fl.deadline_mono is not None and fl.deadline_mono <= now
                ]
                if not expired:
                    continue
                report.timeouts += len(expired)
                expired_set = set(expired)
                survivors = [
                    (fl.task, fl.attempt)
                    for f, fl in flights.items() if f not in expired_set
                ]
                expired_flights = [flights[f] for f in expired]
                flights.clear()
                restart_pool()
                for task, attempt in survivors:
                    submit(task, attempt)
                for fl in expired_flights:
                    fail(fl, TimeoutError(
                        f"task exceeded {policy.task_timeout_s}s deadline"
                    ))
                continue
            for fut in done:
                flight = flights.pop(fut)
                try:
                    e, g = fut.result()
                except Exception as err:  # noqa: BLE001 — routed by policy
                    fail(flight, err)
                else:
                    coordinator.complete(flight.task, e, g)
                    report.tasks_completed += 1
                    if tracer:
                        tracer.complete(
                            "task.roundtrip", flight.trace_start,
                            tracer.clock() - flight.trace_start,
                            cat="driver", step=flight.task.step,
                            key=str(flight.task.key),
                            attempt=flight.attempt,
                        )
    finally:
        if flights:
            # don't wait on possibly-hung workers
            kill_pool()
        else:
            pool.shutdown(wait=True, cancel_futures=True)
    return report
