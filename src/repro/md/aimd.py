"""Synchronous AIMD driver (NVE) over MBE-fragmented or whole systems.

This is the baseline the asynchronous scheme (`repro.md.scheduler`) is
compared against: every time step is a global barrier — the full MBE
gradient must finish before any atom moves (paper Sec. VII-A).
"""

from __future__ import annotations

import time

import numpy as np

from ..chem.molecule import Molecule
from ..frag.mbe import build_plan, mbe_energy_gradient, update_plan
from ..frag.monomer import FragmentedSystem
from ..numerics import ensure_finite
from .checkpoint import Checkpoint, CheckpointError, write_checkpoint
from .integrators import (
    fs_to_au,
    kinetic_energy,
    maxwell_boltzmann_velocities,
    verlet_step,
)
from .mts import SlowTierState, TieredMBEForces, slow_tier_items_split
from .trajectory import Trajectory

__all__ = ["Trajectory", "run_aimd"]


def run_aimd(
    mol_or_system: Molecule | FragmentedSystem,
    calculator,
    nsteps: int,
    dt_fs: float = 1.0,
    temperature_k: float = 300.0,
    seed: int = 0,
    coords0: np.ndarray | None = None,
    r_dimer_bohr: float | None = None,
    r_trimer_bohr: float | None = None,
    mbe_order: int = 3,
    replan_interval: int = 1,
    velocities: np.ndarray | None = None,
    smooth_switching: bool = False,
    switch_on_factor: float = 0.85,
    thermostat=None,
    tracer=None,
    checkpoint_path=None,
    checkpoint_every: int = 0,
    checkpoint_keep: int = 1,
    resume: Checkpoint | None = None,
    warm_start: bool = True,
    fault_plan=None,
    mts_k: int = 1,
    mts_extrapolate: bool = False,
    mts_k_trimer: int | None = None,
    surrogate=None,
) -> Trajectory:
    """Synchronous NVE velocity-Verlet dynamics.

    For a `FragmentedSystem`, forces come from the MBE with the given
    cutoffs; the polymer list is re-enumerated every ``replan_interval``
    steps (the paper's pre-formed-list mode). For a plain `Molecule`, the
    calculator is applied to the whole system (unfragmented baseline).

    ``smooth_switching=True`` replaces the hard polymer cutoffs with the
    C2 switched corrections of `repro.frag.switching` (the paper's
    stated future work), turning on at ``switch_on_factor * r_cut`` —
    this removes the cutoff-crossing energy jumps of Fig. 6.

    ``thermostat`` (an object with ``apply(velocities, masses, dt_fs)``,
    see `repro.md.thermostats`) switches the run from NVE to NVT.

    Resilience: every force evaluation passes a NaN/Inf sentinel
    (`NumericalDivergenceError` on divergence — nothing non-finite ever
    enters the integrator).  With ``checkpoint_path`` and
    ``checkpoint_every > 0``, a crash-safe checkpoint (atomic write,
    checksummed; see `repro.md.checkpoint`) is written between steps at
    every multiple of ``checkpoint_every`` that is also a replan
    boundary, so a resumed run rebuilds the identical fragment plan and
    continues bitwise-exactly.  Pass a loaded `Checkpoint` as ``resume``
    to continue an interrupted trajectory; the returned `Trajectory`
    then contains the full history (checkpointed frames + new frames).

    ``warm_start=True`` (the default) attaches a `GuessCache` to
    calculators that support one (``calculator.guess_cache`` is left
    untouched if the caller already set it), so every fragment's SCF is
    seeded with its previous converged density; replans are then applied
    incrementally (`update_plan`) and invalidate the cached densities of
    fragments that left the plan. The cache is never checkpointed: a
    resumed run re-converges from cold guesses, which costs iterations
    but reproduces energies to SCF convergence tolerance.

    ``checkpoint_keep > 1`` retains that many rotated checkpoint copies
    (``path.1``, ``path.2``, ...) so a corrupted latest file can be
    survived via `read_checkpoint_with_fallback`; ``fault_plan`` (a
    `repro.faults.FaultPlan`) schedules deterministic checkpoint
    corruption for chaos testing — task-site faults are injected by
    wrapping the calculator in `repro.faults.FaultPlanCalculator`
    instead.

    ``mts_k > 1`` switches fragmented runs to r-RESPA multiple-time-step
    integration (`repro.md.mts`): monomer forces (the fast tier) are
    evaluated every step, the dimer/trimer correction tier only every
    ``mts_k`` steps and applied as impulse half-kicks at the outer
    boundaries (or, with ``mts_extrapolate=True``, as a linearly
    extrapolated force inside every inner step).  The reported potential
    energy at inner steps is ``fast + held/extrapolated slow`` — exact
    at outer boundaries, which is where energy conservation should be
    measured.  Checkpoints then carry the slow-tier state, so resume —
    including from mid-cycle — continues the exact impulse pattern.

    ``mts_k_trimer`` (the per-tier ``k`` ladder) splits the slow tier by
    MBE order: the dimer correction tier keeps firing every ``mts_k``
    steps while the trimer tier fires only every ``mts_k_trimer`` steps
    (which must be a multiple of ``mts_k``; impulse mode only).  At
    ``mts_k_trimer == mts_k`` (or ``None``) the run takes the exact
    single-ladder code path.

    ``surrogate`` (a `repro.surrogate.SurrogateManager`) routes polymer
    (dimer/trimer) evaluations through the online committee surrogate:
    full solves train it, and contributions are served from it whenever
    the committee-disagreement gate admits them, with the per-order
    bound accumulated into the manager's neglected-error ceiling.
    """
    fragmented = isinstance(mol_or_system, FragmentedSystem)
    mts_k = max(1, int(mts_k))
    ladder = mts_k_trimer is not None and int(mts_k_trimer) != mts_k
    if ladder:
        mts_k_trimer = int(mts_k_trimer)
        if mts_k_trimer < mts_k or mts_k_trimer % mts_k != 0:
            raise ValueError(
                f"mts_k_trimer ({mts_k_trimer}) must be a multiple of "
                f"mts_k ({mts_k}) at least as large: the trimer tier is "
                "the slower one and its boundaries must nest"
            )
        if mts_extrapolate:
            raise ValueError(
                "the per-tier k ladder supports impulse mode only"
            )
    mts = mts_k > 1 or ladder
    if mts and not fragmented:
        raise ValueError(
            "multiple-time-step integration (mts_k > 1) requires a "
            "FragmentedSystem: the tier split is across MBE orders"
        )
    if mts and smooth_switching:
        raise ValueError(
            "multiple-time-step integration is not supported together "
            "with smooth_switching"
        )
    if surrogate is not None and not fragmented:
        raise ValueError(
            "the MBE-tail surrogate requires a FragmentedSystem: it "
            "serves dimer/trimer contributions"
        )
    if surrogate is not None and smooth_switching:
        raise ValueError(
            "the MBE-tail surrogate is not supported together with "
            "smooth_switching"
        )
    if warm_start and getattr(calculator, "guess_cache", "no") is None:
        from ..calculators import GuessCache

        calculator.guess_cache = GuessCache()
    if tracer is not None and getattr(calculator, "tracer", "no") is None:
        calculator.tracer = tracer
    if tracer is not None and getattr(thermostat, "tracer", "no") is None:
        # thermostat diagnostics (e.g. the Berendsen clamp instant)
        thermostat.tracer = tracer
    parent = mol_or_system.parent if fragmented else mol_or_system
    masses = parent.masses_au
    dt = fs_to_au(dt_fs)
    coords = (parent.coords if coords0 is None else coords0).copy()
    if velocities is None:
        velocities = maxwell_boltzmann_velocities(masses, temperature_k, seed=seed)
    else:
        velocities = velocities.copy()

    traj = Trajectory()
    start_step = 0
    if resume is not None:
        if resume.coords.shape != parent.coords.shape:
            raise CheckpointError(
                f"checkpoint is for {resume.coords.shape[0]} atoms, "
                f"system has {parent.natoms}"
            )
        start_step = int(resume.step)
        coords = np.array(resume.coords, dtype=float, copy=True)
        velocities = np.array(resume.velocities, dtype=float, copy=True)
        traj.times_fs = [float(t) for t in resume.times_fs]
        traj.potential = [float(e) for e in resume.potential]
        traj.kinetic = [float(e) for e in resume.kinetic]
        if resume.frame_coords is not None:
            traj.coords = [np.array(c) for c in resume.frame_coords]
            traj.velocities = [np.array(v) for v in resume.frame_velocities]
        traj.wall_times = [0.0] * max(len(traj.times_fs) - 1, 0)
        if thermostat is not None and resume.thermostat is not None:
            thermostat.load_state_dict(resume.thermostat)
        if tracer:
            tracer.instant("resume", cat="checkpoint", step=start_step)
        if resume.surrogate is not None and surrogate is not None:
            surrogate.load_state(resume.surrogate, resume.surrogate_arrays or {})

    slow = None
    slow3 = None
    if mts:
        if resume is not None and resume.mts is not None:
            meta = resume.mts
            if int(meta["k"]) != mts_k or bool(meta["extrapolate"]) != bool(
                mts_extrapolate
            ):
                raise CheckpointError(
                    f"checkpoint MTS state (k={meta['k']}, "
                    f"extrapolate={meta['extrapolate']}) does not match "
                    f"the run (k={mts_k}, extrapolate={mts_extrapolate})"
                )
            ck_k3 = meta.get("k_trimer")
            if ladder and (ck_k3 is None or int(ck_k3) != mts_k_trimer):
                raise CheckpointError(
                    f"checkpoint MTS ladder state (k_trimer={ck_k3}) does "
                    f"not match the run (mts_k_trimer={mts_k_trimer})"
                )
            if not ladder and ck_k3 is not None:
                raise CheckpointError(
                    f"checkpoint carries a per-tier MTS ladder "
                    f"(k_trimer={ck_k3}); resume with the same mts_k_trimer"
                )
            slow = SlowTierState.from_state(
                meta, resume.mts_slow_forces, resume.mts_slow_forces_prev
            )
            if ladder:
                slow3 = SlowTierState.from_state(
                    {
                        "k": int(ck_k3),
                        "extrapolate": False,
                        "step": meta["step3"],
                        "prev_step": meta["prev_step3"],
                        "e_slow": meta["e_slow3"],
                        "e_slow_prev": meta.get("e_slow3_prev", 0.0),
                    },
                    resume.mts_slow3_forces,
                    resume.mts_slow3_forces_prev,
                )
        else:
            if start_step % mts_k != 0:
                raise CheckpointError(
                    f"checkpoint step {start_step} is inside an outer "
                    f"cycle (mts_k={mts_k}) but carries no MTS state; "
                    "the held slow forces cannot be reconstructed"
                )
            if ladder and start_step % mts_k_trimer != 0:
                raise CheckpointError(
                    f"checkpoint step {start_step} is inside a trimer-tier "
                    f"cycle (mts_k_trimer={mts_k_trimer}) but carries no "
                    "MTS state; the held slow forces cannot be reconstructed"
                )
            slow = SlowTierState(k=mts_k, extrapolate=bool(mts_extrapolate))
            if ladder:
                slow3 = SlowTierState(k=mts_k_trimer)
    elif resume is not None and resume.mts is not None:
        raise CheckpointError(
            "checkpoint carries MTS integrator state "
            f"(k={resume.mts.get('k')}); resume with the same mts_k"
        )

    plan = None

    def replan(c: np.ndarray, step: int) -> None:
        """(Re)build the fragment plan — incrementally after the first.

        `update_plan` edits the previous coefficient map instead of
        rebuilding it, and its diff drives warm-start cache invalidation
        for fragments that left the plan.
        """
        nonlocal plan
        if plan is None:
            plan = build_plan(
                mol_or_system, r_dimer_bohr, r_trimer_bohr,
                order=mbe_order, coords=c,
            )
            return
        plan, diff = update_plan(
            mol_or_system, plan, r_dimer_bohr, r_trimer_bohr,
            order=mbe_order, coords=c,
        )
        cache = getattr(calculator, "guess_cache", None)
        if cache is not None:
            for key in diff.removed:
                cache.invalidate(key)
        if tracer:
            tracer.instant(
                "replan.incremental", cat="scheduler", step=step,
                added=len(diff.added), removed=len(diff.removed),
                reused=diff.reused,
            )

    def raw_force_fn(c: np.ndarray) -> tuple[float, np.ndarray]:
        nonlocal plan
        if not fragmented:
            e, g = calculator.energy_gradient(parent.with_coords(c))
            return e, -g
        if smooth_switching:
            from ..frag.switching import mbe_energy_gradient_switched

            e, g = mbe_energy_gradient_switched(
                mol_or_system, calculator,
                r_on_dimer=switch_on_factor * r_dimer_bohr,
                r_cut_dimer=r_dimer_bohr,
                r_on_trimer=(
                    switch_on_factor * r_trimer_bohr
                    if r_trimer_bohr is not None else None
                ),
                r_cut_trimer=r_trimer_bohr,
                order=mbe_order,
                coords=c,
            )
            return e, -g
        if plan is None:
            replan(c, 0)
        e, g = mbe_energy_gradient(
            mol_or_system, plan, calculator, coords=c, surrogate=surrogate
        )
        return e, -g

    def force_fn(c: np.ndarray) -> tuple[float, np.ndarray]:
        e, f = raw_force_fn(c)
        # divergence sentinel: NaN/Inf must never reach the integrator
        ensure_finite("aimd force evaluation", energy=e, forces=f)
        return e, f

    def maybe_checkpoint(step: int, cur_forces: np.ndarray | None = None) -> None:
        if not checkpoint_path or checkpoint_every <= 0 or step <= start_step:
            return
        if step % checkpoint_every != 0:
            return
        # only checkpoint where the fragment plan is freshly rebuilt, so
        # a resumed run re-derives the identical plan from the resumed
        # coordinates (pre-formed lists from mid-window are not portable;
        # replan_interval=0 freezes the step-0 plan forever, which a
        # resume cannot reconstruct, so no checkpoints are written then)
        if fragmented and (
            not replan_interval or step % replan_interval != 0
        ):
            return
        mts_meta = slow.state_dict() if mts else None
        if ladder:
            mts_meta["k_trimer"] = int(mts_k_trimer)
            mts_meta["step3"] = int(slow3.step)
            mts_meta["prev_step3"] = int(slow3.prev_step)
            mts_meta["e_slow3"] = float(slow3.e_slow)
            mts_meta["e_slow3_prev"] = float(slow3.e_slow_prev)
        surr_meta = surr_arrays = None
        if surrogate is not None:
            surr_meta, surr_arrays = surrogate.state_dict()
        write_checkpoint(
            checkpoint_path,
            Checkpoint(
                step=step,
                time_fs=step * dt_fs,
                coords=coords.copy(),
                velocities=velocities.copy(),
                symbols=tuple(parent.symbols),
                charge=parent.charge,
                times_fs=np.asarray(traj.times_fs),
                potential=np.asarray(traj.potential),
                kinetic=np.asarray(traj.kinetic),
                frame_coords=np.asarray(traj.coords),
                frame_velocities=np.asarray(traj.velocities),
                thermostat=(
                    thermostat.state_dict()
                    if thermostat is not None
                    and hasattr(thermostat, "state_dict")
                    else None
                ),
                mts=mts_meta,
                mts_slow_forces=slow.forces if mts else None,
                mts_slow_forces_prev=slow.forces_prev if mts else None,
                mts_slow3_forces=slow3.forces if ladder else None,
                mts_slow3_forces_prev=slow3.forces_prev if ladder else None,
                surrogate=surr_meta,
                surrogate_arrays=surr_arrays,
                # with a surrogate the resumed run must not re-evaluate
                # the initial forces (the evaluation would mutate the
                # training windows a second time), so they ride along
                forces=(
                    cur_forces.copy()
                    if surrogate is not None and cur_forces is not None
                    else None
                ),
            ),
            tracer=tracer,
            keep=checkpoint_keep,
            fault_plan=fault_plan,
        )

    if mts:
        tiers = TieredMBEForces(mol_or_system, calculator, surrogate=surrogate)

        def fast_force(c: np.ndarray) -> tuple[float, np.ndarray]:
            e, g = tiers.fast(c)
            f = -g
            ensure_finite("MTS fast-tier force evaluation", energy=e, forces=f)
            return e, f

        if ladder:

            def eval_tier(
                state: SlowTierState, order: int, c: np.ndarray, at_step: int
            ) -> None:
                """Fresh evaluation of one ladder tier at its boundary."""
                tiers.plan = plan
                items2, items3 = slow_tier_items_split(
                    plan, mol_or_system.nmonomers
                )
                e_s, g_s = tiers.slow_items(c, items2 if order == 2 else items3)
                f_s = -g_s
                ensure_finite(
                    f"MTS tier-{order} force evaluation", energy=e_s, forces=f_s
                )
                state.push(at_step, f_s, e_s)
                if tracer:
                    tracer.instant(
                        "mts.slow_eval", cat="md", step=at_step, tier=order
                    )

            k_dt2 = mts_k * dt
            k_dt3 = mts_k_trimer * dt
            e_fast, f_fast = fast_force(coords)
            if slow.step < 0 or slow3.step < 0:
                if plan is None:
                    replan(coords, start_step)
            if slow.step < 0:
                eval_tier(slow, 2, coords, start_step)
            if slow3.step < 0:
                eval_tier(slow3, 3, coords, start_step)
            step = start_step
            while True:
                e_slow2, _ = slow.estimate(step)
                e_slow3, _ = slow3.estimate(step)
                if step > start_step or resume is None:
                    traj.times_fs.append(step * dt_fs)
                    traj.potential.append(e_fast + e_slow2 + e_slow3)
                    traj.kinetic.append(kinetic_energy(masses, velocities))
                    traj.coords.append(coords.copy())
                    traj.velocities.append(velocities.copy())
                maybe_checkpoint(step)
                if step == nsteps:
                    break
                if replan_interval and step % replan_interval == 0:
                    replan(coords, step)
                t0 = time.perf_counter()
                # opening half-impulses: each tier kicks at its own
                # boundary with its own outer time step (r-RESPA nesting;
                # the trimer boundaries are a subset of the dimer ones)
                if step % mts_k == 0:
                    velocities = (
                        velocities + 0.5 * k_dt2 * slow.forces / masses[:, None]
                    )
                if step % mts_k_trimer == 0:
                    velocities = (
                        velocities
                        + 0.5 * k_dt3 * slow3.forces / masses[:, None]
                    )
                coords, velocities, f_fast, e_fast = verlet_step(
                    coords, velocities, f_fast, masses, dt, fast_force
                )
                if (step + 1) % mts_k == 0:
                    eval_tier(slow, 2, coords, step + 1)
                    velocities = (
                        velocities + 0.5 * k_dt2 * slow.forces / masses[:, None]
                    )
                if (step + 1) % mts_k_trimer == 0:
                    eval_tier(slow3, 3, coords, step + 1)
                    velocities = (
                        velocities
                        + 0.5 * k_dt3 * slow3.forces / masses[:, None]
                    )
                if thermostat is not None:
                    velocities = thermostat.apply(velocities, masses, dt_fs)
                traj.wall_times.append(time.perf_counter() - t0)
                step += 1
            return traj

        def eval_slow(c: np.ndarray, at_step: int) -> None:
            """Fresh slow-tier evaluation at an outer boundary.

            Reuses the monomer solves of the fast-tier call just made at
            the same coordinates, so a boundary costs only the polymer
            (dimer/trimer) solves on top of an inner step.
            """
            tiers.plan = plan
            e_s, g_s = tiers.slow(c)
            f_s = -g_s
            ensure_finite("MTS slow-tier force evaluation", energy=e_s, forces=f_s)
            slow.push(at_step, f_s, e_s)
            if tracer:
                tracer.instant("mts.slow_eval", cat="md", step=at_step)

        k_dt = mts_k * dt
        e_fast, f_fast = fast_force(coords)
        if slow.step < 0:
            # fresh start (or resume of a pre-MTS checkpoint at an outer
            # boundary): evaluate the slow tier at the initial geometry
            if plan is None:
                replan(coords, start_step)
            eval_slow(coords, start_step)
        step = start_step
        while True:
            e_slow_est, _ = slow.estimate(step)
            if step > start_step or resume is None:
                traj.times_fs.append(step * dt_fs)
                traj.potential.append(e_fast + e_slow_est)
                traj.kinetic.append(kinetic_energy(masses, velocities))
                traj.coords.append(coords.copy())
                traj.velocities.append(velocities.copy())
            maybe_checkpoint(step)
            if step == nsteps:
                break
            if replan_interval and step % replan_interval == 0:
                replan(coords, step)
            t0 = time.perf_counter()
            if not mts_extrapolate and step % mts_k == 0:
                # opening half-impulse of the outer cycle (r-RESPA kick)
                velocities = (
                    velocities + 0.5 * k_dt * slow.forces / masses[:, None]
                )
            if mts_extrapolate:
                # velocity Verlet under fast + extrapolated slow force;
                # the arrival half-kick at a boundary uses the *fresh*
                # slow force evaluated there
                _, f_s0 = slow.estimate(step)
                acc = (f_fast + f_s0) / masses[:, None]
                coords = coords + velocities * dt + 0.5 * acc * dt**2
                e_fast, f_fast = fast_force(coords)
                if (step + 1) % mts_k == 0:
                    eval_slow(coords, step + 1)
                _, f_s1 = slow.estimate(step + 1)
                acc_new = (f_fast + f_s1) / masses[:, None]
                velocities = velocities + 0.5 * (acc + acc_new) * dt
            else:
                coords, velocities, f_fast, e_fast = verlet_step(
                    coords, velocities, f_fast, masses, dt, fast_force
                )
                if (step + 1) % mts_k == 0:
                    eval_slow(coords, step + 1)
                    # closing half-impulse with the fresh slow force
                    velocities = (
                        velocities
                        + 0.5 * k_dt * slow.forces / masses[:, None]
                    )
            if thermostat is not None:
                velocities = thermostat.apply(velocities, masses, dt_fs)
            traj.wall_times.append(time.perf_counter() - t0)
            step += 1
        return traj

    if resume is not None and resume.forces is not None:
        # surrogate resume: restore the forces instead of re-evaluating
        # them — the checkpointed surrogate state already reflects this
        # evaluation, and repeating it would re-train and re-serve
        forces = np.array(resume.forces, dtype=float, copy=True)
        e_pot = float(resume.potential[-1])
    else:
        e_pot, forces = force_fn(coords)
    for step in range(start_step, nsteps + 1):
        if step > start_step or resume is None:
            traj.times_fs.append(step * dt_fs)
            traj.potential.append(e_pot)
            traj.kinetic.append(kinetic_energy(masses, velocities))
            traj.coords.append(coords.copy())
            traj.velocities.append(velocities.copy())
        maybe_checkpoint(step, forces)
        if step == nsteps:
            break
        if fragmented and replan_interval and step % replan_interval == 0:
            replan(coords, step)
        t0 = time.perf_counter()
        coords, velocities, forces, e_pot = verlet_step(
            coords, velocities, forces, masses, dt, force_fn
        )
        if thermostat is not None:
            velocities = thermostat.apply(velocities, masses, dt_fs)
        traj.wall_times.append(time.perf_counter() - t0)
    return traj
