"""Synchronous AIMD driver (NVE) over MBE-fragmented or whole systems.

This is the baseline the asynchronous scheme (`repro.md.scheduler`) is
compared against: every time step is a global barrier — the full MBE
gradient must finish before any atom moves (paper Sec. VII-A).
"""

from __future__ import annotations

import time

import numpy as np

from ..chem.molecule import Molecule
from ..frag.mbe import build_plan, mbe_energy_gradient, update_plan
from ..frag.monomer import FragmentedSystem
from ..numerics import ensure_finite
from .checkpoint import Checkpoint, CheckpointError, write_checkpoint
from .integrators import (
    fs_to_au,
    kinetic_energy,
    maxwell_boltzmann_velocities,
    verlet_step,
)
from .mts import SlowTierState, TieredMBEForces
from .trajectory import Trajectory

__all__ = ["Trajectory", "run_aimd"]


def run_aimd(
    mol_or_system: Molecule | FragmentedSystem,
    calculator,
    nsteps: int,
    dt_fs: float = 1.0,
    temperature_k: float = 300.0,
    seed: int = 0,
    coords0: np.ndarray | None = None,
    r_dimer_bohr: float | None = None,
    r_trimer_bohr: float | None = None,
    mbe_order: int = 3,
    replan_interval: int = 1,
    velocities: np.ndarray | None = None,
    smooth_switching: bool = False,
    switch_on_factor: float = 0.85,
    thermostat=None,
    tracer=None,
    checkpoint_path=None,
    checkpoint_every: int = 0,
    checkpoint_keep: int = 1,
    resume: Checkpoint | None = None,
    warm_start: bool = True,
    fault_plan=None,
    mts_k: int = 1,
    mts_extrapolate: bool = False,
) -> Trajectory:
    """Synchronous NVE velocity-Verlet dynamics.

    For a `FragmentedSystem`, forces come from the MBE with the given
    cutoffs; the polymer list is re-enumerated every ``replan_interval``
    steps (the paper's pre-formed-list mode). For a plain `Molecule`, the
    calculator is applied to the whole system (unfragmented baseline).

    ``smooth_switching=True`` replaces the hard polymer cutoffs with the
    C2 switched corrections of `repro.frag.switching` (the paper's
    stated future work), turning on at ``switch_on_factor * r_cut`` —
    this removes the cutoff-crossing energy jumps of Fig. 6.

    ``thermostat`` (an object with ``apply(velocities, masses, dt_fs)``,
    see `repro.md.thermostats`) switches the run from NVE to NVT.

    Resilience: every force evaluation passes a NaN/Inf sentinel
    (`NumericalDivergenceError` on divergence — nothing non-finite ever
    enters the integrator).  With ``checkpoint_path`` and
    ``checkpoint_every > 0``, a crash-safe checkpoint (atomic write,
    checksummed; see `repro.md.checkpoint`) is written between steps at
    every multiple of ``checkpoint_every`` that is also a replan
    boundary, so a resumed run rebuilds the identical fragment plan and
    continues bitwise-exactly.  Pass a loaded `Checkpoint` as ``resume``
    to continue an interrupted trajectory; the returned `Trajectory`
    then contains the full history (checkpointed frames + new frames).

    ``warm_start=True`` (the default) attaches a `GuessCache` to
    calculators that support one (``calculator.guess_cache`` is left
    untouched if the caller already set it), so every fragment's SCF is
    seeded with its previous converged density; replans are then applied
    incrementally (`update_plan`) and invalidate the cached densities of
    fragments that left the plan. The cache is never checkpointed: a
    resumed run re-converges from cold guesses, which costs iterations
    but reproduces energies to SCF convergence tolerance.

    ``checkpoint_keep > 1`` retains that many rotated checkpoint copies
    (``path.1``, ``path.2``, ...) so a corrupted latest file can be
    survived via `read_checkpoint_with_fallback`; ``fault_plan`` (a
    `repro.faults.FaultPlan`) schedules deterministic checkpoint
    corruption for chaos testing — task-site faults are injected by
    wrapping the calculator in `repro.faults.FaultPlanCalculator`
    instead.

    ``mts_k > 1`` switches fragmented runs to r-RESPA multiple-time-step
    integration (`repro.md.mts`): monomer forces (the fast tier) are
    evaluated every step, the dimer/trimer correction tier only every
    ``mts_k`` steps and applied as impulse half-kicks at the outer
    boundaries (or, with ``mts_extrapolate=True``, as a linearly
    extrapolated force inside every inner step).  The reported potential
    energy at inner steps is ``fast + held/extrapolated slow`` — exact
    at outer boundaries, which is where energy conservation should be
    measured.  Checkpoints then carry the slow-tier state, so resume —
    including from mid-cycle — continues the exact impulse pattern.
    """
    fragmented = isinstance(mol_or_system, FragmentedSystem)
    mts_k = max(1, int(mts_k))
    mts = mts_k > 1
    if mts and not fragmented:
        raise ValueError(
            "multiple-time-step integration (mts_k > 1) requires a "
            "FragmentedSystem: the tier split is across MBE orders"
        )
    if mts and smooth_switching:
        raise ValueError(
            "multiple-time-step integration is not supported together "
            "with smooth_switching"
        )
    if warm_start and getattr(calculator, "guess_cache", "no") is None:
        from ..calculators import GuessCache

        calculator.guess_cache = GuessCache()
    if tracer is not None and getattr(calculator, "tracer", "no") is None:
        calculator.tracer = tracer
    if tracer is not None and getattr(thermostat, "tracer", "no") is None:
        # thermostat diagnostics (e.g. the Berendsen clamp instant)
        thermostat.tracer = tracer
    parent = mol_or_system.parent if fragmented else mol_or_system
    masses = parent.masses_au
    dt = fs_to_au(dt_fs)
    coords = (parent.coords if coords0 is None else coords0).copy()
    if velocities is None:
        velocities = maxwell_boltzmann_velocities(masses, temperature_k, seed=seed)
    else:
        velocities = velocities.copy()

    traj = Trajectory()
    start_step = 0
    if resume is not None:
        if resume.coords.shape != parent.coords.shape:
            raise CheckpointError(
                f"checkpoint is for {resume.coords.shape[0]} atoms, "
                f"system has {parent.natoms}"
            )
        start_step = int(resume.step)
        coords = np.array(resume.coords, dtype=float, copy=True)
        velocities = np.array(resume.velocities, dtype=float, copy=True)
        traj.times_fs = [float(t) for t in resume.times_fs]
        traj.potential = [float(e) for e in resume.potential]
        traj.kinetic = [float(e) for e in resume.kinetic]
        if resume.frame_coords is not None:
            traj.coords = [np.array(c) for c in resume.frame_coords]
            traj.velocities = [np.array(v) for v in resume.frame_velocities]
        traj.wall_times = [0.0] * max(len(traj.times_fs) - 1, 0)
        if thermostat is not None and resume.thermostat is not None:
            thermostat.load_state_dict(resume.thermostat)
        if tracer:
            tracer.instant("resume", cat="checkpoint", step=start_step)

    slow = None
    if mts:
        if resume is not None and resume.mts is not None:
            meta = resume.mts
            if int(meta["k"]) != mts_k or bool(meta["extrapolate"]) != bool(
                mts_extrapolate
            ):
                raise CheckpointError(
                    f"checkpoint MTS state (k={meta['k']}, "
                    f"extrapolate={meta['extrapolate']}) does not match "
                    f"the run (k={mts_k}, extrapolate={mts_extrapolate})"
                )
            slow = SlowTierState.from_state(
                meta, resume.mts_slow_forces, resume.mts_slow_forces_prev
            )
        else:
            if start_step % mts_k != 0:
                raise CheckpointError(
                    f"checkpoint step {start_step} is inside an outer "
                    f"cycle (mts_k={mts_k}) but carries no MTS state; "
                    "the held slow forces cannot be reconstructed"
                )
            slow = SlowTierState(k=mts_k, extrapolate=bool(mts_extrapolate))
    elif resume is not None and resume.mts is not None:
        raise CheckpointError(
            "checkpoint carries MTS integrator state "
            f"(k={resume.mts.get('k')}); resume with the same mts_k"
        )

    plan = None

    def replan(c: np.ndarray, step: int) -> None:
        """(Re)build the fragment plan — incrementally after the first.

        `update_plan` edits the previous coefficient map instead of
        rebuilding it, and its diff drives warm-start cache invalidation
        for fragments that left the plan.
        """
        nonlocal plan
        if plan is None:
            plan = build_plan(
                mol_or_system, r_dimer_bohr, r_trimer_bohr,
                order=mbe_order, coords=c,
            )
            return
        plan, diff = update_plan(
            mol_or_system, plan, r_dimer_bohr, r_trimer_bohr,
            order=mbe_order, coords=c,
        )
        cache = getattr(calculator, "guess_cache", None)
        if cache is not None:
            for key in diff.removed:
                cache.invalidate(key)
        if tracer:
            tracer.instant(
                "replan.incremental", cat="scheduler", step=step,
                added=len(diff.added), removed=len(diff.removed),
                reused=diff.reused,
            )

    def raw_force_fn(c: np.ndarray) -> tuple[float, np.ndarray]:
        nonlocal plan
        if not fragmented:
            e, g = calculator.energy_gradient(parent.with_coords(c))
            return e, -g
        if smooth_switching:
            from ..frag.switching import mbe_energy_gradient_switched

            e, g = mbe_energy_gradient_switched(
                mol_or_system, calculator,
                r_on_dimer=switch_on_factor * r_dimer_bohr,
                r_cut_dimer=r_dimer_bohr,
                r_on_trimer=(
                    switch_on_factor * r_trimer_bohr
                    if r_trimer_bohr is not None else None
                ),
                r_cut_trimer=r_trimer_bohr,
                order=mbe_order,
                coords=c,
            )
            return e, -g
        if plan is None:
            replan(c, 0)
        e, g = mbe_energy_gradient(mol_or_system, plan, calculator, coords=c)
        return e, -g

    def force_fn(c: np.ndarray) -> tuple[float, np.ndarray]:
        e, f = raw_force_fn(c)
        # divergence sentinel: NaN/Inf must never reach the integrator
        ensure_finite("aimd force evaluation", energy=e, forces=f)
        return e, f

    def maybe_checkpoint(step: int) -> None:
        if not checkpoint_path or checkpoint_every <= 0 or step <= start_step:
            return
        if step % checkpoint_every != 0:
            return
        # only checkpoint where the fragment plan is freshly rebuilt, so
        # a resumed run re-derives the identical plan from the resumed
        # coordinates (pre-formed lists from mid-window are not portable;
        # replan_interval=0 freezes the step-0 plan forever, which a
        # resume cannot reconstruct, so no checkpoints are written then)
        if fragmented and (
            not replan_interval or step % replan_interval != 0
        ):
            return
        write_checkpoint(
            checkpoint_path,
            Checkpoint(
                step=step,
                time_fs=step * dt_fs,
                coords=coords.copy(),
                velocities=velocities.copy(),
                symbols=tuple(parent.symbols),
                charge=parent.charge,
                times_fs=np.asarray(traj.times_fs),
                potential=np.asarray(traj.potential),
                kinetic=np.asarray(traj.kinetic),
                frame_coords=np.asarray(traj.coords),
                frame_velocities=np.asarray(traj.velocities),
                thermostat=(
                    thermostat.state_dict()
                    if thermostat is not None
                    and hasattr(thermostat, "state_dict")
                    else None
                ),
                mts=slow.state_dict() if mts else None,
                mts_slow_forces=slow.forces if mts else None,
                mts_slow_forces_prev=slow.forces_prev if mts else None,
            ),
            tracer=tracer,
            keep=checkpoint_keep,
            fault_plan=fault_plan,
        )

    if mts:
        tiers = TieredMBEForces(mol_or_system, calculator)

        def fast_force(c: np.ndarray) -> tuple[float, np.ndarray]:
            e, g = tiers.fast(c)
            f = -g
            ensure_finite("MTS fast-tier force evaluation", energy=e, forces=f)
            return e, f

        def eval_slow(c: np.ndarray, at_step: int) -> None:
            """Fresh slow-tier evaluation at an outer boundary.

            Reuses the monomer solves of the fast-tier call just made at
            the same coordinates, so a boundary costs only the polymer
            (dimer/trimer) solves on top of an inner step.
            """
            tiers.plan = plan
            e_s, g_s = tiers.slow(c)
            f_s = -g_s
            ensure_finite("MTS slow-tier force evaluation", energy=e_s, forces=f_s)
            slow.push(at_step, f_s, e_s)
            if tracer:
                tracer.instant("mts.slow_eval", cat="md", step=at_step)

        k_dt = mts_k * dt
        e_fast, f_fast = fast_force(coords)
        if slow.step < 0:
            # fresh start (or resume of a pre-MTS checkpoint at an outer
            # boundary): evaluate the slow tier at the initial geometry
            if plan is None:
                replan(coords, start_step)
            eval_slow(coords, start_step)
        step = start_step
        while True:
            e_slow_est, _ = slow.estimate(step)
            if step > start_step or resume is None:
                traj.times_fs.append(step * dt_fs)
                traj.potential.append(e_fast + e_slow_est)
                traj.kinetic.append(kinetic_energy(masses, velocities))
                traj.coords.append(coords.copy())
                traj.velocities.append(velocities.copy())
            maybe_checkpoint(step)
            if step == nsteps:
                break
            if replan_interval and step % replan_interval == 0:
                replan(coords, step)
            t0 = time.perf_counter()
            if not mts_extrapolate and step % mts_k == 0:
                # opening half-impulse of the outer cycle (r-RESPA kick)
                velocities = (
                    velocities + 0.5 * k_dt * slow.forces / masses[:, None]
                )
            if mts_extrapolate:
                # velocity Verlet under fast + extrapolated slow force;
                # the arrival half-kick at a boundary uses the *fresh*
                # slow force evaluated there
                _, f_s0 = slow.estimate(step)
                acc = (f_fast + f_s0) / masses[:, None]
                coords = coords + velocities * dt + 0.5 * acc * dt**2
                e_fast, f_fast = fast_force(coords)
                if (step + 1) % mts_k == 0:
                    eval_slow(coords, step + 1)
                _, f_s1 = slow.estimate(step + 1)
                acc_new = (f_fast + f_s1) / masses[:, None]
                velocities = velocities + 0.5 * (acc + acc_new) * dt
            else:
                coords, velocities, f_fast, e_fast = verlet_step(
                    coords, velocities, f_fast, masses, dt, fast_force
                )
                if (step + 1) % mts_k == 0:
                    eval_slow(coords, step + 1)
                    # closing half-impulse with the fresh slow force
                    velocities = (
                        velocities
                        + 0.5 * k_dt * slow.forces / masses[:, None]
                    )
            if thermostat is not None:
                velocities = thermostat.apply(velocities, masses, dt_fs)
            traj.wall_times.append(time.perf_counter() - t0)
            step += 1
        return traj

    e_pot, forces = force_fn(coords)
    for step in range(start_step, nsteps + 1):
        if step > start_step or resume is None:
            traj.times_fs.append(step * dt_fs)
            traj.potential.append(e_pot)
            traj.kinetic.append(kinetic_energy(masses, velocities))
            traj.coords.append(coords.copy())
            traj.velocities.append(velocities.copy())
        maybe_checkpoint(step)
        if step == nsteps:
            break
        if fragmented and replan_interval and step % replan_interval == 0:
            replan(coords, step)
        t0 = time.perf_counter()
        coords, velocities, forces, e_pot = verlet_step(
            coords, velocities, forces, masses, dt, force_fn
        )
        if thermostat is not None:
            velocities = thermostat.apply(velocities, masses, dt_fs)
        traj.wall_times.append(time.perf_counter() - t0)
    return traj
