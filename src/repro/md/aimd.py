"""Synchronous AIMD driver (NVE) over MBE-fragmented or whole systems.

This is the baseline the asynchronous scheme (`repro.md.scheduler`) is
compared against: every time step is a global barrier — the full MBE
gradient must finish before any atom moves (paper Sec. VII-A).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..chem.molecule import Molecule
from ..frag.mbe import build_plan, mbe_energy_gradient, update_plan
from ..frag.monomer import FragmentedSystem
from ..numerics import ensure_finite
from .checkpoint import Checkpoint, CheckpointError, write_checkpoint
from .integrators import (
    fs_to_au,
    kinetic_energy,
    maxwell_boltzmann_velocities,
    verlet_step,
)


@dataclass
class Trajectory:
    """NVE trajectory record."""

    times_fs: list[float] = field(default_factory=list)
    potential: list[float] = field(default_factory=list)
    kinetic: list[float] = field(default_factory=list)
    coords: list[np.ndarray] = field(default_factory=list)
    velocities: list[np.ndarray] = field(default_factory=list)
    wall_times: list[float] = field(default_factory=list)

    @property
    def total(self) -> np.ndarray:
        """Total energy (potential + kinetic) per frame."""
        return np.asarray(self.potential) + np.asarray(self.kinetic)

    def energy_drift(self) -> float:
        """Linear drift of the total energy, Hartree per fs."""
        t = np.asarray(self.times_fs)
        e = self.total
        if len(t) < 2:
            return 0.0
        return float(np.polyfit(t, e, 1)[0])

    def energy_fluctuation(self) -> float:
        """RMS fluctuation of the total energy about its mean (Hartree)."""
        e = self.total
        return float(np.sqrt(np.mean((e - e.mean()) ** 2)))


def run_aimd(
    mol_or_system: Molecule | FragmentedSystem,
    calculator,
    nsteps: int,
    dt_fs: float = 1.0,
    temperature_k: float = 300.0,
    seed: int = 0,
    coords0: np.ndarray | None = None,
    r_dimer_bohr: float | None = None,
    r_trimer_bohr: float | None = None,
    mbe_order: int = 3,
    replan_interval: int = 1,
    velocities: np.ndarray | None = None,
    smooth_switching: bool = False,
    switch_on_factor: float = 0.85,
    thermostat=None,
    tracer=None,
    checkpoint_path=None,
    checkpoint_every: int = 0,
    checkpoint_keep: int = 1,
    resume: Checkpoint | None = None,
    warm_start: bool = True,
    fault_plan=None,
) -> Trajectory:
    """Synchronous NVE velocity-Verlet dynamics.

    For a `FragmentedSystem`, forces come from the MBE with the given
    cutoffs; the polymer list is re-enumerated every ``replan_interval``
    steps (the paper's pre-formed-list mode). For a plain `Molecule`, the
    calculator is applied to the whole system (unfragmented baseline).

    ``smooth_switching=True`` replaces the hard polymer cutoffs with the
    C2 switched corrections of `repro.frag.switching` (the paper's
    stated future work), turning on at ``switch_on_factor * r_cut`` —
    this removes the cutoff-crossing energy jumps of Fig. 6.

    ``thermostat`` (an object with ``apply(velocities, masses, dt_fs)``,
    see `repro.md.thermostats`) switches the run from NVE to NVT.

    Resilience: every force evaluation passes a NaN/Inf sentinel
    (`NumericalDivergenceError` on divergence — nothing non-finite ever
    enters the integrator).  With ``checkpoint_path`` and
    ``checkpoint_every > 0``, a crash-safe checkpoint (atomic write,
    checksummed; see `repro.md.checkpoint`) is written between steps at
    every multiple of ``checkpoint_every`` that is also a replan
    boundary, so a resumed run rebuilds the identical fragment plan and
    continues bitwise-exactly.  Pass a loaded `Checkpoint` as ``resume``
    to continue an interrupted trajectory; the returned `Trajectory`
    then contains the full history (checkpointed frames + new frames).

    ``warm_start=True`` (the default) attaches a `GuessCache` to
    calculators that support one (``calculator.guess_cache`` is left
    untouched if the caller already set it), so every fragment's SCF is
    seeded with its previous converged density; replans are then applied
    incrementally (`update_plan`) and invalidate the cached densities of
    fragments that left the plan. The cache is never checkpointed: a
    resumed run re-converges from cold guesses, which costs iterations
    but reproduces energies to SCF convergence tolerance.

    ``checkpoint_keep > 1`` retains that many rotated checkpoint copies
    (``path.1``, ``path.2``, ...) so a corrupted latest file can be
    survived via `read_checkpoint_with_fallback`; ``fault_plan`` (a
    `repro.faults.FaultPlan`) schedules deterministic checkpoint
    corruption for chaos testing — task-site faults are injected by
    wrapping the calculator in `repro.faults.FaultPlanCalculator`
    instead.
    """
    fragmented = isinstance(mol_or_system, FragmentedSystem)
    if warm_start and getattr(calculator, "guess_cache", "no") is None:
        from ..calculators import GuessCache

        calculator.guess_cache = GuessCache()
    if tracer is not None and getattr(calculator, "tracer", "no") is None:
        calculator.tracer = tracer
    parent = mol_or_system.parent if fragmented else mol_or_system
    masses = parent.masses_au
    dt = fs_to_au(dt_fs)
    coords = (parent.coords if coords0 is None else coords0).copy()
    if velocities is None:
        velocities = maxwell_boltzmann_velocities(masses, temperature_k, seed=seed)
    else:
        velocities = velocities.copy()

    traj = Trajectory()
    start_step = 0
    if resume is not None:
        if resume.coords.shape != parent.coords.shape:
            raise CheckpointError(
                f"checkpoint is for {resume.coords.shape[0]} atoms, "
                f"system has {parent.natoms}"
            )
        start_step = int(resume.step)
        coords = np.array(resume.coords, dtype=float, copy=True)
        velocities = np.array(resume.velocities, dtype=float, copy=True)
        traj.times_fs = [float(t) for t in resume.times_fs]
        traj.potential = [float(e) for e in resume.potential]
        traj.kinetic = [float(e) for e in resume.kinetic]
        if resume.frame_coords is not None:
            traj.coords = [np.array(c) for c in resume.frame_coords]
            traj.velocities = [np.array(v) for v in resume.frame_velocities]
        traj.wall_times = [0.0] * max(len(traj.times_fs) - 1, 0)
        if thermostat is not None and resume.thermostat is not None:
            thermostat.load_state_dict(resume.thermostat)
        if tracer:
            tracer.instant("resume", cat="checkpoint", step=start_step)

    plan = None

    def replan(c: np.ndarray, step: int) -> None:
        """(Re)build the fragment plan — incrementally after the first.

        `update_plan` edits the previous coefficient map instead of
        rebuilding it, and its diff drives warm-start cache invalidation
        for fragments that left the plan.
        """
        nonlocal plan
        if plan is None:
            plan = build_plan(
                mol_or_system, r_dimer_bohr, r_trimer_bohr,
                order=mbe_order, coords=c,
            )
            return
        plan, diff = update_plan(
            mol_or_system, plan, r_dimer_bohr, r_trimer_bohr,
            order=mbe_order, coords=c,
        )
        cache = getattr(calculator, "guess_cache", None)
        if cache is not None:
            for key in diff.removed:
                cache.invalidate(key)
        if tracer:
            tracer.instant(
                "replan.incremental", cat="scheduler", step=step,
                added=len(diff.added), removed=len(diff.removed),
                reused=diff.reused,
            )

    def raw_force_fn(c: np.ndarray) -> tuple[float, np.ndarray]:
        nonlocal plan
        if not fragmented:
            e, g = calculator.energy_gradient(parent.with_coords(c))
            return e, -g
        if smooth_switching:
            from ..frag.switching import mbe_energy_gradient_switched

            e, g = mbe_energy_gradient_switched(
                mol_or_system, calculator,
                r_on_dimer=switch_on_factor * r_dimer_bohr,
                r_cut_dimer=r_dimer_bohr,
                r_on_trimer=(
                    switch_on_factor * r_trimer_bohr
                    if r_trimer_bohr is not None else None
                ),
                r_cut_trimer=r_trimer_bohr,
                order=mbe_order,
                coords=c,
            )
            return e, -g
        if plan is None:
            replan(c, 0)
        e, g = mbe_energy_gradient(mol_or_system, plan, calculator, coords=c)
        return e, -g

    def force_fn(c: np.ndarray) -> tuple[float, np.ndarray]:
        e, f = raw_force_fn(c)
        # divergence sentinel: NaN/Inf must never reach the integrator
        ensure_finite("aimd force evaluation", energy=e, forces=f)
        return e, f

    def maybe_checkpoint(step: int) -> None:
        if not checkpoint_path or checkpoint_every <= 0 or step <= start_step:
            return
        if step % checkpoint_every != 0:
            return
        # only checkpoint where the fragment plan is freshly rebuilt, so
        # a resumed run re-derives the identical plan from the resumed
        # coordinates (pre-formed lists from mid-window are not portable;
        # replan_interval=0 freezes the step-0 plan forever, which a
        # resume cannot reconstruct, so no checkpoints are written then)
        if fragmented and (
            not replan_interval or step % replan_interval != 0
        ):
            return
        write_checkpoint(
            checkpoint_path,
            Checkpoint(
                step=step,
                time_fs=step * dt_fs,
                coords=coords.copy(),
                velocities=velocities.copy(),
                symbols=tuple(parent.symbols),
                charge=parent.charge,
                times_fs=np.asarray(traj.times_fs),
                potential=np.asarray(traj.potential),
                kinetic=np.asarray(traj.kinetic),
                frame_coords=np.asarray(traj.coords),
                frame_velocities=np.asarray(traj.velocities),
                thermostat=(
                    thermostat.state_dict()
                    if thermostat is not None
                    and hasattr(thermostat, "state_dict")
                    else None
                ),
            ),
            tracer=tracer,
            keep=checkpoint_keep,
            fault_plan=fault_plan,
        )

    e_pot, forces = force_fn(coords)
    for step in range(start_step, nsteps + 1):
        if step > start_step or resume is None:
            traj.times_fs.append(step * dt_fs)
            traj.potential.append(e_pot)
            traj.kinetic.append(kinetic_energy(masses, velocities))
            traj.coords.append(coords.copy())
            traj.velocities.append(velocities.copy())
        maybe_checkpoint(step)
        if step == nsteps:
            break
        if fragmented and replan_interval and step % replan_interval == 0:
            replan(coords, step)
        t0 = time.perf_counter()
        coords, velocities, forces, e_pot = verlet_step(
            coords, velocities, forces, masses, dt, force_fn
        )
        if thermostat is not None:
            velocities = thermostat.apply(velocities, masses, dt_fs)
        traj.wall_times.append(time.perf_counter() - t0)
    return traj
