"""Synchronous AIMD driver (NVE) over MBE-fragmented or whole systems.

This is the baseline the asynchronous scheme (`repro.md.scheduler`) is
compared against: every time step is a global barrier — the full MBE
gradient must finish before any atom moves (paper Sec. VII-A).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..chem.molecule import Molecule
from ..frag.mbe import build_plan, mbe_energy_gradient
from ..frag.monomer import FragmentedSystem
from .integrators import (
    fs_to_au,
    kinetic_energy,
    maxwell_boltzmann_velocities,
    verlet_step,
)


@dataclass
class Trajectory:
    """NVE trajectory record."""

    times_fs: list[float] = field(default_factory=list)
    potential: list[float] = field(default_factory=list)
    kinetic: list[float] = field(default_factory=list)
    coords: list[np.ndarray] = field(default_factory=list)
    velocities: list[np.ndarray] = field(default_factory=list)
    wall_times: list[float] = field(default_factory=list)

    @property
    def total(self) -> np.ndarray:
        """Total energy (potential + kinetic) per frame."""
        return np.asarray(self.potential) + np.asarray(self.kinetic)

    def energy_drift(self) -> float:
        """Linear drift of the total energy, Hartree per fs."""
        t = np.asarray(self.times_fs)
        e = self.total
        if len(t) < 2:
            return 0.0
        return float(np.polyfit(t, e, 1)[0])

    def energy_fluctuation(self) -> float:
        """RMS fluctuation of the total energy about its mean (Hartree)."""
        e = self.total
        return float(np.sqrt(np.mean((e - e.mean()) ** 2)))


def run_aimd(
    mol_or_system: Molecule | FragmentedSystem,
    calculator,
    nsteps: int,
    dt_fs: float = 1.0,
    temperature_k: float = 300.0,
    seed: int = 0,
    coords0: np.ndarray | None = None,
    r_dimer_bohr: float | None = None,
    r_trimer_bohr: float | None = None,
    mbe_order: int = 3,
    replan_interval: int = 1,
    velocities: np.ndarray | None = None,
    smooth_switching: bool = False,
    switch_on_factor: float = 0.85,
    thermostat=None,
) -> Trajectory:
    """Synchronous NVE velocity-Verlet dynamics.

    For a `FragmentedSystem`, forces come from the MBE with the given
    cutoffs; the polymer list is re-enumerated every ``replan_interval``
    steps (the paper's pre-formed-list mode). For a plain `Molecule`, the
    calculator is applied to the whole system (unfragmented baseline).

    ``smooth_switching=True`` replaces the hard polymer cutoffs with the
    C2 switched corrections of `repro.frag.switching` (the paper's
    stated future work), turning on at ``switch_on_factor * r_cut`` —
    this removes the cutoff-crossing energy jumps of Fig. 6.

    ``thermostat`` (an object with ``apply(velocities, masses, dt_fs)``,
    see `repro.md.thermostats`) switches the run from NVE to NVT.
    """
    fragmented = isinstance(mol_or_system, FragmentedSystem)
    parent = mol_or_system.parent if fragmented else mol_or_system
    masses = parent.masses_au
    dt = fs_to_au(dt_fs)
    coords = (parent.coords if coords0 is None else coords0).copy()
    if velocities is None:
        velocities = maxwell_boltzmann_velocities(masses, temperature_k, seed=seed)
    else:
        velocities = velocities.copy()

    plan = None

    def force_fn(c: np.ndarray) -> tuple[float, np.ndarray]:
        nonlocal plan
        if not fragmented:
            e, g = calculator.energy_gradient(parent.with_coords(c))
            return e, -g
        if smooth_switching:
            from ..frag.switching import mbe_energy_gradient_switched

            e, g = mbe_energy_gradient_switched(
                mol_or_system, calculator,
                r_on_dimer=switch_on_factor * r_dimer_bohr,
                r_cut_dimer=r_dimer_bohr,
                r_on_trimer=(
                    switch_on_factor * r_trimer_bohr
                    if r_trimer_bohr is not None else None
                ),
                r_cut_trimer=r_trimer_bohr,
                order=mbe_order,
                coords=c,
            )
            return e, -g
        if plan is None:
            plan = build_plan(
                mol_or_system, r_dimer_bohr, r_trimer_bohr, order=mbe_order, coords=c
            )
        e, g = mbe_energy_gradient(mol_or_system, plan, calculator, coords=c)
        return e, -g

    traj = Trajectory()
    e_pot, forces = force_fn(coords)
    for step in range(nsteps + 1):
        traj.times_fs.append(step * dt_fs)
        traj.potential.append(e_pot)
        traj.kinetic.append(kinetic_energy(masses, velocities))
        traj.coords.append(coords.copy())
        traj.velocities.append(velocities.copy())
        if step == nsteps:
            break
        if fragmented and replan_interval and step % replan_interval == 0:
            plan = build_plan(
                mol_or_system, r_dimer_bohr, r_trimer_bohr,
                order=mbe_order, coords=coords,
            )
        t0 = time.perf_counter()
        coords, velocities, forces, e_pot = verlet_step(
            coords, velocities, forces, masses, dt, force_fn
        )
        if thermostat is not None:
            velocities = thermostat.apply(velocities, masses, dt_fs)
        traj.wall_times.append(time.perf_counter() - t0)
    return traj
