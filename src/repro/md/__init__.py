"""Ab initio molecular dynamics: NVE Verlet, sync and async scheduling."""

from ..numerics import NumericalDivergenceError
from .aimd import Trajectory, run_aimd
from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    atomic_savez,
    atomic_write_bytes,
    read_checkpoint,
    read_checkpoint_with_fallback,
    rotation_path,
    write_checkpoint,
)
from .drivers import (
    DriverReport,
    FailurePolicy,
    FaultInjectingCalculator,
    QuarantinedTask,
    TransientWorkerError,
    WorkerFailure,
    run_parallel,
)
from .integrators import (
    default_ndof,
    fs_to_au,
    instantaneous_temperature,
    kinetic_energy,
    maxwell_boltzmann_velocities,
    verlet_step,
)
from .mts import SlowTierState, TieredMBEForces, slow_tier_items
from .scheduler import AsyncCoordinator, FragmentStub, PolymerTask, run_serial
from .thermostats import (
    BerendsenThermostat,
    LangevinThermostat,
    LocalLangevinThermostat,
)
from .trajio import (
    TrajectoryStreamWriter,
    load_restart,
    read_trajectory_stream,
    read_trajectory_xyz,
    save_restart,
    write_trajectory_xyz,
)

__all__ = [
    "AsyncCoordinator",
    "BerendsenThermostat",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "DriverReport",
    "NumericalDivergenceError",
    "atomic_savez",
    "atomic_write_bytes",
    "read_checkpoint",
    "read_checkpoint_with_fallback",
    "rotation_path",
    "write_checkpoint",
    "FailurePolicy",
    "FaultInjectingCalculator",
    "FragmentStub",
    "QuarantinedTask",
    "TransientWorkerError",
    "WorkerFailure",
    "LangevinThermostat",
    "LocalLangevinThermostat",
    "TrajectoryStreamWriter",
    "load_restart",
    "read_trajectory_stream",
    "read_trajectory_xyz",
    "save_restart",
    "write_trajectory_xyz",
    "PolymerTask",
    "SlowTierState",
    "TieredMBEForces",
    "Trajectory",
    "default_ndof",
    "fs_to_au",
    "instantaneous_temperature",
    "kinetic_energy",
    "maxwell_boltzmann_velocities",
    "run_aimd",
    "run_parallel",
    "run_serial",
    "slow_tier_items",
    "verlet_step",
]
