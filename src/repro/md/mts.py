"""r-RESPA multiple-time-step force tiers over the many-body expansion.

The MBE force splits naturally across timescales (Luehr, Markland &
Martínez, arXiv:1312.1284): the monomer self-energies are cheap and
carry the fast intramolecular motion, while the dimer/trimer correction
tier is expensive (it dominates the paper's per-step cost) and varies on
the slower intermolecular timescale.  r-RESPA exploits the split with an
impulse ("kick — k inner Verlet steps — kick") integrator:

* **fast tier** — every monomer at coefficient +1, evaluated every inner
  step of length ``dt``;
* **slow tier** — the remainder of the MBE (polymers at their plan
  coefficients, monomers at ``c_m - 1``), evaluated every ``k`` steps
  and applied as half-impulses of ``k*dt/2`` at the outer boundaries.

``fast + slow`` sums to the exact MBE by construction — monomers whose
inclusion-exclusion coefficient is not one (or is zero, so they are
absent from ``plan.fragments`` entirely) still enter the fast tier at
+1, and the slow tier carries the ``c_m - 1`` correction.

The impulse splitting is symplectic and time-reversible (each tier's
propagator is, and the composition is symmetric), so the energy drift
stays bounded like plain velocity Verlet as long as ``k*dt`` stays below
resonance with the fastest fast-tier period.  The optional *extrapolate*
mode instead applies a linearly-extrapolated slow force inside every
inner step (no impulses); it is only approximately reversible but
smooths the boundary impulses, which helps at larger ``k``.

`SlowTierState` is the integrator's between-boundary memory — the held
slow forces and the one-deep history the extrapolation needs — and is
exactly what the checkpoint format round-trips so a ``--deterministic
--resume`` through (or inside) an outer cycle is bitwise-exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..frag.mbe import MBEPlan
from ..frag.monomer import FragmentedSystem

#: coefficients smaller than this are treated as exactly cancelled
_COEF_EPS = 1e-12


def slow_tier_items(
    plan: MBEPlan, nmonomers: int
) -> list[tuple[tuple[int, ...], float]]:
    """The slow tier as ``(fragment key, coefficient)`` pairs.

    Polymers enter at their plan coefficient; monomers enter at
    ``c_m - 1`` (the correction left over after the fast tier took every
    monomer at +1).  Monomers with coefficient zero are absent from
    ``plan.fragments`` but still carry a ``-1`` correction here —
    ``build_plan`` seeds every monomer key, so the lookup never misses.
    """
    items: list[tuple[tuple[int, ...], float]] = []
    for m in range(nmonomers):
        cm = plan.coefficients.get((m,), 0.0) - 1.0
        if abs(cm) > _COEF_EPS:
            items.append(((m,), cm))
    for key in plan.fragments:
        if len(key) > 1:
            items.append((key, plan.coefficients[key]))
    return items


def slow_tier_items_split(
    plan: MBEPlan, nmonomers: int
) -> tuple[
    list[tuple[tuple[int, ...], float]], list[tuple[tuple[int, ...], float]]
]:
    """The slow tier split by MBE order: ``(dimer tier, trimer tier)``.

    The dimer tier carries the full MBE2 correction
    ``sum_D [E_IJ - E_I - E_J]`` and the trimer tier the full MBE3
    correction ``sum_T [E_IJK - pairs + monomers]``.  Their sum equals
    `slow_tier_items` exactly: the plan coefficients are integer
    inclusion-exclusion sums over exactly these per-polymer stencils, so
    regrouping them by originating order is an identity, not an
    approximation.  This is the decomposition the per-tier ``k`` ladder
    integrates on separate timescales (dimers every ``k``, trimers every
    ``k_trimer``).
    """
    tier2: dict[tuple[int, ...], float] = {}
    tier3: dict[tuple[int, ...], float] = {}

    def add(tier: dict, key: tuple[int, ...], c: float) -> None:
        tier[key] = tier.get(key, 0.0) + c

    for i, j in plan.dimers:
        add(tier2, (i, j), 1.0)
        add(tier2, (i,), -1.0)
        add(tier2, (j,), -1.0)
    for i, j, k in plan.trimers:
        add(tier3, (i, j, k), 1.0)
        for pair in ((i, j), (i, k), (j, k)):
            add(tier3, pair, -1.0)
        for mono in (i, j, k):
            add(tier3, (mono,), 1.0)

    def items(tier: dict) -> list[tuple[tuple[int, ...], float]]:
        return sorted(
            ((k, c) for k, c in tier.items() if abs(c) > _COEF_EPS),
            key=lambda kc: (len(kc[0]), kc[0]),
        )

    return items(tier2), items(tier3)


class TieredMBEForces:
    """Evaluate the MBE energy/gradient split into fast and slow tiers.

    Used by the synchronous driver (`repro.md.aimd.run_aimd`); the
    asynchronous coordinator implements the same split task-by-task
    through its priority queue instead.

    `fast` caches its per-monomer results (keyed by the coordinate
    array), so a `slow` call at the same geometry — the boundary
    pattern, where both tiers are evaluated back-to-back — reuses the
    monomer solves and only pays for the polymers.
    """

    def __init__(
        self, system: FragmentedSystem, calculator, surrogate=None
    ) -> None:
        self.system = system
        self.calculator = calculator
        #: optional ``repro.surrogate.SurrogateManager``: polymer solves
        #: in the slow tier are served from the committee when its
        #: disagreement gate admits them, and full solves train it
        self.surrogate = surrogate
        #: current MBE plan; only the slow tier reads it (the fast tier
        #: is every monomer at +1 regardless of the plan)
        self.plan: MBEPlan | None = None
        self._mono_coords: np.ndarray | None = None
        self._mono_results: dict | None = None
        #: statistics: monomer solves served from the fast-tier cache
        self.monomer_reuses = 0

    def fast(self, coords: np.ndarray) -> tuple[float, np.ndarray]:
        """Fast-tier energy/gradient: every monomer at coefficient +1."""
        system = self.system
        energy = 0.0
        grad = np.zeros((system.parent.natoms, 3))
        results: dict[int, tuple] = {}
        for m in range(system.nmonomers):
            mol, atoms, caps = system.fragment_molecule((m,), coords)
            e_f, g_f = self.calculator.energy_gradient(mol)
            energy += e_f
            system.map_gradient(g_f, atoms, caps, grad, scale=1.0)
            results[m] = (e_f, g_f, atoms, caps)
        self._mono_coords = coords
        self._mono_results = results
        return energy, grad

    def _cached_monomers(self, coords: np.ndarray) -> dict | None:
        if self._mono_results is None or self._mono_coords is None:
            return None
        if self._mono_coords is coords or np.array_equal(
            self._mono_coords, coords
        ):
            return self._mono_results
        return None

    def slow(self, coords: np.ndarray) -> tuple[float, np.ndarray]:
        """Slow-tier energy/gradient at the current plan.

        Monomer corrections (``c_m - 1``) reuse the solves of the last
        `fast` call when it ran at the same coordinates.
        """
        if self.plan is None:
            raise RuntimeError("TieredMBEForces.slow called before a plan was set")
        return self.slow_items(
            coords, slow_tier_items(self.plan, self.system.nmonomers)
        )

    def slow_items(
        self,
        coords: np.ndarray,
        items: list[tuple[tuple[int, ...], float]],
    ) -> tuple[float, np.ndarray]:
        """Evaluate an explicit ``(key, coefficient)`` slow-tier item list.

        This is the shared engine behind `slow` (the whole slow tier) and
        the per-order ladder tiers from `slow_tier_items_split`.  Polymer
        items go through the surrogate gate when one is attached; full
        polymer solves train it.
        """
        system = self.system
        energy = 0.0
        grad = np.zeros((system.parent.natoms, 3))
        cached = self._cached_monomers(coords)
        for key, c in items:
            if len(key) == 1 and cached is not None:
                e_f, g_f, atoms, caps = cached[key[0]]
                self.monomer_reuses += 1
            else:
                mol, atoms, caps = system.fragment_molecule(key, coords)
                if self.surrogate is not None and len(key) > 1:
                    served = self.surrogate.predict(key, mol, coefficient=c)
                    if served is not None:
                        e_f, g_f = served[0], served[1]
                        energy += c * e_f
                        system.map_gradient(g_f, atoms, caps, grad, scale=c)
                        continue
                e_f, g_f = self.calculator.energy_gradient(mol)
                if self.surrogate is not None and len(key) > 1:
                    self.surrogate.observe(key, mol, e_f, g_f)
            energy += c * e_f
            system.map_gradient(g_f, atoms, caps, grad, scale=c)
        return energy, grad


@dataclass
class SlowTierState:
    """Held slow-tier forces and the history the extrapolation needs.

    ``forces`` is the slow-tier force (``-gradient``) evaluated at outer
    boundary ``step``; ``forces_prev``/``prev_step`` hold the previous
    boundary for linear extrapolation.  This is precisely the state a
    checkpoint must round-trip for a bitwise-exact resume from inside an
    outer cycle: the held forces cannot be recomputed mid-cycle (the
    boundary coordinates are gone), unlike the fast forces.
    """

    k: int
    extrapolate: bool = False
    #: outer boundary the current slow forces were evaluated at (-1: none)
    step: int = -1
    prev_step: int = -1
    forces: np.ndarray | None = None
    forces_prev: np.ndarray | None = None
    e_slow: float = 0.0
    e_slow_prev: float = 0.0
    #: number of slow-tier evaluations pushed (statistics)
    nevals: int = field(default=0, compare=False)

    def push(self, step: int, forces: np.ndarray, e_slow: float) -> None:
        """Record a fresh slow-tier evaluation at outer boundary ``step``."""
        self.prev_step = self.step
        self.forces_prev = self.forces
        self.e_slow_prev = self.e_slow
        self.step = int(step)
        self.forces = forces
        self.e_slow = float(e_slow)
        self.nevals += 1

    def estimate(self, step: int) -> tuple[float, np.ndarray]:
        """Slow-tier (energy, forces) estimate at inner step ``step``.

        Held (zeroth order) by default; with ``extrapolate`` and one
        history entry, linear in step.  Exact at ``step == self.step``.
        The returned array is *shared* with the internal state — callers
        must not mutate it.
        """
        if self.forces is None:
            raise RuntimeError("slow tier has not been evaluated yet")
        if (
            not self.extrapolate
            or self.prev_step < 0
            or step == self.step
            or self.forces_prev is None
        ):
            return self.e_slow, self.forces
        frac = (step - self.step) / (self.step - self.prev_step)
        e = self.e_slow + frac * (self.e_slow - self.e_slow_prev)
        f = self.forces + frac * (self.forces - self.forces_prev)
        return e, f

    # ------------------------------------------------------------------
    # checkpoint round-trip
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable metadata (arrays travel separately)."""
        return {
            "k": int(self.k),
            "extrapolate": bool(self.extrapolate),
            "step": int(self.step),
            "prev_step": int(self.prev_step),
            "e_slow": float(self.e_slow),
            "e_slow_prev": float(self.e_slow_prev),
        }

    def force_arrays(self) -> dict[str, np.ndarray]:
        """The held-force payload arrays for the checkpoint writer."""
        arrays: dict[str, np.ndarray] = {}
        if self.forces is not None:
            arrays["mts_slow_forces"] = np.asarray(self.forces, dtype=float)
        if self.forces_prev is not None:
            arrays["mts_slow_forces_prev"] = np.asarray(
                self.forces_prev, dtype=float
            )
        return arrays

    @classmethod
    def from_state(
        cls,
        meta: dict,
        forces: np.ndarray | None,
        forces_prev: np.ndarray | None,
    ) -> SlowTierState:
        """Rebuild from `state_dict` metadata plus the force arrays."""
        state = cls(
            k=int(meta["k"]),
            extrapolate=bool(meta["extrapolate"]),
            step=int(meta["step"]),
            prev_step=int(meta["prev_step"]),
            forces=(
                np.array(forces, dtype=float, copy=True)
                if forces is not None else None
            ),
            forces_prev=(
                np.array(forces_prev, dtype=float, copy=True)
                if forces_prev is not None else None
            ),
            e_slow=float(meta["e_slow"]),
            e_slow_prev=float(meta.get("e_slow_prev", 0.0)),
        )
        if state.step >= 0 and state.forces is None:
            raise ValueError(
                "MTS checkpoint state names a slow-tier boundary "
                f"{state.step} but carries no held forces"
            )
        return state
