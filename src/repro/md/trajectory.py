"""Trajectory record shared by every driver (engine/policy split).

`Trajectory` is the pure data product of a run — times, energies,
frames — with the conservation diagnostics computed from it. It used to
live inside `repro.md.aimd` next to the synchronous driving loop; the
trajectory *service* (`repro.serve`) assembles the same record from
asynchronous per-step events, so the record now stands alone and both
drivers (and `repro.md.trajio`) import it from here. `repro.md.aimd`
re-exports it for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Trajectory:
    """NVE trajectory record."""

    times_fs: list[float] = field(default_factory=list)
    potential: list[float] = field(default_factory=list)
    kinetic: list[float] = field(default_factory=list)
    coords: list[np.ndarray] = field(default_factory=list)
    velocities: list[np.ndarray] = field(default_factory=list)
    wall_times: list[float] = field(default_factory=list)

    @property
    def total(self) -> np.ndarray:
        """Total energy (potential + kinetic) per frame."""
        return np.asarray(self.potential) + np.asarray(self.kinetic)

    def energy_drift(self) -> float:
        """Linear drift of the total energy, Hartree per fs."""
        t = np.asarray(self.times_fs)
        e = self.total
        if len(t) < 2:
            return 0.0
        return float(np.polyfit(t, e, 1)[0])

    def energy_fluctuation(self) -> float:
        """RMS fluctuation of the total energy about its mean (Hartree)."""
        e = self.total
        return float(np.sqrt(np.mean((e - e.mean()) ** 2)))
