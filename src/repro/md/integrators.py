"""Velocity-Verlet integration utilities (atomic units internally)."""

from __future__ import annotations

import numpy as np

from ..constants import AU_TIME_PER_FS, KB_HARTREE_PER_K


def default_ndof(natoms: int, com_removed: bool = True) -> int:
    """Kinetic degrees of freedom of ``natoms`` point masses.

    With the center-of-mass motion removed (the state every velocity
    field in this package is prepared in — see
    `maxwell_boltzmann_velocities`) three translational degrees of
    freedom carry no kinetic energy, so the temperature divisor is
    ``3N - 3``.  A single atom with its center of mass removed has no
    kinetic degrees of freedom at all; we return ``3`` there so callers
    never divide by zero (its kinetic energy is identically zero
    anyway).
    """
    n = 3 * natoms
    if com_removed and natoms > 1:
        n -= 3
    return max(n, 3)


def maxwell_boltzmann_velocities(
    masses_au: np.ndarray, temperature_k: float, seed: int = 0
) -> np.ndarray:
    """Initial velocities (Bohr / a.u. time) at a target temperature with
    the center-of-mass drift removed.

    Removing the center-of-mass momentum lowers the kinetic energy of
    the sampled velocities (three degrees of freedom are projected
    out), so the raw draw would start the system below the requested
    temperature — by a factor of up to ``(3N-3)/3N``, worst for small
    fragments.  The velocities are therefore rescaled after drift
    removal so the instantaneous kinetic temperature over the remaining
    ``3N - 3`` degrees of freedom equals ``temperature_k`` exactly.
    """
    rng = np.random.default_rng(seed)
    natoms = masses_au.shape[0]
    sigma = np.sqrt(KB_HARTREE_PER_K * temperature_k / masses_au)
    v = rng.standard_normal((natoms, 3)) * sigma[:, None]
    if natoms == 1 or temperature_k <= 0:
        return v
    # remove center-of-mass motion
    p = (v * masses_au[:, None]).sum(axis=0)
    v -= p[None, :] / masses_au.sum()
    # rescale to the exact target over the surviving 3N-3 DOF
    t_now = instantaneous_temperature(masses_au, v)
    if t_now > 0:
        v *= np.sqrt(temperature_k / t_now)
    return v


def kinetic_energy(masses_au: np.ndarray, velocities: np.ndarray) -> float:
    """Total kinetic energy in Hartree."""
    return 0.5 * float(np.sum(masses_au[:, None] * velocities**2))


def instantaneous_temperature(
    masses_au: np.ndarray, velocities: np.ndarray, ndof: int | None = None
) -> float:
    """Kinetic temperature in Kelvin.

    ``ndof`` defaults to ``3N - 3``: every velocity field produced by
    this package has its center-of-mass motion removed
    (`maxwell_boltzmann_velocities`), so three degrees of freedom carry
    no kinetic energy and dividing by ``3N`` would systematically
    under-report the temperature (by 33% for a 3-atom fragment).  Pass
    ``ndof=3 * natoms`` explicitly for velocity fields that do carry
    center-of-mass motion, or another value when constraints remove
    additional degrees of freedom.
    """
    ke = kinetic_energy(masses_au, velocities)
    if ndof is None:
        ndof = default_ndof(masses_au.shape[0])
    return 2.0 * ke / (ndof * KB_HARTREE_PER_K)


def fs_to_au(dt_fs: float) -> float:
    """Convert femtoseconds to atomic time units."""
    return dt_fs * AU_TIME_PER_FS


def verlet_step(
    coords: np.ndarray,
    velocities: np.ndarray,
    forces: np.ndarray,
    masses_au: np.ndarray,
    dt_au: float,
    force_fn,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """One full velocity-Verlet step.

    Args:
        force_fn: callable ``coords -> (potential_energy, forces)``.

    Returns:
        ``(coords', velocities', forces', potential_energy')``.
    """
    acc = forces / masses_au[:, None]
    coords_new = coords + velocities * dt_au + 0.5 * acc * dt_au**2
    e_new, forces_new = force_fn(coords_new)
    acc_new = forces_new / masses_au[:, None]
    velocities_new = velocities + 0.5 * (acc + acc_new) * dt_au
    return coords_new, velocities_new, forces_new, e_new
