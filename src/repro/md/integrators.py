"""Velocity-Verlet integration utilities (atomic units internally)."""

from __future__ import annotations

import numpy as np

from ..constants import AU_TIME_PER_FS, KB_HARTREE_PER_K


def maxwell_boltzmann_velocities(
    masses_au: np.ndarray, temperature_k: float, seed: int = 0
) -> np.ndarray:
    """Initial velocities (Bohr / a.u. time) at a target temperature with
    the center-of-mass drift removed."""
    rng = np.random.default_rng(seed)
    natoms = masses_au.shape[0]
    sigma = np.sqrt(KB_HARTREE_PER_K * temperature_k / masses_au)
    v = rng.standard_normal((natoms, 3)) * sigma[:, None]
    # remove center-of-mass motion
    p = (v * masses_au[:, None]).sum(axis=0)
    v -= p[None, :] / masses_au.sum()
    return v


def kinetic_energy(masses_au: np.ndarray, velocities: np.ndarray) -> float:
    """Total kinetic energy in Hartree."""
    return 0.5 * float(np.sum(masses_au[:, None] * velocities**2))


def instantaneous_temperature(masses_au: np.ndarray, velocities: np.ndarray) -> float:
    """Kinetic temperature in Kelvin (3N degrees of freedom)."""
    ke = kinetic_energy(masses_au, velocities)
    ndof = 3 * masses_au.shape[0]
    return 2.0 * ke / (ndof * KB_HARTREE_PER_K)


def fs_to_au(dt_fs: float) -> float:
    """Convert femtoseconds to atomic time units."""
    return dt_fs * AU_TIME_PER_FS


def verlet_step(
    coords: np.ndarray,
    velocities: np.ndarray,
    forces: np.ndarray,
    masses_au: np.ndarray,
    dt_au: float,
    force_fn,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """One full velocity-Verlet step.

    Args:
        force_fn: callable ``coords -> (potential_energy, forces)``.

    Returns:
        ``(coords', velocities', forces', potential_energy')``.
    """
    acc = forces / masses_au[:, None]
    coords_new = coords + velocities * dt_au + 0.5 * acc * dt_au**2
    e_new, forces_new = force_fn(coords_new)
    acc_new = forces_new / masses_au[:, None]
    velocities_new = velocities + 0.5 * (acc + acc_new) * dt_au
    return coords_new, velocities_new, forces_new, e_new
