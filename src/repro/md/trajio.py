"""Trajectory input/output: multi-frame XYZ with energy comments."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..chem.molecule import Molecule
from ..chem.xyz import format_xyz
from .aimd import Trajectory


def write_trajectory_xyz(
    traj: Trajectory, mol: Molecule, path: str | Path
) -> None:
    """Write every frame as a concatenated XYZ file.

    The comment line carries ``t= <fs> E_pot= <Ha> E_kin= <Ha>`` so the
    file round-trips through `read_trajectory_xyz`.
    """
    chunks = []
    for t, pe, ke, coords in zip(
        traj.times_fs, traj.potential, traj.kinetic, traj.coords
    ):
        frame = mol.with_coords(coords)
        chunks.append(
            format_xyz(frame, comment=f"t= {t:.6f} E_pot= {pe:.12f} E_kin= {ke:.12f}")
        )
    Path(path).write_text("".join(chunks))


def read_trajectory_xyz(path: str | Path) -> tuple[Molecule, Trajectory]:
    """Read a trajectory written by `write_trajectory_xyz`.

    Returns the molecule (atoms from the first frame) and a `Trajectory`
    with times/energies/coordinates restored.
    """
    from ..chem.xyz import parse_xyz

    text = Path(path).read_text()
    lines = text.splitlines()
    traj = Trajectory()
    mol = None
    i = 0
    while i < len(lines):
        if not lines[i].strip():
            i += 1
            continue
        n = int(lines[i].split()[0])
        block = "\n".join(lines[i : i + n + 2])
        frame = parse_xyz(block)
        comment = lines[i + 1].split()
        vals = {
            comment[k].rstrip("="): float(comment[k + 1])
            for k in range(0, len(comment) - 1, 2)
            if comment[k].endswith("=")
        }
        if mol is None:
            mol = frame
        traj.times_fs.append(vals.get("t", 0.0))
        traj.potential.append(vals.get("E_pot", 0.0))
        traj.kinetic.append(vals.get("E_kin", 0.0))
        traj.coords.append(frame.coords)
        i += n + 2
    if mol is None:
        raise ValueError(f"no frames found in {path}")
    return mol, traj


def save_restart(path: str | Path, traj: Trajectory) -> None:
    """Persist the final MD frame (coords, velocities, time) as .npz."""
    if not traj.coords or not traj.velocities:
        raise ValueError("trajectory carries no restart state")
    np.savez(
        path,
        coords=traj.coords[-1],
        velocities=traj.velocities[-1],
        time_fs=traj.times_fs[-1],
    )


def load_restart(path: str | Path) -> tuple[np.ndarray, np.ndarray, float]:
    """Load a restart file: ``(coords, velocities, time_fs)``."""
    data = np.load(path)
    return data["coords"], data["velocities"], float(data["time_fs"])
