"""Trajectory input/output: multi-frame XYZ with energy comments."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..chem.molecule import Molecule
from ..chem.xyz import format_xyz
from .aimd import Trajectory
from .checkpoint import atomic_savez


def write_trajectory_xyz(
    traj: Trajectory, mol: Molecule, path: str | Path
) -> None:
    """Write every frame as a concatenated XYZ file.

    The comment line carries ``t= <fs> E_pot= <Ha> E_kin= <Ha>`` so the
    file round-trips through `read_trajectory_xyz`.
    """
    chunks = []
    for t, pe, ke, coords in zip(
        traj.times_fs, traj.potential, traj.kinetic, traj.coords
    ):
        frame = mol.with_coords(coords)
        chunks.append(
            format_xyz(frame, comment=f"t= {t:.6f} E_pot= {pe:.12f} E_kin= {ke:.12f}")
        )
    Path(path).write_text("".join(chunks))


def read_trajectory_xyz(path: str | Path) -> tuple[Molecule, Trajectory]:
    """Read a trajectory written by `write_trajectory_xyz`.

    Returns the molecule (atoms from the first frame) and a `Trajectory`
    with times/energies/coordinates restored.
    """
    from ..chem.xyz import parse_xyz

    text = Path(path).read_text()
    lines = text.splitlines()
    traj = Trajectory()
    mol = None
    i = 0
    while i < len(lines):
        if not lines[i].strip():
            i += 1
            continue
        n = int(lines[i].split()[0])
        block = "\n".join(lines[i : i + n + 2])
        frame = parse_xyz(block)
        comment = lines[i + 1].split()
        vals = {
            comment[k].rstrip("="): float(comment[k + 1])
            for k in range(0, len(comment) - 1, 2)
            if comment[k].endswith("=")
        }
        if mol is None:
            mol = frame
        traj.times_fs.append(vals.get("t", 0.0))
        traj.potential.append(vals.get("E_pot", 0.0))
        traj.kinetic.append(vals.get("E_kin", 0.0))
        traj.coords.append(frame.coords)
        i += n + 2
    if mol is None:
        raise ValueError(f"no frames found in {path}")
    return mol, traj


def save_restart(path: str | Path, traj: Trajectory) -> None:
    """Persist the final MD frame (coords, velocities, time) as .npz.

    The file is written atomically (tmp + fsync + ``os.replace``) so a
    crash mid-write leaves the previous restart intact instead of a
    torn archive.
    """
    if not traj.coords or not traj.velocities:
        raise ValueError("trajectory carries no restart state")
    path = str(path)
    if not path.endswith(".npz"):
        # np.savez appends .npz to bare paths; keep that contract
        path += ".npz"
    atomic_savez(
        path,
        coords=np.asarray(traj.coords[-1], dtype=float),
        velocities=np.asarray(traj.velocities[-1], dtype=float),
        time_fs=np.asarray(traj.times_fs[-1], dtype=float),
    )


def load_restart(
    path: str | Path, mol: Molecule | None = None
) -> tuple[np.ndarray, np.ndarray, float]:
    """Load a restart file: ``(coords, velocities, time_fs)``.

    Args:
        path: file written by `save_restart`.
        mol: optional molecule; when given, array shapes are validated
            against it so a restart from the wrong system fails loudly.

    Raises:
        ValueError: on a corrupt/truncated archive, missing arrays,
            malformed shapes, or a molecule mismatch.
    """
    try:
        data = np.load(path, allow_pickle=False)
    except Exception as err:
        raise ValueError(
            f"corrupt or unreadable restart file {path}: {err!r}"
        ) from err
    with data:
        missing = [
            k for k in ("coords", "velocities", "time_fs")
            if k not in data.files
        ]
        if missing:
            raise ValueError(
                f"restart file {path} is missing arrays: {missing}"
            )
        coords = np.asarray(data["coords"], dtype=float)
        velocities = np.asarray(data["velocities"], dtype=float)
        time_fs = float(data["time_fs"])
    if coords.ndim != 2 or coords.shape[1] != 3 \
            or coords.shape != velocities.shape:
        raise ValueError(
            f"restart file {path} has malformed state shapes "
            f"coords{coords.shape} velocities{velocities.shape}"
        )
    if mol is not None and coords.shape[0] != mol.natoms:
        raise ValueError(
            f"restart file {path} holds {coords.shape[0]} atoms but the "
            f"molecule has {mol.natoms} — refusing to restart a "
            "different system"
        )
    return coords, velocities, time_fs
