"""Trajectory input/output: multi-frame XYZ with energy comments.

Two writing modes:

* `write_trajectory_xyz` — one-shot dump of a finished `Trajectory`;
* `TrajectoryStreamWriter` — torn-frame-safe incremental appends for
  the multi-tenant service (`repro.serve`), where a reader may open the
  file while a job is mid-write. Frames are appended with ``fsync``,
  then a sidecar index (``<path>.idx``, written atomically) commits the
  new byte count; `read_trajectory_stream` reads only committed bytes,
  so a crash or a concurrently-writing job can never surface a torn
  frame to a subscriber.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..chem.molecule import Molecule
from ..chem.xyz import format_xyz
from .checkpoint import atomic_savez, atomic_write_bytes
from .trajectory import Trajectory


def write_trajectory_xyz(
    traj: Trajectory, mol: Molecule, path: str | Path
) -> None:
    """Write every frame as a concatenated XYZ file.

    The comment line carries ``t= <fs> E_pot= <Ha> E_kin= <Ha>`` so the
    file round-trips through `read_trajectory_xyz`.
    """
    chunks = []
    for t, pe, ke, coords in zip(
        traj.times_fs, traj.potential, traj.kinetic, traj.coords
    ):
        frame = mol.with_coords(coords)
        chunks.append(
            format_xyz(frame, comment=f"t= {t:.6f} E_pot= {pe:.12f} E_kin= {ke:.12f}")
        )
    Path(path).write_text("".join(chunks))


def _parse_frames(text: str, origin) -> tuple[Molecule, Trajectory]:
    from ..chem.xyz import parse_xyz

    lines = text.splitlines()
    traj = Trajectory()
    mol = None
    i = 0
    while i < len(lines):
        if not lines[i].strip():
            i += 1
            continue
        n = int(lines[i].split()[0])
        block = "\n".join(lines[i : i + n + 2])
        frame = parse_xyz(block)
        comment = lines[i + 1].split()
        vals = {
            comment[k].rstrip("="): float(comment[k + 1])
            for k in range(0, len(comment) - 1, 2)
            if comment[k].endswith("=")
        }
        if mol is None:
            mol = frame
        traj.times_fs.append(vals.get("t", 0.0))
        traj.potential.append(vals.get("E_pot", 0.0))
        traj.kinetic.append(vals.get("E_kin", 0.0))
        traj.coords.append(frame.coords)
        i += n + 2
    if mol is None:
        raise ValueError(f"no frames found in {origin}")
    return mol, traj


def read_trajectory_xyz(path: str | Path) -> tuple[Molecule, Trajectory]:
    """Read a trajectory written by `write_trajectory_xyz`.

    Returns the molecule (atoms from the first frame) and a `Trajectory`
    with times/energies/coordinates restored.
    """
    return _parse_frames(Path(path).read_text(), path)


class TrajectoryStreamWriter:
    """Torn-frame-safe incremental XYZ appends with a committed index.

    Frames are appended to the XYZ file and ``fsync``\\ ed; only then is
    the sidecar index (``<path>.idx``, a tiny JSON written atomically)
    advanced to the new byte count. A reader that honors the index
    (`read_trajectory_stream`) therefore never observes a partially
    written frame, no matter when the writing process is killed — the
    worst case is losing the single frame whose index commit had not
    landed yet.

    ``append=True`` reopens an existing stream (a resumed job): the file
    is first truncated back to the committed byte count, discarding any
    torn tail from the previous incarnation.
    """

    def __init__(self, path: str | Path, mol: Molecule,
                 append: bool = False) -> None:
        self.path = Path(path)
        self.index_path = self.path.with_name(self.path.name + ".idx")
        self.mol = mol
        if append and self.path.exists():
            committed, frames = self._read_index()
            with open(self.path, "r+b") as fh:
                fh.truncate(committed)
            self._bytes = committed
            self._frames = frames
        else:
            self._bytes = 0
            self._frames = 0
            self.path.write_bytes(b"")
            self._commit()
        self._fh = open(self.path, "ab")

    def _read_index(self) -> tuple[int, int]:
        try:
            idx = json.loads(self.index_path.read_text())
            committed = int(idx["bytes"])
            frames = int(idx["frames"])
        except (OSError, ValueError, KeyError):
            return 0, 0
        size = self.path.stat().st_size
        return min(committed, size), frames

    def _commit(self) -> None:
        atomic_write_bytes(
            self.index_path,
            json.dumps(
                {"version": 1, "bytes": self._bytes, "frames": self._frames}
            ).encode(),
        )

    @property
    def frames_committed(self) -> int:
        """Frames a stream reader is allowed to observe."""
        return self._frames

    def append_frame(self, time_fs: float, e_pot: float, e_kin: float,
                     coords: np.ndarray) -> None:
        """Append one frame and commit it to the index (fsync'd)."""
        chunk = format_xyz(
            self.mol.with_coords(coords),
            comment=(
                f"t= {time_fs:.6f} E_pot= {e_pot:.12f} E_kin= {e_kin:.12f}"
            ),
        ).encode()
        self._fh.write(chunk)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._bytes += len(chunk)
        self._frames += 1
        self._commit()

    def drop_frames_after(self, max_time_fs: float) -> int:
        """Discard committed frames with ``t > max_time_fs``.

        Used on resume: frames the previous incarnation streamed past
        the checkpoint cut are re-produced by the resumed dynamics, so
        the stale tail is cut off first. The shrunken index is committed
        *before* the file is rewritten — if the process dies in between,
        the index simply under-reports intact frames, which is safe.
        Returns the number of frames dropped.
        """
        text = self._committed_text()
        try:
            mol, traj = _parse_frames(text, self.path)
        except ValueError:
            return 0
        keep = [i for i, t in enumerate(traj.times_fs) if t <= max_time_fs]
        dropped = len(traj.times_fs) - len(keep)
        if not dropped:
            return 0
        chunks = []
        for i in keep:
            chunks.append(format_xyz(
                self.mol.with_coords(traj.coords[i]),
                comment=(
                    f"t= {traj.times_fs[i]:.6f} "
                    f"E_pot= {traj.potential[i]:.12f} "
                    f"E_kin= {traj.kinetic[i]:.12f}"
                ),
            ))
        data = "".join(chunks).encode()
        self._fh.close()
        self._bytes = len(data)
        self._frames = len(keep)
        self._commit()
        atomic_write_bytes(self.path, data)
        self._fh = open(self.path, "ab")
        return dropped

    def _committed_text(self) -> str:
        with open(self.path, "rb") as fh:
            return fh.read(self._bytes).decode()

    def close(self) -> None:
        """Close the underlying file handle (the index is already current)."""
        self._fh.close()

    def __enter__(self) -> TrajectoryStreamWriter:
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trajectory_stream(path: str | Path) -> tuple[Molecule, Trajectory]:
    """Read the *committed* frames of a `TrajectoryStreamWriter` stream.

    Honors the sidecar index: bytes past the committed count (a frame
    mid-append, or a torn tail from a crash) are never parsed. Without
    an index the whole file is read (a finished `write_trajectory_xyz`
    dump is a valid stream with everything committed).
    """
    path = Path(path)
    index_path = path.with_name(path.name + ".idx")
    committed = None
    if index_path.exists():
        try:
            committed = int(json.loads(index_path.read_text())["bytes"])
        except (ValueError, KeyError):
            committed = None
    with open(path, "rb") as fh:
        data = fh.read() if committed is None else fh.read(committed)
    return _parse_frames(data.decode(), path)


def save_restart(path: str | Path, traj: Trajectory) -> None:
    """Persist the final MD frame (coords, velocities, time) as .npz.

    The file is written atomically (tmp + fsync + ``os.replace``) so a
    crash mid-write leaves the previous restart intact instead of a
    torn archive.
    """
    if not traj.coords or not traj.velocities:
        raise ValueError("trajectory carries no restart state")
    path = str(path)
    if not path.endswith(".npz"):
        # np.savez appends .npz to bare paths; keep that contract
        path += ".npz"
    atomic_savez(
        path,
        coords=np.asarray(traj.coords[-1], dtype=float),
        velocities=np.asarray(traj.velocities[-1], dtype=float),
        time_fs=np.asarray(traj.times_fs[-1], dtype=float),
    )


def load_restart(
    path: str | Path, mol: Molecule | None = None
) -> tuple[np.ndarray, np.ndarray, float]:
    """Load a restart file: ``(coords, velocities, time_fs)``.

    Args:
        path: file written by `save_restart`.
        mol: optional molecule; when given, array shapes are validated
            against it so a restart from the wrong system fails loudly.

    Raises:
        ValueError: on a corrupt/truncated archive, missing arrays,
            malformed shapes, or a molecule mismatch.
    """
    try:
        data = np.load(path, allow_pickle=False)
    except Exception as err:
        raise ValueError(
            f"corrupt or unreadable restart file {path}: {err!r}"
        ) from err
    with data:
        missing = [
            k for k in ("coords", "velocities", "time_fs")
            if k not in data.files
        ]
        if missing:
            raise ValueError(
                f"restart file {path} is missing arrays: {missing}"
            )
        coords = np.asarray(data["coords"], dtype=float)
        velocities = np.asarray(data["velocities"], dtype=float)
        time_fs = float(data["time_fs"])
    if coords.ndim != 2 or coords.shape[1] != 3 \
            or coords.shape != velocities.shape:
        raise ValueError(
            f"restart file {path} has malformed state shapes "
            f"coords{coords.shape} velocities{velocities.shape}"
        )
    if mol is not None and coords.shape[0] != mol.natoms:
        raise ValueError(
            f"restart file {path} holds {coords.shape[0]} atoms but the "
            f"molecule has {mol.natoms} — refusing to restart a "
            "different system"
        )
    return coords, velocities, time_fs
