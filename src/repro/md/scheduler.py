"""Asynchronous time-step coordination (paper Sec. V-F, Fig. 4).

The `AsyncCoordinator` is the super-coordinator's state machine,
decoupled from how work is executed: a driver repeatedly calls
`next_task()` and hands back results through `complete()`. Drivers can
be a serial loop, a process pool (`repro.md.drivers`), or the
discrete-event cluster simulator (`repro.cluster`), which advances a
virtual clock instead of the wall clock.

Faithful features:

* polymers enter a priority queue keyed by (distance of the polymer to
  the reference monomer, time step, decreasing size) — the computation
  sweeps outward from a reference fragment at an extremity, so monomers
  near the reference finish early and *start the next step while the
  rest of the previous step is still computing*;
* a monomer integrates (velocity Verlet, kick-drift-kick) the moment
  every polymer touching its atoms (including through H-cap chain
  terms) has returned;
* polymer gradients are accumulated directly into a per-step system
  buffer (trimers all carry MBE coefficient +1, so no per-trimer
  storage is needed);
* fragments with broken bonds wait for their cap-donor neighbors to
  update before entering the next step's queue;
* the polymer list is re-formed every ``replan_interval`` steps
  (pre-formed-list mode; the list and its MBE coefficients stay fixed
  within the window, which is what makes direct accumulation exact);
* synchronous mode (global barrier per step) is the paper's baseline
  and is exposed with ``synchronous=True``.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..calculators import GuessCache
from ..chem.molecule import Molecule
from ..frag.mbe import MBEPlan, build_plan, update_plan
from ..frag.monomer import FragmentedSystem
from ..numerics import ensure_finite
from .checkpoint import Checkpoint, CheckpointError, write_checkpoint
from .integrators import fs_to_au, maxwell_boltzmann_velocities
from .mts import slow_tier_items


@dataclass
class FragmentStub:
    """Lightweight fragment descriptor for timing-only simulations."""

    natoms: int
    nelectrons: int


@dataclass
class PolymerTask:
    """One fragment calculation assigned to a worker."""

    key: tuple[int, ...]
    step: int
    molecule: Molecule | FragmentStub
    atoms: list[int] | None
    caps: list | None
    coefficient: float
    distance: float  # priority distance to the reference monomer (Bohr)
    #: True for contributions synthesized by the committee surrogate —
    #: they bypass the worker queue and must not train the surrogate
    surrogate: bool = False

    @property
    def natoms(self) -> int:
        """Atom count of the fragment (including cap hydrogens)."""
        return self.molecule.natoms

    @property
    def nelectrons(self) -> int:
        """Electron count of the fragment (drives the cost model)."""
        return self.molecule.nelectrons


class AsyncCoordinator:
    """Super-coordinator state machine for (a)synchronous fragment AIMD."""

    def __init__(
        self,
        system: FragmentedSystem,
        nsteps: int,
        dt_fs: float,
        r_dimer_bohr: float,
        r_trimer_bohr: float | None = None,
        mbe_order: int = 3,
        temperature_k: float = 300.0,
        seed: int = 0,
        reference: int | None = None,
        replan_interval: int = 4,
        synchronous: bool = False,
        velocities: np.ndarray | None = None,
        clock=time.perf_counter,
        build_molecules: bool = True,
        tracer=None,
        deterministic: bool = False,
        checkpoint_path=None,
        checkpoint_every: int = 0,
        checkpoint_keep: int = 1,
        resume: Checkpoint | None = None,
        warm_start: bool = True,
        fault_plan=None,
        mts_k: int = 1,
        mts_extrapolate: bool = False,
        thermostat=None,
        step_callback=None,
        surrogate=None,
    ) -> None:
        self.system = system
        self.nsteps = nsteps
        self.dt = fs_to_au(dt_fs)
        self.dt_fs = dt_fs
        self.r_dimer = r_dimer_bohr
        self.r_trimer = r_trimer_bohr
        self.order = mbe_order
        self.replan_interval = max(1, replan_interval)
        self.synchronous = synchronous
        self.clock = clock
        #: r-RESPA multiple-time-step split across MBE orders
        #: (`repro.md.mts`): with ``mts_k > 1`` every step issues only
        #: the monomer (fast-tier) tasks at coefficient +1; the polymer
        #: tasks plus the monomers' ``c_m - 1`` corrections (the slow
        #: tier) run only at outer boundaries (``step % mts_k == 0``)
        #: and enter the dynamics as impulse half-kicks of ``mts_k*dt/2``
        #: there — or, with ``mts_extrapolate``, as a linearly
        #: extrapolated force inside every inner step. Slow-tier tasks
        #: still flow through the same priority queue, so they overlap
        #: with inner-step fast tasks of monomers that have already
        #: passed the boundary (no global barrier).
        self.mts_k = max(1, int(mts_k))
        self.mts = self.mts_k > 1
        self.mts_extrapolate = bool(mts_extrapolate)
        #: completed slow-tier boundary evaluations / polymer solves
        #: avoided at inner steps relative to single-timescale stepping
        self.mts_slow_evals = 0
        self.mts_tasks_skipped = 0
        #: crash-safe checkpointing (see `repro.md.checkpoint`): written
        #: at the consistent retired-step cut — a step every monomer has
        #: fully integrated — at replan-aligned multiples of
        #: ``checkpoint_every``
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        #: rotated copies retained per `repro.md.checkpoint` (keep-N)
        self.checkpoint_keep = max(1, int(checkpoint_keep))
        #: seeded chaos schedule (`repro.faults.FaultPlan`): consulted at
        #: checkpoint-write sites here; task-site injection lives in the
        #: calculator wrapper (`repro.faults.FaultPlanCalculator`)
        self.fault_plan = fault_plan
        #: set by `run_parallel` so checkpoints carry fault counters
        self.driver_report = None
        #: optional `repro.trace.Tracer` (duck-typed); every emission is
        #: guarded so the disabled path costs one attribute check
        self.tracer = tracer
        #: bitwise-reproducible mode: per-polymer contributions are
        #: buffered and reduced in canonical key order instead of being
        #: accumulated in completion order, so trajectories are identical
        #: no matter how workers race (or fail and retry). Costs per-live-
        #: step polymer storage — the trade the paper's direct
        #: accumulation avoids — so it is opt-in (testing, debugging,
        #: reproducibility audits).
        self.deterministic = deterministic
        #: cross-step SCF warm-start cache (`repro.calculators.GuessCache`),
        #: shared with the calculator by `run_serial` (worker-side caches
        #: are used by `run_parallel` instead, since densities cannot
        #: cheaply cross process boundaries). Deterministic mode forces
        #: it off: warm starts change the converged densities at the
        #: 1e-10 level, and a resumed run — which restarts from a cold
        #: cache by design — could then never be bitwise-identical to an
        #: uninterrupted one.
        self.guess_cache = (
            GuessCache() if warm_start and not deterministic else None
        )
        #: online MBE-tail surrogate (`repro.surrogate.SurrogateManager`):
        #: polymer tasks whose committee prediction passes the
        #: disagreement gate are never scheduled at all — the win is
        #: fewer solves, not just cheaper ones. Forced off under
        #: ``deterministic``: although the seeded committee itself is a
        #: deterministic function of its training window, the window is
        #: filled in task *completion* order, which worker races scramble
        #: — so the bitwise-reproducibility contract wins.
        self.surrogate_disabled_deterministic = bool(
            surrogate is not None and deterministic
        )
        self.surrogate = None if deterministic else surrogate
        #: polymer solves avoided by serving from the surrogate
        self.surrogate_tasks_avoided = 0
        #: surrogate-served contributions awaiting accumulation; drained
        #: iteratively by `complete` (never recursively — a long chain of
        #: serves unlocking integrations must not grow the Python stack)
        self._served_queue: deque = deque()
        #: per-monomer thermostat (duck-typed ``apply_rows``; see
        #: `repro.md.thermostats.LocalLangevinThermostat`). Applied to a
        #: monomer's rows right after its arrival kicks, before the
        #: kinetic-energy measurement and the checkpoint velocity
        #: snapshot — sequential-stream thermostats cannot go here (the
        #: asynchronous completion order would scramble their noise).
        self.thermostat = thermostat
        #: ``step_callback(step, pe, ke, coords)`` fired exactly once per
        #: step, at the moment the step fully retires (every monomer has
        #: measured its kinetic energy). ``coords`` is a private copy.
        #: This is the streaming hook the trajectory service subscribes
        #: through; errors propagate to the driver.
        self.step_callback = step_callback
        #: incremental-replan statistics (windows diffed vs rebuilt)
        self.replans_incremental = 0
        self.replan_added = 0
        self.replan_removed = 0
        self.replan_reused = 0
        self._latest_plan: MBEPlan | None = None

        parent = system.parent
        self.masses = parent.masses_au
        self.start_step = 0
        if resume is not None:
            if resume.coords.shape != parent.coords.shape:
                raise CheckpointError(
                    f"checkpoint is for {resume.coords.shape[0]} atoms, "
                    f"system has {parent.natoms}"
                )
            self.start_step = int(resume.step)
            if self.start_step % self.replan_interval != 0:
                raise CheckpointError(
                    f"checkpoint step {self.start_step} is not aligned to "
                    f"replan_interval={self.replan_interval}; the fragment "
                    "plan cannot be reconstructed mid-window"
                )
            if self.mts and self.start_step % self.mts_k != 0:
                raise CheckpointError(
                    f"checkpoint step {self.start_step} is not an outer "
                    f"boundary of mts_k={self.mts_k}; the coordinator "
                    "only resumes at completed outer cycles"
                )
            if resume.mts is not None:
                rk = int(resume.mts.get("k", 0))
                rex = bool(resume.mts.get("extrapolate", False))
                if rk != self.mts_k or rex != self.mts_extrapolate:
                    raise CheckpointError(
                        f"checkpoint MTS state (k={rk}, extrapolate={rex}) "
                        f"does not match the run (k={self.mts_k}, "
                        f"extrapolate={self.mts_extrapolate})"
                    )
                if int(resume.mts.get("step", -1)) != self.start_step:
                    raise CheckpointError(
                        "checkpoint MTS state was taken at boundary "
                        f"{resume.mts.get('step')} but the checkpoint is "
                        f"for step {self.start_step}"
                    )
            if self.start_step > nsteps:
                raise CheckpointError(
                    f"checkpoint step {self.start_step} is beyond "
                    f"nsteps={nsteps}"
                )
            self.coords = np.array(resume.coords, dtype=float, copy=True)
            self.velocities = np.array(
                resume.velocities, dtype=float, copy=True
            )
            if reference is None and resume.reference is not None:
                # replay the same sweep order as the interrupted run
                reference = int(resume.reference)
            if tracer:
                tracer.instant("resume", cat="checkpoint",
                               step=self.start_step)
        else:
            self.coords = parent.coords.copy()
            if velocities is None:
                self.velocities = maxwell_boltzmann_velocities(
                    self.masses, temperature_k, seed=seed
                )
            else:
                self.velocities = velocities.copy()
        if (
            resume is not None
            and resume.surrogate is not None
            and self.surrogate is not None
        ):
            self.surrogate.load_state(
                resume.surrogate, resume.surrogate_arrays or {}
            )

        self.build_molecules = build_molecules
        nmono = system.nmonomers
        self.monomer_atoms = [list(m.atoms) for m in system.monomers]
        # cap neighbor map: J is a neighbor of I if a broken bond connects them
        self.cap_neighbors: list[set[int]] = [set() for _ in range(nmono)]
        #: per-monomer cap targets: owners of each cap's outer atom
        self.cap_targets: list[list[int]] = [[] for _ in range(nmono)]
        for m in system.monomers:
            for cap in m.caps:
                j = system.atom_owner[cap.outer]
                self.cap_neighbors[m.index].add(j)
                self.cap_neighbors[j].add(m.index)
                self.cap_targets[m.index].append(j)
        zsum = parent.atomic_numbers
        self._mono_electrons = np.array(
            [int(zsum[list(m.atoms)].sum()) - m.charge for m in system.monomers]
        )
        self._mono_natoms = np.array([len(m.atoms) for m in system.monomers])

        # reference fragment: an extremity (max distance from the centroid)
        cents = system.centroids()
        if reference is None:
            reference = int(
                np.argmax(np.linalg.norm(cents - cents.mean(axis=0), axis=1))
            )
        self.reference = reference

        #: per-monomer time step index (completed integrations)
        self.monomer_time = np.full(nmono, self.start_step, dtype=int)
        self.monomer_done = np.zeros(nmono, dtype=bool)
        #: coordinates of each monomer at each step it has reached
        self.coords_at: dict[int, np.ndarray] = {
            self.start_step: self.coords.copy()
        }
        #: integer-step velocity snapshots for checkpoint-candidate steps
        self._vel_at: dict[int, np.ndarray] = {}

        # per-step accumulation state. Entries are evicted once a step is
        # fully retired (every polymer completed, every monomer integrated
        # past it), so live state is bounded by the plan-window skew, not
        # by nsteps.
        self._grad: dict[int, np.ndarray] = {}
        self._pe: dict[int, float] = {}
        self._pending_total: dict[int, int] = {}
        self._pending_monomer: dict[int, np.ndarray] = {}
        self._queued: dict[int, set] = {}
        self._ke: dict[int, float] = {}
        self._ke_done: dict[int, int] = {}
        self._ref_cent_cache: dict[int, np.ndarray] = {}
        #: deterministic mode: step -> {key -> (energy, grad, atoms, caps, c)}
        self._contrib: dict[int, dict] = {}
        #: deterministic mode: step -> {monomer -> kinetic energy}
        self._ke_parts: dict[int, dict[int, float]] = {}
        #: MTS slow-tier accumulation, keyed by outer boundary step.
        #: Retained past normal step eviction (two boundaries back) so
        #: held/extrapolated estimates at inner steps can read them.
        self._slow_grad: dict[int, np.ndarray] = {}
        self._slow_pe: dict[int, float] = {}
        #: deterministic mode: boundary -> {polymer key -> contribution}
        self._slow_contrib: dict[int, dict] = {}
        #: per-window monomer slow-correction coefficients (c_m - 1)
        self._slow_mono_coef: dict[int, dict[int, float]] = {}
        if self.mts and resume is not None and resume.mts is not None:
            # the current boundary's slow tier is recomputed by the
            # resumed run (its tasks are re-released, bitwise-identical
            # under deterministic mode), but the *previous* boundary —
            # the extrapolation history — is gone with its coordinates,
            # so it is seeded from the checkpoint (as gradients)
            prev_b = int(resume.mts.get("prev_step", -1))
            if prev_b >= 0 and resume.mts_slow_forces_prev is not None:
                self._slow_grad[prev_b] = -np.asarray(
                    resume.mts_slow_forces_prev, dtype=float
                )
                self._slow_pe[prev_b] = float(
                    resume.mts.get("e_slow_prev", 0.0)
                )
        #: lowest step whose buffers have not been evicted yet
        self._evict_floor = self.start_step
        #: high-water mark of simultaneously live (un-evicted) steps
        self.max_live_steps = 0
        self.steps_evicted = 0

        # results
        self.potential_energies: dict[int, float] = {}
        self.kinetic_energies: dict[int, float] = {}
        if resume is not None:
            # restore the energy history so trajectory_energies() spans
            # the whole run, not just the resumed tail
            for t, pe, ke in zip(
                resume.times_fs, resume.potential, resume.kinetic
            ):
                s = int(round(float(t) / dt_fs))
                self.potential_energies[s] = float(pe)
                self.kinetic_energies[s] = float(ke)
        self.step_finish_time: dict[int, float] = {}
        self.start_time = self.clock()

        # plan windows
        self.plans: dict[int, MBEPlan] = {}
        self._plan_touch: dict[int, dict[tuple, list[int]]] = {}
        self._plan_mono_keys: dict[int, dict[int, list[tuple]]] = {}
        w0 = self._window_start(self.start_step)
        self._build_plan_window(w0)

        self._heap: list = []
        self._seq = 0
        self.in_flight = 0
        self.tasks_issued = 0
        for step in self._steps_of_window(w0):
            self._try_release_step_polymers(step)
        # a resumed surrogate can be warm enough to serve immediately
        self._drain_served()

    # ------------------------------------------------------------------
    # plan management
    # ------------------------------------------------------------------
    def _window_start(self, step: int) -> int:
        return (step // self.replan_interval) * self.replan_interval

    def _steps_of_window(self, w0: int) -> range:
        return range(w0, min(w0 + self.replan_interval, self.nsteps + 1))

    def _build_plan_window(self, w0: int) -> None:
        coords = self.coords_at.get(w0, self.coords)
        if self._latest_plan is None:
            plan = build_plan(
                self.system, self.r_dimer, self.r_trimer,
                order=self.order, coords=coords,
            )
        else:
            # incremental replan: edit the previous window's coefficient
            # map instead of rebuilding it (exact — see `update_plan`),
            # and retire warm-start densities of dropped fragments
            plan, diff = update_plan(
                self.system, self._latest_plan, self.r_dimer, self.r_trimer,
                order=self.order, coords=coords,
            )
            self.replans_incremental += 1
            self.replan_added += len(diff.added)
            self.replan_removed += len(diff.removed)
            self.replan_reused += diff.reused
            if self.guess_cache is not None:
                for key in diff.removed:
                    self.guess_cache.invalidate(key)
            if self.tracer:
                self.tracer.instant(
                    "replan.incremental", cat="scheduler", step=w0,
                    added=len(diff.added), removed=len(diff.removed),
                    reused=diff.reused,
                )
        self._latest_plan = plan
        self.plans[w0] = plan
        nmono = self.system.nmonomers
        # issuable task keys for this window: in MTS mode the fast tier
        # is every monomer at +1 (even coefficient-zero ones — their
        # correction rides the slow tier) plus the slow-tier polymers;
        # otherwise exactly the plan's fragments
        if self.mts:
            items = slow_tier_items(plan, nmono)
            self._slow_mono_coef[w0] = {
                key[0]: c for key, c in items if len(key) == 1
            }
            task_keys = [(m,) for m in range(nmono)] + [
                key for key, _ in items if len(key) > 1
            ]
        else:
            task_keys = plan.fragments
        # touch set: constituents plus owners of outward cap atoms —
        # computable from topology alone (no geometry needed)
        touch: dict[tuple, list[int]] = {}
        mono_keys: dict[int, list[tuple]] = {m: [] for m in range(nmono)}
        for key in task_keys:
            kset = set(key)
            t = set(key)
            for m in key:
                for j in self.cap_targets[m]:
                    if j not in kset:
                        t.add(j)
            tl = sorted(t)
            touch[key] = tl
            for m in tl:
                mono_keys[m].append(key)
        self._plan_touch[w0] = touch
        self._mono_keys = mono_keys
        self._plan_mono_keys[w0] = mono_keys
        counts_fast = np.zeros(nmono, dtype=int)
        counts_slow = np.zeros(nmono, dtype=int)
        n_slow = 0
        for key, tl in touch.items():
            if self.mts and len(key) > 1:
                n_slow += 1
                tgt = counts_slow
            else:
                tgt = counts_fast
            for m in tl:
                tgt[m] += 1
        n_fast = nmono if self.mts else plan.npolymers
        for step in self._steps_of_window(w0):
            boundary = not self.mts or step % self.mts_k == 0
            if boundary:
                self._pending_monomer[step] = counts_fast + counts_slow
                self._pending_total[step] = n_fast + n_slow
                if self.mts:
                    self._slow_grad[step] = np.zeros(
                        (self.system.parent.natoms, 3)
                    )
                    self._slow_pe[step] = 0.0
                    self._slow_contrib[step] = {}
            else:
                self._pending_monomer[step] = counts_fast.copy()
                self._pending_total[step] = n_fast
                self.mts_tasks_skipped += n_slow
            self._grad[step] = np.zeros((self.system.parent.natoms, 3))
            self._pe[step] = 0.0
            self._queued[step] = set()
            self._ke[step] = 0.0
            self._ke_done[step] = 0
            self._contrib[step] = {}
            self._ke_parts[step] = {}
        self.max_live_steps = max(self.max_live_steps, self.live_steps)

    def plan_for_step(self, step: int) -> MBEPlan:
        """The MBE plan whose window covers ``step``."""
        return self.plans[self._window_start(step)]

    # ------------------------------------------------------------------
    # task release
    # ------------------------------------------------------------------
    def _polymer_ready(self, key: tuple, step: int, touch: list[int]) -> bool:
        if self.synchronous and int(self.monomer_time.min()) < step:
            return False
        return all(self.monomer_time[m] >= step for m in touch)

    def _ref_centroid(self, step: int) -> np.ndarray:
        cache = self._ref_cent_cache
        if step not in cache:
            coords = self.coords_at[step]
            cache[step] = coords[self.monomer_atoms[self.reference]].mean(axis=0)
        return cache[step]

    def _release(self, key: tuple, step: int) -> None:
        w0 = self._window_start(step)
        coords = self.coords_at[step]
        if self.build_molecules:
            mol, atoms, caps = self.system.fragment_molecule(key, coords)
        else:
            ncaps = sum(
                1
                for m in key
                for j in self.cap_targets[m]
                if j not in key
            )
            mol = FragmentStub(
                natoms=int(self._mono_natoms[list(key)].sum()) + ncaps,
                nelectrons=int(self._mono_electrons[list(key)].sum()) + ncaps,
            )
            atoms = caps = None
        ref = self._ref_centroid(step)
        dist = min(
            float(np.linalg.norm(coords[self.monomer_atoms[m]].mean(axis=0) - ref))
            for m in key
        )
        plan = self.plans[w0]
        if self.mts and len(key) == 1:
            # fast tier: every monomer at +1; its (c_m - 1) slow
            # correction is applied from this same result at boundaries
            coefficient = 1.0
        else:
            coefficient = plan.coefficients[key]
        task = PolymerTask(
            key=key,
            step=step,
            molecule=mol,
            atoms=atoms,
            caps=caps,
            coefficient=coefficient,
            distance=dist,
        )
        heapq.heappush(
            self._heap, (dist, step, -task.natoms, self._seq, task)
        )
        self._seq += 1
        self._queued[step].add(key)
        if self.tracer:
            self.tracer.instant(
                "task.release", cat="scheduler", step=step, key=str(key)
            )
            self.tracer.counter("scheduler.queue_depth", len(self._heap))

    def _try_release_step_polymers(self, step: int, only_monomer: int | None = None) -> None:
        if step > self.nsteps:
            return
        w0 = self._window_start(step)
        if w0 not in self.plans:
            return
        touch = self._plan_touch[w0]
        queued = self._queued[step]
        if only_monomer is not None:
            keys = self._mono_keys.get(only_monomer, ())
        else:
            keys = touch.keys()
        for key in keys:
            if key in queued:
                continue
            if self.mts and len(key) > 1 and step % self.mts_k != 0:
                # slow-tier polymers only run at outer boundaries
                continue
            t = touch[key]
            if self._polymer_ready(key, step, t):
                if len(key) > 1 and self._try_serve_surrogate(key, step):
                    continue
                self._release(key, step)

    def _try_serve_surrogate(self, key: tuple, step: int) -> bool:
        """Serve a ready polymer from the committee surrogate if gated in.

        On success the polymer never enters the priority queue: a
        synthetic completed task is pushed onto ``_served_queue`` (the
        iterative accumulation path), the ``_queued`` marker prevents
        re-release, and the per-order bound is folded into the manager's
        neglected-error ceiling.  Returns False — schedule the full
        solve — when no surrogate is attached, the class is cold, or the
        committee disagreement exceeds the gate.
        """
        if self.surrogate is None or not self.build_molecules:
            return False
        coords = self.coords_at[step]
        w0 = self._window_start(step)
        c = self.plans[w0].coefficients[key]
        mol, atoms, caps = self.system.fragment_molecule(key, coords)
        served = self.surrogate.predict(key, mol, coefficient=c)
        if served is None:
            return False
        energy, grad_frag, spread = served
        self._queued[step].add(key)
        task = PolymerTask(
            key=key,
            step=step,
            molecule=mol,
            atoms=atoms,
            caps=caps,
            coefficient=c,
            distance=0.0,
            surrogate=True,
        )
        self.in_flight += 1  # _complete_one decrements symmetrically
        self.surrogate_tasks_avoided += 1
        if self.tracer:
            self.tracer.instant(
                "surrogate.serve", cat="scheduler", step=step,
                key=str(key), spread=float(spread),
            )
        self._served_queue.append((task, energy, grad_frag))
        return True

    def _drain_served(self) -> None:
        """Accumulate queued surrogate-served contributions iteratively.

        Each accumulation can integrate monomers, whose next-step
        releases can serve further polymers — the queue keeps that
        cascade flat instead of recursing through `complete`.
        """
        while self._served_queue:
            task, energy, grad_frag = self._served_queue.popleft()
            self._complete_one(task, energy, grad_frag)

    # ------------------------------------------------------------------
    # driver interface
    # ------------------------------------------------------------------
    def next_task(self) -> PolymerTask | None:
        """Pop the highest-priority ready polymer, or None if none ready."""
        if not self._heap:
            return None
        _, _, _, _, task = heapq.heappop(self._heap)
        self.in_flight += 1
        self.tasks_issued += 1
        if self.tracer:
            self.tracer.counter("scheduler.queue_depth", len(self._heap))
            self.tracer.counter("scheduler.in_flight", self.in_flight)
        return task

    def complete(self, task: PolymerTask, energy: float, grad_frag: np.ndarray) -> None:
        """Accept a finished polymer: accumulate, integrate ready monomers,
        release newly-ready polymers (and drain any surrogate serves the
        cascade produced)."""
        self._complete_one(task, energy, grad_frag)
        self._drain_served()

    def _complete_one(
        self, task: PolymerTask, energy: float, grad_frag: np.ndarray
    ) -> None:
        self.in_flight -= 1
        step = task.step
        c = task.coefficient
        if (
            self.surrogate is not None
            and len(task.key) > 1
            and not task.surrogate
            and self.build_molecules
        ):
            # every full polymer solve is a free training pair
            self.surrogate.observe(task.key, task.molecule, energy, grad_frag)
        if self.mts and len(task.key) > 1:
            # slow-tier polymer (boundary steps only)
            if self.deterministic:
                self._slow_contrib[step][task.key] = (
                    energy, grad_frag, task.atoms, task.caps, c
                )
            else:
                self._slow_pe[step] += c * energy
                if task.atoms is not None and grad_frag is not None:
                    self.system.map_gradient(
                        grad_frag, task.atoms, task.caps,
                        self._slow_grad[step], scale=c,
                    )
        else:
            if self.deterministic:
                self._contrib[step][task.key] = (
                    energy, grad_frag, task.atoms, task.caps, c
                )
            else:
                self._pe[step] += c * energy
                if task.atoms is not None and grad_frag is not None:
                    self.system.map_gradient(
                        grad_frag, task.atoms, task.caps, self._grad[step],
                        scale=c,
                    )
            if self.mts and step % self.mts_k == 0:
                # a boundary reuses the monomer solve for the slow
                # tier's (c_m - 1) correction — no duplicate task
                cm = self._slow_mono_coef[self._window_start(step)].get(
                    task.key[0], 0.0
                )
                if cm and not self.deterministic:
                    self._slow_pe[step] += cm * energy
                    if task.atoms is not None and grad_frag is not None:
                        self.system.map_gradient(
                            grad_frag, task.atoms, task.caps,
                            self._slow_grad[step], scale=cm,
                        )
        self._pending_total[step] -= 1
        if self._pending_total[step] == 0:
            if self.deterministic:
                contribs = self._contrib[step]
                self._pe[step] = sum(
                    contribs[k][4] * contribs[k][0] for k in sorted(contribs)
                )
            pe = self._pe[step]
            if self.mts:
                if step % self.mts_k == 0:
                    if self.deterministic:
                        self._slow_pe[step] = self._canonical_slow_pe(step)
                    self.mts_slow_evals += 1
                    if self.tracer:
                        self.tracer.instant(
                            "mts.slow_eval", cat="scheduler", step=step
                        )
                pe = pe + self._slow_energy_estimate(step)
            self.potential_energies[step] = pe
            self.step_finish_time[step] = self.clock() - self.start_time
            if self.tracer:
                self.tracer.instant("step.complete", cat="scheduler", step=step)
        w0 = self._window_start(step)
        touch = self._plan_touch[w0][task.key]
        counts = self._pending_monomer[step]
        for m in touch:
            counts[m] -= 1
            if counts[m] == 0:
                self._integrate_monomer(m, step)
        if self.tracer:
            self.tracer.instant(
                "task.complete", cat="scheduler", step=step, key=str(task.key)
            )
            self.tracer.counter("scheduler.in_flight", self.in_flight)
            self.tracer.counter("scheduler.step_skew", self.max_step_skew)
        self._evict_retired_steps()

    def _evict_retired_steps(self) -> None:
        """Free per-step buffers for steps no code path can read again.

        A step ``s`` is retired once every monomer has integrated past it
        (``min(monomer_time) > s``): all its polymers have completed
        (otherwise some monomer's pending count would be nonzero), its
        results are in `potential_energies`/`kinetic_energies`, and no
        future release, integration, or plan build reads ``coords_at[s]``
        — releases and plan builds only ever look at steps at or above
        the slowest monomer. Without eviction these buffers grow
        O(nsteps x natoms) and long NVE runs leak linearly in step count.
        """
        low = int(self.monomer_time.min())
        while self._evict_floor < low:
            s = self._evict_floor
            for d in (
                self.coords_at, self._grad, self._pe, self._pending_total,
                self._pending_monomer, self._queued, self._ke,
                self._ke_done, self._ref_cent_cache, self._contrib,
                self._ke_parts, self._vel_at, self._slow_contrib,
            ):
                d.pop(s, None)
            self.steps_evicted += 1
            self._evict_floor += 1
        if self.mts:
            # held slow forces/energies outlive their boundary: inner
            # steps up to two cycles later read them (extrapolation uses
            # the previous boundary too)
            horizon = low - 2 * self.mts_k
            for d in (self._slow_grad, self._slow_pe):
                for b in [b for b in d if b < horizon]:
                    del d[b]

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _checkpoint_candidate(self, step: int) -> bool:
        """True for steps eligible to be checkpointed.

        Candidates must be replan-window starts (so a resumed run
        rebuilds the identical fragment plan from the checkpointed
        coordinates) — and, under MTS, outer-cycle boundaries, so the
        snapshot carries a freshly evaluated slow tier — in addition to
        being multiples of ``checkpoint_every``.
        """
        return (
            self.checkpoint_path is not None
            and self.checkpoint_every > 0
            and step > self.start_step
            and step % self.checkpoint_every == 0
            and step % self.replan_interval == 0
            and step % self.mts_k == 0
        )

    def _write_checkpoint(self, step: int) -> None:
        """Write a crash-safe snapshot of the consistent cut at ``step``."""
        steps = sorted(
            s for s in self.potential_energies
            if s <= step and s in self.kinetic_energies
        )
        parent = self.system.parent
        report = self.driver_report
        driver = None
        if report is not None:
            driver = {
                "tasks_completed": report.tasks_completed,
                "retries": report.retries,
                "pool_restarts": report.pool_restarts,
                "timeouts": report.timeouts,
                "quarantined": len(report.quarantined),
            }
        mts_meta = None
        slow_forces = slow_forces_prev = None
        if self.mts:
            prev = step - self.mts_k
            has_prev = prev in self._slow_grad and prev in self._slow_pe
            mts_meta = {
                "k": int(self.mts_k),
                "extrapolate": bool(self.mts_extrapolate),
                "step": int(step),
                "prev_step": int(prev) if has_prev else -1,
                "e_slow": float(self._slow_pe[step]),
                "e_slow_prev": (
                    float(self._slow_pe[prev]) if has_prev else 0.0
                ),
            }
            slow_forces = -self._slow_grad[step]
            if has_prev:
                slow_forces_prev = -self._slow_grad[prev]
        surr_meta = surr_arrays = None
        if self.surrogate is not None:
            surr_meta, surr_arrays = self.surrogate.state_dict()
        write_checkpoint(
            self.checkpoint_path,
            Checkpoint(
                step=step,
                time_fs=step * self.dt_fs,
                coords=self.coords_at[step].copy(),
                velocities=self._vel_at.pop(step),
                symbols=tuple(parent.symbols),
                charge=parent.charge,
                times_fs=np.array([s * self.dt_fs for s in steps]),
                potential=np.array(
                    [self.potential_energies[s] for s in steps]
                ),
                kinetic=np.array([self.kinetic_energies[s] for s in steps]),
                driver=driver,
                reference=int(self.reference),
                mts=mts_meta,
                mts_slow_forces=slow_forces,
                mts_slow_forces_prev=slow_forces_prev,
                surrogate=surr_meta,
                surrogate_arrays=surr_arrays,
            ),
            tracer=self.tracer,
            keep=self.checkpoint_keep,
            fault_plan=self.fault_plan,
        )

    @property
    def live_steps(self) -> int:
        """Number of steps whose accumulation buffers are currently live."""
        return len(self._pending_total)

    # ------------------------------------------------------------------
    # MTS slow tier
    # ------------------------------------------------------------------
    def _canonical_slow_pe(self, step: int) -> float:
        """Slow-tier energy at a boundary, reduced in canonical order.

        Deterministic mode only: monomer ``c_m - 1`` corrections (from
        the buffered fast-tier results) in monomer order, then polymer
        contributions in sorted-key order.
        """
        w0 = self._window_start(step)
        contribs = self._contrib[step]
        mono_coef = self._slow_mono_coef[w0]
        total = 0.0
        for j in sorted(mono_coef):
            total += mono_coef[j] * contribs[(j,)][0]
        slow_contribs = self._slow_contrib[step]
        for key in sorted(slow_contribs):
            total += slow_contribs[key][4] * slow_contribs[key][0]
        return total

    def _slow_energy_estimate(self, step: int) -> float:
        """Held (or extrapolated) slow-tier energy at ``step``."""
        b = (step // self.mts_k) * self.mts_k
        e_b = self._slow_pe[b]
        if step == b:
            return e_b
        prev = b - self.mts_k
        if self.mts_extrapolate and prev in self._slow_pe:
            frac = (step - b) / (b - prev)
            return e_b + frac * (e_b - self._slow_pe[prev])
        return e_b

    def _materialize_slow_rows(self, m: int, step: int) -> None:
        """Deterministic mode: fill monomer ``m``'s rows of the slow-tier
        gradient buffer at boundary ``step`` by a canonical reduction.

        Monomer atom rows are disjoint, so each monomer writes its own
        rows at integration time while other monomers' contributions are
        still arriving; the buffer then outlives the per-step `_contrib`
        buffers, which later inner steps cannot hold onto.
        """
        rows = self.monomer_atoms[m]
        w0 = self._window_start(step)
        contribs = self._contrib[step]
        slow_contribs = self._slow_contrib[step]
        mono_coef = self._slow_mono_coef[w0]
        buf = np.zeros((self.system.parent.natoms, 3))
        for key in sorted(self._plan_mono_keys[w0][m]):
            if len(key) > 1:
                energy, grad_frag, atoms, caps, c = slow_contribs[key]
            else:
                cm = mono_coef.get(key[0], 0.0)
                if not cm:
                    continue
                energy, grad_frag, atoms, caps, _ = contribs[key]
                c = cm
            if atoms is not None and grad_frag is not None:
                self.system.map_gradient(grad_frag, atoms, caps, buf, scale=c)
        self._slow_grad[step][rows] = buf[rows]

    def _slow_grad_estimate_rows(self, m: int, step: int) -> np.ndarray:
        """Extrapolate mode: estimated slow-tier gradient rows of ``m``."""
        rows = self.monomer_atoms[m]
        b = (step // self.mts_k) * self.mts_k
        g_b = self._slow_grad[b][rows]
        if step == b:
            return g_b
        prev = b - self.mts_k
        if prev in self._slow_grad:
            frac = (step - b) / (b - prev)
            return g_b + frac * (g_b - self._slow_grad[prev][rows])
        return g_b

    def _monomer_gradient_rows(self, m: int, step: int) -> np.ndarray:
        """Gradient on monomer ``m``'s atoms, reduced deterministically.

        Sums the buffered contributions of every polymer touching ``m``
        in canonical (sorted-key) order, so the result is independent of
        worker completion order.
        """
        rows = self.monomer_atoms[m]
        w0 = self._window_start(step)
        contribs = self._contrib[step]
        buf = np.zeros((self.system.parent.natoms, 3))
        for key in sorted(self._plan_mono_keys[w0][m]):
            if self.mts and len(key) > 1:
                # slow-tier polymers live in `_slow_contrib` and enter
                # through the boundary impulses, not the fast gradient
                continue
            energy, grad_frag, atoms, caps, c = contribs[key]
            if atoms is not None and grad_frag is not None:
                self.system.map_gradient(grad_frag, atoms, caps, buf, scale=c)
        return buf[rows]

    def _integrate_monomer(self, m: int, step: int) -> None:
        """Velocity-Verlet update of one monomer whose step forces are done."""
        rows = self.monomer_atoms[m]
        if self.deterministic:
            grad_rows = self._monomer_gradient_rows(m, step)
        else:
            grad_rows = self._grad[step][rows]
        boundary = self.mts and step % self.mts_k == 0
        if boundary and self.deterministic:
            self._materialize_slow_rows(m, step)
        acc_slow = None
        if self.mts and self.mts_extrapolate:
            # extrapolated slow force enters the regular per-step kicks
            grad_rows = grad_rows + self._slow_grad_estimate_rows(m, step)
        elif boundary:
            acc_slow = -self._slow_grad[step][rows] / self.masses[rows, None]
        acc = -grad_rows / self.masses[rows, None]
        if step > self.start_step:
            # second half-kick completing the previous step (on resume,
            # the checkpointed velocities are already at the integer
            # step, so the first integration skips it exactly as a fresh
            # run does at step 0)
            self.velocities[rows] += 0.5 * self.dt * acc
            if acc_slow is not None:
                # closing half-impulse of the outer cycle (r-RESPA)
                self.velocities[rows] += (
                    0.5 * self.mts_k * self.dt * acc_slow
                )
            if self.thermostat is not None:
                self.velocities[rows] = self.thermostat.apply_rows(
                    self.velocities[rows], self.masses[rows], self.dt_fs,
                    step=step, monomer=m,
                )
        # kinetic energy at integer step
        ke = 0.5 * float(
            np.sum(self.masses[rows, None] * self.velocities[rows] ** 2)
        )
        if self._checkpoint_candidate(step):
            # snapshot the integer-step velocity of this monomer before
            # the first half-kick advances it into the next step
            buf = self._vel_at.setdefault(step, np.zeros_like(self.velocities))
            buf[rows] = self.velocities[rows]
        if self.deterministic:
            self._ke_parts[step][m] = ke
        else:
            self._ke[step] += ke
        self._ke_done[step] += 1
        if self._ke_done[step] == self.system.nmonomers:
            if self.deterministic:
                parts = self._ke_parts[step]
                self._ke[step] = sum(parts[i] for i in sorted(parts))
            self.kinetic_energies[step] = self._ke[step]
            if self.step_callback is not None:
                # fired before eviction can reclaim coords_at[step]; the
                # potential is already reduced (the last monomer can only
                # integrate after every polymer of the step completed)
                self.step_callback(
                    step,
                    self.potential_energies.get(step),
                    self._ke[step],
                    self.coords_at[step].copy(),
                )
            if self._checkpoint_candidate(step):
                # every monomer has integrated through this step: the
                # (coords_at[step], vel_at[step]) pair is a consistent
                # cut of the trajectory even while other monomers race
                # ahead into later steps
                self._write_checkpoint(step)
        if step >= self.nsteps:
            self.monomer_done[m] = True
            return
        if acc_slow is not None:
            # opening half-impulse of the next outer cycle
            self.velocities[rows] += 0.5 * self.mts_k * self.dt * acc_slow
        # first half-kick + drift
        self.velocities[rows] += 0.5 * self.dt * acc
        self.coords[rows] += self.dt * self.velocities[rows]
        self.monomer_time[m] = step + 1
        nxt = step + 1
        if nxt not in self.coords_at:
            self.coords_at[nxt] = self.coords_at[step].copy()
        self.coords_at[nxt][rows] = self.coords[rows]
        # plan rebuild when the slowest monomer enters a new window
        w_next = self._window_start(nxt)
        if w_next not in self.plans and int(self.monomer_time.min()) >= w_next:
            self._build_plan_window(w_next)
            for s in self._steps_of_window(w_next):
                self._try_release_step_polymers(s)
        if self._window_start(nxt) in self.plans:
            if self.synchronous:
                # barrier: release only when everyone has arrived
                if int(self.monomer_time.min()) >= nxt:
                    self._try_release_step_polymers(nxt)
            else:
                self._try_release_step_polymers(nxt, only_monomer=m)

    def done(self) -> bool:
        """True once every monomer has completed all time steps."""
        return bool(self.monomer_done.all())

    def has_ready_tasks(self) -> bool:
        """True if the priority queue currently holds released polymers."""
        return bool(self._heap)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def trajectory_energies(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times_fs, potential, kinetic) for all completed steps."""
        steps = sorted(
            set(self.potential_energies) & set(self.kinetic_energies)
        )
        t = np.array([s * self.dt_fs for s in steps])
        pe = np.array([self.potential_energies[s] for s in steps])
        ke = np.array([self.kinetic_energies[s] for s in steps])
        return t, pe, ke

    @property
    def max_step_skew(self) -> int:
        """Largest lead of any monomer over the slowest one (observed now)."""
        return int(self.monomer_time.max() - self.monomer_time.min())

    def diagnostics(self) -> str:
        """One-line scheduler state dump for deadlock/failure messages."""
        lo = int(self.monomer_time.min())
        hi = int(self.monomer_time.max())
        live = sorted(self._pending_total)
        pending = {s: self._pending_total[s] for s in live}
        return (
            f"queue={len(self._heap)} in_flight={self.in_flight} "
            f"monomer_steps=[{lo},{hi}] skew={hi - lo} "
            f"live_steps={live} pending_polymers={pending} "
            f"issued={self.tasks_issued} evicted={self.steps_evicted} "
            f"done={self.done()}"
        )


def run_serial(coordinator: AsyncCoordinator, calculator, tracer=None) -> None:
    """Drive a coordinator to completion with a single worker.

    In a serial driver every issued task completes before the next
    ``next_task`` call, so an empty queue before ``done()`` is always a
    scheduler bug — there is no in-flight work that could unlock more
    tasks, and the old ``in_flight > 0`` guard merely turned the bug
    into a silent busy-spin. The check is therefore unconditional.

    The coordinator's warm-start `GuessCache` and tracer are attached to
    the calculator (when it supports them and has none of its own), so
    per-fragment densities persist across steps and SCF recovery /
    warm-start events reach the trace.

    Attempt/step forwarding matches the parallel driver's worker entry
    point: ``accepts_attempt`` calculators get ``attempt=0`` (a serial
    driver never retries), ``accepts_step`` calculators (the fault-plan
    wrapper) get the task's MD step, so the same fault plan targets the
    same events under either driver.
    """
    if tracer is None:
        tracer = coordinator.tracer
    cache = getattr(coordinator, "guess_cache", None)
    if cache is not None and getattr(calculator, "guess_cache", "no") is None:
        calculator.guess_cache = cache
    if tracer is not None and getattr(calculator, "tracer", "no") is None:
        calculator.tracer = tracer

    def evaluate(task):
        kwargs = {}
        if getattr(calculator, "accepts_attempt", False):
            kwargs["attempt"] = 0
        if getattr(calculator, "accepts_step", False):
            kwargs["step"] = task.step
        return calculator.energy_gradient(task.molecule, **kwargs)

    while not coordinator.done():
        task = coordinator.next_task()
        if task is None:
            raise RuntimeError(
                "scheduler deadlock: no ready tasks in serial driver; "
                + coordinator.diagnostics()
            )
        if tracer:
            with tracer.span("task.exec", cat="driver",
                             step=task.step, key=str(task.key)):
                e, g = evaluate(task)
        else:
            e, g = evaluate(task)
        # divergence sentinel: a NaN contribution would silently poison
        # the accumulated MBE gradient of every atom the polymer touches
        ensure_finite(
            f"polymer {task.key} (step {task.step})", energy=e, gradient=g
        )
        coordinator.complete(task, e, g)
