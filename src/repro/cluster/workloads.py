"""Exascale workload statistics from real lattice geometry.

For the paper's headline systems (24k / 44,532 / 63,854 urea molecules)
building atomistic structures is unnecessary for scheduling studies: the
polymer *set* is determined by monomer centroid geometry alone. These
helpers generate molecule centroids from the urea lattice, group them
into monomers (4 molecules per monomer, as in the paper), and enumerate
the MBE3 polymer list with KD-trees — reproducing, from first
principles, the paper's ">2.8 million polymer contributions" for the
2,043,328-electron system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..systems.urea import A_CELL, C_CELL, ELECTRONS_PER_MOLECULE


def urea_molecule_centroids(nmol: int) -> np.ndarray:
    """Centroids (Angstrom) of ``nmol`` urea molecules in a spherical
    lattice cut, without building any atoms."""
    density = 2.0 / (A_CELL * A_CELL * C_CELL)
    r = (3.0 * nmol / (4.0 * np.pi * density)) ** (1.0 / 3.0)
    n = int(np.ceil(2 * (r * 1.1) / min(A_CELL, C_CELL))) + 2
    ia = np.arange(n)
    A, B, C = np.meshgrid(ia, ia, ia, indexing="ij")
    base = np.stack(
        [A.ravel() * A_CELL, B.ravel() * A_CELL, C.ravel() * C_CELL], axis=1
    )
    m1 = base + np.array([0.25 * A_CELL, 0.25 * A_CELL, 0.0])
    m2 = base + np.array([0.75 * A_CELL, 0.75 * A_CELL, 0.5 * C_CELL])
    pts = np.vstack([m1, m2])
    center = pts.mean(axis=0)
    order = np.argsort(np.linalg.norm(pts - center, axis=1))
    return pts[order[:nmol]]


def group_centroids(points: np.ndarray, group_size: int) -> np.ndarray:
    """Group points into spatially-sorted blocks and return block centroids."""
    order = np.lexsort((points[:, 2], points[:, 1], points[:, 0]))
    pts = points[order]
    ngroups = len(pts) // group_size
    pts = pts[: ngroups * group_size]
    return pts.reshape(ngroups, group_size, 3).mean(axis=1)


@dataclass
class WorkloadStats:
    """Polymer population of one MBE3 step."""

    nmonomers: int
    ndimers: int
    ntrimers: int
    electrons_per_monomer: int

    @property
    def npolymers(self) -> int:
        """Total polymer calculations per MBE3 step."""
        return self.nmonomers + self.ndimers + self.ntrimers

    def polymer_electrons(self) -> np.ndarray:
        """Electron count of every polymer, shape (npolymers,)."""
        e = self.electrons_per_monomer
        return np.concatenate(
            [
                np.full(self.nmonomers, e),
                np.full(self.ndimers, 2 * e),
                np.full(self.ntrimers, 3 * e),
            ]
        )


def count_polymers(
    centroids_angstrom: np.ndarray,
    r_dimer_angstrom: float,
    r_trimer_angstrom: float,
    electrons_per_monomer: int,
) -> WorkloadStats:
    """Enumerate the MBE3 polymer population over monomer centroids."""
    cents = np.asarray(centroids_angstrom, dtype=float)
    n = len(cents)
    tree = cKDTree(cents)
    ndimers = int(tree.count_neighbors(tree, r_dimer_angstrom) - n) // 2
    # trimers: vectorized mutual-distance check over trimer-radius pairs
    pairs = tree.query_pairs(r_trimer_angstrom, output_type="ndarray")
    neigh: list[list[int]] = [[] for _ in range(n)]
    for i, j in pairs:
        neigh[int(i)].append(int(j))
    r2 = r_trimer_angstrom**2
    ntrimers = 0
    for i in range(n):
        cand = neigh[i]
        if len(cand) < 2:
            continue
        sub = cents[cand]
        d2 = ((sub[:, None, :] - sub[None, :, :]) ** 2).sum(axis=-1)
        ntrimers += int(np.count_nonzero(np.triu(d2 <= r2, k=1)))
    return WorkloadStats(
        nmonomers=n,
        ndimers=ndimers,
        ntrimers=ntrimers,
        electrons_per_monomer=electrons_per_monomer,
    )


def urea_workload(
    nmolecules: int,
    molecules_per_monomer: int = 4,
    r_dimer_angstrom: float = 15.3,
    r_trimer_angstrom: float = 15.3,
) -> WorkloadStats:
    """Full workload statistics for a spherical urea cluster (paper
    Sec. VII-C setup: 4 molecules / 32 atoms / 128 electrons per monomer,
    15.3 A dimer and trimer cutoffs)."""
    mol_cents = urea_molecule_centroids(nmolecules)
    mono_cents = group_centroids(mol_cents, molecules_per_monomer)
    return count_polymers(
        mono_cents,
        r_dimer_angstrom,
        r_trimer_angstrom,
        ELECTRONS_PER_MOLECULE * molecules_per_monomer,
    )
