"""Aggregate (task-level) scheduling simulation for exascale projections.

The full event simulator executes the real coordinator state machine,
which is exact but Python-bound; for the paper's largest runs (millions
of polymers on ~75k GCDs) this module provides an honest *task-level*
simulation instead: greedy dynamic load balancing (workers pull the
largest remaining task — LPT list scheduling) with a serial coordinator
service time and message round-trips, which are exactly the mechanisms
that shape the strong/weak scaling curves.

Synchronous AIMD is a sum of per-step makespans (each step ends with a
global barrier); asynchronous AIMD pools the steps' tasks into one
schedule, which is what removing all system-wide synchronization
achieves in the limit of a deep priority queue (paper Sec. V-F).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .costmodel import FragmentCostModel
from .machine import MachineSpec
from .workloads import WorkloadStats


def list_schedule_makespan(
    costs_s: np.ndarray,
    nworkers: int,
    coordinator_service_s: float = 0.0,
    roundtrip_s: float = 0.0,
) -> float:
    """Makespan of greedy largest-first scheduling on ``nworkers``.

    Each assignment passes through a serial coordinator (service time
    per task) and costs one message round-trip of idle time on the
    worker — the centralized dynamic load balancing of the paper.
    """
    costs = np.sort(np.asarray(costs_s, dtype=float))[::-1]
    n = len(costs)
    if n == 0:
        return 0.0
    if nworkers >= n and coordinator_service_s == 0.0:
        return float(costs[0] + roundtrip_s)
    # workers become available at times in a heap; coordinator is serial
    heap = [0.0] * min(nworkers, n)
    heapq.heapify(heap)
    coord_free = 0.0
    makespan = 0.0
    for c in costs:
        t_free = heapq.heappop(heap)
        start_service = max(t_free, coord_free)
        coord_free = start_service + coordinator_service_s
        finish = coord_free + roundtrip_s + c
        makespan = max(makespan, finish)
        heapq.heappush(heap, finish)
    return makespan


@dataclass
class AggregateResult:
    """Projected performance of an AIMD run."""

    machine: str
    nodes: int
    nworkers: int
    nsteps: int
    time_per_step_s: float
    counted_flops_per_step: float

    @property
    def flop_rate_pflops(self) -> float:
        """Counted-FLOP rate per step (PFLOP/s)."""
        return self.counted_flops_per_step / self.time_per_step_s / 1.0e15

    def fraction_of_peak(self, machine: MachineSpec) -> float:
        """Counted-FLOP rate over the machine's sustained FP64 peak."""
        return self.flop_rate_pflops / machine.peak_pflops(self.nodes)

    def energy_megajoules_per_step(self, machine: MachineSpec) -> float:
        """Energy per AIMD step from the machine's GFLOP/joule rating."""
        return self.counted_flops_per_step / (
            machine.gflops_per_joule * 1.0e9
        ) / 1.0e6


def simulate_workload(
    stats: WorkloadStats,
    machine: MachineSpec,
    nodes: int,
    nsteps: int = 3,
    cost_model: FragmentCostModel | None = None,
    synchronous: bool = False,
    gcds_per_worker: int = 1,
) -> AggregateResult:
    """Project one AIMD run of ``nsteps`` over a polymer workload.

    Async mode pools all steps into one schedule; sync mode pays a
    barrier per step.
    """
    cost = cost_model or FragmentCostModel()
    nworkers = machine.total_gcds(nodes) // gcds_per_worker
    elec = stats.polymer_electrons()
    uniq, counts = np.unique(elec, return_counts=True)
    times = {int(e): cost.time_on(int(e), machine, ngcds=gcds_per_worker) for e in uniq}
    costs_step = np.repeat([times[int(e)] for e in uniq], counts)
    counted = float(
        sum(cost.gemm_flops(int(e)) * c for e, c in zip(uniq, counts))
    )
    rt = 2.0 * machine.message_latency_s
    svc = machine.coordinator_service_s
    if synchronous:
        per_step = list_schedule_makespan(costs_step, nworkers, svc, rt)
        total = per_step * nsteps
    else:
        pooled = np.tile(costs_step, nsteps)
        total = list_schedule_makespan(pooled, nworkers, svc, rt)
    return AggregateResult(
        machine=machine.name,
        nodes=nodes,
        nworkers=nworkers,
        nsteps=nsteps,
        time_per_step_s=total / nsteps,
        counted_flops_per_step=counted,
    )


def strong_scaling_curve(
    stats: WorkloadStats,
    machine: MachineSpec,
    node_counts: list[int],
    nsteps: int = 3,
    cost_model: FragmentCostModel | None = None,
    gcds_per_worker: int = 1,
) -> list[AggregateResult]:
    """Fixed workload, varying node count (paper Fig. 7)."""
    return [
        simulate_workload(
            stats, machine, n, nsteps=nsteps, cost_model=cost_model,
            gcds_per_worker=gcds_per_worker,
        )
        for n in node_counts
    ]


def failure_adjusted_efficiency(
    result: AggregateResult,
    failure_model,
    checkpoint_cost_s: float,
    restart_cost_s: float = 0.0,
    nsteps_total: int | None = None,
    interval_s: float | None = None,
) -> float:
    """Useful-work fraction of a projected campaign under failures.

    Takes a failure-free aggregate projection, stretches it over a
    production-length campaign of ``nsteps_total`` steps (default: the
    projection's own step count), and applies Daly's expected-makespan
    inflation (`repro.cluster.failures.expected_makespan`) at the
    system MTBF the failure model compounds to on this node count.
    ``interval_s=None`` uses the Young-Daly optimal checkpoint period —
    pass an explicit interval to see what a badly chosen one costs.
    The returned efficiency multiplies with `parallel_efficiency`:
    scaling out shortens the campaign but also shortens the MTBF, and
    the product is what a real allocation delivers.
    """
    from .failures import expected_makespan, young_daly_interval

    nsteps = nsteps_total if nsteps_total is not None else result.nsteps
    work_s = result.time_per_step_s * nsteps
    mtbf_s = failure_model.system_mtbf_s(result.nodes)
    tau = (
        interval_s if interval_s is not None
        else young_daly_interval(mtbf_s, checkpoint_cost_s)
    )
    span = expected_makespan(
        work_s, mtbf_s, tau, checkpoint_cost_s, restart_cost_s
    )
    return work_s / span


def parallel_efficiency(results: list[AggregateResult]) -> list[float]:
    """Speedup relative to the smallest run, normalized by node ratio."""
    base = results[0]
    out = []
    for r in results:
        speedup = base.time_per_step_s / r.time_per_step_s
        out.append(speedup / (r.nodes / base.nodes))
    return out
