"""Machine models for the HPC platforms in the paper (Sec. VI-A).

Numbers are taken directly from the paper: Frontier has 9,408 nodes of
4 MI250X GPUs (2 GCDs each, 22.8 TFLOP/s sustained FP64 matrix peak per
GCD, 64 GB HBM2e) for a 1.715 EFLOP/s sustainable machine peak;
Perlmutter has 1,536 GPU nodes of 4 A100s (19.5 theoretical / 18.4
sustained TFLOP/s, 40 GB) for 113 PFLOP/s. Both use a Slingshot-11
dragonfly with at most three hops.

The per-operation-class efficiency factors encode the paper's
observation that GEMMs run near peak while integral kernels and
eigensolvers are FLOP-inefficient, and that the A100 system handles
small-fragment integral/eigensolver work better than the MI250X
("more efficient random memory accesses ... and faster vendor provided
eigensolver", Sec. VII-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachineSpec:
    """A GPU supercomputer abstraction for the event/aggregate simulators."""

    name: str
    nodes: int
    gpus_per_node: int
    gcds_per_gpu: int
    #: sustained FP64 matrix peak per GCD (TFLOP/s)
    gcd_peak_tflops: float
    gcd_mem_gb: float
    #: point-to-point message latency (seconds) on the dragonfly
    message_latency_s: float
    #: super-coordinator service time per work assignment (seconds)
    coordinator_service_s: float
    #: achievable fraction of peak per operation class
    efficiency: dict = field(
        default_factory=lambda: {"gemm": 0.85, "integrals": 0.10, "eig": 0.04}
    )
    gflops_per_joule: float = 50.0
    #: rated mean time between failures of ONE node (hours). The system
    #: MTBF at n nodes is node_mtbf_hours / n — which is what makes
    #: failures an operating condition at exascale: 40,000 h/node is
    #: excellent hardware, yet 9,408 such nodes fail every ~4.3 h,
    #: faster than the paper's 3.16 h production trajectory completes.
    node_mtbf_hours: float = 50000.0

    @property
    def gcds_per_node(self) -> int:
        """Graphics compute dies per node (GPUs x dies per GPU)."""
        return self.gpus_per_node * self.gcds_per_gpu

    def total_gcds(self, nodes: int | None = None) -> int:
        """GCD count of ``nodes`` nodes (the whole machine by default)."""
        return (nodes if nodes is not None else self.nodes) * self.gcds_per_node

    def peak_pflops(self, nodes: int | None = None) -> float:
        """Sustained FP64 peak of ``nodes`` nodes in PFLOP/s."""
        return self.total_gcds(nodes) * self.gcd_peak_tflops / 1000.0


FRONTIER = MachineSpec(
    name="Frontier",
    nodes=9408,
    gpus_per_node=4,
    gcds_per_gpu=2,
    gcd_peak_tflops=22.8,
    gcd_mem_gb=64.0,
    message_latency_s=4.0e-6,
    coordinator_service_s=4.0e-6,
    efficiency={"gemm": 0.85, "integrals": 0.055, "eig": 0.022},
    gflops_per_joule=53.0,
    node_mtbf_hours=40000.0,
)

PERLMUTTER = MachineSpec(
    name="Perlmutter",
    nodes=1536,
    gpus_per_node=4,
    gcds_per_gpu=1,
    gcd_peak_tflops=18.4,
    gcd_mem_gb=40.0,
    message_latency_s=3.0e-6,
    coordinator_service_s=4.0e-6,
    # A100: better random-access integral kernels and vendor eigensolver
    efficiency={"gemm": 0.85, "integrals": 0.11, "eig": 0.05},
    gflops_per_joule=27.0,
    node_mtbf_hours=60000.0,
)
