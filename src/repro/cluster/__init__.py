"""Distributed-execution modeling: machines, cost model, simulators."""

from .aggregate import (
    AggregateResult,
    list_schedule_makespan,
    parallel_efficiency,
    simulate_workload,
    strong_scaling_curve,
)
from .costmodel import PAPER_CALIBRATED, FragmentCostModel, calibrate_gemm
from .events import ClusterSimulator, SimResult, simulate_aimd
from .machine import FRONTIER, PERLMUTTER, MachineSpec
from .workloads import (
    WorkloadStats,
    count_polymers,
    group_centroids,
    urea_molecule_centroids,
    urea_workload,
)

__all__ = [
    "AggregateResult",
    "ClusterSimulator",
    "FRONTIER",
    "FragmentCostModel",
    "MachineSpec",
    "PAPER_CALIBRATED",
    "PERLMUTTER",
    "SimResult",
    "WorkloadStats",
    "calibrate_gemm",
    "count_polymers",
    "group_centroids",
    "list_schedule_makespan",
    "parallel_efficiency",
    "simulate_aimd",
    "simulate_workload",
    "strong_scaling_curve",
    "urea_molecule_centroids",
    "urea_workload",
]
