"""Distributed-execution modeling: machines, cost model, simulators."""

from .aggregate import (
    AggregateResult,
    failure_adjusted_efficiency,
    list_schedule_makespan,
    parallel_efficiency,
    simulate_workload,
    strong_scaling_curve,
)
from .costmodel import PAPER_CALIBRATED, FragmentCostModel, calibrate_gemm
from .events import ClusterSimulator, SimResult, simulate_aimd
from .failures import (
    CampaignResult,
    NodeFailureModel,
    NodeMix,
    expected_makespan,
    optimal_interval,
    replay_campaign,
    young_daly_interval,
)
from .machine import FRONTIER, PERLMUTTER, MachineSpec
from .workloads import (
    WorkloadStats,
    count_polymers,
    group_centroids,
    urea_molecule_centroids,
    urea_workload,
)

__all__ = [
    "AggregateResult",
    "CampaignResult",
    "ClusterSimulator",
    "FRONTIER",
    "FragmentCostModel",
    "MachineSpec",
    "NodeFailureModel",
    "NodeMix",
    "PAPER_CALIBRATED",
    "PERLMUTTER",
    "SimResult",
    "WorkloadStats",
    "calibrate_gemm",
    "expected_makespan",
    "failure_adjusted_efficiency",
    "optimal_interval",
    "replay_campaign",
    "young_daly_interval",
    "count_polymers",
    "group_centroids",
    "list_schedule_makespan",
    "parallel_efficiency",
    "simulate_aimd",
    "simulate_workload",
    "strong_scaling_curve",
    "urea_molecule_centroids",
    "urea_workload",
]
