"""Node-failure models and checkpoint/restart economics for campaigns.

At 9,400 nodes even excellent per-node reliability compounds into a
system-level mean time between failures of a few hours — shorter than
the paper's 3.16-hour production trajectory — so a simulated exascale
campaign that never fails is lying about its makespan.  This module
provides:

* `NodeFailureModel` — per-node uptime draws (exponential or Weibull
  hazard; Weibull with shape < 1 captures the infant-mortality burst
  HPC field data shows) that the event simulator
  (`repro.cluster.events.ClusterSimulator`) uses to kill virtual nodes
  mid-run, and the aggregate system MTBF they compound to;
* the **Young–Daly** analysis: `young_daly_interval` (the classic
  first-order optimal checkpoint period ``sqrt(2 delta M)``),
  `expected_makespan` (Daly's exact exponential-failure expectation),
  and `replay_campaign` — a seeded Monte-Carlo replay of a whole
  campaign under a chosen checkpoint interval, with lost-work,
  checkpoint-overhead, and restart accounting;
* `optimal_interval` — grid minimization of either the analytic
  expectation or the replayed makespan, used by
  ``benchmarks/bench_failures.py`` to verify the two agree.

All stochastic draws go through an explicit seed (`random.Random` /
`FaultPlan.derive_seed` upstream), in the same replayability discipline
as `repro.faults`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from .machine import MachineSpec

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class NodeFailureModel:
    """Per-node time-to-failure distribution.

    ``exponential`` is the memoryless textbook model (constant hazard);
    ``weibull`` with ``shape < 1`` has a decreasing hazard — young
    uptimes fail disproportionately often, the empirical signature of
    HPC failure logs.  Either way the *mean* uptime is
    ``mtbf_hours`` (the Weibull scale is solved from the mean via
    ``scale = mean / Gamma(1 + 1/shape)``), so models are comparable at
    equal MTBF.
    """

    mtbf_hours: float
    distribution: str = "exponential"
    weibull_shape: float = 0.7

    def __post_init__(self):
        if self.mtbf_hours <= 0:
            raise ValueError(f"mtbf_hours must be positive: {self.mtbf_hours}")
        if self.distribution not in ("exponential", "weibull"):
            raise ValueError(
                f"unknown failure distribution {self.distribution!r}"
            )
        if self.weibull_shape <= 0:
            raise ValueError("weibull_shape must be positive")

    @classmethod
    def from_machine(cls, machine: MachineSpec,
                     distribution: str = "exponential",
                     weibull_shape: float = 0.7) -> "NodeFailureModel":
        """The machine's rated per-node MTBF as a failure model."""
        return cls(
            mtbf_hours=machine.node_mtbf_hours,
            distribution=distribution,
            weibull_shape=weibull_shape,
        )

    @property
    def mtbf_s(self) -> float:
        """Per-node mean uptime in seconds."""
        return self.mtbf_hours * SECONDS_PER_HOUR

    def system_mtbf_s(self, nnodes: int) -> float:
        """Mean time between failures anywhere in an ``nnodes`` system.

        Independent nodes compound: the system fails ``nnodes`` times
        as often as one node (exact for exponential; the standard
        mean-rate approximation otherwise).
        """
        return self.mtbf_s / max(int(nnodes), 1)

    def draw_uptime(self, rng: random.Random) -> float:
        """One seeded time-to-failure draw for a single node (seconds)."""
        if self.distribution == "exponential":
            return rng.expovariate(1.0 / self.mtbf_s)
        scale = self.mtbf_s / math.gamma(1.0 + 1.0 / self.weibull_shape)
        return rng.weibullvariate(scale, self.weibull_shape)


@dataclass(frozen=True)
class NodeMix:
    """A heterogeneous node pool: ``(count, speed_factor)`` groups.

    Speed factors scale task execution rates (1.0 = the nominal
    `MachineSpec` GCD); groups are laid out in order, and any nodes
    beyond the listed counts run at 1.0.  Models mixed procurements
    (e.g. a partition of previous-generation GPUs) and degraded nodes.
    """

    groups: tuple[tuple[int, float], ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "groups",
            tuple((int(n), float(s)) for n, s in self.groups),
        )
        for n, s in self.groups:
            if n < 0 or s <= 0:
                raise ValueError(f"bad node-mix group ({n}, {s})")

    def speeds(self, nnodes: int) -> list[float]:
        """Per-node speed factors for an ``nnodes`` allocation."""
        out: list[float] = []
        for count, speed in self.groups:
            take = min(count, nnodes - len(out))
            out.extend([speed] * max(take, 0))
            if len(out) >= nnodes:
                return out[:nnodes]
        out.extend([1.0] * (nnodes - len(out)))
        return out

    def mean_speed(self, nnodes: int) -> float:
        """Average speed factor over the allocation."""
        s = self.speeds(nnodes)
        return sum(s) / len(s) if s else 1.0


# --------------------------------------------------------------------------
# Young-Daly checkpoint economics
# --------------------------------------------------------------------------

def young_daly_interval(mtbf_s: float, checkpoint_cost_s: float) -> float:
    """First-order optimal checkpoint period ``sqrt(2 delta M)``.

    ``mtbf_s`` is the *system* MTBF (per-node MTBF / node count) and
    ``checkpoint_cost_s`` the time one checkpoint write steals from
    computation.  Valid in the usual regime ``delta << M``.
    """
    if mtbf_s <= 0 or checkpoint_cost_s < 0:
        raise ValueError("mtbf_s must be > 0 and checkpoint_cost_s >= 0")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def expected_makespan(
    work_s: float,
    mtbf_s: float,
    interval_s: float,
    checkpoint_cost_s: float,
    restart_cost_s: float = 0.0,
) -> float:
    """Daly's exact expected makespan under exponential failures.

    A campaign of ``work_s`` useful seconds is cut into segments of
    ``interval_s`` work followed by a ``checkpoint_cost_s`` write; a
    failure rolls back to the last checkpoint and pays
    ``restart_cost_s`` of recovery.  For failure rate
    ``lambda = 1/mtbf_s`` the expected wall time is::

        E[T] = (W / tau) * e^(lam R) * (1/lam) * (e^(lam (tau+delta)) - 1)

    which reduces to ``W * (1 + delta/tau)`` as ``lam -> 0`` and is the
    function `optimal_interval` minimizes analytically.
    """
    if interval_s <= 0:
        raise ValueError(f"interval_s must be positive: {interval_s}")
    lam = 1.0 / mtbf_s
    segments = work_s / interval_s
    per_segment = (
        math.exp(lam * restart_cost_s)
        * (math.expm1(lam * (interval_s + checkpoint_cost_s)) / lam)
    )
    return segments * per_segment


@dataclass
class CampaignResult:
    """Accounting of one (replayed or analytic) campaign."""

    work_s: float
    interval_s: float
    makespan_s: float
    failures: int = 0
    lost_work_s: float = 0.0
    checkpoint_overhead_s: float = 0.0
    restart_overhead_s: float = 0.0
    downtime_s: float = 0.0
    replicas: int = 1
    #: per-replica makespans (replayed campaigns only)
    samples: list[float] = field(default_factory=list)

    @property
    def efficiency(self) -> float:
        """Useful work as a fraction of wall time."""
        return self.work_s / self.makespan_s if self.makespan_s > 0 else 0.0


def replay_campaign(
    work_s: float,
    mtbf_s: float,
    interval_s: float,
    checkpoint_cost_s: float,
    restart_cost_s: float = 0.0,
    downtime_s: float = 0.0,
    model: NodeFailureModel | None = None,
    nnodes: int = 1,
    seed: int = 0,
    replicas: int = 8,
) -> CampaignResult:
    """Seeded Monte-Carlo replay of a checkpointed campaign.

    Simulates ``replicas`` independent campaigns: work proceeds in
    ``interval_s`` segments, each sealed by a ``checkpoint_cost_s``
    write; a failure (drawn from ``model`` compounded over ``nnodes``,
    or exponential at ``mtbf_s`` when no model is given) destroys all
    progress since the last sealed checkpoint and costs ``downtime_s``
    of outage plus ``restart_cost_s`` of recovery before work resumes.
    Overheads are accounted per category so benchmarks can show *where*
    the wall time goes as MTBF shrinks.

    Deterministic in ``seed``: same arguments, same result, bit for bit.
    """
    if interval_s <= 0:
        raise ValueError(f"interval_s must be positive: {interval_s}")
    rng = random.Random(seed)

    def draw() -> float:
        if model is None:
            return rng.expovariate(1.0 / mtbf_s)
        n = max(int(nnodes), 1)
        if n <= 64:
            # compound independent nodes exactly: first failure wins
            return min(model.draw_uptime(rng) for _ in range(n))
        # large pools: the minimum of many i.i.d. uptimes converges to
        # an exponential at the system rate regardless of the node law
        return rng.expovariate(1.0 / model.system_mtbf_s(n))

    totals = CampaignResult(work_s=work_s, interval_s=interval_s,
                            makespan_s=0.0, replicas=replicas)
    for _ in range(replicas):
        t = 0.0
        done = 0.0
        next_fail = draw()
        while done < work_s:
            segment = min(interval_s, work_s - done)
            # the segment only counts if both the work and its sealing
            # checkpoint complete before the next failure
            seal = checkpoint_cost_s if done + segment < work_s else 0.0
            if t + segment + seal <= next_fail:
                t += segment + seal
                done += segment
                totals.checkpoint_overhead_s += seal
                continue
            # failure mid-segment (or mid-checkpoint): progress since the
            # last sealed checkpoint is lost
            totals.failures += 1
            totals.lost_work_s += min(max(next_fail - t, 0.0), segment)
            t = next_fail + downtime_s + restart_cost_s
            totals.downtime_s += downtime_s
            totals.restart_overhead_s += restart_cost_s
            next_fail = t + draw()
        totals.samples.append(t)
    totals.makespan_s = sum(totals.samples) / replicas
    return totals


def optimal_interval(
    work_s: float,
    mtbf_s: float,
    checkpoint_cost_s: float,
    restart_cost_s: float = 0.0,
    downtime_s: float = 0.0,
    method: str = "analytic",
    seed: int = 0,
    replicas: int = 16,
    grid_points: int = 33,
    grid_span: float = 8.0,
) -> tuple[float, CampaignResult]:
    """Best checkpoint interval by grid minimization.

    ``method="analytic"`` minimizes `expected_makespan` (Daly);
    ``method="replay"`` minimizes the seeded `replay_campaign` mean —
    the *empirical* optimum the acceptance tests compare against the
    `young_daly_interval` estimate.  The grid is log-spaced over
    ``[tau_YD / grid_span, tau_YD * grid_span]``.

    Returns:
        ``(best_interval_s, campaign_result_at_best)``.
    """
    if method not in ("analytic", "replay"):
        raise ValueError(f"unknown method {method!r}")
    tau_yd = young_daly_interval(mtbf_s, checkpoint_cost_s)
    tau_yd = max(tau_yd, 1e-9)
    lo = math.log(max(tau_yd / grid_span, checkpoint_cost_s + 1e-9, 1e-9))
    hi = math.log(max(tau_yd * grid_span, math.exp(lo) * 1.001))
    best: tuple[float, CampaignResult] | None = None
    for i in range(grid_points):
        tau = math.exp(lo + (hi - lo) * i / (grid_points - 1))
        if method == "analytic":
            span = expected_makespan(
                work_s, mtbf_s, tau, checkpoint_cost_s, restart_cost_s
            )
            result = CampaignResult(
                work_s=work_s, interval_s=tau, makespan_s=span
            )
        else:
            result = replay_campaign(
                work_s, mtbf_s, tau, checkpoint_cost_s,
                restart_cost_s=restart_cost_s, downtime_s=downtime_s,
                seed=seed, replicas=replicas,
            )
        if best is None or result.makespan_s < best[1].makespan_s:
            best = (tau, result)
    return best
