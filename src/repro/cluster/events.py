"""Discrete-event execution of an `AsyncCoordinator` on a modeled machine.

The simulator plays the role of the machine: it owns a virtual clock,
a pool of worker groups, the super-coordinator's serial service loop
and the interconnect latency, and drives the *real* coordinator state
machine (`repro.md.scheduler.AsyncCoordinator`) through it. Because the
coordinator is identical to the one used for real execution, the
scheduling behavior — priority sweeps, asynchronous step overlap, cap
dependencies, barriers in synchronous mode — is not modeled but
*executed*; only task durations come from the cost model.

Used for the paper's time-step latency (Sec. VII-A) and strong/weak
scaling (Figs. 7, 8) experiments. For timing studies the coordinator is
run in stub mode with zero temperature, so the geometry (and hence the
workload) is frozen — matching the paper's 3-step scaling measurements.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


from ..md.scheduler import AsyncCoordinator
from .costmodel import FragmentCostModel
from .machine import MachineSpec


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    machine: str
    nodes: int
    nworkers: int
    total_time_s: float
    #: virtual time at which each step's polymer set completed
    step_finish_s: dict[int, float]
    counted_flops: float
    busy_time_s: float
    tasks: int
    #: tracer with per-worker task spans in virtual time (trace=True runs)
    tracer: object = None

    @property
    def nevals(self) -> int:
        """Number of force-evaluation steps (nsteps + 1)."""
        return len(self.step_finish_s)

    @property
    def flop_rate_pflops(self) -> float:
        """Counted-FLOP rate over the whole run (PFLOP/s)."""
        return self.counted_flops / self.total_time_s / 1.0e15

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker-seconds spent computing fragments."""
        return self.busy_time_s / (self.nworkers * self.total_time_s)

    def energy_megajoules(self, machine) -> float:
        """Energy-to-solution estimate from the machine's Green500-style
        efficiency (paper Sec. VII-C: Frontier 53, Perlmutter 27
        GFLOP/joule), applied to the counted FLOPs at the achieved
        fraction of peak."""
        return self.counted_flops / (machine.gflops_per_joule * 1.0e9) / 1.0e6

    def time_per_step(self) -> float:
        """Wall time per time step: total time over evaluation steps.

        With asynchronous stepping, consecutive steps overlap heavily
        (a step's last far-from-reference polymer may finish long after
        the next step started), so the only consistent per-step latency
        is the whole-run throughput — the paper's metric ('5 ps ... took
        3.16 hours for an average time step latency of 2.27 seconds').
        """
        return self.total_time_s / max(self.nevals, 1)


class ClusterSimulator:
    """Event-driven virtual machine executing coordinator tasks."""

    def __init__(
        self,
        machine: MachineSpec,
        nodes: int,
        cost_model: FragmentCostModel | None = None,
        gcds_per_worker: int = 1,
        tracer=None,
    ) -> None:
        self.machine = machine
        self.nodes = nodes
        self.cost = cost_model or FragmentCostModel()
        self.gcds_per_worker = gcds_per_worker
        self.nworkers = machine.total_gcds(nodes) // gcds_per_worker
        self.now = 0.0
        #: optional `repro.trace.Tracer`; construct it with
        #: ``clock=sim.clock, epoch=0.0`` so spans land in virtual time
        self.tracer = tracer

    def clock(self) -> float:
        """Virtual clock handed to the coordinator."""
        return self.now

    def run(self, coordinator: AsyncCoordinator) -> SimResult:
        """Execute the coordinator to completion in virtual time."""
        m = self.machine
        tracer = self.tracer
        # (time, seq, task, worker) completion events
        events: list[tuple[float, int, object, int]] = []
        seq = 0
        free_workers = list(range(self.nworkers - 1, -1, -1))
        coord_free = 0.0
        busy = 0.0
        counted = 0.0
        ntasks = 0

        def dispatch() -> None:
            nonlocal coord_free, seq, busy, counted, ntasks
            while free_workers:
                task = coordinator.next_task()
                if task is None:
                    break
                wid = free_workers.pop()
                ntasks += 1
                # serial super-coordinator service + message to the worker
                start_service = max(self.now, coord_free)
                coord_free = start_service + m.coordinator_service_s
                exec_start = coord_free + m.message_latency_s
                dur = self.cost.time_on(
                    task.nelectrons, m, ngcds=self.gcds_per_worker
                )
                busy += dur
                counted += self.cost.gemm_flops(task.nelectrons)
                if tracer:
                    tracer.complete(
                        "polymer.exec", exec_start, dur, cat="sim.worker",
                        tid=wid, step=task.step, key=str(task.key),
                        nelectrons=task.nelectrons,
                    )
                heapq.heappush(events, (exec_start + dur, seq, task, wid))
                seq += 1

        dispatch()
        while events:
            t, _, task, wid = heapq.heappop(events)
            self.now = t
            # result message back + coordinator bookkeeping
            coord_free = max(self.now, coord_free) + m.coordinator_service_s
            coordinator.complete(task, 0.0, None)
            free_workers.append(wid)
            dispatch()
        if not coordinator.done():
            raise RuntimeError(
                "cluster simulation deadlocked; " + coordinator.diagnostics()
            )
        return SimResult(
            machine=m.name,
            nodes=self.nodes,
            nworkers=self.nworkers,
            total_time_s=self.now,
            step_finish_s=dict(coordinator.step_finish_time),
            counted_flops=counted,
            busy_time_s=busy,
            tasks=ntasks,
            tracer=tracer,
        )


def simulate_aimd(
    system,
    machine: MachineSpec,
    nodes: int,
    nsteps: int,
    r_dimer_bohr: float,
    r_trimer_bohr: float | None,
    mbe_order: int = 3,
    synchronous: bool = False,
    replan_interval: int = 4,
    cost_model: FragmentCostModel | None = None,
    gcds_per_worker: int = 1,
    trace: bool = False,
) -> SimResult:
    """Convenience wrapper: build a stub-mode coordinator and simulate it.

    With ``trace=True`` a `repro.trace.Tracer` bound to the simulator's
    virtual clock records worker spans and scheduler counters; it is
    returned on ``SimResult.tracer``.
    """
    sim = ClusterSimulator(
        machine, nodes, cost_model=cost_model, gcds_per_worker=gcds_per_worker
    )
    tracer = None
    if trace:
        from ..trace import Tracer

        tracer = Tracer(clock=sim.clock, epoch=0.0)
        sim.tracer = tracer
    coordinator = AsyncCoordinator(
        system,
        nsteps=nsteps,
        dt_fs=1.0,
        r_dimer_bohr=r_dimer_bohr,
        r_trimer_bohr=r_trimer_bohr,
        mbe_order=mbe_order,
        temperature_k=0.0,
        synchronous=synchronous,
        replan_interval=replan_interval,
        clock=sim.clock,
        build_molecules=False,
        tracer=tracer,
    )
    return sim.run(coordinator)
