"""Discrete-event execution of an `AsyncCoordinator` on a modeled machine.

The simulator plays the role of the machine: it owns a virtual clock,
a pool of worker groups, the super-coordinator's serial service loop
and the interconnect latency, and drives the *real* coordinator state
machine (`repro.md.scheduler.AsyncCoordinator`) through it. Because the
coordinator is identical to the one used for real execution, the
scheduling behavior — priority sweeps, asynchronous step overlap, cap
dependencies, barriers in synchronous mode — is not modeled but
*executed*; only task durations come from the cost model.

Used for the paper's time-step latency (Sec. VII-A) and strong/weak
scaling (Figs. 7, 8) experiments. For timing studies the coordinator is
run in stub mode with zero temperature, so the geometry (and hence the
workload) is frozen — matching the paper's 3-step scaling measurements.

The simulated machine can also *fail*: given a
`repro.cluster.failures.NodeFailureModel`, virtual nodes die on seeded
uptime draws, taking their workers (and the tasks in flight on them)
down; lost tasks are replayed once the node recovers, exactly the
retry semantics of the real driver — completed results live in the
coordinator, which survives worker loss.  Coordinator-blocking
checkpoint writes at a fixed virtual-time interval and heterogeneous
node speed mixes (`NodeMix`) round out the failure-aware campaign
model; `SimResult` accounts failures, lost work, downtime, and
checkpoint overhead alongside the usual throughput numbers.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass, field

from ..md.scheduler import AsyncCoordinator
from .costmodel import FragmentCostModel
from .failures import NodeFailureModel, NodeMix
from .machine import MachineSpec


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    machine: str
    nodes: int
    nworkers: int
    total_time_s: float
    #: virtual time at which each step's polymer set completed
    step_finish_s: dict[int, float]
    counted_flops: float
    busy_time_s: float
    tasks: int
    #: tracer with per-worker task spans in virtual time (trace=True runs)
    tracer: object = None
    #: node failures that struck during the run
    failures: int = 0
    #: tasks killed by a node loss and re-executed
    replayed_tasks: int = 0
    #: worker-seconds of partially-finished work destroyed by failures
    lost_work_s: float = 0.0
    #: node-seconds spent down (outage + restart) across all failures
    node_downtime_s: float = 0.0
    #: coordinator-blocking checkpoint writes performed
    ckpt_writes: int = 0
    #: virtual seconds the coordinator spent writing checkpoints
    ckpt_overhead_s: float = 0.0
    #: per-node relative speeds actually used (heterogeneous mixes)
    node_speeds: list = field(default_factory=list)

    @property
    def nevals(self) -> int:
        """Number of force-evaluation steps (nsteps + 1)."""
        return len(self.step_finish_s)

    @property
    def flop_rate_pflops(self) -> float:
        """Counted-FLOP rate over the whole run (PFLOP/s)."""
        return self.counted_flops / self.total_time_s / 1.0e15

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker-seconds spent computing fragments."""
        return self.busy_time_s / (self.nworkers * self.total_time_s)

    def energy_megajoules(self, machine) -> float:
        """Energy-to-solution estimate from the machine's Green500-style
        efficiency (paper Sec. VII-C: Frontier 53, Perlmutter 27
        GFLOP/joule), applied to the counted FLOPs at the achieved
        fraction of peak."""
        return self.counted_flops / (machine.gflops_per_joule * 1.0e9) / 1.0e6

    def time_per_step(self) -> float:
        """Wall time per time step: total time over evaluation steps.

        With asynchronous stepping, consecutive steps overlap heavily
        (a step's last far-from-reference polymer may finish long after
        the next step started), so the only consistent per-step latency
        is the whole-run throughput — the paper's metric ('5 ps ... took
        3.16 hours for an average time step latency of 2.27 seconds').
        """
        return self.total_time_s / max(self.nevals, 1)


class ClusterSimulator:
    """Event-driven virtual machine executing coordinator tasks."""

    def __init__(
        self,
        machine: MachineSpec,
        nodes: int,
        cost_model: FragmentCostModel | None = None,
        gcds_per_worker: int = 1,
        tracer=None,
        failure_model: NodeFailureModel | None = None,
        failure_seed: int = 0,
        restart_cost_s: float = 30.0,
        downtime_s: float = 60.0,
        checkpoint_interval_s: float = 0.0,
        checkpoint_cost_s: float = 0.0,
        node_mix: NodeMix | None = None,
    ) -> None:
        self.machine = machine
        self.nodes = nodes
        self.cost = cost_model or FragmentCostModel()
        self.gcds_per_worker = gcds_per_worker
        self.nworkers = machine.total_gcds(nodes) // gcds_per_worker
        self.now = 0.0
        #: optional `repro.trace.Tracer`; construct it with
        #: ``clock=sim.clock, epoch=0.0`` so spans land in virtual time
        self.tracer = tracer
        #: per-node uptime draws; None runs the (unrealistic) machine
        #: that never fails, preserving prior behavior
        self.failure_model = failure_model
        self.failure_seed = failure_seed
        #: recovery cost once a failed node's outage ends (job relaunch,
        #: warm caches gone) before its workers rejoin the pool
        self.restart_cost_s = restart_cost_s
        #: outage duration of a failed node before recovery begins
        self.downtime_s = downtime_s
        #: coordinator-blocking checkpoint cadence in virtual seconds
        #: (0 disables); each write stalls the serial coordinator for
        #: ``checkpoint_cost_s``
        self.checkpoint_interval_s = checkpoint_interval_s
        self.checkpoint_cost_s = checkpoint_cost_s
        #: heterogeneous node speeds (see `NodeMix`); None = homogeneous
        self.node_mix = node_mix

    def clock(self) -> float:
        """Virtual clock handed to the coordinator."""
        return self.now

    def run(self, coordinator: AsyncCoordinator) -> SimResult:
        """Execute the coordinator to completion in virtual time.

        Event kinds: ``complete`` (a worker finished a task), ``fail``
        (a node's uptime draw expired: its workers leave the pool and
        their in-flight tasks are killed and queued for replay), and
        ``recover`` (a failed node's outage + restart elapsed: its
        workers rejoin and its next uptime is drawn).  Replayed tasks
        are dispatched ahead of fresh coordinator tasks — the same
        retry-first ordering the real driver uses.
        """
        m = self.machine
        tracer = self.tracer
        # (time, seq, kind, payload); seq breaks ties AND identifies
        # completion events for cancellation on node failure
        events: list[tuple[float, int, str, object]] = []
        seq = 0
        wpn = max(m.gcds_per_node // self.gcds_per_worker, 1)
        nnodes = self.nodes

        def node_of(wid: int) -> int:
            return min(wid // wpn, nnodes - 1)

        speeds = (
            self.node_mix.speeds(nnodes) if self.node_mix is not None
            else [1.0] * nnodes
        )
        node_up = [True] * nnodes
        free_workers = list(range(self.nworkers - 1, -1, -1))
        rng = random.Random(self.failure_seed)
        #: seq -> (task, wid, exec_start) for in-flight completions
        inflight: dict[int, tuple[object, int, float]] = {}
        cancelled: set[int] = set()
        replay: deque = deque()
        coord_free = 0.0
        busy = 0.0
        counted = 0.0
        ntasks = 0
        failures = 0
        replayed = 0
        lost = 0.0
        downtime_total = 0.0
        ckpt_writes = 0
        ckpt_overhead = 0.0
        next_ckpt = (
            self.checkpoint_interval_s
            if self.checkpoint_interval_s > 0 else None
        )

        def push(t: float, kind: str, payload) -> int:
            nonlocal seq
            fid = seq
            heapq.heappush(events, (t, fid, kind, payload))
            seq += 1
            return fid

        if self.failure_model is not None:
            for node in range(nnodes):
                push(self.failure_model.draw_uptime(rng), "fail", node)

        def service_checkpoints() -> None:
            """Coordinator-blocking checkpoint writes on their cadence."""
            nonlocal coord_free, next_ckpt, ckpt_writes, ckpt_overhead
            while next_ckpt is not None and max(self.now, coord_free) >= next_ckpt:
                coord_free = max(coord_free, next_ckpt) + self.checkpoint_cost_s
                ckpt_writes += 1
                ckpt_overhead += self.checkpoint_cost_s
                if tracer:
                    tracer.complete(
                        "checkpoint.write", coord_free - self.checkpoint_cost_s,
                        self.checkpoint_cost_s, cat="sim.coordinator",
                    )
                # cadence restarts when the write finishes: a cost larger
                # than the interval degrades throughput, never livelocks
                next_ckpt = (
                    max(next_ckpt, coord_free) + self.checkpoint_interval_s
                )

        def dispatch() -> None:
            nonlocal coord_free, busy, counted, ntasks
            while free_workers:
                if replay:
                    task = replay.popleft()
                else:
                    task = coordinator.next_task()
                    if task is None:
                        break
                wid = free_workers.pop()
                ntasks += 1
                service_checkpoints()
                # serial super-coordinator service + message to the worker
                start_service = max(self.now, coord_free)
                coord_free = start_service + m.coordinator_service_s
                exec_start = coord_free + m.message_latency_s
                dur = self.cost.time_on(
                    task.nelectrons, m, ngcds=self.gcds_per_worker
                ) / speeds[node_of(wid)]
                busy += dur
                counted += self.cost.gemm_flops(task.nelectrons)
                if tracer:
                    tracer.complete(
                        "polymer.exec", exec_start, dur, cat="sim.worker",
                        tid=wid, step=task.step, key=str(task.key),
                        nelectrons=task.nelectrons,
                    )
                fid = push(exec_start + dur, "complete", (task, wid))
                inflight[fid] = (task, wid, exec_start)

        def fail_node(node: int) -> None:
            nonlocal free_workers, failures, replayed, lost, downtime_total
            failures += 1
            node_up[node] = False
            free_workers = [w for w in free_workers if node_of(w) != node]
            for fid, (task, wid, exec_start) in list(inflight.items()):
                if node_of(wid) != node:
                    continue
                cancelled.add(fid)
                del inflight[fid]
                lost += max(self.now - exec_start, 0.0)
                replay.append(task)
                replayed += 1
            outage = self.downtime_s + self.restart_cost_s
            downtime_total += outage
            push(self.now + outage, "recover", node)
            if tracer:
                tracer.instant(
                    "sim.node_fail", cat="sim", node=node,
                    outage_s=outage,
                )

        def recover_node(node: int) -> None:
            node_up[node] = True
            # every worker of this node is free: its in-flight tasks
            # were cancelled at failure time
            free_workers.extend(
                w for w in range(node * wpn, (node + 1) * wpn)
                if w < self.nworkers
            )
            push(
                self.now + self.failure_model.draw_uptime(rng),
                "fail", node,
            )
            if tracer:
                tracer.instant("sim.node_recover", cat="sim", node=node)

        dispatch()
        while not coordinator.done():
            # a stuck coordinator must fail loudly, not spin through an
            # eternity of fail/recover events: with nothing in flight,
            # nothing to replay, every node up, and no releasable task,
            # no future event can make progress
            if not events or (
                not inflight and not replay and all(node_up)
                and not coordinator.has_ready_tasks()
            ):
                raise RuntimeError(
                    "cluster simulation deadlocked; "
                    + coordinator.diagnostics()
                )
            t, fid, kind, payload = heapq.heappop(events)
            if kind == "complete" and fid in cancelled:
                cancelled.discard(fid)
                continue
            self.now = t
            if kind == "complete":
                task, wid = payload
                inflight.pop(fid, None)
                # result message back + coordinator bookkeeping
                coord_free = max(self.now, coord_free) + m.coordinator_service_s
                coordinator.complete(task, 0.0, None)
                if node_up[node_of(wid)]:
                    free_workers.append(wid)
                dispatch()
            elif kind == "fail":
                fail_node(payload)
            else:
                recover_node(payload)
                dispatch()
        return SimResult(
            machine=m.name,
            nodes=self.nodes,
            nworkers=self.nworkers,
            total_time_s=self.now,
            step_finish_s=dict(coordinator.step_finish_time),
            counted_flops=counted,
            busy_time_s=busy,
            tasks=ntasks,
            tracer=tracer,
            failures=failures,
            replayed_tasks=replayed,
            lost_work_s=lost,
            node_downtime_s=downtime_total,
            ckpt_writes=ckpt_writes,
            ckpt_overhead_s=ckpt_overhead,
            node_speeds=speeds if self.node_mix is not None else [],
        )


def simulate_aimd(
    system,
    machine: MachineSpec,
    nodes: int,
    nsteps: int,
    r_dimer_bohr: float,
    r_trimer_bohr: float | None,
    mbe_order: int = 3,
    synchronous: bool = False,
    replan_interval: int = 4,
    cost_model: FragmentCostModel | None = None,
    gcds_per_worker: int = 1,
    trace: bool = False,
    failure_model: NodeFailureModel | None = None,
    failure_seed: int = 0,
    restart_cost_s: float = 30.0,
    downtime_s: float = 60.0,
    checkpoint_interval_s: float = 0.0,
    checkpoint_cost_s: float | None = None,
    node_mix: NodeMix | None = None,
) -> SimResult:
    """Convenience wrapper: build a stub-mode coordinator and simulate it.

    With ``trace=True`` a `repro.trace.Tracer` bound to the simulator's
    virtual clock records worker spans and scheduler counters; it is
    returned on ``SimResult.tracer``.

    ``failure_model`` turns on seeded node failures (see
    `repro.cluster.failures`); ``checkpoint_interval_s > 0`` adds
    coordinator-blocking checkpoint writes whose cost defaults to the
    cost model's `FragmentCostModel.checkpoint_cost_s` for the system's
    atom count.
    """
    cost = cost_model or FragmentCostModel()
    if checkpoint_cost_s is None:
        checkpoint_cost_s = (
            cost.checkpoint_cost_s(system.parent.natoms)
            if checkpoint_interval_s > 0 else 0.0
        )
    sim = ClusterSimulator(
        machine, nodes, cost_model=cost, gcds_per_worker=gcds_per_worker,
        failure_model=failure_model, failure_seed=failure_seed,
        restart_cost_s=restart_cost_s, downtime_s=downtime_s,
        checkpoint_interval_s=checkpoint_interval_s,
        checkpoint_cost_s=checkpoint_cost_s, node_mix=node_mix,
    )
    tracer = None
    if trace:
        from ..trace import Tracer

        tracer = Tracer(clock=sim.clock, epoch=0.0)
        sim.tracer = tracer
    coordinator = AsyncCoordinator(
        system,
        nsteps=nsteps,
        dt_fs=1.0,
        r_dimer_bohr=r_dimer_bohr,
        r_trimer_bohr=r_trimer_bohr,
        mbe_order=mbe_order,
        temperature_k=0.0,
        synchronous=synchronous,
        replan_interval=replan_interval,
        clock=sim.clock,
        build_molecules=False,
        tracer=tracer,
    )
    return sim.run(coordinator)
