"""Per-fragment computational cost model.

Assigns every polymer calculation a FLOP count split into the three
operation classes the paper discusses (near-peak GEMMs, FLOP-inefficient
integral kernels, eigensolvers), from which per-GCD execution times
follow via the machine's class efficiencies. The GEMM term can be
calibrated against the *measured* FLOP counter of the real engine
(`calibrate_gemm`), tying the simulator to the actual implementation.

Closed forms follow the RI-MP2 gradient algorithm structure with
``o = n_e/2``, ``nbf = bf_ratio * n_e``, ``naux = aux_ratio * nbf``:

* B-tensor build + metric application  ~ 2 nbf^2 naux^2
* MO transformation                    ~ 2 nbf^3 naux
* (ia|jb) + amplitude/Gamma work       ~ 8 (o v)^2 naux
* SCF Fock builds (RI, J+K)            ~ n_iter (2 nbf^3 naux + 4 nbf^2 naux)
* three-center integrals + derivatives ~ k_int nbf^2 naux      [integrals]
* SCF diagonalizations                 ~ 10 n_iter nbf^3       [eig]

The quintic-in-fragment-size GEMM terms dominate for large fragments
(paper Fig. 3 regime); for the small fragments AIMD prefers, the
integral and eigensolver classes take over, which is exactly why the
paper's small-fragment runs sit at 31-35% of peak while the big urea
runs reach 59%.
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import MachineSpec


@dataclass
class FragmentCostModel:
    """FLOP/time estimates for one polymer calculation."""

    #: basis functions per electron (cc-pVDZ-like: urea gives 76/32)
    bf_ratio: float = 2.4
    #: auxiliary functions per primary function (RIFIT-like)
    aux_ratio: float = 3.5
    scf_iterations: int = 12
    #: effective flops per three-center integral element (incl. derivs)
    k_int: float = 220.0
    #: global scale on the GEMM class (calibration knob)
    gemm_scale: float = 1.0
    #: effective parallel-filesystem bandwidth one checkpoint writer
    #: sees (GB/s) — Lustre/DAOS at exascale serve far more in
    #: aggregate, but the coordinator writes serially
    io_bandwidth_gbs: float = 2.0
    #: fixed per-checkpoint latency: metadata, fsync, rename (seconds)
    io_latency_s: float = 0.5

    def flops_by_class(self, nelectrons: int) -> dict[str, float]:
        """FLOPs per operation class for a fragment of ``nelectrons``."""
        ne = float(nelectrons)
        nbf = self.bf_ratio * ne
        naux = self.aux_ratio * nbf
        o = ne / 2.0
        v = max(nbf - o, 1.0)
        gemm = (
            2.0 * nbf**2 * naux**2
            + 2.0 * nbf**3 * naux
            + 8.0 * (o * v) ** 2 * naux
            + self.scf_iterations * (2.0 * nbf**3 * naux + 4.0 * nbf**2 * naux)
        ) * self.gemm_scale
        integrals = self.k_int * nbf**2 * naux
        eig = 10.0 * self.scf_iterations * nbf**3
        return {"gemm": gemm, "integrals": integrals, "eig": eig}

    def total_flops(self, nelectrons: int) -> float:
        """All-class FLOPs of one fragment calculation."""
        return sum(self.flops_by_class(nelectrons).values())

    def gemm_flops(self, nelectrons: int) -> float:
        """Counted FLOPs (the runtime counter only sees GEMMs)."""
        return self.flops_by_class(nelectrons)["gemm"]

    def time_on(self, nelectrons: int, machine: MachineSpec, ngcds: int = 1) -> float:
        """Execution time (seconds) of one fragment on ``ngcds`` GCDs."""
        fl = self.flops_by_class(nelectrons)
        peak = machine.gcd_peak_tflops * 1.0e12 * ngcds
        t = 0.0
        for cls, f in fl.items():
            t += f / (peak * machine.efficiency[cls])
        return t

    def memory_gb(self, nelectrons: int) -> float:
        """Three-center tensor footprint (the paper's per-GPU limit)."""
        nbf = self.bf_ratio * nelectrons
        naux = self.aux_ratio * nbf
        return nbf * nbf * naux * 8.0 / 1.0e9

    def checkpoint_cost_s(self, natoms: int) -> float:
        """Time to write one trajectory checkpoint for ``natoms`` atoms.

        Sized from the real format (`repro.md.checkpoint`): coordinates
        plus velocities in float64, a 50% allowance for the energy
        history, metadata, and checksum, through the serial-writer
        bandwidth above.  This is the ``delta`` of the Young-Daly
        analysis (`repro.cluster.failures`).
        """
        nbytes = natoms * 3 * 8 * 2 * 1.5
        return self.io_latency_s + nbytes / (self.io_bandwidth_gbs * 1.0e9)

    def achieved_fraction_of_peak(self, nelectrons: int, machine: MachineSpec) -> float:
        """Counted-FLOP rate / sustained peak for one fragment.

        Mirrors the paper's metric: the runtime counter sees only GEMM
        FLOPs, while wall time includes the inefficient classes, so the
        reported fraction rises with fragment size.
        """
        t = self.time_on(nelectrons, machine)
        rate = self.gemm_flops(nelectrons) / t
        return rate / (machine.gcd_peak_tflops * 1.0e12)


#: Cost model calibrated once against the paper's Table V anchor (63,854
#: urea molecules on 9,400 Frontier nodes: 25.6 min/step, 1006.7 PFLOP/s,
#: 59% of sustained peak). ``gemm_scale < 1`` reflects integral screening
#: and permutational symmetry the closed forms above ignore; ``k_int``
#: is the effective cost of three-center integrals *and* their
#: derivatives, including on-the-fly recomputation. All scaling figures
#: (Figs. 7, 8) and both Table V rows use this one calibration — nothing
#: else is fitted per experiment.
PAPER_CALIBRATED = FragmentCostModel(gemm_scale=0.777, k_int=4663.0)


def calibrate_gemm(
    model: FragmentCostModel, measured: list[tuple[int, float]]
) -> FragmentCostModel:
    """Scale the GEMM class so predictions match measured (counted) FLOPs.

    Args:
        measured: ``(nelectrons, counted_flops)`` pairs obtained from the
            real engine's `repro.gemm.GLOBAL_COUNTER`.

    Returns:
        A new model with ``gemm_scale`` set by least squares in log space.
    """
    import numpy as np

    if not measured:
        raise ValueError("need at least one measurement")
    ratios = [
        flops / model.gemm_flops(ne) for ne, flops in measured if flops > 0
    ]
    scale = float(np.exp(np.mean(np.log(ratios)))) * model.gemm_scale
    return FragmentCostModel(
        bf_ratio=model.bf_ratio,
        aux_ratio=model.aux_ratio,
        scf_iterations=model.scf_iterations,
        k_int=model.k_int,
        gemm_scale=scale,
    )
