"""Run-level observability: span/counter tracing with Chrome-trace export."""

from .tracer import DEFAULT_MAX_EVENTS, Tracer

__all__ = ["DEFAULT_MAX_EVENTS", "Tracer"]
