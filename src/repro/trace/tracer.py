"""Lightweight run-level tracing: spans, instants, and counters.

The production systems the paper targets (Frontier/Perlmutter job sizes)
live or die by observability — a stalled worker group or a mis-tuned
GEMM shape must be visible without re-running under a debugger. This
module provides the minimal instrumentation substrate the scheduler,
the execution drivers, the GEMM auto-tuner, and the cluster simulator
thread their events through:

* **spans** — named intervals (task round-trips, worker busy time);
* **instants** — point events (task release, retry, quarantine,
  auto-tune decision, step completion);
* **counters** — sampled series (queue depth, tasks in flight, step
  skew).

Events are buffered in memory and exportable as Chrome-trace JSON
(`chrome://tracing` / Perfetto ``traceEvents`` format) plus an aligned
summary table. The tracer is clock-agnostic: hand it
``clock=sim.clock, epoch=0.0`` and the discrete-event cluster simulator
records *virtual* time with the same code paths used for wall-clock
runs.

Instrumented code guards every emission with ``if tracer:`` so the
disabled path costs a single attribute check.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

#: Safety cap on buffered events; beyond it new events are counted but
#: dropped, so a runaway loop cannot exhaust memory through its tracer.
DEFAULT_MAX_EVENTS = 1_000_000


class Tracer:
    """In-memory trace event buffer with Chrome-trace export.

    Parameters
    ----------
    clock:
        Time source in seconds. Defaults to ``time.perf_counter``; the
        cluster simulator passes its virtual clock.
    epoch:
        Timestamp origin. Defaults to ``clock()`` at construction so
        wall-clock traces start near zero; pass ``0.0`` for virtual
        clocks that already start at zero.
    """

    def __init__(self, clock=time.perf_counter, epoch: float | None = None,
                 max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.clock = clock
        self.epoch = clock() if epoch is None else epoch
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _ts_us(self, t_s: float | None = None) -> float:
        t = self.clock() if t_s is None else t_s
        return (t - self.epoch) * 1.0e6

    def _emit(self, ev: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(ev)

    def complete(self, name: str, start_s: float, dur_s: float,
                 cat: str = "", tid: int = 0, **args) -> None:
        """Record a finished interval; times are in the tracer's clock."""
        self._emit({
            "name": name, "cat": cat, "ph": "X",
            "ts": self._ts_us(start_s), "dur": max(dur_s, 0.0) * 1.0e6,
            "pid": 0, "tid": tid, "args": args,
        })

    @contextmanager
    def span(self, name: str, cat: str = "", tid: int = 0, **args):
        """Context manager timing its body as a complete event."""
        start = self.clock()
        try:
            yield self
        finally:
            self.complete(name, start, self.clock() - start,
                          cat=cat, tid=tid, **args)

    def instant(self, name: str, cat: str = "", tid: int = 0, **args) -> None:
        """Record a point event (thread scope)."""
        self._emit({
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": self._ts_us(), "pid": 0, "tid": tid, "args": args,
        })

    def counter(self, name: str, value: float, cat: str = "") -> None:
        """Sample a counter series (rendered as a track in the viewer)."""
        self._emit({
            "name": name, "cat": cat, "ph": "C",
            "ts": self._ts_us(), "pid": 0, "tid": 0,
            "args": {"value": value},
        })

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """The Chrome-trace JSON object (``traceEvents`` format)."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def instants(self, name: str) -> list[dict]:
        """The arg dicts of every instant named ``name``, in order.

        Complements `aggregate_instants` when the individual events
        matter — e.g. pulling the per-call ``neglected_bound`` series
        out of ``int.screen`` events to check the screening error budget
        against a tolerance, where only the sum would hide one bad call.
        """
        return [
            dict(ev.get("args", {}))
            for ev in self.events
            if ev["ph"] == "i" and ev["name"] == name
        ]

    def aggregate_instants(self, name: str) -> tuple[int, dict[str, float]]:
        """Count instants named ``name`` and sum their numeric args.

        Booleans tally as 0/1, so e.g. ``scf.warm_start`` events with a
        ``hit`` flag aggregate directly into a hit count:

            count, sums = tracer.aggregate_instants("scf.warm_start")
            hit_rate = sums.get("hit", 0) / count

        Non-numeric args (strings such as fragment keys) are ignored.
        """
        count = 0
        sums: dict[str, float] = {}
        for ev in self.events:
            if ev["ph"] != "i" or ev["name"] != name:
                continue
            count += 1
            for k, v in ev.get("args", {}).items():
                if isinstance(v, (bool, int, float)):
                    sums[k] = sums.get(k, 0) + v
        return count, sums

    def summary(self) -> list[tuple[str, str, int, float, float, float]]:
        """Aggregate rows ``(kind, name, count, total_s, mean_s, max_s)``.

        Spans aggregate their durations; instants count occurrences;
        counters report (count, last, mean, max) of the sampled values.
        """
        spans: dict[str, list[float]] = {}
        instants: dict[str, int] = {}
        counters: dict[str, list[float]] = {}
        for ev in self.events:
            name = ev["name"]
            if ev["ph"] == "X":
                spans.setdefault(name, []).append(ev["dur"] / 1.0e6)
            elif ev["ph"] == "i":
                instants[name] = instants.get(name, 0) + 1
            elif ev["ph"] == "C":
                counters.setdefault(name, []).append(ev["args"]["value"])
        rows = []
        for name in sorted(spans):
            ds = spans[name]
            rows.append(("span", name, len(ds), sum(ds),
                         sum(ds) / len(ds), max(ds)))
        for name in sorted(instants):
            rows.append(("instant", name, instants[name], 0.0, 0.0, 0.0))
        for name in sorted(counters):
            vs = counters[name]
            rows.append(("counter", name, len(vs), vs[-1],
                         sum(vs) / len(vs), max(vs)))
        return rows

    def format_summary(self, title: str = "trace summary") -> str:
        """The summary as an aligned monospace table."""
        from ..analysis.report import format_table

        rows = []
        for kind, name, count, total, mean, peak in self.summary():
            if kind == "span":
                rows.append((kind, name, count, f"{total:.6f}",
                             f"{mean:.6f}", f"{peak:.6f}"))
            elif kind == "counter":
                rows.append((kind, name, count, f"{total:g}",
                             f"{mean:.3g}", f"{peak:g}"))
            else:
                rows.append((kind, name, count, "-", "-", "-"))
        return format_table(
            ["kind", "name", "count", "total_s|last", "mean", "max"],
            rows, title=title,
        )
