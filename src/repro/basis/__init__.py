"""Gaussian basis sets: shells, built-in data, auto-generated RI auxiliaries."""

from .auxiliary import auto_auxiliary, element_auxiliary_shells
from .basisset import BasisSet
from .data import element_shells
from .shell import Shell, double_factorial, primitive_norm

__all__ = [
    "BasisSet",
    "Shell",
    "auto_auxiliary",
    "double_factorial",
    "element_auxiliary_shells",
    "element_shells",
    "primitive_norm",
]
