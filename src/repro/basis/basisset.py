"""Molecular basis set: an ordered list of shells over a molecule."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..chem.molecule import Molecule
from .data import element_shells
from .shell import Shell


class BasisSet:
    """Ordered shells spanning a molecule, with function offsets.

    Attributes:
        shells: list of `Shell`.
        offsets: starting basis-function index of each shell.
        nbf: total number of (Cartesian) basis functions.
    """

    def __init__(self, shells: Iterable[Shell]) -> None:
        self.shells: list[Shell] = list(shells)
        self.offsets: list[int] = []
        n = 0
        for sh in self.shells:
            self.offsets.append(n)
            n += sh.nfunc
        self.nbf: int = n

    @classmethod
    def build(cls, mol: Molecule, basis: str = "sto-3g") -> "BasisSet":
        """Construct the basis for every atom of ``mol``."""
        shells: list[Shell] = []
        for iatom, sym in enumerate(mol.symbols):
            for l, exps, coefs in element_shells(sym, basis):
                shells.append(
                    Shell(l, mol.coords[iatom], np.array(exps), np.array(coefs), atom=iatom)
                )
        return cls(shells)

    @property
    def nshells(self) -> int:
        return len(self.shells)

    @property
    def max_l(self) -> int:
        return max(sh.l for sh in self.shells)

    def function_atoms(self) -> np.ndarray:
        """Owning atom index of every basis function, shape ``(nbf,)``."""
        out = np.empty(self.nbf, dtype=int)
        for sh, off in zip(self.shells, self.offsets):
            out[off : off + sh.nfunc] = sh.atom
        return out

    def __len__(self) -> int:
        return self.nshells

    def __repr__(self) -> str:
        return f"BasisSet(nshells={self.nshells}, nbf={self.nbf}, max_l={self.max_l})"
