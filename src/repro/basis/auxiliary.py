"""Automatic even-tempered auxiliary (RI fitting) basis generation.

The paper uses cc-pVDZ-RIFIT. We auto-generate a fitting basis from the
primary basis with the standard even-tempered-beta construction: products
of primary Gaussians on one atom have exponents in
``[2*alpha_min(l1)+..., 2*alpha_max]`` and angular momenta up to
``l1+l2``; we cover that range per angular momentum with a geometric
progression ``alpha_k = alpha_min * beta**k``. This is a simplification
of the Stoychev/Auer/Izsak "AutoAux" scheme and adapts to whatever
primary basis is in use, which is exactly the property the RI machinery
needs.
"""

from __future__ import annotations

import numpy as np

from ..chem.molecule import Molecule
from .basisset import BasisSet
from .data import element_shells
from .shell import Shell

DEFAULT_BETA = 2.5


def _primary_exponent_ranges(
    shell_data: list[tuple[int, list[float], list[float]]]
) -> dict[int, tuple[float, float]]:
    """Per-angular-momentum (min, max) primitive exponent of the primary."""
    ranges: dict[int, tuple[float, float]] = {}
    for l, exps, _ in shell_data:
        lo, hi = min(exps), max(exps)
        if l in ranges:
            plo, phi = ranges[l]
            ranges[l] = (min(lo, plo), max(hi, phi))
        else:
            ranges[l] = (lo, hi)
    return ranges


def element_auxiliary_shells(
    symbol: str, basis: str, beta: float = DEFAULT_BETA
) -> list[tuple[int, float]]:
    """Uncontracted auxiliary shells ``(l, exponent)`` for one element."""
    data = element_shells(symbol, basis)
    ranges = _primary_exponent_ranges(data)
    lmax_prim = max(ranges)
    shells: list[tuple[int, float]] = []
    for laux in range(2 * lmax_prim + 1):
        # Product exponent range for this auxiliary momentum: combine the
        # primary ranges of all (l1, l2) with l1 + l2 >= laux.
        lo = np.inf
        hi = 0.0
        for l1, (lo1, hi1) in ranges.items():
            for l2, (lo2, hi2) in ranges.items():
                if l1 + l2 < laux:
                    continue
                lo = min(lo, lo1 + lo2)
                hi = max(hi, hi1 + hi2)
        if not np.isfinite(lo):
            continue
        # Geometric ladder covering [lo, hi].
        n = max(1, int(np.ceil(np.log(hi / lo) / np.log(beta))) + 1)
        for k in range(n):
            shells.append((laux, lo * beta**k))
    return shells


def auto_auxiliary(
    mol: Molecule, basis: str = "sto-3g", beta: float = DEFAULT_BETA
) -> BasisSet:
    """Even-tempered auxiliary basis for RI fitting over ``mol``."""
    cache: dict[str, list[tuple[int, float]]] = {}
    shells: list[Shell] = []
    for iatom, sym in enumerate(mol.symbols):
        if sym not in cache:
            cache[sym] = element_auxiliary_shells(sym, basis, beta=beta)
        for l, exp in cache[sym]:
            shells.append(
                Shell(l, mol.coords[iatom], np.array([exp]), np.array([1.0]), atom=iatom)
            )
    return BasisSet(shells)
