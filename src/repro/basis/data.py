"""Built-in basis-set data.

Two family definitions are embedded:

* ``sto-3g`` — the standard minimal STO-3G basis, constructed from the
  universal STO-3G least-squares Gaussian fit coefficients with the Pople
  Slater exponents (zeta) per element. The fit coefficients and relative
  exponents are universal; element exponents are ``zeta**2 * scale``.
* ``repro-dz`` — a split-valence double-zeta basis built from the same
  STO-3G fits by representing each *valence* atomic orbital with two
  contracted functions at ``1.25 zeta`` and ``0.75 zeta`` (inner/outer
  split). This stands in for cc-pVDZ (see DESIGN.md): it exercises the
  identical code paths with DZ-sized tensors while using only
  public-domain universal fit data.
* ``repro-dzp`` — ``repro-dz`` plus a single polarization shell
  (d on heavy atoms, p on hydrogen).

Raw data layout: relative exponent scales and contraction coefficients of
the STO-3G fits to 1s, 2s, 2p Slater functions.
"""

from __future__ import annotations

# Universal STO-3G expansion of Slater 1s/2s/2p in 3 Gaussians
# (exponent scale factors multiply zeta**2).
STO3G_1S_SCALES = (2.227660584, 0.405771156, 0.109818)
STO3G_1S_COEFS = (0.154328967, 0.535328142, 0.444634542)

STO3G_2SP_SCALES = (0.994203, 0.231031, 0.0751386)
STO3G_2S_COEFS = (-0.099967230, 0.399512826, 0.700115469)
STO3G_2P_COEFS = (0.155916275, 0.607683719, 0.391957393)

# Pople Slater exponents (zeta) for the first rows.
ZETA_1S = {"H": 1.24, "He": 1.69, "Li": 2.69, "Be": 3.68, "B": 4.68,
           "C": 5.67, "N": 6.67, "O": 7.66, "F": 8.65, "Ne": 9.64,
           "Na": 10.61, "Mg": 11.59, "P": 14.558, "S": 15.541, "Cl": 16.524}
ZETA_2SP = {"Li": 0.80, "Be": 1.15, "B": 1.50, "C": 1.72, "N": 1.95,
            "O": 2.25, "F": 2.55, "Ne": 2.88}
# Note: the canonical Pople STO-3G uses zeta2sp(C)=1.625 etc.; we adopt the
# Clementi-Raimondi-style values above, which is immaterial for the
# reproduction (self-consistent basis across all experiments).
ZETA_2SP_POPLE = {"Li": 0.650, "Be": 0.975, "B": 1.300, "C": 1.625,
                  "N": 1.950, "O": 2.275, "F": 2.600, "Ne": 2.925}

# Polarization exponents (single Gaussian), loosely standard values.
POLARIZATION_D = {"C": 0.80, "N": 0.90, "O": 1.00, "F": 1.10}
POLARIZATION_P_H = 1.10

# Split factors defining the double-zeta variants of each valence AO.
DZ_INNER = 1.25
DZ_OUTER = 0.75
# ... and the triple-zeta variants.
TZ_SPLITS = (1.45, 1.0, 0.65)

#: Elements with only a 1s shell.
ROW1 = ("H", "He")
#: Elements with 1s core and 2s2p valence (treated as such here).
ROW2 = ("Li", "Be", "B", "C", "N", "O", "F", "Ne")


def scaled(scales: tuple[float, ...], zeta: float) -> list[float]:
    """Exponents for a Slater-fit shell with given zeta."""
    z2 = zeta * zeta
    return [s * z2 for s in scales]


def sto3g_shells(symbol: str) -> list[tuple[int, list[float], list[float]]]:
    """STO-3G shells for one element: list of (l, exps, coefs)."""
    if symbol in ROW1:
        return [(0, scaled(STO3G_1S_SCALES, ZETA_1S[symbol]), list(STO3G_1S_COEFS))]
    if symbol in ROW2:
        z1 = ZETA_1S[symbol]
        z2 = ZETA_2SP_POPLE[symbol]
        return [
            (0, scaled(STO3G_1S_SCALES, z1), list(STO3G_1S_COEFS)),
            (0, scaled(STO3G_2SP_SCALES, z2), list(STO3G_2S_COEFS)),
            (1, scaled(STO3G_2SP_SCALES, z2), list(STO3G_2P_COEFS)),
        ]
    raise KeyError(f"sto-3g data not available for element {symbol!r}")


def dz_shells(symbol: str, polarized: bool = False) -> list[tuple[int, list[float], list[float]]]:
    """repro-dz / repro-dzp shells for one element."""
    shells: list[tuple[int, list[float], list[float]]] = []
    if symbol in ROW1:
        z = ZETA_1S[symbol]
        for f in (DZ_INNER, DZ_OUTER):
            shells.append((0, scaled(STO3G_1S_SCALES, z * f), list(STO3G_1S_COEFS)))
        if polarized:
            shells.append((1, [POLARIZATION_P_H], [1.0]))
        return shells
    if symbol in ROW2:
        z1 = ZETA_1S[symbol]
        z2 = ZETA_2SP_POPLE[symbol]
        shells.append((0, scaled(STO3G_1S_SCALES, z1), list(STO3G_1S_COEFS)))
        for f in (DZ_INNER, DZ_OUTER):
            shells.append((0, scaled(STO3G_2SP_SCALES, z2 * f), list(STO3G_2S_COEFS)))
            shells.append((1, scaled(STO3G_2SP_SCALES, z2 * f), list(STO3G_2P_COEFS)))
        if polarized and symbol in POLARIZATION_D:
            shells.append((2, [POLARIZATION_D[symbol]], [1.0]))
        return shells
    raise KeyError(f"repro-dz data not available for element {symbol!r}")


def tz_shells(symbol: str, polarized: bool = False) -> list[tuple[int, list[float], list[float]]]:
    """repro-tz(p) shells: triple-zeta valence split of the same fits."""
    shells: list[tuple[int, list[float], list[float]]] = []
    if symbol in ROW1:
        z = ZETA_1S[symbol]
        for f in TZ_SPLITS:
            shells.append((0, scaled(STO3G_1S_SCALES, z * f), list(STO3G_1S_COEFS)))
        if polarized:
            shells.append((1, [POLARIZATION_P_H], [1.0]))
        return shells
    if symbol in ROW2:
        z1 = ZETA_1S[symbol]
        z2 = ZETA_2SP_POPLE[symbol]
        shells.append((0, scaled(STO3G_1S_SCALES, z1), list(STO3G_1S_COEFS)))
        for f in TZ_SPLITS:
            shells.append((0, scaled(STO3G_2SP_SCALES, z2 * f), list(STO3G_2S_COEFS)))
            shells.append((1, scaled(STO3G_2SP_SCALES, z2 * f), list(STO3G_2P_COEFS)))
        if polarized and symbol in POLARIZATION_D:
            shells.append((2, [POLARIZATION_D[symbol]], [1.0]))
        return shells
    raise KeyError(f"repro-tz data not available for element {symbol!r}")


def element_shells(symbol: str, basis: str) -> list[tuple[int, list[float], list[float]]]:
    """Dispatch basis-name -> per-element shell data."""
    name = basis.lower()
    if name == "sto-3g":
        return sto3g_shells(symbol)
    if name == "repro-dz":
        return dz_shells(symbol, polarized=False)
    if name == "repro-dzp":
        return dz_shells(symbol, polarized=True)
    if name == "repro-tz":
        return tz_shells(symbol, polarized=False)
    if name == "repro-tzp":
        return tz_shells(symbol, polarized=True)
    raise KeyError(f"unknown basis set {basis!r}")
