"""Contracted Gaussian shells and their normalization."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..integrals.hermite import cartesian_components, ncart


def double_factorial(n: int) -> float:
    """(n)!! with (-1)!! = (0)!! = 1."""
    if n <= 0:
        return 1.0
    out = 1.0
    while n > 1:
        out *= n
        n -= 2
    return out


def primitive_norm(alpha: float, l: int) -> float:
    """Normalization of the (l,0,0) Cartesian primitive Gaussian."""
    return (
        (2.0 * alpha / np.pi) ** 0.75
        * (4.0 * alpha) ** (l / 2.0)
        / np.sqrt(double_factorial(2 * l - 1))
    )


@dataclass
class Shell:
    """One contracted Cartesian Gaussian shell.

    ``coefs`` already include primitive norms for the (l,0,0) component
    and the overall contraction normalization, so integral kernels work
    with *unnormalized* Cartesian primitives and simply contract with
    ``coefs``. ``comp_norms[c]`` is the extra factor for Cartesian
    component ``c`` relative to (l,0,0).
    """

    l: int
    center: np.ndarray
    exps: np.ndarray
    coefs: np.ndarray
    atom: int = 0
    comp_norms: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.center = np.asarray(self.center, dtype=float).reshape(3)
        self.exps = np.asarray(self.exps, dtype=float).ravel()
        raw = np.asarray(self.coefs, dtype=float).ravel()
        if raw.shape != self.exps.shape:
            raise ValueError("exps and coefs must have the same length")
        # Bake in primitive norms, then normalize the contraction so the
        # (l,0,0) component has unit self-overlap.
        c = raw * np.array([primitive_norm(a, self.l) for a in self.exps])
        l = self.l
        df = double_factorial(2 * l - 1)
        ab = self.exps[:, None] + self.exps[None, :]
        s_pair = (np.pi / ab) ** 1.5 * df / (2.0 * ab) ** l
        norm2 = float(c @ s_pair @ c)
        self.coefs = c / np.sqrt(norm2)
        self.comp_norms = np.array(
            [
                np.sqrt(
                    df
                    / (
                        double_factorial(2 * lx - 1)
                        * double_factorial(2 * ly - 1)
                        * double_factorial(2 * lz - 1)
                    )
                )
                for lx, ly, lz in cartesian_components(l)
            ]
        )

    @property
    def nprim(self) -> int:
        return len(self.exps)

    @property
    def nfunc(self) -> int:
        """Number of (Cartesian) basis functions carried by this shell."""
        return ncart(self.l)

    @property
    def components(self) -> list[tuple[int, int, int]]:
        return cartesian_components(self.l)

    def at(self, center: np.ndarray, atom: int) -> "Shell":
        """Copy of this shell placed on a different center/atom."""
        s = Shell.__new__(Shell)
        s.l = self.l
        s.center = np.asarray(center, dtype=float).reshape(3).copy()
        s.exps = self.exps
        s.coefs = self.coefs
        s.atom = atom
        s.comp_norms = self.comp_norms
        return s
