"""Molecular structures, elements and geometry utilities."""

from .bonds import bond_graph, connected_components, detect_bonds
from .elements import Element, atomic_mass, atomic_number, covalent_radius, element
from .geometry import (
    centroid_distance,
    min_interatomic_distance,
    pairwise_distances,
    rotated,
    rotation_matrix,
    sphere_cut,
)
from .molecule import Molecule
from .xyz import format_xyz, load_xyz, parse_xyz, save_xyz

__all__ = [
    "Element",
    "Molecule",
    "atomic_mass",
    "atomic_number",
    "bond_graph",
    "centroid_distance",
    "connected_components",
    "covalent_radius",
    "detect_bonds",
    "element",
    "format_xyz",
    "load_xyz",
    "min_interatomic_distance",
    "pairwise_distances",
    "parse_xyz",
    "rotated",
    "rotation_matrix",
    "save_xyz",
    "sphere_cut",
]
