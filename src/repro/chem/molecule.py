"""Molecular structure container.

`Molecule` is the central immutable-ish data structure passed between the
integrals engine, the SCF/MP2 solvers, the fragmentation layer and the MD
driver. Coordinates are stored in **Bohr**; constructors accepting
Angstrom are provided because crystallographic and PDB-style data come in
Angstrom.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..constants import BOHR_PER_ANGSTROM, ELECTRON_MASS_PER_AMU
from .elements import atomic_mass, atomic_number, element


class Molecule:
    """A collection of atoms with nuclear charges and Cartesian coordinates.

    Attributes:
        symbols: tuple of element symbols, length ``natoms``.
        coords: ``(natoms, 3)`` float array, Bohr.
        charge: total molecular charge (integer).
        multiplicity: spin multiplicity 2S+1 (the engine is restricted
            closed-shell, so only 1 is accepted by the solvers).
        frag_key: optional MBE fragment identity (tuple of monomer
            indices), set by `FragmentedSystem.fragment_molecule` so
            calculators can key per-fragment caches (SCF warm starts)
            off the molecule they receive. None for whole molecules.
    """

    __slots__ = ("symbols", "coords", "charge", "multiplicity", "frag_key")

    def __init__(
        self,
        symbols: Sequence[str],
        coords_bohr: np.ndarray | Sequence[Sequence[float]],
        charge: int = 0,
        multiplicity: int = 1,
    ) -> None:
        self.symbols: tuple[str, ...] = tuple(
            element(s).symbol for s in symbols
        )
        coords = np.asarray(coords_bohr, dtype=float).reshape(len(self.symbols), 3)
        self.coords: np.ndarray = coords.copy()
        self.charge = int(charge)
        self.multiplicity = int(multiplicity)
        self.frag_key: tuple[int, ...] | None = None

    # --- constructors -----------------------------------------------------
    @classmethod
    def from_angstrom(
        cls,
        symbols: Sequence[str],
        coords_angstrom: np.ndarray | Sequence[Sequence[float]],
        charge: int = 0,
        multiplicity: int = 1,
    ) -> "Molecule":
        """Build a molecule from coordinates given in Angstrom."""
        coords = np.asarray(coords_angstrom, dtype=float) * BOHR_PER_ANGSTROM
        return cls(symbols, coords, charge=charge, multiplicity=multiplicity)

    @classmethod
    def concatenate(cls, parts: Iterable["Molecule"]) -> "Molecule":
        """Union of several molecules (used to form dimers/trimers)."""
        parts = list(parts)
        if not parts:
            raise ValueError("cannot concatenate zero molecules")
        symbols: list[str] = []
        blocks: list[np.ndarray] = []
        charge = 0
        for p in parts:
            symbols.extend(p.symbols)
            blocks.append(p.coords)
            charge += p.charge
        return cls(symbols, np.vstack(blocks), charge=charge)

    # --- basic properties ---------------------------------------------------
    @property
    def natoms(self) -> int:
        return len(self.symbols)

    @property
    def atomic_numbers(self) -> np.ndarray:
        """Integer nuclear charges Z, shape ``(natoms,)``."""
        return np.array([atomic_number(s) for s in self.symbols], dtype=int)

    @property
    def nelectrons(self) -> int:
        """Number of electrons: sum(Z) - charge."""
        return int(self.atomic_numbers.sum()) - self.charge

    @property
    def masses_amu(self) -> np.ndarray:
        """Atomic masses in Dalton, shape ``(natoms,)``."""
        return np.array([atomic_mass(s) for s in self.symbols], dtype=float)

    @property
    def masses_au(self) -> np.ndarray:
        """Atomic masses in electron masses (atomic units)."""
        return self.masses_amu * ELECTRON_MASS_PER_AMU

    # --- geometry -----------------------------------------------------------
    def centroid(self) -> np.ndarray:
        """Unweighted centroid of the nuclear positions, Bohr."""
        return self.coords.mean(axis=0)

    def center_of_mass(self) -> np.ndarray:
        """Mass-weighted centre, Bohr."""
        m = self.masses_amu
        return (self.coords * m[:, None]).sum(axis=0) / m.sum()

    def nuclear_repulsion(self) -> float:
        """Classical nucleus-nucleus Coulomb repulsion energy, Hartree."""
        z = self.atomic_numbers.astype(float)
        e = 0.0
        for i in range(self.natoms):
            rij = np.linalg.norm(self.coords[i + 1 :] - self.coords[i], axis=1)
            e += float(np.sum(z[i] * z[i + 1 :] / rij))
        return e

    def nuclear_repulsion_gradient(self) -> np.ndarray:
        """Gradient of the nuclear repulsion, shape ``(natoms, 3)``, Ha/Bohr."""
        z = self.atomic_numbers.astype(float)
        grad = np.zeros_like(self.coords)
        for i in range(self.natoms):
            for j in range(i + 1, self.natoms):
                rvec = self.coords[i] - self.coords[j]
                r = np.linalg.norm(rvec)
                g = -z[i] * z[j] / r**3 * rvec
                grad[i] += g
                grad[j] -= g
        return grad

    def distance(self, i: int, j: int) -> float:
        """Internuclear distance between atoms *i* and *j*, Bohr."""
        return float(np.linalg.norm(self.coords[i] - self.coords[j]))

    def translated(self, shift_bohr: np.ndarray) -> "Molecule":
        """Return a copy translated by ``shift_bohr`` (length-3, Bohr)."""
        return Molecule(
            self.symbols,
            self.coords + np.asarray(shift_bohr, dtype=float),
            charge=self.charge,
            multiplicity=self.multiplicity,
        )

    def with_coords(self, coords_bohr: np.ndarray) -> "Molecule":
        """Return a copy with replaced coordinates (same atoms/charge)."""
        return Molecule(
            self.symbols, coords_bohr, charge=self.charge,
            multiplicity=self.multiplicity,
        )

    # --- misc ----------------------------------------------------------------
    def formula(self) -> str:
        """Hill-ordered empirical formula, e.g. ``"C2H6O"``."""
        counts: dict[str, int] = {}
        for s in self.symbols:
            counts[s] = counts.get(s, 0) + 1
        order = []
        if "C" in counts:
            order.append("C")
            if "H" in counts:
                order.append("H")
            order.extend(sorted(k for k in counts if k not in ("C", "H")))
        else:
            order.extend(sorted(counts))
        return "".join(
            f"{s}{counts[s]}" if counts[s] > 1 else s for s in order
        )

    def __len__(self) -> int:
        return self.natoms

    def __repr__(self) -> str:
        return (
            f"Molecule({self.formula()}, natoms={self.natoms}, "
            f"charge={self.charge}, nelectrons={self.nelectrons})"
        )
