"""XYZ-format reading and writing (coordinates in Angstrom on disk)."""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..constants import ANGSTROM_PER_BOHR
from .molecule import Molecule


def parse_xyz(text: str, charge: int = 0) -> Molecule:
    """Parse a single XYZ block (count line, comment line, atom lines)."""
    lines = [ln for ln in text.strip().splitlines()]
    if len(lines) < 2:
        raise ValueError("XYZ text too short")
    try:
        n = int(lines[0].split()[0])
    except (ValueError, IndexError):
        raise ValueError(f"bad XYZ count line: {lines[0]!r}") from None
    atom_lines = lines[2 : 2 + n]
    if len(atom_lines) != n:
        raise ValueError(f"expected {n} atom lines, found {len(atom_lines)}")
    symbols: list[str] = []
    coords: list[list[float]] = []
    for ln in atom_lines:
        parts = ln.split()
        if len(parts) < 4:
            raise ValueError(f"bad XYZ atom line: {ln!r}")
        symbols.append(parts[0])
        coords.append([float(x) for x in parts[1:4]])
    return Molecule.from_angstrom(symbols, np.array(coords), charge=charge)


def load_xyz(path: str | Path, charge: int = 0) -> Molecule:
    """Read a molecule from an ``.xyz`` file."""
    return parse_xyz(Path(path).read_text(), charge=charge)


def format_xyz(mol: Molecule, comment: str = "") -> str:
    """Serialize a molecule as XYZ text (Angstrom)."""
    buf = io.StringIO()
    buf.write(f"{mol.natoms}\n{comment}\n")
    ang = mol.coords * ANGSTROM_PER_BOHR
    for sym, (x, y, z) in zip(mol.symbols, ang):
        buf.write(f"{sym:<3s} {x:18.10f} {y:18.10f} {z:18.10f}\n")
    return buf.getvalue()


def save_xyz(mol: Molecule, path: str | Path, comment: str = "") -> None:
    """Write a molecule to an ``.xyz`` file."""
    Path(path).write_text(format_xyz(mol, comment=comment))
