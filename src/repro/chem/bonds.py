"""Covalent bond detection.

Fragmentation across covalent bonds requires knowing the bond graph so
hydrogen caps can be placed (paper Sec. V-B). Bonds are detected with the
standard covalent-radius criterion: atoms *i*, *j* are bonded when

    r_ij < scale * (R_cov(i) + R_cov(j))

with ``scale = 1.2`` by default.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..constants import BOHR_PER_ANGSTROM
from .elements import covalent_radius
from .molecule import Molecule

DEFAULT_BOND_SCALE = 1.2


def detect_bonds(mol: Molecule, scale: float = DEFAULT_BOND_SCALE) -> list[tuple[int, int]]:
    """Return the list of bonded atom index pairs ``(i, j)`` with ``i < j``."""
    radii_bohr = np.array(
        [covalent_radius(s) * BOHR_PER_ANGSTROM for s in mol.symbols]
    )
    bonds: list[tuple[int, int]] = []
    coords = mol.coords
    for i in range(mol.natoms):
        d = np.linalg.norm(coords[i + 1 :] - coords[i], axis=1)
        cutoff = scale * (radii_bohr[i] + radii_bohr[i + 1 :])
        for off in np.nonzero(d < cutoff)[0]:
            bonds.append((i, i + 1 + int(off)))
    return bonds


def bond_graph(mol: Molecule, scale: float = DEFAULT_BOND_SCALE) -> nx.Graph:
    """Bond connectivity as a networkx graph with atom indices as nodes."""
    g = nx.Graph()
    g.add_nodes_from(range(mol.natoms))
    g.add_edges_from(detect_bonds(mol, scale=scale))
    return g


def connected_components(mol: Molecule, scale: float = DEFAULT_BOND_SCALE) -> list[list[int]]:
    """Atom-index groups of covalently connected sub-molecules."""
    g = bond_graph(mol, scale=scale)
    return [sorted(c) for c in nx.connected_components(g)]
