"""Geometric utilities shared by fragmentation and system builders."""

from __future__ import annotations

import numpy as np

from .molecule import Molecule


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense pairwise Euclidean distance matrix for ``(n, 3)`` points."""
    pts = np.asarray(points, dtype=float)
    diff = pts[:, None, :] - pts[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def min_interatomic_distance(a: Molecule, b: Molecule) -> float:
    """Smallest atom-atom distance between two molecules, Bohr."""
    diff = a.coords[:, None, :] - b.coords[None, :, :]
    d2 = np.einsum("ijk,ijk->ij", diff, diff)
    return float(np.sqrt(d2.min()))


def centroid_distance(a: Molecule, b: Molecule) -> float:
    """Distance between unweighted centroids, Bohr."""
    return float(np.linalg.norm(a.centroid() - b.centroid()))


def rotation_matrix(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation matrix about ``axis`` by ``angle`` radians."""
    axis = np.asarray(axis, dtype=float)
    axis = axis / np.linalg.norm(axis)
    kx, ky, kz = axis
    K = np.array([[0.0, -kz, ky], [kz, 0.0, -kx], [-ky, kx, 0.0]])
    return np.eye(3) + np.sin(angle) * K + (1.0 - np.cos(angle)) * (K @ K)


def rotated(mol: Molecule, axis: np.ndarray, angle: float,
            about: np.ndarray | None = None) -> Molecule:
    """Return ``mol`` rotated about a point (default its centroid)."""
    pivot = mol.centroid() if about is None else np.asarray(about, float)
    R = rotation_matrix(axis, angle)
    return mol.with_coords((mol.coords - pivot) @ R.T + pivot)


def sphere_cut(points: np.ndarray, center: np.ndarray, radius: float) -> np.ndarray:
    """Boolean mask of points within ``radius`` of ``center``."""
    pts = np.asarray(points, dtype=float)
    return np.linalg.norm(pts - np.asarray(center, float), axis=1) <= radius
