"""Periodic-table data for the elements used by the benchmark systems.

Covalent radii (Å) follow Cordero et al. (2008); masses are standard
atomic weights in Dalton. Only main-group elements through Ar are needed
for urea, paracetamol, glycine, water and the protein-fibril mimics, but
the table extends through Kr for generality.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Element:
    """Static per-element data.

    Attributes:
        symbol: IUPAC symbol, e.g. ``"C"``.
        number: atomic number Z.
        mass: standard atomic weight in Dalton.
        covalent_radius: covalent radius in Angstrom.
    """

    symbol: str
    number: int
    mass: float
    covalent_radius: float


_ELEMENT_TABLE: tuple[tuple[str, int, float, float], ...] = (
    ("H", 1, 1.00794, 0.31),
    ("He", 2, 4.002602, 0.28),
    ("Li", 3, 6.941, 1.28),
    ("Be", 4, 9.012182, 0.96),
    ("B", 5, 10.811, 0.84),
    ("C", 6, 12.0107, 0.76),
    ("N", 7, 14.0067, 0.71),
    ("O", 8, 15.9994, 0.66),
    ("F", 9, 18.9984032, 0.57),
    ("Ne", 10, 20.1797, 0.58),
    ("Na", 11, 22.98976928, 1.66),
    ("Mg", 12, 24.3050, 1.41),
    ("Al", 13, 26.9815386, 1.21),
    ("Si", 14, 28.0855, 1.11),
    ("P", 15, 30.973762, 1.07),
    ("S", 16, 32.065, 1.05),
    ("Cl", 17, 35.453, 1.02),
    ("Ar", 18, 39.948, 1.06),
    ("K", 19, 39.0983, 2.03),
    ("Ca", 20, 40.078, 1.76),
    ("Br", 35, 79.904, 1.20),
    ("Kr", 36, 83.798, 1.16),
)

ELEMENTS: dict[str, Element] = {
    sym: Element(sym, z, m, r) for sym, z, m, r in _ELEMENT_TABLE
}
ELEMENTS_BY_NUMBER: dict[int, Element] = {e.number: e for e in ELEMENTS.values()}


def element(key: str | int) -> Element:
    """Look up an element by symbol (case-insensitive) or atomic number."""
    if isinstance(key, int):
        try:
            return ELEMENTS_BY_NUMBER[key]
        except KeyError:
            raise KeyError(f"no element with atomic number {key}") from None
    norm = key.strip().capitalize()
    try:
        return ELEMENTS[norm]
    except KeyError:
        raise KeyError(f"unknown element symbol {key!r}") from None


def atomic_number(symbol: str) -> int:
    """Atomic number Z for an element symbol."""
    return element(symbol).number


def atomic_mass(symbol: str) -> float:
    """Standard atomic weight (Dalton) for an element symbol."""
    return element(symbol).mass


def covalent_radius(symbol: str) -> float:
    """Covalent radius in Angstrom for an element symbol."""
    return element(symbol).covalent_radius
