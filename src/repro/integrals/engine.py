"""Batched shell-pair machinery for McMurchie-Davidson integrals.

The integral drivers (`onee`, `eri`) are built on three primitives:

* `pair_data` / `single_data` — per-primitive-pair Hermite expansion
  tables ``E[n, dim, i, j, t]`` plus composite exponents/centers.
* `w_tensor` — the per-pair Cartesian-component expansion tensor
  ``W[n, A, B, t, u, v]`` obtained by gathering E tables for the actual
  component powers of the shell pair.
* `w_deriv` — the same tensor differentiated with respect to a bra or
  ket *center* coordinate via the exact distribution identity

      d/dA_x Omega_ij = 2a Omega_{i+1,j} - i Omega_{i-1,j},

  which turns every integral derivative into integrals of shifted
  angular momentum (no derivative Hermite kernels needed; operator-center
  derivatives follow from translational invariance in the callers).

Everything is vectorized over primitive pairs; Python loops only run
over shells, which keeps laptop-scale molecules fast without any
compiled extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..basis.shell import Shell
from .boys import boys_array
from .hermite import cartesian_components


def e_tables_batch(
    imax: int, jmax: int, AB: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Hermite E tables for a batch of primitive pairs, all three dims.

    Args:
        imax, jmax: maximum powers (including any derivative headroom).
        AB: separation ``A - B``; either a 3-vector shared by every
            primitive pair, or per-pair separations of shape ``(n, 3)``
            (the shell-class kernels batch across shell pairs).
        a, b: exponent arrays of shape ``(n,)``. ``b`` may be all zeros
            for single-Gaussian (auxiliary) expansions.

    Returns:
        ``E`` of shape ``(n, 3, imax+1, jmax+1, imax+jmax+1)``.
    """
    AB = np.asarray(AB, dtype=float)
    n = a.shape[0]
    p = a + b
    q = a * b / p
    tmax = imax + jmax
    E = np.zeros((n, 3, imax + 1, jmax + 1, tmax + 1))
    inv2p = 1.0 / (2.0 * p)
    for dim in range(3):
        # Scalar separation multiplies through unchanged; the per-pair
        # variant runs the same IEEE ops elementwise, so shared-AB
        # results are bitwise independent of which form the caller used.
        Q = float(AB[dim]) if AB.ndim == 1 else AB[:, dim]
        Ed = E[:, dim]
        Ed[:, 0, 0, 0] = np.exp(-q * Q * Q)
        Xpa = -(b / p) * Q
        Xpb = (a / p) * Q
        for i in range(imax):
            for t in range(i + 1):
                val = Xpa * Ed[:, i, 0, t]
                if t > 0:
                    val = val + inv2p * Ed[:, i, 0, t - 1]
                if t + 1 <= i:
                    val = val + (t + 1) * Ed[:, i, 0, t + 1]
                Ed[:, i + 1, 0, t] = val
            Ed[:, i + 1, 0, i + 1] = inv2p * Ed[:, i, 0, i]
        for i in range(imax + 1):
            for j in range(jmax):
                for t in range(i + j + 1):
                    val = Xpb * Ed[:, i, j, t]
                    if t > 0:
                        val = val + inv2p * Ed[:, i, j, t - 1]
                    if t + 1 <= i + j:
                        val = val + (t + 1) * Ed[:, i, j, t + 1]
                    Ed[:, i, j + 1, t] = val
                Ed[:, i, j + 1, i + j + 1] = inv2p * Ed[:, i, j, i + j]
    return E


#: cap on the Hermite-Coulomb recursion scratch tensor: empirically the
#: sweet spot across box sizes — larger falls out of last-level cache,
#: smaller wastes the fixed per-call recursion overhead
_R_SCRATCH_BYTES = 16 << 20


def r_tables_batch(
    tmax: int, umax: int, vmax: int, p: np.ndarray, PQ: np.ndarray
) -> np.ndarray:
    """Hermite Coulomb tensors ``R^0_{tuv}`` for a batch.

    Args:
        tmax, umax, vmax: per-dimension Hermite orders.
        p: composite exponents, shape ``(n,)``.
        PQ: composite center separations, shape ``(n, 3)``.

    Returns:
        ``R`` of shape ``(n, tmax+1, umax+1, vmax+1)``.

    The scratch tensor keeps the batch axis *last* so every slice the
    downward recursion reads or writes is contiguous, and batches are
    split so the scratch stays cache-resident. Both are pure layout
    choices: every operation is elementwise along the batch axis, so
    the returned values are bitwise independent of them.
    """
    n = p.shape[0]
    nmax = tmax + umax + vmax
    per_item = (nmax + 1) * (tmax + 1) * (umax + 1) * (vmax + 1) * 8
    chunk = max(64, _R_SCRATCH_BYTES // per_item)
    if n > chunk:
        out = np.empty((n, tmax + 1, umax + 1, vmax + 1))
        for lo in range(0, n, chunk):
            hi = lo + chunk
            out[lo:hi] = r_tables_batch(tmax, umax, vmax, p[lo:hi], PQ[lo:hi])
        return out
    T = p * np.einsum("ni,ni->n", PQ, PQ)
    F = boys_array(nmax, T)  # (n, nmax+1)
    # empty, not zeros: level m of the recursion only ever reads entries
    # written at level m+1, and every entry the caller sees (level 0) is
    # written unconditionally
    Rn = np.empty((nmax + 1, tmax + 1, umax + 1, vmax + 1, n))
    scale = np.ones(n)
    for m in range(nmax + 1):
        Rn[m, 0, 0, 0] = scale * F[:, m]
        scale = scale * (-2.0 * p)
    x = PQ[:, 0][None, :]
    y = PQ[:, 1][None, :]
    z = PQ[:, 2][None, :]
    for total in range(1, nmax + 1):
        hi = nmax - total + 1  # recursion fills orders [0, hi) at this level
        for t in range(min(total, tmax) + 1):
            for u in range(min(total - t, umax) + 1):
                v = total - t - u
                if v < 0 or v > vmax:
                    continue
                if t > 0:
                    val = x * Rn[1 : hi + 1, t - 1, u, v]
                    if t > 1:
                        val = val + (t - 1) * Rn[1 : hi + 1, t - 2, u, v]
                elif u > 0:
                    val = y * Rn[1 : hi + 1, t, u - 1, v]
                    if u > 1:
                        val = val + (u - 1) * Rn[1 : hi + 1, t, u - 2, v]
                else:
                    val = z * Rn[1 : hi + 1, t, u, v - 1]
                    if v > 1:
                        val = val + (v - 1) * Rn[1 : hi + 1, t, u, v - 2]
                Rn[0:hi, t, u, v] = val
    return np.ascontiguousarray(Rn[0].transpose(3, 0, 1, 2))


@dataclass
class PairData:
    """Primitive-pair expansion data for one shell pair."""

    sha: Shell
    shb: Shell
    a: np.ndarray  # (n,) bra exponents
    b: np.ndarray  # (n,) ket exponents (zeros for single expansions)
    cc: np.ndarray  # (n,) contraction coefficient products
    p: np.ndarray  # (n,) composite exponents
    P: np.ndarray  # (n, 3) composite centers
    E: np.ndarray  # (n, 3, imax+1, jmax+1, tmax+1)
    imax: int
    jmax: int

    @property
    def nprim(self) -> int:
        return self.a.shape[0]


def pair_data(sha: Shell, shb: Shell, di: int = 0, dj: int = 0) -> PairData:
    """Expansion tables for a genuine two-shell pair.

    ``di``/``dj`` request extra angular-momentum headroom on the bra/ket
    side for derivative integrals.
    """
    a = np.repeat(sha.exps, shb.nprim)
    b = np.tile(shb.exps, sha.nprim)
    cc = np.repeat(sha.coefs, shb.nprim) * np.tile(shb.coefs, sha.nprim)
    p = a + b
    P = (a[:, None] * sha.center[None, :] + b[:, None] * shb.center[None, :]) / p[:, None]
    AB = sha.center - shb.center
    imax = sha.l + di
    jmax = shb.l + dj
    E = e_tables_batch(imax, jmax, AB, a, b)
    return PairData(sha, shb, a, b, cc, p, P, E, imax, jmax)


def single_data(sh: Shell, di: int = 0) -> PairData:
    """Expansion tables for a single shell (RI auxiliary function).

    Treated as a pair with a dummy ``b = 0`` partner on the same center,
    under which the E recursion reduces to the single-Gaussian Hermite
    expansion.
    """
    a = sh.exps.copy()
    b = np.zeros_like(a)
    cc = sh.coefs.copy()
    p = a.copy()
    P = np.repeat(sh.center[None, :], len(a), axis=0)
    imax = sh.l + di
    E = e_tables_batch(imax, 0, np.zeros(3), a, b)
    return PairData(sh, sh, a, b, cc, p, P, E, imax, 0)


def canonical_shell_pairs(basis) -> list[tuple[int, int]]:
    """THE canonical bra shell-pair enumeration: ``(i, j)`` with
    ``i <= j``, lexicographic.

    Every pair-driven driver (Schwarz, `eri3c`, the 3c/4c derivative
    contractions, the shell-class partition) must enumerate pairs
    through this one function: screening bookkeeping accumulates
    neglected bounds *in pair order*, so two drivers disagreeing on the
    order (or worse, the set) of pairs would silently desynchronize the
    accounting from the blocks actually skipped.
    """
    nsh = basis.nshells
    return [(i, j) for i in range(nsh) for j in range(i, nsh)]


@lru_cache(maxsize=None)
def comp_arrays(l: int) -> np.ndarray:
    """Cartesian component power array, shape ``(ncart(l), 3)``.

    Memoized: every shell loop in the integral drivers asks for the same
    handful of momenta. The cached array is marked read-only so an
    accidental in-place edit fails loudly instead of corrupting every
    future caller.
    """
    arr = np.array(cartesian_components(l), dtype=int)
    arr.setflags(write=False)
    return arr


@dataclass
class AuxGroup:
    """A batch of single-primitive auxiliary shells sharing one angular
    momentum, packed so the whole group is processed as one 'ket' with
    the per-shell index riding along the primitive axis.

    Attributes:
        l: common angular momentum.
        pd: PairData whose primitive axis enumerates the member shells.
        atoms: owning atom per member shell, shape (m,).
        offsets: basis-function offset of each member shell, shape (m,).
        comp_norms: per-component normalization (ncart(l),).
    """

    l: int
    pd: PairData
    atoms: np.ndarray
    offsets: np.ndarray
    comp_norms: np.ndarray


def aux_group_data(aux, di: int = 0) -> list[AuxGroup]:
    """Group an auxiliary basis's shells by angular momentum.

    Every shell must be single-primitive (true for the auto-generated
    even-tempered fitting bases). ``di`` adds derivative headroom.
    """
    by_l: dict[int, list[int]] = {}
    for idx, sh in enumerate(aux.shells):
        if sh.nprim != 1:
            raise ValueError("aux grouping requires single-primitive shells")
        by_l.setdefault(sh.l, []).append(idx)
    groups = []
    for l, idxs in sorted(by_l.items()):
        shells = [aux.shells[i] for i in idxs]
        a = np.array([sh.exps[0] for sh in shells])
        b = np.zeros_like(a)
        cc = np.array([sh.coefs[0] for sh in shells])
        P = np.array([sh.center for sh in shells])
        imax = l + di
        E = e_tables_batch(imax, 0, np.zeros(3), a, b)
        pd = PairData(shells[0], shells[0], a, b, cc, a.copy(), P, E, imax, 0)
        groups.append(
            AuxGroup(
                l=l,
                pd=pd,
                atoms=np.array([sh.atom for sh in shells]),
                offsets=np.array([aux.offsets[i] for i in idxs]),
                comp_norms=shells[0].comp_norms,
            )
        )
    return groups


def w_tensor(pd: PairData, ca: np.ndarray, cb: np.ndarray, tbox: tuple[int, int, int]) -> np.ndarray:
    """Component expansion tensor ``W[n, A, B, t, u, v]``.

    Args:
        pd: pair data with E tables covering the requested powers.
        ca, cb: component power arrays for bra and ket, shapes (A,3), (B,3).
        tbox: inclusive per-dimension Hermite maxima (tx, ty, tz).
    """
    Gs = []
    for dim in range(3):
        # (n, A, B, T)
        G = pd.E[:, dim][:, ca[:, None, dim], cb[None, :, dim], : tbox[dim] + 1]
        Gs.append(G)
    return np.einsum("nabt,nabu,nabv->nabtuv", Gs[0], Gs[1], Gs[2])


def w_deriv(
    pd: PairData,
    ca: np.ndarray,
    cb: np.ndarray,
    tbox: tuple[int, int, int],
    side: str,
    axis: int,
) -> np.ndarray:
    """``d/dX_axis`` of `w_tensor`, where X is the bra (``side='bra'``) or
    ket (``side='ket'``) shell center.

    Requires the pair data to have been built with one extra unit of
    angular momentum headroom on the differentiated side.
    """
    Gs = []
    for dim in range(3):
        ia = ca[:, None, dim]
        jb = cb[None, :, dim]
        T = tbox[dim] + 1
        if dim == axis:
            if side == "bra":
                up = pd.E[:, dim][:, ia + 1, jb, :T]
                lo_idx = np.maximum(ia - 1, 0)
                lo = pd.E[:, dim][:, lo_idx, jb, :T]
                G = 2.0 * pd.a[:, None, None, None] * up - ia[None, :, :, None] * lo
            elif side == "ket":
                up = pd.E[:, dim][:, ia, jb + 1, :T]
                lo_idx = np.maximum(jb - 1, 0)
                lo = pd.E[:, dim][:, ia, lo_idx, :T]
                G = 2.0 * pd.b[:, None, None, None] * up - jb[None, :, :, None] * lo
            else:
                raise ValueError(f"side must be 'bra' or 'ket', got {side!r}")
        else:
            G = pd.E[:, dim][:, ia, jb, :T]
        Gs.append(G)
    return np.einsum("nabt,nabu,nabv->nabtuv", Gs[0], Gs[1], Gs[2])


@lru_cache(maxsize=None)
def hermite_box(tbox: tuple[int, int, int]) -> np.ndarray:
    """All (t, u, v) triples of the inclusive box, shape (nT, 3), C-order.

    Memoized (read-only result): the distinct boxes in a run are the few
    angular-momentum sums of the basis, re-requested per shell pair.
    """
    tx, ty, tz = tbox
    t, u, v = np.meshgrid(
        np.arange(tx + 1), np.arange(ty + 1), np.arange(tz + 1), indexing="ij"
    )
    box = np.stack([t.ravel(), u.ravel(), v.ravel()], axis=1)
    box.setflags(write=False)
    return box
