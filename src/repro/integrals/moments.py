"""Multipole (dipole) integrals over contracted Gaussians.

Dipole matrix elements decompose per dimension through the Hermite
E-tables: with the bra-centered coordinate ``x = (x - A_x) + A_x``,

    <a| x |b> = S_{i+1, j} + A_x S_{i, j}

where ``S_{ij} = E_0^{ij} sqrt(pi/p)`` is the 1D overlap with raised
bra power — the same raise/lower machinery the derivative engine uses.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..basis.basisset import BasisSet
    from ..chem.molecule import Molecule
from .engine import comp_arrays, pair_data
from .onee import _pair_norms


def dipole_integrals(basis: BasisSet, origin: np.ndarray | None = None) -> np.ndarray:
    """Dipole-moment integrals ``<mu| r - origin |nu>``.

    Returns shape ``(3, nbf, nbf)`` (Bohr). ``origin`` defaults to the
    coordinate origin.
    """
    if origin is None:
        origin = np.zeros(3)
    origin = np.asarray(origin, dtype=float)
    n = basis.nbf
    out = np.zeros((3, n, n))
    for ish, sha in enumerate(basis.shells):
        oa = basis.offsets[ish]
        ca = comp_arrays(sha.l)
        for jsh in range(ish, basis.nshells):
            shb = basis.shells[jsh]
            ob = basis.offsets[jsh]
            cb = comp_arrays(shb.l)
            pd = pair_data(sha, shb, 1, 0)  # bra raised by one
            pref = pd.cc * (np.pi / pd.p) ** 1.5
            norms = _pair_norms(sha, shb)
            for axis in range(3):
                s_dims = []
                m_dim = None
                for dim in range(3):
                    E = pd.E[:, dim]
                    i_d = ca[:, None, dim]
                    j_d = cb[None, :, dim]
                    s = E[:, i_d, j_d, 0]
                    if dim == axis:
                        raised = E[:, i_d + 1, j_d, 0]
                        m_dim = raised + (sha.center[axis] - origin[axis]) * s
                    s_dims.append(s)
                prod = m_dim
                for dim in range(3):
                    if dim != axis:
                        prod = prod * s_dims[dim]
                blk = np.einsum("n,nab->ab", pref, prod) * norms
                out[axis, oa : oa + sha.nfunc, ob : ob + shb.nfunc] = blk
                out[axis, ob : ob + shb.nfunc, oa : oa + sha.nfunc] = blk.T
    return out


def nuclear_dipole(mol: Molecule, origin: np.ndarray | None = None) -> np.ndarray:
    """Nuclear contribution ``sum_A Z_A (R_A - origin)`` (Bohr * e)."""
    if origin is None:
        origin = np.zeros(3)
    z = mol.atomic_numbers.astype(float)
    return (z[:, None] * (mol.coords - np.asarray(origin))).sum(axis=0)
