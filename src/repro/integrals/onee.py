"""One-electron integrals: overlap, kinetic, nuclear attraction.

Dense matrices plus *contracted derivative* drivers that accumulate
``sum_{mu nu} X_{mu nu} d(integral)/d(atom coordinates)`` directly into a
``(natoms, 3)`` gradient, mirroring the paper's design where integral
derivatives are consumed on the fly and never stored (Sec. V-E).
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..basis.basisset import BasisSet
    from ..chem.molecule import Molecule
from .engine import (
    comp_arrays,
    pair_data,
    r_tables_batch,
    w_deriv,
    w_tensor,
)

if TYPE_CHECKING:
    from .workspace import IntegralWorkspace

_SQ = np.pi**1.5


def _pair_norms(sha, shb) -> np.ndarray:
    return np.outer(sha.comp_norms, shb.comp_norms)


def _pd(workspace, sha, shb, di: int, dj: int):
    """Pair tables from the workspace (unified headroom) or fresh.

    The cached tables carry ``(di=1, dj=2)`` headroom, a superset of what
    every one-electron driver needs, and their shared entries are bitwise
    identical to a minimal build.
    """
    if workspace is not None:
        return workspace.pair_data(sha, shb)
    return pair_data(sha, shb, di, dj)


def overlap(
    basis: BasisSet, workspace: IntegralWorkspace | None = None
) -> np.ndarray:
    """Overlap matrix S, shape ``(nbf, nbf)``.

    Dispatches on the active kernel mode (`repro.integrals.batch`); the
    batched default is bitwise-identical to `overlap_loop`.
    """
    from .batch import overlap_batched, use_batched

    if use_batched():
        return overlap_batched(basis, workspace=workspace)
    return overlap_loop(basis, workspace=workspace)


def overlap_loop(
    basis: BasisSet, workspace: IntegralWorkspace | None = None
) -> np.ndarray:
    """Reference per-pair overlap driver (see `overlap`)."""
    n = basis.nbf
    S = np.zeros((n, n))
    for ish, sha in enumerate(basis.shells):
        oa = basis.offsets[ish]
        ca = comp_arrays(sha.l)
        for jsh in range(ish, basis.nshells):
            shb = basis.shells[jsh]
            ob = basis.offsets[jsh]
            cb = comp_arrays(shb.l)
            pd = _pd(workspace, sha, shb, 0, 0)
            W = w_tensor(pd, ca, cb, (0, 0, 0))[:, :, :, 0, 0, 0]
            pref = pd.cc * (np.pi / pd.p) ** 1.5
            blk = np.einsum("n,nab->ab", pref, W) * _pair_norms(sha, shb)
            S[oa : oa + sha.nfunc, ob : ob + shb.nfunc] = blk
            S[ob : ob + shb.nfunc, oa : oa + sha.nfunc] = blk.T
    return S


def _kinetic_block(pd, ca, cb) -> np.ndarray:
    """Kinetic-energy block for one shell pair.

    Uses the 1D relation
    ``K_ij = -1/2 [ j(j-1) S_{i,j-2} - 2b(2j+1) S_{ij} + 4 b^2 S_{i,j+2} ]``
    where ``S_ij = E_0^{ij}`` (the common ``(pi/p)^{3/2}`` is applied once).
    Requires pair data with ``dj >= 2`` headroom.
    """
    b = pd.b
    Svals = []  # per-dim (n, A, B) overlap 1D factors
    Kvals = []
    for dim in range(3):
        ia = ca[:, None, dim]
        jb = cb[None, :, dim]
        E = pd.E[:, dim]
        s = E[:, ia, jb, 0]
        jm2 = np.maximum(jb - 2, 0)
        s_m2 = E[:, ia, jm2, 0]
        s_p2 = E[:, ia, jb + 2, 0]
        k = -0.5 * (
            (jb * (jb - 1))[None] * s_m2
            - 2.0 * b[:, None, None] * (2 * jb + 1)[None] * s
            + 4.0 * b[:, None, None] ** 2 * s_p2
        )
        Svals.append(s)
        Kvals.append(k)
    tot = (
        Kvals[0] * Svals[1] * Svals[2]
        + Svals[0] * Kvals[1] * Svals[2]
        + Svals[0] * Svals[1] * Kvals[2]
    )
    pref = pd.cc * (np.pi / pd.p) ** 1.5
    return np.einsum("n,nab->ab", pref, tot)


def kinetic(
    basis: BasisSet, workspace: IntegralWorkspace | None = None
) -> np.ndarray:
    """Kinetic-energy matrix T, shape ``(nbf, nbf)``.

    Dispatches on the active kernel mode (`repro.integrals.batch`); the
    batched default is bitwise-identical to `kinetic_loop`.
    """
    from .batch import kinetic_batched, use_batched

    if use_batched():
        return kinetic_batched(basis, workspace=workspace)
    return kinetic_loop(basis, workspace=workspace)


def kinetic_loop(
    basis: BasisSet, workspace: IntegralWorkspace | None = None
) -> np.ndarray:
    """Reference per-pair kinetic-energy driver (see `kinetic`)."""
    n = basis.nbf
    T = np.zeros((n, n))
    for ish, sha in enumerate(basis.shells):
        oa = basis.offsets[ish]
        ca = comp_arrays(sha.l)
        for jsh in range(ish, basis.nshells):
            shb = basis.shells[jsh]
            ob = basis.offsets[jsh]
            cb = comp_arrays(shb.l)
            pd = _pd(workspace, sha, shb, 0, 2)
            blk = _kinetic_block(pd, ca, cb) * _pair_norms(sha, shb)
            T[oa : oa + sha.nfunc, ob : ob + shb.nfunc] = blk
            T[ob : ob + shb.nfunc, oa : oa + sha.nfunc] = blk.T
    return T


def _nuclear_R(pd, tbox, centers: np.ndarray) -> np.ndarray:
    """R tensors for all (primitive pair, nucleus) combos.

    Returns shape ``(nC, n, nT)`` with nT the flattened Hermite box.
    """
    nC = centers.shape[0]
    n = pd.nprim
    p_rep = np.tile(pd.p, nC)
    PQ = (pd.P[None, :, :] - centers[:, None, :]).reshape(nC * n, 3)
    R = r_tables_batch(tbox[0], tbox[1], tbox[2], p_rep, PQ)
    return R.reshape(nC, n, -1)


def nuclear(
    basis: BasisSet, mol: Molecule,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """Nuclear-attraction matrix V (negative definite), shape ``(nbf, nbf)``.

    Dispatches on the active kernel mode (`repro.integrals.batch`). The
    batched kernel uses a fixed (batch-size-invariant) contraction path,
    agreeing with `nuclear_loop` to tight tolerance but not bitwise (the
    loop driver's ``optimize=True`` einsum path is shape-dependent).
    """
    from .batch import nuclear_batched, use_batched

    if use_batched():
        return nuclear_batched(basis, mol, workspace=workspace)
    return nuclear_loop(basis, mol, workspace=workspace)


def nuclear_loop(
    basis: BasisSet, mol: Molecule,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """Reference per-pair nuclear-attraction driver (see `nuclear`)."""
    n = basis.nbf
    V = np.zeros((n, n))
    Z = mol.atomic_numbers.astype(float)
    centers = mol.coords
    for ish, sha in enumerate(basis.shells):
        oa = basis.offsets[ish]
        ca = comp_arrays(sha.l)
        for jsh in range(ish, basis.nshells):
            shb = basis.shells[jsh]
            ob = basis.offsets[jsh]
            cb = comp_arrays(shb.l)
            pd = _pd(workspace, sha, shb, 0, 0)
            L = sha.l + shb.l
            tbox = (L, L, L)
            W = w_tensor(pd, ca, cb, tbox)
            Wf = W.reshape(pd.nprim, sha.nfunc * shb.nfunc, -1)
            R = _nuclear_R(pd, tbox, centers)  # (nC, n, nT)
            pref = pd.cc * (2.0 * np.pi / pd.p)
            blk = -np.einsum("c,cnt,n,nxt->x", Z, R, pref, Wf, optimize=True)
            blk = blk.reshape(sha.nfunc, shb.nfunc) * _pair_norms(sha, shb)
            V[oa : oa + sha.nfunc, ob : ob + shb.nfunc] = blk
            V[ob : ob + shb.nfunc, oa : oa + sha.nfunc] = blk.T
    return V


def hcore(
    basis: BasisSet, mol: Molecule,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """Core Hamiltonian h = T + V."""
    return kinetic(basis, workspace) + nuclear(basis, mol, workspace)


# --------------------------------------------------------------------------
# Contracted derivatives
# --------------------------------------------------------------------------

def contract_overlap_deriv(
    basis: BasisSet, X: np.ndarray,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """``g[atom, xyz] = sum_{mu nu} X_{mu nu} dS_{mu nu}/d(atom, xyz)``.

    Loops over all ordered shell pairs; uses translational invariance
    (``dS/dB = -dS/dA``) so only bra derivatives are computed.

    Dispatches on the active kernel mode (`repro.integrals.batch`); the
    batched default is bitwise-identical to `contract_overlap_deriv_loop`.
    """
    from .batch import contract_overlap_deriv_batched, use_batched

    if use_batched():
        return contract_overlap_deriv_batched(basis, X, workspace=workspace)
    return contract_overlap_deriv_loop(basis, X, workspace=workspace)


def contract_overlap_deriv_loop(
    basis: BasisSet, X: np.ndarray,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """Reference per-pair overlap-derivative driver."""
    natoms = int(max(sh.atom for sh in basis.shells)) + 1
    g = np.zeros((natoms, 3))
    Xs = X + X.T  # S^xi is symmetric; fold the ish<jsh restriction in
    for ish, sha in enumerate(basis.shells):
        oa = basis.offsets[ish]
        ca = comp_arrays(sha.l)
        for jsh in range(ish + 1, basis.nshells):
            shb = basis.shells[jsh]
            if sha.atom == shb.atom:
                continue  # derivative vanishes by invariance
            ob = basis.offsets[jsh]
            cb = comp_arrays(shb.l)
            pd = _pd(workspace, sha, shb, 1, 0)
            pref = pd.cc * (np.pi / pd.p) ** 1.5
            Xblk = Xs[oa : oa + sha.nfunc, ob : ob + shb.nfunc] * _pair_norms(sha, shb)
            for axis in range(3):
                dW = w_deriv(pd, ca, cb, (0, 0, 0), "bra", axis)[:, :, :, 0, 0, 0]
                val = float(np.einsum("n,nab,ab->", pref, dW, Xblk))
                g[sha.atom, axis] += val
                g[shb.atom, axis] -= val
    return g


def contract_kinetic_deriv(
    basis: BasisSet, X: np.ndarray,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """``sum X_{mu nu} dT_{mu nu}/dR`` via bra-side differentiation.

    Dispatches on the active kernel mode (`repro.integrals.batch`); the
    batched default is bitwise-identical to `contract_kinetic_deriv_loop`.
    """
    from .batch import contract_kinetic_deriv_batched, use_batched

    if use_batched():
        return contract_kinetic_deriv_batched(basis, X, workspace=workspace)
    return contract_kinetic_deriv_loop(basis, X, workspace=workspace)


def contract_kinetic_deriv_loop(
    basis: BasisSet, X: np.ndarray,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """Reference per-pair kinetic-derivative driver."""
    natoms = int(max(sh.atom for sh in basis.shells)) + 1
    g = np.zeros((natoms, 3))
    Xs = X + X.T  # T^xi is symmetric: halve the pair loop
    for ish, sha in enumerate(basis.shells):
        oa = basis.offsets[ish]
        ca = comp_arrays(sha.l)
        for jsh in range(ish + 1, basis.nshells):
            shb = basis.shells[jsh]
            if sha.atom == shb.atom:
                continue
            ob = basis.offsets[jsh]
            cb = comp_arrays(shb.l)
            pd = _pd(workspace, sha, shb, 1, 2)
            Xblk = Xs[oa : oa + sha.nfunc, ob : ob + shb.nfunc] * _pair_norms(sha, shb)
            for axis in range(3):
                blk = _kinetic_deriv_block(pd, ca, cb, axis)
                val = float(np.einsum("ab,ab->", blk, Xblk))
                g[sha.atom, axis] += val
                g[shb.atom, axis] -= val
    return g


def _kinetic_deriv_block(pd, ca, cb, axis) -> np.ndarray:
    """Bra-center derivative of the kinetic block along ``axis``."""
    b = pd.b
    Svals = []
    Kvals = []
    for dim in range(3):
        E = pd.E[:, dim]
        ia = ca[:, None, dim]
        jb = cb[None, :, dim]
        if dim == axis:
            # Differentiate the bra index: f(i) -> 2a f(i+1) - i f(i-1)
            a = pd.a[:, None, None]
            iam = np.maximum(ia - 1, 0)
            s = 2.0 * a * E[:, ia + 1, jb, 0] - ia[None] * E[:, iam, jb, 0]
            jm2 = np.maximum(jb - 2, 0)
            s_m2 = 2.0 * a * E[:, ia + 1, jm2, 0] - ia[None] * E[:, iam, jm2, 0]
            s_p2 = 2.0 * a * E[:, ia + 1, jb + 2, 0] - ia[None] * E[:, iam, jb + 2, 0]
        else:
            s = E[:, ia, jb, 0]
            jm2 = np.maximum(jb - 2, 0)
            s_m2 = E[:, ia, jm2, 0]
            s_p2 = E[:, ia, jb + 2, 0]
        k = -0.5 * (
            (jb * (jb - 1))[None] * s_m2
            - 2.0 * b[:, None, None] * (2 * jb + 1)[None] * s
            + 4.0 * b[:, None, None] ** 2 * s_p2
        )
        Svals.append(s)
        Kvals.append(k)
    tot = (
        Kvals[0] * Svals[1] * Svals[2]
        + Svals[0] * Kvals[1] * Svals[2]
        + Svals[0] * Svals[1] * Kvals[2]
    )
    pref = pd.cc * (np.pi / pd.p) ** 1.5
    return np.einsum("n,nab->ab", pref, tot)


def contract_nuclear_deriv(
    basis: BasisSet, mol: Molecule, X: np.ndarray,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """``sum X_{mu nu} dV_{mu nu}/dR`` including operator-center terms.

    Bra/ket derivatives come from the angular-momentum shift; the
    derivative with respect to each nuclear position C follows from
    translational invariance of each C term:
    ``dV_C/dC = -(dV_C/dA + dV_C/dB)``.

    Dispatches on the active kernel mode (`repro.integrals.batch`). Like
    `nuclear`, the batched kernel matches `contract_nuclear_deriv_loop`
    to tight tolerance but not bitwise (the loop's ``optimize=True``
    einsum path is shape-dependent); the per-pair accumulation order is
    still replayed exactly.
    """
    from .batch import contract_nuclear_deriv_batched, use_batched

    if use_batched():
        return contract_nuclear_deriv_batched(basis, mol, X, workspace=workspace)
    return contract_nuclear_deriv_loop(basis, mol, X, workspace=workspace)


def contract_nuclear_deriv_loop(
    basis: BasisSet, mol: Molecule, X: np.ndarray,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """Reference per-pair nuclear-derivative driver."""
    natoms = mol.natoms
    g = np.zeros((natoms, 3))
    Z = mol.atomic_numbers.astype(float)
    centers = mol.coords
    Xs = X + X.T  # V^xi is symmetric: halve the pair loop
    for ish, sha in enumerate(basis.shells):
        oa = basis.offsets[ish]
        ca = comp_arrays(sha.l)
        for jsh in range(ish, basis.nshells):
            shb = basis.shells[jsh]
            ob = basis.offsets[jsh]
            cb = comp_arrays(shb.l)
            pd = _pd(workspace, sha, shb, 1, 1)
            L = sha.l + shb.l + 1
            tbox = (L, L, L)
            R = _nuclear_R(pd, tbox, centers)  # (nC, n, nT)
            pref = pd.cc * (2.0 * np.pi / pd.p)
            Xsrc = Xs if ish != jsh else X
            Xblk = Xsrc[oa : oa + sha.nfunc, ob : ob + shb.nfunc] * _pair_norms(sha, shb)
            for axis in range(3):
                for side, shell in (("bra", sha), ("ket", shb)):
                    dW = w_deriv(pd, ca, cb, tbox, side, axis)
                    dWf = dW.reshape(pd.nprim, sha.nfunc * shb.nfunc, -1)
                    # per-nucleus contracted values (nC,)
                    vals = -np.einsum(
                        "cnt,n,nxt,x->c",
                        R,
                        pref,
                        dWf,
                        Xblk.ravel(),
                        optimize=True,
                    ) * Z
                    g[shell.atom, axis] += vals.sum()
                    # operator-center terms: dV_C/dC -= this side's deriv
                    g[:, axis] -= vals
    return g


def contract_hcore_deriv(
    basis: BasisSet, mol: Molecule, X: np.ndarray,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """``sum X_{mu nu} dh_{mu nu}/dR`` with h = T + V."""
    return (contract_kinetic_deriv(basis, X, workspace)
            + contract_nuclear_deriv(basis, mol, X, workspace))


def overlap_deriv(basis: BasisSet, natoms: int | None = None) -> np.ndarray:
    """Dense overlap derivative, shape ``(natoms, 3, nbf, nbf)`` (testing)."""
    if natoms is None:
        natoms = int(max(sh.atom for sh in basis.shells)) + 1
    n = basis.nbf
    out = np.zeros((natoms, 3, n, n))
    for ish, sha in enumerate(basis.shells):
        oa = basis.offsets[ish]
        ca = comp_arrays(sha.l)
        for jsh, shb in enumerate(basis.shells):
            if sha.atom == shb.atom:
                continue
            ob = basis.offsets[jsh]
            cb = comp_arrays(shb.l)
            pd = pair_data(sha, shb, 1, 0)
            pref = pd.cc * (np.pi / pd.p) ** 1.5
            norms = _pair_norms(sha, shb)
            for axis in range(3):
                dW = w_deriv(pd, ca, cb, (0, 0, 0), "bra", axis)[:, :, :, 0, 0, 0]
                blk = np.einsum("n,nab->ab", pref, dW) * norms
                out[sha.atom, axis, oa : oa + sha.nfunc, ob : ob + shb.nfunc] += blk
                out[shb.atom, axis, oa : oa + sha.nfunc, ob : ob + shb.nfunc] -= blk
    return out
