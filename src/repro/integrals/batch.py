"""Shell-pair-class batched integral kernels on a pluggable backend.

Instead of looping Python over individual shell pairs, the drivers here
partition the canonical bra pair list (`canonical_shell_pairs`) into
**classes** — pairs sharing ``(la, lb, npa, npb)`` — pack each class's
exponents, contraction products, centers and Hermite E tables into flat
arrays, and evaluate all surviving (post-Schwarz) pairs of a class in a
handful of dense array ops. This amortizes interpreter overhead over the
whole class, which is where the per-step cost lived after PR 5's
screening/caching work (ROADMAP item 1), and is the same layout the
paper needs to feed accelerators as large dense batches.

All dense math goes through a `repro.backend.ArrayBackend` (numpy
default, optional JAX/CuPy), so the same kernel source runs on CPU and
GPU. `AutodiffIntegrals` additionally exposes *functional* value
builders (integral matrices as pure functions of atom coordinates) that
JAX can differentiate — the independent oracle the tests use to
cross-check the hand-derived analytic gradients.

Determinism contract (see docs/PERFORMANCE.md): on the numpy backend
the batched overlap/kinetic/eri3c kernels and the overlap/kinetic/3c
derivative contractions are **bitwise identical** to the reference loop
implementations in `onee.py`/`eri.py` given the same Schwarz table —
gathers, contraction orders and accumulation orders mirror the loop
code exactly, and screened-pair bookkeeping is replayed in canonical
pair order. Nuclear attraction and the Schwarz builder use fixed
contraction paths that are batch-size invariant (the loop versions rely
on ``optimize=True`` einsum paths that are not batch-reproducible), so
they agree with the loops to tight tolerance rather than bitwise; a run
that stays in one kernel mode remains bitwise reproducible end to end.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from ..backend import ArrayBackend, get_backend
from .engine import (
    canonical_shell_pairs,
    comp_arrays,
    e_tables_batch,
    hermite_box,
    r_tables_batch,
    w_tensor,
)
from .eri import (
    DERIV_SAFETY,
    _TWO_PI_52,
    _S_COMP,
    _aux_groups,
    _phase,
    _zblk_table,
    aux_function_bounds,
)

if TYPE_CHECKING:
    from ..basis.basisset import BasisSet
    from ..chem.molecule import Molecule
    from .workspace import IntegralWorkspace

__all__ = [
    "AutodiffIntegrals",
    "ShellClass",
    "build_shell_classes",
    "canonical_shell_pairs",
    "kernel_mode",
    "kernels",
    "set_kernel_mode",
    "use_batched",
]

#: environment variable selecting the integral kernel implementation
KERNELS_ENV = "REPRO_INT_KERNELS"

_KERNEL_MODES = ("batched", "loop")

#: element budget for the largest per-chunk intermediate (~2 MB f64,
#: sized to keep the chunk's working set cache-resident); per-pair rows
#: are independent, so chunking never changes results
_CHUNK_ELEMS = 1 << 18


def _initial_mode() -> str:
    mode = os.environ.get(KERNELS_ENV, "").strip().lower() or "batched"
    return mode if mode in _KERNEL_MODES else "batched"


_MODE = _initial_mode()


def kernel_mode() -> str:
    """Active integral kernel implementation: "batched" or "loop"."""
    return _MODE


def set_kernel_mode(mode: str) -> None:
    """Select the kernel implementation (``--int-kernels`` lands here)."""
    global _MODE
    mode = mode.lower()
    if mode not in _KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {mode!r}; choose from {_KERNEL_MODES}"
        )
    _MODE = mode


def use_batched() -> bool:
    """True when dispatchers should route to the batched kernels."""
    return _MODE == "batched"


@contextmanager
def kernels(mode: str):
    """Temporarily switch kernel mode (tests and benchmarks)."""
    prev = _MODE
    set_kernel_mode(mode)
    try:
        yield
    finally:
        set_kernel_mode(prev)


# --------------------------------------------------------------------------
# Shell-pair class partition and packing
# --------------------------------------------------------------------------

@dataclass
class ShellClass:
    """All canonical shell pairs sharing ``(la, lb, npa, npb)``, packed.

    Per-pair arrays are stacked along a leading axis of length ``Q``
    (pairs, canonical order within the class); per-primitive arrays have
    a second axis of length ``N = npa * npb``, laid out exactly like
    `engine.pair_data` (bra-major), so gathers below are bitwise mirrors
    of the per-pair code. ``E`` carries the workspace-unified
    ``(di=1, dj=2)`` derivative headroom: lower-index entries of the E
    recursion are independent of headroom, so every driver can gather
    from the one table.
    """

    la: int
    lb: int
    imax: int
    jmax: int
    pair_idx: np.ndarray  # (Q,) index into canonical_shell_pairs(basis)
    ish: np.ndarray       # (Q,) bra shell index
    jsh: np.ndarray       # (Q,) ket shell index
    oa: np.ndarray        # (Q,) bra function offset
    ob: np.ndarray        # (Q,) ket function offset
    atom_a: np.ndarray    # (Q,)
    atom_b: np.ndarray    # (Q,)
    diag: np.ndarray      # (Q,) bool, ish == jsh
    a: np.ndarray         # (Q, N) bra exponents, bra-major layout
    b: np.ndarray         # (Q, N) ket exponents
    cc: np.ndarray        # (Q, N) contraction coefficient products
    p: np.ndarray         # (Q, N) total exponents a + b
    P: np.ndarray         # (Q, N, 3) Gaussian product centers
    AB: np.ndarray        # (Q, 3) center separations A - B
    E: np.ndarray         # (Q, N, 3, imax+1, jmax+1, imax+jmax+1)
    norms: np.ndarray     # (nfa, nfb) component normalization outer

    @property
    def npair(self) -> int:
        return int(self.ish.shape[0])

    @property
    def nprim(self) -> int:
        return int(self.a.shape[1])

    @property
    def nfa(self) -> int:
        return (self.la + 1) * (self.la + 2) // 2

    @property
    def nfb(self) -> int:
        return (self.lb + 1) * (self.lb + 2) // 2

    def subset(self, mask: np.ndarray) -> "ShellClass":
        """Survivor view after a screening decision (boolean mask)."""
        return replace(
            self,
            pair_idx=self.pair_idx[mask],
            ish=self.ish[mask],
            jsh=self.jsh[mask],
            oa=self.oa[mask],
            ob=self.ob[mask],
            atom_a=self.atom_a[mask],
            atom_b=self.atom_b[mask],
            diag=self.diag[mask],
            a=self.a[mask],
            b=self.b[mask],
            cc=self.cc[mask],
            p=self.p[mask],
            P=self.P[mask],
            AB=self.AB[mask],
            E=self.E[mask],
        )


def _class_partition(basis: BasisSet):
    """Group canonical pairs by ``(la, lb, npa, npb)``; pack statics.

    Returns a list of dicts (sorted by class key) holding the index
    arrays and geometry-independent packed arrays shared by the numpy
    class builder and the autodiff builders.
    """
    shells = basis.shells
    offs = np.asarray(basis.offsets)
    pairs = canonical_shell_pairs(basis)
    by_key: dict[tuple[int, int, int, int], list[int]] = {}
    for pidx, (i, j) in enumerate(pairs):
        key = (shells[i].l, shells[j].l, shells[i].nprim, shells[j].nprim)
        by_key.setdefault(key, []).append(pidx)
    parts = []
    for key in sorted(by_key):
        la, lb, npa, npb = key
        pidx = np.asarray(by_key[key], dtype=np.intp)
        ish = np.asarray([pairs[k][0] for k in by_key[key]], dtype=np.intp)
        jsh = np.asarray([pairs[k][1] for k in by_key[key]], dtype=np.intp)
        exps_a = np.stack([shells[i].exps for i in ish])
        exps_b = np.stack([shells[j].exps for j in jsh])
        coefs_a = np.stack([shells[i].coefs for i in ish])
        coefs_b = np.stack([shells[j].coefs for j in jsh])
        # bra-major primitive layout, mirroring engine.pair_data bitwise
        a = np.repeat(exps_a, npb, axis=1)
        b = np.tile(exps_b, (1, npa))
        cc = np.repeat(coefs_a, npb, axis=1) * np.tile(coefs_b, (1, npa))
        parts.append(
            dict(
                la=la, lb=lb,
                pair_idx=pidx, ish=ish, jsh=jsh,
                oa=offs[ish], ob=offs[jsh],
                atom_a=np.asarray([shells[i].atom for i in ish], dtype=np.intp),
                atom_b=np.asarray([shells[j].atom for j in jsh], dtype=np.intp),
                diag=ish == jsh,
                a=a, b=b, cc=cc,
                norms=np.outer(
                    shells[ish[0]].comp_norms, shells[jsh[0]].comp_norms
                ),
            )
        )
    return parts


def _build_shell_classes(basis: BasisSet) -> list[ShellClass]:
    """Pack every shell-pair class of ``basis`` (fresh, no caching)."""
    shells = basis.shells
    centers = np.stack([sh.center for sh in shells])
    classes = []
    for part in _class_partition(basis):
        la, lb = part["la"], part["lb"]
        a, b, cc = part["a"], part["b"], part["cc"]
        Q, N = a.shape
        p = a + b
        A = centers[part["ish"]]
        B = centers[part["jsh"]]
        P = (
            a[:, :, None] * A[:, None, :] + b[:, :, None] * B[:, None, :]
        ) / p[:, :, None]
        AB = A - B
        imax, jmax = la + 1, lb + 2
        E = e_tables_batch(
            imax, jmax, np.repeat(AB, N, axis=0), a.ravel(), b.ravel()
        ).reshape(Q, N, 3, imax + 1, jmax + 1, imax + jmax + 1)
        classes.append(
            ShellClass(
                la=la, lb=lb, imax=imax, jmax=jmax,
                pair_idx=part["pair_idx"], ish=part["ish"], jsh=part["jsh"],
                oa=part["oa"], ob=part["ob"],
                atom_a=part["atom_a"], atom_b=part["atom_b"],
                diag=part["diag"],
                a=a, b=b, cc=cc, p=p, P=P, AB=AB, E=E,
                norms=part["norms"],
            )
        )
    return classes


def build_shell_classes(
    basis: BasisSet, workspace: IntegralWorkspace | None = None
) -> list[ShellClass]:
    """Shell-pair classes from the workspace cache, or freshly packed."""
    if workspace is not None:
        return workspace.shell_classes(basis)
    return _build_shell_classes(basis)


def _chunks(nq: int, per_pair_elems: int):
    """Deterministic pair-axis chunking under the element budget."""
    step = max(1, _CHUNK_ELEMS // max(1, int(per_pair_elems)))
    for lo in range(0, nq, step):
        yield slice(lo, min(lo + step, nq))


# --------------------------------------------------------------------------
# Shared gather/contraction helpers (bitwise mirrors of engine.w_tensor /
# engine.w_deriv with a leading pair axis)
# --------------------------------------------------------------------------

def _einsum(be: ArrayBackend, spec: str, *ops):
    """einsum pinned to ``optimize=False`` on numpy (bitwise contract);
    other backends use their native default."""
    if be.is_numpy:
        return np.einsum(spec, *ops, optimize=False)
    return be.xp.einsum(spec, *ops)


def _contig(be: ArrayBackend, x):
    return np.ascontiguousarray(x) if be.is_numpy else x


def _w_class(E, ca, cb, tbox):
    """``W[q, n, A, B, t, u, v]`` — `engine.w_tensor` over a class."""
    Gs = []
    for dim in range(3):
        G = E[:, :, dim, ca[:, None, dim], cb[None, :, dim], : tbox[dim] + 1]
        Gs.append(G)
    return (
        Gs[0][..., :, None, None]
        * Gs[1][..., None, :, None]
        * Gs[2][..., None, None, :]
    )


def _w_deriv_class(E, aexp, bexp, ca, cb, tbox, side, axis):
    """``d/dX_axis`` of `_w_class` — `engine.w_deriv` over a class."""
    Gs = []
    for dim in range(3):
        ia = ca[:, None, dim]
        jb = cb[None, :, dim]
        T = tbox[dim] + 1
        if dim == axis:
            if side == "bra":
                up = E[:, :, dim, ia + 1, jb, :T]
                lo = E[:, :, dim, np.maximum(ia - 1, 0), jb, :T]
                G = (
                    2.0 * aexp[:, :, None, None, None] * up
                    - ia[None, None, :, :, None] * lo
                )
            elif side == "ket":
                up = E[:, :, dim, ia, jb + 1, :T]
                lo = E[:, :, dim, ia, np.maximum(jb - 1, 0), :T]
                G = (
                    2.0 * bexp[:, :, None, None, None] * up
                    - jb[None, None, :, :, None] * lo
                )
            else:
                raise ValueError(f"side must be 'bra' or 'ket', got {side!r}")
        else:
            G = E[:, :, dim, ia, jb, :T]
        Gs.append(G)
    return (
        Gs[0][..., :, None, None]
        * Gs[1][..., None, :, None]
        * Gs[2][..., None, None, :]
    )


def _block_indices(oa, nfa, ob, nfb):
    """Broadcastable function-index arrays for block scatter."""
    rows = oa[:, None] + np.arange(nfa)[None, :]
    cols = ob[:, None] + np.arange(nfb)[None, :]
    return rows, cols


def _scatter_blocks(out, rows, cols, blk):
    """Write ``(Q, nfa, nfb)`` blocks, then every transposed image —
    the loop drivers' per-pair write order (diagonal blocks end up
    holding ``blk.T``), preserved class-wide for bitwise parity."""
    out[rows[:, :, None], cols[:, None, :]] = blk
    out[cols[:, :, None], rows[:, None, :]] = blk.transpose(0, 2, 1)


# --------------------------------------------------------------------------
# One-electron matrices
# --------------------------------------------------------------------------

def overlap_batched(
    basis: BasisSet,
    workspace: IntegralWorkspace | None = None,
    be: ArrayBackend | None = None,
) -> np.ndarray:
    """Batched overlap matrix; bitwise-identical to `onee.overlap`."""
    be = be or get_backend()
    S = np.zeros((basis.nbf, basis.nbf))
    for cls in build_shell_classes(basis, workspace):
        ca = comp_arrays(cls.la)
        cb = comp_arrays(cls.lb)
        E = be.asarray(cls.E)
        G = E[:, :, 0, ca[:, None, 0], cb[None, :, 0], 0]
        G = G * E[:, :, 1, ca[:, None, 1], cb[None, :, 1], 0]
        G = G * E[:, :, 2, ca[:, None, 2], cb[None, :, 2], 0]
        pref = be.asarray(cls.cc) * (np.pi / be.asarray(cls.p)) ** 1.5
        blk = _einsum(be, "qn,qnab->qab", pref, G) * be.asarray(cls.norms)[None]
        rows, cols = _block_indices(cls.oa, cls.nfa, cls.ob, cls.nfb)
        _scatter_blocks(S, rows, cols, be.to_numpy(blk))
    return S


def _kinetic_1d(E, bexp, ca, cb, deriv_axis=None, aexp=None):
    """Per-dimension overlap/kinetic 1D factors for a class, mirroring
    `onee._kinetic_block` (``deriv_axis=None``) or
    `onee._kinetic_deriv_block` (bra-derivative along ``deriv_axis``)."""
    Svals, Kvals = [], []
    for dim in range(3):
        ia = ca[:, None, dim]
        jb = cb[None, :, dim]
        jm2 = np.maximum(jb - 2, 0)
        if dim == deriv_axis:
            a4 = aexp[:, :, None, None]
            iam = np.maximum(ia - 1, 0)
            s = (
                2.0 * a4 * E[:, :, dim, ia + 1, jb, 0]
                - ia[None, None] * E[:, :, dim, iam, jb, 0]
            )
            s_m2 = (
                2.0 * a4 * E[:, :, dim, ia + 1, jm2, 0]
                - ia[None, None] * E[:, :, dim, iam, jm2, 0]
            )
            s_p2 = (
                2.0 * a4 * E[:, :, dim, ia + 1, jb + 2, 0]
                - ia[None, None] * E[:, :, dim, iam, jb + 2, 0]
            )
        else:
            s = E[:, :, dim, ia, jb, 0]
            s_m2 = E[:, :, dim, ia, jm2, 0]
            s_p2 = E[:, :, dim, ia, jb + 2, 0]
        b4 = bexp[:, :, None, None]
        k = -0.5 * (
            (jb * (jb - 1))[None, None] * s_m2
            - 2.0 * b4 * (2 * jb + 1)[None, None] * s
            + 4.0 * b4**2 * s_p2
        )
        Svals.append(s)
        Kvals.append(k)
    return (
        Kvals[0] * Svals[1] * Svals[2]
        + Svals[0] * Kvals[1] * Svals[2]
        + Svals[0] * Svals[1] * Kvals[2]
    )


def kinetic_batched(
    basis: BasisSet,
    workspace: IntegralWorkspace | None = None,
    be: ArrayBackend | None = None,
) -> np.ndarray:
    """Batched kinetic matrix; bitwise-identical to `onee.kinetic`."""
    be = be or get_backend()
    T = np.zeros((basis.nbf, basis.nbf))
    for cls in build_shell_classes(basis, workspace):
        ca = comp_arrays(cls.la)
        cb = comp_arrays(cls.lb)
        E = be.asarray(cls.E)
        tot = _kinetic_1d(E, be.asarray(cls.b), ca, cb)
        pref = be.asarray(cls.cc) * (np.pi / be.asarray(cls.p)) ** 1.5
        blk = _einsum(be, "qn,qnab->qab", pref, tot)
        blk = blk * be.asarray(cls.norms)[None]
        rows, cols = _block_indices(cls.oa, cls.nfa, cls.ob, cls.nfb)
        _scatter_blocks(T, rows, cols, be.to_numpy(blk))
    return T


def _r_tables(be: ArrayBackend, tmax, umax, vmax, p, PQ):
    """Hermite Coulomb tables: fast numpy path or functional xp path."""
    if be.is_numpy:
        return r_tables_batch(tmax, umax, vmax, np.asarray(p), np.asarray(PQ))
    return _r_tables_xp(be, tmax, umax, vmax, p, PQ)


def nuclear_batched(
    basis: BasisSet,
    mol: Molecule,
    workspace: IntegralWorkspace | None = None,
    be: ArrayBackend | None = None,
) -> np.ndarray:
    """Batched nuclear-attraction matrix.

    Uses a fixed (batch-size-invariant) contraction path; agrees with
    `onee.nuclear` to tight tolerance, not bitwise — the loop version's
    ``optimize=True`` einsum path is not batch-reproducible.
    """
    be = be or get_backend()
    V = np.zeros((basis.nbf, basis.nbf))
    Zh = mol.atomic_numbers.astype(float)
    centers = mol.coords
    nC = centers.shape[0]
    Z = be.asarray(Zh)
    cen = be.asarray(centers)
    for cls in build_shell_classes(basis, workspace):
        ca = comp_arrays(cls.la)
        cb = comp_arrays(cls.lb)
        L = cls.la + cls.lb
        tbox = (L, L, L)
        nT = (L + 1) ** 3
        N, X = cls.nprim, cls.nfa * cls.nfb
        blk_all = np.empty((cls.npair, cls.nfa, cls.nfb))
        for sl in _chunks(cls.npair, nC * N * nT):
            E = be.asarray(cls.E[sl])
            p = be.asarray(cls.p[sl])
            qc = cls.p[sl].shape[0]
            Wf = _w_class(E, ca, cb, tbox).reshape(qc, N, X, nT)
            PQ = be.asarray(cls.P[sl])[:, None, :, :] - cen[None, :, None, :]
            p_rep = be.xp.broadcast_to(p[:, None, :], (qc, nC, N))
            R = _r_tables(
                be, L, L, L, p_rep.reshape(-1), PQ.reshape(-1, 3)
            ).reshape(qc, nC, N, nT)
            pref = be.asarray(cls.cc[sl]) * (2.0 * np.pi / p)
            t1 = _einsum(be, "qcnt,c->qnt", R, Z)
            val = -_einsum(be, "qnxt,qnt,qn->qx", Wf, t1, pref)
            blk = val.reshape(qc, cls.nfa, cls.nfb) * be.asarray(cls.norms)[None]
            blk_all[sl] = be.to_numpy(blk)
        rows, cols = _block_indices(cls.oa, cls.nfa, cls.ob, cls.nfb)
        _scatter_blocks(V, rows, cols, blk_all)
    return V


# --------------------------------------------------------------------------
# One-electron contracted derivatives
# --------------------------------------------------------------------------

def _replay_pair_scalars(g: np.ndarray, entries) -> None:
    """Accumulate per-pair (3,) derivative values into ``g`` in canonical
    pair order — the loop drivers' exact float accumulation order."""
    if not entries:
        return
    pids = np.concatenate([e[0] for e in entries])
    aa = np.concatenate([e[1] for e in entries])
    ab = np.concatenate([e[2] for e in entries])
    vals = np.concatenate([e[3] for e in entries])
    for k in np.argsort(pids):
        for axis in range(3):
            g[aa[k], axis] += vals[k, axis]
            g[ab[k], axis] -= vals[k, axis]


def contract_overlap_deriv_batched(
    basis: BasisSet,
    X: np.ndarray,
    workspace: IntegralWorkspace | None = None,
    be: ArrayBackend | None = None,
) -> np.ndarray:
    """Batched ``sum X dS/dR``; bitwise `onee.contract_overlap_deriv`."""
    be = be or get_backend()
    natoms = int(max(sh.atom for sh in basis.shells)) + 1
    g = np.zeros((natoms, 3))
    Xs = X + X.T
    entries = []
    for cls in build_shell_classes(basis, workspace):
        mask = (~cls.diag) & (cls.atom_a != cls.atom_b)
        if not mask.any():
            continue
        sub = cls.subset(mask)
        ca = comp_arrays(cls.la)
        cb = comp_arrays(cls.lb)
        E = be.asarray(sub.E)
        a = be.asarray(sub.a)
        b = be.asarray(sub.b)
        pref = be.asarray(sub.cc) * (np.pi / be.asarray(sub.p)) ** 1.5
        rows, cols = _block_indices(sub.oa, cls.nfa, sub.ob, cls.nfb)
        Xblk = be.asarray(
            Xs[rows[:, :, None], cols[:, None, :]] * cls.norms[None]
        )
        vals = np.empty((sub.npair, 3))
        for axis in range(3):
            dW = _w_deriv_class(E, a, b, ca, cb, (0, 0, 0), "bra", axis)
            dW = dW[..., 0, 0, 0]
            v = _einsum(be, "qn,qnab,qab->q", pref, dW, Xblk)
            vals[:, axis] = be.to_numpy(v)
        entries.append((sub.pair_idx, sub.atom_a, sub.atom_b, vals))
    _replay_pair_scalars(g, entries)
    return g


def contract_kinetic_deriv_batched(
    basis: BasisSet,
    X: np.ndarray,
    workspace: IntegralWorkspace | None = None,
    be: ArrayBackend | None = None,
) -> np.ndarray:
    """Batched ``sum X dT/dR``; bitwise `onee.contract_kinetic_deriv`."""
    be = be or get_backend()
    natoms = int(max(sh.atom for sh in basis.shells)) + 1
    g = np.zeros((natoms, 3))
    Xs = X + X.T
    entries = []
    for cls in build_shell_classes(basis, workspace):
        mask = (~cls.diag) & (cls.atom_a != cls.atom_b)
        if not mask.any():
            continue
        sub = cls.subset(mask)
        ca = comp_arrays(cls.la)
        cb = comp_arrays(cls.lb)
        E = be.asarray(sub.E)
        a = be.asarray(sub.a)
        b = be.asarray(sub.b)
        pref = be.asarray(sub.cc) * (np.pi / be.asarray(sub.p)) ** 1.5
        rows, cols = _block_indices(sub.oa, cls.nfa, sub.ob, cls.nfb)
        Xblk = be.asarray(
            Xs[rows[:, :, None], cols[:, None, :]] * cls.norms[None]
        )
        vals = np.empty((sub.npair, 3))
        for axis in range(3):
            tot = _kinetic_1d(E, b, ca, cb, deriv_axis=axis, aexp=a)
            # C-contiguous to match the loop driver's per-pair blk layout
            # (einsum's accumulation order follows the memory layout)
            blk = _contig(be, _einsum(be, "qn,qnab->qab", pref, tot))
            v = _einsum(be, "qab,qab->q", blk, Xblk)
            vals[:, axis] = be.to_numpy(v)
        entries.append((sub.pair_idx, sub.atom_a, sub.atom_b, vals))
    _replay_pair_scalars(g, entries)
    return g


def contract_nuclear_deriv_batched(
    basis: BasisSet,
    mol: Molecule,
    X: np.ndarray,
    workspace: IntegralWorkspace | None = None,
    be: ArrayBackend | None = None,
) -> np.ndarray:
    """Batched ``sum X dV/dR`` including operator-center terms.

    Fixed contraction path, batch-size invariant; agrees with
    `onee.contract_nuclear_deriv` to tight tolerance (the loop version
    uses an ``optimize=True`` einsum path).
    """
    be = be or get_backend()
    natoms = mol.natoms
    g = np.zeros((natoms, 3))
    Zh = mol.atomic_numbers.astype(float)
    centers = mol.coords
    nC = centers.shape[0]
    cen = be.asarray(centers)
    Xs = X + X.T
    for cls in build_shell_classes(basis, workspace):
        ca = comp_arrays(cls.la)
        cb = comp_arrays(cls.lb)
        L = cls.la + cls.lb + 1
        tbox = (L, L, L)
        nT = (L + 1) ** 3
        N, X_ = cls.nprim, cls.nfa * cls.nfb
        rows, cols = _block_indices(cls.oa, cls.nfa, cls.ob, cls.nfb)
        Xg = np.where(
            cls.diag[:, None, None],
            X[rows[:, :, None], cols[:, None, :]],
            Xs[rows[:, :, None], cols[:, None, :]],
        ) * cls.norms[None]
        Xf = be.asarray(Xg.reshape(cls.npair, X_))
        # per-class accumulators so chunking cannot change the result
        vals_all = np.empty((cls.npair, 2, 3, nC))
        for sl in _chunks(cls.npair, nC * N * nT):
            E = be.asarray(cls.E[sl])
            a = be.asarray(cls.a[sl])
            b = be.asarray(cls.b[sl])
            p = be.asarray(cls.p[sl])
            qc = cls.p[sl].shape[0]
            PQ = be.asarray(cls.P[sl])[:, None, :, :] - cen[None, :, None, :]
            p_rep = be.xp.broadcast_to(p[:, None, :], (qc, nC, N))
            R = _r_tables(
                be, L, L, L, p_rep.reshape(-1), PQ.reshape(-1, 3)
            ).reshape(qc, nC, N, nT)
            pref = be.asarray(cls.cc[sl]) * (2.0 * np.pi / p)
            for si, side in enumerate(("bra", "ket")):
                for axis in range(3):
                    dW = _w_deriv_class(E, a, b, ca, cb, tbox, side, axis)
                    dWf = dW.reshape(qc, N, X_, nT)
                    t1 = _einsum(be, "qnxt,qx->qnt", dWf, Xf[sl])
                    t1 = t1 * pref[:, :, None]
                    v = -_einsum(be, "qcnt,qnt->qc", R, t1)
                    vals_all[sl, si, axis] = be.to_numpy(v) * Zh[None, :]
        for si, atoms_side in enumerate((cls.atom_a, cls.atom_b)):
            for axis in range(3):
                v = vals_all[:, si, axis, :]
                np.add.at(g[:, axis], atoms_side, v.sum(axis=1))
                g[:, axis] -= v.sum(axis=0)
    return g


# --------------------------------------------------------------------------
# Schwarz bounds
# --------------------------------------------------------------------------

def schwarz_pair_bounds_batched(
    basis: BasisSet,
    workspace: IntegralWorkspace | None = None,
    be: ArrayBackend | None = None,
) -> np.ndarray:
    """Batched Cauchy-Schwarz bounds ``Q_ij = max sqrt((ab|ab))``.

    Only the diagonal of each ``(ab|ab)`` block is assembled (the loop
    version builds the full block and takes its diagonal). Fixed
    contraction path — agrees with `eri.schwarz_pair_bounds` to tight
    tolerance. In-process both kernel modes share one cached table via
    `IntegralWorkspace.schwarz_bounds` (the cache key carries no kernel
    mode), so screening *decisions* are mode-independent there.
    """
    be = be or get_backend()
    nsh = basis.nshells
    Qmat = np.zeros((nsh, nsh))
    for cls in build_shell_classes(basis, workspace):
        ca = comp_arrays(cls.la)
        cb = comp_arrays(cls.lb)
        L = cls.la + cls.lb
        tbox = (L, L, L)
        tb_idx = hermite_box(tbox)
        Tb = tb_idx.shape[0]
        phase = be.asarray(_phase(tb_idx))
        N, X = cls.nprim, cls.nfa * cls.nfb
        bound_all = np.empty(cls.npair)
        per_pair = max(N * N * (2 * L + 1) ** 3, N * N * Tb * Tb)
        for sl in _chunks(cls.npair, per_pair):
            E = be.asarray(cls.E[sl])
            p = be.asarray(cls.p[sl])
            cc = be.asarray(cls.cc[sl])
            P = be.asarray(cls.P[sl])
            qc = cls.p[sl].shape[0]
            Wb = _w_class(E, ca, cb, tbox).reshape(qc, N, X, Tb)
            Wk = Wb * phase[None, None, None, :]
            pn = p[:, :, None]
            pm = p[:, None, :]
            alpha = pn * pm / (pn + pm)
            PQ = P[:, :, None, :] - P[:, None, :, :]
            R = _r_tables(
                be, 2 * L, 2 * L, 2 * L,
                alpha.reshape(-1), PQ.reshape(-1, 3),
            ).reshape(qc, N, N, 2 * L + 1, 2 * L + 1, 2 * L + 1)
            K = (
                _TWO_PI_52
                / (pn * pm * be.xp.sqrt(pn + pm))
                * cc[:, :, None]
                * cc[:, None, :]
            )
            ts = tb_idx[:, None, :] + tb_idx[None, :, :]
            M = R[:, :, :, ts[..., 0], ts[..., 1], ts[..., 2]]
            M = M * K[..., None, None]
            M2 = _contig(be, M.transpose(0, 1, 3, 2, 4)).reshape(
                qc, N * Tb, N * Tb
            )
            Wb2 = _contig(be, Wb.transpose(0, 2, 1, 3)).reshape(qc, X, N * Tb)
            t1 = be.xp.matmul(Wb2, M2).reshape(qc, X, N, Tb)
            diag = _einsum(be, "qxms,qmxs->qx", t1, Wk)
            bound = be.xp.sqrt(be.xp.max(be.xp.abs(diag), axis=1))
            bound_all[sl] = be.to_numpy(bound)
        Qmat[cls.ish, cls.jsh] = bound_all
        Qmat[cls.jsh, cls.ish] = bound_all
    return Qmat


# --------------------------------------------------------------------------
# Three-center integrals and derivative contraction
# --------------------------------------------------------------------------

def _schwarz_dispatch(basis, workspace):
    from .eri import schwarz_pair_bounds

    if workspace is not None:
        return workspace.schwarz_bounds(basis)
    return schwarz_pair_bounds(basis)


def _aux_bounds_dispatch(aux, workspace):
    if workspace is not None:
        return workspace.aux_function_bounds(aux)
    return aux_function_bounds(aux)


def _group_statics(groups, be: ArrayBackend):
    """Hoist the per-auxiliary-group ket expansions once per call: the
    loop driver rebuilds ``Wk`` for every (pair, group) combination."""
    statics = []
    for grp in groups:
        lk = (grp.l, grp.l, grp.l)
        tk_idx = hermite_box(lk)
        cg = comp_arrays(grp.l)
        m = grp.pd.nprim
        C = len(cg)
        Wk = w_tensor(grp.pd, cg, _S_COMP, lk)[:, :, 0, :, :, :]
        Wk = Wk.reshape(m, C, -1) * _phase(tk_idx)[None, None, :]
        statics.append(
            dict(
                grp=grp, m=m, C=C, Tk=tk_idx.shape[0], tk_idx=tk_idx,
                qk=be.asarray(grp.pd.p), cck=be.asarray(grp.pd.cc),
                Pk=be.asarray(grp.pd.P),
                Wk=be.asarray(Wk),
                func_idx=grp.offsets[:, None] + np.arange(C)[None, :],
                comp_norms=grp.comp_norms,
            )
        )
    return statics


def _class_group_blocks(be, st, p, cc, P, tb_idx, tbox):
    """Gathered, prefactor-folded Hermite kernel ``M2`` for one
    (class chunk, aux group): the batched mirror of `eri._group_M`."""
    xp = be.xp
    qc, N = p.shape
    lk = (st["grp"].l,) * 3
    TX = tbox[0] + lk[0]
    TY = tbox[1] + lk[1]
    TZ = tbox[2] + lk[2]
    p4 = p[:, :, None]
    qk = st["qk"][None, None, :]
    alpha = p4 * qk / (p4 + qk)
    PQ = P[:, :, None, :] - st["Pk"][None, None, :, :]
    R = _r_tables(
        be, TX, TY, TZ, alpha.reshape(-1), PQ.reshape(-1, 3)
    ).reshape(qc, N, st["m"], TX + 1, TY + 1, TZ + 1)
    K = (
        _TWO_PI_52
        / (p4 * qk * xp.sqrt(p4 + qk))
        * cc[:, :, None]
        * st["cck"][None, None, :]
    )
    ts = tb_idx[:, None, :] + st["tk_idx"][None, :, :]
    M = R[:, :, :, ts[..., 0], ts[..., 1], ts[..., 2]]
    Tb = tb_idx.shape[0]
    if be.is_numpy:
        # fuse the prefactor multiply with the (m, Tb) transpose copy:
        # one pass over M instead of two, elementwise so bitwise-equal
        out = np.empty((qc, N, Tb, st["m"], st["Tk"]))
        np.multiply(
            M.transpose(0, 1, 3, 2, 4), K[:, :, None, :, None], out=out
        )
        return out.reshape(qc, N * Tb, st["m"] * st["Tk"])
    M = M * K[..., None, None]
    return _contig(be, M.transpose(0, 1, 3, 2, 4)).reshape(
        qc, N * Tb, st["m"] * st["Tk"]
    )


def _group_apply_batched(be, M2, st, Wb2):
    """Batched mirror of `eri._group_apply`: ``(qc, m, X, C)`` blocks."""
    qc, X, _ = Wb2.shape
    t1 = be.xp.matmul(Wb2, M2)
    t1 = _contig(
        be, t1.reshape(qc, X, st["m"], st["Tk"]).transpose(0, 2, 1, 3)
    )
    # NB: the transposed *view* (not a contiguous copy) matters — BLAS
    # NT and NN gemm kernels accumulate in different orders, and the
    # reference loop passes exactly this strided operand.
    return be.xp.matmul(t1, st["Wk"].transpose(0, 2, 1)[None])


def eri3c_batched(
    basis: BasisSet,
    aux: BasisSet,
    screen: float = 0.0,
    workspace: IntegralWorkspace | None = None,
    be: ArrayBackend | None = None,
) -> np.ndarray:
    """Batched three-center integrals ``(mu nu | P)``.

    Bitwise-identical to `eri.eri3c` given the same Schwarz table —
    including the neglected-bound accumulation, which is replayed in
    canonical pair order.
    """
    be = be or get_backend()
    nb, na = basis.nbf, aux.nbf
    out = np.zeros((nb, nb, na))
    groups = _aux_groups(workspace, aux)
    statics = _group_statics(groups, be)
    classes = build_shell_classes(basis, workspace)
    Q = None
    if screen > 0.0:
        Q = _schwarz_dispatch(basis, workspace)
        qaux = _aux_bounds_dispatch(aux, workspace)
        qaux_max = float(qaux.max())
        qaux_sum = float(qaux.sum())
    npairs = len(canonical_shell_pairs(basis))
    nskip = 0
    neg_pids: list[np.ndarray] = []
    neg_vals: list[np.ndarray] = []
    for cls in classes:
        if Q is not None:
            qv = Q[cls.ish, cls.jsh]
            keep = qv * qaux_max > screen
            if not keep.all():
                skip = ~keep
                nskip += int(skip.sum())
                nfab = (cls.nfa * cls.nfb) * np.where(cls.diag[skip], 1.0, 2.0)
                neg_pids.append(cls.pair_idx[skip])
                neg_vals.append(qv[skip] * qaux_sum * nfab)
                cls = cls.subset(keep)
        if cls.npair == 0:
            continue
        ca = comp_arrays(cls.la)
        cb = comp_arrays(cls.lb)
        L = cls.la + cls.lb
        tbox = (L, L, L)
        tb_idx = hermite_box(tbox)
        Tb = tb_idx.shape[0]
        N, X = cls.nprim, cls.nfa * cls.nfb
        rows, cols = _block_indices(cls.oa, cls.nfa, cls.ob, cls.nfb)
        maxTk = max(st["m"] * st["Tk"] for st in statics)
        per_pair = N * maxTk * max(Tb, 8)
        for sl in _chunks(cls.npair, per_pair):
            E = be.asarray(cls.E[sl])
            p = be.asarray(cls.p[sl])
            cc = be.asarray(cls.cc[sl])
            P = be.asarray(cls.P[sl])
            qc = cls.p[sl].shape[0]
            Wb = _w_class(E, ca, cb, tbox).reshape(qc, N, X, Tb)
            Wb2 = _contig(be, Wb.transpose(0, 2, 1, 3)).reshape(qc, X, N * Tb)
            off = ~cls.diag[sl]
            for st in statics:
                M2 = _class_group_blocks(be, st, p, cc, P, tb_idx, tbox)
                blk = _group_apply_batched(be, M2, st, Wb2)
                blk = blk.reshape(qc, st["m"], cls.nfa, cls.nfb, st["C"])
                blk = blk * be.asarray(cls.norms)[None, None, :, :, None]
                blk = blk * be.asarray(st["comp_norms"])[
                    None, None, None, None, :
                ]
                blknp = be.to_numpy(blk)
                fi = st["func_idx"]
                out[
                    rows[sl][:, :, None, None, None],
                    cols[sl][:, None, :, None, None],
                    fi[None, None, None, :, :],
                ] = blknp.transpose(0, 2, 3, 1, 4)
                if off.any():
                    out[
                        cols[sl][off][:, :, None, None, None],
                        rows[sl][off][:, None, :, None, None],
                        fi[None, None, None, :, :],
                    ] = blknp[off].transpose(0, 3, 2, 1, 4)
    if workspace is not None and screen > 0.0:
        workspace.record_screen(
            "eri3c", npairs, nskip, _replay_neglected(neg_pids, neg_vals)
        )
    return out


def _replay_neglected(pids: list[np.ndarray], vals: list[np.ndarray]) -> float:
    """Sum skipped-pair bounds in canonical pair order — the loop
    drivers' exact float accumulation order."""
    if not pids:
        return 0.0
    allp = np.concatenate(pids)
    allv = np.concatenate(vals)
    neglected = 0.0
    for k in np.argsort(allp):
        neglected += float(allv[k])
    return neglected


def contract_eri3c_deriv_batched(
    basis: BasisSet,
    aux: BasisSet,
    Z: np.ndarray,
    natoms: int,
    screen: float = 0.0,
    workspace: IntegralWorkspace | None = None,
    be: ArrayBackend | None = None,
) -> np.ndarray:
    """Batched ``sum Z d(mu nu|P)/dR``.

    Bitwise-identical to `eri.contract_eri3c_deriv` given the same
    Schwarz table: per-(pair, group, axis) contracted values are
    computed class-wide, then the gradient accumulation (including the
    translational-invariance scatter onto auxiliary centers) is replayed
    in the loop driver's exact order — pair, then group, then axis.
    """
    be = be or get_backend()
    g = np.zeros((natoms, 3))
    groups = _aux_groups(workspace, aux)
    statics = _group_statics(groups, be)
    classes = build_shell_classes(basis, workspace)
    Zs = 0.5 * (Z + Z.transpose(1, 0, 2))
    Q = None
    if screen > 0.0:
        Q = _schwarz_dispatch(basis, workspace)
        qaux = _aux_bounds_dispatch(aux, workspace)
        qaux_max = float(qaux.max())
        qaux_sum = float(qaux.sum())
        Zblk = _zblk_table(basis, Zs)
    npairs = len(canonical_shell_pairs(basis))
    nskip = 0
    neg_pids: list[np.ndarray] = []
    neg_vals: list[np.ndarray] = []
    entries = []  # per class: (pair_idx, atom_a, atom_b, per-group stores)
    for cls in classes:
        pfac = np.where(cls.diag, 1.0, 2.0)
        if Q is not None:
            qv = Q[cls.ish, cls.jsh]
            zv = Zblk[cls.ish, cls.jsh]
            keep = DERIV_SAFETY * qv * qaux_max * zv > screen
            if not keep.all():
                skip = ~keep
                nskip += int(skip.sum())
                neg_pids.append(cls.pair_idx[skip])
                neg_vals.append(
                    DERIV_SAFETY * qv[skip] * zv[skip] * qaux_sum
                    * cls.nfa * cls.nfb * pfac[skip]
                )
                cls = cls.subset(keep)
                pfac = pfac[keep]
        if cls.npair == 0:
            continue
        ca = comp_arrays(cls.la)
        cb = comp_arrays(cls.lb)
        L = cls.la + cls.lb + 1
        tbox = (L, L, L)
        tb_idx = hermite_box(tbox)
        Tb = tb_idx.shape[0]
        N, X = cls.nprim, cls.nfa * cls.nfb
        rows, cols = _block_indices(cls.oa, cls.nfa, cls.ob, cls.nfb)
        norms_flat = cls.norms.ravel()
        # per-(group) stores: vA/vB sums (Q, 3) and vA+vB vectors (Q, 3, m)
        stores = [
            (
                np.empty((cls.npair, 3)),
                np.empty((cls.npair, 3)),
                np.empty((cls.npair, 3, st["m"])),
            )
            for st in statics
        ]
        maxTk = max(st["m"] * st["Tk"] for st in statics)
        per_pair = N * max(maxTk * Tb // 4, 7 * X * Tb)
        for sl in _chunks(cls.npair, per_pair):
            E = be.asarray(cls.E[sl])
            a = be.asarray(cls.a[sl])
            b = be.asarray(cls.b[sl])
            p = be.asarray(cls.p[sl])
            cc = be.asarray(cls.cc[sl])
            P = be.asarray(cls.P[sl])
            qc = cls.p[sl].shape[0]
            dWb = {}
            for axis in range(3):
                for side in ("bra", "ket"):
                    dW = _w_deriv_class(E, a, b, ca, cb, tbox, side, axis)
                    dWb[(side, axis)] = _contig(
                        be,
                        dW.reshape(qc, N, X, Tb).transpose(0, 2, 1, 3),
                    ).reshape(qc, X, N * Tb)
            pfc = pfac[sl]
            for gi, st in enumerate(statics):
                fi = st["func_idx"]
                zg = Zs[
                    rows[sl][:, :, None, None, None],
                    cols[sl][:, None, :, None, None],
                    fi[None, None, None, :, :],
                ]
                zg = zg.reshape(qc, X, st["m"], st["C"]).transpose(0, 2, 1, 3)
                zg = zg * norms_flat[None, None, :, None]
                zg = zg * (pfc[:, None] * st["comp_norms"][None, :])[
                    :, None, None, :
                ]
                # einsum picks its accumulation order from the memory
                # layout, and the loop driver's per-pair zg ends up laid
                # out as (m, C, X) with x innermost — copy the values
                # into that exact layout to keep bitwise parity.
                zbuf = np.empty((qc, st["m"], st["C"], X))
                zview = zbuf.transpose(0, 1, 3, 2)
                zview[...] = zg
                zg = be.asarray(zview) if not be.is_numpy else zview
                M2 = _class_group_blocks(be, st, p, cc, P, tb_idx, tbox)
                sA, sB, vABs = stores[gi]
                for axis in range(3):
                    dA = _group_apply_batched(be, M2, st, dWb[("bra", axis)])
                    dB = _group_apply_batched(be, M2, st, dWb[("ket", axis)])
                    vA = _einsum(be, "qmxc,qmxc->qm", dA, zg)
                    vB = _einsum(be, "qmxc,qmxc->qm", dB, zg)
                    vAh = be.to_numpy(vA)
                    vBh = be.to_numpy(vB)
                    sA[sl, axis] = vAh.sum(axis=1)
                    sB[sl, axis] = vBh.sum(axis=1)
                    vABs[sl, axis] = vAh + vBh
        entries.append((cls.pair_idx, cls.atom_a, cls.atom_b, stores))
    # replay the loop driver's accumulation order: canonical pair ->
    # aux group -> axis
    if entries:
        cat_pid = np.concatenate([e[0] for e in entries])
        cat_ci = np.concatenate(
            [np.full(len(e[0]), i, dtype=np.intp) for i, e in enumerate(entries)]
        )
        cat_row = np.concatenate(
            [np.arange(len(e[0]), dtype=np.intp) for e in entries]
        )
        for k in np.argsort(cat_pid):
            ci, row = cat_ci[k], cat_row[k]
            pid_e, aa_e, ab_e, stores = entries[ci]
            for gi, st in enumerate(statics):
                sA, sB, vABs = stores[gi]
                atoms_g = st["grp"].atoms
                for axis in range(3):
                    g[aa_e[row], axis] += sA[row, axis]
                    g[ab_e[row], axis] += sB[row, axis]
                    np.subtract.at(g[:, axis], atoms_g, vABs[row, axis])
    if workspace is not None and screen > 0.0:
        workspace.record_screen(
            "eri3c_deriv", npairs, nskip, _replay_neglected(neg_pids, neg_vals)
        )
    return g


# --------------------------------------------------------------------------
# Functional (trace-friendly) table builders for non-numpy backends
# --------------------------------------------------------------------------

def _boys_xp(be: ArrayBackend, mmax: int, T):
    """Functional mirror of `boys.boys_array` in the backend namespace.

    Same algorithm — top order from the regularized incomplete gamma,
    downward recursion, series limit below 1e-14 — written without
    in-place updates so JAX can trace and differentiate it.
    """
    from scipy.special import gamma

    xp = be.xp
    a = mmax + 0.5
    small = T < 1.0e-14
    Tsafe = xp.where(small, 1.0, T)
    top = float(gamma(a)) * be.gammainc(a, Tsafe) / (2.0 * Tsafe**a)
    cols = [None] * (mmax + 1)
    cols[mmax] = xp.where(small, 1.0 / (2 * mmax + 1), top)
    expT = xp.exp(-xp.minimum(T, 700.0))
    for k in range(mmax, 0, -1):
        val = (2.0 * T * cols[k] + expT) / (2 * k - 1)
        cols[k - 1] = xp.where(small, 1.0 / (2 * (k - 1) + 1), val)
    return xp.stack(cols, axis=-1)


def _r_tables_xp(be: ArrayBackend, tmax: int, umax: int, vmax: int, p, PQ):
    """Functional mirror of `engine.r_tables_batch`: Hermite Coulomb
    tables ``R[n, t, u, v]`` via the standard downward recursion over
    auxiliary order, expressed as a dict of per-(t,u,v) vectors."""
    xp = be.xp
    nmax = tmax + umax + vmax
    T = p * xp.sum(PQ * PQ, axis=1)
    F = _boys_xp(be, nmax, T)
    levels = []
    scale = xp.ones_like(p)
    for m in range(nmax + 1):
        levels.append({(0, 0, 0): scale * F[:, m]})
        scale = scale * (-2.0 * p)
    x, y, z = PQ[:, 0], PQ[:, 1], PQ[:, 2]
    for total in range(1, nmax + 1):
        hi = nmax - total + 1
        for t in range(min(total, tmax) + 1):
            for u in range(min(total - t, umax) + 1):
                v = total - t - u
                if v < 0 or v > vmax:
                    continue
                for m in range(hi):
                    up = levels[m + 1]
                    if t > 0:
                        val = x * up[(t - 1, u, v)]
                        if t > 1:
                            val = val + (t - 1) * up[(t - 2, u, v)]
                    elif u > 0:
                        val = y * up[(t, u - 1, v)]
                        if u > 1:
                            val = val + (u - 1) * up[(t, u - 2, v)]
                    else:
                        val = z * up[(t, u, v - 1)]
                        if v > 1:
                            val = val + (v - 1) * up[(t, u, v - 2)]
                    levels[m][(t, u, v)] = val
    L0 = levels[0]
    return xp.stack(
        [
            xp.stack(
                [
                    xp.stack([L0[(t, u, v)] for v in range(vmax + 1)], axis=-1)
                    for u in range(umax + 1)
                ],
                axis=-2,
            )
            for t in range(tmax + 1)
        ],
        axis=-3,
    )


def _e_tables_xp(be: ArrayBackend, imax: int, jmax: int, AB, a, b):
    """Functional mirror of `engine.e_tables_batch`: Hermite expansion
    tables ``E[n, 3, i, j, t]`` built recursively as dicts of vectors.
    ``AB`` has shape ``(n, 3)`` and may be a traced (differentiable)
    array — this is the geometry entry point for autodiff."""
    xp = be.xp
    p = a + b
    q = a * b / p
    inv2p = 1.0 / (2.0 * p)
    tmax = imax + jmax
    dims = []
    for dim in range(3):
        Qd = AB[:, dim]
        tab = {(0, 0, 0): xp.exp(-q * Qd * Qd)}
        Xpa = -(b / p) * Qd
        Xpb = (a / p) * Qd
        for i in range(imax):
            for t in range(i + 1):
                val = Xpa * tab[(i, 0, t)]
                if t > 0:
                    val = val + inv2p * tab[(i, 0, t - 1)]
                if t + 1 <= i:
                    val = val + (t + 1) * tab[(i, 0, t + 1)]
                tab[(i + 1, 0, t)] = val
            tab[(i + 1, 0, i + 1)] = inv2p * tab[(i, 0, i)]
        for i in range(imax + 1):
            for j in range(jmax):
                for t in range(i + j + 1):
                    val = Xpb * tab[(i, j, t)]
                    if t > 0:
                        val = val + inv2p * tab[(i, j, t - 1)]
                    if t + 1 <= i + j:
                        val = val + (t + 1) * tab[(i, j, t + 1)]
                    tab[(i, j + 1, t)] = val
                tab[(i, j + 1, i + j + 1)] = inv2p * tab[(i, j, i + j)]
        zeros = xp.zeros_like(p)
        arr = xp.stack(
            [
                xp.stack(
                    [
                        xp.stack(
                            [
                                tab.get((i, j, t), zeros)
                                for t in range(tmax + 1)
                            ],
                            axis=-1,
                        )
                        for j in range(jmax + 1)
                    ],
                    axis=-2,
                )
                for i in range(imax + 1)
            ],
            axis=-3,
        )
        dims.append(arr)
    return xp.stack(dims, axis=1)


class AutodiffIntegrals:
    """Integral matrices as pure functions of atom coordinates.

    Built for the JAX backend: every method takes ``coords`` with shape
    ``(natoms, 3)`` in the backend namespace and returns a backend
    array assembled purely functionally, so ``jax.grad`` through e.g.
    ``sum(X * overlap(coords))`` yields the exact contracted derivative
    — an autodiff oracle for the hand-derived `contract_*_deriv`
    drivers. Test-only: no screening, no chunking, no caching.
    """

    def __init__(
        self,
        basis: BasisSet,
        mol: Molecule,
        aux: BasisSet | None = None,
        be: ArrayBackend | None = None,
    ) -> None:
        self.be = be or get_backend()
        self.basis = basis
        self.mol = mol
        self.aux = aux
        self.nbf = basis.nbf
        self.natoms = mol.natoms
        self.Z = self.be.asarray(mol.atomic_numbers.astype(float))
        shell_atoms = np.asarray([sh.atom for sh in basis.shells])
        if not np.allclose(
            np.stack([sh.center for sh in basis.shells]),
            mol.coords[shell_atoms],
        ):
            raise ValueError("basis shell centers do not sit on mol atoms")
        self._shell_atoms = shell_atoms
        self._parts = _class_partition(basis)
        self._groups = None
        if aux is not None:
            self._groups = _group_statics(_aux_groups(None, aux), self.be)
            self._aux_atoms = [st["grp"].atoms for st in self._groups]

    def _geometry(self, part, coords, imax: int, jmax: int):
        """Traced per-class geometry: centers, product centers, E."""
        xp = self.be.xp
        a, b = part["a"], part["b"]
        Q, N = a.shape
        A = coords[self._shell_atoms[part["ish"]]]
        B = coords[self._shell_atoms[part["jsh"]]]
        p = a + b
        P = (
            a[:, :, None] * A[:, None, :] + b[:, :, None] * B[:, None, :]
        ) / p[:, :, None]
        AB = A - B
        E = _e_tables_xp(
            self.be, imax, jmax,
            xp.repeat(AB, N, axis=0),
            self.be.asarray(a.ravel()), self.be.asarray(b.ravel()),
        ).reshape(Q, N, 3, imax + 1, jmax + 1, imax + jmax + 1)
        return p, P, E

    def _assemble(self, M, part, blk, nfa, nfb):
        """Scatter symmetric blocks: direct then transposed image."""
        rows, cols = _block_indices(part["oa"], nfa, part["ob"], nfb)
        M = self.be.scatter_set(M, (rows[:, :, None], cols[:, None, :]), blk)
        return self.be.scatter_set(
            M, (cols[:, :, None], rows[:, None, :]), blk.transpose(0, 2, 1)
        )

    def overlap(self, coords):
        xp = self.be.xp
        S = xp.zeros((self.nbf, self.nbf))
        for part in self._parts:
            ca, cb = comp_arrays(part["la"]), comp_arrays(part["lb"])
            nfa, nfb = len(ca), len(cb)
            p, _, E = self._geometry(part, coords, part["la"], part["lb"])
            G = E[:, :, 0, ca[:, None, 0], cb[None, :, 0], 0]
            G = G * E[:, :, 1, ca[:, None, 1], cb[None, :, 1], 0]
            G = G * E[:, :, 2, ca[:, None, 2], cb[None, :, 2], 0]
            pref = self.be.asarray(part["cc"]) * (np.pi / p) ** 1.5
            blk = xp.einsum("qn,qnab->qab", pref, G)
            blk = blk * self.be.asarray(part["norms"])[None]
            S = self._assemble(S, part, blk, nfa, nfb)
        return S

    def kinetic(self, coords):
        xp = self.be.xp
        T = xp.zeros((self.nbf, self.nbf))
        for part in self._parts:
            ca, cb = comp_arrays(part["la"]), comp_arrays(part["lb"])
            nfa, nfb = len(ca), len(cb)
            p, _, E = self._geometry(part, coords, part["la"], part["lb"] + 2)
            tot = _kinetic_1d(E, self.be.asarray(part["b"]), ca, cb)
            pref = self.be.asarray(part["cc"]) * (np.pi / p) ** 1.5
            blk = xp.einsum("qn,qnab->qab", pref, tot)
            blk = blk * self.be.asarray(part["norms"])[None]
            T = self._assemble(T, part, blk, nfa, nfb)
        return T

    def nuclear(self, coords):
        xp = self.be.xp
        V = xp.zeros((self.nbf, self.nbf))
        nC = self.natoms
        for part in self._parts:
            ca, cb = comp_arrays(part["la"]), comp_arrays(part["lb"])
            nfa, nfb = len(ca), len(cb)
            L = part["la"] + part["lb"]
            nT = (L + 1) ** 3
            p, P, E = self._geometry(part, coords, part["la"], part["lb"])
            Q, N = part["a"].shape
            Wf = _w_class(E, ca, cb, (L, L, L)).reshape(Q, N, nfa * nfb, nT)
            PQ = P[:, None, :, :] - coords[None, :, None, :]
            p_rep = xp.broadcast_to(p[:, None, :], (Q, nC, N))
            R = _r_tables_xp(
                self.be, L, L, L, p_rep.reshape(-1), PQ.reshape(-1, 3)
            ).reshape(Q, nC, N, nT)
            pref = self.be.asarray(part["cc"]) * (2.0 * np.pi / p)
            t1 = xp.einsum("qcnt,c->qnt", R, self.Z)
            val = -xp.einsum("qnxt,qnt,qn->qx", Wf, t1, pref)
            blk = val.reshape(Q, nfa, nfb)
            blk = blk * self.be.asarray(part["norms"])[None]
            V = self._assemble(V, part, blk, nfa, nfb)
        return V

    def hcore(self, coords):
        return self.kinetic(coords) + self.nuclear(coords)

    def eri3c(self, coords):
        if self._groups is None:
            raise ValueError("AutodiffIntegrals built without an aux basis")
        xp = self.be.xp
        out = xp.zeros((self.nbf, self.nbf, self.aux.nbf))
        for part in self._parts:
            ca, cb = comp_arrays(part["la"]), comp_arrays(part["lb"])
            nfa, nfb = len(ca), len(cb)
            L = part["la"] + part["lb"]
            tbox = (L, L, L)
            tb_idx = hermite_box(tbox)
            Tb = tb_idx.shape[0]
            p, P, E = self._geometry(part, coords, part["la"], part["lb"])
            Q, N = part["a"].shape
            X = nfa * nfb
            Wb = _w_class(E, ca, cb, tbox).reshape(Q, N, X, Tb)
            cc = self.be.asarray(part["cc"])
            rows, cols = _block_indices(part["oa"], nfa, part["ob"], nfb)
            offdiag = np.nonzero(part["ish"] != part["jsh"])[0]
            for st, g_atoms in zip(self._groups, self._aux_atoms):
                lk = (st["grp"].l,) * 3
                TX, TY, TZ = (tbox[d] + lk[d] for d in range(3))
                Pk = coords[g_atoms]
                p4 = p[:, :, None]
                qk = st["qk"][None, None, :]
                alpha = p4 * qk / (p4 + qk)
                PQ = P[:, :, None, :] - Pk[None, None, :, :]
                R = _r_tables_xp(
                    self.be, TX, TY, TZ, alpha.reshape(-1), PQ.reshape(-1, 3)
                ).reshape(Q, N, st["m"], TX + 1, TY + 1, TZ + 1)
                K = (
                    _TWO_PI_52
                    / (p4 * qk * xp.sqrt(p4 + qk))
                    * cc[:, :, None]
                    * st["cck"][None, None, :]
                )
                ts = tb_idx[:, None, :] + st["tk_idx"][None, :, :]
                M = R[:, :, :, ts[..., 0], ts[..., 1], ts[..., 2]]
                M = M * K[..., None, None]
                blk = xp.einsum("qnxt,qnmts,mcs->qmxc", Wb, M, st["Wk"])
                blk = blk.reshape(Q, st["m"], nfa, nfb, st["C"])
                blk = blk * self.be.asarray(part["norms"])[None, None, :, :, None]
                blk = blk * self.be.asarray(st["comp_norms"])[
                    None, None, None, None, :
                ]
                fi = st["func_idx"]
                out = self.be.scatter_set(
                    out,
                    (
                        rows[:, :, None, None, None],
                        cols[:, None, :, None, None],
                        fi[None, None, None, :, :],
                    ),
                    blk.transpose(0, 2, 3, 1, 4),
                )
                if offdiag.size:
                    out = self.be.scatter_set(
                        out,
                        (
                            cols[offdiag][:, :, None, None, None],
                            rows[offdiag][:, None, :, None, None],
                            fi[None, None, None, :, :],
                        ),
                        blk[offdiag].transpose(0, 3, 2, 1, 4),
                    )
        return out
