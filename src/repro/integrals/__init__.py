"""Molecular integrals over contracted Cartesian Gaussians.

From-scratch McMurchie-Davidson implementation: overlap, kinetic,
nuclear attraction, two-/three-/four-center electron repulsion
integrals, and analytic first derivatives of all of them.

Two kernel modes sit behind every public driver (`repro.integrals.batch`):
the default *batched* mode evaluates whole shell-pair classes per numpy
(or JAX/CuPy) kernel call, and the *loop* mode is the per-pair reference
it is validated against.
"""

from .batch import kernel_mode, kernels, set_kernel_mode
from .boys import boys, boys_array
from .eri import (
    aux_function_bounds,
    contract_eri2c_deriv,
    contract_eri3c_deriv,
    contract_eri4c_deriv_hf,
    eri2c,
    eri3c,
    eri4c,
    schwarz_pair_bounds,
)
from .hermite import cartesian_components, e_table, ncart, r_table
from .onee import (
    contract_hcore_deriv,
    contract_kinetic_deriv,
    contract_nuclear_deriv,
    contract_overlap_deriv,
    hcore,
    kinetic,
    nuclear,
    overlap,
    overlap_deriv,
)
from .workspace import (
    DEFAULT_INT_SCREEN,
    IntegralWorkspace,
    get_workspace,
)

__all__ = [
    "DEFAULT_INT_SCREEN",
    "IntegralWorkspace",
    "aux_function_bounds",
    "boys",
    "boys_array",
    "cartesian_components",
    "contract_eri2c_deriv",
    "contract_eri3c_deriv",
    "contract_eri4c_deriv_hf",
    "contract_hcore_deriv",
    "contract_kinetic_deriv",
    "contract_nuclear_deriv",
    "contract_overlap_deriv",
    "e_table",
    "eri2c",
    "eri3c",
    "eri4c",
    "get_workspace",
    "hcore",
    "kernel_mode",
    "kernels",
    "kinetic",
    "ncart",
    "nuclear",
    "overlap",
    "overlap_deriv",
    "r_table",
    "schwarz_pair_bounds",
    "set_kernel_mode",
]
