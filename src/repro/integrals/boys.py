"""Boys function evaluation.

The Boys function

    F_m(T) = \\int_0^1 t^{2m} exp(-T t^2) dt

is the radial kernel of all Coulomb-type Gaussian integrals. We evaluate
``F_0 .. F_mmax`` with the standard three-regime scheme:

* ``T`` tiny: Taylor series about 0.
* moderate ``T``: compute the highest order by a converged downward power
  series and fill lower orders by downward recursion (numerically stable).
* large ``T``: asymptotic closed form for ``F_0`` plus *upward* recursion,
  which is stable in this regime because the subtraction term is tiny.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammainc, gamma

_SQRT_PI_OVER_2 = 0.5 * np.sqrt(np.pi)


def boys(mmax: int, T: float) -> np.ndarray:
    """Return ``[F_0(T), ..., F_mmax(T)]`` for a scalar ``T >= 0``.

    Uses the regularized lower incomplete gamma function for the top
    order, which is accurate over the full range, then downward
    recursion::

        F_{m-1}(T) = (2 T F_m(T) + exp(-T)) / (2 m - 1)
    """
    T = float(T)
    out = np.empty(mmax + 1)
    if T < 1.0e-14:
        # Series limit: F_m(0) = 1/(2m+1).
        for m in range(mmax + 1):
            out[m] = 1.0 / (2 * m + 1)
        return out
    if T > 35.0:
        # Asymptotic: F_m(T) ~ (2m-1)!! / (2T)^m * sqrt(pi/T)/2
        out[0] = _SQRT_PI_OVER_2 / np.sqrt(T)
        expT = np.exp(-T) if T < 700 else 0.0
        for m in range(1, mmax + 1):
            out[m] = ((2 * m - 1) * out[m - 1] - expT) / (2.0 * T)
        return out
    # General: F_m(T) = gamma(m+1/2) * P(m+1/2, T) / (2 T^{m+1/2})
    m = mmax
    a = m + 0.5
    out[m] = gamma(a) * gammainc(a, T) / (2.0 * T**a)
    expT = np.exp(-T)
    for k in range(m, 0, -1):
        out[k - 1] = (2.0 * T * out[k] + expT) / (2 * k - 1)
    return out


def boys_array(mmax: int, T: np.ndarray) -> np.ndarray:
    """Vectorized Boys function: shape ``(len(T), mmax+1)``.

    Evaluates the top order with the incomplete gamma function (branching
    on ``T`` near zero) and downward-recurs the rest — fully vectorized
    over the ``T`` axis.
    """
    T = np.atleast_1d(np.asarray(T, dtype=float))
    n = T.shape[0]
    out = np.empty((n, mmax + 1))
    a = mmax + 0.5
    small = T < 1.0e-14
    Tsafe = np.where(small, 1.0, T)
    top = gamma(a) * gammainc(a, Tsafe) / (2.0 * Tsafe**a)
    top = np.where(small, 1.0 / (2 * mmax + 1), top)
    out[:, mmax] = top
    expT = np.exp(-np.minimum(T, 700.0))
    for k in range(mmax, 0, -1):
        val = (2.0 * T * out[:, k] + expT) / (2 * k - 1)
        out[:, k - 1] = np.where(small, 1.0 / (2 * (k - 1) + 1), val)
    return out
