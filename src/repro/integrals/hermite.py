"""McMurchie-Davidson Hermite expansion machinery.

Two building blocks:

* ``e_table`` — Hermite expansion coefficients ``E_t^{ij}`` of a 1D
  Cartesian Gaussian product ``(x-A)^i (x-B)^j exp(-a(x-A)^2 - b(x-B)^2)``
  in Hermite Gaussians ``Lambda_t(x; p, P)``.
* ``r_table`` — Hermite Coulomb integrals ``R^0_{tuv}(p, PQ)`` built from
  the Boys function by the standard auxiliary-index recursion.

Everything is plain NumPy; tables are small (angular momenta <= 3 after
derivative shifts) so per-shell-pair Python recursion cost is negligible
compared to the contractions that consume them.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .boys import boys


def e_table(imax: int, jmax: int, Q: float, a: float, b: float) -> np.ndarray:
    """Hermite expansion coefficients for one Cartesian dimension.

    Args:
        imax, jmax: maximum powers on centers A and B.
        Q: ``A - B`` for this dimension.
        a, b: Gaussian exponents on A and B. ``b == 0`` reduces to the
            single-Gaussian expansion used for auxiliary (RI) functions.

    Returns:
        Array ``E`` of shape ``(imax+1, jmax+1, imax+jmax+1)`` where
        ``E[i, j, t]`` is ``E_t^{ij}``.
    """
    p = a + b
    q = a * b / p
    tmax = imax + jmax
    E = np.zeros((imax + 1, jmax + 1, tmax + 1))
    E[0, 0, 0] = np.exp(-q * Q * Q)
    Xpa = -(b / p) * Q  # P - A
    Xpb = (a / p) * Q  # P - B
    inv2p = 1.0 / (2.0 * p)
    for i in range(imax):
        for t in range(i + 1):
            val = Xpa * E[i, 0, t]
            if t > 0:
                val += inv2p * E[i, 0, t - 1]
            if t + 1 <= i:
                val += (t + 1) * E[i, 0, t + 1]
            E[i + 1, 0, t] = val
        E[i + 1, 0, i + 1] = inv2p * E[i, 0, i]
    for i in range(imax + 1):
        for j in range(jmax):
            for t in range(i + j + 1):
                val = Xpb * E[i, j, t]
                if t > 0:
                    val += inv2p * E[i, j, t - 1]
                if t + 1 <= i + j:
                    val += (t + 1) * E[i, j, t + 1]
                E[i, j + 1, t] = val
            E[i, j + 1, i + j + 1] = inv2p * E[i, j, i + j]
    return E


def r_table(tmax: int, umax: int, vmax: int, p: float, PQ: np.ndarray) -> np.ndarray:
    """Hermite Coulomb integrals ``R^0_{tuv}``.

    Args:
        tmax, umax, vmax: maximum Hermite orders per dimension.
        p: composite exponent of the charge distribution pair.
        PQ: 3-vector ``P - Q`` between composite centers.

    Returns:
        Array of shape ``(tmax+1, umax+1, vmax+1)``.
    """
    nmax = tmax + umax + vmax
    T = p * float(PQ @ PQ)
    F = boys(nmax, T)
    # R^n_{000} = (-2p)^n F_n(T)
    Rn = np.empty((nmax + 1, tmax + 1, umax + 1, vmax + 1))
    Rn[:] = 0.0
    scale = 1.0
    for n in range(nmax + 1):
        Rn[n, 0, 0, 0] = scale * F[n]
        scale *= -2.0 * p
    x, y, z = (float(c) for c in PQ)
    for total in range(1, nmax + 1):
        for t in range(min(total, tmax) + 1):
            for u in range(min(total - t, umax) + 1):
                v = total - t - u
                if v > vmax or v < 0:
                    continue
                for n in range(nmax - total + 1):
                    if t > 0:
                        val = x * Rn[n + 1, t - 1, u, v]
                        if t > 1:
                            val += (t - 1) * Rn[n + 1, t - 2, u, v]
                    elif u > 0:
                        val = y * Rn[n + 1, t, u - 1, v]
                        if u > 1:
                            val += (u - 1) * Rn[n + 1, t, u - 2, v]
                    else:
                        val = z * Rn[n + 1, t, u, v - 1]
                        if v > 1:
                            val += (v - 1) * Rn[n + 1, t, u, v - 2]
                    Rn[n, t, u, v] = val
    return Rn[0]


@lru_cache(maxsize=None)
def cartesian_components(l: int) -> tuple[tuple[int, int, int], ...]:
    """Cartesian component exponents ``(lx, ly, lz)`` for shell momentum l.

    Ordering is lexicographic with x decreasing first (the GAMESS/common
    convention): e.g. for l=1 -> x, y, z; l=2 -> xx, xy, xz, yy, yz, zz.
    Memoized (and returned as an immutable tuple): the set of momenta in
    a run is tiny while every shell loop asks for it.
    """
    comps = []
    for lx in range(l, -1, -1):
        for ly in range(l - lx, -1, -1):
            comps.append((lx, ly, l - lx - ly))
    return tuple(comps)


def ncart(l: int) -> int:
    """Number of Cartesian components of an l shell."""
    return (l + 1) * (l + 2) // 2
