"""Cross-call integral workspace: screening bounds and shell-pair caching.

An MBE-AIMD step evaluates thousands of fragment energy/gradient pairs,
and every one of them used to rebuild the same geometry-independent
integral machinery from scratch: Hermite E tables for each shell pair
(seven separate `pair_data` builds per pair per solve across
overlap/kinetic/nuclear/3c/derivative drivers), the auxiliary-basis
angular-momentum grouping (whose E tables do not depend on geometry at
all — the dummy partner sits on the same center), and the Cauchy-Schwarz
bound table (as expensive as a full `eri3c` build). This is exactly the
redundant work the paper's performance model assumes away (Sec. V: all
bottlenecks reduce to *screened*, dense GEMMs) and that CP2K's exascale
effort attributes to missing integral reuse.

`IntegralWorkspace` is the per-process fix, mirroring the shape of
`repro.calculators.GuessCache`:

* **LRU byte budget** — every cached payload is accounted; least
  recently used entries are evicted first, so million-fragment plans
  cannot exhaust worker memory.
* **Composition keys** — entries are keyed on the *composition* of the
  basis (per-shell angular momentum, owning atom, exponents and
  contraction coefficients), never on object identity, so the freshly
  rebuilt `BasisSet` of the same fragment at the next MD step hits.
* **Exact vs slowly-varying** — shell-pair E tables are keyed on the
  exact centers (bitwise-identical reuse within one geometry, natural
  misses across steps); auxiliary group scaffolding is geometry-
  independent and reused with only the centers refreshed; Schwarz
  bounds are smooth in the geometry and are re-screened only when an
  atom has moved beyond ``displacement_tol`` bohr since they were
  computed, with a conservative ``stale_safety`` inflation applied to
  served-while-stale bounds.
* **Determinism** — with ``displacement_tol = 0.0`` the bounds are
  recomputed whenever the geometry changed at all, so every screening
  decision is a pure function of the current geometry and a resumed
  run takes bitwise-identical screening decisions (``--deterministic``
  pins this; see docs/PERFORMANCE.md).

All caching is *exact* (served arrays are bitwise what a fresh build
would produce); only the screening threshold (``screen`` / the
calculators' ``int_screen``) changes numbers, and the workspace tracks
the summed neglected Schwarz bound so callers can report a rigorous
error estimate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager

import numpy as np

#: default screening threshold for the calculators / CLI (``--int-screen``);
#: the neglected per-integral bound, chosen so total energies stay within
#: 1e-9 Ha of the unscreened path on the benchmark systems
DEFAULT_INT_SCREEN = 1.0e-12

#: re-screen Schwarz bounds when any atom moved further than this (bohr)
DEFAULT_DISPLACEMENT_TOL = 0.25

#: inflation applied to Schwarz bounds served while stale (atoms moved,
#: but less than the tolerance) — keeps the screening conservative
DEFAULT_STALE_SAFETY = 16.0


def _shell_sig(sh) -> tuple:
    """Geometry-free identity of one shell (momentum, atom, primitives)."""
    return (sh.l, sh.atom, sh.exps.tobytes(), sh.coefs.tobytes())


def basis_composition_key(basis) -> tuple:
    """Geometry-free identity of a whole basis (shell order included)."""
    return tuple(_shell_sig(sh) for sh in basis.shells)


def _centers(basis) -> np.ndarray:
    return np.array([sh.center for sh in basis.shells])


def payload_nbytes(payload) -> int:
    """Actual bytes held alive by a cached payload.

    Walks arrays, dataclass-like objects, and the standard containers,
    deduplicating by object identity so arrays shared between entries of
    one payload (e.g. the scaffold tuples in `aux_groups`) are counted
    once. Replaces the hand-maintained per-call-site size expressions,
    which had drifted from the stored payloads (they under-counted the
    `PairData` tables and ignored container members entirely), skewing
    the LRU eviction order away from the actual memory footprint.
    """
    seen: set[int] = set()

    def walk(obj) -> int:
        oid = id(obj)
        if oid in seen:
            return 0
        seen.add(oid)
        if isinstance(obj, np.ndarray):
            # views/slices keep the whole base buffer alive
            base = obj.base if obj.base is not None else obj
            if id(base) in seen and base is not obj:
                return 0
            seen.add(id(base))
            return int(base.nbytes)
        if isinstance(obj, (list, tuple, set, frozenset)):
            return sum(walk(x) for x in obj)
        if isinstance(obj, dict):
            return sum(walk(v) for v in obj.values())
        fields = getattr(obj, "__dataclass_fields__", None)
        if fields is not None:
            return sum(walk(getattr(obj, name)) for name in fields)
        return 0

    return walk(payload)


class IntegralWorkspace:
    """Per-process cache of integral-engine intermediates (LRU budgeted).

    Products served (all keyed on basis composition):

    * `pair_data` — shell-pair Hermite expansion tables with unified
      derivative headroom ``(di=1, dj=2)``, keyed on the exact pair
      geometry, so the 3c, derivative, Schwarz and one-electron drivers
      all share one build per pair per geometry;
    * `aux_groups` — the auxiliary angular-momentum grouping with its
      (geometry-independent) E tables cached and only the centers
      refreshed per call;
    * `schwarz_bounds` — the Cauchy-Schwarz shell-pair bound table,
      re-screened only when the geometry drifted beyond
      ``displacement_tol`` (stale serves are inflated by
      ``stale_safety``);
    * `aux_function_bounds` — per-auxiliary-function bounds
      ``sqrt((P|P))`` (translation invariant, cached exactly);
    * `dmax_blocks` — per-shell-block max |D| tables for the 4c
      derivative driver, keyed on the density bytes;
    * `shell_classes` — packed per-class shell-pair tables for the
      batched kernels (`repro.integrals.batch`), keyed on the exact
      geometry.

    ``enabled=False`` turns every lookup into a miss and stores nothing
    (statistics-only mode, mirroring `GuessCache`). ``tracer`` receives
    ``workspace.hit`` instants for the coarse products and
    ``int.screen`` instants from the screened drivers.
    """

    def __init__(self, max_bytes: int = 256 * 2**20, enabled: bool = True,
                 displacement_tol: float = DEFAULT_DISPLACEMENT_TOL,
                 stale_safety: float = DEFAULT_STALE_SAFETY,
                 tracer=None, tenant_max_bytes: int | None = None) -> None:
        if displacement_tol < 0.0:
            raise ValueError(
                f"displacement_tol must be >= 0, got {displacement_tol}"
            )
        if stale_safety < 1.0:
            raise ValueError(
                f"stale_safety must be >= 1, got {stale_safety}"
            )
        self.max_bytes = int(max_bytes)
        #: optional per-tenant byte ceiling — entries are attributed to
        #: the tenant whose thread stored them (see `set_tenant`); a
        #: tenant over budget evicts only its own LRU entries
        self.tenant_max_bytes = (
            int(tenant_max_bytes) if tenant_max_bytes is not None else None
        )
        self.enabled = enabled
        self.displacement_tol = float(displacement_tol)
        self.stale_safety = float(stale_safety)
        self.tracer = tracer
        #: key -> (payload, nbytes, owner tenant); LRU order, recent last
        self._entries: OrderedDict[
            tuple, tuple[object, int, str | None]
        ] = OrderedDict()
        self._nbytes = 0
        #: per-tenant resident bytes (entries stored by that tenant)
        self._tenant_nbytes: dict[str, int] = {}
        # entry/counter accesses are serialised so the process-global
        # workspace can back the multi-tenant service's worker threads;
        # payload *builds* stay outside the lock (duplicate builds are
        # harmless — payloads are exact)
        self._lock = threading.RLock()
        self._tenant = threading.local()
        # counters
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bound_rebuilds = 0
        self.stale_serves = 0
        #: blocking lock acquisitions (another thread held the workspace)
        self.contentions = 0
        #: per-tenant {tenant: {"hits": n, "misses": n}}
        self.tenant_stats: dict[str, dict[str, int]] = {}
        # screening accounting (accumulated by the screened drivers)
        self.pairs_total = 0
        self.pairs_skipped = 0
        self.neglected_bound = 0.0

    @contextmanager
    def _locked(self):
        """Hold the workspace lock, counting contended acquisitions."""
        if not self._lock.acquire(blocking=False):
            self.contentions += 1
            self._lock.acquire()
        try:
            yield
        finally:
            self._lock.release()

    def set_tenant(self, tenant: str | None) -> None:
        """Attribute this thread's subsequent hits/misses to ``tenant``.

        Thread-local: the service's worker threads call this before
        evaluating a fragment so the shared warm layer's traffic can be
        reported per job. ``None`` clears the attribution.
        """
        self._tenant.name = tenant

    def _tenant_record(self, hit: bool) -> None:
        name = getattr(self._tenant, "name", None)
        if name is None:
            return
        t = self.tenant_stats.setdefault(
            name, {"hits": 0, "misses": 0, "evictions": 0}
        )
        t["hits" if hit else "misses"] += 1

    def _tenant_bytes_add(self, tenant: str | None, delta: int) -> None:
        """Adjust a tenant's resident-byte count (caller holds lock)."""
        if tenant is None:
            return
        total = self._tenant_nbytes.get(tenant, 0) + delta
        if total > 0:
            self._tenant_nbytes[tenant] = total
        else:
            self._tenant_nbytes.pop(tenant, None)

    def _evict_entry(self, key: tuple) -> None:
        """Evict one entry, attributing it to its owner (lock held)."""
        _, freed, owner = self._entries.pop(key)
        self._nbytes -= freed
        self._tenant_bytes_add(owner, -freed)
        self.evictions += 1
        if owner is not None:
            t = self.tenant_stats.setdefault(
                owner, {"hits": 0, "misses": 0, "evictions": 0}
            )
            t.setdefault("evictions", 0)
            t["evictions"] += 1

    # ------------------------------------------------------------------
    # LRU plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Current total payload size of the cached arrays."""
        return self._nbytes

    def _get(self, key: tuple):
        with self._locked():
            if not self.enabled:
                self.misses += 1
                self._tenant_record(hit=False)
                return None
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._tenant_record(hit=False)
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._tenant_record(hit=True)
            return entry[0]

    def _put(self, key: tuple, payload, nbytes: int | None = None) -> None:
        if not self.enabled:
            return
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        tenant = getattr(self._tenant, "name", None)
        with self._locked():
            old = self._entries.pop(key, None)
            if old is not None:
                self._nbytes -= old[1]
                self._tenant_bytes_add(old[2], -old[1])
            self._entries[key] = (payload, int(nbytes), tenant)
            self._nbytes += int(nbytes)
            self._tenant_bytes_add(tenant, int(nbytes))
            # quota first: an over-budget tenant sheds only its own LRU
            # entries (never the one just stored), so one job's traffic
            # cannot push another job's warm tables out via the quota
            if tenant is not None and self.tenant_max_bytes is not None:
                while self._tenant_nbytes.get(tenant, 0) \
                        > self.tenant_max_bytes:
                    victim = next(
                        (k for k, v in self._entries.items()
                         if k != key and v[2] == tenant),
                        None,
                    )
                    if victim is None:
                        break
                    self._evict_entry(victim)
            while self._nbytes > self.max_bytes and len(self._entries) > 1:
                self._evict_entry(next(iter(self._entries)))

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._locked():
            self._entries.clear()
            self._nbytes = 0
            self._tenant_nbytes.clear()

    # ------------------------------------------------------------------
    # shell-pair expansion tables
    # ------------------------------------------------------------------
    #: unified derivative headroom: covers every driver in the stack
    #: (bra derivatives need di=1; the kinetic operator needs dj=2)
    PAIR_DI = 1
    PAIR_DJ = 2

    def pair_data(self, sha, shb):
        """Cached `PairData` for a shell pair at its exact geometry.

        Built with unified headroom ``(di=1, dj=2)`` so one entry serves
        the plain, derivative, and kinetic drivers alike — entries of
        the enlarged E table at lower indices are bitwise identical to a
        smaller build (the recursion only ever reads lower entries).
        """
        from .engine import pair_data

        key = ("pair", _shell_sig(sha), _shell_sig(shb),
               sha.center.tobytes(), shb.center.tobytes())
        pd = self._get(key)
        if pd is None:
            pd = pair_data(sha, shb, self.PAIR_DI, self.PAIR_DJ)
            self._put(key, pd)
        return pd

    # ------------------------------------------------------------------
    # auxiliary group scaffolding
    # ------------------------------------------------------------------
    def aux_groups(self, aux, di: int = 0) -> list:
        """Auxiliary angular-momentum groups with refreshed centers.

        The expensive part of `aux_group_data` — the per-group E tables —
        does not depend on geometry at all (the dummy ``b = 0`` partner
        sits on the shell's own center, so ``AB = 0`` always); only the
        composite centers ``P`` do. The scaffolding is therefore cached
        on composition alone and every call rebuilds just the (cheap)
        `PairData`/`AuxGroup` shells around fresh centers.
        """
        from .engine import AuxGroup, PairData, aux_group_data

        key = ("auxgrp", basis_composition_key(aux), di)
        scaffold = self._get(key)
        if scaffold is None:
            groups = aux_group_data(aux, di=di)
            # idxs: member-shell indices per group (to refresh centers)
            by_l: dict[int, list[int]] = {}
            for idx, sh in enumerate(aux.shells):
                by_l.setdefault(sh.l, []).append(idx)
            scaffold = []
            for grp in groups:
                idxs = np.array(by_l[grp.l], dtype=int)
                scaffold.append((grp, idxs))
            self._put(key, scaffold)
            if self.tracer:
                self.tracer.instant(
                    "workspace.hit", cat="integrals", product="aux_groups",
                    hit=False, di=di,
                )
            return [grp for grp, _ in scaffold]
        if self.tracer:
            self.tracer.instant(
                "workspace.hit", cat="integrals", product="aux_groups",
                hit=True, di=di,
            )
        out = []
        for grp, idxs in scaffold:
            P = np.array([aux.shells[i].center for i in idxs])
            sh0 = aux.shells[idxs[0]]
            pd = PairData(
                sh0, sh0, grp.pd.a, grp.pd.b, grp.pd.cc, grp.pd.p, P,
                grp.pd.E, grp.pd.imax, grp.pd.jmax,
            )
            out.append(AuxGroup(
                l=grp.l, pd=pd,
                atoms=np.array([aux.shells[i].atom for i in idxs]),
                offsets=np.array([aux.offsets[i] for i in idxs]),
                comp_norms=sh0.comp_norms,
            ))
        return out

    # ------------------------------------------------------------------
    # screening bound tables
    # ------------------------------------------------------------------
    def schwarz_bounds(self, basis) -> np.ndarray:
        """Cauchy-Schwarz shell-pair bounds, re-screened on displacement.

        Served exactly when the geometry is unchanged; inflated by
        ``stale_safety`` when atoms moved by no more than
        ``displacement_tol`` (the bound is smooth in the geometry, so a
        bounded move costs a bounded factor — the inflation keeps the
        screen conservative); recomputed beyond the tolerance.
        """
        from .eri import schwarz_pair_bounds

        key = ("schwarz", basis_composition_key(basis))
        coords = _centers(basis)
        cached = self._get(key)
        if cached is not None:
            Q, ref = cached
            disp = float(np.max(np.linalg.norm(coords - ref, axis=1)))
            if disp == 0.0:
                if self.tracer:
                    self.tracer.instant(
                        "workspace.hit", cat="integrals", product="schwarz",
                        hit=True, stale=False,
                    )
                return Q
            if disp <= self.displacement_tol:
                with self._locked():
                    self.stale_serves += 1
                if self.tracer:
                    self.tracer.instant(
                        "workspace.hit", cat="integrals", product="schwarz",
                        hit=True, stale=True, displacement=disp,
                    )
                return Q * self.stale_safety
        Q = schwarz_pair_bounds(basis, workspace=self)
        with self._locked():
            self.bound_rebuilds += 1
        self._put(key, (Q, coords))
        if self.tracer:
            self.tracer.instant(
                "workspace.hit", cat="integrals", product="schwarz",
                hit=False,
            )
        return Q

    def aux_function_bounds(self, aux) -> np.ndarray:
        """Per-auxiliary-function bounds ``sqrt((P|P))``, shape (naux,).

        ``(P|P)`` is translation invariant, so the table depends only on
        the composition and caches exactly.
        """
        from .eri import aux_function_bounds

        key = ("auxbound", basis_composition_key(aux))
        q = self._get(key)
        if q is None:
            q = aux_function_bounds(aux)
            self._put(key, q)
        return q

    def dmax_blocks(self, basis, D: np.ndarray) -> np.ndarray:
        """Per-shell-block ``max |D|`` table for 4c screening.

        Keyed on the density bytes: the conventional gradient driver is
        typically invoked more than once with the same converged density
        (screened-vs-exact comparisons, repeated property evaluations).
        """
        key = ("dmax", basis_composition_key(basis), hash(D.tobytes()))
        table = self._get(key)
        if table is None:
            table = _dmax_table(basis, D)
            self._put(key, table)
        return table

    # ------------------------------------------------------------------
    # batched shell-class tables
    # ------------------------------------------------------------------
    def shell_classes(self, basis) -> list:
        """Packed shell-pair class tables for the batched kernels.

        Keyed on composition plus the exact shell centers: the packed E
        tables are geometry-dependent, so within one geometry every
        driver (overlap/kinetic/nuclear/Schwarz/3c/derivatives) shares a
        single class build, and the next MD step naturally misses.
        """
        from .batch import _build_shell_classes

        key = ("classtab", basis_composition_key(basis),
               _centers(basis).tobytes())
        classes = self._get(key)
        if classes is None:
            classes = _build_shell_classes(basis)
            self._put(key, classes)
            if self.tracer:
                self.tracer.instant(
                    "workspace.hit", cat="integrals",
                    product="shell_classes", hit=False,
                )
        elif self.tracer:
            self.tracer.instant(
                "workspace.hit", cat="integrals",
                product="shell_classes", hit=True,
            )
        return classes

    # ------------------------------------------------------------------
    # screening statistics
    # ------------------------------------------------------------------
    def record_screen(self, kind: str, pairs_total: int, pairs_skipped: int,
                      neglected_bound: float) -> None:
        """Account one screened driver pass (and emit ``int.screen``)."""
        with self._locked():
            self.pairs_total += int(pairs_total)
            self.pairs_skipped += int(pairs_skipped)
            self.neglected_bound += float(neglected_bound)
        if self.tracer:
            self.tracer.instant(
                "int.screen", cat="integrals", kind=kind,
                pairs=int(pairs_total), skipped=int(pairs_skipped),
                neglected=float(neglected_bound),
            )

    def stats(self) -> dict:
        """Counters snapshot (cache traffic + screening accounting)."""
        with self._locked():
            out = {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bound_rebuilds": self.bound_rebuilds,
                "stale_serves": self.stale_serves,
                "contentions": self.contentions,
                "entries": len(self._entries),
                "nbytes": self._nbytes,
                "pairs_total": self.pairs_total,
                "pairs_skipped": self.pairs_skipped,
                "neglected_bound": self.neglected_bound,
            }
            names = set(self.tenant_stats) | set(self._tenant_nbytes)
            if names:
                out["tenants"] = {
                    k: dict(
                        self.tenant_stats.get(
                            k, {"hits": 0, "misses": 0, "evictions": 0}
                        ),
                        nbytes=self._tenant_nbytes.get(k, 0),
                    )
                    for k in sorted(names)
                }
            return out

    def __repr__(self) -> str:
        return (
            f"IntegralWorkspace(entries={len(self._entries)}, "
            f"nbytes={self._nbytes}, hits={self.hits}, "
            f"misses={self.misses}, enabled={self.enabled})"
        )


def _dmax_table(basis, D: np.ndarray) -> np.ndarray:
    """``Dmax[i, j] = max |D[block i, block j]|`` over shell blocks."""
    nsh = basis.nshells
    offs = basis.offsets
    table = np.empty((nsh, nsh))
    absD = np.abs(D)
    for i, sha in enumerate(basis.shells):
        si = slice(offs[i], offs[i] + sha.nfunc)
        for j, shb in enumerate(basis.shells):
            sj = slice(offs[j], offs[j] + shb.nfunc)
            table[i, j] = absD[si, sj].max()
    return table


#: process-global workspace used by the calculators when none is given
_GLOBAL_WORKSPACE: IntegralWorkspace | None = None


def get_workspace() -> IntegralWorkspace:
    """The per-process shared `IntegralWorkspace` (created on first use)."""
    global _GLOBAL_WORKSPACE
    if _GLOBAL_WORKSPACE is None:
        _GLOBAL_WORKSPACE = IntegralWorkspace()
    return _GLOBAL_WORKSPACE
