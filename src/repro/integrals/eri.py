"""Electron-repulsion integrals: two-, three- and four-center classes.

All classes share one general bra-pair x ket-pair Hermite contraction
(`_eri_general`). Auxiliary (RI) shells enter as "pairs" with a zero-
exponent dummy partner, under which the machinery reduces to the single-
Gaussian Hermite expansion. Derivative drivers contract coefficient
tensors against integral first derivatives on the fly, exactly as the
paper's gradient is organized (coefficients first, derivatives never
stored).

Screening and reuse (paper Sec. V: every bottleneck reduces to
*screened*, dense contractions): the three-center drivers accept a
Cauchy-Schwarz ``screen`` threshold — a bra shell pair is skipped when
``Q_ab * max_P Q_P`` (times the local coefficient magnitude, for the
derivative drivers) cannot exceed it — plus an optional
`IntegralWorkspace` that serves cached shell-pair expansion tables,
auxiliary group scaffolding and bound tables across calls and MD steps.
Every screened driver accumulates the summed bound of what it skipped,
so callers get a rigorous estimate of the neglected contribution.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..basis.basisset import BasisSet
    from .workspace import IntegralWorkspace
from .engine import (
    AuxGroup,
    PairData,
    aux_group_data,
    canonical_shell_pairs,
    comp_arrays,
    hermite_box,
    pair_data,
    r_tables_batch,
    single_data,
    w_deriv,
    w_tensor,
)

_TWO_PI_52 = 2.0 * np.pi**2.5

#: derivative integrals grow like ``2 alpha x extent`` relative to the
#: plain Schwarz bound; screening decisions on derivative drivers absorb
#: that in a conservative prefactor
DERIV_SAFETY = 50.0


def _bra_pair(workspace, sha, shb, di: int, dj: int) -> PairData:
    """Shell-pair tables from the workspace (unified headroom) or fresh."""
    if workspace is not None:
        return workspace.pair_data(sha, shb)
    return pair_data(sha, shb, di, dj)


def _aux_groups(workspace, aux, di: int = 0) -> list[AuxGroup]:
    if workspace is not None:
        return workspace.aux_groups(aux, di=di)
    return aux_group_data(aux, di=di)


def _combined_R(bra: PairData, ket: PairData, tbox_b, tbox_k) -> np.ndarray:
    """R tensors over the combined Hermite box for every (n, m) primitive
    pair combination. Shape ``(n, m, TX+1, TY+1, TZ+1)``."""
    n, m = bra.nprim, ket.nprim
    p = bra.p[:, None].repeat(m, axis=1).ravel()
    q = np.tile(ket.p, n)
    alpha = p * q / (p + q)
    PQ = (bra.P[:, None, :] - ket.P[None, :, :]).reshape(n * m, 3)
    TX = tbox_b[0] + tbox_k[0]
    TY = tbox_b[1] + tbox_k[1]
    TZ = tbox_b[2] + tbox_k[2]
    R = r_tables_batch(TX, TY, TZ, alpha, PQ)
    return R.reshape(n, m, TX + 1, TY + 1, TZ + 1)


def _kfac(bra: PairData, ket: PairData) -> np.ndarray:
    """Prefactor ``2 pi^{5/2} / (p q sqrt(p+q))`` with contraction coefs,
    shape ``(n, m)``."""
    p = bra.p[:, None]
    q = ket.p[None, :]
    return (
        _TWO_PI_52
        / (p * q * np.sqrt(p + q))
        * bra.cc[:, None]
        * ket.cc[None, :]
    )


def _contract(bra_W, ket_W, R, K, tb_idx, tk_idx) -> np.ndarray:
    """Assemble the ERI block.

    Args:
        bra_W: ``(n, nA*nB, Tb)`` flattened bra expansion.
        ket_W: ``(m, nC*nD, Tk)`` flattened ket expansion with the
            ``(-1)^{tau+nu+phi}`` phase folded in.
        R: combined Hermite tensor ``(n, m, TX+1, TY+1, TZ+1)``.
        K: prefactors ``(n, m)``.
        tb_idx, tk_idx: Hermite boxes, shapes ``(Tb, 3)``, ``(Tk, 3)``.

    Returns:
        ``(nA*nB, nC*nD)`` block.
    """
    tsum = tb_idx[:, None, :] + tk_idx[None, :, :]  # (Tb, Tk, 3)
    M = R[:, :, tsum[..., 0], tsum[..., 1], tsum[..., 2]]  # (n, m, Tb, Tk)
    return np.einsum("nxt,nm,nmts,mys->xy", bra_W, K, M, ket_W, optimize=True)


def _phase(tk_idx: np.ndarray) -> np.ndarray:
    return (-1.0) ** tk_idx.sum(axis=1)


def _eri_general(bra: PairData, ket: PairData, ca, cb, cc, cd) -> np.ndarray:
    """General (ab|cd) block over Cartesian components, un-normalized."""
    lb = (int(ca[:, 0].max() + cb[:, 0].max()), int(ca[:, 1].max() + cb[:, 1].max()),
          int(ca[:, 2].max() + cb[:, 2].max()))
    lk = (int(cc[:, 0].max() + cd[:, 0].max()), int(cc[:, 1].max() + cd[:, 1].max()),
          int(cc[:, 2].max() + cd[:, 2].max()))
    tb_idx = hermite_box(lb)
    tk_idx = hermite_box(lk)
    Wb = w_tensor(bra, ca, cb, lb).reshape(bra.nprim, len(ca) * len(cb), -1)
    Wk = w_tensor(ket, cc, cd, lk).reshape(ket.nprim, len(cc) * len(cd), -1)
    Wk = Wk * _phase(tk_idx)[None, None, :]
    R = _combined_R(bra, ket, lb, lk)
    K = _kfac(bra, ket)
    blk = _contract(Wb, Wk, R, K, tb_idx, tk_idx)
    return blk.reshape(len(ca), len(cb), len(cc), len(cd))


_S_COMP = comp_arrays(0)


def eri2c(aux: BasisSet, workspace: IntegralWorkspace | None = None) -> np.ndarray:
    """Two-center Coulomb metric ``(P|Q)``, shape ``(naux, naux)``.

    Processed as angular-momentum group pairs: one Hermite batch per
    (l, l') combination covers the whole metric. ``workspace`` serves the
    cached (geometry-independent) group scaffolding.
    """
    try:
        groups = _aux_groups(workspace, aux)
    except ValueError:
        return _eri2c_pershell(aux)
    n = aux.nbf
    J = np.zeros((n, n))
    for gb in groups:
        cb = comp_arrays(gb.l)
        X = len(cb)
        nb_ = gb.pd.nprim
        lb = (gb.l,) * 3
        tb_idx = hermite_box(lb)
        Wb = w_tensor(gb.pd, cb, _S_COMP, lb)[:, :, 0].reshape(nb_, X, -1)
        for gk in groups:
            if gk.l < gb.l:
                continue
            ck = comp_arrays(gk.l)
            C = len(ck)
            m = gk.pd.nprim
            lk = (gk.l,) * 3
            tk_idx = hermite_box(lk)
            Wk = w_tensor(gk.pd, ck, _S_COMP, lk)[:, :, 0].reshape(m, C, -1)
            Wk = Wk * _phase(tk_idx)[None, None, :]
            R = _combined_R(gb.pd, gk.pd, lb, lk)
            K = _kfac(gb.pd, gk.pd)
            tsum = tb_idx[:, None, :] + tk_idx[None, :, :]
            M = R[:, :, tsum[..., 0], tsum[..., 1], tsum[..., 2]]
            M *= K[:, :, None, None]
            blk = np.einsum("nxt,nmts,mys->nxmy", Wb, M, Wk, optimize=True)
            blk = blk * gb.comp_norms[None, :, None, None]
            blk = blk * gk.comp_norms[None, None, None, :]
            fi_b = (gb.offsets[:, None] + np.arange(X)[None, :]).ravel()
            fi_k = (gk.offsets[:, None] + np.arange(C)[None, :]).ravel()
            J[np.ix_(fi_b, fi_k)] = blk.reshape(nb_ * X, m * C)
            J[np.ix_(fi_k, fi_b)] = blk.reshape(nb_ * X, m * C).T
    return J


def _eri2c_pershell(aux: BasisSet) -> np.ndarray:
    """Per-shell-pair fallback for contracted auxiliary shells."""
    n = aux.nbf
    J = np.zeros((n, n))
    singles = [single_data(sh) for sh in aux.shells]
    comps = [comp_arrays(sh.l) for sh in aux.shells]
    for i, shp in enumerate(aux.shells):
        op = aux.offsets[i]
        for j in range(i, aux.nshells):
            shq = aux.shells[j]
            oq = aux.offsets[j]
            blk = _eri_general(singles[i], singles[j], comps[i], _S_COMP, comps[j], _S_COMP)
            blk = blk[:, 0, :, 0] * np.outer(shp.comp_norms, shq.comp_norms)
            J[op : op + shp.nfunc, oq : oq + shq.nfunc] = blk
            J[oq : oq + shq.nfunc, op : op + shp.nfunc] = blk.T
    return J


def _group_M(
    bra: PairData, grp: AuxGroup, tbox_b: tuple[int, int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Hermite kernel pieces for one (bra pair, aux group) combination.

    Returns ``(M2, Wk)`` where ``M2`` is the gathered, prefactor-folded
    Hermite Coulomb tensor reshaped to ``(n*Tb, m*Tk)`` and ``Wk`` the
    ket expansion ``(m, C, Tk)`` with the Hermite phase folded in. These
    depend only on geometry, so derivative drivers reuse them across all
    six (side, axis) combinations.
    """
    lk = (grp.l, grp.l, grp.l)
    tk_idx = hermite_box(lk)
    tb_idx = hermite_box(tbox_b)
    cg = comp_arrays(grp.l)
    Wk = w_tensor(grp.pd, cg, _S_COMP, lk)[:, :, 0, :, :, :]
    m = grp.pd.nprim
    C = len(cg)
    Wk = Wk.reshape(m, C, -1) * _phase(tk_idx)[None, None, :]
    R = _combined_R(bra, grp.pd, tbox_b, lk)
    K = _kfac(bra, grp.pd)
    tsum = tb_idx[:, None, :] + tk_idx[None, :, :]
    M = R[:, :, tsum[..., 0], tsum[..., 1], tsum[..., 2]]  # (n, m, Tb, Tk)
    M *= K[:, :, None, None]
    n = M.shape[0]
    Tb = tb_idx.shape[0]
    Tk = tk_idx.shape[0]
    M2 = np.ascontiguousarray(M.transpose(0, 2, 1, 3)).reshape(n * Tb, m * Tk)
    return M2, Wk


def _group_apply(M2: np.ndarray, Wk: np.ndarray, Wb: np.ndarray) -> np.ndarray:
    """Contract a bra expansion ``Wb (n, X, Tb)`` with cached kernel
    pieces, producing per-aux-shell blocks ``(m, X, C)``."""
    n, X, Tb = Wb.shape
    m, C, Tk = Wk.shape
    t1 = np.ascontiguousarray(Wb.transpose(1, 0, 2)).reshape(X, n * Tb) @ M2
    t1 = np.ascontiguousarray(t1.reshape(X, m, Tk).transpose(1, 0, 2))
    return np.matmul(t1, Wk.transpose(0, 2, 1))


def _group_kernel(
    bra: PairData,
    grp: AuxGroup,
    Wb: np.ndarray,
    tbox_b: tuple[int, int, int],
) -> np.ndarray:
    """One-shot grouped 3c contraction (build kernel, apply bra)."""
    M2, Wk = _group_M(bra, grp, tbox_b)
    return _group_apply(M2, Wk, Wb)


def eri3c(
    basis: BasisSet,
    aux: BasisSet,
    screen: float = 0.0,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """Three-center integrals ``(mu nu | P)``, shape ``(nbf, nbf, naux)``.

    Dispatches on the active kernel mode (`repro.integrals.batch`): the
    default batched implementation evaluates whole shell-pair classes at
    once and is bitwise-identical to the reference loop given the same
    Schwarz table. See `eri3c_loop` for the screening semantics shared
    by both implementations.
    """
    from .batch import eri3c_batched, use_batched

    if use_batched():
        return eri3c_batched(basis, aux, screen=screen, workspace=workspace)
    return eri3c_loop(basis, aux, screen=screen, workspace=workspace)


def eri3c_loop(
    basis: BasisSet,
    aux: BasisSet,
    screen: float = 0.0,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """Reference per-pair implementation of `eri3c`.

    Auxiliary shells are processed in per-angular-momentum batches: the
    whole fitting basis acts as a handful of 'super-shells', so Python
    overhead is amortized over the full auxiliary dimension.

    With ``screen > 0`` a bra shell pair is skipped when its Schwarz
    bound ``Q_ab * max_P Q_P`` cannot reach the threshold — every
    neglected integral is individually below ``screen`` and the summed
    bound of everything skipped is accounted to the workspace
    (`IntegralWorkspace.record_screen`). ``workspace`` additionally
    serves cached pair tables, aux scaffolding and bound tables.
    """
    nb, na = basis.nbf, aux.nbf
    out = np.zeros((nb, nb, na))
    groups = _aux_groups(workspace, aux)
    Q = None
    if screen > 0.0:
        Q = (workspace.schwarz_bounds(basis) if workspace is not None
             else schwarz_pair_bounds(basis))
        qaux = (workspace.aux_function_bounds(aux) if workspace is not None
                else aux_function_bounds(aux))
        qaux_max = float(qaux.max())
        qaux_sum = float(qaux.sum())
    nskip = 0
    npairs = 0
    neglected = 0.0
    for ish, jsh in canonical_shell_pairs(basis):
        sha = basis.shells[ish]
        shb = basis.shells[jsh]
        oa = basis.offsets[ish]
        ca = comp_arrays(sha.l)
        npairs += 1
        if Q is not None and Q[ish, jsh] * qaux_max <= screen:
            nskip += 1
            nfab = sha.nfunc * shb.nfunc * (1 if ish == jsh else 2)
            neglected += Q[ish, jsh] * qaux_sum * nfab
            continue
        ob = basis.offsets[jsh]
        cb = comp_arrays(shb.l)
        bra = _bra_pair(workspace, sha, shb, 0, 0)
        L = sha.l + shb.l
        tbox_b = (L, L, L)
        Wb = w_tensor(bra, ca, cb, tbox_b).reshape(bra.nprim, -1, (L + 1) ** 3)
        norms_ab = np.outer(sha.comp_norms, shb.comp_norms)
        for grp in groups:
            blk = _group_kernel(bra, grp, Wb, tbox_b)  # (m, X, C)
            C = blk.shape[2]
            blk = blk.reshape(-1, sha.nfunc, shb.nfunc, C)
            blk = blk * norms_ab[None, :, :, None] * grp.comp_norms[None, None, None, :]
            func_idx = grp.offsets[:, None] + np.arange(C)[None, :]
            out[oa : oa + sha.nfunc, ob : ob + shb.nfunc, func_idx] = blk.transpose(
                1, 2, 0, 3
            )
            if ish != jsh:
                out[ob : ob + shb.nfunc, oa : oa + sha.nfunc, func_idx] = (
                    blk.transpose(2, 1, 0, 3)
                )
    if workspace is not None and screen > 0.0:
        workspace.record_screen("eri3c", npairs, nskip, neglected)
    return out


def eri4c(basis: BasisSet) -> np.ndarray:
    """Four-center ERIs ``(mu nu | la si)``, shape ``(nbf,)*4``.

    Exploits bra/ket pair symmetry and bra<->ket symmetry (8-fold).
    Intended for validation and for the conventional-HF baseline on
    small systems only — the RI path never calls this.
    """
    n = basis.nbf
    out = np.zeros((n, n, n, n))
    shells = basis.shells
    offs = basis.offsets
    comps = [comp_arrays(sh.l) for sh in shells]
    npairs = canonical_shell_pairs(basis)
    pds = {ij: pair_data(shells[ij[0]], shells[ij[1]]) for ij in npairs}
    for pi, (i, j) in enumerate(npairs):
        for i2, j2 in npairs[pi:]:
            blk = _eri_general(
                pds[(i, j)], pds[(i2, j2)], comps[i], comps[j], comps[i2], comps[j2]
            )
            blk = (
                blk
                * shells[i].comp_norms[:, None, None, None]
                * shells[j].comp_norms[None, :, None, None]
                * shells[i2].comp_norms[None, None, :, None]
                * shells[j2].comp_norms[None, None, None, :]
            )
            sl = (
                slice(offs[i], offs[i] + shells[i].nfunc),
                slice(offs[j], offs[j] + shells[j].nfunc),
                slice(offs[i2], offs[i2] + shells[i2].nfunc),
                slice(offs[j2], offs[j2] + shells[j2].nfunc),
            )
            out[sl[0], sl[1], sl[2], sl[3]] = blk
            out[sl[1], sl[0], sl[2], sl[3]] = blk.transpose(1, 0, 2, 3)
            out[sl[0], sl[1], sl[3], sl[2]] = blk.transpose(0, 1, 3, 2)
            out[sl[1], sl[0], sl[3], sl[2]] = blk.transpose(1, 0, 3, 2)
            out[sl[2], sl[3], sl[0], sl[1]] = blk.transpose(2, 3, 0, 1)
            out[sl[3], sl[2], sl[0], sl[1]] = blk.transpose(3, 2, 0, 1)
            out[sl[2], sl[3], sl[1], sl[0]] = blk.transpose(2, 3, 1, 0)
            out[sl[3], sl[2], sl[1], sl[0]] = blk.transpose(3, 2, 1, 0)
    return out


# --------------------------------------------------------------------------
# Contracted derivative drivers
# --------------------------------------------------------------------------

def _deriv_blocks_pairwise(bra, ket, ca, cb, cc, cd, sides):
    """First-derivative blocks of (ab|cd) for the requested sides.

    ``sides`` is a sequence drawn from {"braA", "braB", "ketC", "ketD"}.
    The bra (ket) Hermite box is enlarged by one only when a bra (ket)
    side is differentiated, so the pair data only needs headroom on the
    differentiated sides. Returns dict side -> array (3, nA, nB, nC, nD).
    """
    bx = 1 if any(s.startswith("bra") for s in sides) else 0
    kx = 1 if any(s.startswith("ket") for s in sides) else 0
    lb = (int(ca[:, 0].max() + cb[:, 0].max()) + bx,
          int(ca[:, 1].max() + cb[:, 1].max()) + bx,
          int(ca[:, 2].max() + cb[:, 2].max()) + bx)
    lk = (int(cc[:, 0].max() + cd[:, 0].max()) + kx,
          int(cc[:, 1].max() + cd[:, 1].max()) + kx,
          int(cc[:, 2].max() + cd[:, 2].max()) + kx)
    tb_idx = hermite_box(lb)
    tk_idx = hermite_box(lk)
    R = _combined_R(bra, ket, lb, lk)
    K = _kfac(bra, ket)
    phase = _phase(tk_idx)
    Wb0 = w_tensor(bra, ca, cb, lb).reshape(bra.nprim, len(ca) * len(cb), -1)
    Wk0 = w_tensor(ket, cc, cd, lk).reshape(ket.nprim, len(cc) * len(cd), -1)
    Wk0p = Wk0 * phase[None, None, :]
    out = {}
    shape = (3, len(ca), len(cb), len(cc), len(cd))
    for side in sides:
        blocks = np.empty(shape)
        for axis in range(3):
            if side == "braA":
                dW = w_deriv(bra, ca, cb, lb, "bra", axis).reshape(bra.nprim, -1, Wb0.shape[2])
                blk = _contract(dW, Wk0p, R, K, tb_idx, tk_idx)
            elif side == "braB":
                dW = w_deriv(bra, ca, cb, lb, "ket", axis).reshape(bra.nprim, -1, Wb0.shape[2])
                blk = _contract(dW, Wk0p, R, K, tb_idx, tk_idx)
            elif side == "ketC":
                dW = w_deriv(ket, cc, cd, lk, "bra", axis).reshape(ket.nprim, -1, Wk0.shape[2])
                blk = _contract(Wb0, dW * phase[None, None, :], R, K, tb_idx, tk_idx)
            elif side == "ketD":
                dW = w_deriv(ket, cc, cd, lk, "ket", axis).reshape(ket.nprim, -1, Wk0.shape[2])
                blk = _contract(Wb0, dW * phase[None, None, :], R, K, tb_idx, tk_idx)
            else:
                raise ValueError(side)
            blocks[axis] = blk.reshape(shape[1:])
        out[side] = blocks
    return out


def contract_eri2c_deriv(
    aux: BasisSet, zeta: np.ndarray, natoms: int,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """``g = sum_{PQ} zeta_{PQ} d(P|Q)/dR``, shape ``(natoms, 3)``.

    Uses ``d/dQ = -d/dP``; both sides are processed as angular-momentum
    groups, so the work is a few batched contractions.
    """
    g = np.zeros((natoms, 3))
    groups_d = _aux_groups(workspace, aux, di=1)  # bra side (differentiated)
    groups = _aux_groups(workspace, aux)
    for gb in groups_d:
        cb = comp_arrays(gb.l)
        nb_comp = len(cb)
        n = gb.pd.nprim
        for gk in groups:
            ck = comp_arrays(gk.l)
            m = gk.pd.nprim
            C = len(ck)
            lb = (gb.l + 1,) * 3
            lk = (gk.l,) * 3
            tb_idx = hermite_box(lb)
            tk_idx = hermite_box(lk)
            Wk = w_tensor(gk.pd, ck, _S_COMP, lk)[:, :, 0].reshape(m, C, -1)
            Wk = Wk * _phase(tk_idx)[None, None, :]
            R = _combined_R(gb.pd, gk.pd, lb, lk)
            K = _kfac(gb.pd, gk.pd)
            tsum = tb_idx[:, None, :] + tk_idx[None, :, :]
            M = R[:, :, tsum[..., 0], tsum[..., 1], tsum[..., 2]]
            M *= K[:, :, None, None]
            # gathered coefficients: zg[n, m, x, y]
            fi_b = gb.offsets[:, None] + np.arange(nb_comp)[None, :]
            fi_k = gk.offsets[:, None] + np.arange(C)[None, :]
            zg = zeta[fi_b[:, None, :, None], fi_k[None, :, None, :]]
            zg = zg * gb.comp_norms[None, None, :, None]
            zg = zg * gk.comp_norms[None, None, None, :]
            # mask same-atom (derivative vanishes by invariance)
            same = gb.atoms[:, None] == gk.atoms[None, :]
            zg[same] = 0.0
            # Q[n, m, x, s] = sum_y zg[n,m,x,y] Wk[m,y,s]
            Q = np.einsum("nmxy,mys->nmxs", zg, Wk, optimize=True)
            for axis in range(3):
                dWb = w_deriv(gb.pd, cb, _S_COMP, lb, "bra", axis)[:, :, 0]
                dWb = dWb.reshape(n, nb_comp, -1)
                # vals[n, m] = sum_{x,t,s} dWb[n,x,t] M[n,m,t,s] Q[n,m,x,s]
                vals = np.einsum("nxt,nmts,nmxs->nm", dWb, M, Q, optimize=True)
                np.add.at(g[:, axis], gb.atoms, vals.sum(axis=1))
                np.subtract.at(g[:, axis], gk.atoms, vals.sum(axis=0))
    return g


def _zblk_table(basis: BasisSet, Z: np.ndarray) -> np.ndarray:
    """Per-shell-block coefficient magnitudes ``Zblk[i, j] = max |Z|``
    over the (i, j) function block (all aux). Shared by both kernel
    modes so screening decisions agree exactly."""
    offs = basis.offsets
    nsh = basis.nshells
    Zabs = np.abs(Z).max(axis=2)
    Zblk = np.empty((nsh, nsh))
    for i, shi in enumerate(basis.shells):
        si = slice(offs[i], offs[i] + shi.nfunc)
        for j, shj in enumerate(basis.shells):
            sj = slice(offs[j], offs[j] + shj.nfunc)
            Zblk[i, j] = Zabs[si, sj].max()
    return Zblk


def contract_eri3c_deriv(
    basis: BasisSet, aux: BasisSet, Z: np.ndarray, natoms: int,
    screen: float = 0.0,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """``g = sum_{mu nu P} Z_{mu nu P} d(mu nu|P)/dR``, shape ``(natoms, 3)``.

    Dispatches on the active kernel mode (`repro.integrals.batch`); the
    batched default is bitwise-identical to `contract_eri3c_deriv_loop`
    given the same Schwarz table. See the loop driver for screening
    semantics.
    """
    from .batch import contract_eri3c_deriv_batched, use_batched

    if use_batched():
        return contract_eri3c_deriv_batched(
            basis, aux, Z, natoms, screen=screen, workspace=workspace
        )
    return contract_eri3c_deriv_loop(
        basis, aux, Z, natoms, screen=screen, workspace=workspace
    )


def contract_eri3c_deriv_loop(
    basis: BasisSet, aux: BasisSet, Z: np.ndarray, natoms: int,
    screen: float = 0.0,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """Reference per-pair ``sum Z d(mu nu|P)/dR`` driver.

    ``Z`` has shape ``(nbf, nbf, naux)`` and need not be symmetric in
    (mu, nu). Auxiliary-center derivatives follow from translational
    invariance (``dP = -(dA + dB)``); auxiliary shells are processed in
    angular-momentum groups.

    With ``screen > 0`` a bra shell pair is skipped when ``DERIV_SAFETY *
    Q_ab * max_P Q_P * max |Z|`` over the pair's coefficient slice cannot
    reach the threshold. Skipping drops the pair's bra derivatives
    together with their translational-invariance images on the auxiliary
    centers, so the screened gradient still sums exactly to zero over all
    atoms. The summed bound of everything skipped is accounted to the
    workspace.
    """
    g = np.zeros((natoms, 3))
    groups = _aux_groups(workspace, aux)
    group_idx = [
        grp.offsets[:, None] + np.arange((grp.l + 1) * (grp.l + 2) // 2)[None, :]
        for grp in groups
    ]
    # (mu nu|P) is symmetric in (mu, nu): only the symmetric part of Z
    # contributes, and shell pairs can be restricted to ish <= jsh.
    Z = 0.5 * (Z + Z.transpose(1, 0, 2))
    Q = None
    if screen > 0.0:
        Q = (workspace.schwarz_bounds(basis) if workspace is not None
             else schwarz_pair_bounds(basis))
        qaux = (workspace.aux_function_bounds(aux) if workspace is not None
                else aux_function_bounds(aux))
        qaux_max = float(qaux.max())
        qaux_sum = float(qaux.sum())
        Zblk = _zblk_table(basis, Z)
    nskip = 0
    npairs = 0
    neglected = 0.0
    for ish, jsh in canonical_shell_pairs(basis):
        sha = basis.shells[ish]
        shb = basis.shells[jsh]
        oa = basis.offsets[ish]
        ca = comp_arrays(sha.l)
        pair_fac = 1.0 if ish == jsh else 2.0
        npairs += 1
        if Q is not None and (
            DERIV_SAFETY * Q[ish, jsh] * qaux_max * Zblk[ish, jsh]
            <= screen
        ):
            nskip += 1
            neglected += (
                DERIV_SAFETY * Q[ish, jsh] * Zblk[ish, jsh] * qaux_sum
                * sha.nfunc * shb.nfunc * pair_fac
            )
            continue
        ob = basis.offsets[jsh]
        cb = comp_arrays(shb.l)
        bra = _bra_pair(workspace, sha, shb, 1, 1)
        L = sha.l + shb.l + 1
        tbox_b = (L, L, L)
        tb_idx = hermite_box(tbox_b)
        norms_ab = np.outer(sha.comp_norms, shb.comp_norms).ravel()
        dWb = {}
        for axis in range(3):
            dWb[("bra", axis)] = w_deriv(bra, ca, cb, tbox_b, "bra", axis).reshape(
                bra.nprim, -1, tb_idx.shape[0]
            )
            dWb[("ket", axis)] = w_deriv(bra, ca, cb, tbox_b, "ket", axis).reshape(
                bra.nprim, -1, tb_idx.shape[0]
            )
        for grp, fi in zip(groups, group_idx):
            C = fi.shape[1]
            m = grp.pd.nprim
            # coefficients for this (bra pair, group): (m, X, C)
            zg = Z[oa : oa + sha.nfunc, ob : ob + shb.nfunc, fi]
            zg = zg.reshape(-1, m, C).transpose(1, 0, 2) * norms_ab[None, :, None]
            zg = zg * (pair_fac * grp.comp_norms)[None, None, :]
            M2, Wk = _group_M(bra, grp, tbox_b)
            for axis in range(3):
                dA_blk = _group_apply(M2, Wk, dWb[("bra", axis)])
                dB_blk = _group_apply(M2, Wk, dWb[("ket", axis)])
                vA = np.einsum("mxc,mxc->m", dA_blk, zg)
                vB = np.einsum("mxc,mxc->m", dB_blk, zg)
                g[sha.atom, axis] += vA.sum()
                g[shb.atom, axis] += vB.sum()
                np.subtract.at(g[:, axis], grp.atoms, vA + vB)
    if workspace is not None and screen > 0.0:
        workspace.record_screen("eri3c_deriv", npairs, nskip, neglected)
    return g


def schwarz_pair_bounds(
    basis: BasisSet, workspace: IntegralWorkspace | None = None
) -> np.ndarray:
    """Cauchy-Schwarz bounds ``Q_ij = max sqrt((ab|ab))`` per shell pair.

    Standard screening for all ERI classes: ``|(ab|cd)| <= Q_ab Q_cd``
    and ``|(ab|P)| <= Q_ab Q_P``. Shape ``(nshells, nshells)``. The bound
    ignores the component normalization (those are O(1) factors already
    inside `_eri_general`'s output diagonal). ``workspace`` serves the
    pair expansion tables; cached *bound tables* live one level up in
    `IntegralWorkspace.schwarz_bounds`.

    Dispatches between the batched shell-class kernels and the reference
    per-pair loop (`repro.integrals.batch.kernel_mode`).
    """
    from .batch import schwarz_pair_bounds_batched, use_batched

    if use_batched():
        return schwarz_pair_bounds_batched(basis, workspace=workspace)
    return schwarz_pair_bounds_loop(basis, workspace=workspace)


def schwarz_pair_bounds_loop(
    basis: BasisSet, workspace: IntegralWorkspace | None = None
) -> np.ndarray:
    """Reference per-pair Schwarz bound driver (see `schwarz_pair_bounds`)."""
    nsh = basis.nshells
    Q = np.zeros((nsh, nsh))
    for i, j in canonical_shell_pairs(basis):
        sha = basis.shells[i]
        shb = basis.shells[j]
        ca = comp_arrays(sha.l)
        cb = comp_arrays(shb.l)
        pd = _bra_pair(workspace, sha, shb, 0, 0)
        blk = _eri_general(pd, pd, ca, cb, ca, cb)
        na, nb = len(ca), len(cb)
        diag = np.abs(
            blk.reshape(na * nb, na * nb)[np.diag_indices(na * nb)]
        )
        Q[i, j] = Q[j, i] = float(np.sqrt(diag.max()))
    return Q


def aux_function_bounds(aux: BasisSet) -> np.ndarray:
    """Cauchy-Schwarz bounds ``Q_P = sqrt((P|P))`` per auxiliary function.

    Shape ``(naux,)``. ``(P|P)`` is translation invariant, so identical
    shells (same momentum, exponents, coefficients — the common case for
    even-tempered fitting bases) share one evaluation.
    """
    q = np.empty(aux.nbf)
    memo: dict[tuple, np.ndarray] = {}
    for i, sh in enumerate(aux.shells):
        key = (sh.l, sh.exps.tobytes(), sh.coefs.tobytes())
        vals = memo.get(key)
        if vals is None:
            sd = single_data(sh)
            comps = comp_arrays(sh.l)
            blk = _eri_general(sd, sd, comps, _S_COMP, comps, _S_COMP)
            diag = np.abs(np.diagonal(blk[:, 0, :, 0])) * sh.comp_norms**2
            vals = np.sqrt(diag)
            memo[key] = vals
        off = aux.offsets[i]
        q[off : off + sh.nfunc] = vals
    return q


def contract_eri4c_deriv_hf(
    basis: BasisSet, D: np.ndarray, natoms: int, screen: float = 1.0e-11,
    workspace: IntegralWorkspace | None = None,
) -> np.ndarray:
    """Two-electron part of the conventional RHF gradient.

    ``g = 1/2 sum_{mnls} (mn|ls)^xi [D_mn D_ls - 1/2 D_ms D_nl]`` with D
    the (doubly occupied) AO density. The ordered sum is folded onto
    canonical shell quartets (i<=j, (ij)<=(kl)) by accumulating the
    permutation images into one coefficient tensor,

        Gamma_tot = 8 D_mn D_ls - 2 (D_ms D_nl + D_ml D_ns),

    weighted by the quartet's degeneracy/8. The fourth center's
    derivative follows from translational invariance. This is the
    four-center bottleneck RI-HF eliminates (paper Fig. 3).

    ``workspace`` serves the Schwarz bound and per-shell-block ``Dmax``
    tables (recomputed from scratch on every call otherwise) plus the
    pair expansion tables. With ``screen <= 0`` (exact mode) the strict
    ``< screen`` test can never skip a quartet, so neither table is
    built at all — ``--int-screen 0`` no longer pays for (or caches)
    Schwarz bounds it cannot use.
    """
    from .workspace import _dmax_table

    g = np.zeros((natoms, 3))
    shells = basis.shells
    offs = basis.offsets
    comps = [comp_arrays(sh.l) for sh in shells]
    npairs = canonical_shell_pairs(basis)
    pds = {
        ij: _bra_pair(workspace, shells[ij[0]], shells[ij[1]], 1, 1)
        for ij in npairs
    }
    if screen > 0.0:
        if workspace is not None:
            Q = workspace.schwarz_bounds(basis)
            Dmax = workspace.dmax_blocks(basis, D)
        else:
            Q = schwarz_pair_bounds(basis)
            Dmax = _dmax_table(basis, D)
    else:
        Q = None
        Dmax = None
    safety = DERIV_SAFETY
    nskip = 0
    nquartets = 0
    neglected = 0.0
    for pi, (i, j) in enumerate(npairs):
        si = slice(offs[i], offs[i] + shells[i].nfunc)
        sj = slice(offs[j], offs[j] + shells[j].nfunc)
        for k, l in npairs[pi:]:
            atoms = (shells[i].atom, shells[j].atom, shells[k].atom, shells[l].atom)
            if atoms[0] == atoms[1] == atoms[2] == atoms[3]:
                continue
            nquartets += 1
            if Q is not None:
                gbound = 8.0 * max(
                    Dmax[i, j] * Dmax[k, l],
                    Dmax[i, l] * Dmax[j, k],
                    Dmax[i, k] * Dmax[j, l],
                )
                if safety * Q[i, j] * Q[k, l] * gbound < screen:
                    nskip += 1
                    neglected += (
                        safety * Q[i, j] * Q[k, l] * gbound
                        * shells[i].nfunc * shells[j].nfunc
                        * shells[k].nfunc * shells[l].nfunc
                    )
                    continue
            sk = slice(offs[k], offs[k] + shells[k].nfunc)
            sl_ = slice(offs[l], offs[l] + shells[l].nfunc)
            deg = (
                (2.0 if i != j else 1.0)
                * (2.0 if k != l else 1.0)
                * (2.0 if (i, j) != (k, l) else 1.0)
            )
            w = 0.5 * deg / 8.0
            gamma = w * (
                8.0 * np.einsum("ab,cd->abcd", D[si, sj], D[sk, sl_])
                - 2.0 * np.einsum("ad,bc->abcd", D[si, sl_], D[sj, sk])
                - 2.0 * np.einsum("ac,bd->abcd", D[si, sk], D[sj, sl_])
            )
            gamma = (
                gamma
                * shells[i].comp_norms[:, None, None, None]
                * shells[j].comp_norms[None, :, None, None]
                * shells[k].comp_norms[None, None, :, None]
                * shells[l].comp_norms[None, None, None, :]
            )
            d = _deriv_blocks_pairwise(
                pds[(i, j)], pds[(k, l)], comps[i], comps[j], comps[k], comps[l],
                ("braA", "braB", "ketC"),
            )
            vA = np.einsum("xabcd,abcd->x", d["braA"], gamma)
            vB = np.einsum("xabcd,abcd->x", d["braB"], gamma)
            vC = np.einsum("xabcd,abcd->x", d["ketC"], gamma)
            g[atoms[0]] += vA
            g[atoms[1]] += vB
            g[atoms[2]] += vC
            g[atoms[3]] -= vA + vB + vC
    if workspace is not None:
        workspace.record_screen("eri4c_deriv", nquartets, nskip, neglected)
    return g
