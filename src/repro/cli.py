"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``scf <file.xyz>`` — RI-HF (or conventional) single point.
* ``mp2 <file.xyz>`` — RI-HF + RI-MP2 single point (optionally SCS).
* ``grad <file.xyz>`` — analytic RI-MP2 gradient.
* ``opt <file.xyz>`` — BFGS geometry optimization.
* ``aimd <file.xyz>`` — fragment AIMD (async or sync) with automatic
  fragmentation into covalently connected monomers.
* ``submit <specs.json>`` — append one declarative trajectory job spec
  to a JSON spec file.
* ``serve <specs.json>`` — run every spec through the multi-tenant
  streaming trajectory service (fair-share scheduling, shared warm
  layer, per-job crash-safe resume). See docs/SERVICE.md.
* ``project`` — exascale Table V-style projection for urea clusters.

All commands print plain-text results; energies in Hartree, geometry in
Angstrom on disk, Bohr internally.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _load(path: str, charge: int):
    from .chem.xyz import load_xyz

    return load_xyz(path, charge=charge)


def _add_common(p: argparse.ArgumentParser) -> None:
    from .integrals.workspace import DEFAULT_INT_SCREEN

    p.add_argument("xyz", help="input geometry (.xyz, Angstrom)")
    p.add_argument("--basis", default="sto-3g",
                   choices=["sto-3g", "repro-dz", "repro-dzp", "repro-tz", "repro-tzp"])
    p.add_argument("--charge", type=int, default=0)
    p.add_argument("--no-ri", action="store_true",
                   help="conventional four-center SCF instead of RI")
    p.add_argument("--int-screen", type=float, default=DEFAULT_INT_SCREEN,
                   metavar="TOL",
                   help="Schwarz screening tolerance for three-center "
                        "integrals/derivatives: shell blocks whose rigorous "
                        "bound falls below TOL are skipped, and the summed "
                        "neglected bound is reported via the tracer. "
                        "0 disables screening (exact integrals) "
                        f"[default {DEFAULT_INT_SCREEN:g}]")
    p.add_argument("--backend", default=None,
                   choices=["numpy", "jax", "cupy"],
                   help="array backend for the batched integral kernels "
                        "(jax/cupy must be importable; exits with an "
                        "error otherwise) [default: REPRO_BACKEND env "
                        "var, else numpy]")
    p.add_argument("--int-kernels", default=None,
                   choices=["batched", "loop"],
                   help="integral kernel mode: 'batched' evaluates whole "
                        "shell-pair classes per array-kernel call, 'loop' "
                        "is the per-pair reference implementation "
                        "[default: REPRO_INT_KERNELS env var, else "
                        "batched]")


def cmd_scf(args) -> int:
    """Single-point SCF."""
    from .integrals.workspace import get_workspace
    from .scf import rhf

    mol = _load(args.xyz, args.charge)
    res = rhf(mol, args.basis, ri=not args.no_ri,
              int_screen=args.int_screen, workspace=get_workspace())
    print(f"molecule: {mol.formula()} ({mol.nelectrons} electrons)")
    print(f"method:   {res.method} / {args.basis}")
    print(f"E(SCF) = {res.energy:.10f} Ha   ({res.niter} iterations)")
    print(f"HOMO = {res.eps[res.nocc - 1]:.6f}  LUMO = "
          f"{res.eps[res.nocc]:.6f}" if res.nvirt else "")
    return 0


def cmd_mp2(args) -> int:
    """Single-point (SCS-)MP2."""
    from .integrals.workspace import get_workspace
    from .mp2 import mp2_ri
    from .mp2.mp2 import SCS_OS, SCS_SS
    from .scf import rhf

    mol = _load(args.xyz, args.charge)
    res = rhf(mol, args.basis, ri=True,
              int_screen=args.int_screen, workspace=get_workspace())
    if args.scs:
        corr = mp2_ri(res, c_os=SCS_OS, c_ss=SCS_SS)
        label = "SCS-MP2"
    else:
        corr = mp2_ri(res)
        label = "MP2"
    print(f"E(SCF)     = {res.energy:.10f} Ha")
    print(f"E({label}) corr = {corr.e_corr:.10f} Ha")
    print(f"E(total)   = {corr.e_total:.10f} Ha")
    return 0


def cmd_grad(args) -> int:
    """Analytic gradient."""
    from .integrals.workspace import get_workspace
    from .mp2.rimp2_grad import rimp2_gradient
    from .scf import rhf

    mol = _load(args.xyz, args.charge)
    ws = get_workspace()
    res = rhf(mol, args.basis, ri=True,
              int_screen=args.int_screen, workspace=ws)
    out = rimp2_gradient(res, return_intermediates=True,
                         int_screen=args.int_screen, workspace=ws)
    print(f"E(total) = {res.energy + out.e_corr:.10f} Ha")
    print("gradient (Ha/Bohr):")
    for sym, g in zip(mol.symbols, out.gradient):
        print(f"  {sym:<3s} {g[0]:14.8f} {g[1]:14.8f} {g[2]:14.8f}")
    rmsd = float(np.sqrt(np.mean(out.gradient**2)))
    print(f"gradient RMSD: {rmsd:.2e} Ha/Bohr")
    return 0


def cmd_opt(args) -> int:
    """Geometry optimization."""
    from .calculators import RIMP2Calculator
    from .chem.xyz import save_xyz
    from .opt import optimize

    mol = _load(args.xyz, args.charge)
    calc = RIMP2Calculator(basis=args.basis, int_screen=args.int_screen)
    res = optimize(mol, calc, max_iter=args.max_iter)
    print(f"converged: {res.converged}  iterations: {res.niter}")
    print(f"E(final) = {res.energy:.10f} Ha  grad RMSD = "
          f"{res.gradient_rmsd:.2e} Ha/Bohr")
    if args.output:
        save_xyz(res.molecule, args.output,
                 comment=f"optimized E={res.energy:.10f}")
        print(f"wrote {args.output}")
    return 0 if res.converged else 1


def cmd_aimd(args) -> int:
    """Fragment AIMD via the (a)synchronous coordinator."""
    from .analysis import analyze_conservation
    from .calculators import PairwisePotentialCalculator, RIMP2Calculator
    from .constants import BOHR_PER_ANGSTROM
    from .frag import FragmentedSystem
    from .gemm import GLOBAL_TUNER
    from .integrals.workspace import get_workspace
    from .md import AsyncCoordinator, FailurePolicy, run_parallel, run_serial
    from .md.integrators import maxwell_boltzmann_velocities

    mol = _load(args.xyz, args.charge)
    system = FragmentedSystem.by_components(mol, group_size=args.group_size)
    workspace = get_workspace()
    if args.deterministic:
        # screening decisions must be a pure function of the current
        # geometry for bitwise-stable resumes: never serve stale
        # (displacement-inflated) Schwarz bounds
        workspace.displacement_tol = 0.0
    if args.surrogate:
        calc = PairwisePotentialCalculator()
    else:
        calc = RIMP2Calculator(basis=args.basis,
                               int_screen=args.int_screen)
    fault_plan = None
    if args.fault_plan:
        from .faults import FaultPlan, FaultPlanCalculator

        fault_plan = FaultPlan.load(args.fault_plan)
        calc = FaultPlanCalculator(calc, fault_plan)
        print(f"fault plan: {len(fault_plan.specs)} event spec(s), "
              f"seed {fault_plan.seed} ({args.fault_plan})")
    v0 = maxwell_boltzmann_velocities(
        mol.masses_au, args.temperature, seed=args.seed
    )
    if args.gemm_cache:
        import os as _os

        if _os.path.exists(args.gemm_cache):
            n = GLOBAL_TUNER.load(args.gemm_cache)
            print(f"gemm cache: preloaded {n} tuned shapes "
                  f"from {args.gemm_cache}")
    tracer = None
    if args.trace:
        from .trace import Tracer

        tracer = Tracer()
        GLOBAL_TUNER.tracer = tracer
        workspace.tracer = tracer
    resume = None
    if args.resume:
        from pathlib import Path

        from .md import read_checkpoint_with_fallback

        resume, used = read_checkpoint_with_fallback(
            args.resume, mol=mol, tracer=tracer
        )
        if used != Path(args.resume):
            print(f"checkpoint fallback: {args.resume} failed validation; "
                  f"resumed from rotation {used}")
        print(f"resuming from {used}: step {resume.step} "
              f"(t = {resume.time_fs:g} fs)")
    if args.deterministic and not args.no_warm_start and not args.surrogate:
        print("deterministic mode: SCF warm starts disabled "
              "(bitwise-reproducible resumes require cold guesses)")
    surrogate = None
    if args.surrogate_tail:
        from .surrogate import (
            DEFAULT_TOL_DIMER,
            DEFAULT_TOL_TRIMER,
            SurrogateManager,
        )

        if args.surrogate_tol is not None:
            tol_dimer = float(args.surrogate_tol)
            tol_trimer = tol_dimer * (DEFAULT_TOL_TRIMER / DEFAULT_TOL_DIMER)
        else:
            tol_dimer, tol_trimer = DEFAULT_TOL_DIMER, DEFAULT_TOL_TRIMER
        surrogate = SurrogateManager(
            tol_dimer=tol_dimer, tol_trimer=tol_trimer,
            min_train=args.surrogate_min_train, seed=args.seed,
        )
        if args.deterministic:
            print("deterministic mode: surrogate tail disabled "
                  "(completion-order-dependent training breaks bitwise "
                  "resume)")
    coordinator = AsyncCoordinator(
        system,
        nsteps=args.steps,
        dt_fs=args.dt,
        r_dimer_bohr=args.r_dimer * BOHR_PER_ANGSTROM,
        r_trimer_bohr=args.r_trimer * BOHR_PER_ANGSTROM,
        mbe_order=args.order,
        velocities=v0,
        synchronous=args.sync,
        tracer=tracer,
        deterministic=args.deterministic,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        checkpoint_keep=args.checkpoint_keep,
        resume=resume,
        warm_start=not args.no_warm_start,
        fault_plan=fault_plan,
        mts_k=args.mts_k,
        mts_extrapolate=args.mts_extrapolate,
        surrogate=surrogate,
    )
    print(f"{system.nmonomers} monomers, reference fragment "
          f"{coordinator.reference}, "
          f"{'synchronous' if args.sync else 'asynchronous'} stepping")
    if args.workers > 1:
        from .md import DriverReport

        policy = FailurePolicy(
            max_retries=args.max_retries,
            task_timeout_s=args.task_timeout,
            quarantine=args.quarantine,
            backoff_s=args.retry_backoff,
            backoff_jitter=args.retry_jitter,
        )
        prior = None
        if resume is not None and resume.driver:
            d = resume.driver
            prior = DriverReport(
                tasks_completed=d.get("tasks_completed", 0),
                retries=d.get("retries", 0),
                pool_restarts=d.get("pool_restarts", 0),
                timeouts=d.get("timeouts", 0),
            )
        report = run_parallel(
            coordinator, calc, nworkers=args.workers, policy=policy,
            report=prior, gemm_cache=args.gemm_cache,
            seed=(fault_plan.derive_seed("retry-jitter")
                  if fault_plan is not None else args.seed),
        )
        if report.retries or report.pool_restarts or report.timeouts:
            print(f"fault handling: {report.retries} retries, "
                  f"{report.timeouts} timeouts, "
                  f"{report.pool_restarts} pool restarts")
        for q in report.quarantined:
            print(f"QUARANTINED polymer {q.key} step {q.step} "
                  f"(coefficient {q.coefficient:+g}, {q.attempts} attempts): "
                  f"{q.error}")
    else:
        run_serial(coordinator, calc)
    if fault_plan is not None:
        counts = fault_plan.audit_summary()
        if counts:
            # serial runs (and checkpoint-site faults, injected in this
            # process) accumulate here; worker-process audits stay with
            # the workers
            detail = ", ".join(f"{k} x{v}" for k, v in sorted(counts.items()))
            print(f"fault audit: {detail}")
    t, pe, ke = coordinator.trajectory_energies()
    rep = analyze_conservation(t, pe, ke)
    tot = np.asarray(pe) + np.asarray(ke)
    print(f"final total energy: {tot[-1]:.12f} Ha")
    print(f"{coordinator.tasks_issued} polymer calculations over "
          f"{args.steps} steps")
    print(f"total energy drift: {rep.drift_hartree_per_fs:.2e} Ha/fs, "
          f"RMS fluctuation: {rep.rms_fluctuation_kjmol:.4f} kJ/mol")
    if coordinator.mts:
        print(f"mts: k={coordinator.mts_k}"
              f"{' (extrapolated)' if coordinator.mts_extrapolate else ''}, "
              f"{coordinator.mts_slow_evals} slow-tier evaluations, "
              f"{coordinator.mts_tasks_skipped} inner-step polymer tasks "
              f"skipped")
    if surrogate is not None and not coordinator.surrogate_disabled_deterministic:
        sst = surrogate.stats()
        print(f"surrogate tail: {sst['served']} tail tasks served "
              f"({coordinator.surrogate_tasks_avoided} full solves "
              f"avoided), {sst['refused_cold']} cold / "
              f"{sst['refused_uncertain']} uncertain refusals, "
              f"{sst['classes']} fragment classes, "
              f"gated error ceiling {sst['neglected_bound']:.2e} Ha")
    if coordinator.replans_incremental:
        print(f"incremental replans: {coordinator.replans_incremental} "
              f"({coordinator.replan_reused} polymers reused, "
              f"{coordinator.replan_added} added, "
              f"{coordinator.replan_removed} removed)")
    cache = coordinator.guess_cache
    if cache is not None and (cache.hits or cache.misses):
        total = cache.iters_warm + cache.iters_cold
        print(f"warm-start: {cache.hits} hits / {cache.misses} misses, "
              f"{total} SCF iterations "
              f"({cache.iters_warm} warm / {cache.iters_cold} cold), "
              f"{len(cache)} cached densities ({cache.nbytes} bytes)")
    ws = workspace.stats()
    if ws["hits"] or ws["misses"]:
        print(f"integral workspace: {ws['hits']} hits / "
              f"{ws['misses']} misses, {ws['entries']} entries "
              f"({ws['nbytes']} bytes), {ws['bound_rebuilds']} Schwarz "
              f"rebuilds, {ws['stale_serves']} stale serves")
    if ws["pairs_total"]:
        note = " (coordinator-side only)" if args.workers > 1 else ""
        print(f"integral screening: {ws['pairs_skipped']}/"
              f"{ws['pairs_total']} shell-pair blocks skipped, "
              f"neglected bound {ws['neglected_bound']:.2e}{note}")
    if args.gemm_cache:
        GLOBAL_TUNER.save(args.gemm_cache)
        print(f"gemm cache: saved {len(GLOBAL_TUNER.best)} tuned shapes "
              f"to {args.gemm_cache}")
    if tracer is not None:
        GLOBAL_TUNER.tracer = None
        tracer.write_chrome(args.trace)
        print(f"wrote chrome trace ({len(tracer.events)} events) "
              f"to {args.trace}")
        print(tracer.format_summary())
    return 0


def cmd_project(args) -> int:
    """Exascale projection for urea clusters."""
    from .analysis import format_table
    from .cluster import (
        FRONTIER,
        PAPER_CALIBRATED,
        PERLMUTTER,
        simulate_workload,
        urea_workload,
    )

    machine = FRONTIER if args.machine == "frontier" else PERLMUTTER
    nodes = args.nodes or machine.nodes
    stats = urea_workload(args.molecules)
    res = simulate_workload(
        stats, machine, nodes, nsteps=3, cost_model=PAPER_CALIBRATED
    )
    rows = [
        ("urea molecules", f"{args.molecules:,}"),
        ("electrons", f"{stats.nmonomers * stats.electrons_per_monomer:,}"),
        ("polymers/step", f"{stats.npolymers:,}"),
        ("machine", f"{machine.name} x {nodes} nodes"),
        ("time/step", f"{res.time_per_step_s / 60:.1f} min"),
        ("FLOP rate", f"{res.flop_rate_pflops:.0f} PFLOP/s"),
        ("fraction of peak", f"{100 * res.fraction_of_peak(machine):.0f}%"),
    ]
    print(format_table(["quantity", "value"], rows,
                       title="Exascale AIMD projection"))
    return 0


def cmd_submit(args) -> int:
    import json
    import os

    from .serve import JobSpec

    system: dict = {"kind": args.system}
    if args.system in ("water", "glycine"):
        system["n"] = args.n
        if args.system == "water":
            system["seed"] = args.system_seed
    elif args.system == "xyz":
        if not args.xyz:
            raise SystemExit("error: --xyz PATH is required for --system xyz")
        system["path"] = args.xyz
        system["charge"] = args.charge
    method: dict = {"kind": args.method}
    if args.method != "surrogate":
        method["basis"] = args.basis
        method["int_screen"] = args.int_screen
    thermostat = None
    if args.thermostat == "local-langevin":
        thermostat = {
            "kind": "local-langevin",
            "friction_per_fs": args.friction,
            "seed": args.seed,
        }
    mts = {"k": args.mts_k, "extrapolate": args.mts_extrapolate} \
        if args.mts_k > 1 else None
    surrogate = None
    if args.surrogate_tail:
        surrogate = {"seed": args.seed,
                     "min_train": args.surrogate_min_train}
        if args.surrogate_tol is not None:
            surrogate["tol_dimer"] = args.surrogate_tol
            surrogate["tol_trimer"] = 0.4 * args.surrogate_tol
    spec = JobSpec(
        job_id=args.job_id, system=system, method=method,
        nsteps=args.steps, dt_fs=args.dt, temperature_k=args.temperature,
        seed=args.seed, mbe_order=args.order,
        r_dimer_angstrom=args.r_dimer, r_trimer_angstrom=args.r_trimer,
        group_size=args.group_size, replan_interval=args.replan_interval,
        mts=mts, thermostat=thermostat, surrogate=surrogate,
        deterministic=args.deterministic,
        checkpoint_every=args.checkpoint_every,
        checkpoint_keep=args.checkpoint_keep, weight=args.weight,
    )
    specs = []
    if os.path.exists(args.specs):
        with open(args.specs, encoding="utf-8") as fh:
            specs = json.load(fh)
        if not isinstance(specs, list):
            raise SystemExit(f"error: {args.specs} is not a JSON list")
        if any(s.get("job_id") == spec.job_id for s in specs):
            raise SystemExit(
                f"error: job id {spec.job_id!r} already in {args.specs}"
            )
    specs.append(spec.to_dict())
    with open(args.specs, "w", encoding="utf-8") as fh:
        json.dump(specs, fh, indent=2)
        fh.write("\n")
    print(f"queued job {spec.job_id!r} ({len(specs)} total) -> {args.specs}")
    return 0


def cmd_serve(args) -> int:
    import json

    from .serve import JobSpec, TrajectoryService
    from .trace import Tracer

    with open(args.specs, encoding="utf-8") as fh:
        raw = json.load(fh)
    if not isinstance(raw, list) or not raw:
        raise SystemExit(f"error: {args.specs} must be a non-empty JSON list")
    specs = [JobSpec.from_dict(d) for d in raw]
    tracer = Tracer() if args.trace else None
    service = TrajectoryService(
        args.out, nworkers=args.workers, max_active=args.max_active,
        tracer=tracer, pool=args.pool,
        tenant_max_bytes=args.tenant_max_bytes,
    )
    for spec in specs:
        service.submit(spec)
    summary = service.run()
    print(f"served {len(specs)} job(s) -> {args.out}")
    for job_id in sorted(summary["jobs"]):
        info = summary["jobs"][job_id]
        job = service.jobs[job_id]
        line = (f"  {job_id}: {info['state']}, {info['steps']} steps"
                + (" (resumed)" if info["resumed"] else ""))
        lat = info["latency"]
        if lat["samples"]:
            line += (f", step latency p50 {lat['p50']*1e3:.1f} ms"
                     f" p99 {lat['p99']*1e3:.1f} ms")
        if info["state"] == "completed":
            tot = job.final_total_energy()
            line += f", final total energy: {tot:.12f} Ha"
        if "surrogate" in info:
            s = info["surrogate"]
            line += (f", surrogate: {s['served']} served, "
                     f"ceiling {s['neglected_bound']:.1e} Ha")
        if "error" in info:
            line += f", error: {info['error']}"
        print(line)
    print(f"tasks completed: {summary['tasks_completed']}, "
          f"failed: {summary['tasks_failed']}")
    warm = summary["warm_layer"]
    gc = warm["guess_cache"]
    if gc is not None:
        print(f"guess cache: {gc['hits']} hits / {gc['misses']} misses, "
              f"{gc['contentions']} contentions, "
              f"{len(gc.get('tenants', {}))} tenants")
    ws = warm["workspace"]
    print(f"workspace: {ws['hits']} hits / {ws['misses']} misses, "
          f"{ws['contentions']} contentions")
    gemm = warm["gemm"]
    print(f"gemm autotuner: {gemm['shapes_tuned']} shapes tuned, "
          f"{gemm['contentions']} contentions")
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print(f"wrote chrome trace ({len(tracer.events)} events) "
              f"to {args.trace}")
    if args.summary_json:
        with open(args.summary_json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, default=str)
            fh.write("\n")
    failed = sum(1 for info in summary["jobs"].values()
                 if info["state"] == "failed")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fragment MBE3/RI-MP2 AIMD toolkit (SC'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("scf", help="RI-HF single point")
    _add_common(p)
    p.set_defaults(func=cmd_scf)

    p = sub.add_parser("mp2", help="RI-MP2 single point")
    _add_common(p)
    p.add_argument("--scs", action="store_true", help="SCS-MP2 scaling")
    p.set_defaults(func=cmd_mp2)

    p = sub.add_parser("grad", help="analytic RI-MP2 gradient")
    _add_common(p)
    p.set_defaults(func=cmd_grad)

    p = sub.add_parser("opt", help="geometry optimization")
    _add_common(p)
    p.add_argument("--max-iter", type=int, default=100)
    p.add_argument("-o", "--output", help="write optimized geometry here")
    p.set_defaults(func=cmd_opt)

    p = sub.add_parser("aimd", help="fragment AIMD")
    _add_common(p)
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--dt", type=float, default=0.5, help="time step (fs)")
    p.add_argument("--temperature", type=float, default=300.0)
    p.add_argument("--r-dimer", type=float, default=20.0, help="Angstrom")
    p.add_argument("--r-trimer", type=float, default=12.0, help="Angstrom")
    p.add_argument("--order", type=int, default=3, choices=[1, 2, 3])
    p.add_argument("--group-size", type=int, default=1,
                   help="molecules per monomer")
    p.add_argument("--sync", action="store_true",
                   help="synchronous stepping (global barrier)")
    p.add_argument("--mts-k", type=int, default=1, metavar="K",
                   help="r-RESPA multiple-time-step factor: evaluate the "
                        "slow MBE tier (dimer/trimer corrections) every K "
                        "steps and apply it as outer-boundary impulses; "
                        "monomers run every step [default 1 = off]")
    p.add_argument("--mts-extrapolate", action="store_true",
                   help="apply a linearly extrapolated slow-tier force "
                        "inside every inner step instead of boundary "
                        "impulses (smoother at large K, only "
                        "approximately reversible)")
    p.add_argument("--surrogate", action="store_true",
                   help="classical surrogate potential instead of RI-MP2")
    p.add_argument("--surrogate-tail", action="store_true",
                   help="learn online committee surrogates for the MBE "
                        "tail (dimer/trimer fragments) and serve them in "
                        "place of full solves when the committee "
                        "disagreement passes the uncertainty gate; "
                        "forced off under --deterministic")
    p.add_argument("--surrogate-tol", type=float, default=None,
                   metavar="TOL",
                   help="dimer uncertainty gate in Hartree (trimers use "
                        "0.4*TOL) [default 5e-5]")
    p.add_argument("--surrogate-min-train", type=int, default=6,
                   metavar="N",
                   help="training pairs required per fragment class "
                        "before the surrogate may serve [default 6]")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help=">1 runs the fault-tolerant process-pool driver")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retry budget per failed polymer task")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-task deadline in seconds (hung-worker guard)")
    p.add_argument("--quarantine", action="store_true",
                   help="quarantine poison fragments instead of aborting")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write a chrome-trace JSON of the run to PATH "
                        "and print a span/counter summary")
    p.add_argument("--deterministic", action="store_true",
                   help="deterministic energy reductions (bitwise "
                        "reproducible trajectories and resumes); also "
                        "disables SCF warm starts")
    p.add_argument("--no-warm-start", action="store_true",
                   help="disable cross-step SCF warm starts (cold "
                        "gwh guess for every fragment solve)")
    p.add_argument("--checkpoint", metavar="PATH", default=None,
                   help="write crash-safe checkpoints to PATH during the run")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="checkpoint every N retired steps (0 disables)")
    p.add_argument("--checkpoint-keep", type=int, default=1, metavar="K",
                   help="retain K checkpoint generations (PATH, PATH.1, "
                        "...); resume falls back to the newest valid one")
    p.add_argument("--resume", metavar="PATH", default=None,
                   help="resume the trajectory from a checkpoint file")
    p.add_argument("--fault-plan", metavar="PATH", default=None,
                   help="inject faults from a seeded JSON fault plan "
                        "(repro.faults.FaultPlan) for chaos testing")
    p.add_argument("--retry-backoff", type=float, default=0.0, metavar="S",
                   help="base retry backoff delay in seconds")
    p.add_argument("--retry-jitter", type=float, default=0.0, metavar="F",
                   help="jitter fraction stretching each retry delay by "
                        "U[0,F] of itself (seeded; decorrelates retry "
                        "storms)")
    p.add_argument("--gemm-cache", metavar="PATH", default=None,
                   help="persist GEMM autotuner winners to PATH (loaded "
                        "at startup if present, preloaded into workers, "
                        "saved atomically at the end of the run)")
    p.set_defaults(func=cmd_aimd)

    p = sub.add_parser(
        "submit",
        help="append a trajectory job spec to a JSON spec file",
    )
    p.add_argument("specs", help="spec file (JSON list; created if absent)")
    p.add_argument("--job-id", required=True)
    p.add_argument("--system", default="water",
                   choices=["water", "glycine", "xyz"])
    p.add_argument("-n", type=int, default=4,
                   help="cluster/chain size for water/glycine systems")
    p.add_argument("--system-seed", type=int, default=0,
                   help="placement seed for water clusters")
    p.add_argument("--xyz", default=None, help="geometry for --system xyz")
    p.add_argument("--charge", type=int, default=0)
    p.add_argument("--method", default="surrogate",
                   choices=["surrogate", "rihf", "rimp2", "hf"])
    p.add_argument("--basis", default="sto-3g",
                   choices=["sto-3g", "repro-dz", "repro-dzp", "repro-tz",
                            "repro-tzp"])
    p.add_argument("--int-screen", type=float, default=1e-12)
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--dt", type=float, default=0.5, help="time step (fs)")
    p.add_argument("--temperature", type=float, default=300.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--order", type=int, default=2, choices=[1, 2, 3])
    p.add_argument("--r-dimer", type=float, default=6.0, help="Angstrom")
    p.add_argument("--r-trimer", type=float, default=None, help="Angstrom")
    p.add_argument("--group-size", type=int, default=1)
    p.add_argument("--replan-interval", type=int, default=1)
    p.add_argument("--mts-k", type=int, default=1, metavar="K")
    p.add_argument("--mts-extrapolate", action="store_true")
    p.add_argument("--surrogate-tail", action="store_true",
                   help="per-tenant online MBE-tail surrogate with "
                        "uncertainty-gated fallback (ignored under "
                        "--deterministic)")
    p.add_argument("--surrogate-tol", type=float, default=None,
                   metavar="TOL",
                   help="dimer uncertainty gate in Hartree (trimers use "
                        "0.4*TOL)")
    p.add_argument("--surrogate-min-train", type=int, default=6,
                   metavar="N",
                   help="training pairs per fragment class before serving")
    p.add_argument("--thermostat", default="none",
                   choices=["none", "local-langevin"],
                   help="local-langevin is the only thermostat valid "
                        "under asynchronous integration")
    p.add_argument("--friction", type=float, default=0.01,
                   help="Langevin friction (1/fs)")
    p.add_argument("--deterministic", action="store_true",
                   help="bitwise-reproducible trajectory and resume")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N")
    p.add_argument("--checkpoint-keep", type=int, default=2, metavar="K")
    p.add_argument("--weight", type=float, default=1.0,
                   help="fair-share weight (task draws scale with it)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "serve",
        help="run a spec file of trajectory jobs as a multi-tenant "
             "streaming service",
    )
    p.add_argument("specs", help="JSON list of job specs (see 'submit')")
    p.add_argument("--out", default="serve-output",
                   help="output root; one subdirectory per job "
                        "[default serve-output]")
    p.add_argument("--workers", type=int, default=4,
                   help="shared worker threads evaluating fragment tasks")
    p.add_argument("--max-active", type=int, default=8,
                   help="jobs multiplexed at once; the rest queue")
    p.add_argument("--pool", default="thread",
                   choices=["thread", "process"],
                   help="worker pool kind: threads share the in-process "
                        "warm layer; processes give true parallelism for "
                        "GIL-holding QM solves on multi-core hosts")
    p.add_argument("--tenant-max-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="per-tenant byte quota on the shared warm layer "
                        "(guess cache + integral workspace): a greedy "
                        "job evicts only its own LRU entries")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write a chrome-trace JSON (includes serve.* "
                        "and warm_layer instants)")
    p.add_argument("--summary-json", metavar="PATH", default=None,
                   help="write the service summary (per-job states, "
                        "latency percentiles, warm-layer stats) to PATH")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("project", help="exascale projection (Table V style)")
    p.add_argument("--molecules", type=int, default=63854)
    p.add_argument("--machine", choices=["frontier", "perlmutter"],
                   default="frontier")
    p.add_argument("--nodes", type=int, default=None)
    p.set_defaults(func=cmd_project)
    return parser


def _apply_runtime_options(args) -> None:
    """Apply global backend/kernel-mode selections before dispatch.

    Raises ``SystemExit`` with a readable message when the requested
    backend's package is not importable.
    """
    backend = getattr(args, "backend", None)
    if backend is not None:
        from .backend import BackendUnavailableError, set_default_backend

        try:
            set_default_backend(backend)
        except BackendUnavailableError as exc:
            raise SystemExit(f"error: {exc}") from exc
    mode = getattr(args, "int_kernels", None)
    if mode is not None:
        from .integrals import set_kernel_mode

        set_kernel_mode(mode)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _apply_runtime_options(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
