"""Energy/gradient calculators: the pluggable engine behind MBE and AIMD.

`Calculator.energy_gradient(mol)` is the single interface the
fragmentation and MD layers consume. Three families are provided:

* `RIMP2Calculator` / `RIHFCalculator` — the real quantum engines
  (the paper's per-polymer worker computation).
* `ConventionalMP2Calculator` — the four-center baseline used for the
  Table III / Fig. 3 comparisons.
* `PairwisePotentialCalculator` — a cheap classical surrogate
  (Lennard-Jones + Coulomb + optional Axilrod-Teller three-body term)
  for exercising the fragmentation/scheduling machinery at scales where
  the quantum engine would dominate test runtime. Because LJ+Coulomb is
  strictly pairwise-additive, MBE2 reproduces it *exactly*; adding the
  Axilrod-Teller term makes MBE3 exact — both are sharp correctness
  tests for the MBE assembly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from .chem.molecule import Molecule
from .mp2.mp2 import mp2_ri
from .mp2.rimp2_grad import rimp2_gradient
from .numerics import ensure_finite
from .scf.grad import rhf_gradient_conventional, rhf_gradient_ri
from .scf.recovery import rhf_with_recovery
from .scf.rhf import rhf


class Calculator(Protocol):
    """Anything that can evaluate an energy and nuclear gradient."""

    def energy_gradient(self, mol: Molecule) -> tuple[float, np.ndarray]:
        """Return ``(energy_hartree, gradient (natoms, 3) Ha/Bohr)``."""
        ...


def _solve_scf(mol, basis, recover: bool, tracer=None, **kwargs):
    """Bare `rhf` or the recovery cascade, per the calculator's setting."""
    if recover:
        return rhf_with_recovery(mol, basis, tracer=tracer, **kwargs)
    return rhf(mol, basis, **kwargs)


@dataclass
class RIMP2Calculator:
    """Full RI-HF + RI-MP2 energy and analytic gradient (the paper's method).

    ``recover=True`` (the default) routes the SCF through the escalation
    ladder of `repro.scf.recovery`, so a hard fragment geometry costs
    extra iterations instead of aborting the trajectory.  Every returned
    energy/gradient passes a NaN/Inf sentinel; divergence surfaces as a
    typed `NumericalDivergenceError` the fault-tolerant drivers know how
    to retry or quarantine.
    """

    basis: str = "sto-3g"
    conv_energy: float = 1.0e-10
    max_iter: int = 150
    recover: bool = True

    def energy_gradient(self, mol: Molecule) -> tuple[float, np.ndarray]:
        """RI-HF + RI-MP2 total energy and analytic gradient."""
        res = _solve_scf(
            mol, self.basis, self.recover, ri=True,
            conv_energy=self.conv_energy, max_iter=self.max_iter,
        )
        out = rimp2_gradient(res, return_intermediates=True)
        energy = res.energy + out.e_corr
        ensure_finite(
            f"RI-MP2 on {mol.natoms}-atom fragment",
            energy=energy, gradient=out.gradient,
        )
        return energy, out.gradient

    def energy(self, mol: Molecule) -> float:
        """Energy-only evaluation (skips the gradient machinery)."""
        res = _solve_scf(mol, self.basis, self.recover, ri=True,
                         conv_energy=self.conv_energy, max_iter=self.max_iter)
        energy = res.energy + mp2_ri(res).e_corr
        ensure_finite(f"RI-MP2 on {mol.natoms}-atom fragment", energy=energy)
        return energy


@dataclass
class RIHFCalculator:
    """RI-HF only (no correlation) — used for RI-vs-non-RI timing studies."""

    basis: str = "sto-3g"
    recover: bool = True

    def energy_gradient(self, mol: Molecule) -> tuple[float, np.ndarray]:
        """RI-HF energy and analytic gradient."""
        res = _solve_scf(mol, self.basis, self.recover, ri=True)
        grad = rhf_gradient_ri(res)
        ensure_finite(
            f"RI-HF on {mol.natoms}-atom fragment",
            energy=res.energy, gradient=grad,
        )
        return res.energy, grad


@dataclass
class ConventionalHFCalculator:
    """Four-center HF baseline (what RI-HF replaces, Fig. 3)."""

    basis: str = "sto-3g"
    recover: bool = True

    def energy_gradient(self, mol: Molecule) -> tuple[float, np.ndarray]:
        """Conventional four-center HF energy and gradient."""
        res = _solve_scf(mol, self.basis, self.recover, ri=False)
        grad = rhf_gradient_conventional(res)
        ensure_finite(
            f"HF on {mol.natoms}-atom fragment",
            energy=res.energy, gradient=grad,
        )
        return res.energy, grad


# --------------------------------------------------------------------------
# Classical surrogate
# --------------------------------------------------------------------------

#: Lennard-Jones well depths (Hartree) and radii (Bohr) per element; crude
#: but physically shaped values for the surrogate potential.
_LJ_EPS = {"H": 3.0e-5, "C": 1.2e-4, "N": 1.1e-4, "O": 1.0e-4}
_LJ_SIGMA = {"H": 4.0, "C": 6.2, "N": 6.0, "O": 5.8}


@dataclass
class PairwisePotentialCalculator:
    """Classical surrogate: bonded springs + LJ/Coulomb + optional 3-body.

    Intramolecular structure is held by harmonic bond and 1-3 (angle
    surrogate) springs detected from covalent radii; bonded and 1-3
    pairs are excluded from the nonbonded LJ + screened-Coulomb sums, so
    MD with fs time steps is stable. ``at_strength`` switches on the
    Axilrod-Teller triple-dipole three-body term

        V3 = nu * (1 + 3 cos a cos b cos c) / (r_ab r_bc r_ca)^3

    summed over atom triples, giving the MBE a genuine three-body
    signal. LJ+Coulomb is strictly pairwise-additive between monomers,
    so MBE2 is exact for it and MBE3 exact with the AT term — sharp
    correctness tests for the fragmentation machinery.
    """

    charge_scale: float = 0.05
    at_strength: float = 0.0
    bond_k: float = 0.35  # Hartree / Bohr^2
    angle_k: float = 0.06  # 1-3 distance spring
    softcore: float = 2.0  # Bohr; nonbonded r -> sqrt(r^2 + softcore^2)
    #: per-element point charges for the Coulomb-ish term
    charges: dict = field(
        default_factory=lambda: {"H": 0.3, "C": 0.1, "N": -0.4, "O": -0.5}
    )

    def energy_gradient(self, mol: Molecule) -> tuple[float, np.ndarray]:
        """Surrogate energy and analytic gradient."""
        from .chem.bonds import detect_bonds
        from .chem.elements import covalent_radius
        from .constants import BOHR_PER_ANGSTROM

        n = mol.natoms
        coords = mol.coords
        eps = np.array([_LJ_EPS.get(s, 1e-4) for s in mol.symbols])
        sig = np.array([_LJ_SIGMA.get(s, 5.5) for s in mol.symbols])
        q = np.array([self.charges.get(s, 0.0) for s in mol.symbols]) * self.charge_scale
        rcov = np.array(
            [covalent_radius(s) * BOHR_PER_ANGSTROM for s in mol.symbols]
        )
        e = 0.0
        g = np.zeros((n, 3))
        bonds = detect_bonds(mol)
        neighbors: dict[int, set[int]] = {i: set() for i in range(n)}
        excluded: set[tuple[int, int]] = set()
        for i, j in bonds:
            neighbors[i].add(j)
            neighbors[j].add(i)
            excluded.add((i, j))
        # 1-3 pairs: two bonds apart, remembering the central atom so the
        # equilibrium distance corresponds to a tetrahedral-ish angle
        pairs13: list[tuple[int, int, int]] = []
        for j in range(n):
            nb = sorted(neighbors[j])
            for ai in range(len(nb)):
                for bi in range(ai + 1, len(nb)):
                    a, b = nb[ai], nb[bi]
                    key = (min(a, b), max(a, b))
                    if key not in excluded:
                        pairs13.append((a, b, j))
                        excluded.add(key)

        def spring(i: int, j: int, k: float, r0: float) -> None:
            nonlocal e
            rvec = coords[i] - coords[j]
            r = float(np.linalg.norm(rvec))
            e += 0.5 * k * (r - r0) ** 2
            gi = k * (r - r0) * rvec / r
            g[i] += gi
            g[j] -= gi

        for i, j in bonds:
            # covalent-radius sums track the builder geometries closely
            spring(i, j, self.bond_k, rcov[i] + rcov[j])
        for a, b, j in pairs13:
            r0 = 0.8165 * (rcov[a] + rcov[b] + 2 * rcov[j])  # ~109.5 deg
            spring(a, b, self.angle_k, r0)

        # Nonbonded: soft-core LJ + screened Coulomb. The soft-core radius
        # bounds the repulsion so finite-step integration cannot shoot
        # through the wall — the potential stays smooth and pairwise.
        d2 = self.softcore**2
        for i in range(n):
            rvec = coords[i] - coords[i + 1 :]
            r2 = np.einsum("kj,kj->k", rvec, rvec)
            mask = np.array([(i, jj) not in excluded for jj in range(i + 1, n)])
            if not mask.any():
                continue
            s2 = r2 + d2
            e_ij = np.sqrt(eps[i] * eps[i + 1 :]) * mask
            s_ij = 0.5 * (sig[i] + sig[i + 1 :])
            qq = q[i] * q[i + 1 :] * mask
            sr6 = (s_ij**2 / s2) ** 3
            e += float(np.sum(4 * e_ij * (sr6**2 - sr6)))
            e += float(np.sum(qq / np.sqrt(s2)))
            # dE/d(r^2)
            dEdr2 = (
                4 * e_ij * (-6 * sr6**2 + 3 * sr6) / s2
                - 0.5 * qq / s2**1.5
            )
            gi = 2.0 * dEdr2[:, None] * rvec
            g[i] += gi.sum(axis=0)
            g[i + 1 :] -= gi
        if self.at_strength:
            e3, g3 = self._axilrod_teller(coords)
            e += e3
            g += g3
        return e, g

    def energy(self, mol: Molecule) -> float:
        """Energy-only evaluation (skips the finite-difference gradient
        of the three-body term — much faster for contribution scans)."""
        if not self.at_strength:
            return self.energy_gradient(mol)[0]
        saved = self.at_strength
        try:
            self.at_strength = 0.0
            e2, _ = self.energy_gradient(mol)
        finally:
            self.at_strength = saved
        return e2 + self._at_energy(mol.coords)

    def _at_energy(self, coords: np.ndarray) -> float:
        n = coords.shape[0]
        nu = self.at_strength
        tot = 0.0
        for i in range(n):
            for j in range(i + 1, n):
                for k in range(j + 1, n):
                    rij = coords[i] - coords[j]
                    rjk = coords[j] - coords[k]
                    rki = coords[k] - coords[i]
                    dij = np.linalg.norm(rij)
                    djk = np.linalg.norm(rjk)
                    dki = np.linalg.norm(rki)
                    cos_i = float(np.dot(rij, -rki) / (dij * dki))
                    cos_j = float(np.dot(-rij, rjk) / (dij * djk))
                    cos_k = float(np.dot(-rjk, rki) / (djk * dki))
                    tot += (
                        nu * (1 + 3 * cos_i * cos_j * cos_k)
                        / (dij * djk * dki) ** 3
                    )
        return tot

    def _axilrod_teller(self, coords: np.ndarray) -> tuple[float, np.ndarray]:
        n = coords.shape[0]
        nu = self.at_strength
        e = 0.0
        g = np.zeros_like(coords)
        h = 1.0e-6
        # Analytic AT gradients are lengthy; the term is only used in
        # tests/surrogates, so a central difference per triple-energy is
        # acceptable and keeps this code obviously correct.
        def energy(c):
            tot = 0.0
            for i in range(n):
                for j in range(i + 1, n):
                    for k in range(j + 1, n):
                        rij = c[i] - c[j]
                        rjk = c[j] - c[k]
                        rki = c[k] - c[i]
                        dij = np.linalg.norm(rij)
                        djk = np.linalg.norm(rjk)
                        dki = np.linalg.norm(rki)
                        cos_i = float(np.dot(rij, -rki) / (dij * dki))
                        cos_j = float(np.dot(-rij, rjk) / (dij * djk))
                        cos_k = float(np.dot(-rjk, rki) / (djk * dki))
                        tot += (
                            nu
                            * (1 + 3 * cos_i * cos_j * cos_k)
                            / (dij * djk * dki) ** 3
                        )
            return tot

        e = energy(coords)
        for a in range(n):
            for x in range(3):
                cp = coords.copy()
                cp[a, x] += h
                cm = coords.copy()
                cm[a, x] -= h
                g[a, x] = (energy(cp) - energy(cm)) / (2 * h)
        return e, g
