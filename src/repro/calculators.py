"""Energy/gradient calculators: the pluggable engine behind MBE and AIMD.

`Calculator.energy_gradient(mol)` is the single interface the
fragmentation and MD layers consume. Three families are provided:

* `RIMP2Calculator` / `RIHFCalculator` — the real quantum engines
  (the paper's per-polymer worker computation).
* `ConventionalMP2Calculator` — the four-center baseline used for the
  Table III / Fig. 3 comparisons.
* `PairwisePotentialCalculator` — a cheap classical surrogate
  (Lennard-Jones + Coulomb + optional Axilrod-Teller three-body term)
  for exercising the fragmentation/scheduling machinery at scales where
  the quantum engine would dominate test runtime. Because LJ+Coulomb is
  strictly pairwise-additive, MBE2 reproduces it *exactly*; adding the
  Axilrod-Teller term makes MBE3 exact — both are sharp correctness
  tests for the MBE assembly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from .chem.molecule import Molecule
from .integrals.workspace import (
    IntegralWorkspace,
    get_workspace,
    payload_nbytes,
)
from .mp2.mp2 import mp2_ri
from .mp2.rimp2_grad import rimp2_gradient
from .numerics import ensure_finite
from .scf.grad import rhf_gradient_conventional, rhf_gradient_ri
from .scf.recovery import rhf_with_recovery
from .scf.rhf import rhf


class Calculator(Protocol):
    """Anything that can evaluate an energy and nuclear gradient."""

    def energy_gradient(self, mol: Molecule) -> tuple[float, np.ndarray]:
        """Return ``(energy_hartree, gradient (natoms, 3) Ha/Bohr)``."""
        ...


@dataclass
class _CacheEntry:
    #: most-recent-last converged densities (up to the cache's history
    #: depth); served as a Lagrange extrapolation to the next step
    history: list[np.ndarray]
    natoms: int
    nbytes: int


class GuessCache:
    """Per-fragment converged-density store for cross-step SCF warm starts.

    Between consecutive MD steps a fragment's geometry moves by a
    fraction of a bohr, so its previous converged density is an
    excellent initial guess — production AIMD codes (CP2K and the
    MTS-AIMD literature) report 2-4x fewer SCF iterations from exactly
    this reuse. Entries are keyed by the MBE fragment key (the tuple of
    constituent monomer indices, carried on fragment molecules as
    ``Molecule.frag_key``).

    Each entry keeps the last ``history`` converged densities and
    `get` serves their forward Lagrange extrapolation (``2 D1 - D0``
    for two, ``3 D2 - 3 D1 + D0`` for three) — the density analogue of
    the always-stable predictor in CP2K's ASPC scheme. Plain reuse of
    the last density alone saves little here: its error against the new
    geometry's solution lies along the *slowest-contracting* physical
    response modes, so DIIS still needs to rebuild its subspace;
    extrapolation cancels the leading order of that error.
    ``history=1`` recovers plain last-density reuse. The SCF layer
    re-purifies whatever guess it is handed (`repro.scf.rhf`), so the
    non-idempotency of the extrapolated combination is harmless.

    Safety properties:

    * entries store the fragment's atom count and are dropped on
      mismatch (`invalidate` is also called explicitly when a replan
      changes a fragment), so a stale density is never offered to a
      different fragment shape — and `repro.scf.rhf` re-validates the
      array against the basis regardless;
    * an LRU byte budget (``max_bytes``) bounds total storage, so
      million-fragment plans cannot exhaust coordinator or worker
      memory: least-recently-used densities are evicted first;
    * ``enabled=False`` turns the cache into a pure statistics collector
      (every lookup misses, nothing is stored) so cold and warm runs can
      be instrumented identically;
    * the cache is deliberately **not** checkpointed: a resumed
      trajectory restarts from cold guesses, which only costs
      iterations. Bitwise resume equivalence is guaranteed by the
      coordinator's ``deterministic`` mode, which disables warm starts
      entirely (see `repro.md.checkpoint`).

    Concurrency: every entry/counter access happens under one re-entrant
    lock, so the cache can be shared by the multi-tenant trajectory
    service (`repro.serve`), whose worker threads hit it concurrently.
    Lock waits are counted in ``contentions``. Multi-tenant keys carry
    the job id as a leading string element
    (``(job_id, m0, m1, ...)``) — jobs can then share one cache without
    cross-contaminating densities, and hits/misses are additionally
    attributed per tenant (`tenant_stats`).
    """

    def __init__(self, max_bytes: int = 256 * 2**20,
                 enabled: bool = True, history: int = 3,
                 seed_tol_bohr: float = 0.5, max_seeds: int = 64,
                 tenant_max_bytes: int | None = None) -> None:
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self.max_bytes = int(max_bytes)
        #: optional per-tenant byte ceiling for namespaced keys: one
        #: tenant streaming large fragments can then only evict its own
        #: LRU densities, never another job's warm history
        self.tenant_max_bytes = (
            int(tenant_max_bytes) if tenant_max_bytes is not None else None
        )
        self.enabled = enabled
        self.history = int(history)
        #: cross-tenant seed guesses: max per-atom displacement (bohr)
        #: between the stored and requested geometry for a seed to serve
        self.seed_tol_bohr = float(seed_tol_bohr)
        self.max_seeds = int(max_seeds)
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        #: composition-keyed latest converged densities shared across
        #: tenants: {seed_key: (D, natoms, coords)}
        self._seeds: OrderedDict[tuple, tuple] = OrderedDict()
        self._nbytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        #: misses answered by another tenant's same-composition density
        self.seed_hits = 0
        self.evictions = 0
        self.invalidations = 0
        #: blocking lock acquisitions (another thread held the cache)
        self.contentions = 0
        #: per-tenant {tenant: {"hits": n, "misses": n, ...}} for
        #: namespaced keys; evictions are attributed to the tenant that
        #: owned the evicted entry, not the tenant whose put triggered it
        self.tenant_stats: dict[str, dict[str, int]] = {}
        #: per-tenant resident bytes for namespaced keys
        self._tenant_nbytes: dict[str, int] = {}
        #: SCF iterations spent on cache-hit (warm) and cache-miss
        #: (cold) solves, for the 2-4x savings audit
        self.iters_warm = 0
        self.iters_cold = 0

    @contextmanager
    def _locked(self):
        """Hold the cache lock, counting contended acquisitions."""
        if not self._lock.acquire(blocking=False):
            self.contentions += 1
            self._lock.acquire()
        try:
            yield
        finally:
            self._lock.release()

    def _tenant_record(self, key: tuple | None, outcome: str) -> None:
        if not key or not isinstance(key[0], str):
            return
        t = self.tenant_stats.setdefault(
            key[0],
            {"hits": 0, "misses": 0, "seed_hits": 0, "evictions": 0},
        )
        t.setdefault(outcome, 0)
        t[outcome] += 1

    @staticmethod
    def _tenant_of(key: tuple | None) -> str | None:
        """Tenant namespace of a key, or None for un-namespaced keys."""
        if key and isinstance(key[0], str):
            return key[0]
        return None

    def _tenant_bytes_add(self, tenant: str | None, delta: int) -> None:
        """Adjust a tenant's resident-byte count (caller holds lock)."""
        if tenant is None:
            return
        total = self._tenant_nbytes.get(tenant, 0) + delta
        if total > 0:
            self._tenant_nbytes[tenant] = total
        else:
            self._tenant_nbytes.pop(tenant, None)

    def _evict(self, key: tuple, entry: _CacheEntry) -> None:
        """Account one eviction of an already-popped entry."""
        self._nbytes -= entry.nbytes
        self._tenant_bytes_add(self._tenant_of(key), -entry.nbytes)
        self.evictions += 1
        self._tenant_record(key, "evictions")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Current total payload size of the stored densities."""
        return self._nbytes

    def get(self, key: tuple, natoms: int | None = None,
            seed_key: tuple | None = None,
            coords: np.ndarray | None = None) -> np.ndarray | None:
        """The extrapolated guess density for ``key``, or None (a miss).

        With one stored density it is returned as-is; with more, the
        forward Lagrange extrapolation of the history is returned.  A
        ``natoms`` mismatch means the fragment no longer has the atom
        set the density was converged for; the entry is invalidated and
        the lookup misses.

        When ``seed_key``/``coords`` are given (the multi-tenant serve
        path), a per-key miss falls back to the cross-tenant seed store:
        the latest converged density of *any* tenant's fragment with the
        same composition key, served only if every atom of the stored
        geometry lies within ``seed_tol_bohr`` of ``coords``. Ensemble
        replicas of one system start from identical geometries, so
        their first solves warm-start off the leading replica instead
        of all paying the cold start; unrelated same-composition
        fragments fail the displacement check and stay cold.
        """
        with self._locked():
            entry = self._entries.get(key) if self.enabled else None
            if entry is not None and natoms is not None \
                    and entry.natoms != natoms:
                self.invalidate(key)
                entry = None
            if entry is None:
                seed = self._seed_lookup(seed_key, natoms, coords)
                if seed is not None:
                    self.seed_hits += 1
                    self._tenant_record(key, "seed_hits")
                    return seed
                self.misses += 1
                self._tenant_record(key, "misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._tenant_record(key, "hits")
            h = entry.history
            if len(h) == 1:
                return h[-1]
            if len(h) == 2:
                return 2.0 * h[-1] - h[-2]
            return 3.0 * h[-1] - 3.0 * h[-2] + h[-3]

    def _seed_lookup(self, seed_key, natoms, coords):
        """Cross-tenant seed density, or None. Caller holds the lock."""
        if seed_key is None or coords is None or not self.enabled:
            return None
        stored = self._seeds.get(seed_key)
        if stored is None:
            return None
        D, seed_natoms, seed_coords = stored
        if natoms is not None and seed_natoms != natoms:
            return None
        if seed_coords.shape != np.shape(coords):
            return None
        displacement = np.abs(np.asarray(coords) - seed_coords).max()
        if displacement > self.seed_tol_bohr:
            return None
        self._seeds.move_to_end(seed_key)
        return D

    def put(self, key: tuple, D: np.ndarray, natoms: int,
            seed_key: tuple | None = None,
            coords: np.ndarray | None = None) -> None:
        """Store a converged density (the caller must not mutate it).

        Appends to the key's history (dropping beyond the history
        depth); a ``natoms`` change discards the stale history first.
        With ``seed_key``/``coords`` the density also becomes the
        composition's cross-tenant seed (see `get`).
        """
        if not self.enabled:
            return
        with self._locked():
            if seed_key is not None and coords is not None:
                self._seeds[seed_key] = (
                    D, int(natoms), np.array(coords, copy=True)
                )
                self._seeds.move_to_end(seed_key)
                while len(self._seeds) > self.max_seeds:
                    self._seeds.popitem(last=False)
            tenant = self._tenant_of(key)
            entry = self._entries.pop(key, None)
            if entry is not None and entry.natoms != int(natoms):
                self._nbytes -= entry.nbytes
                self._tenant_bytes_add(tenant, -entry.nbytes)
                self.invalidations += 1
                entry = None
            if entry is None:
                entry = _CacheEntry(history=[], natoms=int(natoms),
                                    nbytes=0)
            else:
                self._nbytes -= entry.nbytes
                self._tenant_bytes_add(tenant, -entry.nbytes)
            entry.history.append(D)
            del entry.history[:-self.history]
            # actual bytes held alive (deduplicates repeated arrays and
            # counts view bases), so the LRU budget tracks real memory
            entry.nbytes = payload_nbytes(entry.history)
            self._entries[key] = entry
            self._nbytes += entry.nbytes
            self._tenant_bytes_add(tenant, entry.nbytes)
            # quota eviction first: only the over-budget tenant's own
            # LRU entries go, and never the entry just stored
            if tenant is not None and self.tenant_max_bytes is not None:
                while self._tenant_nbytes.get(tenant, 0) \
                        > self.tenant_max_bytes:
                    victim = next(
                        (k for k in self._entries
                         if k != key and self._tenant_of(k) == tenant),
                        None,
                    )
                    if victim is None:
                        break
                    self._evict(victim, self._entries.pop(victim))
            while self._nbytes > self.max_bytes and len(self._entries) > 1:
                victim, evicted = self._entries.popitem(last=False)
                self._evict(victim, evicted)

    def invalidate(self, key: tuple) -> None:
        """Drop one entry (no-op if absent)."""
        with self._locked():
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._nbytes -= entry.nbytes
                self._tenant_bytes_add(self._tenant_of(key), -entry.nbytes)
                self.invalidations += 1

    def clear(self) -> None:
        """Drop every entry and seed (statistics are kept)."""
        with self._locked():
            self._entries.clear()
            self._seeds.clear()
            self._nbytes = 0
            self._tenant_nbytes.clear()

    def record(self, hit: bool, n_iter: int) -> None:
        """Account one solve's iteration count against hit/miss."""
        with self._locked():
            if hit:
                self.iters_warm += int(n_iter)
            else:
                self.iters_cold += int(n_iter)

    def stats(self) -> dict:
        """Counters snapshot (hits/misses/iterations/evictions/bytes)."""
        with self._locked():
            out = {
                "hits": self.hits,
                "misses": self.misses,
                "seed_hits": self.seed_hits,
                "seeds": len(self._seeds),
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "contentions": self.contentions,
                "iters_warm": self.iters_warm,
                "iters_cold": self.iters_cold,
                "entries": len(self._entries),
                "nbytes": self._nbytes,
            }
            names = set(self.tenant_stats) | set(self._tenant_nbytes)
            if names:
                out["tenants"] = {
                    k: dict(
                        self.tenant_stats.get(
                            k, {"hits": 0, "misses": 0,
                                "seed_hits": 0, "evictions": 0}
                        ),
                        nbytes=self._tenant_nbytes.get(k, 0),
                    )
                    for k in sorted(names)
                }
            return out

    def __repr__(self) -> str:
        return (
            f"GuessCache(entries={len(self._entries)}, "
            f"nbytes={self._nbytes}, hits={self.hits}, "
            f"misses={self.misses}, enabled={self.enabled})"
        )


def _resolve_workspace(calc) -> IntegralWorkspace:
    """The calculator's `IntegralWorkspace` (the process-global one by
    default), with the calculator's tracer attached so ``int.screen`` /
    ``workspace.hit`` instants flow into the run trace."""
    ws = calc.workspace if calc.workspace is not None else get_workspace()
    if calc.tracer is not None and ws.tracer is None:
        ws.tracer = calc.tracer
    return ws


def _solve_scf(mol, basis, recover: bool, tracer=None, guess_cache=None,
               **kwargs):
    """Bare `rhf` or the recovery cascade, per the calculator's setting.

    With a `GuessCache` and a molecule carrying a ``frag_key``, the
    fragment's last converged density seeds the solve (``dm0``) and the
    new converged density is stored back — including after a recovery
    escalation, since any converged density is a valid future guess.
    Emits an ``scf.warm_start`` tracer instant per cached solve with the
    hit/miss outcome and the iteration count.
    """
    key = getattr(mol, "frag_key", None) if guess_cache is not None else None
    hit = False
    seed_key = None
    if key is not None and isinstance(key[0], str):
        # multi-tenant (job-namespaced) solve: participate in the
        # cross-tenant composition-keyed seed store too
        seed_key = (tuple(mol.symbols), int(mol.charge), basis)
    if key is not None:
        dm0 = guess_cache.get(key, natoms=mol.natoms,
                              seed_key=seed_key, coords=mol.coords)
        if dm0 is not None:
            kwargs["dm0"] = dm0
            hit = True
    if recover:
        res = rhf_with_recovery(mol, basis, tracer=tracer, **kwargs)
    else:
        res = rhf(mol, basis, **kwargs)
    if key is not None:
        guess_cache.record(hit, res.niter)
        guess_cache.put(key, res.D, natoms=mol.natoms,
                        seed_key=seed_key, coords=mol.coords)
        if tracer:
            tracer.instant(
                "scf.warm_start", cat="scf", key=str(key), hit=hit,
                n_iter=res.niter, warm_started=res.warm_started,
            )
    return res


@dataclass
class RIMP2Calculator:
    """Full RI-HF + RI-MP2 energy and analytic gradient (the paper's method).

    ``recover=True`` (the default) routes the SCF through the escalation
    ladder of `repro.scf.recovery`, so a hard fragment geometry costs
    extra iterations instead of aborting the trajectory.  Every returned
    energy/gradient passes a NaN/Inf sentinel; divergence surfaces as a
    typed `NumericalDivergenceError` the fault-tolerant drivers know how
    to retry or quarantine.

    ``guess_cache`` (a `GuessCache`) enables cross-step SCF warm starts
    for fragment molecules carrying a ``frag_key``; ``tracer`` threads a
    `repro.trace.Tracer` into the SCF layer so ``scf.recover`` /
    ``scf.recovered`` / ``scf.warm_start`` events are recorded instead
    of silently lost during MD runs.

    ``int_screen`` is the Schwarz screening tolerance forwarded to the
    three-center integral/derivative drivers (0.0 = exact, no skips);
    ``workspace`` is an `IntegralWorkspace` memoizing geometry-independent
    integral intermediates across solves (defaults to the process-global
    workspace — caching is exact, so results are bitwise unchanged).
    """

    basis: str = "sto-3g"
    conv_energy: float = 1.0e-10
    max_iter: int = 150
    recover: bool = True
    guess_cache: GuessCache | None = None
    tracer: object = None
    int_screen: float = 0.0
    workspace: IntegralWorkspace | None = None

    def energy_gradient(self, mol: Molecule) -> tuple[float, np.ndarray]:
        """RI-HF + RI-MP2 total energy and analytic gradient."""
        ws = _resolve_workspace(self)
        res = _solve_scf(
            mol, self.basis, self.recover, tracer=self.tracer,
            guess_cache=self.guess_cache, ri=True,
            conv_energy=self.conv_energy, max_iter=self.max_iter,
            int_screen=self.int_screen, workspace=ws,
        )
        out = rimp2_gradient(res, return_intermediates=True,
                             int_screen=self.int_screen, workspace=ws)
        energy = res.energy + out.e_corr
        ensure_finite(
            f"RI-MP2 on {mol.natoms}-atom fragment",
            energy=energy, gradient=out.gradient,
        )
        return energy, out.gradient

    def energy(self, mol: Molecule) -> float:
        """Energy-only evaluation (skips the gradient machinery)."""
        res = _solve_scf(mol, self.basis, self.recover, tracer=self.tracer,
                         guess_cache=self.guess_cache, ri=True,
                         conv_energy=self.conv_energy, max_iter=self.max_iter,
                         int_screen=self.int_screen,
                         workspace=_resolve_workspace(self))
        energy = res.energy + mp2_ri(res).e_corr
        ensure_finite(f"RI-MP2 on {mol.natoms}-atom fragment", energy=energy)
        return energy


@dataclass
class RIHFCalculator:
    """RI-HF only (no correlation) — used for RI-vs-non-RI timing studies.

    Supports the same ``guess_cache`` / ``tracer`` wiring as
    `RIMP2Calculator`.
    """

    basis: str = "sto-3g"
    recover: bool = True
    guess_cache: GuessCache | None = None
    tracer: object = None
    int_screen: float = 0.0
    workspace: IntegralWorkspace | None = None

    def energy_gradient(self, mol: Molecule) -> tuple[float, np.ndarray]:
        """RI-HF energy and analytic gradient."""
        ws = _resolve_workspace(self)
        res = _solve_scf(mol, self.basis, self.recover, tracer=self.tracer,
                         guess_cache=self.guess_cache, ri=True,
                         int_screen=self.int_screen, workspace=ws)
        grad = rhf_gradient_ri(res, int_screen=self.int_screen, workspace=ws)
        ensure_finite(
            f"RI-HF on {mol.natoms}-atom fragment",
            energy=res.energy, gradient=grad,
        )
        return res.energy, grad


@dataclass
class ConventionalHFCalculator:
    """Four-center HF baseline (what RI-HF replaces, Fig. 3).

    ``int_screen=None`` keeps the four-center derivative driver's
    default threshold (1e-11); ``0.0`` requests the exact path, which
    also bypasses the Schwarz/Dmax table builds entirely.
    """

    basis: str = "sto-3g"
    recover: bool = True
    guess_cache: GuessCache | None = None
    tracer: object = None
    int_screen: float | None = None
    workspace: IntegralWorkspace | None = None

    def energy_gradient(self, mol: Molecule) -> tuple[float, np.ndarray]:
        """Conventional four-center HF energy and gradient."""
        ws = _resolve_workspace(self)
        res = _solve_scf(mol, self.basis, self.recover, tracer=self.tracer,
                         guess_cache=self.guess_cache, ri=False,
                         workspace=ws)
        grad = rhf_gradient_conventional(
            res, workspace=ws, int_screen=self.int_screen
        )
        ensure_finite(
            f"HF on {mol.natoms}-atom fragment",
            energy=res.energy, gradient=grad,
        )
        return res.energy, grad


# --------------------------------------------------------------------------
# Classical surrogate
# --------------------------------------------------------------------------

#: Lennard-Jones well depths (Hartree) and radii (Bohr) per element; crude
#: but physically shaped values for the surrogate potential.
_LJ_EPS = {"H": 3.0e-5, "C": 1.2e-4, "N": 1.1e-4, "O": 1.0e-4}
_LJ_SIGMA = {"H": 4.0, "C": 6.2, "N": 6.0, "O": 5.8}


@dataclass
class PairwisePotentialCalculator:
    """Classical surrogate: bonded springs + LJ/Coulomb + optional 3-body.

    Intramolecular structure is held by harmonic bond and 1-3 (angle
    surrogate) springs detected from covalent radii; bonded and 1-3
    pairs are excluded from the nonbonded LJ + screened-Coulomb sums, so
    MD with fs time steps is stable. ``at_strength`` switches on the
    Axilrod-Teller triple-dipole three-body term

        V3 = nu * (1 + 3 cos a cos b cos c) / (r_ab r_bc r_ca)^3

    summed over atom triples, giving the MBE a genuine three-body
    signal. LJ+Coulomb is strictly pairwise-additive between monomers,
    so MBE2 is exact for it and MBE3 exact with the AT term — sharp
    correctness tests for the fragmentation machinery.
    """

    charge_scale: float = 0.05
    at_strength: float = 0.0
    bond_k: float = 0.35  # Hartree / Bohr^2
    angle_k: float = 0.06  # 1-3 distance spring
    softcore: float = 2.0  # Bohr; nonbonded r -> sqrt(r^2 + softcore^2)
    #: per-element point charges for the Coulomb-ish term
    charges: dict = field(
        default_factory=lambda: {"H": 0.3, "C": 0.1, "N": -0.4, "O": -0.5}
    )

    def energy_gradient(self, mol: Molecule) -> tuple[float, np.ndarray]:
        """Surrogate energy and analytic gradient."""
        from .chem.bonds import detect_bonds
        from .chem.elements import covalent_radius
        from .constants import BOHR_PER_ANGSTROM

        n = mol.natoms
        coords = mol.coords
        eps = np.array([_LJ_EPS.get(s, 1e-4) for s in mol.symbols])
        sig = np.array([_LJ_SIGMA.get(s, 5.5) for s in mol.symbols])
        q = np.array([self.charges.get(s, 0.0) for s in mol.symbols]) * self.charge_scale
        rcov = np.array(
            [covalent_radius(s) * BOHR_PER_ANGSTROM for s in mol.symbols]
        )
        e = 0.0
        g = np.zeros((n, 3))
        bonds = detect_bonds(mol)
        neighbors: dict[int, set[int]] = {i: set() for i in range(n)}
        excluded: set[tuple[int, int]] = set()
        for i, j in bonds:
            neighbors[i].add(j)
            neighbors[j].add(i)
            excluded.add((i, j))
        # 1-3 pairs: two bonds apart, remembering the central atom so the
        # equilibrium distance corresponds to a tetrahedral-ish angle
        pairs13: list[tuple[int, int, int]] = []
        for j in range(n):
            nb = sorted(neighbors[j])
            for ai in range(len(nb)):
                for bi in range(ai + 1, len(nb)):
                    a, b = nb[ai], nb[bi]
                    key = (min(a, b), max(a, b))
                    if key not in excluded:
                        pairs13.append((a, b, j))
                        excluded.add(key)

        def spring(i: int, j: int, k: float, r0: float) -> None:
            nonlocal e
            rvec = coords[i] - coords[j]
            r = float(np.linalg.norm(rvec))
            e += 0.5 * k * (r - r0) ** 2
            gi = k * (r - r0) * rvec / r
            g[i] += gi
            g[j] -= gi

        for i, j in bonds:
            # covalent-radius sums track the builder geometries closely
            spring(i, j, self.bond_k, rcov[i] + rcov[j])
        for a, b, j in pairs13:
            r0 = 0.8165 * (rcov[a] + rcov[b] + 2 * rcov[j])  # ~109.5 deg
            spring(a, b, self.angle_k, r0)

        # Nonbonded: soft-core LJ + screened Coulomb. The soft-core radius
        # bounds the repulsion so finite-step integration cannot shoot
        # through the wall — the potential stays smooth and pairwise.
        d2 = self.softcore**2
        for i in range(n):
            rvec = coords[i] - coords[i + 1 :]
            r2 = np.einsum("kj,kj->k", rvec, rvec)
            mask = np.array([(i, jj) not in excluded for jj in range(i + 1, n)])
            if not mask.any():
                continue
            s2 = r2 + d2
            e_ij = np.sqrt(eps[i] * eps[i + 1 :]) * mask
            s_ij = 0.5 * (sig[i] + sig[i + 1 :])
            qq = q[i] * q[i + 1 :] * mask
            sr6 = (s_ij**2 / s2) ** 3
            e += float(np.sum(4 * e_ij * (sr6**2 - sr6)))
            e += float(np.sum(qq / np.sqrt(s2)))
            # dE/d(r^2)
            dEdr2 = (
                4 * e_ij * (-6 * sr6**2 + 3 * sr6) / s2
                - 0.5 * qq / s2**1.5
            )
            gi = 2.0 * dEdr2[:, None] * rvec
            g[i] += gi.sum(axis=0)
            g[i + 1 :] -= gi
        if self.at_strength:
            e3, g3 = self._axilrod_teller(coords)
            e += e3
            g += g3
        return e, g

    def energy(self, mol: Molecule) -> float:
        """Energy-only evaluation (skips the finite-difference gradient
        of the three-body term — much faster for contribution scans)."""
        if not self.at_strength:
            return self.energy_gradient(mol)[0]
        saved = self.at_strength
        try:
            self.at_strength = 0.0
            e2, _ = self.energy_gradient(mol)
        finally:
            self.at_strength = saved
        return e2 + self._at_energy(mol.coords)

    def _at_energy(self, coords: np.ndarray) -> float:
        n = coords.shape[0]
        nu = self.at_strength
        tot = 0.0
        for i in range(n):
            for j in range(i + 1, n):
                for k in range(j + 1, n):
                    rij = coords[i] - coords[j]
                    rjk = coords[j] - coords[k]
                    rki = coords[k] - coords[i]
                    dij = np.linalg.norm(rij)
                    djk = np.linalg.norm(rjk)
                    dki = np.linalg.norm(rki)
                    cos_i = float(np.dot(rij, -rki) / (dij * dki))
                    cos_j = float(np.dot(-rij, rjk) / (dij * djk))
                    cos_k = float(np.dot(-rjk, rki) / (djk * dki))
                    tot += (
                        nu * (1 + 3 * cos_i * cos_j * cos_k)
                        / (dij * djk * dki) ** 3
                    )
        return tot

    def _axilrod_teller(self, coords: np.ndarray) -> tuple[float, np.ndarray]:
        n = coords.shape[0]
        nu = self.at_strength
        e = 0.0
        g = np.zeros_like(coords)
        h = 1.0e-6
        # Analytic AT gradients are lengthy; the term is only used in
        # tests/surrogates, so a central difference per triple-energy is
        # acceptable and keeps this code obviously correct.
        def energy(c):
            tot = 0.0
            for i in range(n):
                for j in range(i + 1, n):
                    for k in range(j + 1, n):
                        rij = c[i] - c[j]
                        rjk = c[j] - c[k]
                        rki = c[k] - c[i]
                        dij = np.linalg.norm(rij)
                        djk = np.linalg.norm(rjk)
                        dki = np.linalg.norm(rki)
                        cos_i = float(np.dot(rij, -rki) / (dij * dki))
                        cos_j = float(np.dot(-rij, rjk) / (dij * djk))
                        cos_k = float(np.dot(-rjk, rki) / (djk * dki))
                        tot += (
                            nu
                            * (1 + 3 * cos_i * cos_j * cos_k)
                            / (dij * djk * dki) ** 3
                        )
            return tot

        e = energy(coords)
        for a in range(n):
            for x in range(3):
                cp = coords.copy()
                cp[a, x] += h
                cm = coords.copy()
                cm[a, x] -= h
                g[a, x] = (energy(cp) - energy(cm)) / (2 * h)
        return e, g
