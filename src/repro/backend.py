"""Thin pluggable array-backend protocol for the batched integral kernels.

The shell-class kernels in `repro.integrals.batch` are written against a
small `ArrayBackend` surface (an array namespace plus a handful of ops
that differ between ecosystems) so the same kernel source runs on CPU
(numpy), GPU (CuPy), or under JAX — where the functional table builders
additionally make the integrals differentiable for the autodiff
gradient cross-check used in tests.

Backends are resolved lazily: importing this module never imports jax
or cupy. Selection order is explicit argument > ``set_default_backend``
> the ``REPRO_BACKEND`` environment variable > numpy. Requesting an
uninstalled backend raises `BackendUnavailableError` with an
installation hint, so optional-dependency CI jobs can skip cleanly.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "available_backends",
    "get_backend",
    "set_default_backend",
]

#: environment variable consulted when no backend was selected explicitly
BACKEND_ENV = "REPRO_BACKEND"

_BACKEND_NAMES = ("numpy", "jax", "cupy")


class BackendUnavailableError(ImportError):
    """Requested array backend is not installed in this environment."""


class ArrayBackend:
    """One array ecosystem behind a uniform, minimal surface.

    Attributes:
        name: backend identifier ("numpy", "jax", "cupy").
        xp: the array namespace (numpy / jax.numpy / cupy). All dense
            math in the batched kernels goes through this.
        is_numpy: True for the default backend — kernels use this to
            pick in-place fast paths that stay bitwise-identical to the
            reference loop implementation.
    """

    name = "numpy"
    is_numpy = True

    def __init__(self) -> None:
        self.xp = np

    # -- conversions ---------------------------------------------------
    def asarray(self, a):
        """Import a host array into the backend's namespace."""
        return self.xp.asarray(a)

    def to_numpy(self, a) -> np.ndarray:
        """Export a backend array to host numpy (no-op on numpy)."""
        return np.asarray(a)

    # -- ops with divergent spellings ----------------------------------
    def scatter_set(self, a, idx, vals):
        """``a[idx] = vals`` (functional on immutable-array backends)."""
        a[idx] = vals
        return a

    def gammainc(self, a, x):
        """Regularized lower incomplete gamma (Boys-function kernel)."""
        from scipy.special import gammainc

        return gammainc(a, x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayBackend({self.name!r})"


class _JaxBackend(ArrayBackend):
    name = "jax"
    is_numpy = False

    def __init__(self) -> None:
        try:
            import jax
            import jax.numpy as jnp
        except ImportError as exc:  # pragma: no cover - env dependent
            raise BackendUnavailableError(
                "backend 'jax' requested but jax is not installed "
                "(pip install jax)"
            ) from exc
        # Integrals are meaningless in float32; insist on x64 tracing.
        jax.config.update("jax_enable_x64", True)
        self.xp = jnp
        self._jax = jax

    def to_numpy(self, a) -> np.ndarray:
        return np.asarray(a)

    def scatter_set(self, a, idx, vals):
        return a.at[idx].set(vals)

    def gammainc(self, a, x):
        from jax.scipy.special import gammainc

        return gammainc(a, x)


class _CupyBackend(ArrayBackend):
    name = "cupy"
    is_numpy = False

    def __init__(self) -> None:
        try:
            import cupy
        except ImportError as exc:  # pragma: no cover - env dependent
            raise BackendUnavailableError(
                "backend 'cupy' requested but cupy is not installed "
                "(pip install cupy-cuda12x or the wheel matching your CUDA)"
            ) from exc
        self.xp = cupy

    def to_numpy(self, a) -> np.ndarray:
        import cupy

        if isinstance(a, cupy.ndarray):
            return cupy.asnumpy(a)
        return np.asarray(a)

    def scatter_set(self, a, idx, vals):
        a[idx] = vals
        return a

    def gammainc(self, a, x):  # pragma: no cover - needs GPU
        from cupyx.scipy.special import gammainc

        return gammainc(a, x)


_CONSTRUCTORS = {
    "numpy": ArrayBackend,
    "jax": _JaxBackend,
    "cupy": _CupyBackend,
}

#: memoized instances — backends are stateless, one per process suffices
_INSTANCES: dict[str, ArrayBackend] = {}

#: process-default backend name (None -> consult REPRO_BACKEND / numpy)
_DEFAULT: str | None = None


def _instantiate(name: str) -> ArrayBackend:
    be = _INSTANCES.get(name)
    if be is None:
        ctor = _CONSTRUCTORS.get(name)
        if ctor is None:
            raise ValueError(
                f"unknown backend {name!r}; choose from {_BACKEND_NAMES}"
            )
        be = ctor()
        _INSTANCES[name] = be
    return be


def get_backend(name: str | None = None) -> ArrayBackend:
    """Resolve an `ArrayBackend` by name (lazily, memoized).

    ``None`` means the process default: whatever `set_default_backend`
    chose, else ``$REPRO_BACKEND``, else numpy.
    """
    if name is None:
        name = _DEFAULT or os.environ.get(BACKEND_ENV, "").strip() or "numpy"
    return _instantiate(name.lower())


def set_default_backend(name: str | None) -> None:
    """Pin the process-default backend (``--backend`` lands here).

    ``None`` resets to environment/numpy resolution. The backend is
    instantiated eagerly so a missing optional dependency fails at
    selection time, not mid-calculation.
    """
    global _DEFAULT
    if name is None:
        _DEFAULT = None
        return
    _instantiate(name.lower())  # validate availability now
    _DEFAULT = name.lower()


def available_backends() -> list[str]:
    """Names of backends that can actually be instantiated here."""
    out = []
    for name in _BACKEND_NAMES:
        try:
            _instantiate(name)
        except (BackendUnavailableError, ImportError):
            continue
        out.append(name)
    return out
