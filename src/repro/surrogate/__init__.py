"""Online committee surrogates for the MBE dimer/trimer tail.

See ``repro.surrogate.manager`` for the uncertainty-gated serving layer
and ``repro.surrogate.model`` for the descriptor + kernel-ridge committee.
"""

from .manager import DEFAULT_TOL_DIMER, DEFAULT_TOL_TRIMER, SurrogateManager
from .model import KernelRidgeCommittee, descriptor

__all__ = [
    "SurrogateManager",
    "KernelRidgeCommittee",
    "descriptor",
    "DEFAULT_TOL_DIMER",
    "DEFAULT_TOL_TRIMER",
]
