"""Online per-fragment-class surrogate manager with an uncertainty gate.

``SurrogateManager`` sits between the MD drivers and the calculator: every
full polymer solve is ``observe``d as a training pair, and before a polymer
task is scheduled the driver asks ``predict`` whether the committee can
serve the contribution within the per-order disagreement bound.  When it
can, the bound is accumulated into ``neglected_bound`` -- the same
neglected-error ceiling discipline the Schwarz screener uses -- and the
full RI-MP2 solve is skipped entirely.

The disagreement is the committee energy spread plus the GP posterior
sigma of the full-data fit (see `repro.surrogate.model`); a per-class
serve-streak cap additionally forces a full-solve refresh every
``max_serve_streak`` consecutive serves, so the training window keeps
tracking the trajectory instead of freezing at serve onset.

The manager is lock-protected like ``GuessCache`` (non-blocking acquire
first so cross-thread contention is observable in ``stats()``), and its
training windows round-trip through checkpoint format v3 via
``state_dict``/``load_state``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

from .model import KernelRidgeCommittee, descriptor

__all__ = ["SurrogateManager", "DEFAULT_TOL_DIMER", "DEFAULT_TOL_TRIMER"]

DEFAULT_TOL_DIMER = 5e-5  # Ha: committee-disagreement gate for dimers
DEFAULT_TOL_TRIMER = 2e-5  # Ha: trimers are smaller contributions; gate tighter


class _ClassModel:
    """Training window + cached committee for one fragment class."""

    __slots__ = ("x", "y", "committee", "fitted_n", "streak")

    def __init__(self) -> None:
        self.x: list[np.ndarray] = []
        self.y: list[np.ndarray] = []
        self.committee: KernelRidgeCommittee | None = None
        self.fitted_n = -1
        #: consecutive serves since the last full-solve observation —
        #: bounded by ``max_serve_streak`` so the training window keeps
        #: tracking the trajectory instead of freezing at serve onset
        self.streak = 0


class SurrogateManager:
    """Committee surrogates for the MBE dimer/trimer tail, trained online."""

    def __init__(
        self,
        tol_dimer: float = DEFAULT_TOL_DIMER,
        tol_trimer: float = DEFAULT_TOL_TRIMER,
        min_train: int = 6,
        max_points: int = 64,
        members: int = 3,
        ridge: float = 1e-8,
        seed: int = 0,
        max_serve_streak: int = 8,
    ) -> None:
        if min_train < 2:
            raise ValueError("min_train must be >= 2")
        if max_points < min_train:
            raise ValueError("max_points must be >= min_train")
        if max_serve_streak < 1:
            raise ValueError("max_serve_streak must be >= 1")
        self.tol_dimer = float(tol_dimer)
        self.tol_trimer = float(tol_trimer)
        self.min_train = int(min_train)
        self.max_points = int(max_points)
        self.members = int(members)
        self.ridge = float(ridge)
        self.seed = int(seed)
        self.max_serve_streak = int(max_serve_streak)
        self._classes: dict[tuple, _ClassModel] = {}
        self._lock = threading.RLock()
        self._contentions = 0
        # counters
        self.trained = 0
        self.served = 0
        self.refused_cold = 0
        self.refused_uncertain = 0
        #: refusals forced by the serve-streak cap (periodic full-solve
        #: refreshes that keep the training window current)
        self.refused_refresh = 0
        self.served_by_order: dict[int, int] = {}
        self.neglected_bound = 0.0  # sum of |coef| * tol over served items
        self.disagreement_sum = 0.0  # sum of actual committee disagreements

    # -- locking (mirrors GuessCache: count contended acquisitions) --------

    @contextmanager
    def _locked(self):
        acquired = self._lock.acquire(blocking=False)
        if not acquired:
            self._contentions += 1
            self._lock.acquire()
        try:
            yield
        finally:
            self._lock.release()

    # -- keying ------------------------------------------------------------

    @staticmethod
    def _order(key: tuple) -> int:
        """MBE order of a frag key, ignoring a leading tenant namespace."""
        return sum(1 for part in key if not isinstance(part, str))

    @staticmethod
    def class_key(mol, order: int) -> tuple:
        return (tuple(mol.symbols), int(getattr(mol, "charge", 0)), int(order))

    def _tol(self, order: int) -> float | None:
        if order == 2:
            return self.tol_dimer
        if order == 3:
            return self.tol_trimer
        return None

    # -- online training ---------------------------------------------------

    def observe(self, key: tuple, mol, energy: float, gradient: np.ndarray) -> None:
        """Record one full-solve result as a training pair for its class."""
        order = self._order(key)
        if order < 2:
            return
        x = descriptor(mol.coords)
        y = np.concatenate(
            [[float(energy)], np.asarray(gradient, dtype=float).ravel()]
        )
        with self._locked():
            model = self._classes.setdefault(self.class_key(mol, order), _ClassModel())
            model.x.append(x)
            model.y.append(y)
            if len(model.x) > self.max_points:
                del model.x[0]
                del model.y[0]
            model.fitted_n = -1  # mark dirty
            model.streak = 0
            self.trained += 1

    # -- gated serving -----------------------------------------------------

    def predict(self, key: tuple, mol, coefficient: float = 1.0):
        """Serve ``(energy, gradient, disagreement)`` or ``None`` (fall back).

        ``None`` means the caller must schedule a full solve: either the
        class is cold (fewer than ``min_train`` pairs) or the committee
        disagreement exceeds the per-order bound.  On a successful serve
        the per-order bound (scaled by ``|coefficient|``) is folded into
        ``neglected_bound``.
        """
        order = self._order(key)
        tol = self._tol(order)
        if tol is None:
            return None
        with self._locked():
            model = self._classes.get(self.class_key(mol, order))
            if model is None or len(model.x) < self.min_train:
                self.refused_cold += 1
                return None
            if model.streak >= self.max_serve_streak:
                # force a periodic full-solve refresh: the resulting
                # observe() call resets the streak and keeps the window
                # tracking the trajectory
                self.refused_refresh += 1
                return None
            n = len(model.x)
            if model.fitted_n != n:
                committee = KernelRidgeCommittee(
                    members=self.members, ridge=self.ridge, seed=self.seed
                )
                committee.fit(np.stack(model.x), np.stack(model.y))
                model.committee = committee
                model.fitted_n = n
            mean, spread = model.committee.predict(descriptor(mol.coords))
            if spread > tol:
                self.refused_uncertain += 1
                return None
            self.served += 1
            model.streak += 1
            self.served_by_order[order] = self.served_by_order.get(order, 0) + 1
            self.neglected_bound += abs(float(coefficient)) * tol
            self.disagreement_sum += spread
            energy = float(mean[0])
            gradient = mean[1:].reshape(mol.natoms, 3).copy()
            return energy, gradient, spread

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        with self._locked():
            return {
                "classes": len(self._classes),
                "points": sum(len(m.x) for m in self._classes.values()),
                "trained": self.trained,
                "served": self.served,
                "served_by_order": dict(sorted(self.served_by_order.items())),
                "refused_cold": self.refused_cold,
                "refused_uncertain": self.refused_uncertain,
                "refused_refresh": self.refused_refresh,
                "neglected_bound": self.neglected_bound,
                "disagreement_sum": self.disagreement_sum,
                "contentions": self._contentions,
            }

    # -- checkpoint round-trip (format v3) ---------------------------------

    def state_dict(self) -> tuple[dict, dict]:
        """Return ``(meta, arrays)`` for the checkpoint writer.

        ``meta`` is JSON-serializable; ``arrays`` maps npz entry names to
        the per-class training windows.  Committee fits are NOT stored:
        they are a pure, seeded function of the window, so refitting after
        ``load_state`` reproduces them bitwise.
        """
        with self._locked():
            classes = []
            arrays: dict[str, np.ndarray] = {}
            for i, (ckey, model) in enumerate(sorted(self._classes.items())):
                symbols, charge, order = ckey
                xname, yname = f"surrogate_x{i}", f"surrogate_y{i}"
                arrays[xname] = np.stack(model.x)
                arrays[yname] = np.stack(model.y)
                classes.append(
                    {
                        "symbols": list(symbols),
                        "charge": int(charge),
                        "order": int(order),
                        "streak": int(model.streak),
                        "x": xname,
                        "y": yname,
                    }
                )
            meta = {
                "config": {
                    "tol_dimer": self.tol_dimer,
                    "tol_trimer": self.tol_trimer,
                    "min_train": self.min_train,
                    "max_points": self.max_points,
                    "members": self.members,
                    "ridge": self.ridge,
                    "seed": self.seed,
                    "max_serve_streak": self.max_serve_streak,
                },
                "counters": {
                    "trained": self.trained,
                    "served": self.served,
                    "refused_cold": self.refused_cold,
                    "refused_uncertain": self.refused_uncertain,
                    "refused_refresh": self.refused_refresh,
                    "neglected_bound": self.neglected_bound,
                    "disagreement_sum": self.disagreement_sum,
                    "served_by_order": {
                        str(k): v for k, v in self.served_by_order.items()
                    },
                },
                "classes": classes,
            }
            return meta, arrays

    def load_state(self, meta: dict, arrays: dict) -> None:
        """Restore training windows + counters from a checkpoint.

        The committee configuration must match: the committee is a seeded
        function of (window, config), and a silent config change across a
        resume would break the bitwise-continuation contract.
        """
        config = meta.get("config", {})
        mine = {
            "tol_dimer": self.tol_dimer,
            "tol_trimer": self.tol_trimer,
            "min_train": self.min_train,
            "max_points": self.max_points,
            "members": self.members,
            "ridge": self.ridge,
            "seed": self.seed,
            "max_serve_streak": self.max_serve_streak,
        }
        for name, value in mine.items():
            if name in config and config[name] != value:
                raise ValueError(
                    f"surrogate config mismatch on resume: {name} "
                    f"checkpoint={config[name]!r} run={value!r}"
                )
        with self._locked():
            self._classes = {}
            for entry in meta.get("classes", []):
                ckey = (
                    tuple(entry["symbols"]),
                    int(entry["charge"]),
                    int(entry["order"]),
                )
                model = _ClassModel()
                model.x = [np.asarray(row, dtype=float) for row in arrays[entry["x"]]]
                model.y = [np.asarray(row, dtype=float) for row in arrays[entry["y"]]]
                model.streak = int(entry.get("streak", 0))
                self._classes[ckey] = model
            counters = meta.get("counters", {})
            self.trained = int(counters.get("trained", 0))
            self.served = int(counters.get("served", 0))
            self.refused_cold = int(counters.get("refused_cold", 0))
            self.refused_uncertain = int(counters.get("refused_uncertain", 0))
            self.refused_refresh = int(counters.get("refused_refresh", 0))
            self.neglected_bound = float(counters.get("neglected_bound", 0.0))
            self.disagreement_sum = float(counters.get("disagreement_sum", 0.0))
            self.served_by_order = {
                int(k): int(v)
                for k, v in counters.get("served_by_order", {}).items()
            }
