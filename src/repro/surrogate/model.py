"""Kernel-ridge committee surrogates over invariant fragment descriptors.

The MD loop produces a stream of ``(fragment geometry -> energy, gradient)``
pairs for every full RI-MP2 (or RI-HF) polymer solve.  This module learns
that map online, per fragment class, with a small committee of kernel-ridge
regressors whose disagreement serves as the uncertainty estimate that gates
serving a prediction instead of scheduling a full solve.

Design notes
------------
* The descriptor is the vector of inverse interatomic distances over the
  capped fragment geometry.  It is exactly invariant under rotations and
  translations and smooth in the coordinates.  Because every fragment of a
  given class (same symbol sequence, same charge, same MBE order) is built
  by ``FragmentedSystem.fragment_molecule`` with a canonical atom ordering,
  descriptor components align across fragment instances of one class.
* Targets are multi-output: the fragment energy plus the flattened
  fragment-frame Cartesian gradient.  Gradient components are treated as
  smooth functions of the invariant descriptor; this is exact for the
  energy and a controlled local approximation for the gradient (fragments
  rotate very little between trained and served geometries along an MD
  trajectory).  The honest error story lives in docs/PERFORMANCE.md.
* Each committee member fits a bootstrap resample of the training window.
  The member RNG is seeded from ``(seed, member, n_points)`` only, never
  from wall-clock state, so refitting the same window reproduces the same
  committee bitwise -- this is what makes checkpoint round-trips exact.
* The disagreement reported by ``predict`` is the committee energy spread
  *plus* the Gaussian-process posterior standard deviation of the full-data
  fit, scaled by the training-target spread.  Bootstrap members trained on
  a correlated MD window agree almost perfectly even in far extrapolation
  (every member reverts to its own bootstrap mean there, so the raw spread
  *collapses* exactly where the prediction is worst); the GP variance term
  grows toward the full target scale as the query leaves the training
  manifold, which is what actually closes the serve-drift feedback loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "descriptor",
    "descriptor_gradient_chain",
    "KernelRidgeCommittee",
]


def descriptor(coords: np.ndarray) -> np.ndarray:
    """Invariant descriptor: inverse distances over all atom pairs.

    ``coords`` is ``(natoms, 3)`` in Bohr; returns ``(natoms*(natoms-1)/2,)``.
    """
    coords = np.asarray(coords, dtype=float)
    n = coords.shape[0]
    if n < 2:
        return np.zeros(0, dtype=float)
    diff = coords[:, None, :] - coords[None, :, :]
    r = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    iu = np.triu_indices(n, 1)
    return 1.0 / r[iu]


def descriptor_gradient_chain(coords: np.ndarray) -> np.ndarray:
    """Jacobian d(descriptor)/d(coords): ``(npairs, natoms, 3)``.

    Not used on the serve path (gradients are interpolated directly as
    committee targets) but kept for diagnostics and tests of descriptor
    smoothness.
    """
    coords = np.asarray(coords, dtype=float)
    n = coords.shape[0]
    iu, ju = np.triu_indices(n, 1)
    jac = np.zeros((len(iu), n, 3), dtype=float)
    for p, (i, j) in enumerate(zip(iu, ju)):
        d = coords[i] - coords[j]
        r = float(np.sqrt(d @ d))
        g = -d / r**3
        jac[p, i] = g
        jac[p, j] = -g
    return jac


@dataclass
class _MemberFit:
    """One fitted committee member: bootstrap sample + ridge solution."""

    x_train: np.ndarray  # (nb, d)
    alpha: np.ndarray  # (nb, m) dual coefficients
    y_mean: np.ndarray  # (m,) target centering
    length_scale: float


@dataclass
class KernelRidgeCommittee:
    """Multi-output Gaussian kernel ridge committee with bootstrap members.

    ``fit`` trains ``members`` regressors on bootstrap resamples of the
    window; ``predict`` returns the committee-mean target vector together
    with the maximum absolute deviation of any member's *energy* (target
    component 0) from the mean -- the disagreement used by the gate.
    """

    members: int = 3
    ridge: float = 1e-8
    seed: int = 0
    _fits: list[_MemberFit] = field(default_factory=list, repr=False)
    _x_all: np.ndarray | None = field(default=None, repr=False)
    _chol: np.ndarray | None = field(default=None, repr=False)
    _scale: float = field(default=1.0, repr=False)
    _target_scale: float = field(default=0.0, repr=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        n = x.shape[0]
        if n < 2:
            raise ValueError("committee fit needs at least 2 points")
        scale = _median_length_scale(x)
        # full-data GP machinery for the posterior-variance term of the
        # disagreement: Cholesky of K + lam*I, plus the target scale that
        # converts the unitless kernel variance into Hartree
        k_full = _rbf(x, x, scale)
        lam = self.ridge * max(1.0, float(np.trace(k_full)) / n)
        k_full[np.diag_indices_from(k_full)] += lam
        self._chol = np.linalg.cholesky(k_full)
        self._x_all = x.copy()
        self._scale = scale
        grad_scale = float(y[:, 1:].std(axis=0).max()) if y.shape[1] > 1 else 0.0
        self._target_scale = max(float(y[:, 0].std()), grad_scale)
        self._fits = []
        for b in range(self.members):
            rng = np.random.default_rng([int(self.seed), b, n])
            idx = np.sort(rng.integers(0, n, size=n))
            # guarantee at least two distinct support points so the
            # member interpolates rather than degenerating to a constant
            if len(np.unique(idx)) < 2:
                idx = np.arange(n)
            xb, yb = x[idx], y[idx]
            y_mean = yb.mean(axis=0)
            k = _rbf(xb, xb, scale)
            lam = self.ridge * max(1.0, float(np.trace(k)) / len(xb))
            k[np.diag_indices_from(k)] += lam
            alpha = np.linalg.solve(k, yb - y_mean)
            self._fits.append(
                _MemberFit(x_train=xb, alpha=alpha, y_mean=y_mean, length_scale=scale)
            )

    @property
    def fitted(self) -> bool:
        return bool(self._fits)

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, float]:
        """Return ``(committee-mean targets (m,), disagreement)``.

        The disagreement is the committee energy spread plus the GP
        posterior sigma scaled into target units; see the module
        docstring for why the variance term is load-bearing.
        """
        if not self._fits:
            raise RuntimeError("predict before fit")
        x = np.asarray(x, dtype=float)[None, :]
        preds = []
        for fit in self._fits:
            k = _rbf(x, fit.x_train, fit.length_scale)
            preds.append((k @ fit.alpha)[0] + fit.y_mean)
        stacked = np.stack(preds)  # (members, m)
        mean = stacked.mean(axis=0)
        spread = float(np.max(np.abs(stacked[:, 0] - mean[0]))) if len(preds) > 1 else 0.0
        kv = _rbf(x, self._x_all, self._scale)[0]
        z = np.linalg.solve(self._chol, kv)
        var = max(1.0 - float(z @ z), 0.0)
        sigma = float(np.sqrt(var)) * self._target_scale
        return mean, spread + sigma


def _rbf(a: np.ndarray, b: np.ndarray, length_scale: float) -> np.ndarray:
    d2 = (
        np.sum(a * a, axis=1)[:, None]
        + np.sum(b * b, axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )
    np.maximum(d2, 0.0, out=d2)
    return np.exp(-d2 / (2.0 * length_scale**2))


def _median_length_scale(x: np.ndarray) -> float:
    n = x.shape[0]
    d2 = (
        np.sum(x * x, axis=1)[:, None]
        + np.sum(x * x, axis=1)[None, :]
        - 2.0 * (x @ x.T)
    )
    iu = np.triu_indices(n, 1)
    dists = np.sqrt(np.maximum(d2[iu], 0.0))
    positive = dists[dists > 0.0]
    if positive.size == 0:
        return 1.0
    return float(np.median(positive))
