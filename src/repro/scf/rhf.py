"""Restricted Hartree-Fock: conventional (four-center) and RI variants.

The RI Fock build implements the paper's Eq. (8): with the fitted
three-center tensor ``B_{mu nu}^P`` held in memory, Coulomb and exchange
contractions become sequences of GEMMs routed through the tuned,
FLOP-counted `repro.gemm.gemm`. The conventional path (explicit
``(mu nu|la si)``) is retained as the state-of-the-art baseline the paper
compares against (Table III / Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..basis.auxiliary import auto_auxiliary
from ..basis.basisset import BasisSet
from ..chem.molecule import Molecule
from ..gemm import gemm, sym_inv_sqrt, eigh_gen
from ..integrals import eri2c, eri3c, eri4c, hcore, overlap
from ..numerics import NumericalDivergenceError
from .diis import DIIS


class SCFConvergenceError(RuntimeError):
    """Raised when the SCF loop exhausts its iteration budget."""


@dataclass
class SCFResult:
    """Converged restricted HF state.

    ``D`` is the occupation-2 AO density ``2 C_occ C_occ^T``. When the RI
    path is used, the fitted tensor ``B`` (``(nbf, nbf, naux)``, metric
    factor ``J^{-1/2}`` folded in) and the raw metric are retained so MP2
    and the gradient reuse the three-center integrals (paper Sec. III-A
    point ii: no recomputation).
    """

    mol: Molecule
    basis: BasisSet
    energy: float
    e_nuc: float
    C: np.ndarray
    eps: np.ndarray
    D: np.ndarray
    S: np.ndarray
    h: np.ndarray
    F: np.ndarray
    nocc: int
    converged: bool
    niter: int
    method: str
    #: True when the solve started from a caller-supplied density
    #: (``dm0``) that passed validation, False for a cold guess
    warm_started: bool = False
    aux: BasisSet | None = None
    B: np.ndarray | None = None  # (nbf, nbf, naux), J^{-1/2} folded
    J2c: np.ndarray | None = None
    Jih: np.ndarray | None = None  # J^{-1/2}
    eri: np.ndarray | None = None  # conventional 4c tensor if built
    #: recovery-cascade stages attempted before this solve succeeded
    #: (empty when the bare loop converged on the first try)
    recovery: tuple[str, ...] = ()

    @property
    def n_iter(self) -> int:
        """SCF iterations taken (alias of ``niter`` for external callers
        auditing warm-start savings)."""
        return self.niter

    @property
    def C_occ(self) -> np.ndarray:
        """Occupied MO coefficients, shape (nbf, nocc)."""
        return self.C[:, : self.nocc]

    @property
    def C_virt(self) -> np.ndarray:
        """Virtual MO coefficients, shape (nbf, nvirt)."""
        return self.C[:, self.nocc :]

    @property
    def nvirt(self) -> int:
        """Number of virtual orbitals."""
        return self.C.shape[1] - self.nocc


def _fock_conventional(h: np.ndarray, ERI: np.ndarray, D: np.ndarray) -> np.ndarray:
    J = np.einsum("mnls,ls->mn", ERI, D)
    K = np.einsum("mlns,ls->mn", ERI, D)
    return h + J - 0.5 * K


@dataclass
class RIFockLayout:
    """Iteration-invariant memory layouts of the RI fit tensor.

    `_fock_ri` needs ``B`` in three layouts — ``(n*n, naux)`` for the
    Coulomb GEMMs and two ``(naux*n, n)`` transposes for the exchange
    GEMMs. Only the density changes between SCF iterations, so these are
    materialized once per solve (and shared across recovery rungs via
    the solve memo) instead of re-copied every iteration.
    """

    B: np.ndarray  # (nbf, nbf, naux), J^{-1/2} folded
    Bf: np.ndarray  # (n*n, naux) view
    Bt: np.ndarray  # (naux*n, n): B.transpose(2, 0, 1), contiguous
    B2: np.ndarray  # (naux*n, n): B.transpose(2, 1, 0), contiguous

    @classmethod
    def from_tensor(cls, B: np.ndarray) -> "RIFockLayout":
        n, _, naux = B.shape
        return cls(
            B=B,
            Bf=B.reshape(n * n, naux),
            Bt=np.ascontiguousarray(B.transpose(2, 0, 1)).reshape(naux * n, n),
            B2=np.ascontiguousarray(B.transpose(2, 1, 0)).reshape(naux * n, n),
        )


def _fock_ri(h: np.ndarray, lay: RIFockLayout, D: np.ndarray) -> np.ndarray:
    """RI Fock build, Eq. (8): pure GEMM sequence.

    ``lay`` holds the fit tensor ``B`` (``(nbf, nbf, naux)``) plus its
    hoisted contraction layouts. Coulomb: fit coefficients
    ``gamma_P = sum_{ls} B_{ls}^P D_{ls}`` then
    ``J_{mn} = sum_P B_{mn}^P gamma_P``. Exchange:
    ``K_{mn} = sum_{P s} (B D)_{mn s P} ...`` via two GEMMs.
    """
    n, _, naux = lay.B.shape
    gamma = gemm(lay.Bf.T, D.reshape(n * n, 1))  # (naux, 1)
    J = gemm(lay.Bf, gamma).reshape(n, n)
    # X[P,m,s] = sum_l B_{ml}^P D_{ls}
    X = gemm(lay.Bt, D).reshape(naux, n, n)
    # K_{mn} = sum_{P,s} X[P,m,s] B[n,s,P]
    X2 = np.ascontiguousarray(X.transpose(1, 0, 2)).reshape(n, naux * n)
    K = gemm(X2, lay.B2)
    return h + J - 0.5 * K


def build_ri_tensors(
    basis: BasisSet, aux: BasisSet,
    screen: float = 0.0, workspace=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Three-center fit tensor B, raw metric J, and ``J^{-1/2}``.

    ``screen``/``workspace`` enable Schwarz screening and cross-call
    caching in the underlying integral drivers (see
    `repro.integrals.workspace`).
    """
    T3 = eri3c(basis, aux, screen=screen, workspace=workspace)
    J2 = eri2c(aux, workspace=workspace)
    Jih = sym_inv_sqrt(J2)
    n = basis.nbf
    B = gemm(T3.reshape(n * n, aux.nbf), Jih).reshape(n, n, aux.nbf)
    return B, J2, Jih


def rhf(
    mol: Molecule,
    basis: str | BasisSet = "sto-3g",
    ri: bool = True,
    aux: BasisSet | None = None,
    conv_energy: float = 1.0e-10,
    conv_orb: float = 1.0e-8,
    max_iter: int = 150,
    use_diis: bool = True,
    level_shift: float = 0.0,
    h_extra: np.ndarray | None = None,
    guess: str = "gwh",
    damping: float = 0.0,
    diis_restart: int = 0,
    dm0: np.ndarray | None = None,
    int_screen: float = 0.0,
    workspace=None,
    solve_memo: dict | None = None,
) -> SCFResult:
    """Solve restricted closed-shell Hartree-Fock.

    Args:
        mol: target molecule (must have an even electron count).
        basis: basis-set name or prebuilt `BasisSet`.
        ri: use the resolution-of-the-identity Fock build (Eq. 8). The
            conventional path computes and stores four-center ERIs.
        aux: auxiliary basis; auto-generated when None and ``ri``.
        conv_energy / conv_orb: energy and DIIS-error thresholds.
        level_shift: optional virtual-space level shift (Hartree) for
            difficult cases.
        h_extra: optional one-electron perturbation added to the core
            Hamiltonian (e.g. a finite external field for response
            properties).
        guess: initial-density scheme: "gwh" (generalized
            Wolfsberg-Helmholz, default) or "core" (bare core
            Hamiltonian).
        damping: density-damping fraction in [0, 1): the new density is
            mixed as ``(1 - damping) D_new + damping D_old``.  0 (the
            default) reproduces the undamped loop exactly.
        diis_restart: if > 0, discard the accumulated DIIS subspace
            every ``diis_restart`` iterations — a stale, ill-conditioned
            subspace is a classic source of SCF limit cycles.
        dm0: optional initial AO density (occupation-2 convention, shape
            ``(nbf, nbf)``) — typically the converged density of the
            same fragment at the previous MD step (warm start). The
            array is validated against the basis size, finiteness, and
            its electron count ``tr(D S)``; anything incompatible is
            silently discarded and the cold ``guess`` is used instead,
            so a stale cache can never abort a solve. An accepted
            density gets one McWeeny purification step
            ``D' = 3/2 D S D - 1/2 D S D S D`` before use — the
            geometry (and hence S) has moved since the density was
            converged, and extrapolated guesses are not idempotent at
            all; purification projects the guess back toward a proper
            one-particle density at the cost of three GEMMs. Whether
            the warm density was actually used is reported as
            ``SCFResult.warm_started``.
        int_screen: Schwarz screening threshold for the integral drivers
            (0 disables screening — the exact default). See
            `repro.integrals.workspace.DEFAULT_INT_SCREEN`.
        workspace: optional `repro.integrals.IntegralWorkspace` serving
            cached shell-pair tables and screening bounds across calls.
        solve_memo: optional dict shared by repeated solves of the *same*
            molecule/basis (the recovery cascade): geometry-fixed
            matrices (basis, S, core h, RI tensors and Fock layouts) are
            built once and reused by every rung instead of being rebuilt
            from scratch per attempt.

    Returns:
        `SCFResult` with the converged state and reusable RI tensors.

    Raises:
        SCFConvergenceError: if not converged within ``max_iter``.
        NumericalDivergenceError: if the energy, Fock matrix, or density
            goes NaN/Inf mid-iteration (divergence, not slow
            convergence).
        ValueError: for open-shell electron counts or bad parameters.
    """
    if not 0.0 <= damping < 1.0:
        raise ValueError(f"damping must be in [0, 1), got {damping}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    memo = solve_memo if solve_memo is not None else {}
    if isinstance(basis, BasisSet):
        bs = basis
        basis_name = "custom"
    elif "bs" in memo:
        bs = memo["bs"]
        basis_name = basis
    else:
        basis_name = basis
        bs = memo["bs"] = BasisSet.build(mol, basis)
    nelec = mol.nelectrons
    if nelec % 2 != 0:
        raise ValueError(
            f"rhf requires an even electron count, got {nelec} "
            f"(charge={mol.charge})"
        )
    nocc = nelec // 2
    if nocc == 0:
        raise ValueError("no electrons to correlate")
    if nocc > bs.nbf:
        raise ValueError("basis too small for electron count")

    if "S" in memo:
        S = memo["S"]
        h = memo["h0"]
    else:
        S = memo["S"] = overlap(bs, workspace)
        h = memo["h0"] = hcore(bs, mol, workspace)
    if h_extra is not None:
        h = h + h_extra
        if not np.all(np.isfinite(h)):
            raise NumericalDivergenceError(
                "SCF setup: non-finite core Hamiltonian after h_extra "
                "perturbation"
            )
    e_nuc = mol.nuclear_repulsion()

    B = J2 = Jih = ERI = lay = None
    if ri:
        if "ri" in memo:
            B, J2, Jih, aux, lay = memo["ri"]
        else:
            if aux is None:
                if basis_name == "custom":
                    raise ValueError(
                        "custom basis requires an explicit aux basis"
                    )
                aux = auto_auxiliary(mol, basis_name)
            B, J2, Jih = build_ri_tensors(
                bs, aux, screen=int_screen, workspace=workspace
            )
            lay = RIFockLayout.from_tensor(B)
            memo["ri"] = (B, J2, Jih, aux, lay)
    elif "eri" in memo:
        ERI = memo["eri"]
    else:
        ERI = memo["eri"] = eri4c(bs)

    X = sym_inv_sqrt(S)
    D = None
    warm_started = False
    if dm0 is not None:
        # Warm start: validate rather than trust. The density must match
        # this basis, be finite, and carry roughly the right number of
        # electrons in the *current* overlap metric (the geometry has
        # moved since it converged, so tr(D S) drifts slightly; a wrong
        # fragment's density at the same nbf usually fails this check).
        cand = np.asarray(dm0, dtype=float)
        if cand.shape == (bs.nbf, bs.nbf) and np.all(np.isfinite(cand)):
            ne = float(np.sum(cand * S))
            if abs(ne - nelec) <= 0.05 * nelec:
                # one McWeeny step restores near-idempotency in the
                # *current* overlap metric (D S D = 2 D at convergence)
                DS = gemm(cand, S)
                DSD = gemm(DS, cand)
                D = 1.5 * DSD - 0.5 * gemm(DS, DSD)
                warm_started = True
    if D is None:
        if guess == "gwh":
            # Generalized Wolfsberg-Helmholz: F_ij = K/2 (h_ii + h_jj) S_ij
            hd = np.diag(h)
            F0 = 0.875 * (hd[:, None] + hd[None, :]) * S
            np.fill_diagonal(F0, hd)
            eps, C = eigh_gen(F0, S)
        elif guess == "core":
            eps, C = eigh_gen(h, S)
        else:
            raise ValueError(f"unknown SCF guess {guess!r}")
        D = 2.0 * gemm(C[:, :nocc], C[:, :nocc].T)

    diis = DIIS() if use_diis else None
    e_old = np.inf
    energy = np.inf
    converged = False
    for it in range(1, max_iter + 1):
        F = _fock_ri(h, lay, D) if ri else _fock_conventional(h, ERI, D)
        e_elec = 0.5 * float(np.sum(D * (h + F)))
        energy = e_elec + e_nuc
        if not np.isfinite(energy) or not np.all(np.isfinite(F)):
            raise NumericalDivergenceError(
                f"SCF iteration {it}: non-finite energy/Fock matrix "
                f"(E={energy!r})"
            )
        err = F @ D @ S - S @ D @ F
        err = X.T @ err @ X
        err_norm = float(np.max(np.abs(err)))
        if abs(energy - e_old) < conv_energy and err_norm < conv_orb:
            converged = True
            break
        e_old = energy
        F_iter = F
        if level_shift:
            # Shift the virtual space: F' = F + shift * (S - S D S / 2)
            F_iter = F + level_shift * (S - 0.5 * (S @ D @ S))
        if diis is not None:
            if diis_restart and it % diis_restart == 0:
                diis = DIIS(max_vecs=diis.max_vecs)
            F_iter = diis.update(F_iter, err)
        eps, C = eigh_gen(F_iter, S)
        D_new = 2.0 * gemm(C[:, :nocc], C[:, :nocc].T)
        if damping:
            D_new = (1.0 - damping) * D_new + damping * D
        if not np.all(np.isfinite(D_new)):
            raise NumericalDivergenceError(
                f"SCF iteration {it}: non-finite density matrix"
            )
        D = D_new
    if not converged:
        raise SCFConvergenceError(
            f"SCF not converged in {max_iter} iterations (dE={energy - e_old:.2e})"
        )
    # Canonical orbitals of the converged *unshifted* Fock matrix.  The
    # iteration above may have diagonalized shifted / DIIS-extrapolated
    # matrices; the returned eps/C must come from the bare converged F in
    # every code path (level shift on or off, DIIS on or off) so virtual
    # orbital energies never carry the artificial shift.
    eps, C = eigh_gen(F, S)
    return SCFResult(
        mol=mol,
        basis=bs,
        energy=energy,
        e_nuc=e_nuc,
        C=C,
        eps=eps,
        D=2.0 * gemm(C[:, :nocc], C[:, :nocc].T),
        S=S,
        h=h,
        F=F,
        nocc=nocc,
        converged=converged,
        niter=it,
        method="ri-rhf" if ri else "rhf",
        warm_started=warm_started,
        aux=aux,
        B=B,
        J2c=J2,
        Jih=Jih,
        eri=ERI,
    )
