"""Restricted Hartree-Fock solvers (conventional and RI) and gradients."""

from .diis import DIIS
from .grad import rhf_gradient, rhf_gradient_conventional, rhf_gradient_ri
from .rhf import SCFConvergenceError, SCFResult, build_ri_tensors, rhf

__all__ = [
    "DIIS",
    "SCFConvergenceError",
    "SCFResult",
    "build_ri_tensors",
    "rhf",
    "rhf_gradient",
    "rhf_gradient_conventional",
    "rhf_gradient_ri",
]
