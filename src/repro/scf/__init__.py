"""Restricted Hartree-Fock solvers (conventional and RI) and gradients."""

from ..numerics import NumericalDivergenceError
from .diis import DIIS
from .grad import rhf_gradient, rhf_gradient_conventional, rhf_gradient_ri
from .recovery import DEFAULT_LADDER, RecoveryStage, rhf_with_recovery
from .rhf import SCFConvergenceError, SCFResult, build_ri_tensors, rhf

__all__ = [
    "DEFAULT_LADDER",
    "DIIS",
    "NumericalDivergenceError",
    "RecoveryStage",
    "SCFConvergenceError",
    "SCFResult",
    "build_ri_tensors",
    "rhf",
    "rhf_gradient",
    "rhf_gradient_conventional",
    "rhf_gradient_ri",
    "rhf_with_recovery",
]
