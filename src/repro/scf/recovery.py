"""SCF recovery cascade: escalating retry ladder around the bare loop.

A multi-hour AIMD trajectory dispatches thousands of fragment SCF solves
per replan window; at that volume an occasional pathological geometry
(close contact mid-collision, stretched bond near a cutoff crossing) is
statistically guaranteed.  Aborting the trajectory for one of them is
unacceptable, and so is silently accepting a non-converged density.
Production exascale codes (CP2K, GAMESS) therefore treat convergence
fallback as a first-class subsystem: on failure, re-solve with
progressively more conservative settings until the fragment converges
or the ladder is exhausted.

`rhf_with_recovery` implements that ladder.  Each `RecoveryStage` is a
named set of keyword overrides applied on top of the caller's settings;
the default ladder escalates

    bare -> density damping -> level shift -> DIIS reset + tighter
    damping -> core-guess restart -> raised iteration budget

and the returned `SCFResult.recovery` records the path taken so callers
(and tracer events) can audit exactly how hard each fragment fought.

Warm starts (a cached ``dm0`` density from a previous MD step) get one
extra rung: when the bare warm-started solve fails, the first escalation
is simply to *discard the cached density* and re-solve from the cold
GWH guess — and every later rung also runs cold — so a poisoned cache
entry can cost at most one wasted solve, never wedge a trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..numerics import NumericalDivergenceError
from .rhf import SCFConvergenceError, SCFResult, rhf


@dataclass(frozen=True)
class RecoveryStage:
    """One rung of the escalation ladder.

    ``overrides`` are keyword arguments merged over the caller's `rhf`
    settings.  The special key ``max_iter_scale`` multiplies the
    caller's iteration budget instead of replacing it.
    """

    name: str
    overrides: Mapping[str, object]

    def apply(self, kwargs: dict) -> dict:
        """The caller's kwargs with this stage's overrides folded in."""
        out = dict(kwargs)
        overrides = dict(self.overrides)
        scale = overrides.pop("max_iter_scale", None)
        if scale is not None:
            out["max_iter"] = int(scale) * int(out.get("max_iter", 150))
        out.update(overrides)
        return out


#: The default escalation ladder.  Ordered cheapest-first: damping costs
#: a few extra iterations, a level shift slows convergence toward the
#: gap-opened solution, a DIIS reset discards a possibly-poisoned
#: subspace, a core-guess restart abandons the (possibly pathological)
#: GWH starting point, and the final rung simply buys more iterations
#: with every stabilizer engaged.
DEFAULT_LADDER: tuple[RecoveryStage, ...] = (
    RecoveryStage("damp", {"damping": 0.3}),
    RecoveryStage("level-shift", {"damping": 0.2, "level_shift": 0.5}),
    RecoveryStage(
        "diis-reset",
        {"damping": 0.5, "level_shift": 0.3, "diis_restart": 8},
    ),
    RecoveryStage(
        "core-guess",
        {"damping": 0.3, "level_shift": 0.5, "guess": "core"},
    ),
    RecoveryStage(
        "max-iter",
        {
            "damping": 0.3,
            "level_shift": 0.5,
            "diis_restart": 12,
            "max_iter_scale": 4,
        },
    ),
)


def rhf_with_recovery(
    mol,
    basis="sto-3g",
    ladder: tuple[RecoveryStage, ...] = DEFAULT_LADDER,
    tracer=None,
    **kwargs,
) -> SCFResult:
    """`rhf` wrapped in the escalation ladder.

    The bare solve runs first with the caller's settings.  On
    `SCFConvergenceError` or `NumericalDivergenceError` each ladder
    stage is tried in order; the first success returns its `SCFResult`
    with ``result.recovery`` set to the tuple of stage names attempted
    (ending with the one that succeeded).  A clean first solve returns
    with ``recovery == ()``.

    A warm start (``dm0`` in ``kwargs``) prepends a ``cold-start`` rung
    that drops the cached density and re-solves from the cold guess;
    every subsequent rung also runs without ``dm0``, so escalation never
    re-ingests a density that has already failed once.

    Tracer events: an ``scf.recover`` instant per escalation (carrying
    the stage name and the triggering error) and an ``scf.recovered``
    instant when a fallback stage finally converges.

    Raises:
        SCFConvergenceError: when the whole ladder is exhausted; the
            final error chains from the last stage's failure.
    """
    if kwargs.get("dm0") is not None:
        ladder = (RecoveryStage("cold-start", {"dm0": None}),) + tuple(
            RecoveryStage(s.name, {**dict(s.overrides), "dm0": None})
            for s in ladder
        )
    # every rung re-solves the *same* molecule/basis: share one solve
    # memo so S, the core Hamiltonian, and the RI tensors (plus their
    # hoisted Fock layouts) are built exactly once per cascade instead
    # of once per attempt
    kwargs.setdefault("solve_memo", {})
    try:
        return rhf(mol, basis, **kwargs)
    except (SCFConvergenceError, NumericalDivergenceError) as err:
        last_err: Exception = err

    attempted: list[str] = []
    for stage in ladder:
        attempted.append(stage.name)
        if tracer:
            tracer.instant(
                "scf.recover", cat="scf",
                stage=stage.name, error=repr(last_err),
            )
        try:
            result = rhf(mol, basis, **stage.apply(kwargs))
        except (SCFConvergenceError, NumericalDivergenceError) as err:
            last_err = err
            continue
        result.recovery = tuple(attempted)
        if tracer:
            tracer.instant(
                "scf.recovered", cat="scf",
                stage=stage.name, path=",".join(attempted),
            )
        return result
    raise SCFConvergenceError(
        f"SCF recovery cascade exhausted after {1 + len(ladder)} attempts "
        f"(bare + {', '.join(attempted)}); last error: {last_err!r}"
    ) from last_err
