"""Analytic RHF nuclear gradients: conventional and RI variants.

The RI-HF gradient eliminates four-center integral derivatives entirely
(paper Sec. V-E): all two-electron derivative work reduces to contractions
of coefficient tensors with ``(mu nu|P)^xi`` and ``(P|Q)^xi``. The
coefficients are derived against the *raw* three-center integrals and the
raw metric J (the ``J^{-1}`` formulation), which avoids differentiating
the matrix inverse square root:

    E_J  = 1/2 sum_PQ d_P [J^{-1}]_PQ d_Q,        d_P = sum D (mu nu|P)
    E_K  = -1/4 sum D_ml D_ns (mn|ls)_RI

yielding

    dE_J/d(mn|P)  = D_mn c_P                      c = J^{-1} d
    dE_J/d(P|Q)   = -1/2 c_P c_Q
    dE_K/d(mn|P)  = -1/2 (D Y^P D)_mn             Y^P = J^{-1}-fitted 3c
    dE_K/d(P|Q)   = +1/4 sum (D Y^P D)_mn Y^Q_mn
"""

from __future__ import annotations

import numpy as np

from ..gemm import gemm
from ..integrals import (
    contract_eri2c_deriv,
    contract_eri3c_deriv,
    contract_eri4c_deriv_hf,
    contract_hcore_deriv,
    contract_overlap_deriv,
)
from .rhf import SCFResult


def _energy_weighted_density(res: SCFResult) -> np.ndarray:
    """W_mn = 2 sum_i eps_i C_mi C_ni (occupation-2 convention)."""
    Co = res.C_occ
    eps_o = res.eps[: res.nocc]
    return 2.0 * gemm(Co * eps_o[None, :], Co.T)


def rhf_gradient_conventional(
    res: SCFResult, workspace=None, int_screen: float | None = None
) -> np.ndarray:
    """Analytic gradient of a conventional (four-center) RHF energy.

    Returns ``(natoms, 3)`` in Hartree/Bohr. ``workspace`` serves cached
    pair tables plus the Schwarz/Dmax screening tables. ``int_screen``
    overrides the four-center driver's default threshold; pass ``0.0``
    for the exact (unscreened) path, which also skips the Schwarz/Dmax
    table builds entirely.
    """
    mol = res.mol
    natoms = mol.natoms
    g = mol.nuclear_repulsion_gradient()
    g += contract_hcore_deriv(res.basis, mol, res.D, workspace)
    screen = 1.0e-11 if int_screen is None else float(int_screen)
    g += contract_eri4c_deriv_hf(
        res.basis, res.D, natoms, screen=screen, workspace=workspace
    )
    W = _energy_weighted_density(res)
    g -= contract_overlap_deriv(res.basis, W, workspace)
    return g


def ri_twoelectron_coefficients(
    res: SCFResult,
) -> tuple[np.ndarray, np.ndarray]:
    """HF two-electron derivative coefficients (Z3c, zeta) for the RI path.

    Z3c has shape ``(nbf, nbf, naux)`` and contracts with
    ``(mu nu|P)^xi``; zeta has shape ``(naux, naux)`` and contracts with
    ``(P|Q)^xi``.
    """
    if res.B is None or res.Jih is None:
        raise ValueError("SCF result does not carry RI tensors (run with ri=True)")
    B, Jih, D = res.B, res.Jih, res.D
    n, _, naux = B.shape
    # Fitted quantities in the J^{-1} formulation: Y = T3 J^{-1} = B Jih.
    Y = gemm(B.reshape(n * n, naux), Jih).reshape(n, n, naux)
    # Coulomb: d_P = sum D T3; c = J^{-1} d  ==  Y^T D.
    c = gemm(Y.reshape(n * n, naux).T, D.reshape(n * n, 1)).ravel()
    # Exchange intermediate: (D Y^P D)_mn for every P.
    DY = np.einsum("ml,lsP->msP", D, Y, optimize=True)
    DYD = np.einsum("msP,ns->mnP", DY, D, optimize=True)
    Z3c = D[:, :, None] * c[None, None, :] - 0.5 * DYD
    zeta = -0.5 * np.outer(c, c) + 0.25 * np.einsum(
        "mnP,mnQ->PQ", DYD, Y, optimize=True
    )
    return Z3c, zeta


def rhf_gradient_ri(
    res: SCFResult, int_screen: float = 0.0, workspace=None
) -> np.ndarray:
    """Analytic gradient of an RI-HF energy (no four-center derivatives).

    ``int_screen``/``workspace`` enable Schwarz screening and cross-call
    caching in the three-center derivative driver.
    """
    mol = res.mol
    natoms = mol.natoms
    g = mol.nuclear_repulsion_gradient()
    g += contract_hcore_deriv(res.basis, mol, res.D, workspace)
    Z3c, zeta = ri_twoelectron_coefficients(res)
    g += contract_eri3c_deriv(
        res.basis, res.aux, Z3c, natoms,
        screen=int_screen, workspace=workspace,
    )
    g += contract_eri2c_deriv(res.aux, zeta, natoms, workspace)
    W = _energy_weighted_density(res)
    g -= contract_overlap_deriv(res.basis, W, workspace)
    return g


def rhf_gradient(
    res: SCFResult, int_screen: float | None = None, workspace=None
) -> np.ndarray:
    """Dispatch on how the SCF was solved.

    ``int_screen=None`` keeps each path's historical default: unscreened
    for RI (the 3c driver screens only on request) and ``1e-11`` for the
    conventional four-center driver. An explicit value is forwarded to
    both.
    """
    if res.method == "ri-rhf":
        return rhf_gradient_ri(
            res,
            int_screen=0.0 if int_screen is None else int_screen,
            workspace=workspace,
        )
    return rhf_gradient_conventional(
        res, workspace=workspace, int_screen=int_screen
    )
