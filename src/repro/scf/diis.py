"""Pulay DIIS (direct inversion in the iterative subspace) accelerator."""

from __future__ import annotations

import numpy as np


class DIIS:
    """Classic commutator-DIIS for SCF convergence.

    Stores up to ``max_vecs`` (Fock, error) pairs where the error is the
    orbital-gradient commutator ``F D S - S D F`` expressed in the
    orthonormal basis, and extrapolates the next Fock matrix.
    """

    def __init__(self, max_vecs: int = 8) -> None:
        self.max_vecs = max_vecs
        self._focks: list[np.ndarray] = []
        self._errors: list[np.ndarray] = []

    def update(self, F: np.ndarray, err: np.ndarray) -> np.ndarray:
        """Add a new pair and return the extrapolated Fock matrix."""
        self._focks.append(F.copy())
        self._errors.append(err.copy())
        if len(self._focks) > self.max_vecs:
            self._focks.pop(0)
            self._errors.pop(0)
        while True:
            n = len(self._focks)
            if n == 1:
                return F
            Bmat = np.empty((n + 1, n + 1))
            Bmat[-1, :] = -1.0
            Bmat[:, -1] = -1.0
            Bmat[-1, -1] = 0.0
            for i in range(n):
                for j in range(i, n):
                    v = float(np.vdot(self._errors[i], self._errors[j]))
                    Bmat[i, j] = v
                    Bmat[j, i] = v
            rhs = np.zeros(n + 1)
            rhs[-1] = -1.0
            try:
                coef = np.linalg.solve(Bmat, rhs)[:n]
            except np.linalg.LinAlgError:
                # Ill-conditioned subspace: drop the oldest pair and retry
                # with the smaller subspace. Must not re-append the newest
                # pair — a stalled SCF produces duplicate error vectors,
                # and re-appending keeps B singular at every depth
                # (formerly an unbounded recursion). With one pair left
                # the extrapolation degenerates to the bare F.
                self._focks.pop(0)
                self._errors.pop(0)
                continue
            out = np.zeros_like(F)
            for c, Fi in zip(coef, self._focks):
                out += c * Fi
            return out

    @property
    def nvecs(self) -> int:
        """Number of stored (Fock, error) pairs."""
        return len(self._focks)
