"""Paracetamol (acetaminophen, C8H9NO2) molecule and lattice clusters.

The molecule (benzene ring + para OH + acetamide group) is constructed
analytically from standard bond parameters. The lattice is an idealized
monoclinic-like packing with the experimental form-I density scale
(~1.26 g/cm^3 corresponds to about 4 molecules per ~770 A^3 cell); as
with urea (see DESIGN.md), packing realism only needs to reproduce the
molecule-count-vs-volume relation that drives polymer enumeration.
"""

from __future__ import annotations

import numpy as np

from ..chem.geometry import rotation_matrix
from ..chem.molecule import Molecule
from ..constants import BOHR_PER_ANGSTROM
from .lattice import assemble, replicate, sphere_of_molecules

# Idealized cell (Angstrom): 4 molecules in a 12.8 x 12.8 x 7.6 box
# (ring planes stacked along z, alternating in-plane orientation).
CELL = np.diag([12.8, 12.8, 7.6])
ELECTRONS_PER_MOLECULE = 80  # C8H9NO2


def paracetamol_molecule() -> Molecule:
    """A single paracetamol molecule, ring in the xy plane."""
    d_cc_ring = 1.39
    d_ch = 1.08
    d_co = 1.36  # phenol C-O
    d_oh = 0.96
    d_cn = 1.40  # ring C-N
    d_nh = 1.01
    d_namide = 1.35  # N-C(=O)
    d_c_o = 1.23
    d_c_c = 1.50  # C-CH3
    symbols: list[str] = []
    coords: list[np.ndarray] = []
    # benzene ring (C0..C5), C0 at +x
    ring = []
    for k in range(6):
        ang = np.pi / 3 * k
        p = d_cc_ring * np.array([np.cos(ang), np.sin(ang), 0.0])
        ring.append(p)
        symbols.append("C")
        coords.append(p)
    center = np.zeros(3)
    # ring hydrogens on C1, C2, C4, C5 (C0 gets OH, C3 gets N)
    for k in (1, 2, 4, 5):
        out = (ring[k] - center) / np.linalg.norm(ring[k] - center)
        symbols.append("H")
        coords.append(ring[k] + d_ch * out)
    # phenol O-H on C0
    out0 = (ring[0] - center) / np.linalg.norm(ring[0])
    O1 = ring[0] + d_co * out0
    symbols.append("O")
    coords.append(O1)
    symbols.append("H")
    coords.append(O1 + d_oh * _rot_xy(out0, 60.0))
    # amide on C3: N, H, C(=O), CH3
    out3 = (ring[3] - center) / np.linalg.norm(ring[3])
    N = ring[3] + d_cn * out3
    symbols.append("N")
    coords.append(N)
    symbols.append("H")
    coords.append(N + d_nh * _rot_xy(out3, 115.0))
    Cam = N + d_namide * _rot_xy(out3, -50.0)
    symbols.append("C")
    coords.append(Cam)
    symbols.append("O")
    coords.append(Cam + d_c_o * _rot_xy(out3, 15.0))
    Cme = Cam + d_c_c * _rot_xy(out3, -115.0)
    symbols.append("C")
    coords.append(Cme)
    # methyl hydrogens (tetrahedral-ish)
    axis = _rot_xy(out3, -115.0)
    perp1 = np.array([0.0, 0.0, 1.0])
    perp2 = np.cross(axis, perp1)
    for k in range(3):
        ang = 2 * np.pi * k / 3
        direction = 0.35 * axis + 0.94 * (np.cos(ang) * perp1 + np.sin(ang) * perp2)
        symbols.append("H")
        coords.append(Cme + 1.09 * direction / np.linalg.norm(direction))
    return Molecule.from_angstrom(symbols, np.array(coords))


def _rot_xy(v: np.ndarray, degrees: float) -> np.ndarray:
    R = rotation_matrix(np.array([0.0, 0.0, 1.0]), np.deg2rad(degrees))
    return R @ v


def paracetamol_lattice_molecules(na: int, nb: int, nc: int) -> list[Molecule]:
    """4-molecule idealized cell replicated over a supercell."""
    m = paracetamol_molecule()
    m = m.translated(-m.centroid())  # center so placements are symmetric
    motifs = []
    placements = [
        ((0.25, 0.25, 0.25), 0.0),
        ((0.75, 0.75, 0.25), np.pi / 2),
        ((0.25, 0.75, 0.75), np.pi),
        ((0.75, 0.25, 0.75), -np.pi / 2),
    ]
    for frac, ang in placements:
        R = rotation_matrix(np.array([0.0, 0.0, 1.0]), ang)
        mm = m.with_coords(m.coords @ R.T)
        shift = (np.array(frac) @ CELL) * BOHR_PER_ANGSTROM
        motifs.append(mm.translated(shift))
    return replicate(motifs, CELL, na, nb, nc)


def paracetamol_sphere(radius_angstrom: float) -> Molecule:
    """Spherical lattice section (the paper's 80-molecule, 36 A-diameter
    strong-scaling workload uses radius 18 A)."""
    n = int(np.ceil(2 * radius_angstrom / CELL.diagonal().min())) + 2
    mols = paracetamol_lattice_molecules(n, n, n)
    return assemble(sphere_of_molecules(mols, radius_angstrom))


def paracetamol_cluster(nmol: int) -> Molecule:
    """Cluster of exactly ``nmol`` molecules (closest to the centroid)."""
    n = int(np.ceil((nmol / 4.0) ** (1 / 3))) + 2
    mols = paracetamol_lattice_molecules(n, n, n)
    cents = np.array([m.centroid() for m in mols])
    center = cents.mean(axis=0)
    order = np.argsort(np.linalg.norm(cents - center, axis=1))
    return assemble([mols[i] for i in order[:nmol]])
