"""Generic crystal-lattice replication and spherical cutting."""

from __future__ import annotations

import numpy as np

from ..chem.molecule import Molecule
from ..constants import BOHR_PER_ANGSTROM


def replicate(
    motifs: list[Molecule],
    lattice_angstrom: np.ndarray,
    na: int,
    nb: int,
    nc: int,
) -> list[Molecule]:
    """Replicate motif molecules over an ``na x nb x nc`` supercell.

    Args:
        motifs: molecules positioned inside the home cell (Bohr coords).
        lattice_angstrom: 3x3 row-vector lattice matrix in Angstrom.
    Returns:
        One `Molecule` per motif copy.
    """
    lat = np.asarray(lattice_angstrom, dtype=float) * BOHR_PER_ANGSTROM
    out = []
    for ia in range(na):
        for ib in range(nb):
            for ic in range(nc):
                shift = ia * lat[0] + ib * lat[1] + ic * lat[2]
                for m in motifs:
                    out.append(m.translated(shift))
    return out


def sphere_of_molecules(
    molecules: list[Molecule], radius_angstrom: float
) -> list[Molecule]:
    """Keep whole molecules whose centroid lies within the radius of the
    overall centroid (the paper's 'spherical sections of crystal
    lattices')."""
    cents = np.array([m.centroid() for m in molecules])
    center = cents.mean(axis=0)
    r = radius_angstrom * BOHR_PER_ANGSTROM
    keep = np.linalg.norm(cents - center, axis=1) <= r
    return [m for m, k in zip(molecules, keep) if k]


def assemble(molecules: list[Molecule]) -> Molecule:
    """Union of molecules as one (non-bonded) cluster."""
    return Molecule.concatenate(molecules)
