"""Water molecules and clusters (cheap, heavily used in tests)."""

from __future__ import annotations

import numpy as np

from ..chem.geometry import rotated
from ..chem.molecule import Molecule
from ..constants import BOHR_PER_ANGSTROM

#: experimental-ish monomer geometry (Angstrom)
_WATER = (
    ("O", (0.0, 0.0, 0.1173)),
    ("H", (0.0, 0.7572, -0.4692)),
    ("H", (0.0, -0.7572, -0.4692)),
)


def water_monomer() -> Molecule:
    """A single water molecule at a standard geometry."""
    return Molecule.from_angstrom(
        [s for s, _ in _WATER], np.array([c for _, c in _WATER])
    )


def water_cluster(n: int, spacing_angstrom: float = 3.1, seed: int = 0) -> Molecule:
    """A cluster of ``n`` waters on a jittered cubic grid with random
    orientations — a stand-in for liquid-like clusters (the paper's
    reference AIMD benchmark systems are water clusters of this kind)."""
    rng = np.random.default_rng(seed)
    k = int(np.ceil(n ** (1.0 / 3.0)))
    mono = water_monomer()
    mols = []
    count = 0
    for i in range(k):
        for j in range(k):
            for l in range(k):
                if count >= n:
                    break
                shift = (
                    np.array([i, j, l], dtype=float) * spacing_angstrom
                    + rng.uniform(-0.15, 0.15, 3)
                ) * BOHR_PER_ANGSTROM
                axis = rng.standard_normal(3)
                angle = rng.uniform(0, 2 * np.pi)
                mols.append(rotated(mono, axis, angle).translated(shift))
                count += 1
    return Molecule.concatenate(mols)


def water_dimer(separation_angstrom: float = 2.97) -> Molecule:
    """Hydrogen-bonded-ish water dimer at a given O-O separation."""
    m1 = water_monomer()
    m2 = water_monomer().translated(
        np.array([separation_angstrom, 0.0, 0.0]) * BOHR_PER_ANGSTROM
    )
    return Molecule.concatenate([m1, m2])
