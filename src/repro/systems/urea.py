"""Urea molecule and crystal-lattice clusters (the paper's headline
benchmark system: spherical urea-lattice sections up to 63,854 molecules
/ 2,043,328 electrons).

The molecular geometry is constructed analytically from standard bond
parameters (planar urea: C=O 1.26 A, C-N 1.38 A, N-H 1.01 A, N-C-N
116 deg). The crystal packing is an *idealized* version of the real
tetragonal P-42_1m structure: the true cell constants (a = 5.565 A,
c = 4.684 A, 2 molecules/cell) with molecules along the c axis in
alternating orientation. See DESIGN.md for why this substitution
preserves the experiments (it reproduces the molecule count / volume
relationship, which drives polymer counts at given cutoffs).
"""

from __future__ import annotations

import numpy as np

from ..chem.geometry import rotation_matrix
from ..chem.molecule import Molecule
from ..constants import BOHR_PER_ANGSTROM
from .lattice import assemble, replicate, sphere_of_molecules

A_CELL = 5.565  # Angstrom
C_CELL = 4.684  # Angstrom
MOLECULES_PER_CELL = 2
ELECTRONS_PER_MOLECULE = 32  # CH4N2O


def urea_molecule() -> Molecule:
    """A single planar urea molecule, C at the origin, C=O along +z."""
    d_co, d_cn, d_nh = 1.26, 1.38, 1.01
    ang_ncn = np.deg2rad(116.0)
    half = ang_ncn / 2.0
    symbols = ["C", "O", "N", "N"]
    coords = [
        [0.0, 0.0, 0.0],
        [0.0, 0.0, d_co],
        [d_cn * np.sin(half), 0.0, -d_cn * np.cos(half)],
        [-d_cn * np.sin(half), 0.0, -d_cn * np.cos(half)],
    ]
    # Two in-plane hydrogens per nitrogen at ~120 deg around N.
    for sgn in (1.0, -1.0):
        npos = np.array([sgn * d_cn * np.sin(half), 0.0, -d_cn * np.cos(half)])
        to_c = -npos / np.linalg.norm(npos)
        # rotate the N->C direction by +/-120 deg in the molecular plane
        for ang in (np.deg2rad(120.0), -np.deg2rad(120.0)):
            R = rotation_matrix(np.array([0.0, 1.0, 0.0]), ang)
            h = npos + d_nh * (R @ to_c)
            symbols.append("H")
            coords.append(h.tolist())
    return Molecule.from_angstrom(symbols, np.array(coords))


def urea_lattice_molecules(na: int, nb: int, nc: int) -> list[Molecule]:
    """Urea molecules of an ``na x nb x nc`` supercell (idealized packing)."""
    lat = np.diag([A_CELL, A_CELL, C_CELL])
    m = urea_molecule()
    shift1 = np.array([0.25 * A_CELL, 0.25 * A_CELL, 0.0]) * BOHR_PER_ANGSTROM
    shift2 = np.array([0.75 * A_CELL, 0.75 * A_CELL, 0.5 * C_CELL]) * BOHR_PER_ANGSTROM
    # Orientations chosen so the closest intermolecular H...H contact is
    # ~2.0 A (realistic van der Waals packing): molecule 1 rotated 45 deg
    # about c, molecule 2 flipped and rotated 135 deg (the -4 axis motif).
    R1 = rotation_matrix(np.array([0.0, 0.0, 1.0]), np.pi / 4)
    m1 = m.with_coords(m.coords @ R1.T).translated(shift1)
    R2 = rotation_matrix(np.array([0.0, 0.0, 1.0]), 3 * np.pi / 4)
    flipped = m.with_coords(m.coords @ rotation_matrix(np.array([1.0, 0, 0]), np.pi).T)
    m2 = flipped.with_coords(flipped.coords @ R2.T).translated(shift2)
    return replicate([m1, m2], lat, na, nb, nc)


def urea_sphere(radius_angstrom: float) -> Molecule:
    """Spherical section of the urea lattice (paper Sec. VI-B)."""
    n = int(np.ceil(2 * radius_angstrom / min(A_CELL, C_CELL))) + 2
    mols = urea_lattice_molecules(n, n, n)
    return assemble(sphere_of_molecules(mols, radius_angstrom))


def urea_sphere_molecule_count(radius_angstrom: float) -> int:
    """Number of molecules a spherical cut would contain (no geometry
    build — used by the cluster simulator for exascale projections)."""
    density = MOLECULES_PER_CELL / (A_CELL * A_CELL * C_CELL)  # per A^3
    return int(round(density * 4.0 / 3.0 * np.pi * radius_angstrom**3))


def radius_for_molecule_count(nmol: int) -> float:
    """Inverse of `urea_sphere_molecule_count` (Angstrom)."""
    density = MOLECULES_PER_CELL / (A_CELL * A_CELL * C_CELL)
    return float((3.0 * nmol / (4.0 * np.pi * density)) ** (1.0 / 3.0))


def urea_cluster(nmol: int) -> Molecule:
    """Cluster of approximately ``nmol`` urea molecules (spherical cut)."""
    r = radius_for_molecule_count(nmol)
    # grow the radius until the count is reached
    for _ in range(40):
        n = int(np.ceil(2 * r / min(A_CELL, C_CELL))) + 2
        mols = sphere_of_molecules(urea_lattice_molecules(n, n, n), r)
        if len(mols) >= nmol:
            return assemble(mols[:nmol])
        r *= 1.06
    raise RuntimeError(f"could not assemble {nmol} urea molecules")
