"""Polyglycine chains Gly_n (the Table III / Fig. 3 benchmark series).

Chains are built residue-by-residue in an idealized extended (all-trans,
planar zigzag) conformation with standard bond parameters; substituent
positions (carbonyl O, amide/alpha hydrogens) are placed along local
bisector frames so the covalent-radius bond detector recovers exactly
the intended peptide connectivity. The point of the series is the
*scaling* of HF+MP2 gradient cost with chain length and the
amino-acid-per-monomer fragmentation (paper Table III), not a
minimum-energy structure.
"""

from __future__ import annotations

import numpy as np

from ..chem.molecule import Molecule
from ..frag.monomer import FragmentedSystem

# Standard bond lengths (Angstrom)
_D = {
    "N-CA": 1.46,
    "CA-C": 1.52,
    "C-N": 1.33,
    "C=O": 1.23,
    "N-H": 1.01,
    "CA-H": 1.09,
    "C-OH": 1.34,
    "O-H": 0.96,
}
_ZIG = np.deg2rad(30.0)  # zigzag half-angle of the backbone


def _unit(v) -> np.ndarray:
    v = np.asarray(v, dtype=float)
    return v / np.linalg.norm(v)


def _bisector_away(center: np.ndarray, n1: np.ndarray, n2: np.ndarray) -> np.ndarray:
    """Unit vector at ``center`` pointing away from both neighbors."""
    return _unit(-(_unit(n1 - center) + _unit(n2 - center)))


def glycine_chain(n: int) -> Molecule:
    """H-(NH-CH2-CO)_n-OH with an idealized extended backbone.

    Atom order per residue: ``N, H(N), CA, HA1, HA2, C, O``; then the
    C-terminal ``O, H`` and the extra N-terminal ``H`` appended last.
    """
    if n < 1:
        raise ValueError("need at least one residue")

    def step(up: bool, length: float) -> np.ndarray:
        s = 1.0 if up else -1.0
        return length * np.array([np.cos(_ZIG), s * np.sin(_ZIG), 0.0])

    # First pass: backbone heavy-atom positions N, CA, C per residue plus
    # the virtual next-N (used for terminal OH and local frames).
    bb: list[dict[str, np.ndarray]] = []
    pos = np.zeros(3)
    up = True
    for _res in range(n):
        Npos = pos.copy()
        CApos = Npos + step(up, _D["N-CA"])
        up = not up
        Cpos = CApos + step(up, _D["CA-C"])
        up = not up
        next_N = Cpos + step(up, _D["C-N"])
        up = not up
        bb.append({"N": Npos, "CA": CApos, "C": Cpos, "nextN": next_N})
        pos = next_N

    symbols: list[str] = []
    coords: list[np.ndarray] = []
    zhat = np.array([0.0, 0.0, 1.0])
    for res in range(n):
        N, CA, C, nextN = (bb[res][k] for k in ("N", "CA", "C", "nextN"))
        prev_anchor = bb[res - 1]["C"] if res > 0 else N - np.array([1.0, 0.0, 0.0])
        symbols.append("N")
        coords.append(N)
        symbols.append("H")
        coords.append(N + _D["N-H"] * _bisector_away(N, prev_anchor, CA))
        symbols.append("C")
        coords.append(CA)
        bis = _bisector_away(CA, N, C)
        for sz in (1.0, -1.0):
            symbols.append("H")
            coords.append(CA + _D["CA-H"] * _unit(0.5 * bis + sz * zhat))
        symbols.append("C")
        coords.append(C)
        symbols.append("O")
        coords.append(C + _D["C=O"] * _bisector_away(C, CA, nextN))
    # C-terminal hydroxyl at the virtual next-N position (C-OH bond length)
    C_last = bb[-1]["C"]
    o_dir = _unit(bb[-1]["nextN"] - C_last)
    Opos = C_last + _D["C-OH"] * o_dir
    symbols.append("O")
    coords.append(Opos)
    symbols.append("H")
    coords.append(Opos + _D["O-H"] * _unit(o_dir + np.array([0.0, 0.0, 0.9])))
    # N-terminal second hydrogen
    N0, CA0 = bb[0]["N"], bb[0]["CA"]
    h_dir = _unit(_bisector_away(N0, N0 - np.array([1.0, 0, 0]), CA0) * 0.4 - zhat)
    symbols.append("H")
    coords.append(N0 + _D["N-H"] * h_dir)
    return Molecule.from_angstrom(symbols, np.array(coords))


def glycine_residue_atoms(n: int) -> list[list[int]]:
    """Atom-index lists of the n amino-acid monomers of `glycine_chain`.

    Terminal atoms (C-terminal OH, extra N-terminal H) are assigned to
    the last/first residue respectively.
    """
    lists = []
    per = 7  # N, H, CA, HA1, HA2, C, O
    for res in range(n):
        lists.append(list(range(res * per, (res + 1) * per)))
    lists[-1].extend([n * per, n * per + 1])
    lists[0].append(n * per + 2)
    return lists


def glycine_fragmented(n: int) -> FragmentedSystem:
    """Gly_n fragmented into one monomer per amino acid with H-caps
    across the peptide bonds (exactly the paper's Table III setup)."""
    mol = glycine_chain(n)
    return FragmentedSystem.by_atom_lists(mol, glycine_residue_atoms(n))
