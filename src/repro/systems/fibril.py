"""Synthetic beta-strand fibril assemblies.

Stand-ins for the paper's protein fibrils (PrP 6PQ5: 360 atoms, 36
monomers of 7-14 atoms; Abeta 2BEG 4-strand variant: 1,496 atoms,
monomers of 7-16 atoms). PDB access is unavailable offline, so we
assemble polyglycine beta-strands stacked at the canonical ~4.8 A
inter-strand spacing of amyloid fibrils and fragment per residue,
reproducing the monomer-size statistics and spatial arrangement that the
energy-conservation and async-latency experiments depend on (see
DESIGN.md substitution table).
"""

from __future__ import annotations

import numpy as np

from ..chem.molecule import Molecule
from ..constants import BOHR_PER_ANGSTROM
from ..frag.monomer import FragmentedSystem
from .glycine import glycine_chain, glycine_residue_atoms

STRAND_SPACING_ANGSTROM = 4.8  # canonical amyloid beta-sheet stacking


def fibril(
    nstrands: int, residues_per_strand: int, spacing_angstrom: float = STRAND_SPACING_ANGSTROM
) -> Molecule:
    """Stacked polyglycine strands forming an idealized fibril."""
    strand = glycine_chain(residues_per_strand)
    mols = []
    for s in range(nstrands):
        shift = np.array([0.0, 0.0, s * spacing_angstrom]) * BOHR_PER_ANGSTROM
        mols.append(strand.translated(shift))
    return Molecule.concatenate(mols)


def fibril_fragmented(
    nstrands: int,
    residues_per_strand: int,
    spacing_angstrom: float = STRAND_SPACING_ANGSTROM,
    heterogeneous: bool = False,
) -> FragmentedSystem:
    """Fibril fragmented per residue (7-16 atoms per monomer, matching the
    paper's monomer statistics for 6PQ5/2BEG).

    ``heterogeneous=True`` merges every third residue pair into one
    monomer, reproducing the mixed monomer-size distribution of real
    protein sequences (the paper's 7-16 atoms/monomer spread) — the
    heterogeneity that drives per-step load imbalance.
    """
    mol = fibril(nstrands, residues_per_strand, spacing_angstrom)
    per_strand = glycine_chain(residues_per_strand).natoms
    lists = []
    base = glycine_residue_atoms(residues_per_strand)
    for s in range(nstrands):
        off = s * per_strand
        strand_lists = [[a + off for a in res_atoms] for res_atoms in base]
        if heterogeneous:
            merged = []
            i = 0
            toggle = 0
            while i < len(strand_lists):
                if toggle % 3 == 2 and i + 1 < len(strand_lists):
                    merged.append(sorted(strand_lists[i] + strand_lists[i + 1]))
                    i += 2
                else:
                    merged.append(strand_lists[i])
                    i += 1
                toggle += 1
            strand_lists = merged
        lists.extend(strand_lists)
    return FragmentedSystem.by_atom_lists(mol, lists)


def prp_like_fibril() -> FragmentedSystem:
    """A 6PQ5-scale stand-in: 36 monomers, ~360 atoms, 7-16 atoms each."""
    return fibril_fragmented(nstrands=6, residues_per_strand=6)


def abeta_like_fibril(nstrands: int = 4) -> FragmentedSystem:
    """A 2BEG-4-strand-scale stand-in (~1.5k atoms, 7-16 atoms/monomer,
    heterogeneous monomer sizes as in the real sequence)."""
    return fibril_fragmented(
        nstrands=nstrands, residues_per_strand=53, heterogeneous=True
    )
