"""Benchmark molecular systems used throughout the paper's evaluation."""

from .fibril import abeta_like_fibril, fibril, fibril_fragmented, prp_like_fibril
from .glycine import glycine_chain, glycine_fragmented, glycine_residue_atoms
from .lattice import assemble, replicate, sphere_of_molecules
from .paracetamol import (
    paracetamol_cluster,
    paracetamol_molecule,
    paracetamol_sphere,
)
from .urea import (
    radius_for_molecule_count,
    urea_cluster,
    urea_molecule,
    urea_sphere,
    urea_sphere_molecule_count,
)
from .water import water_cluster, water_dimer, water_monomer

__all__ = [
    "abeta_like_fibril",
    "assemble",
    "fibril",
    "fibril_fragmented",
    "glycine_chain",
    "glycine_fragmented",
    "glycine_residue_atoms",
    "paracetamol_cluster",
    "paracetamol_molecule",
    "paracetamol_sphere",
    "prp_like_fibril",
    "radius_for_molecule_count",
    "replicate",
    "sphere_of_molecules",
    "urea_cluster",
    "urea_molecule",
    "urea_sphere",
    "urea_sphere_molecule_count",
    "water_cluster",
    "water_dimer",
    "water_monomer",
]
