"""Harmonic vibrational analysis (seminumerical Hessian).

The Hessian is built by central finite differences of the *analytic*
gradient — the standard approach when only first derivatives are
implemented — then mass-weighted and diagonalized for harmonic
frequencies and normal modes. Rigid translations (and rotations, at a
stationary geometry) appear as near-zero modes, which the tests use as
an end-to-end check of the gradient engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .chem.molecule import Molecule

#: conversion: sqrt(Hartree / (Bohr^2 * m_e)) -> cm^-1
_AU_TO_CM1 = 219474.631363 / (2.0 * np.pi) * np.sqrt(1.0) / 5140.48727797 * (
    2.0 * np.pi
)
# simpler: omega_au * 219474.63 gives cm^-1 when omega in sqrt(Eh/(me a0^2))
_HARTREE_TO_CM1 = 219474.631363


@dataclass
class VibrationalAnalysis:
    """Harmonic frequencies and normal modes."""

    frequencies_cm1: np.ndarray  # signed: imaginary modes negative
    modes: np.ndarray  # (nmodes, natoms, 3), mass-weighted, orthonormal
    hessian: np.ndarray  # (3N, 3N) Cartesian, Ha/Bohr^2

    def n_imaginary(self, threshold_cm1: float = 30.0) -> int:
        """Count of imaginary (negative) modes beyond the threshold."""
        return int(np.sum(self.frequencies_cm1 < -threshold_cm1))

    def n_zero_modes(self, threshold_cm1: float = 30.0) -> int:
        """Count of near-zero modes (translations/rotations)."""
        return int(np.sum(np.abs(self.frequencies_cm1) < threshold_cm1))


def numerical_hessian(
    mol: Molecule, calculator, step_bohr: float = 5.0e-3
) -> np.ndarray:
    """Central-difference Hessian from analytic gradients, symmetrized."""
    n = mol.natoms
    H = np.zeros((3 * n, 3 * n))
    for a in range(n):
        for x in range(3):
            cp = mol.coords.copy()
            cp[a, x] += step_bohr
            cm = mol.coords.copy()
            cm[a, x] -= step_bohr
            _, gp = calculator.energy_gradient(mol.with_coords(cp))
            _, gm = calculator.energy_gradient(mol.with_coords(cm))
            H[3 * a + x] = ((gp - gm) / (2.0 * step_bohr)).ravel()
    return 0.5 * (H + H.T)


def harmonic_analysis(
    mol: Molecule, calculator, step_bohr: float = 5.0e-3
) -> VibrationalAnalysis:
    """Mass-weighted normal-mode analysis at the current geometry."""
    H = numerical_hessian(mol, calculator, step_bohr=step_bohr)
    m = np.repeat(mol.masses_au, 3)
    Hmw = H / np.sqrt(np.outer(m, m))
    w2, V = np.linalg.eigh(Hmw)
    # frequencies in cm^-1; negative eigenvalues -> imaginary (signed -)
    freqs = np.sign(w2) * np.sqrt(np.abs(w2)) * _HARTREE_TO_CM1
    n = mol.natoms
    modes = V.T.reshape(-1, n, 3)
    return VibrationalAnalysis(frequencies_cm1=freqs, modes=modes, hessian=H)


def zero_point_energy(analysis: VibrationalAnalysis) -> float:
    """Harmonic ZPE (Hartree) from the real vibrational modes."""
    freqs = analysis.frequencies_cm1
    vib = freqs[freqs > 30.0]
    return float(0.5 * np.sum(vib) / _HARTREE_TO_CM1)
