"""Process-level injection hooks driven by a `FaultPlan`.

`FaultPlanCalculator` is the task-site hook: it wraps any calculator
(surrogate or QM), consults the plan on every evaluation, and either
misbehaves in the scheduled way or delegates to the wrapped calculator.
It generalizes `repro.md.drivers.FaultInjectingCalculator` (which keeps
its simpler single-mode contract for unit tests): one wrapper, many
typed faults, targeted by step / fragment key / atom count instead of a
single natoms filter.

`corrupt_checkpoint` is the checkpoint-site hook: it damages a
just-written checkpoint file the way real storage does — a torn
(truncated) write or a flipped bit — at a seed-determined location, so
the rotation/fallback machinery in `repro.md.checkpoint` can be
soak-tested reproducibly.
"""

from __future__ import annotations

import os
import time
from typing import ClassVar

from .plan import CKPT_FAULT_KINDS, FaultPlan, FaultSpec, _u64


class InjectedFault(RuntimeError):
    """A scheduled transient fault from a `FaultPlan` (retryable)."""


class FaultPlanCalculator:
    """Wrap a calculator with plan-scheduled fault injection.

    The drivers pass ``attempt`` and ``step`` through (advertised by the
    ``accepts_attempt`` / ``accepts_step`` class flags), so the plan can
    target "the dimer (1, 2) at step 3, first two attempts".  Every
    other attribute access — ``guess_cache``, ``tracer``, ``workspace``,
    statistics — is delegated to the wrapped calculator, so the drivers'
    warm-start and tracing attachment protocols see the inner
    calculator's state, not the wrapper's.

    The wrapper is pickled to worker processes with its plan; decisions
    are pure functions of the plan seed and the event coordinates, so
    every worker's copy agrees with the parent's (see
    `repro.faults.plan`).
    """

    accepts_attempt: ClassVar[bool] = True
    accepts_step: ClassVar[bool] = True

    _OWN = ("inner", "plan")

    def __init__(self, inner, plan: FaultPlan):
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "plan", plan)

    def __getattr__(self, name):
        # only reached when normal lookup fails (e.g. mid-unpickle);
        # guard the own-slots so a missing 'inner' can't recurse
        if name in FaultPlanCalculator._OWN:
            raise AttributeError(name)
        return getattr(self.inner, name)

    def __setattr__(self, name, value):
        # drivers attach caches/tracers onto "the calculator"; route
        # those onto the wrapped instance where the solvers look
        if name in FaultPlanCalculator._OWN:
            object.__setattr__(self, name, value)
        else:
            setattr(self.inner, name, value)

    def energy_gradient(self, mol, attempt: int = 0, step: int = 0):
        key = getattr(mol, "frag_key", None)
        natoms = getattr(mol, "natoms", None)
        spec = self.plan.decide(
            "task", step=step, key=key, natoms=natoms, attempt=attempt
        )
        if spec is not None:
            return self._inject(spec, mol, attempt, step)
        return self.inner.energy_gradient(mol)

    def _inject(self, spec: FaultSpec, mol, attempt: int, step: int):
        where = (
            f"step {step}, fragment {getattr(mol, 'frag_key', None)} "
            f"({getattr(mol, 'natoms', '?')} atoms), attempt {attempt}"
        )
        if spec.kind == "crash":
            os._exit(13)
        if spec.kind == "hang":
            time.sleep(spec.hang_s)
            raise InjectedFault(f"planned hang elapsed: {where}")
        if spec.kind == "scf_fail":
            from ..scf.rhf import SCFConvergenceError

            raise SCFConvergenceError(f"planned SCF non-convergence: {where}")
        if spec.kind == "nan_forces":
            import numpy as np

            e, g = self.inner.energy_gradient(mol)
            return e, np.full_like(np.asarray(g, dtype=float), np.nan)
        if spec.kind == "cache_poison":
            self._poison_cache(mol)
            return self.inner.energy_gradient(mol)
        raise InjectedFault(f"planned transient fault: {where}")

    def _poison_cache(self, mol) -> None:
        """NaN-fill the warm-start density history for this fragment.

        Models a corrupted cache entry.  The SCF layer validates
        ``dm0`` for finiteness and silently discards bad guesses, so a
        poisoned entry must cost cold-start iterations — never wrong
        energies; the chaos tests pin exactly that.
        """
        import numpy as np

        cache = getattr(self.inner, "guess_cache", None)
        key = getattr(mol, "frag_key", None)
        if cache is None or key is None:
            return
        natoms = getattr(mol, "natoms", None)
        guess = cache.get(key, natoms)
        if guess is None:
            return  # nothing cached yet; the poisoning is a no-op
        cache.invalidate(key)
        cache.put(key, np.full_like(guess, np.nan), natoms)


# --------------------------------------------------------------------------
# checkpoint-site corruption
# --------------------------------------------------------------------------

def corrupt_checkpoint(path, kind: str, seed: int = 0) -> dict:
    """Damage a checkpoint file the way failing storage does.

    ``ckpt_torn`` truncates the file at a seed-determined fraction of
    its length (modelling a write cut short by a node loss that somehow
    bypassed the atomic-rename discipline — e.g. a stale NFS view);
    ``ckpt_bitflip`` flips a single seed-determined bit (silent media
    corruption).  Either way the damaged file must fail
    `read_checkpoint`'s checksum/structure validation, which is what
    the rotation fallback path is for.

    Returns a small description dict for tracer events / audits.
    """
    if kind not in CKPT_FAULT_KINDS:
        raise ValueError(
            f"unknown checkpoint fault {kind!r}; known: {CKPT_FAULT_KINDS}"
        )
    path = os.fspath(path)
    with open(path, "rb") as fh:
        data = bytearray(fh.read())
    n = len(data)
    if n == 0:
        return {"kind": kind, "path": path, "nbytes": 0}
    if kind == "ckpt_torn":
        # keep 25-75% of the file: always enough to look like a file,
        # never enough to parse
        cut = max(1, int(n * (0.25 + 0.5 * (_u64(seed, "cut", n) / 2.0**64))))
        data = data[:cut]
        detail = {"kind": kind, "path": path, "nbytes": n, "cut": cut}
    else:
        # flip one bit somewhere past the zip local-file header so the
        # archive still opens and the damage lands in a payload array,
        # exercising the checksum (not merely the container parser)
        lo = min(256, n - 1)
        offset = lo + _u64(seed, "offset", n) % max(n - lo, 1)
        bit = _u64(seed, "bit", n) % 8
        data[offset] ^= 1 << bit
        detail = {
            "kind": kind, "path": path, "nbytes": n,
            "offset": int(offset), "bit": int(bit),
        }
    # deliberately NOT atomic: this models the failure the atomic writer
    # exists to prevent
    with open(path, "wb") as fh:
        fh.write(data)
    return detail
