"""Typed, seeded fault schedules with an audit trail.

A `FaultPlan` is a declarative list of `FaultSpec` events plus a seed.
Whether a given spec fires at a given *site* (a task evaluation, a
checkpoint write) is a **pure function** of the plan's seed and the
site's coordinates — step, fragment key, atom count, attempt number —
computed by hashing, never by consuming mutable RNG state.  That purity
is the load-bearing property: the plan is pickled into every worker
process alongside the calculator, workers come and go (crash, hang, get
rebuilt), tasks are retried in racy orders, and yet every copy of the
plan reaches the identical verdict for the identical event.  A chaos
run is therefore replayable: same plan, same trajectory of injected
faults, same DriverReport counters.

The same hashing discipline hands out *derived seeds*
(`FaultPlan.derive_seed`) for the places that do need an RNG stream —
retry-backoff jitter in the driver, payload corruption offsets in
`repro.faults.inject.corrupt_checkpoint`, node-failure draws in the
cluster simulator — so every stochastic ingredient of a chaos campaign
hangs off the one top-level seed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

#: faults injected at task-evaluation sites (worker side)
TASK_FAULT_KINDS = (
    "crash",        # os._exit: the worker process dies (pool rebuild)
    "hang",         # sleep past the task deadline (timeout detection)
    "transient",    # raise InjectedFault (plain retry path)
    "scf_fail",     # raise SCFConvergenceError (recovery-exhausted model)
    "nan_forces",   # finite energy, all-NaN gradient (divergence sentinel)
    "cache_poison", # NaN-fill the warm-start density for this fragment
)

#: faults injected at checkpoint-write sites (coordinator side)
CKPT_FAULT_KINDS = (
    "ckpt_torn",     # truncate the just-written file (torn write)
    "ckpt_bitflip",  # flip one payload bit (silent media corruption)
)

FAULT_KINDS = TASK_FAULT_KINDS + CKPT_FAULT_KINDS

#: injection sites and the kinds valid at each
SITE_KINDS = {
    "task": TASK_FAULT_KINDS,
    "checkpoint": CKPT_FAULT_KINDS,
}


def _u64(*fields) -> int:
    """Stable 64-bit hash of a heterogeneous field tuple."""
    h = hashlib.sha256()
    for f in fields:
        h.update(repr(f).encode())
        h.update(b"\x1f")
    return int.from_bytes(h.digest()[:8], "big")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault event (or class of events).

    Match fields are conjunctive; ``None`` matches anything.  With
    ``attempts=k`` the fault fires while ``attempt < k`` — the same
    retry-budget contract as `FaultInjectingCalculator`, so a task hit
    by a ``transient`` spec with ``attempts=2`` fails twice and
    succeeds on its third dispatch.  ``probability`` thins the matches
    stochastically but deterministically: the keep/drop draw is a hash
    of the plan seed and the event coordinates, so it replays.
    """

    kind: str
    #: MD step the fault targets (None: every step)
    step: int | None = None
    #: fragment key the fault targets, e.g. ``(0,)`` or ``(1, 2)``
    key: tuple[int, ...] | None = None
    #: fragment atom count the fault targets (incl. cap hydrogens)
    natoms: int | None = None
    #: fire while attempt < attempts (task sites only)
    attempts: int = 1
    #: probability a matching event actually fires (seeded, replayable)
    probability: float = 1.0
    #: sleep duration for ``hang`` faults (seconds)
    hang_s: float = 3600.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.key is not None:
            object.__setattr__(self, "key", tuple(int(k) for k in self.key))
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} not in [0, 1]")

    @property
    def site(self) -> str:
        """The injection site this spec belongs to."""
        return "checkpoint" if self.kind in CKPT_FAULT_KINDS else "task"

    def matches(self, *, step: int, key=None, natoms=None,
                attempt: int = 0) -> bool:
        """Pure match predicate against one event's coordinates."""
        if self.step is not None and step != self.step:
            return False
        if self.key is not None and (
            key is None or tuple(key) != self.key
        ):
            return False
        if self.natoms is not None and natoms != self.natoms:
            return False
        return attempt < self.attempts

    def to_dict(self) -> dict:
        d = {"kind": self.kind}
        if self.step is not None:
            d["step"] = int(self.step)
        if self.key is not None:
            d["key"] = list(self.key)
        if self.natoms is not None:
            d["natoms"] = int(self.natoms)
        if self.attempts != 1:
            d["attempts"] = int(self.attempts)
        if self.probability != 1.0:
            d["probability"] = float(self.probability)
        if self.hang_s != 3600.0:
            d["hang_s"] = float(self.hang_s)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        known = {
            "kind", "step", "key", "natoms", "attempts", "probability",
            "hang_s",
        }
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        kw = dict(d)
        if "key" in kw and kw["key"] is not None:
            kw["key"] = tuple(int(k) for k in kw["key"])
        return cls(**kw)


@dataclass
class FaultRecord:
    """One injection decision that fired, for the audit trail."""

    site: str
    kind: str
    step: int
    key: tuple[int, ...] | None
    natoms: int | None
    attempt: int
    spec_index: int
    #: the seeded uniform draw that let the event through (1.0 means the
    #: spec was unconditional)
    draw: float

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "step": self.step,
            "key": list(self.key) if self.key is not None else None,
            "natoms": self.natoms,
            "attempt": self.attempt,
            "spec_index": self.spec_index,
            "draw": self.draw,
        }


@dataclass
class FaultPlan:
    """A seeded schedule of fault events plus its injection audit.

    `decide` is the single choke point every injection hook calls.  It
    is side-effect-free except for appending to ``audit`` on the calling
    process — worker processes each audit the decisions *they* evaluate;
    the authoritative cross-process record of what actually fired is the
    driver's tracer events and `DriverReport` counters, which the
    coordinator process owns.
    """

    seed: int = 0
    specs: list[FaultSpec] = field(default_factory=list)
    #: decisions that fired on *this* process (not serialized)
    audit: list[FaultRecord] = field(default_factory=list)

    # -- seeded pure draws -------------------------------------------------
    def uniform(self, *fields) -> float:
        """Deterministic U[0,1) draw keyed by the seed and ``fields``."""
        return _u64(int(self.seed), *fields) / 2.0 ** 64

    def derive_seed(self, label: str) -> int:
        """A 63-bit child seed for an RNG stream named ``label``.

        Used to seed the driver's retry-jitter RNG, checkpoint
        corruption offsets, and simulator failure streams off the one
        plan seed without stream collisions.
        """
        return _u64(int(self.seed), "derive", str(label)) >> 1

    # -- the decision ------------------------------------------------------
    def decide(self, site: str, *, step: int, key=None, natoms=None,
               attempt: int = 0) -> FaultSpec | None:
        """First spec that fires for this event, or None.

        Pure in (plan seed, specs, event coordinates): any copy of this
        plan, in any process, at any time, returns the same spec for
        the same event.
        """
        if site not in SITE_KINDS:
            raise ValueError(f"unknown fault site {site!r}")
        key = tuple(key) if key is not None else None
        for i, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if not spec.matches(step=step, key=key, natoms=natoms,
                                attempt=attempt):
                continue
            draw = 1.0
            if spec.probability < 1.0:
                draw = self.uniform(site, i, step, key, natoms, attempt)
                if draw >= spec.probability:
                    continue
            self.audit.append(FaultRecord(
                site=site, kind=spec.kind, step=int(step), key=key,
                natoms=natoms, attempt=int(attempt), spec_index=i,
                draw=draw,
            ))
            return spec
        return None

    # -- serialization -----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": int(self.seed),
                "specs": [s.to_dict() for s in self.specs],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            d = json.loads(text)
        except json.JSONDecodeError as err:
            raise ValueError(f"fault plan is not valid JSON: {err}") from err
        if not isinstance(d, dict) or "specs" not in d:
            raise ValueError(
                "fault plan must be an object with a 'specs' list"
            )
        return cls(
            seed=int(d.get("seed", 0)),
            specs=[FaultSpec.from_dict(s) for s in d["specs"]],
        )

    def save(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    # -- bookkeeping -------------------------------------------------------
    def __getstate__(self):
        # the audit is per-process by design; a pickled copy shipped to
        # a worker starts its own trail
        state = self.__dict__.copy()
        state["audit"] = []
        return state

    def audit_summary(self) -> dict[str, int]:
        """Count of fired injections on this process, by kind."""
        out: dict[str, int] = {}
        for rec in self.audit:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out
