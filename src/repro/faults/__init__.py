"""Deterministic, seeded chaos engineering for exascale AIMD campaigns.

At the paper's production scale (9,400 Frontier nodes, 3.75 million
polymer calculations per replan window) node failures are an operating
condition, not an edge case. This package provides the *fault-plan
engine*: a typed, seeded schedule of fault events that drives both
execution paths of the repository —

* the **real** `run_parallel`/`AsyncCoordinator` stack, via
  process-level injection hooks (`FaultPlanCalculator` wraps any
  calculator; checkpoint corruption is applied by the checkpointing
  layer itself), so a whole AIMD run under a fault plan is exactly
  reproducible and, in ``--deterministic`` mode, bitwise-comparable to
  the fault-free trajectory;
* the **simulated** machine (`repro.cluster`), whose node-failure
  models (`repro.cluster.failures`) share the same seeded-stream
  discipline.

Every injection decision is a *pure function* of the fault plan's seed
and the event's coordinates (step, fragment key, attempt) — never of
process identity, scheduling races, or wall-clock time — which is what
makes chaos runs replayable across process pools and pool rebuilds.
"""

from .inject import (
    CKPT_FAULT_KINDS,
    FaultPlanCalculator,
    InjectedFault,
    corrupt_checkpoint,
)
from .plan import FAULT_KINDS, TASK_FAULT_KINDS, FaultPlan, FaultRecord, FaultSpec

__all__ = [
    "CKPT_FAULT_KINDS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultPlanCalculator",
    "FaultRecord",
    "FaultSpec",
    "InjectedFault",
    "TASK_FAULT_KINDS",
    "corrupt_checkpoint",
]
