"""Intermolecular interaction energies: raw, MBE-consistent, and
counterpoise-corrected (ghost-basis BSSE correction).

The accuracy story of the paper rests on MBE dimer/trimer corrections
computed in each fragment's own basis; basis-set superposition error
(BSSE) is the classic systematic error of such differences. This module
implements the Boys-Bernardi counterpoise scheme with ghost centers —
basis functions placed on a partner's atoms without nuclei or
electrons — for quantifying it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .basis.auxiliary import element_auxiliary_shells
from .basis.basisset import BasisSet
from .basis.data import element_shells
from .basis.shell import Shell
from .chem.molecule import Molecule
from .mp2.mp2 import mp2_ri
from .scf.recovery import rhf_with_recovery
from .scf.rhf import rhf


def basis_with_ghosts(
    mol: Molecule,
    ghost_symbols: list[str],
    ghost_coords_bohr: np.ndarray,
    basis: str,
) -> BasisSet:
    """Basis of ``mol`` plus ghost shells at the given centers.

    Ghost shells carry the element's full basis but no nucleus or
    electrons (their ``atom`` index continues past the real atoms, which
    only matters for gradient attribution — energies are unaffected).
    """
    shells: list[Shell] = []
    for iatom, sym in enumerate(mol.symbols):
        for l, exps, coefs in element_shells(sym, basis):
            shells.append(
                Shell(l, mol.coords[iatom], np.array(exps), np.array(coefs),
                      atom=iatom)
            )
    for k, (sym, pos) in enumerate(zip(ghost_symbols, ghost_coords_bohr)):
        for l, exps, coefs in element_shells(sym, basis):
            shells.append(
                Shell(l, pos, np.array(exps), np.array(coefs),
                      atom=mol.natoms + k)
            )
    return BasisSet(shells)


def _aux_with_ghosts(
    mol: Molecule,
    ghost_symbols: list[str],
    ghost_coords_bohr: np.ndarray,
    basis: str,
) -> BasisSet:
    shells: list[Shell] = []
    cache: dict[str, list[tuple[int, float]]] = {}

    def aux_for(sym: str):
        if sym not in cache:
            cache[sym] = element_auxiliary_shells(sym, basis)
        return cache[sym]

    for iatom, sym in enumerate(mol.symbols):
        for l, exp in aux_for(sym):
            shells.append(Shell(l, mol.coords[iatom], np.array([exp]),
                                np.array([1.0]), atom=iatom))
    for k, (sym, pos) in enumerate(zip(ghost_symbols, ghost_coords_bohr)):
        for l, exp in aux_for(sym):
            shells.append(Shell(l, pos, np.array([exp]), np.array([1.0]),
                                atom=mol.natoms + k))
    return BasisSet(shells)


def _energy_in_basis(
    mol: Molecule, bs: BasisSet, aux: BasisSet, recover: bool = True
) -> float:
    """RI-MP2 total energy in an explicit (possibly ghost-augmented) basis.

    ``recover=True`` routes the SCF through the escalation ladder of
    `repro.scf.recovery` — ghost-augmented monomer bases are exactly the
    near-linearly-dependent systems where a bare solve occasionally
    stalls, and every other ab-initio path already gets the cascade.
    """
    if recover:
        res = rhf_with_recovery(mol, bs, ri=True, aux=aux)
    else:
        res = rhf(mol, bs, ri=True, aux=aux)
    return res.energy + mp2_ri(res).e_corr


@dataclass
class InteractionResult:
    """Dimer interaction energies (Hartree)."""

    e_ab: float
    e_a_own: float
    e_b_own: float
    e_a_dimer_basis: float
    e_b_dimer_basis: float

    @property
    def raw(self) -> float:
        """Uncorrected interaction: E_AB - E_A(a) - E_B(b)."""
        return self.e_ab - self.e_a_own - self.e_b_own

    @property
    def counterpoise(self) -> float:
        """CP-corrected interaction: monomers in the full dimer basis."""
        return self.e_ab - self.e_a_dimer_basis - self.e_b_dimer_basis

    @property
    def bsse(self) -> float:
        """Basis-set superposition error (raw - CP, always <= 0 ... the
        ghost basis can only lower the monomer energies)."""
        return self.raw - self.counterpoise


def counterpoise_interaction(
    mol_a: Molecule, mol_b: Molecule, basis: str = "sto-3g",
    recover: bool = True,
) -> InteractionResult:
    """Boys-Bernardi counterpoise analysis of an A...B dimer at the
    RI-MP2 level.

    Every SCF runs through the recovery cascade by default
    (``recover=True``) so one hard monomer-in-ghost-basis solve degrades
    to extra iterations instead of aborting the whole analysis.
    """
    dimer = Molecule.concatenate([mol_a, mol_b])
    bs_ab = BasisSet.build(dimer, basis)
    from .basis.auxiliary import auto_auxiliary

    aux_ab = auto_auxiliary(dimer, basis)
    e_ab = _energy_in_basis(dimer, bs_ab, aux_ab, recover=recover)

    e_a = _energy_in_basis(
        mol_a, BasisSet.build(mol_a, basis), auto_auxiliary(mol_a, basis),
        recover=recover,
    )
    e_b = _energy_in_basis(
        mol_b, BasisSet.build(mol_b, basis), auto_auxiliary(mol_b, basis),
        recover=recover,
    )

    ghosts_b = (list(mol_b.symbols), mol_b.coords)
    ghosts_a = (list(mol_a.symbols), mol_a.coords)
    e_a_gb = _energy_in_basis(
        mol_a,
        basis_with_ghosts(mol_a, *ghosts_b, basis),
        _aux_with_ghosts(mol_a, *ghosts_b, basis),
        recover=recover,
    )
    e_b_ga = _energy_in_basis(
        mol_b,
        basis_with_ghosts(mol_b, *ghosts_a, basis),
        _aux_with_ghosts(mol_b, *ghosts_a, basis),
        recover=recover,
    )
    return InteractionResult(
        e_ab=e_ab, e_a_own=e_a, e_b_own=e_b,
        e_a_dimer_basis=e_a_gb, e_b_dimer_basis=e_b_ga,
    )
