"""Shared dense linear-algebra helpers built on the tuned GEMM."""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from .autotune import gemm


def sym_inv_sqrt(M: np.ndarray, threshold: float = 1.0e-10) -> np.ndarray:
    """Symmetric inverse square root ``M^{-1/2}`` with eigenvalue screening.

    Eigenvalues below ``threshold * max_eig`` are projected out (canonical
    orthogonalization), which keeps near-singular RI metrics and overlap
    matrices numerically safe.
    """
    w, V = np.linalg.eigh(M)
    cut = threshold * w[-1]
    keep = w > cut
    inv_sqrt = np.zeros_like(w)
    inv_sqrt[keep] = 1.0 / np.sqrt(w[keep])
    return (V * inv_sqrt[None, :]) @ V.T


def sym_inv(M: np.ndarray, threshold: float = 1.0e-12) -> np.ndarray:
    """Symmetric (pseudo-)inverse with eigenvalue screening."""
    w, V = np.linalg.eigh(M)
    cut = threshold * abs(w[-1])
    keep = np.abs(w) > cut
    inv = np.zeros_like(w)
    inv[keep] = 1.0 / w[keep]
    return (V * inv[None, :]) @ V.T


def eigh_gen(F: np.ndarray, S: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Generalized symmetric eigenproblem ``F C = S C eps``.

    Solved by canonical orthogonalization so near-linear-dependent basis
    sets (diffuse auxiliary functions, stretched geometries) stay stable.
    """
    X = sym_inv_sqrt(S)
    Ft = gemm(gemm(X, F), X)
    Ft = 0.5 * (Ft + Ft.T)
    eps, Ct = np.linalg.eigh(Ft)
    C = gemm(X, Ct)
    return eps, C


def cholesky_solve_posdef(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``A X = B`` for symmetric positive-definite A."""
    c, low = sla.cho_factor(A)
    return sla.cho_solve((c, low), B)
