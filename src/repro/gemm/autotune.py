"""Runtime GEMM variant auto-tuning (paper Sec. V-G).

BLAS exposes four algorithmic variants of ``C = A B`` via the transpose
flags (NN, NT, TN, TT); which one is fastest depends on the shape and the
library/machine, with differences up to 20x reported in the paper
(Table IV). Because an explicit transpose is cheap relative to the GEMM,
any variant can be reached by transposing inputs first.

`GemmAutoTuner` reproduces the paper's in-situ scheme: for each distinct
logical shape ``(m, k, n)``, the first four calls each exercise one
variant (timed, including the cost of any layout conversion); every later
call with that shape uses the best variant observed. No warm-up work is
wasted — trial calls return real results.

On this CPU reproduction the "variants" are realized through memory
layout: BLAS dgemm is called through ``scipy.linalg.blas`` with
Fortran-ordered buffers, and a C-contiguous array is reachable for free
as the transpose of an F-contiguous one, so each variant maps to a
(layout(A), layout(B)) choice with genuinely different kernel paths and
copy costs — the same trade the paper tunes over.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np
from scipy.linalg.blas import dgemm as _blas_dgemm

from .flops import GLOBAL_COUNTER

VARIANTS: tuple[str, ...] = ("NN", "NT", "TN", "TT")


def _gemm_variant(A: np.ndarray, B: np.ndarray, variant: str) -> np.ndarray:
    """Compute ``A @ B`` by steering BLAS to the requested variant.

    The trans flags refer to the buffers actually handed to dgemm:
    variant "TN" passes A's transpose (an F-copy of which is A in C
    order) with ``trans_a=1``, etc.
    """
    ta = variant[0] == "T"
    tb = variant[1] == "T"
    # Build the buffer whose (possibly transposed) view equals the operand.
    # np.asfortranarray(X.T) is a no-op view when X is C-contiguous, and a
    # copy otherwise — the "cheap transpose" the paper exploits.
    a_buf = np.asfortranarray(A.T) if ta else np.asfortranarray(A)
    b_buf = np.asfortranarray(B.T) if tb else np.asfortranarray(B)
    return _blas_dgemm(1.0, a_buf, b_buf, trans_a=ta, trans_b=tb)


@dataclass
class GemmAutoTuner:
    """In-situ GEMM variant tuner with per-shape caching.

    Each variant is timed ``trials_per_variant`` times (round-robin over
    the variants, so repeats of one variant are separated in time) and
    judged by its *minimum* observed duration before a winner is
    committed. A single sample — the original scheme — lets first-call
    noise (allocator warm-up, cold caches, a scheduling hiccup) lock in
    a slow variant permanently; the min over repeats is the standard
    noise-robust estimator for best-case kernel time. Trial calls still
    return real results, so no work is wasted.

    Winner-table and trial-log accesses are serialised under one
    re-entrant lock so the process-global tuner survives the service's
    concurrent worker threads; the dgemm itself runs outside the lock.
    `set_tenant` attributes per-thread call counts to a job id.
    """

    enabled: bool = True
    default_variant: str = "NN"
    #: timed samples taken per variant before committing (noise rejection)
    trials_per_variant: int = 2
    #: shape -> chosen variant (once all trials are done)
    best: dict[tuple[int, int, int], str] = field(default_factory=dict)
    #: shape -> list of (variant, seconds) trials so far
    trials: dict[tuple[int, int, int], list[tuple[str, float]]] = field(
        default_factory=dict
    )
    #: optional `repro.trace.Tracer` recording per-shape decisions
    tracer: object = None
    #: blocking lock acquisitions (another thread held the tuner)
    contentions: int = 0
    #: per-tenant gemm call counts (see `set_tenant`)
    tenant_calls: dict[str, int] = field(default_factory=dict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    _tenant: threading.local = field(
        default_factory=threading.local, repr=False, compare=False
    )

    @contextmanager
    def _locked(self):
        """Hold the table lock, counting contended acquisitions."""
        if not self._lock.acquire(blocking=False):
            self.contentions += 1
            self._lock.acquire()
        try:
            yield
        finally:
            self._lock.release()

    def set_tenant(self, tenant: str | None) -> None:
        """Attribute this thread's subsequent gemm calls to ``tenant``."""
        self._tenant.name = tenant

    def gemm(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """``A @ B`` with FLOP counting and variant auto-tuning."""
        m, k = A.shape
        k2, n = B.shape
        if k != k2:
            raise ValueError(f"gemm shape mismatch: {A.shape} @ {B.shape}")
        GLOBAL_COUNTER.add_gemm(m, n, k)
        tenant = getattr(self._tenant, "name", None)
        if tenant is not None:
            with self._locked():
                self.tenant_calls[tenant] = \
                    self.tenant_calls.get(tenant, 0) + 1
        if not self.enabled:
            return _gemm_variant(A, B, self.default_variant)
        key = (m, k, n)
        with self._locked():
            chosen = self.best.get(key)
            if chosen is None:
                done = self.trials.setdefault(key, [])
                variant = VARIANTS[len(done) % len(VARIANTS)]
        if chosen is not None:
            return _gemm_variant(A, B, chosen)
        t0 = time.perf_counter()
        out = _gemm_variant(A, B, variant)
        elapsed = time.perf_counter() - t0
        with self._locked():
            done.append((variant, elapsed))
            # >= rather than ==: the trial target can move below
            # len(done) mid-run (trials_per_variant lowered, or a
            # restored trials list already past it), and an equality
            # check would then never fire and pin the shape in trial
            # mode forever
            if key not in self.best and \
                    len(done) >= len(VARIANTS) * max(1, self.trials_per_variant):
                times = self._min_times(done)
                self.best[key] = min(times, key=times.get)
                if self.tracer:
                    self.tracer.instant(
                        "gemm.autotune", cat="gemm", shape=str(key),
                        variant=self.best[key],
                        trials=len(done),
                    )
        return out

    @staticmethod
    def _min_times(done: list[tuple[str, float]]) -> dict[str, float]:
        times: dict[str, float] = {}
        for v, t in done:
            times[v] = min(t, times.get(v, t))
        return times

    def report(self) -> list[tuple[tuple[int, int, int], str, dict[str, float]]]:
        """Tuning decisions: (shape, best variant, per-variant min seconds)."""
        with self._locked():
            out = []
            for key, picked in self.best.items():
                out.append((key, picked, self._min_times(self.trials[key])))
            return out

    def stats(self) -> dict:
        """Counters snapshot (shapes tuned, contention, tenant calls)."""
        with self._locked():
            out = {
                "shapes_tuned": len(self.best),
                "shapes_in_trial": sum(
                    1 for k in self.trials if k not in self.best
                ),
                "contentions": self.contentions,
            }
            if self.tenant_calls:
                out["tenants"] = dict(self.tenant_calls)
            return out

    def reset(self) -> None:
        """Forget all trials and cached variant choices."""
        with self._locked():
            self.best.clear()
            self.trials.clear()

    def save(self, path: str) -> None:
        """Persist the committed winner table as JSON (atomically).

        Only ``best`` is stored — in-progress trials are machine-noise
        measurements not worth carrying across runs. The write goes
        through a temp file + ``os.replace`` so a crash mid-write can
        never leave a truncated table behind.
        """
        with self._locked():
            payload = {
                "version": 1,
                "best": {
                    f"{m}x{k}x{n}": variant
                    for (m, k, n), variant in sorted(self.best.items())
                },
            }
        data = json.dumps(payload, indent=2).encode()
        d = os.path.dirname(os.path.abspath(path))
        os.makedirs(d, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def load(self, path: str) -> int:
        """Merge a winner table saved by `save`; returns entries loaded.

        Loaded winners are applied directly to ``best`` (existing
        entries are kept — the current process's own measurements win),
        so shapes seen in a previous run skip their trial phase
        entirely. Unknown versions or malformed entries raise
        ``ValueError`` rather than silently poisoning the tuner.
        """
        with open(path, "rb") as fh:
            payload = json.loads(fh.read().decode())
        if payload.get("version") != 1:
            raise ValueError(
                f"unsupported gemm cache version in {path}: "
                f"{payload.get('version')!r}"
            )
        loaded = 0
        with self._locked():
            for shape_str, variant in payload.get("best", {}).items():
                if variant not in VARIANTS:
                    raise ValueError(
                        f"unknown gemm variant {variant!r} in {path}"
                    )
                parts = shape_str.split("x")
                if len(parts) != 3:
                    raise ValueError(
                        f"bad gemm shape key {shape_str!r} in {path}"
                    )
                key = tuple(int(p) for p in parts)
                if key not in self.best:
                    self.best[key] = variant
                    loaded += 1
        return loaded


#: Process-global tuner used by the module-level `gemm`.
GLOBAL_TUNER = GemmAutoTuner()


def gemm(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Auto-tuned, FLOP-counted matrix multiplication ``A @ B``.

    All dense-linear-algebra bottlenecks of the SCF/MP2 stack call this
    instead of ``@`` so that (a) runtime FLOP accounting matches the
    paper's methodology and (b) the auto-tuner sees every shape.
    """
    return GLOBAL_TUNER.gemm(A, B)


def set_autotune(enabled: bool) -> None:
    """Globally enable/disable variant tuning (ablation switch)."""
    GLOBAL_TUNER.enabled = enabled
