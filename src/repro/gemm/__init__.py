"""Tuned, FLOP-counted dense linear algebra (paper Secs. V-G, VI-C)."""

from .autotune import (
    VARIANTS,
    GemmAutoTuner,
    GLOBAL_TUNER,
    gemm,
    set_autotune,
)
from .flops import GLOBAL_COUNTER, FlopCounter, count_flops
from .linalg import cholesky_solve_posdef, eigh_gen, sym_inv, sym_inv_sqrt

__all__ = [
    "FlopCounter",
    "GLOBAL_COUNTER",
    "GLOBAL_TUNER",
    "GemmAutoTuner",
    "VARIANTS",
    "cholesky_solve_posdef",
    "count_flops",
    "eigh_gen",
    "gemm",
    "set_autotune",
    "sym_inv",
    "sym_inv_sqrt",
]
