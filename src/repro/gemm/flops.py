"""Runtime FLOP accounting.

The paper counts floating-point work at runtime by incrementing a local
counter by ``2 m n k`` on every GEMM call (Sec. VI-C), giving an exact
lower bound on executed FLOPs that is reduced across ranks at the end of
the run. We reproduce that exactly: every matrix multiplication in the
SCF/MP2/gradient stack goes through `repro.gemm.gemm`, which reports
here. The counter is also consumed by the cluster simulator to assign
per-fragment FLOP costs.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class FlopCounter:
    """Thread-safe accumulator of GEMM FLOPs and call statistics."""

    flops: int = 0
    calls: int = 0
    by_shape: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def add_gemm(self, m: int, n: int, k: int) -> None:
        """Record one ``(m x k) @ (k x n)`` multiplication (2mnk FLOPs)."""
        work = 2 * m * n * k
        with self._lock:
            self.flops += work
            self.calls += 1
            key = (m, k, n)
            self.by_shape[key] = self.by_shape.get(key, 0) + 1

    def reset(self) -> None:
        """Zero the counters."""
        with self._lock:
            self.flops = 0
            self.calls = 0
            self.by_shape = {}

    def snapshot(self) -> tuple[int, int]:
        """(flops, calls) at this instant."""
        with self._lock:
            return self.flops, self.calls


#: Process-global counter used by `repro.gemm.gemm`.
GLOBAL_COUNTER = FlopCounter()


@contextmanager
def count_flops():
    """Context manager yielding a fresh view of FLOPs spent inside it.

    Example::

        with count_flops() as c:
            run_scf(...)
        print(c.flops)
    """

    start_flops, start_calls = GLOBAL_COUNTER.snapshot()

    class _View:
        @property
        def flops(self) -> int:
            """GEMM FLOPs executed inside the context so far."""
            return GLOBAL_COUNTER.snapshot()[0] - start_flops

        @property
        def calls(self) -> int:
            """GEMM calls executed inside the context so far."""
            return GLOBAL_COUNTER.snapshot()[1] - start_calls

    yield _View()
