"""Geometry optimization on MBE or whole-system potential surfaces.

BFGS minimization driven by the analytic gradients, with the paper's
convergence criterion: gradient RMSD below 1e-4 Hartree/Bohr (the
threshold the paper uses to justify its MBE cutoffs as "commonly
adopted as a geometry optimization convergence threshold", Sec. IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .chem.molecule import Molecule
from .constants import GRADIENT_RMSD_THRESHOLD
from .frag.mbe import build_plan, mbe_energy_gradient
from .frag.monomer import FragmentedSystem


@dataclass
class OptimizationResult:
    """Outcome of a geometry optimization."""

    molecule: Molecule
    energy: float
    gradient: np.ndarray
    converged: bool
    niter: int
    energies: list = field(default_factory=list)

    @property
    def gradient_rmsd(self) -> float:
        """Root-mean-square gradient (the convergence metric)."""
        return float(np.sqrt(np.mean(self.gradient**2)))


def optimize(
    mol_or_system: Molecule | FragmentedSystem,
    calculator,
    gtol_rmsd: float = GRADIENT_RMSD_THRESHOLD,
    max_iter: int = 200,
    r_dimer_bohr: float | None = None,
    r_trimer_bohr: float | None = None,
    mbe_order: int = 3,
) -> OptimizationResult:
    """Minimize the energy with BFGS using analytic gradients.

    Accepts either a plain molecule (whole-system potential) or a
    `FragmentedSystem` (MBE potential with the given cutoffs, the plan
    re-enumerated each evaluation).

    Returns:
        `OptimizationResult`; ``converged`` reflects the gradient-RMSD
        criterion, not scipy's internal test.
    """
    from scipy.optimize import minimize

    fragmented = isinstance(mol_or_system, FragmentedSystem)
    parent = mol_or_system.parent if fragmented else mol_or_system
    natoms = parent.natoms
    energies: list[float] = []

    def fun(x: np.ndarray) -> tuple[float, np.ndarray]:
        coords = x.reshape(natoms, 3)
        if fragmented:
            plan = build_plan(
                mol_or_system, r_dimer_bohr, r_trimer_bohr,
                order=mbe_order, coords=coords,
            )
            e, g = mbe_energy_gradient(mol_or_system, plan, calculator, coords=coords)
        else:
            e, g = calculator.energy_gradient(parent.with_coords(coords))
        energies.append(e)
        return e, g.ravel()

    # gtol on max-component; convert RMSD criterion conservatively
    res = minimize(
        fun,
        parent.coords.ravel(),
        jac=True,
        method="BFGS",
        options={"gtol": gtol_rmsd * 0.5, "maxiter": max_iter},
    )
    coords = res.x.reshape(natoms, 3)
    e_final, g_final = fun(res.x)
    g_final = g_final.reshape(natoms, 3)
    rmsd = float(np.sqrt(np.mean(g_final**2)))
    return OptimizationResult(
        molecule=parent.with_coords(coords),
        energy=e_final,
        gradient=g_final,
        converged=rmsd < gtol_rmsd,
        niter=int(res.nit),
        energies=energies,
    )
