"""The multi-tenant trajectory service: queue, pump loop, worker pool.

`TrajectoryService` drives any number of `TrajectoryJob` sessions
concurrently over one shared `ThreadPoolExecutor`:

* **admission** — `submit` materializes a `JobSpec` into a job and
  places it on the `JobQueue`; up to ``max_active`` jobs are registered
  with the fair-share `FragmentScheduler` at a time, the rest wait;
* **pump loop** — a single thread draws fragment tasks fairly across
  active jobs, dispatches them to the pool, and feeds results back into
  each job's coordinator. All coordinator/session mutation happens on
  the pump thread; worker threads touch only calculators and the shared
  caches, which is exactly the surface made lock-safe for this service
  (`GuessCache`, `IntegralWorkspace`, `GemmAutoTuner`);
* **warm layer** — one process-wide `GuessCache` / `IntegralWorkspace` /
  GEMM winner table serves every job, with per-tenant attribution
  (job-namespaced fragment keys, thread-local tenant tags) and
  ``warm_layer`` tracer/stream snapshots;
* **backpressure** — before releasing a job's tasks the pump consults
  `ResultChannel.should_throttle`; saturated subscribers pause that
  job's dispatch (frames are never dropped);
* **isolation** — a task failure fails only its own job (the job is
  finalized as FAILED and unregistered); other tenants keep running.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path

from ..calculators import GuessCache
from ..gemm.autotune import GLOBAL_TUNER
from ..integrals.workspace import get_workspace
from ..numerics import ensure_finite
from .scheduler import FragmentScheduler
from .session import JobSpec, JobState, TrajectoryJob
from .streams import ResultChannel, StreamEvent

#: worker-process guess cache (`pool="process"`): module state survives
#: from task to task, exactly like `repro.md.drivers._WORKER_GUESS_CACHE`
_WORKER_GUESS_CACHE: GuessCache | None = None


def _process_evaluate(calculator, molecule, tenant: str,
                      warm_start: bool, deterministic: bool):
    """Worker-process entry point (``pool="process"``).

    The worker's process-global caches form its slice of the warm
    layer: the guess cache and GEMM winner table persist from task to
    task and are shared by every tenant the worker serves (fragment
    keys arrive job-namespaced, so densities never cross tenants).
    ``deterministic`` forces exact Schwarz re-screens for the single
    evaluation; workers are single-threaded, so the save/restore cannot
    race.
    """
    global _WORKER_GUESS_CACHE
    if warm_start and getattr(calculator, "guess_cache", "no") is None:
        if _WORKER_GUESS_CACHE is None:
            _WORKER_GUESS_CACHE = GuessCache()
        calculator.guess_cache = _WORKER_GUESS_CACHE
    workspace = get_workspace()
    workspace.set_tenant(tenant)
    GLOBAL_TUNER.set_tenant(tenant)
    saved_tol = workspace.displacement_tol
    if deterministic:
        workspace.displacement_tol = 0.0
    try:
        e, g = calculator.energy_gradient(molecule)
        ensure_finite(
            f"job {tenant} fragment "
            f"({getattr(molecule, 'natoms', '?')} atoms)",
            energy=e, gradient=g,
        )
        return e, g
    finally:
        workspace.displacement_tol = saved_tol
        workspace.set_tenant(None)
        GLOBAL_TUNER.set_tenant(None)


class JobQueue:
    """Thread-safe FIFO of materialized jobs awaiting activation."""

    def __init__(self) -> None:
        self._pending: deque[TrajectoryJob] = deque()
        self._lock = threading.Lock()

    def put(self, job: TrajectoryJob) -> None:
        with self._lock:
            self._pending.append(job)

    def pop(self) -> TrajectoryJob | None:
        with self._lock:
            return self._pending.popleft() if self._pending else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)


@dataclass
class _Flight:
    job_id: str
    task: object
    cost: float
    t_dispatch: float


class TrajectoryService:
    """Fair-share streaming AIMD service over a shared worker pool.

    Args:
        out_root: directory receiving one subdirectory per job.
        nworkers: worker threads evaluating fragment tasks.
        max_active: jobs multiplexed at once (others wait in the queue).
        channel: results channel (one is created if not given).
        tracer: optional `repro.trace.Tracer`; receives ``serve.*`` and
            ``warm_layer`` instants.
        warm_layer: share one `GuessCache` across (non-deterministic)
            jobs, keyed per tenant.
        pool: ``"thread"`` (default) evaluates fragments on worker
            threads sharing the in-process warm layer — right for the
            surrogate potential and for tests. ``"process"`` uses a
            `ProcessPoolExecutor` like the fault-tolerant cluster
            driver: QM fragment solves hold the GIL, so only processes
            turn multi-tenant multiplexing into wall-clock throughput;
            each worker keeps its own process-global warm layer
            (tenant-namespaced, persistent across jobs).
        mp_start: multiprocessing start method for ``pool="process"``.
        tenant_max_bytes: optional per-tenant byte quota applied to the
            shared warm layer (`GuessCache` and the process-global
            `IntegralWorkspace`): an over-budget tenant evicts only its
            own LRU entries, with evictions attributed per tenant in
            the warm-layer stats.
    """

    def __init__(self, out_root: str | Path, nworkers: int = 4,
                 max_active: int = 8, channel: ResultChannel | None = None,
                 tracer=None, warm_layer: bool = True,
                 pool: str = "thread", mp_start: str = "fork",
                 tenant_max_bytes: int | None = None) -> None:
        if pool not in ("thread", "process"):
            raise ValueError(f"pool must be 'thread' or 'process', got {pool!r}")
        self.out_root = Path(out_root)
        self.out_root.mkdir(parents=True, exist_ok=True)
        self.nworkers = max(1, int(nworkers))
        self.max_active = max(1, int(max_active))
        self.pool_kind = pool
        self.mp_start = mp_start
        self.channel = channel if channel is not None else ResultChannel()
        self.tracer = tracer
        self.queue = JobQueue()
        self.scheduler = FragmentScheduler()
        self.jobs: dict[str, TrajectoryJob] = {}
        #: per-tenant byte quota for the shared warm layer (None = no
        #: quota): a greedy job then evicts only its own densities /
        #: integral tables, never another tenant's (fair-share memory,
        #: matching the fair-share scheduler)
        self.tenant_max_bytes = tenant_max_bytes
        self.guess_cache = (
            GuessCache(tenant_max_bytes=tenant_max_bytes)
            if warm_layer else None
        )
        if tenant_max_bytes is not None:
            get_workspace().tenant_max_bytes = int(tenant_max_bytes)
        self._stop = threading.Event()
        self._process_clones: dict[str, object] = {}
        self.tasks_completed = 0
        self.tasks_failed = 0

    # -- admission ------------------------------------------------------
    def submit(self, spec: JobSpec) -> TrajectoryJob:
        """Materialize a spec (resuming from its checkpoints if present)
        and enqueue it. Returns the job handle."""
        if spec.job_id in self.jobs:
            raise ValueError(f"job {spec.job_id!r} already submitted")
        job = TrajectoryJob(
            spec, self.out_root, channel=self.channel, tracer=self.tracer
        )
        if (
            self.pool_kind == "thread"
            and self.guess_cache is not None
            and not spec.deterministic
            and getattr(job.calculator, "guess_cache", "no") is None
        ):
            # the shared multi-tenant warm layer; tenant separation via
            # job-namespaced fragment keys (see TrajectoryJob). With
            # pool="process" the warm layer lives per worker process
            # instead (see _process_evaluate)
            job.calculator.guess_cache = self.guess_cache
        if spec.deterministic:
            # exact Schwarz re-screens for every tenant while a
            # deterministic job is present: the workspace is process-
            # global, so the strictest tenant pins the tolerance
            get_workspace().displacement_tol = 0.0
        self.jobs[spec.job_id] = job
        self.queue.put(job)
        if self.tracer:
            self.tracer.instant(
                "serve.submit", cat="serve", job=spec.job_id,
                nsteps=spec.nsteps, weight=spec.weight,
            )
        return job

    def request_stop(self) -> None:
        """Graceful stop: finish in-flight tasks, then return from `run`.

        Unfinished jobs are finalized as INTERRUPTED; their checkpoints
        and committed trajectory frames survive, so resubmitting the
        same specs against the same ``out_root`` resumes them.
        """
        self._stop.set()

    # -- worker side ----------------------------------------------------
    def _evaluate(self, job: TrajectoryJob, task):
        workspace = get_workspace()
        workspace.set_tenant(job.spec.job_id)
        GLOBAL_TUNER.set_tenant(job.spec.job_id)
        try:
            e, g = job.calculator.energy_gradient(task.molecule)
            ensure_finite(
                f"job {job.spec.job_id} polymer {task.key} "
                f"(step {task.step})", energy=e, gradient=g,
            )
            return e, g
        finally:
            workspace.set_tenant(None)
            GLOBAL_TUNER.set_tenant(None)

    def _picklable_calculator(self, job: TrajectoryJob):
        """A calculator clone safe to ship to a worker process.

        Unpicklable in-process state (shared caches, tracer hooks) is
        stripped; the worker re-attaches its own process-global warm
        layer (`_process_evaluate`). Memoized per job.
        """
        job_id = job.spec.job_id
        clone = self._process_clones.get(job_id)
        if clone is None:
            calc = job.calculator
            if dataclasses.is_dataclass(calc) and hasattr(calc, "guess_cache"):
                clone = dataclasses.replace(
                    calc, guess_cache=None, workspace=None, tracer=None
                )
            else:
                clone = calc
            self._process_clones[job_id] = clone
        return clone

    # -- pump loop ------------------------------------------------------
    def _activate_pending(self) -> None:
        while len(self.scheduler) < self.max_active:
            job = self.queue.pop()
            if job is None:
                return
            job.mark_running()
            self.scheduler.register(
                job.spec.job_id, job, weight=job.spec.weight
            )

    def _fail_job(self, job_id: str, err: BaseException) -> None:
        job = self.jobs[job_id]
        self.scheduler.unregister(job_id)
        job.finalize(JobState.FAILED, error=repr(err))
        if self.tracer:
            self.tracer.instant(
                "serve.job_failed", cat="serve", job=job_id, error=repr(err)
            )

    def _publish_warm_layer(self) -> None:
        snapshot = {
            "guess_cache": (
                self.guess_cache.stats()
                if self.guess_cache is not None else None
            ),
            "workspace": get_workspace().stats(),
            "gemm": GLOBAL_TUNER.stats(),
        }
        if self.tracer:
            self.tracer.instant("warm_layer", cat="serve", **{
                "guess_hits": (snapshot["guess_cache"] or {}).get("hits", 0),
                "guess_misses": (
                    (snapshot["guess_cache"] or {}).get("misses", 0)
                ),
                "ws_hits": snapshot["workspace"]["hits"],
                "ws_misses": snapshot["workspace"]["misses"],
                "ws_contentions": snapshot["workspace"]["contentions"],
            })
        self.channel.publish(StreamEvent(
            job_id="", kind="warm_layer", payload=snapshot,
        ))

    def run(self, poll_s: float = 0.05) -> dict:
        """Pump all submitted jobs to completion; returns the summary.

        Single-threaded mutation: only this thread touches coordinators,
        sessions, and the fragment scheduler. Returns once every job is
        terminal (or, after `request_stop`, once in-flight tasks have
        drained and the rest are finalized as INTERRUPTED).
        """
        flights: dict = {}
        if self.pool_kind == "process":
            pool = ProcessPoolExecutor(
                max_workers=self.nworkers,
                mp_context=mp.get_context(self.mp_start),
            )
        else:
            pool = ThreadPoolExecutor(
                max_workers=self.nworkers, thread_name_prefix="serve-worker"
            )
        try:
            while True:
                self._activate_pending()
                if not self._stop.is_set():
                    throttled = {
                        job_id for job_id in list(self.scheduler.stats())
                        if self.channel.should_throttle(job_id)
                    }
                    while len(flights) < self.nworkers:
                        drawn = self.scheduler.next_task(throttled)
                        if drawn is None:
                            break
                        job_id, task, cost = drawn
                        job = self.jobs[job_id]
                        job.namespace_task(task)
                        if self.pool_kind == "process":
                            fut = pool.submit(
                                _process_evaluate,
                                self._picklable_calculator(job),
                                task.molecule, job_id,
                                not job.spec.deterministic,
                                job.spec.deterministic,
                            )
                        else:
                            fut = pool.submit(self._evaluate, job, task)
                        flights[fut] = _Flight(
                            job_id, task, cost, time.perf_counter()
                        )
                if not flights:
                    if self._stop.is_set():
                        break
                    if not self.scheduler and len(self.queue) == 0:
                        break
                    # every active job is throttled or briefly taskless;
                    # wait for subscribers to drain
                    time.sleep(poll_s)
                    continue
                done, _ = wait(
                    flights, timeout=poll_s, return_when=FIRST_COMPLETED
                )
                for fut in done:
                    flight = flights.pop(fut)
                    job_id = flight.job_id
                    self.scheduler.task_done(job_id, flight.cost)
                    if job_id not in self.scheduler:
                        continue  # job already failed; drop the result
                    job = self.jobs[job_id]
                    try:
                        e, g = fut.result()
                        job.coordinator.complete(flight.task, e, g)
                        self.tasks_completed += 1
                    except Exception as err:
                        self.tasks_failed += 1
                        self._fail_job(job_id, err)
                        continue
                    if job.done():
                        self.scheduler.unregister(job_id)
                        job.finalize(JobState.COMPLETED)
                        if self.tracer:
                            self.tracer.instant(
                                "serve.job_completed", cat="serve",
                                job=job_id, steps=job.steps_emitted,
                            )
        finally:
            pool.shutdown(wait=True)
            for job in self.jobs.values():
                if job.state in (JobState.RUNNING, JobState.PENDING):
                    self.scheduler.unregister(job.spec.job_id)
                    job.finalize(JobState.INTERRUPTED)
            self._publish_warm_layer()
        return self.summary()

    # -- reporting ------------------------------------------------------
    def summary(self) -> dict:
        """Per-job outcomes plus warm-layer and channel counters."""
        jobs = {}
        for job_id, job in self.jobs.items():
            entry = {
                "state": job.state,
                "steps": job.steps_emitted,
                "resumed": job.resumed_from is not None,
                "latency": job.latency_percentiles(),
            }
            if job.error:
                entry["error"] = job.error
            if job.started_at is not None and job.finished_at is not None:
                entry["wall_s"] = job.finished_at - job.started_at
            if getattr(job, "surrogate", None) is not None:
                entry["surrogate"] = dict(
                    job.surrogate.stats(),
                    tasks_avoided=job.coordinator.surrogate_tasks_avoided,
                )
            jobs[job_id] = entry
        return {
            "jobs": jobs,
            "tasks_completed": self.tasks_completed,
            "tasks_failed": self.tasks_failed,
            "fair_share": self.scheduler.stats(),
            "channel": self.channel.stats(),
            "warm_layer": {
                "guess_cache": (
                    self.guess_cache.stats()
                    if self.guess_cache is not None else None
                ),
                "workspace": get_workspace().stats(),
                "gemm": GLOBAL_TUNER.stats(),
            },
        }
