"""Weighted fair-share multiplexing of fragment tasks across jobs.

Each active `TrajectoryJob` owns an `AsyncCoordinator` whose priority
heap orders *its own* polymer tasks (distance-to-reference sweep,
monomer/polymer priorities). The `FragmentScheduler` sits above those
heaps and decides **which job** supplies the next task for the shared
worker pool: among drawable jobs (ready tasks, not throttled by the
results channel) it picks the one with the least outstanding dispatched
cost per unit weight — weighted fair sharing over the cost currency the
paper's scheduler uses (``natoms**3``, the fragment solve scaling). A
large job therefore saturates the pool only until a small job has work
ready; the small job then receives the very next slot, keeping its
per-step latency bounded (see tests/test_serve.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def task_cost(task) -> float:
    """Dispatch-cost currency of one fragment task (cubic in atoms)."""
    return float(task.natoms) ** 3


@dataclass
class _JobEntry:
    job: object
    weight: float
    #: summed cost of dispatched-but-unfinished tasks
    outstanding_cost: float = 0.0
    #: total cost ever dispatched (fairness audit)
    dispatched_cost: float = 0.0
    tasks_drawn: int = 0


@dataclass
class FragmentScheduler:
    """Fair-share task source over registered jobs."""

    _entries: dict[str, _JobEntry] = field(default_factory=dict)

    def register(self, job_id: str, job, weight: float = 1.0) -> None:
        """Add a job (its coordinator becomes a task source)."""
        if job_id in self._entries:
            raise ValueError(f"job {job_id!r} is already registered")
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self._entries[job_id] = _JobEntry(job=job, weight=float(weight))

    def unregister(self, job_id: str) -> None:
        """Remove a job (completed, failed, or evicted)."""
        self._entries.pop(job_id, None)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def next_task(self, throttled: set[str] | frozenset = frozenset()):
        """Draw ``(job_id, task, cost)`` fairly, or None if nothing ready.

        Job choice: minimal ``outstanding_cost / weight`` among jobs with
        ready tasks, ties broken by job id (deterministic). The job's own
        coordinator picks which of its tasks runs.
        """
        best = None
        for job_id in sorted(self._entries):
            if job_id in throttled:
                continue
            entry = self._entries[job_id]
            if not entry.job.coordinator.has_ready_tasks():
                continue
            share = entry.outstanding_cost / entry.weight
            if best is None or share < best[0]:
                best = (share, job_id, entry)
        if best is None:
            return None
        _, job_id, entry = best
        task = entry.job.coordinator.next_task()
        if task is None:
            return None
        cost = task_cost(task)
        entry.outstanding_cost += cost
        entry.dispatched_cost += cost
        entry.tasks_drawn += 1
        return job_id, task, cost

    def task_done(self, job_id: str, cost: float) -> None:
        """Return a finished (or failed) task's cost to the job's share."""
        entry = self._entries.get(job_id)
        if entry is not None:
            entry.outstanding_cost = max(0.0, entry.outstanding_cost - cost)

    def stats(self) -> dict:
        """Per-job fairness counters."""
        return {
            job_id: {
                "weight": e.weight,
                "tasks_drawn": e.tasks_drawn,
                "dispatched_cost": e.dispatched_cost,
                "outstanding_cost": e.outstanding_cost,
            }
            for job_id, e in self._entries.items()
        }
