"""Declarative job specs and the checkpoint-backed trajectory session.

`JobSpec` is the unit of admission to the service: a JSON-serializable
description of one trajectory (system, method, thermostat, MTS config,
step budget, fairness weight). `TrajectoryJob` materializes a spec into
a runnable session — fragmented system, calculator, `AsyncCoordinator`
state machine, per-job output directory with a torn-frame-safe
trajectory stream, and crash-safe resume from the job's own rotated
checkpoints. The job exposes the coordinator's ``next_task``/
``complete`` protocol, so the service's `FragmentScheduler` can
multiplex fragment tasks from many jobs onto one worker pool; per-step
results are emitted through the coordinator's ``step_callback`` as
`StreamEvent` records the moment a step retires.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

import numpy as np

from ..constants import BOHR_PER_ANGSTROM
from ..md import AsyncCoordinator, read_checkpoint_with_fallback
from ..md.checkpoint import atomic_savez
from ..md.thermostats import LocalLangevinThermostat
from ..md.trajio import TrajectoryStreamWriter
from .streams import StreamEvent


class JobState:
    """Lifecycle states of a `TrajectoryJob`."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    INTERRUPTED = "interrupted"


@dataclass
class JobSpec:
    """Declarative description of one trajectory job.

    ``system`` selects a builder: ``{"kind": "water", "n": 4, "seed": 0}``
    (`repro.systems.water_cluster`), ``{"kind": "glycine", "n": 2}``
    (`repro.systems.glycine_chain`, one covalent monomer),
    ``{"kind": "glycine-fragmented", "n": 2}``
    (`repro.systems.glycine_fragmented`, one monomer per residue with
    H-caps across the peptide bonds), or ``{"kind": "xyz", "path": ...,
    "charge": 0}``. ``method`` selects the calculator: ``{"kind":
    "surrogate"}``, or ``{"kind": "rihf" | "rimp2" | "hf", "basis":
    "sto-3g", "int_screen": 1e-12}``. ``thermostat`` is either None
    (NVE) or ``{"kind": "local-langevin", "friction_per_fs": 0.01,
    "seed": 0}`` — the only thermostat whose noise is well-defined under
    asynchronous integration (see
    `repro.md.thermostats.LocalLangevinThermostat`). ``mts`` is either
    None or ``{"k": 4, "extrapolate": false}``.

    ``weight`` is the fair-share weight (task draw priority scales with
    it); ``deterministic`` pins bitwise-reproducible resume semantics
    (canonical reductions, cold SCF guesses, exact Schwarz re-screens).

    ``surrogate`` is either None or a config dict for the per-tenant
    online MBE-tail surrogate (`repro.surrogate.SurrogateManager`), e.g.
    ``{"tol_dimer": 5e-5, "tol_trimer": 2e-5, "min_train": 6}``. Each
    job gets its *own* manager (models never cross tenants — unlike the
    warm-layer density cache there is no composition-keyed sharing, a
    tenant's dynamics alone must justify trusting its fits). Ignored
    under ``deterministic`` (the coordinator forces the surrogate off).
    """

    job_id: str
    system: dict
    method: dict = field(default_factory=lambda: {"kind": "surrogate"})
    nsteps: int = 10
    dt_fs: float = 0.5
    temperature_k: float = 300.0
    seed: int = 0
    mbe_order: int = 2
    r_dimer_angstrom: float = 6.0
    r_trimer_angstrom: float | None = None
    group_size: int = 1
    replan_interval: int = 1
    mts: dict | None = None
    thermostat: dict | None = None
    surrogate: dict | None = None
    deterministic: bool = False
    checkpoint_every: int = 0
    checkpoint_keep: int = 2
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.job_id or "/" in self.job_id or self.job_id.startswith("."):
            raise ValueError(f"invalid job_id {self.job_id!r}")
        if self.nsteps < 1:
            raise ValueError(f"nsteps must be >= 1, got {self.nsteps}")
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Inverse of `to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown JobSpec fields: {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        return cls.from_dict(json.loads(text))


def build_system(spec: JobSpec):
    """The spec's `FragmentedSystem` (parent molecule fragmented)."""
    from ..frag import FragmentedSystem

    cfg = dict(spec.system)
    kind = cfg.pop("kind", "water")
    if kind == "water":
        from ..systems import water_cluster

        mol = water_cluster(
            int(cfg.pop("n", 4)),
            spacing_angstrom=float(cfg.pop("spacing_angstrom", 3.1)),
            seed=int(cfg.pop("seed", 0)),
        )
    elif kind == "glycine-fragmented":
        from ..systems import glycine_fragmented

        system = glycine_fragmented(int(cfg.pop("n", 2)))
        if cfg:
            raise ValueError(f"unknown system options: {sorted(cfg)}")
        return system
    elif kind == "glycine":
        from ..systems import glycine_chain

        mol = glycine_chain(int(cfg.pop("n", 2)))
    elif kind == "xyz":
        from ..chem.xyz import load_xyz

        mol = load_xyz(cfg.pop("path"), charge=int(cfg.pop("charge", 0)))
    else:
        raise ValueError(f"unknown system kind {kind!r}")
    if cfg:
        raise ValueError(f"unknown system options: {sorted(cfg)}")
    return FragmentedSystem.by_components(mol, group_size=spec.group_size)


def build_calculator(spec: JobSpec, tracer=None):
    """The spec's calculator (caches attached later by the service)."""
    cfg = dict(spec.method)
    kind = cfg.pop("kind", "surrogate")
    if kind == "surrogate":
        from ..calculators import PairwisePotentialCalculator

        calc = PairwisePotentialCalculator(**cfg)
    elif kind in ("rihf", "rimp2", "hf"):
        from ..calculators import (
            ConventionalHFCalculator,
            RIHFCalculator,
            RIMP2Calculator,
        )

        cls = {
            "rihf": RIHFCalculator,
            "rimp2": RIMP2Calculator,
            "hf": ConventionalHFCalculator,
        }[kind]
        calc = cls(
            basis=cfg.pop("basis", "sto-3g"),
            int_screen=cfg.pop("int_screen", 0.0),
            tracer=tracer,
        )
        if cfg:
            raise ValueError(f"unknown method options: {sorted(cfg)}")
    else:
        raise ValueError(f"unknown method kind {kind!r}")
    return calc


def build_thermostat(spec: JobSpec):
    """The spec's thermostat (None for NVE)."""
    if spec.thermostat is None:
        return None
    cfg = dict(spec.thermostat)
    kind = cfg.pop("kind", "local-langevin")
    if kind != "local-langevin":
        raise ValueError(
            f"thermostat kind {kind!r} is not usable under asynchronous "
            "integration; only 'local-langevin' has order-independent "
            "noise streams"
        )
    return LocalLangevinThermostat(
        temperature_k=float(cfg.pop("temperature_k", spec.temperature_k)),
        friction_per_fs=float(cfg.pop("friction_per_fs", 0.01)),
        seed=int(cfg.pop("seed", spec.seed)),
    )


class TrajectoryJob:
    """One spec materialized into a runnable, resumable session.

    Output layout (all under ``<out_root>/<job_id>/``):

    * ``spec.json`` — the spec as admitted (provenance);
    * ``checkpoint.npz`` (+ rotations ``.1``, ``.2``, ...) — crash-safe
      consistent cuts, written by the coordinator;
    * ``trajectory.xyz`` + ``trajectory.xyz.idx`` — torn-frame-safe
      streaming frames (`repro.md.trajio.TrajectoryStreamWriter`);
    * ``restart.npz`` — final phase-space point, written at finalize.

    If ``checkpoint.npz`` (or a rotation) already exists and validates,
    the job resumes from it automatically — rotation fallback included —
    and the trajectory stream is truncated back to the resumed cut so
    re-produced frames are not duplicated.
    """

    def __init__(self, spec: JobSpec, out_root: str | Path,
                 channel=None, tracer=None) -> None:
        self.spec = spec
        self.state = JobState.PENDING
        self.channel = channel
        self.error: str | None = None
        self.dir = Path(out_root) / spec.job_id
        self.dir.mkdir(parents=True, exist_ok=True)
        (self.dir / "spec.json").write_text(spec.to_json())
        self.checkpoint_path = self.dir / "checkpoint.npz"

        self.system = build_system(spec)
        self.calculator = build_calculator(spec, tracer=tracer)
        parent = self.system.parent

        resume = None
        self.resumed_from = None
        if self.checkpoint_path.exists():
            resume, used = read_checkpoint_with_fallback(
                self.checkpoint_path, mol=parent, tracer=tracer
            )
            self.resumed_from = used

        self.surrogate = None
        if spec.surrogate is not None and not spec.deterministic:
            from ..surrogate import SurrogateManager

            self.surrogate = SurrogateManager(**spec.surrogate)

        mts = spec.mts or {}
        self.coordinator = AsyncCoordinator(
            self.system,
            nsteps=spec.nsteps,
            dt_fs=spec.dt_fs,
            r_dimer_bohr=spec.r_dimer_angstrom * BOHR_PER_ANGSTROM,
            r_trimer_bohr=(
                spec.r_trimer_angstrom * BOHR_PER_ANGSTROM
                if spec.r_trimer_angstrom is not None else None
            ),
            mbe_order=spec.mbe_order,
            temperature_k=spec.temperature_k,
            seed=spec.seed,
            replan_interval=spec.replan_interval,
            tracer=tracer,
            deterministic=spec.deterministic,
            checkpoint_path=(
                str(self.checkpoint_path) if spec.checkpoint_every else None
            ),
            checkpoint_every=spec.checkpoint_every,
            checkpoint_keep=spec.checkpoint_keep,
            resume=resume,
            # the multi-tenant warm layer is owned by the service (one
            # shared cache, job-namespaced keys), not per coordinator
            warm_start=False,
            mts_k=int(mts.get("k", 1)),
            mts_extrapolate=bool(mts.get("extrapolate", False)),
            thermostat=build_thermostat(spec),
            step_callback=self._on_step,
            surrogate=self.surrogate,
        )

        self.writer = TrajectoryStreamWriter(
            self.dir / "trajectory.xyz", parent, append=resume is not None
        )
        if resume is not None:
            # frames the previous incarnation streamed past the resumed
            # cut are re-produced by the dynamics (bitwise, under
            # --deterministic); the resumed step itself is re-emitted too
            self.writer.drop_frames_after(
                resume.time_fs - 0.5 * spec.dt_fs
            )

        #: wall-clock gaps between consecutive step retirements (the
        #: per-step latency samples aggregated into p50/p99)
        self.step_latencies: list[float] = []
        self._last_step_wall: float | None = None
        self.steps_emitted = 0
        self.started_at: float | None = None
        self.finished_at: float | None = None

    # -- streaming ------------------------------------------------------
    def _on_step(self, step: int, e_pot: float, e_kin: float,
                 coords: np.ndarray) -> None:
        now = time.perf_counter()
        if self._last_step_wall is not None:
            self.step_latencies.append(now - self._last_step_wall)
        self._last_step_wall = now
        self.writer.append_frame(
            step * self.spec.dt_fs, e_pot, e_kin, coords
        )
        self.steps_emitted += 1
        if self.channel is not None:
            self.channel.publish(StreamEvent(
                job_id=self.spec.job_id,
                kind="step",
                step=step,
                payload={
                    "time_fs": step * self.spec.dt_fs,
                    "e_pot": float(e_pot),
                    "e_kin": float(e_kin),
                    "e_total": float(e_pot) + float(e_kin),
                },
            ))

    def _publish_status(self, **payload) -> None:
        if self.channel is not None:
            self.channel.publish(StreamEvent(
                job_id=self.spec.job_id, kind="status",
                payload={"state": self.state, **payload},
            ))

    # -- task protocol (namespaced for the shared warm layer) -----------
    def namespace_task(self, task) -> None:
        """Prefix the fragment's cache key with the job id.

        Jobs share one `GuessCache`; the leading job-id string keeps
        densities tenant-local and drives per-tenant hit attribution.
        """
        frag_key = getattr(task.molecule, "frag_key", None)
        if frag_key is not None and not (
            len(frag_key) and isinstance(frag_key[0], str)
        ):
            task.molecule.frag_key = (self.spec.job_id,) + tuple(frag_key)

    # -- lifecycle ------------------------------------------------------
    def mark_running(self) -> None:
        if self.state == JobState.PENDING:
            self.state = JobState.RUNNING
            self.started_at = time.perf_counter()
            self._publish_status(resumed=self.resumed_from is not None)

    def done(self) -> bool:
        return self.coordinator.done()

    def finalize(self, state: str, error: str | None = None) -> None:
        """Close outputs and publish the terminal status event."""
        self.state = state
        self.error = error
        self.finished_at = time.perf_counter()
        if state == JobState.COMPLETED:
            atomic_savez(
                self.dir / "restart.npz",
                coords=np.asarray(self.coordinator.coords, dtype=float),
                velocities=np.asarray(
                    self.coordinator.velocities, dtype=float
                ),
                time_fs=np.asarray(
                    self.spec.nsteps * self.spec.dt_fs, dtype=float
                ),
            )
        self.writer.close()
        payload = {"steps": self.steps_emitted}
        if error:
            payload["error"] = error
        self._publish_status(**payload)

    # -- results --------------------------------------------------------
    def trajectory_energies(self):
        """(times_fs, potential, kinetic) arrays for completed steps."""
        return self.coordinator.trajectory_energies()

    def final_total_energy(self) -> float:
        """Total energy of the last completed step."""
        _, pe, ke = self.coordinator.trajectory_energies()
        if len(pe) == 0:
            raise ValueError(f"job {self.spec.job_id} has no completed steps")
        return float(pe[-1] + ke[-1])

    def latency_percentiles(self) -> dict:
        """p50/p99 of the per-step latency samples (seconds)."""
        if not self.step_latencies:
            return {"p50": None, "p99": None, "samples": 0}
        lat = np.asarray(self.step_latencies)
        return {
            "p50": float(np.percentile(lat, 50)),
            "p99": float(np.percentile(lat, 99)),
            "samples": int(lat.size),
        }
