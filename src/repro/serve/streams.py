"""Streaming results channel: bounded subscriptions with backpressure.

Per-step results (energies, coordinates committed to the trajectory
stream, job status transitions, warm-layer snapshots) are published as
`StreamEvent` records to a `ResultChannel`. Subscribers attach bounded
buffers; when a subscriber falls behind, the channel does **not** drop
frames — instead `ResultChannel.should_throttle` reports the jobs whose
subscribers are saturated and the service pump stops *releasing tasks*
for those jobs until the buffers drain below the low watermark. The
buffer can therefore overshoot its capacity only by the frames already
in flight when the throttle engaged — a bound set by the coordinator's
live-step skew, not by the trajectory length.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StreamEvent:
    """One item on the results stream.

    ``kind`` is one of ``step`` (a retired MD step), ``status`` (a job
    state transition), or ``warm_layer`` (a shared-cache counters
    snapshot); ``payload`` carries the kind-specific fields.
    """

    job_id: str
    kind: str
    step: int | None = None
    payload: dict = field(default_factory=dict)


class Subscription:
    """One subscriber's buffered view of the channel.

    Events are delivered in publish order. ``get`` blocks (with an
    optional timeout) until an event arrives or the subscription is
    closed and drained.
    """

    def __init__(self, channel: "ResultChannel", job_id: str | None,
                 capacity: int) -> None:
        self._channel = channel
        self.job_id = job_id
        self.capacity = capacity
        self._buf: deque[StreamEvent] = deque()
        self._closed = False

    def _matches(self, event: StreamEvent) -> bool:
        return self.job_id is None or event.job_id == self.job_id

    def __len__(self) -> int:
        return len(self._buf)

    def get(self, timeout: float | None = None) -> StreamEvent | None:
        """Next event, or None on timeout / closed-and-drained."""
        with self._channel._cond:
            self._channel._cond.wait_for(
                lambda: self._buf or self._closed, timeout=timeout
            )
            if not self._buf:
                return None
            event = self._buf.popleft()
            self._channel._cond.notify_all()
            return event

    def drain(self) -> list[StreamEvent]:
        """All currently buffered events (non-blocking)."""
        with self._channel._cond:
            out = list(self._buf)
            self._buf.clear()
            self._channel._cond.notify_all()
            return out

    def close(self) -> None:
        """Detach from the channel; buffered events remain drainable."""
        with self._channel._cond:
            self._closed = True
            self._channel._subs.discard(self)
            self._channel._cond.notify_all()


class ResultChannel:
    """Publish/subscribe hub for `StreamEvent` records.

    ``capacity`` is the per-subscription buffer bound; the throttle
    engages at ``high_watermark`` (default ``capacity // 2``) and
    releases at ``low_watermark`` (default ``capacity // 4``), so a
    briefly slow consumer does not flap the scheduler.
    """

    def __init__(self, capacity: int = 64,
                 high_watermark: int | None = None,
                 low_watermark: int | None = None) -> None:
        if capacity < 4:
            raise ValueError(f"capacity must be >= 4, got {capacity}")
        self.capacity = int(capacity)
        self.high_watermark = (
            high_watermark if high_watermark is not None else capacity // 2
        )
        self.low_watermark = (
            low_watermark if low_watermark is not None else capacity // 4
        )
        if not 0 < self.low_watermark < self.high_watermark <= capacity:
            raise ValueError(
                f"watermarks must satisfy 0 < low < high <= capacity, got "
                f"low={self.low_watermark} high={self.high_watermark}"
            )
        self._cond = threading.Condition()
        self._subs: set[Subscription] = set()
        #: jobs currently held back by a saturated subscriber
        self._throttled: set[str] = set()
        self.events_published = 0
        #: publishes that landed in an over-watermark buffer
        self.stalls = 0

    def subscribe(self, job_id: str | None = None,
                  capacity: int | None = None) -> Subscription:
        """New subscription (``job_id=None`` receives every job)."""
        sub = Subscription(
            self, job_id, capacity if capacity is not None else self.capacity
        )
        with self._cond:
            self._subs.add(sub)
        return sub

    def publish(self, event: StreamEvent) -> None:
        """Deliver to every matching subscription (never drops)."""
        with self._cond:
            self.events_published += 1
            for sub in self._subs:
                if sub._matches(event):
                    sub._buf.append(event)
                    if len(sub._buf) > self.high_watermark:
                        self.stalls += 1
            self._cond.notify_all()

    def should_throttle(self, job_id: str) -> bool:
        """True while the job's task release should be held back.

        Hysteresis: engages when any matching subscription is above the
        high watermark, releases only once all are at or below the low
        watermark.
        """
        with self._cond:
            depth = max(
                (
                    len(sub._buf) for sub in self._subs
                    if sub.job_id is None or sub.job_id == job_id
                ),
                default=0,
            )
            if job_id in self._throttled:
                if depth <= self.low_watermark:
                    self._throttled.discard(job_id)
                    return False
                return True
            if depth > self.high_watermark:
                self._throttled.add(job_id)
                return True
            return False

    def stats(self) -> dict:
        """Counters snapshot."""
        with self._cond:
            return {
                "events_published": self.events_published,
                "stalls": self.stalls,
                "subscriptions": len(self._subs),
                "throttled_jobs": sorted(self._throttled),
            }
