"""AIMD-as-a-service: multi-tenant streaming trajectory serving.

The single-run drivers (`repro.md.aimd.run_aimd`, `repro.md.drivers`)
execute one trajectory per invocation, so the warm layers — SCF guess
densities, integral workspace products, GEMM winner tables — amortize
over exactly one job. This package turns the same coordinator state
machine into a service: declarative `JobSpec` submissions, a fair-share
`FragmentScheduler` multiplexing every active job's fragment tasks onto
one worker pool, per-step results streamed through a backpressured
`ResultChannel`, and per-job crash-safe resume from rotated
checkpoints. See docs/SERVICE.md for the protocol.
"""

from .scheduler import FragmentScheduler, task_cost
from .service import JobQueue, TrajectoryService
from .session import (
    JobSpec,
    JobState,
    TrajectoryJob,
    build_calculator,
    build_system,
    build_thermostat,
)
from .streams import ResultChannel, StreamEvent, Subscription

__all__ = [
    "FragmentScheduler",
    "JobQueue",
    "JobSpec",
    "JobState",
    "ResultChannel",
    "StreamEvent",
    "Subscription",
    "TrajectoryJob",
    "TrajectoryService",
    "build_calculator",
    "build_system",
    "build_thermostat",
    "task_cost",
]
