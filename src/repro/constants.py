"""Physical constants and unit conversions used throughout the package.

All internal computation is in Hartree atomic units (energies in Hartree,
lengths in Bohr, masses in electron masses unless noted). Conversion
factors follow CODATA 2018.
"""

from __future__ import annotations

# --- length ---------------------------------------------------------------
BOHR_PER_ANGSTROM: float = 1.0 / 0.529177210903
ANGSTROM_PER_BOHR: float = 0.529177210903

# --- energy ---------------------------------------------------------------
HARTREE_PER_KJMOL: float = 1.0 / 2625.4996394799
KJMOL_PER_HARTREE: float = 2625.4996394799
KCALMOL_PER_HARTREE: float = 627.5094740631
EV_PER_HARTREE: float = 27.211386245988

# --- mass -----------------------------------------------------------------
# Atomic mass unit (Dalton) expressed in electron masses.
AMU_PER_ELECTRON_MASS: float = 1.0 / 1822.888486209
ELECTRON_MASS_PER_AMU: float = 1822.888486209

# --- time -----------------------------------------------------------------
# One atomic unit of time in femtoseconds.
FS_PER_AU_TIME: float = 0.02418884326509
AU_TIME_PER_FS: float = 1.0 / FS_PER_AU_TIME

# --- thermodynamics -------------------------------------------------------
KB_HARTREE_PER_K: float = 3.166811563e-6  # Boltzmann constant, Eh/K

# Gradient convergence threshold commonly used for geometry optimization;
# the paper adopts an MBE gradient RMSD below this value as "accurate".
GRADIENT_RMSD_THRESHOLD: float = 1.0e-4  # Hartree/Bohr

# Energy contribution screening threshold used for the paper's polymer
# cutoff determination (Fig. 5): |dE| < 0.1 kJ/mol is negligible.
POLYMER_SCREEN_KJMOL: float = 0.1
