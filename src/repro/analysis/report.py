"""Plain-text table rendering for benchmark outputs."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table (the benchmarks' output format)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_quantity(value: float, digits: int = 3) -> str:
    """Human-friendly numeric formatting for mixed-magnitude tables."""
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-3:
        return f"{value:.{digits}e}"
    return f"{value:.{digits}g}"
