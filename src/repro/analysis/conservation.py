"""Energy-conservation diagnostics for NVE trajectories (paper Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import KJMOL_PER_HARTREE


@dataclass
class ConservationReport:
    """Summary statistics of total-energy conservation."""

    nsteps: int
    mean_total: float
    drift_hartree_per_fs: float
    rms_fluctuation_hartree: float
    max_deviation_hartree: float

    @property
    def rms_fluctuation_kjmol(self) -> float:
        return self.rms_fluctuation_hartree * KJMOL_PER_HARTREE

    def conserved(self, max_drift: float = 1e-5, max_rms: float = 1e-3) -> bool:
        """Loose pass/fail for automated checks."""
        return (
            abs(self.drift_hartree_per_fs) < max_drift
            and self.rms_fluctuation_hartree < max_rms
        )


def analyze_conservation(
    times_fs: np.ndarray, potential: np.ndarray, kinetic: np.ndarray
) -> ConservationReport:
    """Drift (linear fit) and fluctuation of the total energy."""
    t = np.asarray(times_fs, dtype=float)
    tot = np.asarray(potential, dtype=float) + np.asarray(kinetic, dtype=float)
    drift = float(np.polyfit(t, tot, 1)[0]) if len(t) > 1 else 0.0
    return ConservationReport(
        nsteps=len(t),
        mean_total=float(tot.mean()),
        drift_hartree_per_fs=drift,
        rms_fluctuation_hartree=float(np.sqrt(np.mean((tot - tot.mean()) ** 2))),
        max_deviation_hartree=float(np.abs(tot - tot[0]).max()),
    )
