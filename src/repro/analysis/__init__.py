"""Trajectory analysis, populations, spectra, landscape, reports."""

from .conservation import ConservationReport, analyze_conservation
from .mbe_report import MBEDecomposition, mbe_decomposition
from .population import mulliken_charges, mulliken_mp2_charges
from .spectra import (
    dominant_frequency_cm1,
    velocity_autocorrelation,
    vibrational_spectrum,
)
from .landscape import (
    TABLE_II,
    THEORY_ERRORS,
    LandscapeEntry,
    largest_by_level,
    size_advantage_of_this_work,
)
from .report import format_quantity, format_table
from .scaling import speedup_percent, strong_scaling_table, weak_scaling_efficiencies

__all__ = [
    "ConservationReport",
    "LandscapeEntry",
    "TABLE_II",
    "THEORY_ERRORS",
    "MBEDecomposition",
    "analyze_conservation",
    "dominant_frequency_cm1",
    "mbe_decomposition",
    "mulliken_charges",
    "mulliken_mp2_charges",
    "velocity_autocorrelation",
    "vibrational_spectrum",
    "format_quantity",
    "format_table",
    "speedup_percent",
    "strong_scaling_table",
    "weak_scaling_efficiencies",
    "largest_by_level",
    "size_advantage_of_this_work",
]
