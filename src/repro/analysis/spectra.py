"""Vibrational density of states from MD trajectories (VACF spectrum).

The Fourier transform of the velocity autocorrelation function gives
the vibrational density of states — the dynamical observable AIMD
trajectories are usually harvested for, connecting the MD layer to the
static normal-mode analysis in `repro.vibrations`.
"""

from __future__ import annotations

import numpy as np

def velocity_autocorrelation(
    velocities: np.ndarray,
    max_lag: int | None = None,
    masses: np.ndarray | None = None,
) -> np.ndarray:
    """Normalized VACF ``C(t) = <v(0).v(t)> / <v(0).v(0)>``.

    Args:
        velocities: ``(nframes, natoms, 3)`` array.
        max_lag: number of lags (default: nframes // 2).
        masses: optional per-atom masses for the mass-weighted VACF
            (the standard VDOS weighting).
    """
    v = np.asarray(velocities, dtype=float)
    if masses is not None:
        v = v * np.sqrt(np.asarray(masses, dtype=float))[None, :, None]
    nframes = v.shape[0]
    if max_lag is None:
        max_lag = nframes // 2
    flat = v.reshape(nframes, -1)
    c = np.empty(max_lag)
    for lag in range(max_lag):
        c[lag] = float(np.mean(np.sum(flat[: nframes - lag] * flat[lag:], axis=1)))
    if c[0] == 0.0:
        return c
    return c / c[0]


def vibrational_spectrum(
    velocities: np.ndarray,
    dt_fs: float,
    max_lag: int | None = None,
    masses: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Power spectrum of the (optionally mass-weighted) VACF.

    Returns ``(frequencies_cm1, intensities)`` with a Hann window applied
    to suppress truncation ripple.
    """
    c = velocity_autocorrelation(velocities, max_lag=max_lag, masses=masses)
    n = len(c)
    window = np.hanning(2 * n)[n:]
    spec = np.abs(np.fft.rfft(c * window))
    freqs_per_fs = np.fft.rfftfreq(n, d=dt_fs)
    # nu[1/fs] -> cm^-1:  nu / c  with c = 2.99792458e-5 cm/fs
    freqs_cm1 = freqs_per_fs / 2.99792458e-5
    return freqs_cm1, spec


def dominant_frequency_cm1(
    velocities: np.ndarray,
    dt_fs: float,
    f_min_cm1: float = 100.0,
    masses: np.ndarray | None = None,
) -> float:
    """Location of the strongest vibrational peak above ``f_min_cm1``."""
    freqs, spec = vibrational_spectrum(velocities, dt_fs, masses=masses)
    mask = freqs > f_min_cm1
    if not mask.any():
        raise ValueError("no spectral points above the frequency floor")
    return float(freqs[mask][np.argmax(spec[mask])])
