"""Many-body decomposition reporting: per-order energy breakdown.

Splits an MBE energy into its one-, two- and three-body totals — the
quantity Fig. 5 aggregates and the standard diagnostic for whether MBE3
has converged for a system (paper Sec. V-B: 2 kJ/mol/monomer requires
three-body terms).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import KJMOL_PER_HARTREE
from ..frag.mbe import MBEPlan, build_plan
from ..frag.monomer import FragmentedSystem
from .report import format_table


@dataclass
class MBEDecomposition:
    """Energy totals per many-body order (Hartree)."""

    one_body: float
    two_body: float
    three_body: float
    ndimers: int
    ntrimers: int

    @property
    def total(self) -> float:
        return self.one_body + self.two_body + self.three_body

    def table(self, nmonomers: int) -> str:
        """Render the decomposition in the paper's kJ/mol/monomer units."""
        rows = [
            ("1-body (monomers)", f"{self.one_body:.8f}", "-"),
            ("2-body (dimer corr.)", f"{self.two_body:.8f}",
             f"{self.two_body * KJMOL_PER_HARTREE / nmonomers:.3f}"),
            ("3-body (trimer corr.)", f"{self.three_body:.8f}",
             f"{self.three_body * KJMOL_PER_HARTREE / nmonomers:.3f}"),
            ("total", f"{self.total:.8f}", "-"),
        ]
        return format_table(
            ["order", "energy (Ha)", "kJ/mol per monomer"], rows,
            title=(
                f"MBE decomposition ({nmonomers} monomers, "
                f"{self.ndimers} dimers, {self.ntrimers} trimers)"
            ),
        )


def mbe_decomposition(
    system: FragmentedSystem,
    calculator,
    r_dimer_bohr: float,
    r_trimer_bohr: float | None = None,
    order: int = 3,
) -> MBEDecomposition:
    """Evaluate the MBE and return its per-order energy breakdown.

    Fragment energies are computed once and combined into
    ``sum E_I``, ``sum dE_IJ`` and ``sum dE_IJK``.
    """
    plan: MBEPlan = build_plan(
        system, r_dimer_bohr, r_trimer_bohr if order >= 3 else None,
        order=order,
    )
    cache: dict[tuple[int, ...], float] = {}

    def e(key: tuple[int, ...]) -> float:
        if key not in cache:
            mol, _, _ = system.fragment_molecule(key)
            if hasattr(calculator, "energy"):
                cache[key] = calculator.energy(mol)
            else:
                cache[key] = calculator.energy_gradient(mol)[0]
        return cache[key]

    one = sum(e((m,)) for m in range(system.nmonomers))
    two = sum(e((i, j)) - e((i,)) - e((j,)) for i, j in plan.dimers)
    three = 0.0
    for i, j, k in plan.trimers:
        three += (
            e((i, j, k))
            - e((i, j)) - e((i, k)) - e((j, k))
            + e((i,)) + e((j,)) + e((k,))
        )
    return MBEDecomposition(
        one_body=one, two_body=two, three_body=three,
        ndimers=len(plan.dimers), ntrimers=len(plan.trimers),
    )
