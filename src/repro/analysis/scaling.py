"""Scaling-study post-processing: efficiency tables from simulator runs."""

from __future__ import annotations

from collections.abc import Sequence

from .report import format_table


def strong_scaling_table(
    node_counts: Sequence[int],
    times_per_step_s: Sequence[float],
    title: str = "strong scaling",
) -> str:
    """Render times into the paper's Fig. 7 style with efficiencies."""
    base_n, base_t = node_counts[0], times_per_step_s[0]
    rows = []
    for n, t in zip(node_counts, times_per_step_s):
        speedup = base_t / t
        eff = speedup / (n / base_n)
        rows.append((n, f"{t:.3f}", f"{speedup:.2f}x", f"{100 * eff:.0f}%"))
    return format_table(
        ["nodes", "s/step", "speedup", "parallel eff."], rows, title=title
    )


def weak_scaling_efficiencies(
    work_per_worker: Sequence[float], times_per_step_s: Sequence[float]
) -> list[float]:
    """Work-throughput-per-worker efficiencies relative to the first
    point (reduces to t0/t when the workload match is exact)."""
    base = work_per_worker[0] / times_per_step_s[0]
    return [
        (w / t) / base for w, t in zip(work_per_worker, times_per_step_s)
    ]


def speedup_percent(t_slow: float, t_fast: float) -> float:
    """The paper's speedup convention: (slow/fast - 1) * 100."""
    return (t_slow / t_fast - 1.0) * 100.0
