"""Mulliken population analysis from SCF/relaxed densities."""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..scf.rhf import SCFResult


def mulliken_charges(res: "SCFResult", density: np.ndarray | None = None) -> np.ndarray:
    """Mulliken atomic partial charges ``q_A = Z_A - sum_{mu in A} (DS)_mumu``.

    Args:
        res: converged SCF result (supplies basis, overlap, Z).
        density: optional density override (e.g. SCF + MP2 relaxed); the
            occupation-2 SCF density by default.

    Returns:
        charges, shape ``(natoms,)``; they sum to the molecular charge.
    """
    D = res.D if density is None else density
    PS = D @ res.S
    pops = np.diag(PS)
    atoms = res.basis.function_atoms()
    q = res.mol.atomic_numbers.astype(float)
    for mu, a in enumerate(atoms):
        q[a] -= pops[mu]
    return q


def mulliken_mp2_charges(res: "SCFResult") -> np.ndarray:
    """Mulliken charges from the MP2 *relaxed* density (SCF + response)."""
    from ..mp2.rimp2_grad import mp2_correction_coefficients

    cc = mp2_correction_coefficients(res)
    return mulliken_charges(res, density=res.D + cc.Pc_ao)
