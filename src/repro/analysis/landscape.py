"""The accuracy-vs-size landscape of Fig. 1 / Table II.

Encodes the paper's survey of the largest static and AIMD calculations
at each level of theory (Table II, with the references cited there) and
representative isomerization-energy errors per theory tier (Fig. 1's
y-axis, from Grimme et al. 2007 [ref 7 of the paper]). The benchmark
`bench_fig1_landscape` re-renders the figure's content as a table and
places this work's systems on it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LandscapeEntry:
    """One point of the Fig. 1 landscape."""

    level: str
    kind: str  # "static" | "aimd"
    system: str
    electrons: int
    basis: str
    error_kjmol_per_atom: float
    reference: str


#: Representative average isomerization-energy errors (kJ/mol per atom)
#: per theory tier, following the spread shown in Fig. 1 (values derived
#: from Grimme, Steinmetz & Korth, J. Org. Chem. 72, 2118 (2007)).
THEORY_ERRORS = {
    "DFT(LDA/GGA)/HF": 1.40,
    "DFT (Hybrid)": 0.55,
    "MP2": 0.18,
    "CC": 0.04,
}

#: Table II of the paper, verbatim.
TABLE_II: tuple[LandscapeEntry, ...] = (
    LandscapeEntry("DFT(LDA/GGA)/HF", "static", "Bulk silicon", 14_000_000,
                   "Planewave", THEORY_ERRORS["DFT(LDA/GGA)/HF"], "Nakata 2020 [8]"),
    LandscapeEntry("DFT(LDA/GGA)/HF", "aimd", "Bulk methanol", 18_432,
                   "MOLOPT-DZVP-SR-GTH", THEORY_ERRORS["DFT(LDA/GGA)/HF"],
                   "Taherivardanjani 2022 [9]"),
    LandscapeEntry("DFT (Hybrid)", "static", "Bulk water", 101_920, "-",
                   THEORY_ERRORS["DFT (Hybrid)"], "Kokott 2024 [10]"),
    LandscapeEntry("DFT (Hybrid)", "aimd", "Bulk water", 2_560, "Planewave",
                   THEORY_ERRORS["DFT (Hybrid)"], "Ko 2020 [11]"),
    LandscapeEntry("MP2", "static", "Ionic liquid cluster", 623_016, "cc-pVDZ",
                   THEORY_ERRORS["MP2"], "Barca 2022 [12]"),
    LandscapeEntry("MP2", "static", "Urea cluster", 2_043_328, "cc-pVDZ",
                   THEORY_ERRORS["MP2"], "This work"),
    LandscapeEntry("MP2", "aimd", "Bulk water", 1_400, "aug-cc-pVDZ",
                   THEORY_ERRORS["MP2"], "Liu 2017 [13]"),
    LandscapeEntry("MP2", "aimd", "Urea cluster", 2_043_328, "cc-pVDZ",
                   THEORY_ERRORS["MP2"], "This work"),
    LandscapeEntry("CC", "static", "Lipid transfer protein", 3_980, "def2-QZVP",
                   THEORY_ERRORS["CC"], "Nagy 2019 [14]"),
    LandscapeEntry("CC", "aimd", "Bulk water", 1_400, "aug-cc-pVDZ",
                   THEORY_ERRORS["CC"], "Liu 2018 [15]"),
)


def largest_by_level(kind: str) -> dict[str, LandscapeEntry]:
    """Largest system per theory level for static or AIMD calculations."""
    out: dict[str, LandscapeEntry] = {}
    for e in TABLE_II:
        if e.kind != kind:
            continue
        if e.level not in out or e.electrons > out[e.level].electrons:
            out[e.level] = e
    return out


def size_advantage_of_this_work() -> float:
    """Factor by which this work's AIMD exceeds the previous largest at
    MP2-level accuracy (the paper's '>1000x larger' claim)."""
    prev = max(
        e.electrons for e in TABLE_II
        if e.kind == "aimd" and e.level == "MP2" and e.reference != "This work"
    )
    ours = max(
        e.electrons for e in TABLE_II
        if e.kind == "aimd" and e.reference == "This work"
    )
    return ours / prev
