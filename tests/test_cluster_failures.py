"""Failure-aware campaigns: node MTBF models, Young-Daly economics,
and seeded node failures in the event simulator."""

from __future__ import annotations

import random

import pytest

from repro.cluster import (
    FRONTIER,
    PERLMUTTER,
    NodeFailureModel,
    NodeMix,
    expected_makespan,
    failure_adjusted_efficiency,
    optimal_interval,
    replay_campaign,
    simulate_aimd,
    simulate_workload,
    urea_workload,
    young_daly_interval,
)
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import FragmentedSystem
from repro.systems import water_cluster

HOUR = 3600.0


class TestNodeFailureModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="mtbf_hours"):
            NodeFailureModel(mtbf_hours=0.0)
        with pytest.raises(ValueError, match="distribution"):
            NodeFailureModel(mtbf_hours=1.0, distribution="levy")
        with pytest.raises(ValueError, match="weibull_shape"):
            NodeFailureModel(mtbf_hours=1.0, weibull_shape=-1.0)

    def test_from_machine_uses_rated_mtbf(self):
        m = NodeFailureModel.from_machine(FRONTIER)
        assert m.mtbf_hours == FRONTIER.node_mtbf_hours
        assert m.mtbf_s == FRONTIER.node_mtbf_hours * HOUR

    def test_system_mtbf_compounds_linearly(self):
        m = NodeFailureModel(mtbf_hours=40000.0)
        assert m.system_mtbf_s(1) == m.mtbf_s
        assert m.system_mtbf_s(9408) == pytest.approx(m.mtbf_s / 9408)
        # the paper-scale allocation: system MTBF of a few hours
        assert 3.0 * HOUR < m.system_mtbf_s(9408) < 6.0 * HOUR

    @pytest.mark.parametrize("dist", ["exponential", "weibull"])
    def test_mean_uptime_matches_mtbf(self, dist):
        """Weibull scale is solved from the mean, so both laws are
        comparable at equal MTBF."""
        m = NodeFailureModel(mtbf_hours=2.0, distribution=dist)
        rng = random.Random(1)
        n = 4000
        mean = sum(m.draw_uptime(rng) for _ in range(n)) / n
        assert mean == pytest.approx(m.mtbf_s, rel=0.1)

    def test_weibull_low_shape_has_more_short_uptimes(self):
        """Decreasing hazard (shape < 1): infant mortality shows up as a
        heavier mass of short uptimes at the same mean."""
        exp = NodeFailureModel(mtbf_hours=1.0)
        wei = NodeFailureModel(mtbf_hours=1.0, distribution="weibull",
                               weibull_shape=0.7)
        rng_e, rng_w = random.Random(2), random.Random(2)
        n = 4000
        cut = 0.1 * exp.mtbf_s
        short_e = sum(exp.draw_uptime(rng_e) < cut for _ in range(n))
        short_w = sum(wei.draw_uptime(rng_w) < cut for _ in range(n))
        assert short_w > short_e


class TestNodeMix:
    def test_speeds_fill_with_nominal(self):
        mix = NodeMix(groups=((2, 0.5), (1, 2.0)))
        assert mix.speeds(5) == [0.5, 0.5, 2.0, 1.0, 1.0]
        assert mix.speeds(2) == [0.5, 0.5]
        assert mix.mean_speed(5) == pytest.approx((0.5 * 2 + 2.0 + 2.0) / 5)

    def test_validation(self):
        with pytest.raises(ValueError, match="node-mix group"):
            NodeMix(groups=((2, -1.0),))


class TestYoungDaly:
    # the ISSUE's acceptance scenario: Frontier-like system MTBF at
    # 9,408 nodes, a 60 s checkpoint, a 4x 3.16 h production campaign
    M = 4.25 * HOUR
    DELTA = 60.0
    W = 4 * 3.16 * HOUR
    R = 120.0

    def test_interval_formula(self):
        assert young_daly_interval(self.M, self.DELTA) == pytest.approx(
            (2 * self.DELTA * self.M) ** 0.5
        )
        with pytest.raises(ValueError):
            young_daly_interval(-1.0, 1.0)

    def test_expected_makespan_failure_free_limit(self):
        """As MTBF -> inf the Daly formula reduces to W (1 + delta/tau)."""
        tau = 1800.0
        span = expected_makespan(self.W, 1e12, tau, self.DELTA)
        assert span == pytest.approx(
            self.W * (1 + self.DELTA / tau), rel=1e-6
        )

    def test_makespan_minimized_near_young_daly(self):
        tau_yd = young_daly_interval(self.M, self.DELTA)
        at_opt = expected_makespan(self.W, self.M, tau_yd, self.DELTA,
                                   self.R)
        assert at_opt > self.W
        for off in (tau_yd / 4, tau_yd * 4):
            assert expected_makespan(
                self.W, self.M, off, self.DELTA, self.R
            ) > at_opt

    def test_analytic_optimum_agrees_with_young_daly(self):
        tau_yd = young_daly_interval(self.M, self.DELTA)
        best, result = optimal_interval(
            self.W, self.M, self.DELTA, self.R, method="analytic"
        )
        assert 0.8 < best / tau_yd < 1.25
        assert result.efficiency < 1.0

    def test_replayed_optimum_agrees_with_young_daly(self):
        """The ISSUE acceptance criterion: the *empirically* best
        interval from the seeded Monte-Carlo replay lands within 20%
        of the Young-Daly estimate."""
        tau_yd = young_daly_interval(self.M, self.DELTA)
        best, result = optimal_interval(
            self.W, self.M, self.DELTA, self.R, method="replay",
            seed=0, replicas=16,
        )
        assert 0.8 < best / tau_yd < 1.25
        assert result.failures > 0


class TestReplayCampaign:
    def test_reproducible_and_seed_sensitive(self):
        kw = dict(work_s=10 * HOUR, mtbf_s=2 * HOUR, interval_s=1800.0,
                  checkpoint_cost_s=30.0, restart_cost_s=60.0,
                  downtime_s=120.0, replicas=8)
        a = replay_campaign(seed=3, **kw)
        b = replay_campaign(seed=3, **kw)
        c = replay_campaign(seed=4, **kw)
        assert a.samples == b.samples
        assert a.makespan_s == b.makespan_s
        assert a.samples != c.samples

    def test_failure_free_campaign_pays_only_checkpoints(self):
        r = replay_campaign(work_s=HOUR, mtbf_s=1e15, interval_s=600.0,
                            checkpoint_cost_s=10.0, replicas=2)
        assert r.failures == 0
        # 6 segments, the last is not sealed
        assert r.makespan_s == pytest.approx(HOUR + 2 * 5 * 10.0 / 2)
        assert 0.9 < r.efficiency < 1.0

    def test_failures_account_lost_work_and_downtime(self):
        r = replay_campaign(work_s=4 * HOUR, mtbf_s=0.5 * HOUR,
                            interval_s=900.0, checkpoint_cost_s=15.0,
                            restart_cost_s=60.0, downtime_s=300.0,
                            seed=1, replicas=4)
        assert r.failures > 0
        assert r.lost_work_s > 0
        assert r.downtime_s == pytest.approx(300.0 * r.failures)
        assert r.restart_overhead_s == pytest.approx(60.0 * r.failures)
        assert r.makespan_s > 4 * HOUR
        assert 0.0 < r.efficiency < 1.0

    def test_node_model_compounding(self):
        """Drawing from a per-node model over n nodes fails roughly n
        times as often as one node."""
        model = NodeFailureModel(mtbf_hours=100.0)
        one = replay_campaign(work_s=10 * HOUR, mtbf_s=model.mtbf_s,
                              interval_s=HOUR, checkpoint_cost_s=10.0,
                              model=model, nnodes=1, seed=5, replicas=8)
        many = replay_campaign(work_s=10 * HOUR, mtbf_s=model.mtbf_s,
                               interval_s=HOUR, checkpoint_cost_s=10.0,
                               model=model, nnodes=64, seed=5, replicas=8)
        assert many.failures > one.failures


class TestFailureAdjustedEfficiency:
    @pytest.fixture(scope="class")
    def projection(self):
        stats = urea_workload(2000)
        return simulate_workload(stats, FRONTIER, 512, nsteps=3)

    def test_bounded_and_optimal_beats_bad_interval(self, projection):
        model = NodeFailureModel(mtbf_hours=40000.0)
        eff = failure_adjusted_efficiency(
            projection, model, checkpoint_cost_s=60.0,
            restart_cost_s=120.0, nsteps_total=500,
        )
        assert 0.0 < eff < 1.0
        tau_yd = young_daly_interval(
            model.system_mtbf_s(projection.nodes), 60.0
        )
        bad = failure_adjusted_efficiency(
            projection, model, checkpoint_cost_s=60.0,
            restart_cost_s=120.0, nsteps_total=500,
            interval_s=tau_yd / 20,
        )
        assert bad < eff


class TestFailureSimulator:
    """Seeded node failures inside the event-driven simulator."""

    @pytest.fixture(scope="class")
    def system(self):
        return FragmentedSystem.by_components(water_cluster(4, seed=2))

    def _sim(self, system, **kw):
        return simulate_aimd(
            system, PERLMUTTER, 2, 3,
            r_dimer_bohr=15 * BOHR_PER_ANGSTROM,
            r_trimer_bohr=None, mbe_order=2, **kw,
        )

    def test_clean_run_has_no_failure_accounting(self, system):
        r = self._sim(system)
        assert r.failures == 0
        assert r.replayed_tasks == 0
        assert r.lost_work_s == 0.0
        assert r.ckpt_writes == 0

    def test_failures_replay_lost_tasks_and_finish(self, system):
        model = NodeFailureModel(mtbf_hours=5e-8)  # sub-second uptimes
        r = self._sim(system, failure_model=model, failure_seed=5,
                      restart_cost_s=0.001, downtime_s=0.002)
        clean = self._sim(system)
        assert r.failures > 0
        assert r.node_downtime_s > 0
        assert r.total_time_s > clean.total_time_s
        # every step still retires: lost tasks were replayed
        assert len(r.step_finish_s) == len(clean.step_finish_s)

    def test_failure_runs_reproducible_and_seed_sensitive(self, system):
        model = NodeFailureModel(mtbf_hours=5e-8)
        kw = dict(failure_model=model, restart_cost_s=0.001,
                  downtime_s=0.002)
        a = self._sim(system, failure_seed=5, **kw)
        b = self._sim(system, failure_seed=5, **kw)
        c = self._sim(system, failure_seed=6, **kw)
        assert (a.total_time_s, a.failures, a.replayed_tasks,
                a.lost_work_s) == (b.total_time_s, b.failures,
                                   b.replayed_tasks, b.lost_work_s)
        assert (a.total_time_s, a.failures) != (c.total_time_s, c.failures)

    def test_checkpoint_writes_stall_the_coordinator(self, system):
        r = self._sim(system, checkpoint_interval_s=0.0001,
                      checkpoint_cost_s=0.00002)
        clean = self._sim(system)
        assert r.ckpt_writes > 0
        assert r.ckpt_overhead_s == pytest.approx(
            r.ckpt_writes * 0.00002
        )
        assert r.total_time_s >= clean.total_time_s

    def test_checkpoint_cost_defaults_from_cost_model(self, system):
        # checkpoint_cost_s=None sizes the write from the system's atom
        # count through FragmentCostModel.checkpoint_cost_s; for this
        # tiny system the default cost dwarfs the interval, which must
        # degrade throughput, not livelock
        r = self._sim(system, checkpoint_interval_s=0.0001)
        assert r.ckpt_writes >= 1
        assert r.ckpt_overhead_s > 0
        assert r.total_time_s > 0.4  # dominated by the ~0.5 s default write

    def test_node_mix_slows_the_run(self, system):
        slow = self._sim(system, node_mix=NodeMix(groups=((2, 0.25),)))
        clean = self._sim(system)
        assert slow.node_speeds == [0.25, 0.25]
        assert slow.total_time_s > clean.total_time_s

    def test_failures_with_checkpoints_and_mix_compose(self, system):
        model = NodeFailureModel(mtbf_hours=5e-8, distribution="weibull")
        r = self._sim(system, failure_model=model, failure_seed=7,
                      restart_cost_s=0.001, downtime_s=0.002,
                      checkpoint_interval_s=0.0001,
                      checkpoint_cost_s=0.00002,
                      node_mix=NodeMix(groups=((1, 0.5),)))
        assert r.failures > 0
        assert r.ckpt_writes > 0
        assert len(r.step_finish_s) == 4
