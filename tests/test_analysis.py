"""Analysis utilities: conservation metrics, landscape data, tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    TABLE_II,
    analyze_conservation,
    format_quantity,
    format_table,
    largest_by_level,
    size_advantage_of_this_work,
)


class TestConservation:
    def test_flat_trajectory(self):
        t = np.arange(10.0)
        pe = -np.ones(10)
        ke = np.ones(10) * 0.5
        rep = analyze_conservation(t, pe, ke)
        assert rep.drift_hartree_per_fs == pytest.approx(0.0, abs=1e-14)
        assert rep.rms_fluctuation_hartree == pytest.approx(0.0, abs=1e-14)
        assert rep.conserved()

    def test_drifting_trajectory(self):
        t = np.arange(100.0)
        tot = 1e-4 * t
        rep = analyze_conservation(t, tot, np.zeros(100))
        assert rep.drift_hartree_per_fs == pytest.approx(1e-4, rel=1e-9)
        assert not rep.conserved()

    def test_oscillating_trajectory(self):
        t = np.linspace(0, 10, 200)
        tot = 1e-4 * np.sin(t * 7)
        rep = analyze_conservation(t, tot, np.zeros_like(t))
        assert abs(rep.drift_hartree_per_fs) < 2e-5
        assert rep.rms_fluctuation_hartree == pytest.approx(1e-4 / np.sqrt(2), rel=0.1)

    def test_kjmol_conversion(self):
        rep = analyze_conservation(
            np.arange(3.0), np.array([0.0, 1e-3, 0.0]), np.zeros(3)
        )
        assert rep.rms_fluctuation_kjmol == pytest.approx(
            rep.rms_fluctuation_hartree * 2625.4996, rel=1e-6
        )


class TestLandscape:
    def test_this_work_is_largest_mp2(self):
        largest = largest_by_level("aimd")
        assert largest["MP2"].reference == "This work"
        assert largest["MP2"].electrons == 2_043_328

    def test_size_advantage_over_1000x(self):
        assert size_advantage_of_this_work() > 1000.0

    def test_accuracy_ordering(self):
        errs = {e.level: e.error_kjmol_per_atom for e in TABLE_II}
        assert errs["CC"] < errs["MP2"] < errs["DFT (Hybrid)"] < errs["DFT(LDA/GGA)/HF"]

    def test_static_larger_than_aimd_per_level(self):
        static = largest_by_level("static")
        aimd = largest_by_level("aimd")
        for level in ("DFT(LDA/GGA)/HF", "DFT (Hybrid)", "CC"):
            assert static[level].electrons > aimd[level].electrons


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # aligned widths

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_format_quantity(self):
        assert format_quantity(0) == "0"
        assert "e" in format_quantity(1.23e7)
        assert format_quantity(3.14159) == "3.14"


class TestScalingHelpers:
    def test_strong_scaling_table(self):
        from repro.analysis import strong_scaling_table

        out = strong_scaling_table([1, 2, 4], [8.0, 4.0, 2.5])
        assert "100%" in out
        assert "80%" in out  # 8/2.5 = 3.2x on 4 nodes

    def test_weak_efficiencies(self):
        from repro.analysis import weak_scaling_efficiencies

        effs = weak_scaling_efficiencies([1.0, 1.0, 2.0], [1.0, 1.25, 2.0])
        assert effs[0] == 1.0
        assert effs[1] == 0.8
        assert effs[2] == 1.0

    def test_speedup_percent(self):
        from repro.analysis import speedup_percent

        assert speedup_percent(3.0, 2.27) == pytest.approx(32.16, abs=0.1)
