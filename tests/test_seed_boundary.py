"""Cross-tenant seed store of `GuessCache` at the seed_tol_bohr boundary.

The seed store answers another tenant's first solve of a
same-composition fragment with the latest converged density — but only
when every atom of the stored geometry lies within ``seed_tol_bohr`` of
the requested one.  These tests pin the boundary semantics exactly:
serve at the tolerance, refuse just past it, and never serve across
composition keys or atom-count changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import GuessCache

SEED_KEY = ("H", "H", "O")
TOL = 0.5


@pytest.fixture
def cache():
    c = GuessCache(seed_tol_bohr=TOL)
    coords = np.zeros((3, 3))
    c.put(("jobA", 0), np.eye(4), natoms=3, seed_key=SEED_KEY,
          coords=coords)
    return c


def _get(cache, coords, seed_key=SEED_KEY, natoms=3, key=("jobB", 5)):
    return cache.get(key, natoms=natoms, seed_key=seed_key, coords=coords)


class TestSeedBoundary:
    def test_serves_inside_tolerance(self, cache):
        coords = np.zeros((3, 3))
        coords[1, 0] = 0.9 * TOL
        D = _get(cache, coords)
        np.testing.assert_array_equal(D, np.eye(4))
        assert cache.seed_hits == 1
        assert cache.tenant_stats["jobB"]["seed_hits"] == 1

    def test_serves_exactly_at_tolerance(self, cache):
        """The boundary itself is inclusive: displacement == tol serves
        (the check is ``displacement > seed_tol_bohr``)."""
        coords = np.zeros((3, 3))
        coords[2, 1] = TOL
        assert _get(cache, coords) is not None

    def test_refuses_just_past_tolerance(self, cache):
        coords = np.zeros((3, 3))
        coords[2, 1] = np.nextafter(TOL, np.inf)
        assert _get(cache, coords) is None
        assert cache.seed_hits == 0
        assert cache.misses == 1

    def test_max_norm_not_mean(self, cache):
        """One atom past the tolerance refuses even when the average
        displacement is tiny — the check is per-atom (max), not RMS."""
        coords = np.zeros((3, 3))
        coords[0, 2] = 1.5 * TOL
        assert _get(cache, coords) is None

    def test_never_crosses_composition(self, cache):
        assert _get(cache, np.zeros((3, 3)), seed_key=("H", "H")) is None

    def test_natoms_mismatch_refuses(self, cache):
        assert _get(cache, np.zeros((3, 3)), natoms=4) is None

    def test_shape_mismatch_refuses(self, cache):
        assert _get(cache, np.zeros((4, 3)), natoms=None) is None

    def test_newest_seed_wins(self, cache):
        """A later put of the same composition replaces the stored seed
        geometry; the old geometry no longer serves."""
        far = np.full((3, 3), 10.0)
        cache.put(("jobC", 2), 2.0 * np.eye(4), natoms=3,
                  seed_key=SEED_KEY, coords=far)
        assert _get(cache, np.zeros((3, 3))) is None
        D = _get(cache, far + 0.5 * TOL)
        np.testing.assert_array_equal(D, 2.0 * np.eye(4))

    def test_disabled_cache_never_seeds(self):
        c = GuessCache(seed_tol_bohr=TOL, enabled=False)
        c.put(("jobA", 0), np.eye(4), natoms=3, seed_key=SEED_KEY,
              coords=np.zeros((3, 3)))
        assert _get(c, np.zeros((3, 3))) is None

    def test_own_history_preferred_over_seed(self, cache):
        """A tenant with its own converged history never falls through
        to the seed store."""
        own = 3.0 * np.eye(4)
        cache.put(("jobB", 5), own, natoms=3)
        D = _get(cache, np.zeros((3, 3)))
        np.testing.assert_array_equal(D, own)
        assert cache.seed_hits == 0
        assert cache.hits == 1
