"""Per-tenant byte quotas in `GuessCache` and `IntegralWorkspace`.

A quota must only ever evict the over-budget tenant's own LRU entries —
never another job's warm state, and never the entry whose put triggered
the check — and every eviction must be attributed to the tenant that
owned the evicted entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import GuessCache
from repro.integrals.workspace import IntegralWorkspace

#: an 8 KiB density: quota arithmetic below is in units of this array
ARR_BYTES = 8 * 32 * 32


def _d(fill=1.0):
    return np.full((32, 32), fill)


class TestGuessCacheQuota:
    def _cache(self, quota=2 * ARR_BYTES):
        return GuessCache(history=1, tenant_max_bytes=quota)

    def test_over_budget_tenant_evicts_own_lru(self):
        c = self._cache()
        c.put(("A", 0), _d(), natoms=2)
        c.put(("B", 0), _d(), natoms=2)
        c.put(("A", 1), _d(), natoms=2)
        c.put(("A", 2), _d(), natoms=2)  # A now over 2-entry quota
        assert c.get(("A", 0), natoms=2) is None
        assert c.get(("A", 1), natoms=2) is not None
        assert c.get(("A", 2), natoms=2) is not None
        assert c.get(("B", 0), natoms=2) is not None
        stats = c.stats()
        assert stats["tenants"]["A"]["evictions"] == 1
        assert stats["tenants"]["A"]["nbytes"] == 2 * ARR_BYTES
        assert "evictions" not in stats["tenants"]["B"] or \
            stats["tenants"]["B"]["evictions"] == 0

    def test_just_stored_entry_never_evicted(self):
        """A single entry larger than the quota stays resident: the
        quota loop may not evict the key it just stored."""
        c = GuessCache(history=1, tenant_max_bytes=ARR_BYTES // 2)
        c.put(("A", 0), _d(), natoms=2)
        assert c.get(("A", 0), natoms=2) is not None
        assert c.stats()["evictions"] == 0

    def test_unnamespaced_keys_exempt(self):
        """Keys without a tenant namespace never count against any
        quota and are never quota-evicted."""
        c = GuessCache(history=1, tenant_max_bytes=ARR_BYTES)
        for i in range(4):
            c.put((i,), _d(), natoms=2)
        assert all(c.get((i,), natoms=2) is not None for i in range(4))
        assert "tenants" not in c.stats()

    def test_global_eviction_attributed_to_owner(self):
        """The global LRU budget still applies on top of quotas, and its
        evictions are attributed to the evicted entry's owner — not the
        tenant whose put triggered it."""
        c = GuessCache(history=1, max_bytes=2 * ARR_BYTES + ARR_BYTES // 2)
        c.put(("A", 0), _d(), natoms=2)
        c.put(("B", 0), _d(), natoms=2)
        c.put(("B", 1), _d(), natoms=2)  # global budget evicts ("A", 0)
        assert c.get(("A", 0), natoms=2) is None
        stats = c.stats()
        assert stats["tenants"]["A"]["evictions"] == 1
        assert stats["tenants"]["A"].get("nbytes", 0) == 0
        assert stats["tenants"]["B"]["nbytes"] == 2 * ARR_BYTES

    def test_invalidate_releases_tenant_bytes(self):
        c = self._cache()
        c.put(("A", 0), _d(), natoms=2)
        assert c.stats()["tenants"]["A"]["nbytes"] == ARR_BYTES
        c.invalidate(("A", 0))
        # with no residual bytes and no get/evict record the tenant
        # drops out of the stats block entirely
        stats = c.stats()
        assert stats.get("tenants", {}).get("A", {}).get("nbytes", 0) == 0

    def test_no_quota_means_unbounded_tenant(self):
        c = GuessCache(history=1)
        for i in range(8):
            c.put(("A", i), _d(), natoms=2)
        assert c.stats()["evictions"] == 0


class TestWorkspaceQuota:
    def _ws(self, quota=2 * ARR_BYTES, **kw):
        return IntegralWorkspace(tenant_max_bytes=quota, **kw)

    def test_over_budget_tenant_evicts_own_lru(self):
        ws = self._ws()
        ws.set_tenant("A")
        ws._put(("a0",), _d())
        ws._put(("a1",), _d())
        ws.set_tenant("B")
        ws._put(("b0",), _d())
        ws.set_tenant("A")
        ws._put(("a2",), _d())  # A over quota: ("a0",) goes
        assert ws._get(("a0",)) is None
        assert ws._get(("a1",)) is not None
        assert ws._get(("b0",)) is not None
        stats = ws.stats()
        assert stats["tenants"]["A"]["evictions"] == 1
        assert stats["tenants"]["A"]["nbytes"] == 2 * ARR_BYTES
        assert stats["tenants"]["B"]["nbytes"] == ARR_BYTES

    def test_just_stored_entry_never_evicted(self):
        ws = IntegralWorkspace(tenant_max_bytes=ARR_BYTES // 2)
        ws.set_tenant("A")
        ws._put(("big",), _d())
        assert ws._get(("big",)) is not None

    def test_anonymous_threads_exempt(self):
        ws = self._ws(quota=ARR_BYTES)
        for i in range(4):
            ws._put((f"k{i}",), _d())
        assert all(ws._get((f"k{i}",)) is not None for i in range(4))

    def test_global_eviction_attributed_to_owner(self):
        ws = IntegralWorkspace(max_bytes=2 * ARR_BYTES + ARR_BYTES // 2)
        ws.set_tenant("A")
        ws._put(("a0",), _d())
        ws.set_tenant("B")
        ws._put(("b0",), _d())
        ws._put(("b1",), _d())  # global LRU evicts A's entry
        assert ws._get(("a0",)) is None
        stats = ws.stats()
        assert stats["tenants"]["A"]["evictions"] == 1
        assert stats["tenants"]["A"].get("nbytes", 0) == 0

    def test_clear_resets_tenant_bytes(self):
        ws = self._ws()
        ws.set_tenant("A")
        ws._put(("a0",), _d())
        ws.clear()
        assert ws.stats().get("tenants", {}).get("A", {}).get("nbytes", 0) == 0

    def test_quota_requires_positive_int(self):
        with pytest.raises((TypeError, ValueError)):
            IntegralWorkspace(tenant_max_bytes="lots")
