"""Benchmark system builders: composition, connectivity, packing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem import connected_components, detect_bonds
from repro.chem.geometry import pairwise_distances
from repro.constants import ANGSTROM_PER_BOHR
from repro.systems import (
    abeta_like_fibril,
    fibril,
    fibril_fragmented,
    glycine_chain,
    glycine_fragmented,
    paracetamol_cluster,
    paracetamol_molecule,
    prp_like_fibril,
    radius_for_molecule_count,
    urea_cluster,
    urea_molecule,
    urea_sphere_molecule_count,
    water_cluster,
    water_dimer,
    water_monomer,
)


class TestWater:
    def test_monomer(self):
        w = water_monomer()
        assert w.formula() == "H2O"
        assert len(detect_bonds(w)) == 2

    def test_cluster_counts(self):
        for n in (1, 5, 17):
            c = water_cluster(n)
            assert c.natoms == 3 * n
            assert len(connected_components(c)) == n

    def test_cluster_deterministic(self):
        a = water_cluster(4, seed=3)
        b = water_cluster(4, seed=3)
        np.testing.assert_array_equal(a.coords, b.coords)

    def test_dimer_separation(self):
        d = water_dimer(3.5)
        assert len(connected_components(d)) == 2


class TestUrea:
    def test_molecule(self):
        u = urea_molecule()
        assert u.formula() == "CH4N2O"
        assert u.nelectrons == 32
        assert len(detect_bonds(u)) == 7

    def test_cluster_no_clash(self):
        cl = urea_cluster(12)
        comps = connected_components(cl)
        assert len(comps) == 12
        owner = np.empty(cl.natoms, int)
        for ci, c in enumerate(comps):
            owner[c] = ci
        d = pairwise_distances(cl.coords)
        inter = d[owner[:, None] != owner[None, :]]
        assert inter.min() * ANGSTROM_PER_BOHR > 1.5

    def test_molecule_count_roundtrip(self):
        r = radius_for_molecule_count(1000)
        assert urea_sphere_molecule_count(r) == pytest.approx(1000, rel=0.05)


class TestParacetamol:
    def test_molecule(self):
        p = paracetamol_molecule()
        assert p.formula() == "C8H9NO2"
        assert p.nelectrons == 80
        assert len(connected_components(p)) == 1
        assert len(detect_bonds(p)) == 20

    def test_cluster(self):
        c = paracetamol_cluster(20)
        assert len(connected_components(c)) == 20


class TestGlycine:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_chain_connectivity(self, n):
        g = glycine_chain(n)
        assert len(connected_components(g)) == 1
        assert g.natoms == 7 * n + 3

    def test_chain_formula(self):
        # H-(NH-CH2-CO)n-OH: C2n H(3n+2) Nn O(n+1)
        g = glycine_chain(3)
        assert g.formula() == "C6H11N3O4"

    def test_fragmentation_even_electrons(self):
        fs = glycine_fragmented(4)
        for m in fs.monomers:
            mol, _, _ = fs.fragment_molecule((m.index,))
            assert mol.nelectrons % 2 == 0

    def test_one_peptide_bond_per_junction(self):
        fs = glycine_fragmented(4)
        caps = [len(m.caps) for m in fs.monomers]
        assert caps == [1, 2, 2, 1]

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            glycine_chain(0)


class TestFibril:
    def test_strand_stacking(self):
        f = fibril(nstrands=3, residues_per_strand=4)
        assert len(connected_components(f)) == 3

    def test_fragmented_monomer_sizes(self):
        fs = fibril_fragmented(2, 4)
        assert fs.nmonomers == 8
        sizes = []
        for m in fs.monomers:
            mol, _, _ = fs.fragment_molecule((m.index,))
            sizes.append(mol.natoms)
            assert mol.nelectrons % 2 == 0
        assert 7 <= min(sizes) and max(sizes) <= 16

    def test_prp_like_scale(self):
        """Paper 6PQ5: 360 atoms, 36 monomers, 7-14 atoms per monomer."""
        fs = prp_like_fibril()
        assert fs.nmonomers == 36
        assert 250 <= fs.parent.natoms <= 400

    def test_abeta_like_scale(self):
        """Paper 2BEG 4-strand: 1,496 atoms, ~5.5k electrons."""
        fs = abeta_like_fibril()
        assert 1300 <= fs.parent.natoms <= 1700
        assert 4500 <= fs.parent.nelectrons <= 6500
