"""Integral engine validation: literature values, symmetries, quadrature,
RI factorization quality, and finite-difference derivative checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.basis import BasisSet, auto_auxiliary
from repro.gemm import sym_inv_sqrt
from repro.integrals import (
    contract_eri2c_deriv,
    contract_eri3c_deriv,
    contract_hcore_deriv,
    contract_overlap_deriv,
    eri2c,
    eri3c,
    eri4c,
    hcore,
    kinetic,
    nuclear,
    overlap,
    overlap_deriv,
)


@pytest.fixture(scope="module")
def h2_basis(h2):
    return BasisSet.build(h2, "sto-3g")


class TestSzaboReference:
    """The classic H2/STO-3G numbers from Szabo & Ostlund, Table 3.5 ff."""

    def test_overlap(self, h2, h2_basis):
        S = overlap(h2_basis)
        assert S[0, 0] == pytest.approx(1.0, abs=1e-12)
        assert S[0, 1] == pytest.approx(0.6593, abs=2e-4)

    def test_kinetic(self, h2, h2_basis):
        T = kinetic(h2_basis)
        assert T[0, 0] == pytest.approx(0.7600, abs=2e-4)
        assert T[0, 1] == pytest.approx(0.2365, abs=2e-4)

    def test_nuclear(self, h2, h2_basis):
        V = nuclear(h2_basis, h2)
        assert V[0, 0] == pytest.approx(-1.8804, abs=3e-4)
        assert V[0, 1] == pytest.approx(-1.1948, abs=3e-4)

    def test_eri(self, h2, h2_basis):
        E = eri4c(h2_basis)
        assert E[0, 0, 0, 0] == pytest.approx(0.7746, abs=2e-4)
        assert E[0, 0, 1, 1] == pytest.approx(0.5697, abs=2e-4)
        assert E[0, 1, 0, 1] == pytest.approx(0.2970, abs=2e-4)
        assert E[0, 0, 0, 1] == pytest.approx(0.4441, abs=2e-4)


class TestMatrixProperties:
    @pytest.fixture(scope="class")
    def wbasis(self, water):
        return BasisSet.build(water, "sto-3g")

    def test_overlap_normalized_diagonal(self, wbasis):
        S = overlap(wbasis)
        np.testing.assert_allclose(np.diag(S), 1.0, atol=1e-10)

    def test_overlap_symmetric_pd(self, wbasis):
        S = overlap(wbasis)
        np.testing.assert_allclose(S, S.T, atol=1e-13)
        assert np.linalg.eigvalsh(S).min() > 0

    def test_kinetic_symmetric_positive(self, wbasis):
        T = kinetic(wbasis)
        np.testing.assert_allclose(T, T.T, atol=1e-13)
        assert np.linalg.eigvalsh(T).min() > 0

    def test_nuclear_symmetric_negative_diagonal(self, water, wbasis):
        V = nuclear(wbasis, water)
        np.testing.assert_allclose(V, V.T, atol=1e-12)
        assert np.all(np.diag(V) < 0)

    def test_eri_eightfold_symmetry(self, water):
        bs = BasisSet.build(water, "sto-3g")
        E = eri4c(bs)
        np.testing.assert_allclose(E, E.transpose(1, 0, 2, 3), atol=1e-11)
        np.testing.assert_allclose(E, E.transpose(0, 1, 3, 2), atol=1e-11)
        np.testing.assert_allclose(E, E.transpose(2, 3, 0, 1), atol=1e-11)

    def test_eri_positivity(self, water):
        # (mn|mn) diagonal of the supermatrix must be non-negative.
        bs = BasisSet.build(water, "sto-3g")
        E = eri4c(bs)
        n = bs.nbf
        sup = E.reshape(n * n, n * n)
        assert np.diag(sup).min() > -1e-12

    def test_metric_positive_definite(self, water):
        aux = auto_auxiliary(water, "sto-3g")
        J = eri2c(aux)
        np.testing.assert_allclose(J, J.T, atol=1e-11)
        assert np.linalg.eigvalsh(J).min() > 0

    def test_eri3c_bra_symmetry(self, water):
        bs = BasisSet.build(water, "sto-3g")
        aux = auto_auxiliary(water, "sto-3g")
        T3 = eri3c(bs, aux)
        np.testing.assert_allclose(T3, T3.transpose(1, 0, 2), atol=1e-11)


class TestRIFactorization:
    def test_ri_reproduces_4center(self, water):
        bs = BasisSet.build(water, "sto-3g")
        aux = auto_auxiliary(water, "sto-3g")
        T3 = eri3c(bs, aux)
        J = eri2c(aux)
        B = np.einsum("mnP,PQ->mnQ", T3, sym_inv_sqrt(J))
        approx = np.einsum("mnP,lsP->mnls", B, B)
        exact = eri4c(bs)
        assert np.abs(approx - exact).max() < 2e-3
        # and the RI approximation underestimates the supermatrix diagonal
        n = bs.nbf
        diag_err = np.diag((exact - approx).reshape(n * n, n * n))
        assert diag_err.min() > -1e-10  # RI error is positive semidefinite


class TestDerivatives:
    def test_overlap_deriv_fd(self, water_distorted):
        mol = water_distorted
        bs = BasisSet.build(mol, "sto-3g")
        dS = overlap_deriv(bs)
        h = 1e-5
        for a, x in [(0, 1), (1, 0), (2, 2)]:
            cp = mol.coords.copy()
            cp[a, x] += h
            cm = mol.coords.copy()
            cm[a, x] -= h
            fd = (
                overlap(BasisSet.build(mol.with_coords(cp), "sto-3g"))
                - overlap(BasisSet.build(mol.with_coords(cm), "sto-3g"))
            ) / (2 * h)
            np.testing.assert_allclose(dS[a, x], fd, atol=1e-9)

    def test_overlap_translation_invariance(self, water):
        bs = BasisSet.build(water, "sto-3g")
        dS = overlap_deriv(bs)
        # rigid translation leaves S unchanged: sum over atoms vanishes
        np.testing.assert_allclose(dS.sum(axis=0), 0.0, atol=1e-12)

    def test_hcore_deriv_fd(self, water_distorted):
        mol = water_distorted
        bs = BasisSet.build(mol, "sto-3g")
        rng = np.random.default_rng(7)
        X = rng.standard_normal((bs.nbf, bs.nbf))
        X = X + X.T
        g = contract_hcore_deriv(bs, mol, X)
        h = 1e-5
        for a, x in [(0, 0), (1, 2), (2, 1)]:
            cp = mol.coords.copy()
            cp[a, x] += h
            cm = mol.coords.copy()
            cm[a, x] -= h
            mp, mm = mol.with_coords(cp), mol.with_coords(cm)
            fd = float(
                (
                    (hcore(BasisSet.build(mp, "sto-3g"), mp)
                     - hcore(BasisSet.build(mm, "sto-3g"), mm))
                    / (2 * h)
                    * X
                ).sum()
            )
            assert g[a, x] == pytest.approx(fd, abs=5e-8)

    def test_eri3c_deriv_fd(self, water_distorted):
        mol = water_distorted
        bs = BasisSet.build(mol, "sto-3g")
        aux = auto_auxiliary(mol, "sto-3g")
        rng = np.random.default_rng(3)
        Z = rng.standard_normal((bs.nbf, bs.nbf, aux.nbf))
        g = contract_eri3c_deriv(bs, aux, Z, mol.natoms)
        h = 1e-5
        for a, x in [(0, 2), (2, 0)]:
            cp = mol.coords.copy()
            cp[a, x] += h
            cm = mol.coords.copy()
            cm[a, x] -= h
            mp, mm = mol.with_coords(cp), mol.with_coords(cm)
            Tp = eri3c(BasisSet.build(mp, "sto-3g"), auto_auxiliary(mp, "sto-3g"))
            Tm = eri3c(BasisSet.build(mm, "sto-3g"), auto_auxiliary(mm, "sto-3g"))
            fd = float(((Tp - Tm) / (2 * h) * Z).sum())
            assert g[a, x] == pytest.approx(fd, abs=5e-8)

    def test_eri2c_deriv_fd(self, water_distorted):
        mol = water_distorted
        aux = auto_auxiliary(mol, "sto-3g")
        rng = np.random.default_rng(5)
        zeta = rng.standard_normal((aux.nbf, aux.nbf))
        g = contract_eri2c_deriv(aux, zeta, mol.natoms)
        h = 1e-5
        for a, x in [(0, 1), (1, 1)]:
            cp = mol.coords.copy()
            cp[a, x] += h
            cm = mol.coords.copy()
            cm[a, x] -= h
            Jp = eri2c(auto_auxiliary(mol.with_coords(cp), "sto-3g"))
            Jm = eri2c(auto_auxiliary(mol.with_coords(cm), "sto-3g"))
            fd = float(((Jp - Jm) / (2 * h) * zeta).sum())
            assert g[a, x] == pytest.approx(fd, abs=5e-8)

    def test_deriv_contractions_translation_invariance(self, water):
        bs = BasisSet.build(water, "sto-3g")
        aux = auto_auxiliary(water, "sto-3g")
        rng = np.random.default_rng(11)
        Z = rng.standard_normal((bs.nbf, bs.nbf, aux.nbf))
        g = contract_eri3c_deriv(bs, aux, Z, water.natoms)
        np.testing.assert_allclose(g.sum(axis=0), 0.0, atol=1e-10)
        zeta = rng.standard_normal((aux.nbf, aux.nbf))
        g2 = contract_eri2c_deriv(aux, zeta, water.natoms)
        np.testing.assert_allclose(g2.sum(axis=0), 0.0, atol=1e-10)
        X = rng.standard_normal((bs.nbf, bs.nbf))
        gS = contract_overlap_deriv(bs, X + X.T)
        np.testing.assert_allclose(gS.sum(axis=0), 0.0, atol=1e-10)


class TestHigherAngularMomentum:
    def test_dzp_basis_selfoverlap(self, water):
        bs = BasisSet.build(water, "repro-dzp")
        assert bs.max_l == 2
        S = overlap(bs)
        np.testing.assert_allclose(np.diag(S), 1.0, atol=1e-10)
        np.testing.assert_allclose(S, S.T, atol=1e-12)
        assert np.linalg.eigvalsh(S).min() > 1e-6

    def test_d_function_kinetic_positive(self, water):
        bs = BasisSet.build(water, "repro-dzp")
        T = kinetic(bs)
        assert np.linalg.eigvalsh(T).min() > 0


class TestSchwarz:
    def test_bounds_hold(self, water):
        from repro.integrals.eri import schwarz_pair_bounds

        bs = BasisSet.build(water, "sto-3g")
        Q = schwarz_pair_bounds(bs)
        E = eri4c(bs)
        # per-shell-pair max |(ab|cd)| <= Q_ab Q_cd
        offs = bs.offsets
        for i, sha in enumerate(bs.shells):
            si = slice(offs[i], offs[i] + sha.nfunc)
            for j, shb in enumerate(bs.shells):
                sj = slice(offs[j], offs[j] + shb.nfunc)
                for k, shc in enumerate(bs.shells):
                    sk = slice(offs[k], offs[k] + shc.nfunc)
                    for l, shd in enumerate(bs.shells):
                        sl = slice(offs[l], offs[l] + shd.nfunc)
                        blk = np.abs(E[si, sj, sk, sl]).max()
                        assert blk <= Q[i, j] * Q[k, l] * (1 + 1e-10)

    def test_screened_gradient_matches_unscreened(self, water_distorted):
        from repro.integrals import contract_eri4c_deriv_hf

        mol = water_distorted
        bs = BasisSet.build(mol, "sto-3g")
        rng = np.random.default_rng(2)
        D = rng.standard_normal((bs.nbf, bs.nbf))
        D = D + D.T
        g_screened = contract_eri4c_deriv_hf(bs, D, mol.natoms, screen=1e-11)
        g_exact = contract_eri4c_deriv_hf(bs, D, mol.natoms, screen=0.0)
        np.testing.assert_allclose(g_screened, g_exact, atol=1e-9)
