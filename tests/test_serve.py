"""Tests for the multi-tenant streaming trajectory service.

Covers the `repro.serve` stack: JobSpec validation/round-trip, the
backpressured results channel, fair-share scheduling (including the
large-job-must-not-starve-small-job regression), end-to-end multi-job
service runs on the surrogate potential, concurrent per-job
checkpointing without cross-contamination, bitwise-exact deterministic
resume while other jobs run, and torn-frame-safe trajectory streaming.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.md.trajio import TrajectoryStreamWriter, read_trajectory_stream
from repro.serve import (
    FragmentScheduler,
    JobSpec,
    JobState,
    ResultChannel,
    StreamEvent,
    TrajectoryService,
    task_cost,
)
from repro.systems import water_cluster


def surrogate_spec(job_id, *, nsteps=6, seed=0, n=3, **overrides):
    kwargs = dict(
        job_id=job_id,
        system={"kind": "water", "n": n, "seed": seed},
        method={"kind": "surrogate"},
        nsteps=nsteps,
        dt_fs=0.5,
        replan_interval=2,
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


class TestJobSpec:
    def test_round_trip_through_json(self):
        spec = surrogate_spec(
            "j1", deterministic=True, checkpoint_every=2, weight=2.5,
            thermostat={"kind": "local-langevin", "seed": 3},
            mts={"k": 2, "extrapolate": False},
        )
        again = JobSpec.from_json(spec.to_json())
        assert again == spec

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown JobSpec fields"):
            JobSpec.from_dict({"job_id": "x", "system": {}, "bogus": 1})

    @pytest.mark.parametrize("job_id", ["", "a/b", ".hidden"])
    def test_rejects_unsafe_job_ids(self, job_id):
        with pytest.raises(ValueError, match="invalid job_id"):
            surrogate_spec(job_id)

    def test_rejects_nonpositive_weight_and_steps(self):
        with pytest.raises(ValueError, match="weight"):
            surrogate_spec("j", weight=0.0)
        with pytest.raises(ValueError, match="nsteps"):
            surrogate_spec("j", nsteps=0)


class TestResultChannel:
    def test_publish_reaches_matching_subscribers_only(self):
        ch = ResultChannel()
        all_sub = ch.subscribe()
        a_sub = ch.subscribe(job_id="a")
        ch.publish(StreamEvent(job_id="a", kind="step", step=0, payload={}))
        ch.publish(StreamEvent(job_id="b", kind="step", step=0, payload={}))
        assert len(all_sub.drain()) == 2
        events = a_sub.drain()
        assert [e.job_id for e in events] == ["a"]

    def test_get_blocks_until_event_or_timeout(self):
        ch = ResultChannel()
        sub = ch.subscribe()
        assert sub.get(timeout=0.01) is None
        ch.publish(StreamEvent(job_id="a", kind="status", payload={}))
        event = sub.get(timeout=1.0)
        assert event is not None and event.kind == "status"

    def test_never_drops_beyond_capacity(self):
        ch = ResultChannel(capacity=8)
        sub = ch.subscribe()
        for i in range(50):
            ch.publish(StreamEvent(job_id="a", kind="step", step=i,
                                   payload={}))
        events = sub.drain()
        assert [e.step for e in events] == list(range(50))

    def test_throttle_hysteresis(self):
        ch = ResultChannel(capacity=8)  # high watermark 4, low 2
        sub = ch.subscribe(job_id="a")
        assert not ch.should_throttle("a")
        for i in range(5):
            ch.publish(StreamEvent(job_id="a", kind="step", step=i,
                                   payload={}))
        assert ch.should_throttle("a")
        # draining to between low and high keeps the throttle engaged
        sub.get(timeout=0.1)
        sub.get(timeout=0.1)
        assert ch.should_throttle("a")
        # at/below the low watermark the throttle releases
        sub.get(timeout=0.1)
        assert not ch.should_throttle("a")

    def test_closed_subscription_stops_accumulating(self):
        ch = ResultChannel()
        sub = ch.subscribe()
        ch.publish(StreamEvent(job_id="a", kind="step", step=0, payload={}))
        sub.close()
        ch.publish(StreamEvent(job_id="a", kind="step", step=1, payload={}))
        assert [e.step for e in sub.drain()] == [0]


class _FakeTask:
    def __init__(self, natoms):
        self.natoms = natoms


class _FakeCoordinator:
    def __init__(self, tasks):
        self.tasks = list(tasks)

    def has_ready_tasks(self):
        return bool(self.tasks)

    def next_task(self):
        return self.tasks.pop(0) if self.tasks else None


class _FakeJob:
    def __init__(self, natoms_list):
        self.coordinator = _FakeCoordinator(
            _FakeTask(n) for n in natoms_list
        )


class TestFragmentScheduler:
    def test_cost_is_cubic_in_atoms(self):
        assert task_cost(_FakeTask(3)) == 27.0

    def test_picks_min_outstanding_per_weight(self):
        sched = FragmentScheduler()
        sched.register("big", _FakeJob([10] * 4))
        sched.register("small", _FakeJob([2] * 4))
        first = sched.next_task(set())
        # tie at zero outstanding: deterministic id order
        assert first[0] == "big"
        # big now carries 1000 cost outstanding; small gets every draw
        # until its own outstanding/weight catches up
        assert sched.next_task(set())[0] == "small"
        assert sched.next_task(set())[0] == "small"

    def test_weight_scales_share(self):
        sched = FragmentScheduler()
        sched.register("a", _FakeJob([4] * 8), weight=1.0)
        sched.register("b", _FakeJob([4] * 8), weight=3.0)
        draws = [sched.next_task(set())[0] for _ in range(8)]
        assert draws.count("b") == 6 and draws.count("a") == 2

    def test_task_done_returns_cost(self):
        sched = FragmentScheduler()
        sched.register("a", _FakeJob([5, 5]))
        _, _, cost = sched.next_task(set())
        assert sched.stats()["a"]["outstanding_cost"] == cost
        sched.task_done("a", cost)
        assert sched.stats()["a"]["outstanding_cost"] == 0.0

    def test_throttled_jobs_are_skipped(self):
        sched = FragmentScheduler()
        sched.register("a", _FakeJob([2, 2]))
        sched.register("b", _FakeJob([9, 9]))
        assert sched.next_task({"a"})[0] == "b"
        assert sched.next_task({"a", "b"}) is None

    def test_duplicate_registration_rejected(self):
        sched = FragmentScheduler()
        sched.register("a", _FakeJob([1]))
        with pytest.raises(ValueError, match="already registered"):
            sched.register("a", _FakeJob([1]))


class TestServiceEndToEnd:
    def test_multiple_jobs_complete_and_stream(self, tmp_path):
        service = TrajectoryService(tmp_path, nworkers=3)
        sub = service.channel.subscribe()
        for i in range(3):
            service.submit(surrogate_spec(f"w{i}", seed=i))
        summary = service.run()
        for i in range(3):
            info = summary["jobs"][f"w{i}"]
            assert info["state"] == JobState.COMPLETED
            assert info["steps"] == 7  # steps 0..6 inclusive
        assert summary["tasks_failed"] == 0
        events = sub.drain()
        by_kind = {}
        for event in events:
            by_kind.setdefault(event.kind, []).append(event)
        assert len(by_kind["step"]) == 21
        # per-job step events arrive in strictly increasing step order
        for i in range(3):
            steps = [e.step for e in by_kind["step"]
                     if e.job_id == f"w{i}"]
            assert steps == sorted(steps) == list(range(7))
        # every step event carries the energies
        payload = by_kind["step"][0].payload
        assert {"time_fs", "e_pot", "e_kin", "e_total"} <= set(payload)
        assert any(e.kind == "warm_layer" for e in events)

    def test_per_job_output_layout(self, tmp_path):
        service = TrajectoryService(tmp_path, nworkers=2)
        service.submit(surrogate_spec("solo", checkpoint_every=2,
                                      deterministic=True))
        service.run()
        job_dir = tmp_path / "solo"
        for name in ("spec.json", "trajectory.xyz", "trajectory.xyz.idx",
                     "restart.npz", "checkpoint.npz"):
            assert (job_dir / name).exists(), name
        spec = JobSpec.from_json((job_dir / "spec.json").read_text())
        assert spec.job_id == "solo"
        mol, traj = read_trajectory_stream(job_dir / "trajectory.xyz")
        assert len(traj.times_fs) == 7
        restart = np.load(job_dir / "restart.npz")
        assert restart["coords"].shape == (mol.natoms, 3)

    def test_duplicate_job_id_rejected(self, tmp_path):
        service = TrajectoryService(tmp_path)
        service.submit(surrogate_spec("dup"))
        with pytest.raises(ValueError, match="already submitted"):
            service.submit(surrogate_spec("dup"))

    def test_failed_job_does_not_sink_others(self, tmp_path):
        service = TrajectoryService(tmp_path, nworkers=2)
        good = service.submit(surrogate_spec("good"))
        bad = service.submit(surrogate_spec("bad", seed=5))

        def explode(mol):
            raise RuntimeError("injected fragment failure")

        bad.calculator.energy_gradient = explode
        summary = service.run()
        assert summary["jobs"]["bad"]["state"] == JobState.FAILED
        assert "injected fragment failure" in summary["jobs"]["bad"]["error"]
        assert summary["jobs"]["good"]["state"] == JobState.COMPLETED
        assert good.final_total_energy() is not None

    def test_max_active_queues_excess_jobs(self, tmp_path):
        service = TrajectoryService(tmp_path, nworkers=2, max_active=2)
        for i in range(5):
            service.submit(surrogate_spec(f"q{i}", seed=i, nsteps=3))
        summary = service.run()
        assert all(info["state"] == JobState.COMPLETED
                   for info in summary["jobs"].values())


class TestConcurrentCheckpointing:
    def test_rotation_chains_stay_per_job(self, tmp_path):
        """Two jobs checkpointing simultaneously never share files."""
        service = TrajectoryService(tmp_path, nworkers=4)
        for i in range(2):
            service.submit(surrogate_spec(
                f"ckpt{i}", seed=i, nsteps=10, deterministic=True,
                checkpoint_every=2, checkpoint_keep=3,
            ))
        service.run()
        from repro.md import read_checkpoint_with_fallback

        mols = {i: water_cluster(3, seed=i) for i in range(2)}
        for i in range(2):
            job_dir = tmp_path / f"ckpt{i}"
            chain = sorted(p.name for p in job_dir.glob("checkpoint.npz*"))
            assert chain[0] == "checkpoint.npz"
            assert len(chain) >= 2  # rotated generations exist
            resume, used = read_checkpoint_with_fallback(
                job_dir / "checkpoint.npz", mol=mols[i]
            )
            # the checkpoint belongs to THIS job's system: validated
            # against its own molecule, and distinct from the sibling's
            assert resume.coords.shape == (mols[i].natoms, 3)
            assert used.parent == job_dir
        resume0, _ = read_checkpoint_with_fallback(
            tmp_path / "ckpt0" / "checkpoint.npz", mol=mols[0]
        )
        resume1, _ = read_checkpoint_with_fallback(
            tmp_path / "ckpt1" / "checkpoint.npz", mol=mols[1]
        )
        assert not np.array_equal(resume0.coords, resume1.coords)

    def test_deterministic_resume_bitwise_while_others_run(self, tmp_path):
        """Kill mid-run, resume with noisy neighbors: bitwise identical."""
        def spec_under_test(out):
            return surrogate_spec(
                "det", nsteps=12, deterministic=True, checkpoint_every=2,
                thermostat={"kind": "local-langevin",
                            "temperature_k": 300.0, "seed": 11},
            )

        # reference: uninterrupted, alone
        ref_dir = tmp_path / "ref"
        service = TrajectoryService(ref_dir, nworkers=3)
        service.submit(spec_under_test(ref_dir))
        service.run()
        ref_energy = service.jobs["det"].final_total_energy()
        _, ref_traj = read_trajectory_stream(
            ref_dir / "det" / "trajectory.xyz"
        )

        # interrupted run with concurrent (non-deterministic) neighbors
        run_dir = tmp_path / "run"
        service = TrajectoryService(run_dir, nworkers=3)
        sub = service.channel.subscribe(job_id="det")
        stop_after = 5

        def watch():
            seen = 0
            while True:
                event = sub.get(timeout=10.0)
                if event is None:
                    return
                if event.kind == "step":
                    seen += 1
                    if seen >= stop_after:
                        service.request_stop()
                        return

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        service.submit(spec_under_test(run_dir))
        for i in range(2):
            service.submit(surrogate_spec(f"noise{i}", seed=3 + i,
                                          nsteps=12))
        summary = service.run()
        watcher.join(timeout=10.0)
        assert summary["jobs"]["det"]["state"] == JobState.INTERRUPTED

        # resume against the same out_root, again with neighbors
        service = TrajectoryService(run_dir, nworkers=3)
        service.submit(spec_under_test(run_dir))
        for i in range(2):
            service.submit(surrogate_spec(f"noise{i}", seed=3 + i,
                                          nsteps=12))
        summary = service.run()
        assert summary["jobs"]["det"]["state"] == JobState.COMPLETED
        assert summary["jobs"]["det"]["resumed"]
        assert service.jobs["det"].final_total_energy() == ref_energy
        _, res_traj = read_trajectory_stream(
            run_dir / "det" / "trajectory.xyz"
        )
        assert res_traj.times_fs == ref_traj.times_fs
        assert res_traj.potential == ref_traj.potential
        assert res_traj.kinetic == ref_traj.kinetic


class TestFairShareRegression:
    def test_large_job_does_not_starve_small_job(self, tmp_path):
        """Small job's p99 step latency under contention stays within a
        bounded multiple of its solo latency."""
        delay_s = 0.002

        def slow_patch(service):
            # pad every fragment solve so latency is measurable and
            # dominated by scheduling, not numpy noise
            original = service._evaluate

            def padded(job, task):
                time.sleep(delay_s)
                return original(job, task)

            service._evaluate = padded

        def small_spec():
            return surrogate_spec("small", n=2, nsteps=8)

        def big_spec():
            return surrogate_spec("big", n=8, nsteps=8, seed=9)

        # solo baseline for the small job
        solo = TrajectoryService(tmp_path / "solo", nworkers=2)
        slow_patch(solo)
        solo.submit(small_spec())
        solo_summary = solo.run()
        solo_p99 = solo_summary["jobs"]["small"]["latency"]["p99"]

        # contended: the big job has ~10x the atoms per fragment count
        both = TrajectoryService(tmp_path / "both", nworkers=2)
        slow_patch(both)
        both.submit(big_spec())
        both.submit(small_spec())
        both_summary = both.run()
        assert both_summary["jobs"]["small"]["state"] == JobState.COMPLETED
        both_p99 = both_summary["jobs"]["small"]["latency"]["p99"]

        # fair share bounds the contended latency; the bound is generous
        # (workers are shared, so ~2x is expected; starvation would be
        # nsteps x solo or a timeout)
        assert both_p99 <= max(8.0 * solo_p99, 0.25), (
            f"small-job p99 {both_p99:.4f}s vs solo {solo_p99:.4f}s"
        )
        draws = both_summary["fair_share"]
        # scheduler audit: neither job monopolized the draw sequence
        assert draws == {}  # both jobs unregistered after completion


class TestTrajectoryStreamWriter:
    def _mol(self):
        return water_cluster(1)

    def test_reader_never_sees_uncommitted_tail(self, tmp_path):
        mol = self._mol()
        path = tmp_path / "t.xyz"
        with TrajectoryStreamWriter(path, mol) as writer:
            writer.append_frame(0.0, -1.0, 0.5, mol.coords)
            writer.append_frame(0.5, -1.1, 0.4, mol.coords)
            # simulate a torn append: garbage past the committed index
            with open(path, "a", encoding="utf-8") as fh:
                fh.write("3\nt= 1.0 E_pot= -1.2")  # truncated frame
            _, traj = read_trajectory_stream(path)
            assert len(traj.times_fs) == 2
            assert traj.times_fs == [0.0, 0.5]

    def test_append_mode_discards_torn_tail(self, tmp_path):
        mol = self._mol()
        path = tmp_path / "t.xyz"
        with TrajectoryStreamWriter(path, mol) as writer:
            writer.append_frame(0.0, -1.0, 0.5, mol.coords)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("3\npartial")
        with TrajectoryStreamWriter(path, mol, append=True) as writer:
            assert writer.frames_committed == 1
            writer.append_frame(0.5, -1.1, 0.4, mol.coords)
        _, traj = read_trajectory_stream(path)
        assert traj.times_fs == [0.0, 0.5]

    def test_drop_frames_after_truncates_for_resume(self, tmp_path):
        mol = self._mol()
        path = tmp_path / "t.xyz"
        with TrajectoryStreamWriter(path, mol) as writer:
            for i in range(5):
                writer.append_frame(0.5 * i, -1.0 - i, 0.1, mol.coords)
        with TrajectoryStreamWriter(path, mol, append=True) as writer:
            dropped = writer.drop_frames_after(1.1)
            assert dropped == 2
            assert writer.frames_committed == 3
        _, traj = read_trajectory_stream(path)
        assert traj.times_fs == [0.0, 0.5, 1.0]

    def test_missing_index_falls_back_to_full_file(self, tmp_path):
        mol = self._mol()
        path = tmp_path / "t.xyz"
        with TrajectoryStreamWriter(path, mol) as writer:
            writer.append_frame(0.0, -1.0, 0.5, mol.coords)
        (tmp_path / "t.xyz.idx").unlink()
        _, traj = read_trajectory_stream(path)
        assert len(traj.times_fs) == 1


class TestCrossTenantSeedGuesses:
    def _cache(self):
        from repro.calculators import GuessCache

        return GuessCache()

    def test_seed_served_for_matching_composition_and_geometry(self):
        cache = self._cache()
        D = np.eye(4)
        coords = np.zeros((3, 3))
        seed_key = (("O", "H", "H"), 0, "sto-3g")
        cache.put(("job-a", 0), D, natoms=3, seed_key=seed_key,
                  coords=coords)
        # a different tenant's per-key lookup misses but the seed serves
        out = cache.get(("job-b", 0), natoms=3, seed_key=seed_key,
                        coords=coords + 0.1)
        assert out is D
        stats = cache.stats()
        assert stats["seed_hits"] == 1
        assert stats["tenants"]["job-b"]["seed_hits"] == 1

    def test_seed_rejected_beyond_displacement_tolerance(self):
        cache = self._cache()
        seed_key = (("O", "H", "H"), 0, "sto-3g")
        coords = np.zeros((3, 3))
        cache.put(("job-a", 0), np.eye(4), natoms=3, seed_key=seed_key,
                  coords=coords)
        far = coords.copy()
        far[0, 0] = cache.seed_tol_bohr * 3
        assert cache.get(("job-b", 0), natoms=3, seed_key=seed_key,
                         coords=far) is None
        assert cache.stats()["seed_hits"] == 0

    def test_seed_rejected_on_natoms_mismatch(self):
        cache = self._cache()
        seed_key = (("O", "H", "H"), 0, "sto-3g")
        cache.put(("job-a", 0), np.eye(4), natoms=3, seed_key=seed_key,
                  coords=np.zeros((3, 3)))
        assert cache.get(("job-b", 0), natoms=4, seed_key=seed_key,
                         coords=np.zeros((4, 3))) is None

    def test_per_key_hit_wins_over_seed(self):
        cache = self._cache()
        seed_key = (("O", "H", "H"), 0, "sto-3g")
        own = np.eye(4) * 2
        other = np.eye(4)
        coords = np.zeros((3, 3))
        cache.put(("job-a", 0), other, natoms=3, seed_key=seed_key,
                  coords=coords)
        cache.put(("job-b", 0), own, natoms=3, seed_key=seed_key,
                  coords=coords)
        out = cache.get(("job-b", 0), natoms=3, seed_key=seed_key,
                        coords=coords)
        assert np.array_equal(out, own)
        assert cache.stats()["seed_hits"] == 0

    def test_seed_store_is_lru_bounded(self):
        from repro.calculators import GuessCache

        cache = GuessCache(max_seeds=2)
        coords = np.zeros((1, 3))
        for i in range(4):
            cache.put(("j", i), np.eye(2), natoms=1,
                      seed_key=(("H",), 0, f"b{i}"), coords=coords)
        assert cache.stats()["seeds"] == 2

    def test_clear_drops_seeds(self):
        cache = self._cache()
        cache.put(("j", 0), np.eye(2), natoms=1,
                  seed_key=(("H",), 0, "sto-3g"), coords=np.zeros((1, 3)))
        cache.clear()
        assert cache.stats()["seeds"] == 0
        assert cache.get(("k", 0), natoms=1,
                         seed_key=(("H",), 0, "sto-3g"),
                         coords=np.zeros((1, 3))) is None

    def test_non_namespaced_paths_never_touch_seeds(self):
        """Single-run drivers pass no seed_key: behavior is unchanged."""
        cache = self._cache()
        cache.put((0, 1), np.eye(4), natoms=3)
        assert cache.get((7,), natoms=3) is None
        assert cache.stats()["seeds"] == 0


class TestProcessPoolService:
    def test_surrogate_jobs_complete_in_process_mode(self, tmp_path):
        service = TrajectoryService(tmp_path, nworkers=2, pool="process")
        for i in range(2):
            service.submit(surrogate_spec(f"p{i}", seed=i, nsteps=3))
        summary = service.run()
        for i in range(2):
            info = summary["jobs"][f"p{i}"]
            assert info["state"] == JobState.COMPLETED
            assert info["steps"] == 4

    def test_rejects_unknown_pool_kind(self, tmp_path):
        with pytest.raises(ValueError, match="pool"):
            TrajectoryService(tmp_path, pool="greenlet")
