"""Shared fixtures: small validated molecules and SCF references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem import Molecule


@pytest.fixture(scope="session")
def h2() -> Molecule:
    """H2 at the Szabo-Ostlund geometry (1.4 Bohr)."""
    return Molecule(["H", "H"], [[0, 0, 0], [0, 0, 1.4]])


@pytest.fixture(scope="session")
def h2_bent() -> Molecule:
    """H2 displaced off-axis so no gradient component vanishes."""
    return Molecule(["H", "H"], [[0, 0.05, 0], [0.03, 0, 1.45]])


@pytest.fixture(scope="session")
def hehp() -> Molecule:
    """HeH+ at 1.4632 Bohr (Szabo-Ostlund)."""
    return Molecule(["He", "H"], [[0, 0, 0], [0, 0, 1.4632]], charge=1)


@pytest.fixture(scope="session")
def water() -> Molecule:
    """Water at a standard experimental-ish geometry."""
    return Molecule.from_angstrom(
        ["O", "H", "H"],
        [[0.0, 0.0, 0.1173], [0.0, 0.7572, -0.4692], [0.0, -0.7572, -0.4692]],
    )


@pytest.fixture(scope="session")
def water_distorted() -> Molecule:
    """Symmetry-broken water so every gradient component is nonzero."""
    return Molecule.from_angstrom(
        ["O", "H", "H"],
        [[0.0, 0.05, 0.1173], [0.02, 0.7572, -0.4692], [0.0, -0.7572, -0.48]],
    )


def finite_difference_gradient(energy_fn, mol: Molecule, h: float = 2.0e-4) -> np.ndarray:
    """Central finite-difference gradient of ``energy_fn(mol) -> float``."""
    g = np.zeros((mol.natoms, 3))
    for a in range(mol.natoms):
        for x in range(3):
            cp = mol.coords.copy()
            cp[a, x] += h
            cm = mol.coords.copy()
            cm[a, x] -= h
            g[a, x] = (
                energy_fn(mol.with_coords(cp)) - energy_fn(mol.with_coords(cm))
            ) / (2 * h)
    return g
