"""Boys function: reference values, recursions, vectorized consistency."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.integrate import quad

from repro.integrals.boys import boys, boys_array


def boys_quadrature(m: int, T: float) -> float:
    val, _ = quad(lambda t: t ** (2 * m) * np.exp(-T * t * t), 0.0, 1.0, limit=200)
    return val


class TestBoysValues:
    def test_zero_argument(self):
        F = boys(6, 0.0)
        for m in range(7):
            assert F[m] == pytest.approx(1.0 / (2 * m + 1), rel=1e-14)

    def test_f0_closed_form(self):
        # F_0(T) = sqrt(pi/T)/2 * erf(sqrt(T))
        from scipy.special import erf

        for T in (0.1, 1.0, 5.0, 20.0, 40.0, 100.0):
            ref = 0.5 * np.sqrt(np.pi / T) * erf(np.sqrt(T))
            assert boys(0, T)[0] == pytest.approx(ref, rel=1e-12)

    @pytest.mark.parametrize("T", [1e-8, 1e-3, 0.5, 3.0, 12.0, 34.9, 35.1, 80.0])
    @pytest.mark.parametrize("m", [0, 1, 3, 6])
    def test_against_quadrature(self, m, T):
        assert boys(m, T)[m] == pytest.approx(boys_quadrature(m, T), rel=1e-9, abs=1e-15)

    def test_downward_recursion_consistency(self):
        # F_{m-1} = (2T F_m + e^{-T}) / (2m - 1)
        T = 4.7
        F = boys(8, T)
        for m in range(8, 0, -1):
            lhs = F[m - 1]
            rhs = (2 * T * F[m] + np.exp(-T)) / (2 * m - 1)
            assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_monotone_decreasing_in_m(self):
        F = boys(10, 2.5)
        assert np.all(np.diff(F) < 0)

    def test_monotone_decreasing_in_T(self):
        Ts = np.linspace(0.0, 50.0, 200)
        vals = np.array([boys(0, T)[0] for T in Ts])
        assert np.all(np.diff(vals) < 0)


class TestBoysArray:
    def test_matches_scalar(self):
        Ts = np.array([0.0, 1e-10, 0.3, 2.0, 17.0, 35.5, 200.0])
        arr = boys_array(5, Ts)
        for i, T in enumerate(Ts):
            ref = boys(5, float(T))
            np.testing.assert_allclose(arr[i], ref, rtol=1e-11, atol=1e-300)

    @given(st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=80, deadline=None)
    def test_property_positive_and_bounded(self, T):
        F = boys_array(4, np.array([T]))[0]
        assert np.all(F > 0)
        assert np.all(F <= 1.0 + 1e-12)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=300.0), min_size=1, max_size=20)
    )
    @settings(max_examples=40, deadline=None)
    def test_property_batch_equals_scalar(self, Ts):
        Ts = np.array(Ts)
        arr = boys_array(3, Ts)
        for i, T in enumerate(Ts):
            np.testing.assert_allclose(arr[i], boys(3, float(T)), rtol=1e-10)
