"""Fragmentation and MBE: coefficient identities, cap exactness, cutoffs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator, RIMP2Calculator
from repro.chem import Molecule
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import (
    FragmentedSystem,
    build_plan,
    determine_cutoffs,
    dimer_contributions,
    enumerate_dimers,
    enumerate_trimers,
    mbe_energy,
    mbe_energy_gradient,
)
from repro.systems import glycine_fragmented, water_cluster, water_monomer

BIG = 1.0e6  # cutoff larger than any system here


@pytest.fixture(scope="module")
def w4():
    mol = water_cluster(4, seed=3)
    return FragmentedSystem.by_components(mol)


class TestFragmentedSystem:
    def test_by_components(self, w4):
        assert w4.nmonomers == 4
        for m in w4.monomers:
            assert len(m.atoms) == 3
            assert not m.caps

    def test_atom_coverage_enforced(self):
        mol = water_cluster(2, seed=0)
        from repro.frag.monomer import Monomer

        with pytest.raises(ValueError, match="not assigned"):
            FragmentedSystem(mol, [Monomer(0, (0, 1, 2))])
        with pytest.raises(ValueError, match="two monomers"):
            FragmentedSystem(
                mol, [Monomer(0, tuple(range(6))), Monomer(1, (5,))]
            )

    def test_group_size(self):
        mol = water_cluster(6, seed=1)
        fs = FragmentedSystem.by_components(mol, group_size=2)
        assert fs.nmonomers == 3
        assert all(len(m.atoms) == 6 for m in fs.monomers)

    def test_centroids_shape(self, w4):
        assert w4.centroids().shape == (4, 3)

    def test_fragment_molecule_dimer(self, w4):
        mol, atoms, caps = w4.fragment_molecule((0, 2))
        assert mol.natoms == 6
        assert not caps
        assert atoms == sorted(
            list(w4.monomers[0].atoms) + list(w4.monomers[2].atoms)
        )

    def test_caps_added_for_broken_bonds(self):
        fs = glycine_fragmented(3)
        mol, atoms, caps = fs.fragment_molecule((1,))
        assert len(caps) == 2  # middle residue: both peptide bonds broken
        assert mol.natoms == len(atoms) + 2
        assert mol.symbols[-1] == "H" and mol.symbols[-2] == "H"

    def test_caps_vanish_inside_polymer(self):
        fs = glycine_fragmented(3)
        _, _, caps01 = fs.fragment_molecule((0, 1))
        assert len(caps01) == 1  # only the bond to residue 2 remains broken
        _, _, caps012 = fs.fragment_molecule((0, 1, 2))
        assert len(caps012) == 0


class TestEnumeration:
    def test_dimers_all_within_big_cutoff(self, w4):
        assert len(enumerate_dimers(w4, BIG)) == 6

    def test_trimers_all_within_big_cutoff(self, w4):
        assert len(enumerate_trimers(w4, BIG)) == 4

    def test_cutoff_excludes(self, w4):
        d = enumerate_dimers(w4, 0.1)
        assert d == []

    def test_trimer_requires_all_pairs(self):
        # three collinear waters at 0, 5, 10 Angstrom: only consecutive
        # pairs within 6 A, so no trimer at cutoff 6.
        w = water_monomer()
        mol = Molecule.concatenate(
            [w, w.translated([5 * BOHR_PER_ANGSTROM, 0, 0]),
             w.translated([10 * BOHR_PER_ANGSTROM, 0, 0])]
        )
        fs = FragmentedSystem.by_components(mol)
        assert len(enumerate_dimers(fs, 6 * BOHR_PER_ANGSTROM)) == 2
        assert enumerate_trimers(fs, 6 * BOHR_PER_ANGSTROM) == []
        assert len(enumerate_trimers(fs, 11 * BOHR_PER_ANGSTROM)) == 1


class TestCoefficients:
    def test_full_mbe3_coefficients_collapse(self, w4):
        """With every polymer included on n=3 monomers, MBE3 telescopes to
        the single full-system calculation."""
        mol = water_cluster(3, seed=5)
        fs = FragmentedSystem.by_components(mol)
        plan = build_plan(fs, BIG, BIG, order=3)
        nonzero = {k: c for k, c in plan.coefficients.items() if abs(c) > 1e-12}
        assert nonzero == {(0, 1, 2): 1.0}

    def test_mbe2_coefficients(self, w4):
        plan = build_plan(w4, BIG, order=2)
        # each monomer appears in 3 dimers: coefficient 1 - 3 = -2
        for m in range(4):
            assert plan.coefficients[(m,)] == pytest.approx(-2.0)
        for d in plan.dimers:
            assert plan.coefficients[d] == pytest.approx(1.0)

    def test_trimer_coefficient_always_one(self, w4):
        plan = build_plan(w4, BIG, BIG, order=3)
        for t in plan.trimers:
            assert plan.coefficients[t] == pytest.approx(1.0)

    def test_invalid_order(self, w4):
        with pytest.raises(ValueError):
            build_plan(w4, BIG, order=4)
        with pytest.raises(ValueError, match="trimer cutoff"):
            build_plan(w4, BIG, order=3)


class TestMBEExactness:
    """Sharp identities: MBE2 is exact for pairwise potentials, MBE3 for
    pairwise + three-body, and MBE-n on n monomers is exact for any
    calculator (including across H-caps)."""

    def test_mbe2_exact_for_pairwise_potential(self):
        mol = water_cluster(5, seed=7)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        e_full, g_full = calc.energy_gradient(mol)
        plan = build_plan(fs, BIG, order=2)
        e, g = mbe_energy_gradient(fs, plan, calc)
        assert e == pytest.approx(e_full, abs=1e-10)
        np.testing.assert_allclose(g, g_full, atol=1e-10)

    def test_mbe3_exact_for_three_body_potential(self):
        mol = water_cluster(4, seed=9)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator(at_strength=5.0)
        e_full, g_full = calc.energy_gradient(mol)
        e2 = mbe_energy(fs, build_plan(fs, BIG, order=2), calc)
        e3, g3 = mbe_energy_gradient(fs, build_plan(fs, BIG, BIG, order=3), calc)
        assert abs(e2 - e_full) > 1e-9  # MBE2 misses 3-body
        assert e3 == pytest.approx(e_full, abs=1e-8)
        np.testing.assert_allclose(g3, g_full, atol=5e-6)

    def test_mbe2_exact_two_capped_monomers(self):
        """Gly2 split across the peptide bond: the monomer terms cancel and
        MBE2 returns exactly the unfragmented QM result, caps and all."""
        fs = glycine_fragmented(2)
        calc = RIMP2Calculator(basis="sto-3g")
        e_full, g_full = calc.energy_gradient(fs.parent)
        plan = build_plan(fs, BIG, order=2)
        e, g = mbe_energy_gradient(fs, plan, calc)
        assert e == pytest.approx(e_full, abs=1e-8)
        np.testing.assert_allclose(g, g_full, atol=1e-7)

    def test_mbe_truncation_error_decays(self):
        """MBE2 error decreases as the dimer cutoff grows (pairwise pot.,
        so the only error is cutoff truncation)."""
        mol = water_cluster(6, seed=11)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        e_full, _ = calc.energy_gradient(mol)
        errs = []
        for r_ang in (3.5, 5.0, 8.0, 30.0):
            plan = build_plan(fs, r_ang * BOHR_PER_ANGSTROM, order=2)
            errs.append(abs(mbe_energy(fs, plan, calc) - e_full))
        assert errs[0] > errs[-1]
        assert errs[-1] < 1e-10


class TestCapGradientChaining:
    def test_cap_gradient_fd(self):
        """The full MBE1 (monomers-only) gradient must match finite
        differences of the MBE1 energy — exercising the cap chain rule."""
        fs = glycine_fragmented(2)
        calc = PairwisePotentialCalculator()
        plan = build_plan(fs, 0.0, order=2)  # no dimers -> monomers only
        e0, g = mbe_energy_gradient(fs, plan, calc)
        h = 1e-5
        for a, x in [(5, 0), (7, 1), (0, 2)]:  # includes capped-bond atoms
            cp = fs.parent.coords.copy()
            cp[a, x] += h
            cm = fs.parent.coords.copy()
            cm[a, x] -= h
            ep = mbe_energy(fs, plan, calc, coords=cp)
            em = mbe_energy(fs, plan, calc, coords=cm)
            # gradients are huge (LJ at bonded distances), compare relatively
            assert g[a, x] == pytest.approx((ep - em) / (2 * h), rel=1e-6, abs=1e-8)


class TestCutoffDetermination:
    def test_dimer_contributions_decay(self):
        mol = water_cluster(8, seed=13)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        curve = dimer_contributions(fs, calc, reference=0)
        assert len(curve.distances_angstrom) == 7
        # contributions decay with distance: farthest < closest
        i_near = np.argmin(curve.distances_angstrom)
        i_far = np.argmax(curve.distances_angstrom)
        assert (
            curve.abs_contributions_kjmol[i_far]
            < curve.abs_contributions_kjmol[i_near]
        )

    def test_cutoff_threshold(self):
        mol = water_cluster(8, seed=13)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        curve = dimer_contributions(fs, calc, reference=0)
        r = curve.cutoff(threshold_kjmol=1e-9)
        assert r == pytest.approx(curve.distances_angstrom.max())
        assert curve.cutoff(threshold_kjmol=1e9) == 0.0

    def test_determine_cutoffs_runs(self):
        mol = water_cluster(5, seed=15)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator(at_strength=1.0)
        r_d, r_t, dc, tc = determine_cutoffs(
            fs, calc, reference=0, threshold_kjmol=1e-6, trimer_scan_angstrom=20.0
        )
        assert r_d > 0
        assert tc.kind == "trimer"
        assert len(tc.abs_contributions_kjmol) > 0


class TestByBlocks:
    def test_matches_by_components_for_lattice(self):
        from repro.systems import urea_cluster

        cl = urea_cluster(24)
        a = FragmentedSystem.by_components(cl, group_size=4)
        b = FragmentedSystem.by_blocks(cl, 8, group_size=4)
        assert [m.atoms for m in a.monomers] == [m.atoms for m in b.monomers]

    def test_rejects_indivisible(self):
        from repro.systems import water_cluster as wc

        mol = wc(2, seed=0)  # 6 atoms
        with pytest.raises(ValueError, match="divisible"):
            FragmentedSystem.by_blocks(mol, 4)

    def test_ungrouped_blocks(self):
        from repro.systems import water_cluster as wc

        mol = wc(3, seed=0)
        fs = FragmentedSystem.by_blocks(mol, 3)
        assert fs.nmonomers == 3
