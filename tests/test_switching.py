"""Smooth polymer-cutoff switching (paper future work, implemented)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import (
    FragmentedSystem,
    build_plan,
    mbe_energy_gradient,
    mbe_energy_gradient_switched,
    smoothstep,
)
from repro.systems import water_cluster

A = BOHR_PER_ANGSTROM


class TestSmoothstep:
    def test_endpoints(self):
        assert smoothstep(1.0, 2.0, 4.0) == (1.0, 0.0)
        assert smoothstep(4.0, 2.0, 4.0) == (0.0, 0.0)
        assert smoothstep(9.0, 2.0, 4.0) == (0.0, 0.0)

    def test_midpoint(self):
        s, ds = smoothstep(3.0, 2.0, 4.0)
        assert s == pytest.approx(0.5)
        assert ds < 0

    def test_monotone_decreasing(self):
        rs = np.linspace(2.0, 4.0, 50)
        vals = [smoothstep(r, 2.0, 4.0)[0] for r in rs]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_derivative_fd(self):
        h = 1e-7
        for r in (2.3, 3.0, 3.9):
            s_p = smoothstep(r + h, 2.0, 4.0)[0]
            s_m = smoothstep(r - h, 2.0, 4.0)[0]
            ds = smoothstep(r, 2.0, 4.0)[1]
            assert ds == pytest.approx((s_p - s_m) / (2 * h), abs=1e-6)

    def test_c1_at_edges(self):
        # derivative approaches zero at both ends (C2 switch)
        assert smoothstep(2.0 + 1e-7, 2.0, 4.0)[1] == pytest.approx(0.0, abs=1e-5)
        assert smoothstep(4.0 - 1e-7, 2.0, 4.0)[1] == pytest.approx(0.0, abs=1e-5)


class TestSwitchedMBE:
    @pytest.fixture(scope="class")
    def system(self):
        return FragmentedSystem.by_components(water_cluster(5, seed=17))

    @pytest.fixture(scope="class")
    def calc(self):
        return PairwisePotentialCalculator(at_strength=3.0)

    def test_reduces_to_hard_mbe_inside_ron(self, system, calc):
        """With r_on beyond every pair distance, switching is inactive and
        the result equals the hard-cutoff MBE."""
        plan = build_plan(system, 1e9, 1e9, order=3)
        e_hard, g_hard = mbe_energy_gradient(system, plan, calc)
        e_sw, g_sw = mbe_energy_gradient_switched(
            system, calc, r_on_dimer=1e8, r_cut_dimer=1e9,
            r_on_trimer=1e8, r_cut_trimer=1e9, order=3,
        )
        assert e_sw == pytest.approx(e_hard, abs=1e-10)
        np.testing.assert_allclose(g_sw, g_hard, atol=1e-10)

    def test_gradient_fd_in_switch_region(self, system, calc):
        kw = dict(
            r_on_dimer=4.0 * A, r_cut_dimer=7.0 * A,
            r_on_trimer=4.0 * A, r_cut_trimer=6.5 * A, order=3,
        )
        e0, g = mbe_energy_gradient_switched(system, calc, **kw)
        mol = system.parent
        h = 1e-5
        for a, x in [(0, 0), (4, 1), (9, 2), (14, 0)]:
            cp = mol.coords.copy()
            cp[a, x] += h
            cm = mol.coords.copy()
            cm[a, x] -= h
            ep, _ = mbe_energy_gradient_switched(system, calc, coords=cp, **kw)
            em, _ = mbe_energy_gradient_switched(system, calc, coords=cm, **kw)
            assert g[a, x] == pytest.approx((ep - em) / (2 * h), rel=1e-5, abs=1e-9)

    def test_energy_continuous_across_cutoff(self, system, calc):
        """At the exact shift where a dimer crosses the cutoff, the
        hard-cutoff MBE energy is discontinuous while the switched one
        is smooth."""
        mol = system.parent
        cents = system.centroids()
        out_dir = cents[0] - cents.mean(axis=0)
        out_dir /= np.linalg.norm(out_dir)
        r_cut = 6.5 * A
        atoms0 = list(system.monomers[0].atoms)

        # find the shift at which the nearest out-of-cutoff pair crosses
        def pair_dist(shift, j):
            c = mol.coords.copy()
            c[atoms0] += shift * out_dir
            return float(np.linalg.norm(
                c[atoms0].mean(axis=0)
                - c[list(system.monomers[j].atoms)].mean(axis=0)
            ))

        from scipy.optimize import brentq

        crossings = []
        for j in range(1, system.nmonomers):
            def f(s, j=j):
                return pair_dist(s, j) - r_cut

            if f(0.0) * f(8.0 * A) < 0:
                crossings.append(brentq(f, 0.0, 8.0 * A, xtol=1e-10))
        assert crossings, "no pair crosses the cutoff in the scan range"
        s0 = min(crossings)
        eps = 1e-4 * A

        def both(shift):
            c = mol.coords.copy()
            c[atoms0] += shift * out_dir
            e_sw, _ = mbe_energy_gradient_switched(
                system, calc, coords=c, r_on_dimer=5.0 * A,
                r_cut_dimer=r_cut, order=2,
            )
            plan = build_plan(system, r_cut, order=2, coords=c)
            e_h = mbe_energy_gradient(system, plan, calc, coords=c)[0]
            return e_sw, e_h

        sw_lo, h_lo = both(s0 - eps)
        sw_hi, h_hi = both(s0 + eps)
        hard_jump = abs(h_hi - h_lo)
        smooth_jump = abs(sw_hi - sw_lo)
        assert hard_jump > 1e-9  # the discontinuity the paper describes
        assert smooth_jump < hard_jump * 0.1  # switching removes it

    def test_order2(self, system, calc):
        e, g = mbe_energy_gradient_switched(
            system, calc, r_on_dimer=4.0 * A, r_cut_dimer=8.0 * A, order=2,
        )
        assert np.isfinite(e)
        np.testing.assert_allclose(g.sum(axis=0), 0.0, atol=1e-9)

    def test_invalid_order(self, system, calc):
        with pytest.raises(ValueError):
            mbe_energy_gradient_switched(
                system, calc, r_on_dimer=1.0, r_cut_dimer=2.0, order=4,
            )

    def test_order3_requires_radii(self, system, calc):
        with pytest.raises(ValueError, match="trimer"):
            mbe_energy_gradient_switched(
                system, calc, r_on_dimer=1.0, r_cut_dimer=2.0, order=3,
            )
