"""ContributionCurve behavior and the Fig. 5 cutoff methodology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator
from repro.frag import FragmentedSystem
from repro.frag.cutoffs import (
    ContributionCurve,
    dimer_contributions,
    trimer_contributions,
)
from repro.systems import water_cluster


class TestContributionCurve:
    def test_cutoff_picks_last_violation(self):
        curve = ContributionCurve(
            distances_angstrom=np.array([2.0, 5.0, 9.0, 14.0]),
            abs_contributions_kjmol=np.array([10.0, 1.0, 0.05, 0.01]),
            kind="dimer",
        )
        assert curve.cutoff(0.1) == pytest.approx(5.0)
        assert curve.cutoff(0.02) == pytest.approx(9.0)

    def test_cutoff_zero_when_all_below(self):
        curve = ContributionCurve(
            np.array([3.0, 6.0]), np.array([0.001, 0.0005]), "dimer"
        )
        assert curve.cutoff(0.1) == 0.0


class TestContributionScans:
    @pytest.fixture(scope="class")
    def system(self):
        return FragmentedSystem.by_components(water_cluster(6, seed=19))

    def test_reference_restricts_pairs(self, system):
        calc = PairwisePotentialCalculator()
        ref = dimer_contributions(system, calc, reference=2)
        allp = dimer_contributions(system, calc, reference=None)
        assert len(ref.distances_angstrom) == system.nmonomers - 1
        assert len(allp.distances_angstrom) == 15

    def test_rmax_limits_scan(self, system):
        calc = PairwisePotentialCalculator()
        near = dimer_contributions(system, calc, reference=0, r_max_angstrom=4.0)
        far = dimer_contributions(system, calc, reference=0, r_max_angstrom=100.0)
        assert len(near.distances_angstrom) <= len(far.distances_angstrom)
        assert (near.distances_angstrom <= 4.0 + 1e-9).all()

    def test_trimer_contributions_vanish_for_pairwise(self, system):
        """With a strictly pairwise potential, every trimer correction is
        numerically zero — the Fig. 5 scan must report that."""
        calc = PairwisePotentialCalculator()
        tc = trimer_contributions(system, calc, reference=0,
                                  r_max_angstrom=8.0)
        if len(tc.abs_contributions_kjmol):
            assert tc.abs_contributions_kjmol.max() < 1e-8

    def test_trimer_contributions_nonzero_with_three_body(self, system):
        calc = PairwisePotentialCalculator(at_strength=50.0)
        tc = trimer_contributions(system, calc, reference=0,
                                  r_max_angstrom=8.0)
        assert len(tc.abs_contributions_kjmol) > 0
        assert tc.abs_contributions_kjmol.max() > 1e-6
