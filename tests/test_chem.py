"""Molecule container, elements, geometry, bonds, xyz IO."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem import (
    Molecule,
    atomic_number,
    bond_graph,
    centroid_distance,
    connected_components,
    covalent_radius,
    detect_bonds,
    element,
    format_xyz,
    min_interatomic_distance,
    pairwise_distances,
    parse_xyz,
    rotated,
    rotation_matrix,
    sphere_cut,
)
from repro.constants import ANGSTROM_PER_BOHR, BOHR_PER_ANGSTROM


class TestElements:
    def test_lookup_by_symbol(self):
        assert element("C").number == 6
        assert element("c").number == 6

    def test_lookup_by_number(self):
        assert element(8).symbol == "O"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            element("Xx")
        with pytest.raises(KeyError):
            element(999)

    def test_atomic_number(self):
        assert atomic_number("N") == 7

    def test_covalent_radius_ordering(self):
        assert covalent_radius("H") < covalent_radius("C")


class TestMolecule:
    def test_electron_count(self, water):
        assert water.nelectrons == 10

    def test_charge_affects_electrons(self):
        mol = Molecule(["O"], [[0, 0, 0]], charge=-2)
        assert mol.nelectrons == 10

    def test_angstrom_roundtrip(self):
        mol = Molecule.from_angstrom(["H"], [[1.0, 0, 0]])
        assert mol.coords[0, 0] == pytest.approx(BOHR_PER_ANGSTROM)

    def test_nuclear_repulsion_h2(self, h2):
        assert h2.nuclear_repulsion() == pytest.approx(1.0 / 1.4)

    def test_nuclear_repulsion_gradient_fd(self, water_distorted):
        mol = water_distorted
        g = mol.nuclear_repulsion_gradient()
        h = 1e-6
        for a, x in [(0, 0), (1, 1), (2, 2)]:
            cp = mol.coords.copy()
            cp[a, x] += h
            cm = mol.coords.copy()
            cm[a, x] -= h
            fd = (
                mol.with_coords(cp).nuclear_repulsion()
                - mol.with_coords(cm).nuclear_repulsion()
            ) / (2 * h)
            assert g[a, x] == pytest.approx(fd, abs=1e-7)

    def test_concatenate(self, h2, water):
        dimer = Molecule.concatenate([h2, water])
        assert dimer.natoms == 5
        assert dimer.nelectrons == h2.nelectrons + water.nelectrons

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            Molecule.concatenate([])

    def test_translated(self, water):
        t = water.translated([1.0, 0.0, 0.0])
        np.testing.assert_allclose(t.coords - water.coords, [[1, 0, 0]] * 3)

    def test_formula_hill_order(self, water):
        assert water.formula() == "H2O"
        urea = Molecule(["C", "O", "N", "N", "H", "H", "H", "H"], np.zeros((8, 3)))
        assert urea.formula() == "CH4N2O"

    def test_masses(self, water):
        assert water.masses_amu[0] == pytest.approx(15.9994)

    def test_center_of_mass_near_oxygen(self, water):
        com = water.center_of_mass()
        d_o = np.linalg.norm(com - water.coords[0])
        d_h = np.linalg.norm(com - water.coords[1])
        assert d_o < d_h


class TestGeometry:
    def test_pairwise_distances(self):
        pts = np.array([[0, 0, 0], [3, 4, 0]], dtype=float)
        d = pairwise_distances(pts)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[0, 0] == 0.0

    def test_min_interatomic(self, h2, water):
        shifted = water.translated([10.0, 0, 0])
        assert min_interatomic_distance(h2, shifted) > 5.0

    def test_centroid_distance_translation(self, water):
        far = water.translated([5.0, 0, 0])
        assert centroid_distance(water, far) == pytest.approx(5.0)

    def test_rotation_matrix_orthogonal(self):
        R = rotation_matrix(np.array([1.0, 2.0, 3.0]), 0.7)
        np.testing.assert_allclose(R @ R.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(R) == pytest.approx(1.0)

    @given(st.floats(min_value=-np.pi, max_value=np.pi))
    @settings(max_examples=30, deadline=None)
    def test_property_rotation_preserves_distances(self, angle):
        mol = Molecule(["H", "H"], [[0, 0, 0], [0, 0, 1.4]])
        rot = rotated(mol, np.array([0.0, 1.0, 0.0]), angle)
        assert rot.distance(0, 1) == pytest.approx(1.4, abs=1e-10)

    def test_sphere_cut(self):
        pts = np.array([[0, 0, 0], [2, 0, 0], [0, 5, 0]], dtype=float)
        mask = sphere_cut(pts, np.zeros(3), 3.0)
        assert mask.tolist() == [True, True, False]


class TestBonds:
    def test_water_bonds(self, water):
        bonds = detect_bonds(water)
        assert sorted(bonds) == [(0, 1), (0, 2)]

    def test_separated_fragments(self, water):
        dimer = Molecule.concatenate([water, water.translated([20.0, 0, 0])])
        comps = connected_components(dimer)
        assert len(comps) == 2
        assert sorted(map(len, comps)) == [3, 3]

    def test_bond_graph_nodes(self, water):
        g = bond_graph(water)
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2


class TestXYZ:
    def test_roundtrip(self, water):
        text = format_xyz(water, comment="test")
        back = parse_xyz(text)
        np.testing.assert_allclose(back.coords, water.coords, atol=1e-9)
        assert back.symbols == water.symbols

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_xyz("not an xyz file")
        with pytest.raises(ValueError):
            parse_xyz("2\ncomment\nH 0 0 0\n")  # missing atom

    def test_format_units_angstrom(self, h2):
        text = format_xyz(h2)
        z = float(text.splitlines()[3].split()[3])
        assert z == pytest.approx(1.4 * ANGSTROM_PER_BOHR)
