"""Cross-cutting property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calculators import PairwisePotentialCalculator
from repro.chem import Molecule
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import FragmentedSystem, build_plan, mbe_energy
from repro.integrals.hermite import cartesian_components, e_table, ncart
from repro.md import AsyncCoordinator, run_serial
from repro.md.integrators import maxwell_boltzmann_velocities
from repro.systems import water_cluster


class TestHermiteProperties:
    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=-2.0, max_value=2.0),
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_e_table_gaussian_product_theorem(self, i, j, Q, a, b):
        """E_0^{00} must equal the Gaussian product prefactor, and the
        total Hermite weight E_0^{ij} reproduces the 1D overlap."""
        E = e_table(i, j, Q, a, b)
        p = a + b
        assert E[0, 0, 0] == pytest.approx(np.exp(-a * b / p * Q * Q), rel=1e-12)
        # 1D overlap from E_0 against brute-force quadrature
        x = np.linspace(-12, 12, 20001)
        A, B = 0.0, -Q  # A - B = Q
        integrand = (x - A) ** i * (x - B) ** j * np.exp(
            -a * (x - A) ** 2 - b * (x - B) ** 2
        )
        ref = np.trapezoid(integrand, x)
        val = E[i, j, 0] * np.sqrt(np.pi / p)
        assert val == pytest.approx(ref, rel=1e-6, abs=1e-12)

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_cartesian_component_count(self, l):
        comps = cartesian_components(l)
        assert len(comps) == ncart(l) == (l + 1) * (l + 2) // 2
        assert all(sum(c) == l for c in comps)
        assert len(set(comps)) == len(comps)


class TestMBECoefficientProperties:
    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_coefficients_sum_rule(self, n, seed):
        """For ANY cutoff, the MBE coefficients of fragments containing a
        given monomer must make that monomer counted exactly once:
        sum over fragments f of coef(f) * [m in f] == 1."""
        mol = water_cluster(n, seed=seed % 100)
        fs = FragmentedSystem.by_components(mol)
        rng = np.random.default_rng(seed)
        r_tri = float(rng.uniform(2, 20)) * BOHR_PER_ANGSTROM
        r_dim = r_tri + float(rng.uniform(0, 20)) * BOHR_PER_ANGSTROM
        plan = build_plan(fs, r_dim, r_tri, order=3)
        for m in range(n):
            total = sum(
                c for key, c in plan.coefficients.items() if m in key
            )
            assert total == pytest.approx(1.0, abs=1e-12)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_trimer_coefficients_always_one(self, n):
        mol = water_cluster(n, seed=3)
        fs = FragmentedSystem.by_components(mol)
        plan = build_plan(fs, 1e9, 1e9, order=3)
        for t in plan.trimers:
            assert plan.coefficients[t] == pytest.approx(1.0)

    @given(
        st.integers(min_value=3, max_value=6),
        st.floats(min_value=3.0, max_value=25.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_mbe2_energy_bounded_by_exact(self, n, r_cut):
        """For the pairwise surrogate, MBE2 truncation only *removes*
        pair interactions: the assembled energy differs from exact by
        exactly the excluded far-pair sum (here: check consistency via
        monotonicity in the cutoff)."""
        mol = water_cluster(n, seed=11)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        e_small = mbe_energy(
            fs, build_plan(fs, r_cut * BOHR_PER_ANGSTROM, order=2), calc
        )
        e_full = mbe_energy(fs, build_plan(fs, 1e9, order=2), calc)
        exact, _ = calc.energy_gradient(mol)
        assert e_full == pytest.approx(exact, abs=1e-9)
        # truncation error shrinks as the cutoff covers more pairs
        e_mid = mbe_energy(
            fs, build_plan(fs, (r_cut + 30) * BOHR_PER_ANGSTROM, order=2), calc
        )
        assert abs(e_mid - exact) <= abs(e_small - exact) + 1e-12


class TestSchedulerProperties:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=12, deadline=None)
    def test_async_always_matches_sync_potential(self, n, nsteps, replan):
        """Whatever the system size, step count and replan window, the
        asynchronous coordinator must produce exactly the synchronous
        trajectory (same physics, different schedule)."""
        mol = water_cluster(n, seed=5)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        v0 = maxwell_boltzmann_velocities(mol.masses_au, 120, seed=8)
        results = []
        for sync in (False, True):
            co = AsyncCoordinator(
                fs, nsteps=nsteps, dt_fs=0.5, r_dimer_bohr=1e9,
                mbe_order=2, velocities=v0, replan_interval=replan,
                synchronous=sync,
            )
            run_serial(co, calc)
            _, pe, ke = co.trajectory_energies()
            results.append((pe, ke))
        np.testing.assert_allclose(results[0][0], results[1][0], atol=1e-10)
        np.testing.assert_allclose(results[0][1], results[1][1], atol=1e-10)

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_task_count_invariant(self, n, nsteps):
        """Every polymer of every evaluation step is issued exactly once."""
        mol = water_cluster(n, seed=7)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        co = AsyncCoordinator(
            fs, nsteps=nsteps, dt_fs=0.5, r_dimer_bohr=1e9, mbe_order=2,
            temperature_k=80.0, replan_interval=2,
        )
        run_serial(co, calc)
        # fragments with zero MBE coefficient are never computed (e.g.
        # both monomers of a 2-monomer system telescope away), so the
        # reference count comes from the plan itself
        npoly = build_plan(fs, 1e9, order=2).npolymers
        assert co.tasks_issued == npoly * (nsteps + 1)


class TestMoleculeProperties:
    @given(
        st.lists(
            st.sampled_from(["H", "C", "N", "O"]), min_size=1, max_size=8
        ),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_nuclear_repulsion_invariances(self, symbols, seed):
        rng = np.random.default_rng(seed)
        coords = rng.uniform(-5, 5, (len(symbols), 3))
        # ensure no coincident nuclei
        coords += np.arange(len(symbols))[:, None] * 7.0
        mol = Molecule(symbols, coords)
        e = mol.nuclear_repulsion()
        assert e >= 0
        shifted = mol.translated(rng.uniform(-3, 3, 3))
        assert shifted.nuclear_repulsion() == pytest.approx(e, rel=1e-12)
        g = mol.nuclear_repulsion_gradient()
        np.testing.assert_allclose(g.sum(axis=0), 0.0, atol=1e-9)
