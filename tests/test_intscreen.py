"""Schwarz screening and the cross-call integral workspace.

Two properties under test:

* **Screening is rigorously bounded** — skipping shell-pair blocks whose
  Cauchy-Schwarz bound falls below the tolerance must leave energies
  within 1e-9 Ha and gradients within 1e-8 Ha/Bohr of the unscreened
  path, the accumulated neglected bound must dominate the actual error,
  and screened gradients must still sum exactly to zero (translation
  invariance: a skipped bra pair drops its auxiliary images too).
* **Workspace caching is exact** — every product served from an
  `IntegralWorkspace` is bitwise what a fresh build would produce;
  geometry changes re-key the shell-pair entries, Schwarz bounds are
  re-screened (or conservatively inflated) on displacement, and a
  composition change can never hit another basis's entries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.basis import BasisSet, auto_auxiliary
from repro.calculators import RIHFCalculator, RIMP2Calculator
from repro.chem import Molecule
from repro.frag import FragmentedSystem, build_plan, mbe_energy_gradient
from repro.integrals import (
    IntegralWorkspace,
    contract_eri3c_deriv,
    eri2c,
    eri3c,
    hcore,
    overlap,
)
from repro.integrals.workspace import basis_composition_key
from repro.systems import glycine_chain, water_cluster

#: acceptance tolerances from the issue: screened results must stay
#: within these of the unscreened path at the default tolerance
ENERGY_TOL_HA = 1.0e-9
GRAD_TOL = 1.0e-8

BIG = 1.0e9  # cutoff that includes every polymer


@pytest.fixture(scope="module")
def water_dimer() -> Molecule:
    return water_cluster(2, seed=3)


@pytest.fixture(scope="module")
def glycine() -> Molecule:
    return glycine_chain(1)


def _exact_calc(cls, **kw):
    """A calculator with caching and screening both fully off."""
    return cls(workspace=IntegralWorkspace(enabled=False), int_screen=0.0,
               **kw)


class TestScreeningCorrectness:
    def test_eri3c_error_within_neglected_bound(self, water_dimer):
        bs = BasisSet.build(water_dimer, "sto-3g")
        aux = auto_auxiliary(water_dimer)
        exact = eri3c(bs, aux)
        ws = IntegralWorkspace()
        screened = eri3c(bs, aux, screen=1.0e-8, workspace=ws)
        assert ws.pairs_skipped > 0, "tolerance chosen to skip something"
        err = float(np.abs(screened - exact).sum())
        assert err <= ws.neglected_bound * (1 + 1e-10)
        assert float(np.abs(screened - exact).max()) < 1e-8

    def test_screened_deriv_translation_invariance(self, water_dimer):
        bs = BasisSet.build(water_dimer, "sto-3g")
        aux = auto_auxiliary(water_dimer)
        rng = np.random.default_rng(5)
        Z = rng.standard_normal((bs.nbf, bs.nbf, aux.nbf))
        Z = Z + Z.transpose(1, 0, 2)
        ws = IntegralWorkspace()
        g = contract_eri3c_deriv(bs, aux, Z, water_dimer.natoms,
                                 screen=1.0e-6, workspace=ws)
        assert ws.pairs_skipped > 0
        # a skipped bra pair removes its aux-center images too, so the
        # screened gradient still sums exactly to zero
        np.testing.assert_allclose(g.sum(axis=0), 0.0, atol=1e-12)

    def test_rihf_water_dimer(self, water_dimer):
        e0, g0 = _exact_calc(RIHFCalculator).energy_gradient(water_dimer)
        calc = RIHFCalculator(workspace=IntegralWorkspace(),
                              int_screen=1.0e-12)
        e1, g1 = calc.energy_gradient(water_dimer)
        assert abs(e1 - e0) <= ENERGY_TOL_HA
        np.testing.assert_allclose(g1, g0, atol=GRAD_TOL)

    def test_rimp2_glycine_monomer(self, glycine):
        e0, g0 = _exact_calc(RIMP2Calculator).energy_gradient(glycine)
        calc = RIMP2Calculator(workspace=IntegralWorkspace(),
                               int_screen=1.0e-12)
        e1, g1 = calc.energy_gradient(glycine)
        assert abs(e1 - e0) <= ENERGY_TOL_HA
        np.testing.assert_allclose(g1, g0, atol=GRAD_TOL)

    def test_mbe3_assembled_gradient(self):
        """Screening composes through MBE assembly: the full inclusion-
        exclusion sum over screened fragment gradients stays within the
        per-fragment tolerances of the exact-assembled result."""
        mol = water_cluster(3, seed=11)
        fs = FragmentedSystem.by_components(mol)
        plan = build_plan(fs, BIG, BIG, order=3)
        e0, g0 = mbe_energy_gradient(fs, plan, _exact_calc(RIHFCalculator))
        ws = IntegralWorkspace()
        calc = RIHFCalculator(workspace=ws, int_screen=1.0e-12)
        e1, g1 = mbe_energy_gradient(fs, plan, calc)
        assert abs(e1 - e0) <= 10 * ENERGY_TOL_HA  # 7 fragments assemble
        np.testing.assert_allclose(g1, g0, atol=10 * GRAD_TOL)
        assert ws.hits > 0  # fragments share monomer shell pairs


class TestWorkspaceExactness:
    """Served-from-cache arrays must be bitwise identical to fresh builds."""

    def test_integrals_bitwise(self, water_dimer):
        bs = BasisSet.build(water_dimer, "sto-3g")
        aux = auto_auxiliary(water_dimer)
        ws = IntegralWorkspace()
        for _ in range(2):  # second pass is served from the cache
            assert np.array_equal(overlap(bs, workspace=ws), overlap(bs))
            assert np.array_equal(hcore(bs, water_dimer, workspace=ws),
                                  hcore(bs, water_dimer))
            assert np.array_equal(eri3c(bs, aux, workspace=ws),
                                  eri3c(bs, aux))
            assert np.array_equal(eri2c(aux, workspace=ws), eri2c(aux))
        assert ws.hits > 0

    def test_repeat_energy_bitwise(self, water_dimer):
        calc = RIHFCalculator(workspace=IntegralWorkspace(), int_screen=0.0)
        e1, g1 = calc.energy_gradient(water_dimer)
        e2, g2 = calc.energy_gradient(water_dimer)
        assert e1 == e2
        assert np.array_equal(g1, g2)


class TestWorkspaceInvalidation:
    def test_pair_entries_rekey_on_geometry(self, water_dimer):
        """Moving the geometry misses the pair cache (keys carry exact
        centers) and the fresh entries reproduce the exact integrals."""
        bs1 = BasisSet.build(water_dimer, "sto-3g")
        moved = water_dimer.with_coords(water_dimer.coords + 0.05)
        bs2 = BasisSet.build(moved, "sto-3g")
        ws = IntegralWorkspace()
        assert np.array_equal(overlap(bs1, workspace=ws), overlap(bs1))
        misses_before = ws.misses
        assert np.array_equal(overlap(bs2, workspace=ws), overlap(bs2))
        assert ws.misses > misses_before

    def test_schwarz_rebuilds_beyond_displacement(self, water_dimer):
        bs1 = BasisSet.build(water_dimer, "sto-3g")
        ws = IntegralWorkspace(displacement_tol=0.25)
        Q1 = ws.schwarz_bounds(bs1)
        assert ws.bound_rebuilds == 1
        # beyond the tolerance: recomputed, not inflated
        far = water_dimer.with_coords(water_dimer.coords + 1.0)
        bs2 = BasisSet.build(far, "sto-3g")
        Q2 = ws.schwarz_bounds(bs2)
        assert ws.bound_rebuilds == 2
        assert ws.stale_serves == 0
        from repro.integrals import schwarz_pair_bounds

        assert np.array_equal(Q2, schwarz_pair_bounds(bs2))
        assert Q1.shape == Q2.shape

    def test_schwarz_stale_serve_within_displacement(self, water_dimer):
        bs1 = BasisSet.build(water_dimer, "sto-3g")
        ws = IntegralWorkspace(displacement_tol=0.25, stale_safety=16.0)
        Q1 = ws.schwarz_bounds(bs1)
        near = water_dimer.with_coords(water_dimer.coords + 0.01)
        bs2 = BasisSet.build(near, "sto-3g")
        Q2 = ws.schwarz_bounds(bs2)
        assert ws.stale_serves == 1
        assert ws.bound_rebuilds == 1
        # served stale bounds are conservatively inflated
        np.testing.assert_allclose(Q2, Q1 * 16.0)
        # unchanged geometry serves the exact cached table
        Q3 = ws.schwarz_bounds(bs1)
        assert np.array_equal(Q3, Q1)

    def test_displacement_tol_zero_pins_decisions(self, water_dimer):
        """Deterministic mode: any movement recomputes the bounds, so
        screening decisions are a pure function of the current geometry."""
        bs1 = BasisSet.build(water_dimer, "sto-3g")
        ws = IntegralWorkspace(displacement_tol=0.0)
        ws.schwarz_bounds(bs1)
        tiny = water_dimer.with_coords(water_dimer.coords + 1e-9)
        ws.schwarz_bounds(BasisSet.build(tiny, "sto-3g"))
        assert ws.bound_rebuilds == 2
        assert ws.stale_serves == 0

    def test_composition_change_is_a_new_key(self, water_dimer):
        bs_w = BasisSet.build(water_dimer, "sto-3g")
        gly = glycine_chain(1)
        bs_g = BasisSet.build(gly, "sto-3g")
        assert basis_composition_key(bs_w) != basis_composition_key(bs_g)
        ws = IntegralWorkspace()
        ws.schwarz_bounds(bs_w)
        ws.schwarz_bounds(bs_g)
        assert ws.bound_rebuilds == 2  # no cross-composition hit

    def test_lru_eviction_preserves_exactness(self, water_dimer):
        # The batched kernels cache one class-table entry per basis, so
        # a second basis is needed to give the tiny budget something to
        # evict; the loop kernels evict per-pair entries along the way.
        bs = BasisSet.build(water_dimer, "sto-3g")
        bs2 = BasisSet.build(water_dimer, "repro-dz")
        ws = IntegralWorkspace(max_bytes=20_000)  # far below working set
        assert np.array_equal(overlap(bs, workspace=ws), overlap(bs))
        assert np.array_equal(hcore(bs, water_dimer, workspace=ws),
                              hcore(bs, water_dimer))
        assert np.array_equal(overlap(bs2, workspace=ws), overlap(bs2))
        assert ws.evictions > 0
        assert ws.nbytes <= 20_000 or len(ws) == 1
        # evicted tables rebuild transparently and stay exact
        assert np.array_equal(overlap(bs, workspace=ws), overlap(bs))

    def test_disabled_workspace_stores_nothing(self, water_dimer):
        bs = BasisSet.build(water_dimer, "sto-3g")
        ws = IntegralWorkspace(enabled=False)
        assert np.array_equal(overlap(bs, workspace=ws), overlap(bs))
        assert len(ws) == 0
        assert ws.hits == 0
        assert ws.misses > 0
