"""Geometry optimization and harmonic vibrational analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator, RIMP2Calculator
from repro.chem import Molecule
from repro.constants import GRADIENT_RMSD_THRESHOLD
from repro.frag import FragmentedSystem
from repro.opt import optimize
from repro.systems import water_cluster, water_monomer
from repro.vibrations import (
    harmonic_analysis,
    numerical_hessian,
    zero_point_energy,
)


class TestOptimization:
    def test_h2_mp2_bond_length(self):
        calc = RIMP2Calculator(basis="sto-3g")
        mol = Molecule(["H", "H"], [[0, 0, 0], [0, 0, 1.6]])
        res = optimize(mol, calc)
        assert res.converged
        assert res.gradient_rmsd < GRADIENT_RMSD_THRESHOLD
        # STO-3G MP2 H2 equilibrium is ~1.37 Bohr
        assert res.molecule.distance(0, 1) == pytest.approx(1.37, abs=0.02)
        # energy decreased monotonically overall
        assert res.energy < res.energies[0]

    def test_water_hf_geometry(self):
        from repro.calculators import RIHFCalculator

        calc = RIHFCalculator(basis="sto-3g")
        res = optimize(water_monomer(), calc)
        assert res.converged
        # STO-3G water: r(OH) ~ 0.99 A = 1.87 Bohr, angle ~ 100 deg
        r1 = res.molecule.distance(0, 1)
        r2 = res.molecule.distance(0, 2)
        assert r1 == pytest.approx(r2, abs=1e-3)
        assert 1.7 < r1 < 2.0
        v1 = res.molecule.coords[1] - res.molecule.coords[0]
        v2 = res.molecule.coords[2] - res.molecule.coords[0]
        ang = np.degrees(
            np.arccos(v1 @ v2 / np.linalg.norm(v1) / np.linalg.norm(v2))
        )
        assert 95 < ang < 110

    def test_fragmented_optimization(self):
        mol = water_cluster(3, seed=2)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        res = optimize(
            fs, calc, r_dimer_bohr=1e9, mbe_order=2, max_iter=400,
        )
        assert res.converged
        assert res.gradient_rmsd < GRADIENT_RMSD_THRESHOLD

    def test_max_iter_respected(self):
        calc = PairwisePotentialCalculator()
        mol = water_cluster(2, seed=4)
        res = optimize(mol, calc, max_iter=1, gtol_rmsd=1e-12)
        assert not res.converged


class TestVibrations:
    @pytest.fixture(scope="class")
    def h2_analysis(self):
        calc = RIMP2Calculator(basis="sto-3g")
        mol = Molecule(["H", "H"], [[0, 0, 0], [0, 0, 1.6]])
        opt = optimize(mol, calc)
        return harmonic_analysis(opt.molecule, calc)

    def test_hessian_symmetric(self):
        calc = PairwisePotentialCalculator()
        mol = water_cluster(2, seed=5)
        H = numerical_hessian(mol, calc)
        np.testing.assert_allclose(H, H.T, atol=1e-10)

    def test_h2_mode_count(self, h2_analysis):
        # diatomic: 3 translations + 2 rotations ~ 0, one real stretch
        assert h2_analysis.n_zero_modes(threshold_cm1=50.0) == 5
        assert h2_analysis.n_imaginary() == 0
        assert len(h2_analysis.frequencies_cm1) == 6

    def test_h2_stretch_frequency(self, h2_analysis):
        stretch = h2_analysis.frequencies_cm1[-1]
        # H2 harmonic frequency ~4400 cm-1 experimentally; STO-3G/MP2
        # overestimates — accept a broad physical window
        assert 3500 < stretch < 6500

    def test_zero_point_energy(self, h2_analysis):
        zpe = zero_point_energy(h2_analysis)
        stretch = h2_analysis.frequencies_cm1[-1]
        assert zpe == pytest.approx(0.5 * stretch / 219474.631363, rel=1e-6)

    def test_displaced_geometry_has_imaginary_mode(self):
        """A clearly stretched H2 lies on the repulsive wall's far side
        of the inflection: the Hessian eigenvalue goes negative."""
        calc = RIMP2Calculator(basis="sto-3g")
        mol = Molecule(["H", "H"], [[0, 0, 0], [0, 0, 2.6]])
        va = harmonic_analysis(mol, calc)
        assert va.n_imaginary() >= 1
