"""Numerical resilience: SCF recovery cascade and divergence sentinels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator
from repro.chem import Molecule
from repro.frag import FragmentedSystem
from repro.md import (
    FailurePolicy,
    FaultInjectingCalculator,
    NumericalDivergenceError,
    run_parallel,
    run_serial,
)
from repro.md.scheduler import AsyncCoordinator
from repro.md.integrators import maxwell_boltzmann_velocities
from repro.numerics import ensure_finite
from repro.scf import (
    DEFAULT_LADDER,
    RecoveryStage,
    SCFConvergenceError,
    rhf,
    rhf_with_recovery,
)
from repro.systems import water_cluster
from repro.trace import Tracer

BIG = 1.0e6
DIMER_NATOMS = 6


def stretched_water(factor: float = 2.2) -> Molecule:
    """Water with both OH bonds stretched — a pathological SCF case."""
    base = Molecule.from_angstrom(
        ["O", "H", "H"],
        [[0.0, 0.0, 0.1173], [0.0, 0.7572, -0.4692], [0.0, -0.7572, -0.4692]],
    )
    c = base.coords.copy()
    c[1] = c[0] + factor * (c[1] - c[0])
    c[2] = c[0] + factor * (c[2] - c[0])
    return base.with_coords(c)


class TestEnsureFinite:
    def test_passes_finite(self):
        ensure_finite("ctx", energy=1.0, gradient=np.ones((2, 3)))

    def test_skips_none(self):
        ensure_finite("ctx", energy=1.0, gradient=None)

    def test_raises_on_nan_with_context(self):
        with pytest.raises(NumericalDivergenceError, match="forces"):
            ensure_finite("step 3", forces=np.array([1.0, np.nan]))
        with pytest.raises(NumericalDivergenceError, match="step 3"):
            ensure_finite("step 3", forces=np.array([1.0, np.nan]))

    def test_raises_on_inf_scalar(self):
        with pytest.raises(NumericalDivergenceError, match="energy"):
            ensure_finite("ctx", energy=float("inf"))

    def test_is_typed_runtime_error(self):
        assert issubclass(NumericalDivergenceError, RuntimeError)


class TestSCFSentinels:
    def test_nan_perturbation_raises_typed_error(self, water):
        """A NaN one-electron perturbation must surface as a typed
        divergence error, never as a silently NaN SCF energy."""
        ref = rhf(water)
        n = len(ref.eps)
        with pytest.raises(NumericalDivergenceError):
            rhf(water, h_extra=np.full((n, n), np.nan))

    def test_damping_validation(self, water):
        with pytest.raises(ValueError, match="damping"):
            rhf(water, damping=1.0)
        with pytest.raises(ValueError, match="damping"):
            rhf(water, damping=-0.1)

    def test_max_iter_validation(self, water):
        with pytest.raises(ValueError, match="max_iter"):
            rhf(water, max_iter=0)


class TestRecoveryStage:
    def test_overrides_merge_over_caller(self):
        stage = RecoveryStage("s", {"damping": 0.3, "level_shift": 0.5})
        out = stage.apply({"max_iter": 10, "damping": 0.0})
        assert out == {"max_iter": 10, "damping": 0.3, "level_shift": 0.5}

    def test_max_iter_scale_multiplies(self):
        stage = RecoveryStage("s", {"max_iter_scale": 4})
        assert stage.apply({"max_iter": 10})["max_iter"] == 40
        # defaults to scaling rhf's own default budget
        assert stage.apply({})["max_iter"] == 600

    def test_default_ladder_escalation_order(self):
        names = [s.name for s in DEFAULT_LADDER]
        assert names == [
            "damp", "level-shift", "diis-reset", "core-guess", "max-iter"
        ]


class TestRecoveryCascade:
    def test_clean_solve_reports_empty_recovery(self, water):
        res = rhf_with_recovery(water)
        assert res.recovery == ()
        assert res.converged

    def test_clean_solve_matches_bare(self, water):
        assert rhf_with_recovery(water).energy == rhf(water).energy

    def test_bare_fails_on_stretched_geometry(self):
        with pytest.raises(SCFConvergenceError):
            rhf(stretched_water(2.5), max_iter=50)

    def test_cascade_recovers_stretched_geometry(self):
        """The acceptance case: a geometry the bare loop cannot converge
        must converge through the ladder, recording the path taken."""
        mol = stretched_water(2.5)
        tracer = Tracer()
        res = rhf_with_recovery(mol, max_iter=50, tracer=tracer)
        assert res.converged
        assert np.isfinite(res.energy)
        assert res.recovery == ("damp",)  # first rung suffices here
        names = [e.get("name") for e in tracer.events]
        assert "scf.recover" in names
        assert "scf.recovered" in names

    def test_cascade_climbs_full_ladder(self):
        """A tight iteration budget defeats the early rungs too; the run
        must survive all the way to the raised-iteration rung."""
        mol = stretched_water(2.2)
        with pytest.raises(SCFConvergenceError):
            rhf(mol, max_iter=15)
        res = rhf_with_recovery(mol, max_iter=15)
        assert res.converged
        assert res.recovery[-1] == "max-iter"
        assert len(res.recovery) == len(DEFAULT_LADDER)

    def test_cascade_recovers_without_diis(self):
        """With DIIS disabled entirely the bare loop limit-cycles; the
        ladder must still find a converged solution."""
        mol = stretched_water(2.2)
        with pytest.raises(SCFConvergenceError):
            rhf(mol, use_diis=False, max_iter=150)
        res = rhf_with_recovery(mol, use_diis=False, max_iter=150)
        assert res.converged
        assert res.recovery  # some rung was needed

    def test_exhausted_ladder_raises_chained(self):
        hopeless = (RecoveryStage("hopeless", {"max_iter": 2}),)
        with pytest.raises(SCFConvergenceError, match="exhausted"):
            rhf_with_recovery(
                stretched_water(2.5), ladder=hopeless, max_iter=2
            )

    def test_diis_singular_subspace_degrades_gracefully(self):
        """Duplicate error vectors make the DIIS B-matrix exactly
        singular; the accelerator must shrink its subspace and fall back
        to the bare Fock matrix instead of recursing forever."""
        from repro.scf import DIIS

        d = DIIS(max_vecs=4)
        F = np.eye(3)
        err = np.full((3, 3), 1e-3)
        for _ in range(6):
            out = d.update(F, err)
            assert np.all(np.isfinite(out))


class TestLevelShiftRegression:
    """The returned eps/C must come from the bare (unshifted) converged
    Fock matrix — a leaked level shift offsets every virtual orbital."""

    @pytest.mark.parametrize("use_diis", [True, False])
    def test_eps_unshifted(self, water, use_diis):
        ref = rhf(water, use_diis=use_diis)
        shifted = rhf(water, use_diis=use_diis, level_shift=0.5)
        assert shifted.energy == pytest.approx(ref.energy, abs=1e-8)
        # a leaked shift would move virtuals by +0.5 Ha; require far
        # better agreement than that on every orbital
        np.testing.assert_allclose(shifted.eps, ref.eps, atol=1e-5)

    def test_eps_unshifted_with_damping(self, water):
        ref = rhf(water)
        shifted = rhf(water, level_shift=0.5, damping=0.3, diis_restart=8)
        np.testing.assert_allclose(shifted.eps, ref.eps, atol=1e-5)


@pytest.fixture(scope="module")
def w4_system():
    return FragmentedSystem.by_components(water_cluster(4, seed=6))


@pytest.fixture(scope="module")
def surrogate():
    return PairwisePotentialCalculator()


def _coordinator(system, nsteps=2, **kw):
    v0 = maxwell_boltzmann_velocities(system.parent.masses_au, 150, seed=4)
    base = dict(
        nsteps=nsteps, dt_fs=0.5, r_dimer_bohr=BIG, mbe_order=2,
        velocities=v0, replan_interval=3,
    )
    base.update(kw)
    return AsyncCoordinator(system, **base)


class TestInjectedNumericalFaults:
    def test_scf_fail_mode_raises_typed(self, surrogate):
        calc = FaultInjectingCalculator(surrogate, mode="scf_fail")
        with pytest.raises(SCFConvergenceError, match="injected"):
            calc.energy_gradient(water_cluster(1, seed=0), attempt=0)

    def test_scf_fail_retried_to_clean_run(self, w4_system, surrogate):
        """An injected SCF failure (cascade exhausted on a worker) rides
        the ordinary retry path and leaves a clean trajectory."""
        faulty = FaultInjectingCalculator(
            surrogate, fail_attempts=1, fail_natoms=(DIMER_NATOMS,),
            mode="scf_fail",
        )
        co = _coordinator(w4_system)
        report = run_parallel(co, faulty, nworkers=2)
        assert co.done()
        assert report.clean
        assert report.retries > 0

    def test_nan_forces_quarantined_never_silent(self, w4_system, surrogate):
        """Persistent NaN forces must become typed quarantine records —
        and must never reach the integrator as NaN coordinates."""
        faulty = FaultInjectingCalculator(
            surrogate, fail_attempts=99, fail_natoms=(DIMER_NATOMS,),
            mode="nan_forces",
        )
        co = _coordinator(w4_system)
        report = run_parallel(
            co, faulty, nworkers=2,
            policy=FailurePolicy(max_retries=1, quarantine=True),
        )
        assert co.done()
        assert not report.clean
        assert all(
            "NumericalDivergenceError" in q.error for q in report.quarantined
        )
        # the trajectory that survives quarantine is finite everywhere
        _, pe, ke = co.trajectory_energies()
        assert np.all(np.isfinite(pe)) and np.all(np.isfinite(ke))
        assert np.all(np.isfinite(co.coords))

    def test_nan_forces_serial_raises_typed(self, w4_system, surrogate):
        faulty = FaultInjectingCalculator(
            surrogate, fail_attempts=99, fail_natoms=(DIMER_NATOMS,),
            mode="nan_forces",
        )
        co = _coordinator(w4_system)
        with pytest.raises(NumericalDivergenceError):
            run_serial(co, faulty)
