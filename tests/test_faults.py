"""Fault-tolerant parallel driver: retries, quarantine, hangs, crashes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator
from repro.frag import FragmentedSystem
from repro.md import (
    AsyncCoordinator,
    FailurePolicy,
    FaultInjectingCalculator,
    TransientWorkerError,
    WorkerFailure,
    run_parallel,
    run_serial,
)
from repro.md.integrators import maxwell_boltzmann_velocities
from repro.systems import water_cluster

BIG = 1.0e6
#: a water dimer fragment has 6 atoms — the injector's target
DIMER_NATOMS = 6


@pytest.fixture(scope="module")
def w4_system():
    return FragmentedSystem.by_components(water_cluster(4, seed=6))


@pytest.fixture(scope="module")
def surrogate():
    return PairwisePotentialCalculator()


def _coordinator(system, nsteps=4, **kw):
    v0 = maxwell_boltzmann_velocities(system.parent.masses_au, 150, seed=4)
    base = dict(
        nsteps=nsteps, dt_fs=0.5, r_dimer_bohr=BIG, mbe_order=2,
        velocities=v0, replan_interval=3,
    )
    base.update(kw)
    return AsyncCoordinator(system, **base)


class TestFaultInjectingCalculator:
    def test_transparent_when_no_match(self, surrogate):
        mol = water_cluster(1, seed=0)
        calc = FaultInjectingCalculator(surrogate, fail_natoms=(999,))
        e1, g1 = calc.energy_gradient(mol)
        e2, g2 = surrogate.energy_gradient(mol)
        assert e1 == e2
        np.testing.assert_array_equal(g1, g2)

    def test_fails_below_attempt_threshold(self, surrogate):
        mol = water_cluster(1, seed=0)
        calc = FaultInjectingCalculator(surrogate, fail_attempts=2)
        with pytest.raises(TransientWorkerError):
            calc.energy_gradient(mol, attempt=0)
        with pytest.raises(TransientWorkerError):
            calc.energy_gradient(mol, attempt=1)
        e, g = calc.energy_gradient(mol, attempt=2)
        assert np.isfinite(e)

    def test_decision_is_stateless(self, surrogate):
        """The same (molecule, attempt) always gives the same outcome —
        the property that makes faulted parallel runs reproducible."""
        mol = water_cluster(1, seed=0)
        calc = FaultInjectingCalculator(surrogate, fail_attempts=1)
        for _ in range(3):
            with pytest.raises(TransientWorkerError):
                calc.energy_gradient(mol, attempt=0)
        for _ in range(3):
            calc.energy_gradient(mol, attempt=1)


class TestRetryPath:
    def test_single_raising_fragment_regression(self, w4_system, surrogate):
        """Regression for the unguarded fut.result(): one worker raising
        on a specific fragment must no longer kill the whole run."""
        faulty = FaultInjectingCalculator(
            surrogate, fail_attempts=1, fail_natoms=(DIMER_NATOMS,)
        )
        co = _coordinator(w4_system)
        report = run_parallel(co, faulty, nworkers=3)
        assert co.done()
        assert co.in_flight == 0
        assert report.clean
        # every dimer task failed once: 6 dimers x 5 evaluation steps
        assert report.retries == 6 * 5

    def test_retry_then_succeed_matches_clean_run(self, w4_system, surrogate):
        kw = dict(deterministic=True)
        clean = _coordinator(w4_system, **kw)
        run_parallel(clean, surrogate, nworkers=3)
        faulted = _coordinator(w4_system, **kw)
        faulty = FaultInjectingCalculator(
            surrogate, fail_attempts=2, fail_natoms=(DIMER_NATOMS,)
        )
        report = run_parallel(
            faulted, faulty, nworkers=3, policy=FailurePolicy(max_retries=3)
        )
        assert report.clean and report.retries > 0
        _, pe1, ke1 = clean.trajectory_energies()
        _, pe2, ke2 = faulted.trajectory_energies()
        # bitwise equality: deterministic reduction makes the trajectory
        # independent of completion order, so injected faults + retries
        # change nothing at all
        np.testing.assert_array_equal(pe1, pe2)
        np.testing.assert_array_equal(ke1, ke2)

    def test_retry_exhausted_raises(self, w4_system, surrogate):
        faulty = FaultInjectingCalculator(
            surrogate, fail_attempts=99, fail_natoms=(DIMER_NATOMS,)
        )
        co = _coordinator(w4_system, nsteps=2)
        with pytest.raises(WorkerFailure, match="attempt"):
            run_parallel(
                co, faulty, nworkers=2, policy=FailurePolicy(max_retries=1)
            )

    def test_failure_message_carries_diagnostics(self, w4_system, surrogate):
        faulty = FaultInjectingCalculator(surrogate, fail_attempts=99)
        co = _coordinator(w4_system, nsteps=1)
        with pytest.raises(WorkerFailure, match="in_flight"):
            run_parallel(
                co, faulty, nworkers=2, policy=FailurePolicy(max_retries=0)
            )

    def test_backoff_schedule(self):
        policy = FailurePolicy(backoff_s=0.1, backoff_factor=3.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.3)
        assert policy.backoff(3) == pytest.approx(0.9)


class TestQuarantine:
    def test_poison_fragment_reported_not_dropped(self, w4_system, surrogate):
        faulty = FaultInjectingCalculator(
            surrogate, fail_attempts=99, fail_natoms=(DIMER_NATOMS,)
        )
        co = _coordinator(w4_system, nsteps=2)
        report = run_parallel(
            co, faulty, nworkers=2,
            policy=FailurePolicy(max_retries=1, quarantine=True),
        )
        assert co.done()
        assert co.in_flight == 0
        assert not report.clean
        # 6 dimers x 3 evaluation steps all poisoned
        assert len(report.quarantined) == 6 * 3
        q = report.quarantined[0]
        assert q.attempts == 2  # initial try + one retry
        assert "TransientWorkerError" in q.error
        # the energy weight of the lost fragment is reported, so the
        # deficit is auditable rather than silent
        assert q.coefficient != 0.0
        # trajectory exists but is tainted (monomer-only energies)
        _, pe, _ = co.trajectory_energies()
        assert len(pe) == 3


class TestHungWorker:
    def test_timeout_detection_recovers(self, surrogate):
        """A worker that hangs on its first attempt is detected via the
        task deadline, its pool is rebuilt, and the retry completes."""
        system = FragmentedSystem.by_components(water_cluster(2, seed=3))
        faulty = FaultInjectingCalculator(
            surrogate, fail_attempts=1, fail_natoms=(DIMER_NATOMS,),
            mode="hang", hang_s=120.0,
        )
        co = _coordinator(system, nsteps=0)
        report = run_parallel(
            co, faulty, nworkers=2,
            policy=FailurePolicy(max_retries=2, task_timeout_s=1.5),
        )
        assert co.done()
        assert report.clean
        assert report.timeouts >= 1
        assert report.pool_restarts >= 1


class TestDeadWorker:
    def test_worker_process_death_recovers(self, w4_system, surrogate):
        """A worker that dies mid-task (os._exit) breaks the pool; the
        driver rebuilds it and resubmits every in-flight task."""
        faulty = FaultInjectingCalculator(
            surrogate, fail_attempts=1, fail_natoms=(DIMER_NATOMS,),
            mode="exit",
        )
        co = _coordinator(w4_system, nsteps=1)
        report = run_parallel(
            co, faulty, nworkers=2, policy=FailurePolicy(max_retries=3)
        )
        assert co.done()
        assert co.in_flight == 0
        assert report.clean
        assert report.pool_restarts >= 1


class TestConservationEquivalence:
    def test_faulted_run_conserves_like_clean_run(self, surrogate):
        """Energy conservation of a faulted-and-retried NVE run must be
        indistinguishable from a clean run (paper Fig. 6 criterion)."""
        system = FragmentedSystem.by_components(water_cluster(3, seed=1))
        kw = dict(nsteps=20, deterministic=True)
        clean = _coordinator(system, **kw)
        run_serial(clean, surrogate)
        faulted = _coordinator(system, **kw)
        faulty = FaultInjectingCalculator(
            surrogate, fail_attempts=1, fail_natoms=(DIMER_NATOMS,)
        )
        run_parallel(faulted, faulty, nworkers=2)
        _, pe_c, ke_c = clean.trajectory_energies()
        _, pe_f, ke_f = faulted.trajectory_energies()
        np.testing.assert_array_equal(pe_c, pe_f)
        np.testing.assert_array_equal(ke_c, ke_f)
        tot = pe_f + ke_f
        assert np.abs(tot - tot[0]).max() < 1e-3


class TestDeterministicMode:
    def test_deterministic_matches_direct_accumulation(self, w4_system,
                                                       surrogate):
        """Opt-in canonical-order reduction must agree with the paper's
        direct accumulation to float tolerance."""
        c1 = _coordinator(w4_system, deterministic=False)
        run_serial(c1, surrogate)
        c2 = _coordinator(w4_system, deterministic=True)
        run_serial(c2, surrogate)
        _, pe1, ke1 = c1.trajectory_energies()
        _, pe2, ke2 = c2.trajectory_energies()
        np.testing.assert_allclose(pe1, pe2, atol=1e-12)
        np.testing.assert_allclose(ke1, ke2, atol=1e-12)

    def test_parallel_deterministic_reproducible(self, w4_system, surrogate):
        """Two multi-worker runs race differently but must agree bitwise."""
        results = []
        for _ in range(2):
            co = _coordinator(w4_system, deterministic=True)
            run_parallel(co, surrogate, nworkers=3)
            results.append(co.trajectory_energies())
        np.testing.assert_array_equal(results[0][1], results[1][1])
        np.testing.assert_array_equal(results[0][2], results[1][2])
