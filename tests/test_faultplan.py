"""Seeded fault plans: pure decisions, typed injection, chaos end-to-end."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.calculators import GuessCache, PairwisePotentialCalculator
from repro.faults import (
    CKPT_FAULT_KINDS,
    FAULT_KINDS,
    TASK_FAULT_KINDS,
    FaultPlan,
    FaultPlanCalculator,
    FaultSpec,
    InjectedFault,
)
from repro.scf.rhf import SCFConvergenceError
from repro.systems import water_cluster


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="cosmic_ray")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="transient", probability=1.5)

    def test_key_coerced_to_int_tuple(self):
        spec = FaultSpec(kind="transient", key=[0, 2])
        assert spec.key == (0, 2)

    def test_site_partition(self):
        assert FaultSpec(kind="crash").site == "task"
        assert FaultSpec(kind="ckpt_torn").site == "checkpoint"
        assert set(TASK_FAULT_KINDS) | set(CKPT_FAULT_KINDS) == set(
            FAULT_KINDS
        )

    def test_matches_conjunctive(self):
        spec = FaultSpec(kind="transient", step=3, key=(1,), attempts=2)
        assert spec.matches(step=3, key=(1,), attempt=0)
        assert spec.matches(step=3, key=(1,), attempt=1)
        assert not spec.matches(step=3, key=(1,), attempt=2)
        assert not spec.matches(step=4, key=(1,), attempt=0)
        assert not spec.matches(step=3, key=(2,), attempt=0)

    def test_wildcards_match_anything(self):
        spec = FaultSpec(kind="transient")
        assert spec.matches(step=0)
        assert spec.matches(step=99, key=(4, 5), natoms=12)

    def test_dict_round_trip(self):
        spec = FaultSpec(kind="hang", step=2, key=(0, 1), attempts=3,
                         probability=0.25, hang_s=1.5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"kind": "transient", "severity": 9})


class TestFaultPlan:
    def test_first_matching_spec_wins(self):
        plan = FaultPlan(seed=1, specs=[
            FaultSpec(kind="transient", step=1),
            FaultSpec(kind="crash", step=1),
        ])
        spec = plan.decide("task", step=1, key=(0,))
        assert spec is not None and spec.kind == "transient"

    def test_site_filtering(self):
        plan = FaultPlan(seed=1, specs=[FaultSpec(kind="ckpt_torn", step=4)])
        assert plan.decide("task", step=4, key=(0,)) is None
        assert plan.decide("checkpoint", step=4) is not None
        with pytest.raises(ValueError, match="unknown fault site"):
            plan.decide("network", step=4)

    def test_probability_gate_is_pure(self):
        """Two independent plan copies reach identical verdicts for the
        identical event stream — the property worker pickling relies on."""
        specs = [FaultSpec(kind="transient", probability=0.4)]
        a = FaultPlan(seed=11, specs=list(specs))
        b = FaultPlan(seed=11, specs=list(specs))
        events = [(s, (k,)) for s in range(20) for k in range(3)]
        va = [a.decide("task", step=s, key=k) is not None for s, k in events]
        vb = [b.decide("task", step=s, key=k) is not None for s, k in events]
        assert va == vb
        assert any(va) and not all(va)  # the gate actually thins

    def test_different_seed_different_draws(self):
        specs = [FaultSpec(kind="transient", probability=0.4)]
        a = FaultPlan(seed=11, specs=list(specs))
        b = FaultPlan(seed=12, specs=list(specs))
        events = [(s, (k,)) for s in range(20) for k in range(3)]
        va = [a.decide("task", step=s, key=k) is not None for s, k in events]
        vb = [b.decide("task", step=s, key=k) is not None for s, k in events]
        assert va != vb

    def test_audit_records_fired_events(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec(kind="nan_forces", step=2)])
        plan.decide("task", step=1, key=(0,))
        plan.decide("task", step=2, key=(0,), natoms=3)
        assert len(plan.audit) == 1
        rec = plan.audit[0]
        assert (rec.kind, rec.step, rec.key, rec.natoms) == (
            "nan_forces", 2, (0,), 3
        )
        assert plan.audit_summary() == {"nan_forces": 1}

    def test_pickle_ships_specs_but_not_audit(self):
        plan = FaultPlan(seed=5, specs=[FaultSpec(kind="transient")])
        plan.decide("task", step=0, key=(0,))
        assert plan.audit
        copy = pickle.loads(pickle.dumps(plan))
        assert copy.seed == plan.seed and copy.specs == plan.specs
        assert copy.audit == []

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(seed=7, specs=[
            FaultSpec(kind="crash", step=1, key=(2,)),
            FaultSpec(kind="ckpt_bitflip", step=8),
        ])
        path = tmp_path / "plan.json"
        plan.save(path)
        back = FaultPlan.load(path)
        assert back.seed == 7 and back.specs == plan.specs

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="'specs' list"):
            FaultPlan.load(path)

    def test_derive_seed_stable_and_stream_separated(self):
        plan = FaultPlan(seed=9)
        assert plan.derive_seed("retry-jitter") == plan.derive_seed(
            "retry-jitter"
        )
        assert plan.derive_seed("retry-jitter") != plan.derive_seed("ckpt:4")
        assert 0 <= plan.derive_seed("x") < 2 ** 63


class _Frag:
    """Minimal fragment-molecule stand-in carrying the targeting fields."""

    def __init__(self, mol, key):
        self._mol = mol
        self.frag_key = key
        self.natoms = mol.natoms

    def __getattr__(self, name):
        return getattr(self._mol, name)


class TestFaultPlanCalculator:
    @pytest.fixture()
    def mol(self):
        return water_cluster(1, seed=3)

    def _calc(self, *specs, seed=0):
        return FaultPlanCalculator(
            PairwisePotentialCalculator(),
            FaultPlan(seed=seed, specs=list(specs)),
        )

    def test_clean_delegation_matches_inner(self, mol):
        inner = PairwisePotentialCalculator()
        calc = self._calc(FaultSpec(kind="transient", step=5))
        e0, g0 = inner.energy_gradient(mol)
        e1, g1 = calc.energy_gradient(mol, attempt=0, step=0)
        assert e1 == e0
        np.testing.assert_array_equal(g1, g0)

    def test_transient_raises_injected_fault(self, mol):
        calc = self._calc(FaultSpec(kind="transient", step=0))
        with pytest.raises(InjectedFault):
            calc.energy_gradient(_Frag(mol, (0,)), attempt=0, step=0)
        # the retry budget: attempt 1 is past attempts=1, so it succeeds
        e, g = calc.energy_gradient(_Frag(mol, (0,)), attempt=1, step=0)
        assert np.isfinite(e)

    def test_scf_fail_raises_typed_error(self, mol):
        calc = self._calc(FaultSpec(kind="scf_fail", step=0))
        with pytest.raises(SCFConvergenceError, match="planned"):
            calc.energy_gradient(_Frag(mol, (0,)), attempt=0, step=0)

    def test_nan_forces_finite_energy_nan_gradient(self, mol):
        calc = self._calc(FaultSpec(kind="nan_forces", step=0))
        e, g = calc.energy_gradient(_Frag(mol, (0,)), attempt=0, step=0)
        assert np.isfinite(e)
        assert np.isnan(g).all()

    def test_key_targeting(self, mol):
        calc = self._calc(FaultSpec(kind="transient", key=(1,)))
        e, _ = calc.energy_gradient(_Frag(mol, (0,)), attempt=0, step=0)
        assert np.isfinite(e)
        with pytest.raises(InjectedFault):
            calc.energy_gradient(_Frag(mol, (1,)), attempt=0, step=0)

    def test_attribute_get_and_set_delegate_to_inner(self, mol):
        inner = PairwisePotentialCalculator()
        calc = FaultPlanCalculator(inner, FaultPlan())
        calc.guess_cache = cache = GuessCache()
        assert inner.guess_cache is cache
        assert calc.guess_cache is cache

    def test_pickle_round_trip(self, mol):
        calc = self._calc(FaultSpec(kind="transient", step=0))
        copy = pickle.loads(pickle.dumps(calc))
        with pytest.raises(InjectedFault):
            copy.energy_gradient(_Frag(mol, (0,)), attempt=0, step=0)

    def test_cache_poison_nan_fills_entry(self, mol):
        """Poisoning replaces the cached density with NaNs — which the
        SCF guess validation (`repro.scf.rhf`) then discards, so the
        fault costs iterations, never correctness."""
        inner = PairwisePotentialCalculator()
        inner.guess_cache = cache = GuessCache()
        cache.put((0,), np.eye(4), mol.natoms)
        calc = FaultPlanCalculator(
            inner,
            FaultPlan(specs=[FaultSpec(kind="cache_poison", step=0)]),
        )
        e, g = calc.energy_gradient(_Frag(mol, (0,)), attempt=0, step=0)
        assert np.isfinite(e)  # evaluation itself is clean
        poisoned = cache.get((0,), mol.natoms)
        assert poisoned is not None and np.isnan(poisoned).all()


class TestChaosEndToEnd:
    """A seeded chaos AIMD campaign completes and matches fault-free
    bitwise under --deterministic (ISSUE acceptance criterion)."""

    def _final_energy(self, text):
        lines = [ln for ln in text.splitlines()
                 if ln.startswith("final total energy:")]
        assert lines, text
        return lines[-1]

    def test_chaos_run_matches_clean_and_fallback_resumes(
        self, tmp_path, capsys
    ):
        from repro.chem.xyz import save_xyz
        from repro.cli import main

        xyz = tmp_path / "w3.xyz"
        save_xyz(water_cluster(3, seed=4), xyz)
        ck = tmp_path / "ck.npz"
        plan = FaultPlan(seed=7, specs=[
            FaultSpec(kind="crash", step=1),
            FaultSpec(kind="nan_forces", step=2),
            FaultSpec(kind="ckpt_torn", step=8),
        ])
        plan_path = tmp_path / "plan.json"
        plan.save(plan_path)
        common = ["aimd", str(xyz), "--surrogate", "--dt", "0.5",
                  "--deterministic", "--steps", "8", "--workers", "2"]

        assert main(common) == 0
        clean_out = capsys.readouterr().out

        assert main(common + [
            "--fault-plan", str(plan_path), "--max-retries", "3",
            "--checkpoint", str(ck), "--checkpoint-every", "4",
            "--checkpoint-keep", "2",
        ]) == 0
        chaos_out = capsys.readouterr().out
        assert "fault handling:" in chaos_out
        assert "pool restarts" in chaos_out
        assert "fault audit: ckpt_torn x1" in chaos_out
        assert self._final_energy(chaos_out) == self._final_energy(clean_out)

        # the final checkpoint was torn by the plan: resume must fall
        # back to the previous rotation and still land on the same
        # final energy
        assert ck.with_name("ck.npz.1").exists()
        assert main(common + ["--resume", str(ck)]) == 0
        resumed_out = capsys.readouterr().out
        assert "checkpoint fallback" in resumed_out
        assert self._final_energy(resumed_out) == self._final_energy(
            clean_out
        )
