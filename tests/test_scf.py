"""RHF: literature energies, RI-vs-conventional consistency, gradients."""

from __future__ import annotations
import numpy as np
import pytest
from repro.chem import Molecule
from repro.scf import SCFConvergenceError, rhf, rhf_gradient
from repro.scf.grad import rhf_gradient_conventional, rhf_gradient_ri
from .conftest import finite_difference_gradient


class TestRHFEnergies:
    def test_h2_szabo(self, h2):
        res = rhf(h2, "sto-3g", ri=False)
        assert res.converged
        assert res.energy == pytest.approx(-1.1167, abs=2e-4)

    def test_hehp_szabo(self, hehp):
        res = rhf(hehp, "sto-3g", ri=False)
        assert res.energy == pytest.approx(-2.8418, abs=5e-4)

    def test_water_sto3g_range(self, water):
        res = rhf(water, "sto-3g", ri=False)
        assert -75.1 < res.energy < -74.8

    def test_ri_close_to_conventional(self, water):
        rc = rhf(water, "sto-3g", ri=False)
        rr = rhf(water, "sto-3g", ri=True)
        assert abs(rr.energy - rc.energy) < 2e-3

    def test_dz_below_sto3g(self, water):
        e_min = rhf(water, "sto-3g", ri=True).energy
        e_dz = rhf(water, "repro-dz", ri=True).energy
        assert e_dz < e_min  # variational improvement

    def test_dzp_below_dz(self, water):
        e_dz = rhf(water, "repro-dz", ri=True).energy
        e_dzp = rhf(water, "repro-dzp", ri=True).energy
        assert e_dzp < e_dz

    def test_idempotent_density(self, water):
        res = rhf(water, "sto-3g", ri=True)
        # D S D = 2 D for occupation-2 density
        np.testing.assert_allclose(res.D @ res.S @ res.D, 2.0 * res.D, atol=1e-6)

    def test_electron_count(self, water):
        res = rhf(water, "sto-3g", ri=True)
        assert float(np.sum(res.D * res.S)) == pytest.approx(water.nelectrons, abs=1e-8)

    def test_odd_electron_rejected(self):
        mol = Molecule(["H"], [[0, 0, 0]])
        with pytest.raises(ValueError, match="even electron"):
            rhf(mol, "sto-3g")

    def test_charged_species(self, water):
        cation = Molecule(water.symbols, water.coords, charge=2)
        res = rhf(cation, "sto-3g", ri=True)
        assert res.converged
        assert res.nocc == (water.nelectrons - 2) // 2

    def test_virial_ratio_near_two(self, water):
        # -V/T should be close to 2 for a reasonable wavefunction
        from repro.integrals import kinetic

        res = rhf(water, "sto-3g", ri=False)
        T = float(np.sum(res.D * kinetic(res.basis)))
        V = res.energy - T
        assert -V / T == pytest.approx(2.0, abs=0.05)

    def test_no_diis_still_converges(self, h2):
        res = rhf(h2, "sto-3g", ri=True, use_diis=False)
        ref = rhf(h2, "sto-3g", ri=True)
        assert res.energy == pytest.approx(ref.energy, abs=1e-8)

    def test_level_shift_same_answer(self, water):
        ref = rhf(water, "sto-3g", ri=True)
        res = rhf(water, "sto-3g", ri=True, level_shift=0.3)
        assert res.energy == pytest.approx(ref.energy, abs=1e-7)

    def test_max_iter_raises(self, water):
        with pytest.raises(SCFConvergenceError):
            rhf(water, "sto-3g", ri=True, max_iter=1)

    def test_orbital_energies_ordered(self, water):
        res = rhf(water, "sto-3g", ri=True)
        assert np.all(np.diff(res.eps) > -1e-10)
        # HOMO below zero, aufbau gap positive
        assert res.eps[res.nocc - 1] < 0
        assert res.eps[res.nocc] > res.eps[res.nocc - 1]


class TestRHFGradients:
    def test_conventional_fd(self, water_distorted):
        res = rhf(water_distorted, "sto-3g", ri=False)
        ga = rhf_gradient_conventional(res)
        gf = finite_difference_gradient(
            lambda m: rhf(m, "sto-3g", ri=False).energy, water_distorted
        )
        np.testing.assert_allclose(ga, gf, atol=5e-7)

    def test_ri_fd(self, water_distorted):
        res = rhf(water_distorted, "sto-3g", ri=True)
        ga = rhf_gradient_ri(res)
        gf = finite_difference_gradient(
            lambda m: rhf(m, "sto-3g", ri=True).energy, water_distorted
        )
        np.testing.assert_allclose(ga, gf, atol=5e-7)

    def test_dispatch(self, h2_bent):
        res = rhf(h2_bent, "sto-3g", ri=True)
        np.testing.assert_allclose(rhf_gradient(res), rhf_gradient_ri(res))

    def test_gradient_translation_invariance(self, water_distorted):
        res = rhf(water_distorted, "sto-3g", ri=True)
        g = rhf_gradient_ri(res)
        np.testing.assert_allclose(g.sum(axis=0), 0.0, atol=1e-8)

    def test_equilibrium_small_gradient_h2(self):
        # near STO-3G H2 equilibrium (~1.35 Bohr) gradient should flip sign
        e = {}
        for r in (1.2, 1.35, 1.6):
            mol = Molecule(["H", "H"], [[0, 0, 0], [0, 0, r]])
            res = rhf(mol, "sto-3g", ri=False)
            g = rhf_gradient(res)
            e[r] = g[1, 2]
        assert e[1.2] < 0 < e[1.6]
