"""Batched shell-class kernels vs the per-pair loop reference.

The batched drivers in `repro.integrals.batch` evaluate whole
shell-pair classes per array-kernel call; the per-pair loop drivers
they replaced remain as the reference implementation. The contract
under test:

* **Bitwise parity** — overlap, kinetic, their contracted derivatives,
  ``eri3c`` and its contracted derivative (screened and unscreened,
  including the neglected-bound accumulation) must be bitwise identical
  to the loop drivers. Nuclear attraction and the Schwarz table agree
  to tight tolerance only (the loop drivers use shape-dependent
  ``optimize=True`` einsum paths there), which is safe because both
  kernel modes share one cached Schwarz table per workspace — the
  screening *decisions* stay mode-independent.
* **Chunk invariance** — the deterministic chunking of large classes
  must not change a single bit of the result.
* **Backend protocol** — numpy is always available; requesting an
  uninstalled backend fails with `BackendUnavailableError` at selection
  time; the JAX backend (when installed) provides autodiff gradients
  that cross-check the hand-derived derivative drivers.
* **Cache accounting** — `payload_nbytes` counts actual array payloads
  (deduplicating shared bases), and both LRU caches evict in true
  least-recently-used order.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    get_backend,
    set_default_backend,
)
from repro.basis import BasisSet, auto_auxiliary
from repro.calculators import GuessCache, RIHFCalculator
from repro.chem import Molecule
from repro.frag import FragmentedSystem, build_plan, mbe_energy_gradient
from repro.integrals import (
    IntegralWorkspace,
    kernel_mode,
    kernels,
    set_kernel_mode,
)
from repro.integrals import batch
from repro.integrals.batch import (
    build_shell_classes,
    contract_eri3c_deriv_batched,
    contract_kinetic_deriv_batched,
    contract_nuclear_deriv_batched,
    contract_overlap_deriv_batched,
    eri3c_batched,
    kinetic_batched,
    nuclear_batched,
    overlap_batched,
    schwarz_pair_bounds_batched,
)
from repro.integrals.eri import (
    contract_eri3c_deriv_loop,
    contract_eri4c_deriv_hf,
    eri3c_loop,
    schwarz_pair_bounds_loop,
)
from repro.integrals.onee import (
    contract_kinetic_deriv_loop,
    contract_nuclear_deriv_loop,
    contract_overlap_deriv_loop,
    kinetic_loop,
    nuclear_loop,
    overlap_loop,
)
from repro.integrals.workspace import payload_nbytes
from repro.systems import water_cluster

HAVE_JAX = importlib.util.find_spec("jax") is not None


@pytest.fixture(scope="module")
def water() -> Molecule:
    mol = water_cluster(1, seed=0)
    # break all point-group symmetry so no accidental cancellations
    rng = np.random.default_rng(7)
    return Molecule(
        mol.symbols, mol.coords + 0.05 * rng.standard_normal(mol.coords.shape)
    )


@pytest.fixture(scope="module")
def water_dimer() -> Molecule:
    return water_cluster(2, seed=3)


def _setup(mol, basis_name):
    bs = BasisSet.build(mol, basis_name)
    aux = auto_auxiliary(mol)
    return bs, aux


def _sym(n, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, n))
    return X + X.T


BASES = ["sto-3g", "repro-dzp"]


class TestOneElectronParity:
    """s/p/d shell-class mixes: sto-3g is s/p, repro-dzp adds d."""

    @pytest.mark.parametrize("basis_name", BASES)
    def test_overlap_bitwise(self, water, basis_name):
        bs, _ = _setup(water, basis_name)
        assert np.array_equal(overlap_batched(bs), overlap_loop(bs))

    @pytest.mark.parametrize("basis_name", BASES)
    def test_kinetic_bitwise(self, water, basis_name):
        bs, _ = _setup(water, basis_name)
        assert np.array_equal(kinetic_batched(bs), kinetic_loop(bs))

    @pytest.mark.parametrize("basis_name", BASES)
    def test_nuclear_close(self, water, basis_name):
        bs, _ = _setup(water, basis_name)
        np.testing.assert_allclose(
            nuclear_batched(bs, water), nuclear_loop(bs, water),
            rtol=0, atol=1e-13,
        )

    @pytest.mark.parametrize("basis_name", BASES)
    def test_overlap_deriv_bitwise(self, water, basis_name):
        bs, _ = _setup(water, basis_name)
        X = _sym(bs.nbf, seed=1)
        assert np.array_equal(
            contract_overlap_deriv_batched(bs, X),
            contract_overlap_deriv_loop(bs, X),
        )

    @pytest.mark.parametrize("basis_name", BASES)
    def test_kinetic_deriv_bitwise(self, water, basis_name):
        bs, _ = _setup(water, basis_name)
        X = _sym(bs.nbf, seed=2)
        assert np.array_equal(
            contract_kinetic_deriv_batched(bs, X),
            contract_kinetic_deriv_loop(bs, X),
        )

    @pytest.mark.parametrize("basis_name", BASES)
    def test_nuclear_deriv_close(self, water, basis_name):
        bs, _ = _setup(water, basis_name)
        X = _sym(bs.nbf, seed=3)
        np.testing.assert_allclose(
            contract_nuclear_deriv_batched(bs, water, X),
            contract_nuclear_deriv_loop(bs, water, X),
            rtol=0, atol=1e-12,
        )


class TestThreeCenterParity:
    @pytest.mark.parametrize("basis_name", BASES)
    def test_eri3c_bitwise_unscreened(self, water, basis_name):
        bs, aux = _setup(water, basis_name)
        assert np.array_equal(
            eri3c_batched(bs, aux, screen=0.0),
            eri3c_loop(bs, aux, screen=0.0),
        )

    def test_eri3c_bitwise_screened_shared_table(self, water_dimer):
        """Same Schwarz table (one workspace) -> same skips, same bits."""
        bs, aux = _setup(water_dimer, "sto-3g")
        ws = IntegralWorkspace()
        a = eri3c_batched(bs, aux, screen=1e-6, workspace=ws)
        skipped_a = ws.pairs_skipped
        neglect_a = ws.neglected_bound
        b = eri3c_loop(bs, aux, screen=1e-6, workspace=ws)
        assert np.array_equal(a, b)
        # identical screening decisions and bitwise-identical
        # neglected-bound accumulation across the two modes
        assert ws.pairs_skipped == 2 * skipped_a
        assert ws.neglected_bound == 2 * neglect_a

    def test_schwarz_close(self, water):
        bs, _ = _setup(water, "repro-dzp")
        np.testing.assert_allclose(
            schwarz_pair_bounds_batched(bs), schwarz_pair_bounds_loop(bs),
            rtol=1e-12, atol=0,
        )

    @pytest.mark.parametrize("screen", [0.0, 1e-6])
    def test_eri3c_deriv_bitwise(self, water_dimer, screen):
        bs, aux = _setup(water_dimer, "sto-3g")
        rng = np.random.default_rng(4)
        Z = rng.standard_normal((bs.nbf, bs.nbf, aux.nbf))
        Z = Z + Z.transpose(1, 0, 2)
        ws = IntegralWorkspace()
        gb = contract_eri3c_deriv_batched(
            bs, aux, Z, water_dimer.natoms, screen=screen, workspace=ws
        )
        gl = contract_eri3c_deriv_loop(
            bs, aux, Z, water_dimer.natoms, screen=screen, workspace=ws
        )
        assert np.array_equal(gb, gl)
        # translation invariance survives batching (and screening)
        np.testing.assert_allclose(gb.sum(axis=0), 0.0, atol=1e-10)

    def test_chunk_invariance(self, water_dimer, monkeypatch):
        """Tiny chunks must reproduce the one-shot result bitwise."""
        bs, aux = _setup(water_dimer, "sto-3g")
        ref = eri3c_batched(bs, aux)
        X = _sym(bs.nbf, seed=5)
        dref = contract_overlap_deriv_batched(bs, X)
        monkeypatch.setattr(batch, "_CHUNK_ELEMS", 256)
        assert np.array_equal(eri3c_batched(bs, aux), ref)
        assert np.array_equal(contract_overlap_deriv_batched(bs, X), dref)


class TestKernelModeDispatch:
    def test_mode_roundtrip(self):
        prev = kernel_mode()
        try:
            set_kernel_mode("loop")
            assert kernel_mode() == "loop"
            with kernels("batched"):
                assert kernel_mode() == "batched"
            assert kernel_mode() == "loop"
        finally:
            set_kernel_mode(prev)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="kernel mode"):
            set_kernel_mode("vectorised")

    def test_dispatchers_follow_mode(self, water, monkeypatch):
        """Public drivers route to the loop kernels under kernels('loop')."""
        from repro.integrals import overlap

        bs, _ = _setup(water, "sto-3g")
        calls = []
        real = batch.overlap_batched

        def spy(*a, **kw):
            calls.append(1)
            return real(*a, **kw)

        monkeypatch.setattr(batch, "overlap_batched", spy)
        with kernels("loop"):
            overlap(bs)
        assert not calls
        with kernels("batched"):
            overlap(bs)
        assert calls

    def test_shell_classes_cached_in_workspace(self, water):
        bs, _ = _setup(water, "sto-3g")
        ws = IntegralWorkspace()
        c1 = build_shell_classes(bs, ws)
        c2 = build_shell_classes(bs, ws)
        assert c1 is c2
        assert ws.hits >= 1


class TestBackendProtocol:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        be = get_backend("numpy")
        assert be.is_numpy and be.xp is np
        assert be is get_backend("numpy")  # memoized

    def test_default_resolution(self):
        set_default_backend(None)
        assert get_backend().name == "numpy"
        set_default_backend("numpy")
        try:
            assert get_backend().name == "numpy"
        finally:
            set_default_backend(None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("tpu")

    @pytest.mark.skipif(HAVE_JAX, reason="jax installed here")
    def test_missing_optional_backend_fails_cleanly(self):
        with pytest.raises(BackendUnavailableError, match="jax"):
            get_backend("jax")
        # selection also validates eagerly
        with pytest.raises(BackendUnavailableError):
            set_default_backend("jax")
        assert get_backend().name == "numpy"  # default unchanged

    def test_scatter_set_and_gammainc(self):
        be = ArrayBackend()
        a = np.zeros(4)
        out = be.scatter_set(a, np.array([1, 3]), np.array([2.0, 4.0]))
        assert np.array_equal(out, [0.0, 2.0, 0.0, 4.0])
        from scipy.special import gammainc

        assert be.gammainc(0.5, 1.2) == gammainc(0.5, 1.2)


@pytest.mark.skipif(not HAVE_JAX, reason="jax not installed")
class TestAutodiffCrossCheck:
    """JAX grad through the functional kernels vs the analytic drivers."""

    @pytest.fixture(scope="class")
    def setup(self):
        import jax

        mol = water_cluster(2, seed=3)
        bs = BasisSet.build(mol, "sto-3g")
        aux = auto_auxiliary(mol)
        be = get_backend("jax")
        from repro.integrals.batch import AutodiffIntegrals

        ai = AutodiffIntegrals(bs, mol, aux=aux, be=be)
        return jax, mol, bs, aux, ai

    def test_overlap_grad(self, setup):
        jax, mol, bs, _, ai = setup
        X = _sym(bs.nbf, seed=6)

        def f(coords):
            return (get_backend("jax").asarray(X) * ai.overlap(coords)).sum()

        g = np.asarray(jax.grad(f)(get_backend("jax").asarray(mol.coords)))
        ref = contract_overlap_deriv_loop(bs, X)
        np.testing.assert_allclose(g, ref, rtol=1e-9, atol=1e-12)

    def test_hcore_grad(self, setup):
        jax, mol, bs, _, ai = setup
        X = _sym(bs.nbf, seed=7)
        be = get_backend("jax")

        def f(coords):
            return (be.asarray(X) * ai.hcore(coords)).sum()

        g = np.asarray(jax.grad(f)(be.asarray(mol.coords)))
        ref = contract_kinetic_deriv_loop(bs, X)
        ref = ref + contract_nuclear_deriv_loop(bs, mol, X)
        # autodiff also differentiates the operator centers (nuclear
        # attraction), which the analytic driver includes too
        np.testing.assert_allclose(g, ref, rtol=1e-9, atol=1e-11)

    def test_eri3c_grad(self, setup):
        jax, mol, bs, aux, ai = setup
        rng = np.random.default_rng(8)
        Z = rng.standard_normal((bs.nbf, bs.nbf, aux.nbf))
        Z = Z + Z.transpose(1, 0, 2)
        be = get_backend("jax")

        def f(coords):
            return (be.asarray(Z) * ai.eri3c(coords)).sum()

        g = np.asarray(jax.grad(f)(be.asarray(mol.coords)))
        ref = contract_eri3c_deriv_loop(bs, aux, Z, mol.natoms)
        np.testing.assert_allclose(g, ref, rtol=1e-9, atol=1e-11)


class TestFourCenterScreenBypass:
    def test_screen_zero_skips_schwarz_build(self, water):
        """Exact mode must not touch the Schwarz/Dmax machinery at all."""
        bs, _ = _setup(water, "sto-3g")
        n = bs.nbf
        D = _sym(n, seed=9)
        ws = IntegralWorkspace()

        def boom(*a, **kw):  # pragma: no cover - must not be called
            raise AssertionError("Schwarz table built in exact mode")

        ws.schwarz_bounds = boom
        ws.dmax_blocks = boom
        g = contract_eri4c_deriv_hf(
            bs, D, water.natoms, screen=0.0, workspace=ws
        )
        assert g.shape == (water.natoms, 3)
        assert ws.pairs_skipped == 0

    def test_screened_matches_exact(self, water):
        bs, _ = _setup(water, "sto-3g")
        D = _sym(bs.nbf, seed=10)
        g0 = contract_eri4c_deriv_hf(bs, D, water.natoms, screen=0.0)
        g1 = contract_eri4c_deriv_hf(bs, D, water.natoms, screen=1e-11)
        np.testing.assert_allclose(g1, g0, atol=1e-10)


class TestScreenedBatchedMBE:
    def test_mbe3_energy_gradient_vs_exact(self):
        """Screened batched MBE3 assembly vs the exact loop reference."""
        mol = water_cluster(3, seed=11)
        fs = FragmentedSystem.by_components(mol)
        plan = build_plan(fs, 1e9, 1e9, order=3)
        with kernels("loop"):
            e0, g0 = mbe_energy_gradient(
                fs, plan,
                RIHFCalculator(workspace=IntegralWorkspace(enabled=False),
                               int_screen=0.0),
            )
        with kernels("batched"):
            ws = IntegralWorkspace()
            e1, g1 = mbe_energy_gradient(
                fs, plan, RIHFCalculator(workspace=ws, int_screen=1e-12)
            )
        assert abs(e1 - e0) <= 1e-8
        np.testing.assert_allclose(g1, g0, atol=1e-7)
        assert ws.hits > 0


class TestByteAccounting:
    def test_payload_nbytes_counts_and_dedups(self):
        a = np.zeros(1000)  # 8000 bytes
        assert payload_nbytes(a) == a.nbytes
        # a view shares its base buffer: counted once, not twice
        assert payload_nbytes([a, a[10:500]]) == a.nbytes
        assert payload_nbytes([a, a]) == a.nbytes
        b = np.zeros((10, 10))
        assert payload_nbytes({"x": a, "y": (b, 3, "s")}) == a.nbytes + b.nbytes
        assert payload_nbytes("not an array") == 0

    def test_payload_nbytes_walks_dataclasses(self, water):
        bs, _ = _setup(water, "sto-3g")
        classes = build_shell_classes(bs)
        n = payload_nbytes(classes)
        assert n >= sum(c.E.nbytes for c in classes)

    def test_workspace_lru_eviction_order(self):
        ws = IntegralWorkspace(max_bytes=3000)
        a = np.zeros(125)  # 1000 bytes each
        ws._put(("k1",), a.copy())
        ws._put(("k2",), a.copy())
        ws._put(("k3",), a.copy())
        assert ws.nbytes == 3000 and ws.evictions == 0
        ws._get(("k1",))  # refresh k1 -> k2 is now least recently used
        ws._put(("k4",), a.copy())
        assert ws.evictions == 1
        assert ws._get(("k2",)) is None  # the LRU victim
        assert ws._get(("k1",)) is not None
        assert ws._get(("k3",)) is not None
        assert ws._get(("k4",)) is not None

    def test_workspace_accounts_actual_nbytes(self, water):
        bs, _ = _setup(water, "sto-3g")
        ws = IntegralWorkspace()
        overlap_batched(bs, workspace=ws)
        assert ws.nbytes == payload_nbytes(
            [e[0] for e in ws._entries.values()]
        )

    def test_guess_cache_lru_eviction_order(self):
        D = np.zeros((20, 20))  # 3200 bytes
        cache = GuessCache(max_bytes=3 * D.nbytes, history=1)
        cache.put(("f1",), D.copy(), natoms=3)
        cache.put(("f2",), D.copy(), natoms=3)
        cache.put(("f3",), D.copy(), natoms=3)
        assert cache.nbytes == 3 * D.nbytes
        assert cache.evictions == 0
        assert cache.get(("f1",)) is not None  # refresh f1
        cache.put(("f4",), D.copy(), natoms=3)
        assert cache.evictions == 1
        assert cache.get(("f2",)) is None  # the LRU victim
        assert cache.get(("f1",)) is not None
        assert cache.get(("f3",)) is not None

    def test_guess_cache_counts_history_bytes(self):
        D = np.zeros((10, 10))
        cache = GuessCache(history=3)
        cache.put(("f",), D.copy(), natoms=3)
        assert cache.nbytes == D.nbytes
        cache.put(("f",), D.copy(), natoms=3)
        assert cache.nbytes == 2 * D.nbytes
        cache.put(("f",), D.copy(), natoms=3)
        cache.put(("f",), D.copy(), natoms=3)  # history caps at 3
        assert cache.nbytes == 3 * D.nbytes


class TestCLIOptions:
    @pytest.fixture()
    def water_file(self, tmp_path):
        from repro.chem.xyz import save_xyz
        from repro.systems import water_monomer

        p = tmp_path / "water.xyz"
        save_xyz(water_monomer(), str(p))
        return str(p)

    def test_int_kernels_loop(self, water_file, capsys):
        from repro.cli import main

        prev = kernel_mode()
        try:
            assert main(["scf", water_file, "--int-kernels", "loop"]) == 0
            assert kernel_mode() == "loop"
        finally:
            set_kernel_mode(prev)
        assert "E(SCF)" in capsys.readouterr().out

    def test_backend_numpy(self, water_file, capsys):
        from repro.cli import main

        try:
            assert main(["scf", water_file, "--backend", "numpy"]) == 0
        finally:
            set_default_backend(None)
        assert "E(SCF)" in capsys.readouterr().out

    @pytest.mark.skipif(HAVE_JAX, reason="jax installed here")
    def test_backend_unavailable_exits_cleanly(self, water_file):
        from repro.cli import main

        with pytest.raises(SystemExit, match="jax"):
            main(["scf", water_file, "--backend", "jax"])
