"""Cluster simulation: machines, cost model, event and aggregate sims."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FRONTIER,
    PERLMUTTER,
    ClusterSimulator,
    FragmentCostModel,
    PAPER_CALIBRATED,
    calibrate_gemm,
    count_polymers,
    group_centroids,
    list_schedule_makespan,
    parallel_efficiency,
    simulate_aimd,
    simulate_workload,
    strong_scaling_curve,
    urea_molecule_centroids,
    urea_workload,
)
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import FragmentedSystem
from repro.md import AsyncCoordinator
from repro.systems import prp_like_fibril, water_cluster

BIG = 1.0e6


class TestMachines:
    def test_frontier_peak(self):
        # paper: 1.715 EFLOP/s sustainable peak
        assert FRONTIER.peak_pflops() == pytest.approx(1715.7, rel=0.01)
        assert FRONTIER.total_gcds() == 9408 * 8

    def test_perlmutter_peak(self):
        # paper: 113 PFLOP/s sustainable peak
        assert PERLMUTTER.peak_pflops() == pytest.approx(113.0, rel=0.01)

    def test_partial_nodes(self):
        assert FRONTIER.peak_pflops(1024) < FRONTIER.peak_pflops()


class TestCostModel:
    def test_flops_increase_with_size(self):
        cm = FragmentCostModel()
        f1 = cm.total_flops(32)
        f2 = cm.total_flops(64)
        assert f2 > 8 * f1  # superquartic growth

    def test_quintic_asymptotics(self):
        cm = FragmentCostModel()
        r = cm.total_flops(2000) / cm.total_flops(1000)
        assert 2**4 < r < 2**5.5

    def test_efficiency_rises_with_fragment_size(self):
        """Small fragments are dominated by FLOP-inefficient classes —
        the paper's observed 31-35% vs 59% of peak."""
        cm = PAPER_CALIBRATED
        fr = [cm.achieved_fraction_of_peak(ne, FRONTIER) for ne in (38, 128, 384)]
        assert fr[0] < fr[1] < fr[2]
        assert fr[2] > 0.5

    def test_time_on_more_gcds_faster(self):
        cm = FragmentCostModel()
        assert cm.time_on(384, FRONTIER, ngcds=2) < cm.time_on(384, FRONTIER, ngcds=1)

    def test_memory_matches_paper_limit(self):
        """~1k basis functions fit a 40 GB GPU (paper Sec. V-E)."""
        cm = FragmentCostModel()
        ne_1k_bf = int(1000 / cm.bf_ratio)
        assert cm.memory_gb(ne_1k_bf) < 40.0
        assert cm.memory_gb(int(1400 / cm.bf_ratio)) > 40.0

    def test_calibration(self):
        cm = FragmentCostModel()
        measured = [(32, 2.0 * cm.gemm_flops(32)), (64, 2.0 * cm.gemm_flops(64))]
        cal = calibrate_gemm(cm, measured)
        assert cal.gemm_scale == pytest.approx(2.0, rel=1e-6)
        assert cal.gemm_flops(32) == pytest.approx(measured[0][1], rel=1e-6)

    def test_calibration_empty_raises(self):
        with pytest.raises(ValueError):
            calibrate_gemm(FragmentCostModel(), [])


class TestWorkloads:
    def test_urea_centroid_count(self):
        c = urea_molecule_centroids(500)
        assert c.shape == (500, 3)

    def test_grouping(self):
        c = urea_molecule_centroids(64)
        g = group_centroids(c, 4)
        assert g.shape == (16, 3)

    def test_polymer_counts_scale_with_cutoff(self):
        c = group_centroids(urea_molecule_centroids(400), 4)
        small = count_polymers(c, 8.0, 8.0, 128)
        big = count_polymers(c, 14.0, 14.0, 128)
        assert big.ndimers > small.ndimers
        assert big.ntrimers > small.ntrimers

    def test_headline_system_statistics(self):
        """The 2-million-electron system's polymer population (paper:
        >2.8M polymer contributions, 2,043,328 electrons)."""
        w = urea_workload(63854)
        assert w.nmonomers * w.electrons_per_monomer > 2.0e6
        assert w.npolymers > 2.8e6

    def test_polymer_electron_array(self):
        c = group_centroids(urea_molecule_centroids(64), 4)
        w = count_polymers(c, 12.0, 12.0, 128)
        e = w.polymer_electrons()
        assert len(e) == w.npolymers
        assert set(np.unique(e)) <= {128, 256, 384}


class TestListScheduling:
    def test_empty(self):
        assert list_schedule_makespan(np.array([]), 4) == 0.0

    def test_single_worker_sums(self):
        costs = np.array([1.0, 2.0, 3.0])
        assert list_schedule_makespan(costs, 1) == pytest.approx(6.0)

    def test_many_workers_max(self):
        costs = np.array([1.0, 2.0, 3.0])
        assert list_schedule_makespan(costs, 10) == pytest.approx(3.0)

    def test_coordinator_serialization(self):
        costs = np.ones(1000) * 1e-6
        fast = list_schedule_makespan(costs, 100, coordinator_service_s=0.0)
        slow = list_schedule_makespan(costs, 100, coordinator_service_s=1e-3)
        assert slow > 1000 * 1e-3  # serial coordinator dominates
        assert slow > fast

    @given(
        st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_makespan_bounds(self, costs, nworkers):
        costs = np.array(costs)
        ms = list_schedule_makespan(costs, nworkers)
        assert ms >= max(costs.sum() / nworkers, costs.max()) - 1e-12
        assert ms <= costs.sum() + 1e-12


class TestAggregate:
    @pytest.fixture(scope="class")
    def small_workload(self):
        return urea_workload(400, r_dimer_angstrom=12.0, r_trimer_angstrom=12.0)

    def test_async_beats_sync(self, small_workload):
        a = simulate_workload(small_workload, FRONTIER, 2, nsteps=3)
        s = simulate_workload(small_workload, FRONTIER, 2, nsteps=3, synchronous=True)
        assert a.time_per_step_s <= s.time_per_step_s + 1e-12

    def test_strong_scaling_monotone(self, small_workload):
        res = strong_scaling_curve(small_workload, FRONTIER, [1, 2, 4])
        times = [r.time_per_step_s for r in res]
        assert times[0] > times[1] > times[2]
        eff = parallel_efficiency(res)
        assert eff[0] == pytest.approx(1.0)
        assert all(0 < e <= 1.0 + 1e-9 for e in eff)

    def test_flop_rate_below_peak(self, small_workload):
        r = simulate_workload(small_workload, FRONTIER, 4, cost_model=PAPER_CALIBRATED)
        assert 0.0 < r.fraction_of_peak(FRONTIER) < 1.0


class TestEventSimulator:
    @pytest.fixture(scope="class")
    def fibril_system(self):
        return prp_like_fibril()

    def _sim(self, system, sync: bool, nodes=64, nsteps=5):
        return simulate_aimd(
            system, PERLMUTTER, nodes, nsteps,
            r_dimer_bohr=22 * BOHR_PER_ANGSTROM,
            r_trimer_bohr=9 * BOHR_PER_ANGSTROM,
            mbe_order=3, synchronous=sync, cost_model=PAPER_CALIBRATED,
        )

    def test_async_faster_than_sync(self, fibril_system):
        ra = self._sim(fibril_system, sync=False)
        rs = self._sim(fibril_system, sync=True)
        assert ra.total_time_s < rs.total_time_s
        # the paper reports 24-40% step-latency improvements
        speedup = rs.time_per_step() / ra.time_per_step()
        assert speedup > 1.05

    def test_utilization_bounds(self, fibril_system):
        r = self._sim(fibril_system, sync=False)
        assert 0.0 < r.worker_utilization <= 1.0

    def test_every_polymer_computed_once_per_step(self, fibril_system):
        r = self._sim(fibril_system, sync=False, nsteps=2)
        # nsteps+1 evaluation steps, identical frozen-geometry workloads
        assert r.tasks % 3 == 0

    def test_flops_counted(self, fibril_system):
        r = self._sim(fibril_system, sync=False)
        assert r.counted_flops > 0
        assert r.flop_rate_pflops < PERLMUTTER.peak_pflops(16)

    def test_more_nodes_not_slower(self, fibril_system):
        r1 = self._sim(fibril_system, sync=False, nodes=4)
        r2 = self._sim(fibril_system, sync=False, nodes=64)
        assert r2.total_time_s <= r1.total_time_s + 1e-9

    def test_deadlock_free_with_caps_and_windows(self):
        """Capped fibril + small replan window + sync barriers: the
        combination that would expose release/dependency bugs."""
        fs = prp_like_fibril()
        r = simulate_aimd(
            fs, FRONTIER, 2, 5,
            r_dimer_bohr=15 * BOHR_PER_ANGSTROM,
            r_trimer_bohr=7 * BOHR_PER_ANGSTROM,
            synchronous=True, replan_interval=2,
        )
        assert len(r.step_finish_s) == 6

    def test_simulator_reuses_real_coordinator(self):
        mol = water_cluster(5, seed=1)
        fs = FragmentedSystem.by_components(mol)
        sim = ClusterSimulator(PERLMUTTER, 1)
        co = AsyncCoordinator(
            fs, nsteps=2, dt_fs=1.0, r_dimer_bohr=BIG, mbe_order=2,
            temperature_k=0.0, clock=sim.clock, build_molecules=False,
        )
        res = sim.run(co)
        assert co.done()
        assert res.tasks == (5 + 10) * 3
