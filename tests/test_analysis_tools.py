"""Population analysis, MBE decomposition, and VACF spectra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    dominant_frequency_cm1,
    mbe_decomposition,
    mulliken_charges,
    mulliken_mp2_charges,
    velocity_autocorrelation,
)
from repro.calculators import PairwisePotentialCalculator
from repro.chem import Molecule
from repro.frag import FragmentedSystem
from repro.md import run_aimd
from repro.scf import rhf
from repro.systems import water_cluster
from repro.vibrations import harmonic_analysis


class TestMulliken:
    def test_charges_sum_to_molecular_charge(self, water):
        res = rhf(water, "sto-3g", ri=True)
        q = mulliken_charges(res)
        assert q.sum() == pytest.approx(0.0, abs=1e-10)

    def test_water_polarity(self, water):
        res = rhf(water, "sto-3g", ri=True)
        q = mulliken_charges(res)
        assert q[0] < 0  # oxygen negative
        assert q[1] > 0 and q[2] > 0
        assert q[1] == pytest.approx(q[2], abs=1e-8)  # symmetry

    def test_cation_charges(self, water):
        cation = Molecule(water.symbols, water.coords, charge=2)
        res = rhf(cation, "sto-3g", ri=True)
        q = mulliken_charges(res)
        assert q.sum() == pytest.approx(2.0, abs=1e-10)

    def test_mp2_relaxed_charges(self, water):
        res = rhf(water, "sto-3g", ri=True)
        q_hf = mulliken_charges(res)
        q_mp2 = mulliken_mp2_charges(res)
        assert q_mp2.sum() == pytest.approx(0.0, abs=1e-9)
        # correlation reduces HF's overpolarization
        assert abs(q_mp2[0]) < abs(q_hf[0])


class TestMBEDecomposition:
    def test_two_body_exhausts_pairwise_potential(self):
        mol = water_cluster(4, seed=3)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        dec = mbe_decomposition(fs, calc, 1e9, 1e9, order=3)
        exact, _ = calc.energy_gradient(mol)
        assert dec.total == pytest.approx(exact, abs=1e-9)
        assert abs(dec.three_body) < 1e-10  # strictly pairwise

    def test_three_body_detected(self):
        mol = water_cluster(3, seed=5)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator(at_strength=20.0)
        dec = mbe_decomposition(fs, calc, 1e9, 1e9, order=3)
        assert abs(dec.three_body) > 1e-9
        exact, _ = calc.energy_gradient(mol)
        assert dec.total == pytest.approx(exact, abs=1e-8)

    def test_table_renders(self):
        mol = water_cluster(3, seed=5)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        dec = mbe_decomposition(fs, calc, 1e9, 1e9, order=3)
        out = dec.table(fs.nmonomers)
        assert "1-body" in out and "3-body" in out


class TestSpectra:
    def test_vacf_starts_at_one(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal((100, 4, 3))
        c = velocity_autocorrelation(v)
        assert c[0] == pytest.approx(1.0)

    def test_vacf_zero_velocities(self):
        c = velocity_autocorrelation(np.zeros((50, 2, 3)))
        np.testing.assert_array_equal(c, 0.0)

    def test_diatomic_peak_matches_hessian(self):
        """MD power spectrum of a stretched diatomic peaks at the
        harmonic frequency from the independent Hessian analysis."""
        calc = PairwisePotentialCalculator()
        mol = Molecule(["H", "H"], [[0, 0, 0], [0, 0, 1.35]])
        traj = run_aimd(
            mol, calc, nsteps=3000, dt_fs=0.25,
            velocities=np.zeros((2, 3)),
        )
        peak = dominant_frequency_cm1(
            np.array(traj.velocities), 0.25, masses=mol.masses_au
        )
        eq = mol.with_coords(np.array([[0, 0, 0], [0, 0, 2 * 0.31 * 1.8897]]))
        va = harmonic_analysis(eq, calc)
        stretch = va.frequencies_cm1[-1]
        assert peak == pytest.approx(stretch, rel=0.05)
