"""Online committee surrogates for the MBE tail with uncertainty gating.

Covers the invariant descriptor, the committee's interpolation vs
extrapolation disagreement (the GP posterior sigma must grow off the
training manifold), the gated serve path through both MD drivers, the
serve-streak refresh, checkpoint (format v3) round-trips, and the
deterministic-mode kill switch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator
from repro.constants import BOHR_PER_ANGSTROM
from repro.md import AsyncCoordinator, read_checkpoint, run_aimd, run_serial
from repro.md.integrators import maxwell_boltzmann_velocities
from repro.surrogate import (
    DEFAULT_TOL_DIMER,
    DEFAULT_TOL_TRIMER,
    KernelRidgeCommittee,
    SurrogateManager,
    descriptor,
)
from repro.systems import glycine_fragmented

R_DIMER = 6.0 * BOHR_PER_ANGSTROM


class _Mol:
    """Minimal fragment stand-in for manager unit tests."""

    def __init__(self, coords, symbols=("H", "H", "H")):
        self.coords = np.asarray(coords, dtype=float)
        self.symbols = tuple(symbols)
        self.charge = 0
        self.natoms = self.coords.shape[0]


def _triangle(scale: float = 1.0, jitter: float = 0.0, seed: int = 0):
    rng = np.random.default_rng(seed)
    base = np.array([[0.0, 0.0, 0.0], [1.5, 0.0, 0.0], [0.7, 1.2, 0.0]])
    return scale * base + jitter * rng.standard_normal((3, 3))


class TestDescriptor:
    def test_rotation_translation_invariance(self):
        coords = _triangle()
        d0 = descriptor(coords)
        theta = 0.7
        rot = np.array(
            [
                [np.cos(theta), -np.sin(theta), 0.0],
                [np.sin(theta), np.cos(theta), 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        moved = coords @ rot.T + np.array([3.0, -2.0, 5.0])
        np.testing.assert_allclose(descriptor(moved), d0, atol=1e-12)

    def test_smooth_in_coordinates(self):
        coords = _triangle()
        d0 = descriptor(coords)
        d1 = descriptor(coords + 1e-6)
        assert np.abs(d1 - d0).max() < 1e-4

    def test_degenerate_sizes(self):
        assert descriptor(np.zeros((1, 3))).shape == (0,)
        assert descriptor(np.zeros((0, 3))).shape == (0,)


class TestCommitteeUncertainty:
    def _window(self, n=12, seed=3):
        rng = np.random.default_rng(seed)
        x = np.stack(
            [descriptor(_triangle(jitter=0.02, seed=s)) for s in range(n)]
        )
        y = np.stack(
            [
                np.concatenate([[float(xi.sum())], 0.1 * xi[:3]])
                for xi in x
            ]
        )
        return x, y + 1e-3 * rng.standard_normal(y.shape)

    def test_interpolation_is_confident(self):
        x, y = self._window()
        com = KernelRidgeCommittee(seed=1)
        com.fit(x, y)
        mean, dis = com.predict(x[0])
        assert mean.shape == y.shape[1:]
        assert dis < 0.1 * y[:, 0].std()

    def test_extrapolation_disagreement_grows_to_target_scale(self):
        """Off the training manifold the GP posterior sigma must recover
        the full target scale -- bootstrap members alone collapse to
        their means there, which is exactly the over-confidence failure
        the variance term exists to close."""
        x, y = self._window()
        com = KernelRidgeCommittee(seed=1)
        com.fit(x, y)
        _, dis_in = com.predict(x[0])
        far = descriptor(_triangle(scale=5.0))
        _, dis_out = com.predict(far)
        target_scale = max(
            float(y[:, 0].std()), float(y[:, 1:].std(axis=0).max())
        )
        assert dis_out > 10.0 * dis_in
        assert dis_out >= 0.9 * target_scale

    def test_refit_is_bitwise_reproducible(self):
        x, y = self._window()
        a = KernelRidgeCommittee(seed=5)
        b = KernelRidgeCommittee(seed=5)
        a.fit(x, y)
        b.fit(x, y)
        q = descriptor(_triangle(jitter=0.05, seed=99))
        ma, da = a.predict(q)
        mb, db = b.predict(q)
        np.testing.assert_array_equal(ma, mb)
        assert da == db

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            KernelRidgeCommittee().predict(np.zeros(3))


class TestManagerGate:
    def _trained_manager(self, **kw):
        mgr = SurrogateManager(
            tol_dimer=1e-2, min_train=4, seed=0, **kw
        )
        for s in range(6):
            mol = _Mol(_triangle(jitter=0.01, seed=s))
            mgr.observe((0, 1), mol, -1.0 + 1e-4 * s, 1e-4 * np.ones((3, 3)))
        return mgr

    def test_cold_class_refuses(self):
        mgr = SurrogateManager(min_train=4)
        assert mgr.predict((0, 1), _Mol(_triangle())) is None
        assert mgr.refused_cold == 1

    def test_monomers_never_served(self):
        mgr = self._trained_manager()
        assert mgr.predict((0,), _Mol(_triangle())) is None

    def test_serve_accumulates_coefficient_scaled_bound(self):
        mgr = self._trained_manager()
        mol = _Mol(_triangle(jitter=0.01, seed=1))
        out = mgr.predict((0, 1), mol, coefficient=-2.0)
        assert out is not None
        energy, grad, dis = out
        assert grad.shape == (3, 3)
        assert mgr.neglected_bound == pytest.approx(2.0 * mgr.tol_dimer)
        assert mgr.served_by_order == {2: 1}

    def test_uncertain_geometry_refuses(self):
        """Far off the training manifold the GP sigma approaches the
        target spread, so a class whose energies genuinely vary must
        refuse there (near-constant targets may serve anywhere -- the
        bound scales with what is actually at stake)."""
        mgr = SurrogateManager(tol_dimer=1e-2, min_train=4, seed=0)
        for s in range(6):
            mol = _Mol(_triangle(jitter=0.01, seed=s))
            mgr.observe((0, 1), mol, -1.0 + 0.5 * s, np.zeros((3, 3)))
        far = _Mol(_triangle(scale=4.0))
        assert mgr.predict((0, 1), far) is None
        assert mgr.refused_uncertain == 1

    def test_streak_cap_forces_refresh(self):
        """After max_serve_streak consecutive serves the gate must refuse
        once (forcing a full solve), and the observe() of that solve
        re-arms serving."""
        mgr = self._trained_manager(max_serve_streak=3)
        mol = _Mol(_triangle(jitter=0.01, seed=1))
        for _ in range(3):
            assert mgr.predict((0, 1), mol) is not None
        assert mgr.predict((0, 1), mol) is None
        assert mgr.refused_refresh == 1
        mgr.observe((0, 1), mol, -1.0, np.zeros((3, 3)))
        assert mgr.predict((0, 1), mol) is not None

    def test_state_dict_round_trip(self):
        mgr = self._trained_manager(max_serve_streak=3)
        mol = _Mol(_triangle(jitter=0.01, seed=1))
        mgr.predict((0, 1), mol)
        meta, arrays = mgr.state_dict()
        other = SurrogateManager(
            tol_dimer=1e-2, min_train=4, seed=0, max_serve_streak=3
        )
        other.load_state(meta, arrays)
        assert other.stats() == mgr.stats()
        a = mgr.predict((0, 1), mol)
        b = other.predict((0, 1), mol)
        assert a[0] == b[0]
        np.testing.assert_array_equal(a[1], b[1])

    def test_config_mismatch_on_resume_raises(self):
        mgr = self._trained_manager()
        meta, arrays = mgr.state_dict()
        other = SurrogateManager(tol_dimer=5e-3, min_train=4, seed=0)
        with pytest.raises(ValueError, match="tol_dimer"):
            other.load_state(meta, arrays)

    def test_state_dict_is_json_clean(self):
        import json

        mgr = self._trained_manager()
        mgr.predict((0, 1), _Mol(_triangle(jitter=0.01, seed=1)))
        meta, _ = mgr.state_dict()
        json.dumps(meta)  # no np scalars may leak into the meta dict

    def test_default_tols_ordered(self):
        assert 0 < DEFAULT_TOL_TRIMER < DEFAULT_TOL_DIMER


@pytest.fixture(scope="module")
def glycine4():
    return glycine_fragmented(4)


@pytest.fixture(scope="module")
def v0(glycine4):
    return maxwell_boltzmann_velocities(
        glycine4.parent.masses_au, 300.0, seed=7
    )


class _Counting:
    def __init__(self, inner):
        self.inner = inner
        self.polymer_solves = 0

    def energy_gradient(self, mol):
        key = getattr(mol, "frag_key", None)
        if key is not None and len(key) > 1:
            self.polymer_solves += 1
        return self.inner.energy_gradient(mol)


def _sync_run(system, v, surrogate=None, **kw):
    calc = _Counting(PairwisePotentialCalculator())
    base = dict(
        nsteps=24, dt_fs=0.25, r_dimer_bohr=R_DIMER, mbe_order=2,
        replan_interval=4, velocities=v.copy(), surrogate=surrogate,
    )
    base.update(kw)
    traj = run_aimd(system, calc, **base)
    return traj, calc


class TestSyncDriver:
    def test_serves_cut_solves_within_bound(self, glycine4, v0):
        traj_ref, calc_ref = _sync_run(glycine4, v0)
        mgr = SurrogateManager(tol_dimer=5e-4, min_train=6, seed=7)
        traj_sur, calc_sur = _sync_run(glycine4, v0, surrogate=mgr)
        assert mgr.served > 0
        assert calc_sur.polymer_solves < calc_ref.polymer_solves
        dev = np.abs(
            np.asarray(traj_ref.total) - np.asarray(traj_sur.total)
        ).max()
        assert dev <= mgr.neglected_bound

    def test_surrogate_requires_fragmented_system(self, glycine4):
        mgr = SurrogateManager()
        with pytest.raises(ValueError, match="FragmentedSystem"):
            run_aimd(
                glycine4.parent, PairwisePotentialCalculator(),
                nsteps=2, dt_fs=0.5, surrogate=mgr,
            )

    def test_checkpoint_resume_is_bitwise(self, glycine4, v0, tmp_path):
        """A resumed surrogate run must continue bitwise: the v3
        checkpoint carries the training windows + streaks, and the
        committee is a seeded function of the window."""
        ck = tmp_path / "ck.npz"
        mgr_full = SurrogateManager(tol_dimer=5e-4, min_train=6, seed=7)
        traj_full, _ = _sync_run(
            glycine4, v0, surrogate=mgr_full,
            checkpoint_path=ck, checkpoint_every=16,
        )
        ckpt = read_checkpoint(ck, mol=glycine4.parent)
        assert ckpt.step < 24
        assert ckpt.surrogate is not None
        mgr_res = SurrogateManager(tol_dimer=5e-4, min_train=6, seed=7)
        traj_res, _ = _sync_run(
            glycine4, v0, surrogate=mgr_res, resume=ckpt,
        )
        np.testing.assert_array_equal(
            np.asarray(traj_full.total), np.asarray(traj_res.total)
        )
        assert mgr_res.stats()["served"] == mgr_full.stats()["served"]


class TestCoordinator:
    def _run(self, glycine4, v0, surrogate=None, **kw):
        calc = _Counting(PairwisePotentialCalculator())
        co = AsyncCoordinator(
            glycine4, nsteps=24, dt_fs=0.25, r_dimer_bohr=R_DIMER,
            mbe_order=2, replan_interval=4, velocities=v0.copy(),
            temperature_k=0.0, surrogate=surrogate, **kw,
        )
        run_serial(co, calc)
        return co, calc

    def test_gated_tasks_never_scheduled(self, glycine4, v0):
        co_ref, calc_ref = self._run(glycine4, v0)
        mgr = SurrogateManager(tol_dimer=5e-4, min_train=6, seed=7)
        co_sur, calc_sur = self._run(glycine4, v0, surrogate=mgr)
        assert mgr.served > 0
        assert co_sur.surrogate_tasks_avoided == mgr.served
        assert calc_sur.polymer_solves < calc_ref.polymer_solves
        _, pe_ref, _ = co_ref.trajectory_energies()
        _, pe_sur, _ = co_sur.trajectory_energies()
        dev = np.abs(np.asarray(pe_ref) - np.asarray(pe_sur)).max()
        assert dev <= mgr.neglected_bound

    def test_deterministic_forces_surrogate_off(self, glycine4, v0):
        mgr = SurrogateManager(tol_dimer=1.0, min_train=2, seed=7)
        co, _ = self._run(
            glycine4, v0, surrogate=mgr, deterministic=True,
        )
        assert co.surrogate is None
        assert co.surrogate_disabled_deterministic
        assert co.surrogate_tasks_avoided == 0
        assert mgr.served == 0


class TestServeSpec:
    def test_jobspec_surrogate_round_trips(self):
        from repro.serve.session import JobSpec

        spec = JobSpec(
            job_id="a", system={"kind": "water", "n": 2},
            surrogate={"tol_dimer": 1e-3, "min_train": 4},
        )
        again = JobSpec.from_dict(spec.to_dict())
        assert again.surrogate == {"tol_dimer": 1e-3, "min_train": 4}
