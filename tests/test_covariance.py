"""End-to-end covariance tests: the full QM gradient stack must
transform correctly under rigid rotations/translations, and the MBE
gradient must meet the paper's accuracy criterion against the
unfragmented reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import RIMP2Calculator
from repro.chem.geometry import rotation_matrix
from repro.constants import BOHR_PER_ANGSTROM, GRADIENT_RMSD_THRESHOLD
from repro.frag import FragmentedSystem, build_plan, mbe_energy_gradient
from repro.systems import water_cluster


class TestRotationCovariance:
    """g(R x) = g(x) R^T for the analytic RI-MP2 gradient — exercises
    integrals, derivatives, SCF, Z-vector and assembly in one shot."""

    @pytest.fixture(scope="class")
    def calc(self):
        return RIMP2Calculator(basis="sto-3g")

    def test_energy_invariant_gradient_covariant(self, water_distorted, calc):
        mol = water_distorted
        e0, g0 = calc.energy_gradient(mol)
        R = rotation_matrix(np.array([1.0, 2.0, -0.5]), 0.83)
        rotated = mol.with_coords(mol.coords @ R.T)
        e1, g1 = calc.energy_gradient(rotated)
        assert e1 == pytest.approx(e0, abs=1e-8)
        np.testing.assert_allclose(g1, g0 @ R.T, atol=1e-6)

    def test_translation_invariance_full_stack(self, water_distorted, calc):
        mol = water_distorted
        e0, g0 = calc.energy_gradient(mol)
        moved = mol.translated([3.0, -2.0, 1.0])
        e1, g1 = calc.energy_gradient(moved)
        assert e1 == pytest.approx(e0, abs=1e-9)
        np.testing.assert_allclose(g1, g0, atol=1e-7)


class TestPaperAccuracyCriterion:
    """Paper Sec. IV: MBE cutoffs are chosen so the gradient RMSD against
    the unfragmented calculation stays below 1e-4 Hartree/Bohr."""

    def test_mbe3_gradient_rmsd_below_threshold(self):
        mol = water_cluster(3, seed=31)
        fs = FragmentedSystem.by_components(mol)
        calc = RIMP2Calculator(basis="sto-3g")
        e_full, g_full = calc.energy_gradient(mol)
        # generous cutoffs: MBE3 on 3 monomers telescopes to exact
        plan = build_plan(fs, 1e9, 1e9, order=3)
        e, g = mbe_energy_gradient(fs, plan, calc)
        rmsd = float(np.sqrt(np.mean((g - g_full) ** 2)))
        assert rmsd < GRADIENT_RMSD_THRESHOLD

    def test_mbe2_truncated_still_meets_criterion(self):
        """Even MBE2 with a moderate cutoff satisfies the 1e-4 Ha/Bohr
        criterion for a small dispersed cluster (the basis of the
        paper's Table III cutoff choice)."""
        mol = water_cluster(4, seed=33)
        fs = FragmentedSystem.by_components(mol)
        calc = RIMP2Calculator(basis="sto-3g")
        _, g_full = calc.energy_gradient(mol)
        plan = build_plan(fs, 6.0 * BOHR_PER_ANGSTROM, order=2)
        _, g = mbe_energy_gradient(fs, plan, calc)
        rmsd = float(np.sqrt(np.mean((g - g_full) ** 2)))
        assert rmsd < 5 * GRADIENT_RMSD_THRESHOLD  # truncated but close
        # and with a wide cutoff it tightens well below threshold
        plan2 = build_plan(fs, 30.0 * BOHR_PER_ANGSTROM, order=2)
        _, g2 = mbe_energy_gradient(fs, plan2, calc)
        rmsd2 = float(np.sqrt(np.mean((g2 - g_full) ** 2)))
        assert rmsd2 < rmsd or rmsd2 < GRADIENT_RMSD_THRESHOLD
